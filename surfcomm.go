// Package surfcomm is a toolchain for optimizing and comparing surface
// code communication in superconducting quantum computers, reproducing
// Javadi-Abhari et al., "Optimized Surface Code Communication in
// Superconducting Quantum Computers" (MICRO-50, 2017).
//
// The library spans the paper's full stack:
//
//   - a logical circuit IR with hierarchical modules and an inliner
//     (circuit generation for the GSE, SQ, SHA-1, and Ising workloads);
//   - frontend analyses: dependency DAGs, critical paths, parallelism
//     estimation (Table 2);
//   - surface-code math: planar and double-defect tile geometry, code
//     distance selection, factory provisioning;
//   - a braid simulator for the tiled double-defect architecture with
//     the seven priority policies of §6.3 (Figure 6);
//   - a Multi-SIMD scheduler and EPR-distribution simulator for the
//     planar architecture with just-in-time prefetch windows (§8.1);
//   - the end-to-end design-space toolflow: planar vs. double-defect
//     space-time evaluation, favorability crossovers, and error-rate
//     boundary sweeps (Figures 7-9).
//
// This file re-exports the public API surface; implementations live in
// the internal packages.
package surfcomm

import (
	"context"
	"io"
	"math/rand"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
	"surfcomm/internal/circuit"
	"surfcomm/internal/decoder"
	"surfcomm/internal/device"
	"surfcomm/internal/layout"
	"surfcomm/internal/resource"
	"surfcomm/internal/simd"
	"surfcomm/internal/surface"
	"surfcomm/internal/sweep"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

// --- Circuit IR ---

// Circuit is a flat logical program over numbered qubits.
type Circuit = circuit.Circuit

// Gate is one logical instruction.
type Gate = circuit.Gate

// Opcode identifies a logical gate type.
type Opcode = circuit.Opcode

// Builder constructs circuits with automatic Clifford+T macro expansion.
type Builder = circuit.Builder

// Program is a hierarchical circuit of callable modules.
type Program = circuit.Program

// Logical opcodes of the Clifford+T instruction set.
const (
	OpPrepZ   = circuit.PrepZ
	OpPrepX   = circuit.PrepX
	OpMeasZ   = circuit.MeasZ
	OpMeasX   = circuit.MeasX
	OpX       = circuit.X
	OpY       = circuit.Y
	OpZ       = circuit.Z
	OpH       = circuit.H
	OpS       = circuit.S
	OpSdg     = circuit.Sdg
	OpT       = circuit.T
	OpTdg     = circuit.Tdg
	OpCNOT    = circuit.CNOT
	OpCZ      = circuit.CZ
	OpSwap    = circuit.Swap
	OpBarrier = circuit.Barrier
)

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// NewBuilder returns a Builder over a fresh circuit.
func NewBuilder(name string, n int) *Builder { return circuit.NewBuilder(name, n) }

// InlineAll selects full inlining when flattening a Program.
const InlineAll = circuit.InlineAll

// --- Frontend analyses ---

// Estimate is the frontend's logical-level characterization (Table 2).
type Estimate = resource.Estimate

// EstimateCircuit computes op counts, critical path and parallelism.
func EstimateCircuit(c *Circuit) (Estimate, error) { return resource.EstimateCircuit(c) }

// --- Applications (paper Table 2 workloads) ---

// Workload pairs a generated application circuit with its suite name.
type Workload = apps.Workload

// GSEConfig, SQConfig, SHA1Config, IsingConfig size the generators.
type (
	GSEConfig   = apps.GSEConfig
	SQConfig    = apps.SQConfig
	SHA1Config  = apps.SHA1Config
	IsingConfig = apps.IsingConfig
)

// GSE generates the Ground State Estimation workload, panicking on a
// malformed config.
//
// Deprecated: use NewGSE, which rejects bad configs with an error
// matching ErrBadConfig instead of panicking. This wrapper remains for
// callers that predate the serving layer.
func GSE(cfg GSEConfig) *Circuit { return apps.GSE(cfg) }

// SQ generates the Square Root (Grover) workload, panicking on a
// malformed config.
//
// Deprecated: use NewSQ, which rejects bad configs with an error
// matching ErrBadConfig instead of panicking.
func SQ(cfg SQConfig) *Circuit { return apps.SQ(cfg) }

// SHA1 generates the SHA-1 decryption workload, panicking on a
// malformed config.
//
// Deprecated: use NewSHA1, which rejects bad configs with an error
// matching ErrBadConfig instead of panicking.
func SHA1(cfg SHA1Config) *Circuit { return apps.SHA1(cfg) }

// Ising generates the Ising-model workload at the chosen inlining
// level, panicking on a malformed config.
//
// Deprecated: use NewIsing, which rejects bad configs with an error
// matching ErrBadConfig instead of panicking.
func Ising(cfg IsingConfig, fullyInline bool) *Circuit { return apps.Ising(cfg, fullyInline) }

// NewGSE generates the Ground State Estimation workload; a malformed
// config returns an error matching ErrBadConfig.
func NewGSE(cfg GSEConfig) (*Circuit, error) { return apps.NewGSE(cfg) }

// NewSQ generates the Square Root (Grover) workload; a malformed
// config returns an error matching ErrBadConfig.
func NewSQ(cfg SQConfig) (*Circuit, error) { return apps.NewSQ(cfg) }

// NewSHA1 generates the SHA-1 decryption workload; a malformed config
// returns an error matching ErrBadConfig.
func NewSHA1(cfg SHA1Config) (*Circuit, error) { return apps.NewSHA1(cfg) }

// NewIsing generates the Ising-model workload at the chosen inlining
// level; a malformed config returns an error matching ErrBadConfig.
func NewIsing(cfg IsingConfig, fullyInline bool) (*Circuit, error) {
	return apps.NewIsing(cfg, fullyInline)
}

// Table2Suite returns the four applications at characterization sizes.
func Table2Suite() []Workload { return apps.Table2Suite() }

// Fig6Suite returns the four applications at braid-simulation scale.
func Fig6Suite() []Workload { return apps.Fig6Suite() }

// IMVariants returns the semi- and fully-inlined Ising configurations.
func IMVariants(n, steps int) []Workload { return apps.IMVariants(n, steps) }

// --- Surface code model ---

// Technology captures physical device characteristics.
type Technology = surface.Technology

// Superconducting returns the paper's baseline superconducting
// technology at a physical error rate.
func Superconducting(physicalErrorRate float64) Technology {
	return surface.Superconducting(physicalErrorRate)
}

// PlanarTileQubits returns the physical qubits of a planar tile.
func PlanarTileQubits(d int) int { return surface.PlanarTileQubits(d) }

// DoubleDefectTileQubits returns the physical qubits of a double-defect
// tile.
func DoubleDefectTileQubits(d int) int { return surface.DoubleDefectTileQubits(d) }

// --- Double-defect backend (braids) ---

// BraidPolicy selects a braid prioritization heuristic (Policies 0-6).
type BraidPolicy = braid.Policy

// Braid policies in paper order.
const (
	Policy0 = braid.Policy0
	Policy1 = braid.Policy1
	Policy2 = braid.Policy2
	Policy3 = braid.Policy3
	Policy4 = braid.Policy4
	Policy5 = braid.Policy5
	Policy6 = braid.Policy6
)

// AllBraidPolicies lists the seven policies (the Figure 6 x-axis).
var AllBraidPolicies = braid.AllPolicies

// BraidConfig tunes a braid simulation.
type BraidConfig = braid.Config

// BraidResult reports one braid simulation (one Figure 6 bar).
type BraidResult = braid.Result

// SimulateBraids discovers a static braid schedule for the circuit.
//
// Deprecated: compile through a BraidBackend via Toolchain.Compile,
// which adds cancellation and progress events. This shim remains for
// callers that predate the Toolchain API.
func SimulateBraids(c *Circuit, p BraidPolicy, cfg BraidConfig) (BraidResult, error) {
	return braid.Simulate(c, p, cfg)
}

// BraidArch is the tiled double-defect floorplan a recorded schedule
// was discovered on.
type BraidArch = braid.Arch

// BraidScheduleEntry is one committed placement of a static braid
// schedule.
type BraidScheduleEntry = braid.ScheduleEntry

// ReplayBraidSchedule independently validates a recorded static
// schedule: every op scheduled, dependencies respected, no overlapping
// resource claims.
func ReplayBraidSchedule(c *Circuit, a *BraidArch, entries []BraidScheduleEntry) error {
	return braid.Replay(c, a, entries)
}

// --- Planar backend (Multi-SIMD + teleportation) ---

// SIMDConfig sizes the Multi-SIMD machine.
type SIMDConfig = simd.Config

// SIMDSchedule is a Multi-SIMD execution plan.
type SIMDSchedule = simd.Schedule

// SIMDMove is one teleportation in a Multi-SIMD schedule's move list.
type SIMDMove = simd.Move

// ScheduleSIMD schedules a circuit on the Multi-SIMD machine.
//
// Deprecated: compile through a PlanarBackend via Toolchain.Compile,
// which fuses scheduling with EPR distribution and adds cancellation.
func ScheduleSIMD(c *Circuit, cfg SIMDConfig) (*SIMDSchedule, error) { return simd.Run(c, cfg) }

// TeleportConfig sets EPR-network parameters.
type TeleportConfig = teleport.Config

// TeleportResult reports one EPR-distribution run.
type TeleportResult = teleport.Result

// PrefetchAll launches every EPR pair at cycle zero (the §8.1 baseline).
const PrefetchAll = teleport.PrefetchAll

// DistributeEPR replays a schedule's moves at a look-ahead window.
//
// Deprecated: compile through a PlanarBackend via Toolchain.Compile.
func DistributeEPR(s *SIMDSchedule, window int64, cfg TeleportConfig) (TeleportResult, error) {
	return teleport.Distribute(s, window, cfg)
}

// EPRDistributor owns reusable EPR-distribution scratch: repeated
// distributions through one distributor (a window sweep, a batch of
// schedules) are allocation-free in steady state.
type EPRDistributor = teleport.Distributor

// NewEPRDistributor returns an empty reusable distributor.
func NewEPRDistributor() *EPRDistributor { return teleport.NewDistributor() }

// JITWindow returns the just-in-time window heuristic for a schedule.
func JITWindow(s *SIMDSchedule, cfg TeleportConfig) int64 { return teleport.JITWindow(s, cfg) }

// SweepEPRWindows runs the §8.1 window-size sensitivity study.
func SweepEPRWindows(s *SIMDSchedule, windows []int64, cfg TeleportConfig) ([]TeleportResult, error) {
	return teleport.SweepWindows(s, windows, cfg)
}

// --- Design-space toolflow (Figures 7-9) ---

// AppModel is a characterized application plus its scaling model.
type AppModel = toolflow.AppModel

// DesignPoint is one evaluated (app, K, p_P) configuration.
type DesignPoint = toolflow.DesignPoint

// BoundaryPoint is one (p_P, K*) sample of a Figure 9 line.
type BoundaryPoint = toolflow.BoundaryPoint

// Characterize measures an application's model at reference scale.
//
// Deprecated: use Toolchain.Characterize, which parallelizes across
// workloads and supports cancellation.
func Characterize(w Workload, seed int64) (AppModel, error) { return toolflow.Characterize(w, seed) }

// Evaluate costs one design point.
func Evaluate(m AppModel, totalOps, physicalError float64) (DesignPoint, error) {
	return toolflow.Evaluate(m, totalOps, physicalError)
}

// Crossover returns the computation size where double-defect codes
// overtake planar codes in space-time cost.
func Crossover(m AppModel, physicalError float64) (kStar float64, ok bool) {
	return toolflow.Crossover(m, physicalError)
}

// Curve evaluates a log-spaced K sweep (Figures 7 and 8).
func Curve(m AppModel, physicalError float64, fromExp, toExp, pointsPerDecade int) ([]DesignPoint, error) {
	return toolflow.Curve(m, physicalError, fromExp, toExp, pointsPerDecade)
}

// Boundary sweeps error rates, returning the Figure 9 line for an app.
func Boundary(m AppModel, errorRates []float64) []BoundaryPoint {
	return toolflow.Boundary(m, errorRates)
}

// Figure9ErrorRates is the paper's p_P sweep (1e-8 … 1e-3).
func Figure9ErrorRates() []float64 { return toolflow.Figure9ErrorRates() }

// ReferenceModels characterizes the standard suite for Figures 7-9.
func ReferenceModels(seed int64) ([]AppModel, error) { return toolflow.ReferenceModels(seed) }

// ModelFor picks a characterized model by name.
func ModelFor(models []AppModel, name string) (AppModel, error) {
	return toolflow.ModelFor(models, name)
}

// SurgeryPoint extends a DesignPoint with the lattice-surgery column
// (the paper's §8.2 alternative, quantified).
type SurgeryPoint = toolflow.SurgeryPoint

// EvaluateSurgery costs a design point under all three communication
// schemes (teleportation, braiding, lattice surgery).
func EvaluateSurgery(m AppModel, totalOps, physicalError float64) (SurgeryPoint, error) {
	return toolflow.EvaluateSurgery(m, totalOps, physicalError)
}

// --- Parallel sweep (evaluation-grid worker pool) ---

// SweepOptions tunes a parallel grid run (worker count, base seed).
type SweepOptions = sweep.Options

// SweepCellResult is one machine-readable grid cell (BENCH_*.json).
type SweepCellResult = sweep.CellResult

// SweepFigure6Cell is one (application, policy) braid simulation.
type SweepFigure6Cell = sweep.Figure6Cell

// SweepEPRCell is one application's §8.1 window study.
type SweepEPRCell = sweep.EPRCell

// SweepDecoderCell is one (distance, physical rate) Monte Carlo cell of
// the error-model validation grid.
type SweepDecoderCell = sweep.DecoderCell

// SweepFigure6Options selects the Figure 6 grid variant (distance,
// magic-state ablation, schedule recording, app filter).
type SweepFigure6Options = sweep.Figure6Options

// SweepYieldCell is one braid compile on one realized defective device
// (a defect-fraction × trial point of the yield study).
type SweepYieldCell = sweep.YieldCell

// SweepYieldOptions selects the yield-study grid (distance, app,
// defect fractions, trials per fraction, clustered vs. random defects).
type SweepYieldOptions = sweep.YieldOptions

// SweepCalibCell is one braid compile of the calibration study
// (topology × calibration × live-defect grid).
type SweepCalibCell = sweep.CalibCell

// SweepCalibOptions selects the calibration-study grid.
type SweepCalibOptions = sweep.CalibOptions

// SweepModels characterizes the reference suite across a worker pool;
// results are deterministic and identical to ReferenceModels at any
// worker count.
//
// Deprecated: use Toolchain.Models, which adds cancellation and
// progress streaming.
func SweepModels(opt SweepOptions) ([]AppModel, error) {
	return sweep.Models(context.Background(), opt)
}

// SweepCharacterize characterizes arbitrary workloads across the pool.
//
// Deprecated: use Toolchain.Characterize.
func SweepCharacterize(opt SweepOptions, ws []Workload) ([]AppModel, error) {
	return sweep.Characterize(context.Background(), opt, ws)
}

// SweepCurve evaluates a Figure 7/8 K-sweep cell-parallel.
//
// Deprecated: use Toolchain.Curve.
func SweepCurve(opt SweepOptions, m AppModel, physicalError float64, fromExp, toExp, pointsPerDecade int) ([]DesignPoint, error) {
	return sweep.Curve(context.Background(), opt, m, physicalError, fromExp, toExp, pointsPerDecade)
}

// SweepBoundary computes every model's Figure 9 boundary on the
// (application × error-rate) grid.
//
// Deprecated: use Toolchain.Boundary.
func SweepBoundary(opt SweepOptions, models []AppModel, rates []float64) ([][]BoundaryPoint, error) {
	return sweep.Boundary(context.Background(), opt, models, rates)
}

// SweepFigure6 runs the full Figure 6 (application × policy) grid.
//
// Deprecated: use Toolchain.Figure6.
func SweepFigure6(opt SweepOptions, distance int) ([]SweepFigure6Cell, error) {
	return sweep.Figure6(context.Background(), opt, sweep.Figure6Options{Distance: distance})
}

// SweepEPRStudy runs the §8.1 window study per application on the
// worker pool (one cell per workload).
//
// Deprecated: use Toolchain.EPRStudy.
func SweepEPRStudy(opt SweepOptions, cfg TeleportConfig) ([]SweepEPRCell, error) {
	return sweep.EPRWindows(context.Background(), opt, cfg)
}

// WriteSweepRecords serializes grid cells as stable JSON (BENCH_*.json).
func WriteSweepRecords(w io.Writer, cells []SweepCellResult) error {
	return sweep.WriteRecords(w, cells)
}

// WriteSweepRecordsFile writes cells to path (the BENCH_*.json
// convention).
func WriteSweepRecordsFile(path string, cells []SweepCellResult) error {
	return sweep.WriteRecordsFile(path, cells)
}

// SweepModelRecords converts characterized app models to cell results.
func SweepModelRecords(seed int64, models []AppModel) []SweepCellResult {
	return sweep.ModelRecords(seed, models)
}

// SweepCurveRecords converts Figure 7/8 design points to cell results.
func SweepCurveRecords(study, app string, physicalError float64, seed int64, pts []DesignPoint) []SweepCellResult {
	return sweep.CurveRecords(study, app, physicalError, seed, pts)
}

// SweepBoundaryRecords converts a Figure 9 boundary grid to cell
// results.
func SweepBoundaryRecords(seed int64, models []AppModel, boundaries [][]BoundaryPoint) []SweepCellResult {
	return sweep.BoundaryRecords(seed, models, boundaries)
}

// SweepEPRRecords converts the §8.1 window study to cell results.
func SweepEPRRecords(seed int64, cells []SweepEPRCell) []SweepCellResult {
	return sweep.EPRRecords(seed, cells)
}

// SweepDecoderRecords converts an error-model validation grid to cell
// results.
func SweepDecoderRecords(cells []SweepDecoderCell) []SweepCellResult {
	return sweep.DecoderRecords(cells)
}

// SweepFigure6Records converts a Figure 6 policy grid to cell results.
func SweepFigure6Records(seed int64, cells []SweepFigure6Cell) []SweepCellResult {
	return sweep.Figure6Records(seed, cells)
}

// SweepYieldRecords converts a yield study to cell results; each
// record names the realized device it compiled on.
func SweepYieldRecords(cells []SweepYieldCell) []SweepCellResult {
	return sweep.YieldRecords(cells)
}

// SweepCalibRecords converts a calibration study to cell results; each
// record names the realized device (with calibration digest) it
// compiled on.
func SweepCalibRecords(cells []SweepCalibCell) []SweepCellResult {
	return sweep.CalibRecords(cells)
}

// SweepEPRWindowLabel names a window row the way the §8.1 tables print
// it.
func SweepEPRWindowLabel(windowCycles int64) string {
	return sweep.EPRWindowLabel(windowCycles)
}

// --- Device topology ---

// Device is a named, seeded physical-topology spec: which tiles of the
// fabric are dead, which links are disabled, and how much slower each
// surviving link is. Backends realize it deterministically at their own
// grid dims, so defective-device results are reproducible. A nil
// *Device (the default) is the perfect uniform grid.
type Device = device.Device

// DeviceTopology is one realized defect map (dead tiles, disabled and
// weighted links) at concrete grid dims.
type DeviceTopology = device.Topology

// Coord is the shared grid coordinate of tiles, junctions, and regions
// (used by Placement and by CustomDevice builders).
type Coord = device.Coord

// PerfectDevice returns the ideal uniform device: every backend on it
// is bit-identical to the pre-device pipeline.
func PerfectDevice() *Device { return device.Perfect() }

// RandomYieldDevice returns a device where each tile and link is
// independently defective with probability frac (and a same-sized
// fraction of surviving links runs at twice the ideal latency).
func RandomYieldDevice(frac float64, seed int64) *Device { return device.RandomYield(frac, seed) }

// ClusteredDefectsDevice returns a device whose dead tiles clump into
// contiguous patches — the spatially correlated fabrication-defect
// model.
func ClusteredDefectsDevice(frac float64, seed int64) *Device {
	return device.ClusteredDefects(frac, seed)
}

// CustomDevice returns a device realized by an arbitrary builder,
// called on a fresh perfect topology at the grid dims each backend
// requests.
func CustomDevice(name string, seed int64, build func(*DeviceTopology, *rand.Rand)) *Device {
	return device.Custom(name, seed, build)
}

// --- Coupling graphs & calibration ---

// CouplingGraph is a grid-embedded coupling pattern: which couplers of
// the square fabric a device family actually ships. The square graph is
// the complete pattern; other graphs subtract edges.
type CouplingGraph = device.CouplingGraph

// SquareGraph returns the complete square coupling pattern (every
// device realized on it stays on the perfect fast path).
func SquareGraph() *CouplingGraph { return device.SquareGraph() }

// HeavyHexGraph returns the heavy-hexagon coupling pattern: all
// horizontal couplers, vertical rungs only every fourth column
// (alternating offset per row), degree ≤ 3 everywhere.
func HeavyHexGraph() *CouplingGraph { return device.HeavyHexGraph() }

// ParseCouplingGraph loads a custom coupling pattern from its versioned
// JSON unit-cell form; malformed specs fail with ErrBadConfig.
func ParseCouplingGraph(data []byte) (*CouplingGraph, error) {
	return device.ParseCouplingGraph(data)
}

// LoadCouplingGraph reads a coupling pattern spec from r.
func LoadCouplingGraph(r io.Reader) (*CouplingGraph, error) { return device.LoadCouplingGraph(r) }

// HeavyHexDevice returns a device on the heavy-hexagon coupling
// pattern.
func HeavyHexDevice(seed int64) *Device { return device.HeavyHex(seed) }

// DeviceOnGraph returns a device realized on an arbitrary coupling
// pattern (the square graph returns the perfect device).
func DeviceOnGraph(g *CouplingGraph, seed int64) *Device { return device.OnGraph(g, seed) }

// Calibration is one versioned calibration snapshot: per-qubit T1/T2
// and readout error, per-coupler gate error and latency multiplier.
// Attached to a Device (Device.WithCalibration) it realizes as
// heterogeneous link weights and per-tile error rates that routing,
// placement, timing, and the logical-rate model all price.
type Calibration = device.Calibration

// QubitCal and CouplerCal are the snapshot's entry types.
type (
	QubitCal   = device.QubitCal
	CouplerCal = device.CouplerCal
)

// ParseCalibration loads a snapshot from its versioned JSON form;
// malformed or out-of-range entries fail with ErrBadConfig.
func ParseCalibration(data []byte) (*Calibration, error) { return device.ParseCalibration(data) }

// LoadCalibration reads a snapshot from r.
func LoadCalibration(r io.Reader) (*Calibration, error) { return device.LoadCalibration(r) }

// SyntheticCalibration generates a deterministic, plausible snapshot
// for a rows×cols grid — the calibration sweep study's input.
func SyntheticCalibration(seed int64, rows, cols int) *Calibration {
	return device.SyntheticCalibration(seed, rows, cols)
}

// DefectSchedule is an ordered list of mid-execution coupler deaths
// consumed by the braid engine: in-flight braids holding a dead link
// are torn down and re-routed around the new mask.
type DefectSchedule = device.DefectSchedule

// DefectEvent kills one coupler at the start of a cycle.
type DefectEvent = device.DefectEvent

// RandomDefectSchedule draws a deterministic schedule of n distinct
// coupler deaths on a rows×cols grid with death cycles in [1, horizon].
func RandomDefectSchedule(seed int64, rows, cols, n int, horizon int64) *DefectSchedule {
	return device.RandomDefectSchedule(seed, rows, cols, n, horizon)
}

// DeriveSeed mixes a base seed with grid dims — the shared derivation
// behind every per-(seed, dims) realization in the toolchain.
func DeriveSeed(base int64, rows, cols int) int64 { return device.DeriveSeed(base, rows, cols) }

// CellSeed derives the per-cell seed of a sweep grid from the base seed
// and the cell index.
func CellSeed(base int64, cell int) int64 { return device.CellSeed(base, cell) }

// --- Layout ---

// Placement maps logical qubits to grid tiles.
type Placement = layout.Placement

// RowMajorPlacement is the naive baseline arrangement.
func RowMajorPlacement(n int) *Placement { return layout.RowMajor(n) }

// --- Error decoding (§2.3 machinery) ---

// DecoderLattice is a distance-d surface-code lattice for syndrome
// extraction and matching-based decoding.
type DecoderLattice = decoder.Lattice

// DecoderResult summarizes a logical-error Monte Carlo run.
type DecoderResult = decoder.Result

// NewDecoderLattice returns a distance-d lattice (d odd, >= 3).
func NewDecoderLattice(d int) (*DecoderLattice, error) { return decoder.NewLattice(d) }

// MeasureLogicalErrorRate runs a decoding Monte Carlo: independent
// physical errors at rate p, matching-decoded, counting logical
// failures — the empirical grounding of the p_L(d) model. Trials decode
// across GOMAXPROCS workers; the failure count is identical to a serial
// run (use Toolchain.MeasureLogicalErrorRate to bound the pool).
func MeasureLogicalErrorRate(d int, p float64, trials int, seed int64) (DecoderResult, error) {
	l, err := decoder.NewLattice(d)
	if err != nil {
		return DecoderResult{}, err
	}
	mc := &decoder.MonteCarlo{Lattice: l, Rng: rand.New(rand.NewSource(seed))}
	return mc.Run(p, trials)
}

// MeasureLogicalErrorRateHistory runs the syndrome-history Monte Carlo
// (§2.3 space-time decoding): rounds noisy measurement rounds with data
// error rate p and measurement error rate q, decoded in a space-time
// volume. Trials decode across GOMAXPROCS workers with a failure count
// identical to a serial run.
func MeasureLogicalErrorRateHistory(d, rounds int, p, q float64, trials int, seed int64) (DecoderResult, error) {
	l, err := decoder.NewLattice(d)
	if err != nil {
		return DecoderResult{}, err
	}
	mc := &decoder.HistoryMonteCarlo{Lattice: l, Rounds: rounds, Rng: rand.New(rand.NewSource(seed))}
	return mc.Run(p, q, trials)
}

// --- QASM interchange ---

// WriteQASM serializes a circuit in the flat QASM dialect.
func WriteQASM(w io.Writer, c *Circuit) error { return circuit.WriteQASM(w, c) }

// ReadQASM parses the flat QASM dialect.
func ReadQASM(r io.Reader) (*Circuit, error) { return circuit.ReadQASM(r) }
