package surfcomm

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"surfcomm/internal/decoder"
	"surfcomm/internal/modcompile"
	"surfcomm/internal/resource"
	"surfcomm/internal/scerr"
	"surfcomm/internal/sweep"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

// Event is one structured progress notification from a Toolchain run:
// which stage produced it, which grid cell completed, and how far the
// grid has progressed. Events let callers stream partial results of
// wide studies instead of waiting for the full grid.
type Event struct {
	// Stage names the pipeline stage: "characterize", "compile",
	// "cost", "figure6", "curve", "boundary", "epr", or "decoder".
	Stage string
	// Backend is the compiling backend's name (compile events only).
	Backend string
	// Cell labels the completed grid cell, when the stage has one.
	Cell string
	// Index is the completed cell's 0-based index; Total is the grid
	// size. On pooled runs events may arrive out of index order.
	Index int
	Total int
}

// ToolchainOption configures a Toolchain; invalid options surface from
// NewToolchain as errors matching ErrBadConfig.
type ToolchainOption func(*Toolchain) error

// WithPolicy selects the braid prioritization policy (default Policy6,
// the paper's combined heuristic).
func WithPolicy(p BraidPolicy) ToolchainOption {
	return func(tc *Toolchain) error {
		if p < Policy0 || p > Policy6 {
			return scerr.BadConfig("toolchain: unknown policy %d", int(p))
		}
		tc.policy = p
		return nil
	}
}

// WithDistance selects the surface code distance (default 9).
func WithDistance(d int) ToolchainOption {
	return func(tc *Toolchain) error {
		if d < 1 {
			return scerr.BadConfig("toolchain: distance %d < 1", d)
		}
		tc.distance = d
		return nil
	}
}

// WithTechnology selects the device technology (default the baseline
// superconducting technology at p_P = 1e-8).
func WithTechnology(t Technology) ToolchainOption {
	return func(tc *Toolchain) error {
		if err := t.Validate(); err != nil {
			return scerr.BadConfig("toolchain: %v", err)
		}
		tc.tech = t
		return nil
	}
}

// WithWorkers bounds the evaluation-grid worker pool; 0 (the default)
// selects GOMAXPROCS, 1 forces serial runs.
func WithWorkers(n int) ToolchainOption {
	return func(tc *Toolchain) error {
		if n < 0 {
			return scerr.BadConfig("toolchain: negative worker count %d", n)
		}
		tc.workers = n
		return nil
	}
}

// WithDevice selects the physical device topology every backend
// compiles onto (default the perfect uniform grid). Defective devices
// make impossible routes fail with errors matching ErrUnroutable; a
// PerfectDevice (or nil) keeps every result bit-identical to the
// ideal-grid pipeline.
func WithDevice(d *Device) ToolchainOption {
	return func(tc *Toolchain) error {
		tc.device = d
		return nil
	}
}

// WithCalibration attaches a calibration snapshot to the toolchain's
// device: every backend compiles onto the calibrated fabric
// (heterogeneous link weights, per-tile error rates, cost-priced
// routing). Composes with WithDevice regardless of option order; nil
// detaches.
func WithCalibration(cal *Calibration) ToolchainOption {
	return func(tc *Toolchain) error {
		tc.calibration = cal
		return nil
	}
}

// WithDefectSchedule installs a live-defect schedule: couplers that die
// at given cycles mid-execution. The braid and surgery backends tear
// down and re-route in-flight braids around each death; runs fail with
// ErrUnroutable only when the surviving fabric disconnects. Nil
// detaches.
func WithDefectSchedule(s *DefectSchedule) ToolchainOption {
	return func(tc *Toolchain) error {
		tc.defects = s
		return nil
	}
}

// WithSeed sets the base seed for layout, partitioning, and
// characterization (default 1). The seed is part of every result's
// identity: equal seeds reproduce byte-identical schedules and records.
func WithSeed(s int64) ToolchainOption {
	return func(tc *Toolchain) error {
		tc.seed = s
		return nil
	}
}

// WithDecoderStrategy selects the decoding algorithm behind
// MeasureLogicalErrorRate and DecoderGrid by name: "mwpm" (the
// matching-based default) or "unionfind" (the almost-linear-time
// union-find decoder). Unknown names fail with ErrBadConfig listing
// the registered strategies; the empty name keeps the default.
func WithDecoderStrategy(name string) ToolchainOption {
	return func(tc *Toolchain) error {
		if name == "" || name == decoder.StrategyMWPM {
			// Explicit default: leave the strategy nil so records stay
			// byte-identical to pre-strategy runs.
			tc.decodeStrategy = nil
			return nil
		}
		s, err := decoder.StrategyByName(name)
		if err != nil {
			return err
		}
		tc.decodeStrategy = s
		return nil
	}
}

// WithProgress installs a progress callback. Events are delivered
// serialized (never concurrently), in completion order.
func WithProgress(fn func(Event)) ToolchainOption {
	return func(tc *Toolchain) error {
		tc.progress = fn
		return nil
	}
}

// Toolchain is the end-to-end compilation pipeline of the paper's
// toolflow (Fig. 4) behind one entry point: it characterizes
// applications, compiles them through the interchangeable communication
// backends, and costs design points across the evaluation grids of
// Figures 6–9 — with one shared option set (policy, distance,
// technology, workers, seed), cooperative cancellation on every
// long-running path, and structured progress events.
//
//	tc, _ := surfcomm.NewToolchain(
//		surfcomm.WithPolicy(surfcomm.Policy6),
//		surfcomm.WithWorkers(8),
//	)
//	plan, err := tc.Compile(ctx, surfcomm.BraidBackend{}, circ)
type Toolchain struct {
	distance       int
	tech           Technology
	policy         BraidPolicy
	workers        int
	seed           int64
	device         *Device
	calibration    *Calibration
	defects        *DefectSchedule
	decodeStrategy decoder.Strategy
	progress       func(Event)
	modCache       ModuleCache
	stitchMemo     *modcompile.StitchMemo
}

// NewToolchain builds a Toolchain from functional options; option
// errors match ErrBadConfig.
func NewToolchain(opts ...ToolchainOption) (*Toolchain, error) {
	tc := &Toolchain{
		distance: 9,
		tech:     Superconducting(1e-8),
		policy:   Policy6,
		seed:     1,
		// Every toolchain carries a stitch memo: it is empty (and free)
		// until the first hierarchical compile, and clones share it, so
		// serving layers that clone per request still reuse the linker's
		// placement work across structurally identical programs.
		stitchMemo: modcompile.NewStitchMemo(),
	}
	for _, opt := range opts {
		if err := opt(tc); err != nil {
			return nil, err
		}
	}
	return tc, nil
}

// Target returns the compilation target derived from the toolchain's
// options.
func (tc *Toolchain) Target() Target {
	return Target{
		Distance:   tc.distance,
		Technology: tc.tech,
		Policy:     tc.policy,
		Seed:       tc.seed,
		Window:     JITWindowAuto,
		Device:     tc.device.WithCalibration(tc.calibration),
		Defects:    tc.defects,
	}
}

// Calibration returns the toolchain's attached calibration snapshot
// (nil when uniform) — serving layers report its digest and age from
// here.
func (tc *Toolchain) Calibration() *Calibration { return tc.calibration }

// CloneWithProgress returns a copy of the toolchain that delivers
// progress events to fn instead of the original callback, sharing every
// other setting — plans from the copy are bit-identical to the
// original's. Serving layers use it to stream one request's stage
// events without rebinding the shared toolchain (whose progress
// callback is fixed at construction and may be observing a different
// consumer).
func (tc *Toolchain) CloneWithProgress(fn func(Event)) *Toolchain {
	cp := *tc
	cp.progress = fn
	return &cp
}

// Seed returns the toolchain's base seed (recorded in emitted cells).
func (tc *Toolchain) Seed() int64 { return tc.seed }

// Workers returns the WithWorkers pool bound (0 = GOMAXPROCS), so
// layers above the toolchain (the serving batch pool) can size
// themselves consistently.
func (tc *Toolchain) Workers() int { return tc.workers }

func (tc *Toolchain) emit(ev Event) {
	if tc.progress != nil {
		tc.progress(ev)
	}
}

// sweepOpts builds grid options that forward cell completions as
// progress events.
func (tc *Toolchain) sweepOpts(stage string, label func(i int) string) sweep.Options {
	opt := sweep.Options{Workers: tc.workers, Seed: tc.seed}
	if tc.progress != nil {
		opt.Progress = func(i, total int) {
			ev := Event{Stage: stage, Index: i, Total: total}
			if label != nil {
				ev.Cell = label(i)
			}
			tc.progress(ev)
		}
	}
	return opt
}

// Compile lowers a circuit onto one backend at the toolchain's target.
// Optional override functions adjust the target for this call only
// (e.g. a fixed placement or an ablation knob).
func (tc *Toolchain) Compile(ctx context.Context, b Backend, c *Circuit, override ...func(*Target)) (Plan, error) {
	if b == nil {
		return Plan{}, scerr.BadConfig("toolchain: nil backend")
	}
	target := tc.Target()
	for _, fn := range override {
		fn(&target)
	}
	plan, err := b.Compile(ctx, c, &target)
	if err != nil {
		return Plan{}, fmt.Errorf("toolchain: %s: %w", b.Name(), err)
	}
	name := ""
	if c != nil {
		name = c.Name
	}
	tc.emit(Event{Stage: "compile", Backend: b.Name(), Cell: name, Total: 1})
	return plan, nil
}

// CompileAll compiles the circuit through every backend, in Backends()
// order — the paper's three-way communication comparison for one
// program.
func (tc *Toolchain) CompileAll(ctx context.Context, c *Circuit, override ...func(*Target)) ([]Plan, error) {
	backends := Backends()
	plans := make([]Plan, 0, len(backends))
	for _, b := range backends {
		p, err := tc.Compile(ctx, b, c, override...)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// Estimate runs the frontend characterization (the Table 2 columns:
// op counts, critical path, parallelism) for each workload across the
// worker pool.
func (tc *Toolchain) Estimate(ctx context.Context, ws []Workload) ([]Estimate, error) {
	return sweep.Map(ctx, tc.sweepOpts("estimate", func(i int) string { return ws[i].Name }), ws,
		func(_ int, w Workload) (Estimate, error) {
			return resource.EstimateCircuit(w.Circuit)
		})
}

// Characterize measures application models across the worker pool; the
// result is identical to serial characterization at any worker count.
func (tc *Toolchain) Characterize(ctx context.Context, ws []Workload) ([]AppModel, error) {
	return sweep.Characterize(ctx, tc.sweepOpts("characterize", func(i int) string { return ws[i].Name }), ws)
}

// Models characterizes the reference suite — the app models behind
// Figures 7–9.
func (tc *Toolchain) Models(ctx context.Context) ([]AppModel, error) {
	return tc.Characterize(ctx, toolflow.ReferenceWorkloads())
}

// Cost evaluates one design point (application model × computation
// size) at the toolchain's technology.
func (tc *Toolchain) Cost(m AppModel, totalOps float64) (DesignPoint, error) {
	dp, err := toolflow.Evaluate(m, totalOps, tc.tech.PhysicalErrorRate)
	if err != nil {
		return DesignPoint{}, err
	}
	tc.emit(Event{Stage: "cost", Cell: m.Name, Total: 1})
	return dp, nil
}

// CostSurgery evaluates the design point under all three communication
// schemes (the quantified §8.2 comparison).
func (tc *Toolchain) CostSurgery(m AppModel, totalOps float64) (SurgeryPoint, error) {
	sp, err := toolflow.EvaluateSurgery(m, totalOps, tc.tech.PhysicalErrorRate)
	if err != nil {
		return SurgeryPoint{}, err
	}
	tc.emit(Event{Stage: "cost", Cell: m.Name, Total: 1})
	return sp, nil
}

// Crossover returns the computation size where double-defect codes
// overtake planar codes at the toolchain's technology.
func (tc *Toolchain) Crossover(m AppModel) (kStar float64, ok bool) {
	return toolflow.Crossover(m, tc.tech.PhysicalErrorRate)
}

// PipelineResult is one workload carried through the full pipeline:
// its measured model, its compiled plan under every backend, and its
// costed design point under all three communication schemes.
type PipelineResult struct {
	Model AppModel
	Plans []Plan
	Point SurgeryPoint
}

// Run carries one workload through Characterize → Compile → Cost: the
// toolchain's end-to-end path for a single application at computation
// size totalOps.
func (tc *Toolchain) Run(ctx context.Context, w Workload, totalOps float64) (PipelineResult, error) {
	m, err := toolflow.CharacterizeContext(ctx, w, tc.seed)
	if err != nil {
		return PipelineResult{}, fmt.Errorf("toolchain: %w", err)
	}
	tc.emit(Event{Stage: "characterize", Cell: w.Name, Total: 1})
	plans, err := tc.CompileAll(ctx, w.Circuit)
	if err != nil {
		return PipelineResult{}, err
	}
	sp, err := tc.CostSurgery(m, totalOps)
	if err != nil {
		return PipelineResult{}, err
	}
	return PipelineResult{Model: m, Plans: plans, Point: sp}, nil
}

// Figure6 runs the braid policy grid (every suite application under
// every policy) across the worker pool. The zero Figure6Options value
// selects the toolchain's distance and the full suite.
func (tc *Toolchain) Figure6(ctx context.Context, fopt SweepFigure6Options) ([]SweepFigure6Cell, error) {
	if fopt.Distance == 0 {
		fopt.Distance = tc.distance
	}
	var label func(int) string
	if tc.progress != nil {
		var labels []string
		for _, w := range Fig6Suite() {
			if fopt.App != "" && !strings.EqualFold(fopt.App, w.Name) {
				continue
			}
			for _, p := range AllBraidPolicies {
				labels = append(labels, fmt.Sprintf("%s/policy%d", w.Name, int(p)))
			}
		}
		label = func(i int) string { return labels[i] }
	}
	return sweep.Figure6(ctx, tc.sweepOpts("figure6", label), fopt)
}

// Curve evaluates a log-spaced K sweep for one model (the Figure 7/8
// series) at the toolchain's technology.
func (tc *Toolchain) Curve(ctx context.Context, m AppModel, fromExp, toExp, pointsPerDecade int) ([]DesignPoint, error) {
	label := func(i int) string { return fmt.Sprintf("%s/point%d", m.Name, i) }
	return sweep.Curve(ctx, tc.sweepOpts("curve", label), m, tc.tech.PhysicalErrorRate, fromExp, toExp, pointsPerDecade)
}

// Boundary computes the Figure 9 crossover boundaries for every model
// over the given error-rate axis.
func (tc *Toolchain) Boundary(ctx context.Context, models []AppModel, rates []float64) ([][]BoundaryPoint, error) {
	label := func(i int) string {
		return fmt.Sprintf("%s/pp=%.1e", models[i/len(rates)].Name, rates[i%len(rates)])
	}
	if len(rates) == 0 {
		label = nil
	}
	return sweep.Boundary(ctx, tc.sweepOpts("boundary", label), models, rates)
}

// MeasureLogicalErrorRate runs the decoding Monte Carlo at the
// toolchain's seed, decoding trials across the WithWorkers pool. The
// failure count is bit-identical at any worker count (trial randomness
// is drawn sequentially; only the decoding work is pooled).
func (tc *Toolchain) MeasureLogicalErrorRate(ctx context.Context, d int, p float64, trials int) (DecoderResult, error) {
	l, err := decoder.NewLattice(d)
	if err != nil {
		return DecoderResult{}, err
	}
	mc := &decoder.MonteCarlo{
		Lattice: l,
		Rng:     rand.New(rand.NewSource(tc.seed)),
		Config:  decoder.Config{Workers: tc.workers, Strategy: tc.decodeStrategy},
	}
	res, err := mc.RunContext(ctx, p, trials)
	if err != nil {
		return DecoderResult{}, fmt.Errorf("toolchain: %w", err)
	}
	tc.emit(Event{Stage: "decoder", Cell: fmt.Sprintf("d=%d/p=%.2e", d, p), Total: 1})
	return res, nil
}

// DecoderGrid runs the §2.3 error-model validation grid (distance ×
// physical rate, Monte Carlo per cell) across the worker pool, with
// per-cell seeds derived from the toolchain's seed.
func (tc *Toolchain) DecoderGrid(ctx context.Context, distances []int, rates []float64, trials int) ([]SweepDecoderCell, error) {
	var label func(int) string
	if tc.progress != nil && len(rates) > 0 {
		label = func(i int) string {
			return fmt.Sprintf("d=%d/p=%.2e", distances[i/len(rates)], rates[i%len(rates)])
		}
	}
	return sweep.DecoderGrid(ctx, tc.sweepOpts("decoder", label), distances, rates, trials, tc.decodeStrategy)
}

// YieldGrid runs the communication-yield study: the braid backend
// compiled across a grid of defective devices (defect fraction ×
// independent realizations), reporting schedule latency and logical
// error rate per cell. Per-cell device seeds derive deterministically
// from the toolchain's seed, so records are bit-identical at any
// worker count; unroutable realizations are recorded, not fatal.
func (tc *Toolchain) YieldGrid(ctx context.Context, yopt SweepYieldOptions) ([]SweepYieldCell, error) {
	var label func(int) string
	if tc.progress != nil {
		label = func(i int) string { return fmt.Sprintf("cell%d", i) }
	}
	return sweep.YieldGrid(ctx, tc.sweepOpts("yield", label), yopt)
}

// CalibGrid runs the calibration study: square vs. heavy-hex coupling,
// uniform vs. calibrated devices, and live-defect survival, compiled
// through the braid backend across the worker pool. Per-cell seeds
// derive deterministically from the toolchain's seed.
func (tc *Toolchain) CalibGrid(ctx context.Context, copt SweepCalibOptions) ([]SweepCalibCell, error) {
	if copt.Calibration == nil {
		copt.Calibration = tc.calibration
	}
	var label func(int) string
	if tc.progress != nil {
		label = func(i int) string { return fmt.Sprintf("cell%d", i) }
	}
	return sweep.CalibGrid(ctx, tc.sweepOpts("calib", label), copt)
}

// EPRStudy runs the §8.1 pipelined-EPR window study per suite
// application at the toolchain's distance.
func (tc *Toolchain) EPRStudy(ctx context.Context) ([]SweepEPRCell, error) {
	var label func(int) string
	if tc.progress != nil {
		names := make([]string, 0, 4)
		for _, w := range Fig6Suite() {
			names = append(names, w.Name)
		}
		label = func(i int) string { return names[i] }
	}
	return sweep.EPRWindows(ctx, tc.sweepOpts("epr", label), teleport.Config{Distance: tc.distance})
}
