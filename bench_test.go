// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark prints/report-metrics the same series the
// paper plots; EXPERIMENTS.md records paper-vs-measured values.
//
//	go test -bench=. -benchmem .
//
// Benchmarks:
//
//	BenchmarkTable1CommMethods    — Table 1 tradeoffs (braid vs teleport)
//	BenchmarkTable2Parallelism    — Table 2 application characterization
//	BenchmarkFigure6BraidPolicies — Fig. 6 policy sweep (ratio + utilization)
//	BenchmarkFigure7Scaling       — Fig. 7 absolute space/time vs K
//	BenchmarkFigure8Crossover     — Fig. 8 resource ratios and crossover
//	BenchmarkFigure9Boundary      — Fig. 9 boundary across error rates
//	BenchmarkSection81EPRWindow   — §8.1 JIT window sweep
//	BenchmarkAblation*            — design-choice ablations (DESIGN.md §6)
package surfcomm_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"surfcomm"
)

// BenchmarkTable1CommMethods measures the defining asymmetry of the two
// communication methods: braid schedule length is independent of
// operand separation; teleport stalls grow with distribution distance
// and vanish under prefetch.
func BenchmarkTable1CommMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		near := surfcomm.NewCircuit("near", 8)
		near.Append(surfcomm.OpCNOT, 0, 1)
		far := surfcomm.NewCircuit("far", 8)
		far.Append(surfcomm.OpCNOT, 0, 7)
		place := surfcomm.RowMajorPlacement(8)
		rNear, err := surfcomm.SimulateBraids(near, surfcomm.Policy1,
			surfcomm.BraidConfig{Distance: 9, Placement: place})
		if err != nil {
			b.Fatal(err)
		}
		rFar, err := surfcomm.SimulateBraids(far, surfcomm.Policy1,
			surfcomm.BraidConfig{Distance: 9, Placement: surfcomm.RowMajorPlacement(8)})
		if err != nil {
			b.Fatal(err)
		}
		if rNear.ScheduleCycles != rFar.ScheduleCycles {
			b.Fatalf("braid latency must be distance-independent: %d vs %d",
				rNear.ScheduleCycles, rFar.ScheduleCycles)
		}
		b.ReportMetric(float64(rFar.ScheduleCycles), "braid-cycles")
		b.ReportMetric(float64(surfcomm.DoubleDefectTileQubits(9)), "dd-tile-qubits")
		b.ReportMetric(float64(surfcomm.PlanarTileQubits(9)), "planar-tile-qubits")
	}
}

// BenchmarkTable2Parallelism regenerates the Table 2 rows: per-app
// logical resources and the parallelism factor.
func BenchmarkTable2Parallelism(b *testing.B) {
	for _, w := range surfcomm.Table2Suite() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var est surfcomm.Estimate
			var err error
			for i := 0; i < b.N; i++ {
				est, err = surfcomm.EstimateCircuit(w.Circuit)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(est.Parallelism, "parallelism")
			b.ReportMetric(float64(est.LogicalOps), "ops")
			b.ReportMetric(float64(est.LogicalQubits), "qubits")
		})
	}
}

// BenchmarkFigure6BraidPolicies regenerates the Figure 6 series: for
// each application and policy, the schedule-to-critical-path ratio
// (blue bars) and average mesh utilization (red curve).
func BenchmarkFigure6BraidPolicies(b *testing.B) {
	for _, w := range surfcomm.Fig6Suite() {
		for _, p := range surfcomm.AllBraidPolicies {
			w, p := w, p
			b.Run(fmt.Sprintf("%s/%s", w.Name, p), func(b *testing.B) {
				var r surfcomm.BraidResult
				var err error
				for i := 0; i < b.N; i++ {
					r, err = surfcomm.SimulateBraids(w.Circuit, p, surfcomm.BraidConfig{Distance: 9, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.Ratio, "ratio")
				b.ReportMetric(100*r.AvgUtilization, "util%")
			})
		}
	}
}

// referenceModels caches the characterized suite across figure benches.
// Characterization cells fan across the sweep worker pool; the result
// is identical to the serial surfcomm.ReferenceModels(1).
var referenceModels = sync.OnceValues(func() ([]surfcomm.AppModel, error) {
	return surfcomm.SweepModels(surfcomm.SweepOptions{Seed: 1})
})

// BenchmarkFigure7Scaling regenerates the Figure 7 series: absolute
// time and physical-qubit usage for the SQ application across
// computation sizes at p_P = 1e-8.
func BenchmarkFigure7Scaling(b *testing.B) {
	models, err := referenceModels()
	if err != nil {
		b.Fatal(err)
	}
	m, err := surfcomm.ModelFor(models, "SQ")
	if err != nil {
		b.Fatal(err)
	}
	var pts []surfcomm.DesignPoint
	for i := 0; i < b.N; i++ {
		pts, err = surfcomm.Curve(m, 1e-8, 0, 24, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.PlanarSeconds <= first.PlanarSeconds || last.DDSeconds <= first.DDSeconds {
		b.Fatal("time must grow with computation size")
	}
	b.ReportMetric(first.PlanarSeconds, "planar-sec-K1")
	b.ReportMetric(last.PlanarSeconds, "planar-sec-K1e24")
	b.ReportMetric(first.PlanarQubits, "planar-qubits-K1")
	b.ReportMetric(last.PlanarQubits, "planar-qubits-K1e24")
}

// BenchmarkFigure8Crossover regenerates the Figure 8 ratio curves and
// crossover points for the serial SQ and parallel IM applications.
func BenchmarkFigure8Crossover(b *testing.B) {
	models, err := referenceModels()
	if err != nil {
		b.Fatal(err)
	}
	// The paper evaluates at p_P=1e-8; our crossover ordering is
	// cleanest at 1e-4 (EXPERIMENTS.md discusses the deviation), so the
	// bench reports both.
	for _, pp := range []float64{1e-8, 1e-4} {
		for _, name := range []string{"SQ", "IM_Fully_Inlined"} {
			name, pp := name, pp
			b.Run(fmt.Sprintf("%s/pp=%.0e", name, pp), func(b *testing.B) {
				m, err := surfcomm.ModelFor(models, name)
				if err != nil {
					b.Fatal(err)
				}
				var k float64
				var ok bool
				for i := 0; i < b.N; i++ {
					k, ok = surfcomm.Crossover(m, pp)
				}
				if ok {
					b.ReportMetric(k, "crossover-K")
				} else {
					b.ReportMetric(-1, "crossover-K")
				}
				dp, err := surfcomm.Evaluate(m, 100, pp)
				if err != nil {
					b.Fatal(err)
				}
				if dp.SpaceTimeRatio <= 1 {
					b.Fatalf("planar must be favored at small K, got ratio %.2f", dp.SpaceTimeRatio)
				}
				b.ReportMetric(dp.SpaceTimeRatio, "ratio-at-K100")
			})
		}
	}
}

// BenchmarkFigure9Boundary regenerates the Figure 9 boundary lines:
// crossover computation size across physical error rates per app.
func BenchmarkFigure9Boundary(b *testing.B) {
	models, err := referenceModels()
	if err != nil {
		b.Fatal(err)
	}
	rates := surfcomm.Figure9ErrorRates()
	for _, m := range models {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			var pts []surfcomm.BoundaryPoint
			for i := 0; i < b.N; i++ {
				pts = surfcomm.Boundary(m, rates)
			}
			// Report the boundary endpoints (1e-8 and 1e-3).
			lo, hi := pts[0], pts[len(pts)-1]
			metric := func(p surfcomm.BoundaryPoint) float64 {
				if p.OffChart {
					return -1
				}
				return p.CrossoverOps
			}
			b.ReportMetric(metric(lo), "K*-at-1e-8")
			b.ReportMetric(metric(hi), "K*-at-1e-3")
		})
	}
}

// BenchmarkSection81EPRWindow regenerates the §8.1 study: live-EPR
// savings and latency overhead of just-in-time distribution versus
// prefetch-all, per application.
func BenchmarkSection81EPRWindow(b *testing.B) {
	for _, w := range surfcomm.Fig6Suite() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			b.ReportAllocs()
			regions := 4
			if w.Circuit.NumQubits > 128 {
				regions = 16 // bigger machines get the full checkerboard
			}
			width := 32
			if perBank := (w.Circuit.NumQubits + regions - 1) / regions; perBank > width {
				width = perBank
			}
			sched, err := surfcomm.ScheduleSIMD(w.Circuit, surfcomm.SIMDConfig{Regions: regions, Width: width, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			cfg := surfcomm.TeleportConfig{Distance: 9}
			jit := surfcomm.JITWindow(sched, cfg)
			dist := surfcomm.NewEPRDistributor() // reused: steady state is allocation-free
			var jitRes, flood surfcomm.TeleportResult
			for i := 0; i < b.N; i++ {
				jitRes, err = dist.Distribute(sched, jit, cfg)
				if err != nil {
					b.Fatal(err)
				}
				flood, err = dist.Distribute(sched, surfcomm.PrefetchAll, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(sched.Moves) == 0 {
				b.Skip("no moves")
			}
			savings := float64(flood.PeakLiveEPR) / float64(max(1, jitRes.PeakLiveEPR))
			b.ReportMetric(savings, "epr-savings-x")
			b.ReportMetric(100*jitRes.LatencyOverhead, "latency-overhead%")
		})
	}
}

// BenchmarkSweepFigure6Grid measures the parallel sweep subsystem on
// the full Figure 6 (application × policy) grid — the throughput lever
// for wide scenario sweeps. Serial and pooled runs are benchmarked side
// by side; their results are verified identical cell-for-cell, so the
// speedup is pure scheduling.
func BenchmarkSweepFigure6Grid(b *testing.B) {
	serial, err := surfcomm.SweepFigure6(surfcomm.SweepOptions{Workers: 1, Seed: 1}, 9)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, err := surfcomm.SweepFigure6(surfcomm.SweepOptions{Workers: workers, Seed: 1}, 9)
				if err != nil {
					b.Fatal(err)
				}
				if len(cells) != len(serial) {
					b.Fatalf("grid size changed: %d vs %d", len(cells), len(serial))
				}
				for j := range cells {
					if cells[j] != serial[j] {
						b.Fatalf("cell %d diverged from serial run: %+v vs %+v", j, cells[j], serial[j])
					}
				}
			}
			b.ReportMetric(float64(len(serial)), "cells")
		})
	}
}

// BenchmarkAblationLocalTOps isolates the contribution of magic-state
// traffic to braid congestion: the paper's §4.3 communication pressure.
func BenchmarkAblationLocalTOps(b *testing.B) {
	im := surfcomm.Ising(surfcomm.IsingConfig{N: 64, Steps: 2}, true)
	for _, local := range []bool{false, true} {
		local := local
		name := "with-magic-traffic"
		if local {
			name = "local-t-ablation"
		}
		b.Run(name, func(b *testing.B) {
			var r surfcomm.BraidResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = surfcomm.SimulateBraids(im, surfcomm.Policy6,
					surfcomm.BraidConfig{Distance: 9, Seed: 1, LocalTOps: local})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Ratio, "ratio")
			b.ReportMetric(float64(r.ScheduleCycles), "cycles")
		})
	}
}

// BenchmarkAblationLayout isolates the mapping-level optimization
// (§6.2): Policy 1 (interleaving, naive layout) vs Policy 2
// (interleaving + interaction-aware layout).
func BenchmarkAblationLayout(b *testing.B) {
	sha := surfcomm.SHA1(surfcomm.SHA1Config{Rounds: 1, WordWidth: 16})
	for _, p := range []surfcomm.BraidPolicy{surfcomm.Policy1, surfcomm.Policy2} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var r surfcomm.BraidResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = surfcomm.SimulateBraids(sha, p, surfcomm.BraidConfig{Distance: 9, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Ratio, "ratio")
		})
	}
}

// BenchmarkErrorModelValidation grounds the analytic p_L(d) model in
// Monte Carlo decoding: below threshold, each distance step suppresses
// the measured logical rate (paper §2.3's matching machinery). Trials
// decode across the worker pool with reusable per-worker scratch; the
// reported pL is bit-identical to a serial run.
func BenchmarkErrorModelValidation(b *testing.B) {
	const p = 0.03
	const trials = 1200
	for _, d := range []int{3, 5, 7} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			var r surfcomm.DecoderResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = surfcomm.MeasureLogicalErrorRate(d, p, trials, 7)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.LogicalRate, "pL")
		})
	}
}

// BenchmarkExtensionLatticeSurgery quantifies the paper's §8.2 claim
// that merge/split chains have neither braiding's speed nor
// teleportation's prefetchability: surgery's space-time product
// relative to both baselines, across the design space.
func BenchmarkExtensionLatticeSurgery(b *testing.B) {
	models, err := referenceModels()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"GSE", "IM_Fully_Inlined"} {
		name := name
		b.Run(name, func(b *testing.B) {
			m, err := surfcomm.ModelFor(models, name)
			if err != nil {
				b.Fatal(err)
			}
			var sp surfcomm.SurgeryPoint
			for i := 0; i < b.N; i++ {
				sp, err = surfcomm.EvaluateSurgery(m, 1e10, 1e-5)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sp.SurgeryVsPlanar, "vs-planar")
			b.ReportMetric(sp.SurgeryVsDD, "vs-dd")
		})
	}
}

// BenchmarkAblationFactoryRefill sweeps the factory-port recovery time,
// the space-time lever of the paper's §4.3 factory sizing discussion.
func BenchmarkAblationFactoryRefill(b *testing.B) {
	im := surfcomm.Ising(surfcomm.IsingConfig{N: 64, Steps: 2}, true)
	for _, refill := range []int64{1, 9, 27} {
		refill := refill
		b.Run(fmt.Sprintf("refill=%d", refill), func(b *testing.B) {
			var r surfcomm.BraidResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = surfcomm.SimulateBraids(im, surfcomm.Policy6,
					surfcomm.BraidConfig{Distance: 9, Seed: 1, FactoryRefill: refill})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Ratio, "ratio")
		})
	}
}

// BenchmarkIncrementalRecompile measures the tentpole incremental
// claim end-to-end: each iteration edits one leaf of a warm 8-stage
// pipeline and recompiles through the module cache, so exactly one
// module reaches the backend per iteration. Compare against
// BenchmarkMonolithicRecompile — the same edit loop priced as full
// flatten-and-recompile. The allocation profile tracks the
// digest/stitch hot path.
func BenchmarkIncrementalRecompile(b *testing.B) {
	ctx := context.Background()
	tc, err := surfcomm.NewToolchain(surfcomm.WithModular(), surfcomm.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	p, err := surfcomm.PipelineProgram(8)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tc.CompileIncremental(ctx, surfcomm.BraidBackend{}, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var plan surfcomm.Plan
	for i := 0; i < b.N; i++ {
		v, err := surfcomm.MutateModule(p, "stagee", i+1)
		if err != nil {
			b.Fatal(err)
		}
		if plan, err = tc.CompileIncremental(ctx, surfcomm.BraidBackend{}, v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(plan.Modular.Compiled)), "modules-recompiled")
	b.ReportMetric(float64(plan.Modular.Hits), "module-cache-hits")
}

// BenchmarkMonolithicRecompile is the baseline the incremental path is
// judged against: the same one-leaf edit loop, but every iteration
// flattens the whole program and recompiles it from scratch.
func BenchmarkMonolithicRecompile(b *testing.B) {
	ctx := context.Background()
	tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	p, err := surfcomm.PipelineProgram(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := surfcomm.MutateModule(p, "stagee", i+1)
		if err != nil {
			b.Fatal(err)
		}
		flat, err := v.Flatten(surfcomm.InlineAll)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tc.Compile(ctx, surfcomm.BraidBackend{}, flat); err != nil {
			b.Fatal(err)
		}
	}
}
