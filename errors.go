package surfcomm

import "surfcomm/internal/scerr"

// Sentinel errors of the compilation pipeline. Every stage — backend
// compiles, characterization, design-space sweeps — wraps these with
// %w, so callers classify failures with errors.Is regardless of which
// internal layer produced them:
//
//	plan, err := tc.Compile(ctx, backend, circ)
//	switch {
//	case errors.Is(err, surfcomm.ErrCanceled):   // ctx canceled mid-compile
//	case errors.Is(err, surfcomm.ErrBadConfig):  // invalid option/target
//	case errors.Is(err, surfcomm.ErrUnknownModel): // unregistered app model
//	case errors.Is(err, surfcomm.ErrUnroutable):   // impossible on the device
//	}
var (
	// ErrCanceled reports a stage aborted by its context; it also
	// matches the underlying context.Canceled/DeadlineExceeded cause.
	ErrCanceled = scerr.ErrCanceled
	// ErrBadConfig reports an invalid configuration, option, or target.
	ErrBadConfig = scerr.ErrBadConfig
	// ErrUnknownModel reports a lookup of an application model or
	// scaling law that is not registered.
	ErrUnknownModel = scerr.ErrUnknownModel
	// ErrUnroutable reports a braid, merge-chain, or EPR route (or a
	// qubit placement) that is impossible on a defective device:
	// endpoints dead or disconnected by missing links. Every backend
	// returns it (wrapped with %w) instead of hanging or panicking.
	ErrUnroutable = scerr.ErrUnroutable
	// ErrOverloaded reports a compile request shed by the serving
	// layer's admission control or per-client rate limiting: the
	// service is healthy but cannot take the work right now, and the
	// request should be retried after a backoff (the HTTP layer maps it
	// to 429/503 with an honest Retry-After).
	ErrOverloaded = scerr.ErrOverloaded
)
