package surfcomm_test

import (
	"context"
	"fmt"
	"log"

	"surfcomm"
)

// Example_toolchain compiles one workload end to end through the
// option-configured Toolchain: characterize, compile on the braid
// backend, and cost the design point.
func Example_toolchain() {
	tc, err := surfcomm.NewToolchain(
		surfcomm.WithDistance(5),
		surfcomm.WithSeed(1),
		surfcomm.WithPolicy(surfcomm.Policy6),
	)
	if err != nil {
		log.Fatal(err)
	}

	circ := surfcomm.Ising(surfcomm.IsingConfig{N: 8, Steps: 1}, true)
	plan, err := tc.Compile(context.Background(), surfcomm.BraidBackend{}, circ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend=%s cycles=%d braids=%d\n", plan.Backend, plan.Cycles, plan.CommOps)

	m, err := tc.Characterize(context.Background(), []surfcomm.Workload{{Name: "IM", Circuit: circ}})
	if err != nil {
		log.Fatal(err)
	}
	dp, err := tc.Cost(m[0], 1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design point: d=%d planar-favored=%t\n", dp.Distance, dp.SpaceTimeRatio > 1)
	// Output:
	// backend=braid cycles=760 braids=272
	// design point: d=3 planar-favored=true
}

// Example_backendComparison compiles the same circuit through all
// three communication backends — the paper's braiding vs teleportation
// vs lattice surgery comparison behind one interface.
func Example_backendComparison() {
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	circ := surfcomm.Ising(surfcomm.IsingConfig{N: 8, Steps: 1}, true)
	for _, b := range surfcomm.Backends() {
		plan, err := tc.Compile(context.Background(), b, circ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s cycles=%-6d comm-ops=%d\n", plan.Backend, plan.Cycles, plan.CommOps)
	}
	// Output:
	// braid    cycles=760    comm-ops=272
	// planar   cycles=298    comm-ops=128
	// surgery  cycles=1681   comm-ops=272
}
