package surfcomm_test

import (
	"context"
	"errors"
	"testing"

	"surfcomm"
)

// TestValidatingConstructorsRejectBadConfigs pins the panic-free
// workload surface: every New* constructor turns the generator panics
// into errors matching ErrBadConfig.
func TestValidatingConstructorsRejectBadConfigs(t *testing.T) {
	cases := map[string]func() (*surfcomm.Circuit, error){
		"GSE M<2":       func() (*surfcomm.Circuit, error) { return surfcomm.NewGSE(surfcomm.GSEConfig{M: 1, Steps: 1}) },
		"GSE steps<1":   func() (*surfcomm.Circuit, error) { return surfcomm.NewGSE(surfcomm.GSEConfig{M: 4, Steps: 0}) },
		"SQ odd":        func() (*surfcomm.Circuit, error) { return surfcomm.NewSQ(surfcomm.SQConfig{N: 7, Iters: 1}) },
		"SQ small":      func() (*surfcomm.Circuit, error) { return surfcomm.NewSQ(surfcomm.SQConfig{N: 2, Iters: 1}) },
		"SQ iters blow": func() (*surfcomm.Circuit, error) { return surfcomm.NewSQ(surfcomm.SQConfig{N: 64}) },
		"SHA1 rounds<1": func() (*surfcomm.Circuit, error) { return surfcomm.NewSHA1(surfcomm.SHA1Config{Rounds: 0}) },
		"SHA1 width<4": func() (*surfcomm.Circuit, error) {
			return surfcomm.NewSHA1(surfcomm.SHA1Config{Rounds: 1, WordWidth: 2})
		},
		"Ising N<2": func() (*surfcomm.Circuit, error) {
			return surfcomm.NewIsing(surfcomm.IsingConfig{N: 1, Steps: 1}, true)
		},
		"Ising steps<1": func() (*surfcomm.Circuit, error) {
			return surfcomm.NewIsing(surfcomm.IsingConfig{N: 4, Steps: 0}, false)
		},
		"GSE neg tdepth": func() (*surfcomm.Circuit, error) {
			return surfcomm.NewGSE(surfcomm.GSEConfig{M: 4, Steps: 1, RotationTDepth: -1})
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			c, err := build()
			if !errors.Is(err, surfcomm.ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
			if c != nil {
				t.Error("bad config should return a nil circuit")
			}
		})
	}
}

// TestValidatingConstructorsMatchGenerators pins the wrapper property:
// a valid config builds the same circuit through both entry points.
func TestValidatingConstructorsMatchGenerators(t *testing.T) {
	got, err := surfcomm.NewSQ(surfcomm.SQConfig{N: 6, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := surfcomm.SQ(surfcomm.SQConfig{N: 6, Iters: 2})
	if got.Name != want.Name || got.NumQubits != want.NumQubits || len(got.Gates) != len(want.Gates) {
		t.Errorf("NewSQ diverges from SQ: %s/%d/%d vs %s/%d/%d",
			got.Name, got.NumQubits, len(got.Gates), want.Name, want.NumQubits, len(want.Gates))
	}
}

// TestCompileRejectsBadTargetsWithoutPanic sweeps the malformed
// circuit/target surface of every backend: each case must return an
// error matching ErrBadConfig, never panic (the -race suite also
// proves no internal constructor is reached).
func TestCompileRejectsBadTargetsWithoutPanic(t *testing.T) {
	ctx := context.Background()
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
	if err != nil {
		t.Fatal(err)
	}
	good := surfcomm.GSE(surfcomm.GSEConfig{M: 6, Steps: 1})

	outOfRange := surfcomm.NewCircuit("bad-gate", 2)
	outOfRange.Gates = append(outOfRange.Gates, surfcomm.Gate{Op: surfcomm.OpCNOT, Qubits: []int{0, 5}})

	tiny := surfcomm.RowMajorPlacement(2)

	cases := map[string]struct {
		circuit  *surfcomm.Circuit
		override func(*surfcomm.Target)
	}{
		"nil circuit":        {circuit: nil},
		"zero qubits":        {circuit: surfcomm.NewCircuit("empty", 0)},
		"negative qubits":    {circuit: surfcomm.NewCircuit("negative", -3)},
		"gate out of range":  {circuit: outOfRange},
		"negative distance":  {circuit: good, override: func(tg *surfcomm.Target) { tg.Distance = -1 }},
		"unknown policy":     {circuit: good, override: func(tg *surfcomm.Target) { tg.Policy = 42 }},
		"negative window":    {circuit: good, override: func(tg *surfcomm.Target) { tg.Window = -7 }},
		"negative bandwidth": {circuit: good, override: func(tg *surfcomm.Target) { tg.LinkBandwidth = -1 }},
		"bad simd regions":   {circuit: good, override: func(tg *surfcomm.Target) { tg.SIMD = surfcomm.SIMDConfig{Regions: 3, Width: 8} }},
		"bad simd width":     {circuit: good, override: func(tg *surfcomm.Target) { tg.SIMD = surfcomm.SIMDConfig{Regions: 4, Width: -2} }},
		"bad technology":     {circuit: good, override: func(tg *surfcomm.Target) { tg.Technology = surfcomm.Superconducting(-1) }},
		"short placement":    {circuit: good, override: func(tg *surfcomm.Target) { tg.Placement = tiny }},
	}
	for name, c := range cases {
		for _, b := range surfcomm.Backends() {
			t.Run(name+"/"+b.Name(), func(t *testing.T) {
				var overrides []func(*surfcomm.Target)
				if c.override != nil {
					overrides = append(overrides, c.override)
				}
				_, err := tc.Compile(ctx, b, c.circuit, overrides...)
				if !errors.Is(err, surfcomm.ErrBadConfig) {
					t.Errorf("error = %v, want ErrBadConfig", err)
				}
			})
		}
	}
}
