// Quickstart: build a small logical circuit, run the compilation
// frontend, and execute it on both error-corrected architectures —
// the tiled double-defect machine (braids) and the Multi-SIMD planar
// machine (teleportation) — printing the space-time costs side by side.
package main

import (
	"fmt"
	"log"

	"surfcomm"
)

func main() {
	log.SetFlags(0)

	// A toy phase-estimation-style kernel: an ancilla interrogates four
	// data qubits through controlled rotations.
	b := surfcomm.NewBuilder("quickstart", 5)
	b.PrepX(0)
	for q := 1; q <= 4; q++ {
		b.H(q)
		b.CRz(0, q, 0.25*float64(q))
	}
	for q := 1; q <= 4; q++ {
		b.CNOT(q, (q%4)+1)
	}
	b.MeasX(0)
	c := b.Circuit

	est, err := surfcomm.EstimateCircuit(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frontend estimate:")
	fmt.Printf("  %s\n\n", est)

	// Double-defect backend: braided communication under the combined
	// priority policy.
	braidRes, err := surfcomm.SimulateBraids(c, surfcomm.Policy6, surfcomm.BraidConfig{Distance: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("double-defect (braids, Policy 6):")
	fmt.Printf("  schedule %d cycles, critical path %d, ratio %.2f\n",
		braidRes.ScheduleCycles, braidRes.CriticalPathCycles, braidRes.Ratio)
	fmt.Printf("  mesh utilization %.1f%%, %d tiles, %d physical qubits\n\n",
		100*braidRes.AvgUtilization, braidRes.Tiles, braidRes.PhysicalQubits)

	// Planar backend: Multi-SIMD schedule plus just-in-time EPR
	// distribution.
	sched, err := surfcomm.ScheduleSIMD(c, surfcomm.SIMDConfig{Regions: 4, Width: 8})
	if err != nil {
		log.Fatal(err)
	}
	cfg := surfcomm.TeleportConfig{Distance: 9}
	epr, err := surfcomm.DistributeEPR(sched, surfcomm.JITWindow(sched, cfg), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planar (Multi-SIMD + teleportation, JIT window):")
	fmt.Printf("  %d timesteps (%d critical), %d teleports, %d magic deliveries\n",
		sched.Timesteps, sched.CriticalTimesteps, sched.Teleports, sched.MagicMoves)
	fmt.Printf("  schedule %d cycles (stalls %d), peak live EPR qubits %d\n",
		epr.ScheduleCycles, epr.StallCycles, epr.PeakLiveEPR)
}
