// Error decoding (paper §2.3): run the matching decoder's Monte Carlo
// across code distances and physical error rates, reproducing the two
// regimes the whole design space rests on — exponential suppression
// below threshold, and the uncorrectable regime above it.
package main

import (
	"fmt"
	"log"

	"surfcomm"
)

func main() {
	log.SetFlags(0)

	const trials = 2000
	rates := []float64{0.01, 0.03, 0.08, 0.15, 0.25}
	distances := []int{3, 5, 7}

	fmt.Println("logical error rate per decode round (matching decoder, toric lattice)")
	fmt.Printf("%-10s", "p \\ d")
	for _, d := range distances {
		fmt.Printf(" %10d", d)
	}
	fmt.Println()
	for _, p := range rates {
		fmt.Printf("%-10.2f", p)
		for _, d := range distances {
			r, err := surfcomm.MeasureLogicalErrorRate(d, p, trials, 42)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.4f", r.LogicalRate)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Below threshold (~0.10) the columns fall with distance — the suppression")
	fmt.Println("the toolflow's p_L(d) = A*(p_P/p_th)^((d+1)/2) model assumes. Above it,")
	fmt.Println("more distance no longer helps: the uncorrectable regime of Figure 9's")
	fmt.Println("right edge.")
}
