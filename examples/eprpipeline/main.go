// Pipelined EPR distribution (paper §8.1): schedule the Square Root
// application on the Multi-SIMD planar machine and sweep the
// just-in-time look-ahead window, trading live EPR qubits (space)
// against teleport stalls (time).
package main

import (
	"fmt"
	"log"

	"surfcomm"
)

func main() {
	log.SetFlags(0)

	sq := surfcomm.SQ(surfcomm.SQConfig{N: 8, Iters: 2})
	sched, err := surfcomm.ScheduleSIMD(sq, surfcomm.SIMDConfig{Regions: 4, Width: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d timesteps, %d EPR-consuming moves\n\n",
		sq.Name, sched.Timesteps, len(sched.Moves))

	cfg := surfcomm.TeleportConfig{Distance: 9}
	jit := surfcomm.JITWindow(sched, cfg)
	windows := []int64{0, jit / 2, jit, 4 * jit, 16 * jit, surfcomm.PrefetchAll}
	results, err := surfcomm.SweepEPRWindows(sched, windows, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %14s %14s %14s\n", "window (cyc)", "peak live EPR", "stall cycles", "overhead")
	for _, r := range results {
		label := fmt.Sprintf("%d", r.WindowCycles)
		if r.WindowCycles == surfcomm.PrefetchAll {
			label = "prefetch-all"
		}
		fmt.Printf("%-14s %14d %14d %13.1f%%\n",
			label, r.PeakLiveEPR, r.StallCycles, 100*r.LatencyOverhead)
	}

	flood := results[len(results)-1]
	best := results[2] // the JIT point
	fmt.Printf("\njust-in-time window %d: %.1fx fewer live EPR qubits than prefetch-all,\n",
		jit, float64(flood.PeakLiveEPR)/float64(best.PeakLiveEPR))
	fmt.Printf("at %.1f%% added latency (paper: up to ~24x savings at <= ~4%% latency).\n",
		100*best.LatencyOverhead)
}
