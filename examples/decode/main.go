// Decode: the streaming /decode client walkthrough. The program opens
// a real-time decode session against the compile daemon, streams
// deterministic seeded syndrome rounds, prints every decoded window's
// correction as the server answers it, and verifies the cumulative
// streamed corrections clear the final syndrome. All printed fields
// are deterministic for a fixed seed and strategy (wall-clock decode
// latency is deliberately omitted), so the output doubles as the CI
// decode-smoke golden transcript. Point -addr at a running daemon or
// let the program start an in-process one:
//
//	go run ./cmd/surfcommd &
//	go run ./examples/decode -addr http://localhost:8723
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http/httptest"
	"time"

	"surfcomm"
	"surfcomm/client"
	"surfcomm/internal/service"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "base URL of a running surfcommd (empty = start an in-process server)")
	strategy := flag.String("strategy", surfcomm.DecoderStrategyUnionFind, "decoding strategy (mwpm or unionfind)")
	d := flag.Int("d", 5, "code distance")
	window := flag.Int("window", 3, "rounds per decode window")
	rounds := flag.Int("rounds", 9, "syndrome rounds to stream")
	p := flag.Float64("p", 0.02, "per-round data-qubit error probability")
	seed := flag.Int64("seed", 23, "error-sampling seed")
	flag.Parse()

	base := *addr
	if base == "" {
		tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
		if err != nil {
			log.Fatal(err)
		}
		srv := httptest.NewServer(service.NewHandler(service.New(tc, service.Config{})))
		defer srv.Close()
		base = srv.URL
	}
	cl := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The client keeps a local copy of the lattice so it can sample
	// errors, measure syndromes, and audit the streamed corrections.
	l, err := surfcomm.NewDecoderLattice(*d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("POST /decode: d=%d window=%d strategy=%s\n", *d, *window, *strategy)
	ds, err := cl.DecodeStream(ctx, service.DecodeStart{
		Distance: *d, Window: *window, Strategy: *strategy,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	ack := ds.Ack()
	fmt.Printf("ack: checks=%d qubits=%d\n", ack.Checks, ack.Qubits)

	// Stream: each round accumulates fresh data errors on top of the
	// surviving ones, exactly what repeated stabilizer measurement sees.
	rng := rand.New(rand.NewSource(*seed))
	errs := l.NewErrorPattern()
	for r := 0; r < *rounds; r++ {
		for q := range errs {
			if rng.Float64() < *p {
				errs[q] = !errs[q]
			}
		}
		if err := ds.Send(l.Syndrome(errs)); err != nil {
			log.Fatalf("round %d: %v", r, err)
		}
	}
	if err := ds.CloseSend(); err != nil {
		log.Fatal(err)
	}

	// Drain window results as the server answers them. Corrections are
	// cumulative across windows: XOR-ing them all should cancel every
	// error the stream accumulated (up to a stabilizer loop).
	cumulative := l.NewErrorPattern()
	for {
		res, err := ds.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: rounds=%d defects=%d vented=%v correction=%s\n",
			res.Window, res.Rounds, res.Defects, res.Vented, res.Correction)
		corr, err := ds.Correction(res)
		if err != nil {
			log.Fatal(err)
		}
		for q, hot := range corr {
			if hot {
				cumulative[q] = !cumulative[q]
			}
		}
	}
	sum, ok := ds.Summary()
	if !ok {
		log.Fatal("stream ended without a summary")
	}
	fmt.Printf("summary: windows=%d rounds=%d vents=%d workops=%d kept_up=%v\n",
		sum.Windows, sum.Rounds, sum.Vents, sum.WorkOps, sum.KeptUp)

	residual := l.NewErrorPattern()
	for q := range residual {
		residual[q] = errs[q] != cumulative[q]
	}
	clear := true
	for _, hot := range l.Syndrome(residual) {
		if hot {
			clear = false
		}
	}
	fmt.Printf("cumulative correction clears final syndrome: %v\n", clear)

	// The session's worker slot frees in the handler's deferred cleanup,
	// which can land a beat after the client reads the summary — poll
	// the health endpoint until the active count settles.
	var health service.HealthResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		if health, err = cl.Health(ctx); err != nil {
			log.Fatal(err)
		}
		if health.Decode.Active == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("healthz decode counters: sessions=%d windows=%d rounds=%d active=%d\n",
		health.Decode.Sessions, health.Decode.Windows, health.Decode.Rounds, health.Decode.Active)
}
