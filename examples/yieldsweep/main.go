// Yieldsweep: compile one workload onto progressively more defective
// devices and watch the communication cost climb — the scenario the
// pluggable device-topology layer exists for. Real superconducting
// chips have dead tiles, broken couplers, and slow links; this example
// compares the perfect grid against random-yield and clustered-defect
// realizations of the same machine, then runs the deterministic
// YieldGrid study through the Toolchain.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"surfcomm"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	c := surfcomm.GSE(surfcomm.GSEConfig{M: 10, Steps: 2})

	// One compile per device model, same circuit, same seed: any cost
	// difference is the topology's doing.
	devices := []*surfcomm.Device{
		surfcomm.PerfectDevice(),
		surfcomm.RandomYieldDevice(0.03, 7),
		surfcomm.RandomYieldDevice(0.08, 7),
		surfcomm.ClusteredDefectsDevice(0.08, 7),
	}
	fmt.Println("braid backend vs. device topology (GSE, d=9, Policy 6):")
	fmt.Printf("  %-28s %10s %8s %10s\n", "device", "cycles", "ratio", "adaptive")
	for _, dev := range devices {
		tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1), surfcomm.WithDevice(dev))
		if err != nil {
			log.Fatal(err)
		}
		plan, err := tc.Compile(ctx, surfcomm.BraidBackend{}, c)
		if errors.Is(err, surfcomm.ErrUnroutable) {
			// A defect map can cut qubits off entirely; compiles fail
			// fast instead of hanging.
			fmt.Printf("  %-28s %10s\n", dev, "unroutable")
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %10d %8.3f %10d\n",
			plan.Device, plan.Cycles, plan.Braid.Ratio, plan.Braid.AdaptiveRoutes)
	}

	// The systematic version: the YieldGrid study sweeps defect
	// fractions with independent device realizations per fraction.
	// Per-cell seeds derive from the toolchain seed, so the records are
	// bit-identical at any worker count.
	tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1), surfcomm.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	cells, err := tc.YieldGrid(ctx, surfcomm.SweepYieldOptions{
		Fractions: []float64{0, 0.02, 0.05},
		Trials:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nyield study (logical error rate & latency vs. defect fraction):")
	fmt.Printf("  %-10s %6s %10s %8s %12s\n", "p_defect", "trial", "cycles", "ratio", "p_L(sched)")
	for _, cell := range cells {
		if cell.Unroutable {
			fmt.Printf("  %-10g %6d %10s\n", cell.DefectFrac, cell.Trial, "unroutable")
			continue
		}
		fmt.Printf("  %-10g %6d %10d %8.3f %12.3e\n",
			cell.DefectFrac, cell.Trial, cell.Cycles, cell.Ratio, cell.LogicalRate)
	}
}
