// Serve: the compile-service client walkthrough. By default the
// program starts an in-process surfcommd-equivalent server (the same
// internal/service handler the daemon mounts) and drives it end to
// end: estimate a workload, compile it fresh (cache miss), compile it
// again (cache hit, bit-identical), fan a three-backend batch through
// the worker pool, and read the /healthz counters. Point -addr at a
// running `surfcommd` to run the same walkthrough against a real
// daemon:
//
//	go run ./cmd/surfcommd &
//	go run ./examples/serve -addr http://localhost:8723
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"surfcomm"
	"surfcomm/internal/service"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "base URL of a running surfcommd (empty = start an in-process server)")
	flag.Parse()

	base := *addr
	if base == "" {
		tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
		if err != nil {
			log.Fatal(err)
		}
		srv := httptest.NewServer(service.NewHandler(service.New(tc, service.Config{})))
		defer srv.Close()
		base = srv.URL
		fmt.Printf("started in-process compile service at %s\n\n", base)
	}

	// The workload travels as QASM text — the same interchange format
	// cmd/qasm emits.
	circ, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: 8, Steps: 2})
	if err != nil {
		log.Fatal(err)
	}
	var qasm bytes.Buffer
	if err := surfcomm.WriteQASM(&qasm, circ); err != nil {
		log.Fatal(err)
	}
	req := map[string]any{"qasm": qasm.String(), "backend": "braid"}

	fmt.Println("POST /estimate")
	var est service.EstimateResponse
	post(base+"/estimate", map[string]any{"qasm": qasm.String()}, &est)
	fmt.Printf("  %s: %d qubits, %d ops, parallelism %.2f\n\n", est.Name, est.LogicalQubits, est.LogicalOps, est.Parallelism)

	fmt.Println("POST /compile (first request compiles)")
	var first service.CompileResponse
	post(base+"/compile", req, &first)
	fmt.Printf("  cycles=%d physical_qubits=%.0f cached=%v\n\n", first.Plan.Cycles, first.Plan.PhysicalQubits, first.Cached)

	fmt.Println("POST /compile (identical request is served from the cache)")
	var second service.CompileResponse
	post(base+"/compile", req, &second)
	fmt.Printf("  cycles=%d cached=%v digest match=%v\n\n", second.Plan.Cycles, second.Cached, first.Digest == second.Digest)

	fmt.Println("POST /batch (one circuit through every backend)")
	var batch []service.CompileResponse
	post(base+"/batch", []map[string]any{
		{"qasm": qasm.String(), "backend": "braid"},
		{"qasm": qasm.String(), "backend": "planar"},
		{"qasm": qasm.String(), "backend": "surgery"},
	}, &batch)
	for _, slot := range batch {
		if slot.Error != "" {
			fmt.Printf("  %v\n", slot.Error)
			continue
		}
		fmt.Printf("  %-8s cycles=%-8d qubits=%-10.0f cached=%v\n",
			slot.Plan.Backend, slot.Plan.Cycles, slot.Plan.PhysicalQubits, slot.Cached)
	}
	fmt.Println()

	fmt.Println("GET /healthz")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("  %s\n", strings.ReplaceAll(string(body), "\n", "\n  "))
}

// post sends v as JSON and decodes the reply into out, failing loudly
// on a non-2xx status.
func post(url string, v, out any) {
	payload, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
