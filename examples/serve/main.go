// Serve: the compile-service client walkthrough, built on the
// surfcomm/client package (retrying HTTP client with backoff that
// honors Retry-After). By default the program starts an in-process
// surfcommd-equivalent server (the same internal/service handler the
// daemon mounts) and drives it end to end: probe readiness, estimate a
// workload, compile it fresh (cache miss), compile it again (cache
// hit, bit-identical), fan a three-backend batch through the worker
// pool, demonstrate the retry loop against injected compile faults,
// and read the /healthz counters. Point -addr at a running `surfcommd`
// to run the same walkthrough against a real daemon:
//
//	go run ./cmd/surfcommd &
//	go run ./examples/serve -addr http://localhost:8723
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"surfcomm"
	"surfcomm/client"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/service"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "base URL of a running surfcommd (empty = start an in-process server)")
	flag.Parse()

	base := *addr
	inProcess := base == ""
	var inj *faultinject.Injector
	if inProcess {
		tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
		if err != nil {
			log.Fatal(err)
		}
		// Arm (but don't yet fire) the chaos layer so the retry
		// demonstration below can inject compile faults on demand.
		inj = faultinject.New(1)
		srv := httptest.NewServer(service.NewHandler(service.New(tc, service.Config{Injector: inj})))
		defer srv.Close()
		base = srv.URL
		fmt.Printf("started in-process compile service at %s\n\n", base)
	}

	// Every request below travels through the retrying client: 429/503
	// and transport errors back off (honoring Retry-After) and retry;
	// other failures surface immediately.
	cl := client.New(base,
		client.WithAPIKey("walkthrough"),
		client.WithRetry(4, 200*time.Millisecond, 2*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Println("GET /readyz (is the service taking traffic?)")
	if err := cl.Ready(ctx); err != nil {
		log.Fatalf("  not ready: %v", err)
	}
	fmt.Println("  ready")
	fmt.Println()

	// The workload travels as QASM text — the same interchange format
	// cmd/qasm emits.
	circ, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: 8, Steps: 2})
	if err != nil {
		log.Fatal(err)
	}
	var qasm bytes.Buffer
	if err := surfcomm.WriteQASM(&qasm, circ); err != nil {
		log.Fatal(err)
	}
	req := service.Request{QASM: qasm.String(), Backend: "braid"}

	fmt.Println("POST /estimate")
	est, err := cl.Estimate(ctx, qasm.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %d qubits, %d ops, parallelism %.2f\n\n", est.Name, est.LogicalQubits, est.LogicalOps, est.Parallelism)

	fmt.Println("POST /compile (first request compiles)")
	first, err := cl.Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cycles=%d physical_qubits=%.0f cached=%v\n\n", first.Plan.Cycles, first.Plan.PhysicalQubits, first.Cached)

	fmt.Println("POST /compile (identical request is served from the cache)")
	second, err := cl.Compile(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cycles=%d cached=%v digest match=%v\n\n", second.Plan.Cycles, second.Cached, first.Digest == second.Digest)

	fmt.Println("POST /batch (one circuit through every backend)")
	batch, err := cl.CompileBatch(ctx, []service.Request{
		{QASM: qasm.String(), Backend: "braid"},
		{QASM: qasm.String(), Backend: "planar"},
		{QASM: qasm.String(), Backend: "surgery"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, slot := range batch {
		if slot.Error != "" {
			fmt.Printf("  %v\n", slot.Error)
			continue
		}
		fmt.Printf("  %-8s cycles=%-8d qubits=%-10.0f cached=%v\n",
			slot.Plan.Backend, slot.Plan.Cycles, slot.Plan.PhysicalQubits, slot.Cached)
	}
	fmt.Println()

	if inProcess {
		// Chaos demonstration: fire injected compile faults with ~70%
		// probability. Each fault answers 503 + Retry-After; the client
		// backs off and retries until a compile lands. A distinct seed
		// keeps this request out of the already-warm cache lines.
		fmt.Println("POST /compile under injected faults (watch the retry loop absorb 503s)")
		if err := inj.Set(faultinject.CompileError, 0.7); err != nil {
			log.Fatal(err)
		}
		seed := int64(99)
		chaotic, err := cl.Compile(ctx, service.Request{QASM: qasm.String(), Seed: &seed})
		if err != nil {
			log.Fatalf("  retries exhausted: %v", err)
		}
		if err := inj.Set(faultinject.CompileError, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  survived: cycles=%d cached=%v (injected faults so far: %v)\n\n",
			chaotic.Plan.Cycles, chaotic.Cached, inj.Counts())
	}

	fmt.Println("GET /healthz")
	health, err := cl.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cache: %d hits / %d misses / %d deduped (%d entries)\n",
		health.Cache.Hits, health.Cache.Misses, health.Cache.Deduped, health.Cache.Entries)
	fmt.Printf("  admission: %d workers, queue limit %d, %d shed, %d rate-limited\n",
		health.Admission.Workers, health.Admission.QueueLimit, health.Admission.Shed, health.Admission.RateLimited)
	if health.Faults != nil {
		fmt.Printf("  faults: %v\n", health.Faults)
	}
}
