// Calibration: drive the toolchain with a device model measured from a
// real chip instead of the uniform ideal. A versioned calibration
// snapshot (per-qubit T1/T2 and readout error, per-coupler gate error
// and latency) realizes as heterogeneous link weights and per-tile
// error rates; a heavy-hexagon coupling pattern drops the vertical
// couplers IBM-style chips do not ship; a live-defect schedule kills
// couplers mid-execution and the braid engine re-routes in-flight
// braids around the holes. The same three knobs reach the daemon as
// `surfcommd -calibration FILE`, the per-request "calibration" field on
// /compile (the snapshot digest splits plan-cache lines), and the
// calibration digest+age block on /healthz that surfrouter relays.
package main

import (
	"context"
	"fmt"
	"log"

	"surfcomm"
)

// snapshot is a miniature hand-written calibration in the on-disk
// schema: version is fixed at 1, times are microseconds, latency is a
// multiplier relative to the chip's fastest coupler (omitted = 1).
const snapshot = `{
  "version": 1,
  "name": "example-chip",
  "taken": "2026-08-01T00:00:00Z",
  "qubits": [
    {"row": 0, "col": 0, "t1_us": 180, "t2_us": 120, "readout_error": 0.003},
    {"row": 0, "col": 1, "t1_us": 95,  "t2_us": 60,  "readout_error": 0.012}
  ],
  "couplers": [
    {"a": [0, 0], "b": [0, 1], "gate_error": 0.006},
    {"a": [0, 1], "b": [0, 2], "gate_error": 0.021, "latency": 2.0}
  ]
}`

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// The schema, parsed and priced: each qubit entry folds into one
	// effective per-cycle error rate (readout + decoherence over one
	// syndrome cycle), each coupler into a link weight and error rate.
	mini, err := surfcomm.ParseCalibration([]byte(snapshot))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %q: %d qubits, %d couplers, digest %.12s…\n",
		mini.Name, len(mini.Qubits), len(mini.Couplers), mini.Digest())
	for _, q := range mini.Qubits {
		fmt.Printf("  qubit (%d,%d): T1=%gµs T2=%gµs readout=%g → p_eff=%.3e\n",
			q.Row, q.Col, q.T1Us, q.T2Us, q.ReadoutError, q.EffectiveErrorRate())
	}

	// One compile per device model, same circuit, same seed. The
	// synthetic snapshot is deterministic in (seed, dims); 12×12 covers
	// the junction grid this workload realizes (out-of-grid entries are
	// ignored, like a snapshot of a larger physical chip).
	c := surfcomm.GSE(surfcomm.GSEConfig{M: 10, Steps: 2})
	cal := surfcomm.SyntheticCalibration(7, 12, 12)
	devices := []*surfcomm.Device{
		surfcomm.PerfectDevice(),
		surfcomm.PerfectDevice().WithCalibration(cal),
		surfcomm.HeavyHexDevice(7),
		surfcomm.HeavyHexDevice(7).WithCalibration(cal),
	}
	fmt.Println("\nbraid backend vs. device model (GSE, d=9, Policy 6):")
	fmt.Printf("  %-42s %8s %8s %10s\n", "device", "cycles", "ratio", "adaptive")
	for _, dev := range devices {
		tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1), surfcomm.WithDevice(dev))
		if err != nil {
			log.Fatal(err)
		}
		plan, err := tc.Compile(ctx, surfcomm.BraidBackend{}, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-42s %8d %8.3f %10d\n",
			plan.Device, plan.Cycles, plan.Braid.Ratio, plan.Braid.AdaptiveRoutes)
	}

	// Live defects: couplers die mid-execution. Braids in flight over a
	// dead coupler are torn down and re-placed around the hole
	// (Reroutes counts them); ErrUnroutable fires only if the surviving
	// fabric actually disconnects.
	sched := surfcomm.RandomDefectSchedule(8, 8, 4, 4, 6000)
	tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1), surfcomm.WithDefectSchedule(sched))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := tc.Compile(ctx, surfcomm.BraidBackend{}, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive defects (%d coupler deaths): cycles=%d reroutes=%d\n",
		len(sched.Events), plan.Cycles, plan.Braid.Reroutes)

	// The systematic version: the CalibGrid study sweeps coupling
	// topology × {uniform, calibrated, live-defect} cells with derived
	// per-cell seeds, and reports the per-tile logical-rate spread that
	// local calibration opens up (on a real chip the worst tile, not
	// the average, bounds the computation). `cmd/sweep -calib` runs the
	// same grid and commits it as BENCH_calib.json.
	tc, err = surfcomm.NewToolchain(surfcomm.WithSeed(1), surfcomm.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	cells, err := tc.CalibGrid(ctx, surfcomm.SweepCalibOptions{Trials: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncalibration study (per-tile logical-rate spread & defect survival):")
	fmt.Printf("  %-10s %6s %8s %10s %10s %10s\n",
		"topology", "cell", "cycles", "p_tile min", "p_tile max", "reroutes")
	survived, defectRuns := 0, 0
	for _, cell := range cells {
		kind := "uniform"
		if cell.Calibrated {
			kind = "calib"
		}
		if cell.Defects > 0 {
			kind = "defects"
			defectRuns++
			if cell.Survived {
				survived++
			}
		}
		if !cell.Survived {
			fmt.Printf("  %-10s %6s %8s\n", cell.Topology, kind, "unroutable")
			continue
		}
		fmt.Printf("  %-10s %6s %8d %10.3e %10.3e %10d\n",
			cell.Topology, kind, cell.Cycles, cell.RateMin, cell.RateMax, cell.Reroutes)
	}
	fmt.Printf("  live-defect survival: %d/%d runs re-routed instead of failing\n",
		survived, defectRuns)
}
