// Incremental compilation walkthrough: build a hierarchical program,
// compile it cold (every module through the backend), edit one leaf
// module, and recompile — watching the module cache absorb everything
// except the edited module and the stitch layer.
//
// The three acts:
//
//  1. Cold compile: all modules miss, each is compiled and cached
//     under its content digest (body + target + callee interfaces).
//  2. Leaf edit: one module's body changes, so only its digest moves;
//     the recompile hits the cache for every other module and sends
//     exactly one module through the backend.
//  3. Single-module parity: a program with no calls takes the
//     monolithic fast path — its plan is byte-identical to a plain
//     Compile of the flattened circuit.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"surfcomm"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// An 8-stage pipeline: stage modules over overlapping qubit
	// windows, so cross-module traffic is real (see surfcomm.PipelineProgram).
	p, err := surfcomm.PipelineProgram(8)
	if err != nil {
		log.Fatal(err)
	}

	tc, err := surfcomm.NewToolchain(surfcomm.WithModular(), surfcomm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// Act 1 — cold compile: nothing cached yet.
	start := time.Now()
	cold, err := tc.CompileIncremental(ctx, surfcomm.BraidBackend{}, p)
	if err != nil {
		log.Fatal(err)
	}
	coldMs := ms(start)
	fmt.Printf("cold:   %d modules, %d compiled, %d cache hits   (%.1f ms)\n",
		len(cold.Modular.Modules), len(cold.Modular.Compiled), cold.Modular.Hits, coldMs)

	// Act 2 — edit one leaf and recompile. Only the edited module's
	// content digest changes; the other stages and the entry link
	// straight from cache.
	edited, err := surfcomm.MutateModule(p, "stagec", 1)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	warm, err := tc.CompileIncremental(ctx, surfcomm.BraidBackend{}, edited)
	if err != nil {
		log.Fatal(err)
	}
	warmMs := ms(start)
	fmt.Printf("edit:   %d modules, %d compiled (%v), %d cache hits (%.1f ms)\n",
		len(warm.Modular.Modules), len(warm.Modular.Compiled), warm.Modular.Compiled,
		warm.Modular.Hits, warmMs)
	if coldMs > 0 && warmMs > 0 {
		fmt.Printf("        recompile after a one-leaf edit ran %.1fx faster than cold\n", coldMs/warmMs)
	}
	fmt.Printf("        link digest moved: %t (the artifact is new even though 8/9 modules were reused)\n",
		warm.Modular.LinkDigest != cold.Modular.LinkDigest)
	fmt.Printf("        stitch: %d phases, %d mesh links, %d cross-module braids, %d cycles of call fences\n",
		warm.Modular.StitchPhases, warm.Modular.StitchRouteLinks,
		warm.Modular.CrossBraids, warm.Modular.StitchCycles)

	// Act 3 — single-module parity: a program whose entry makes no
	// calls has no stitch layer, and CompileIncremental must produce
	// the byte-identical plan a plain Compile of the flattened circuit
	// does (the monolithic fast path).
	single := surfcomm.NewProgram("solo", 4)
	solo := single.Modules["solo"]
	for q := 0; q < 4; q++ {
		solo.Gate(surfcomm.OpH, q)
	}
	solo.Gate(surfcomm.OpCNOT, 0, 1)
	solo.Gate(surfcomm.OpCNOT, 2, 3)
	solo.Gate(surfcomm.OpT, 1)
	flat, err := single.Flatten(surfcomm.InlineAll)
	if err != nil {
		log.Fatal(err)
	}
	mono, err := surfcomm.NewToolchain(surfcomm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	planMono, err := mono.Compile(ctx, surfcomm.BraidBackend{}, flat)
	if err != nil {
		log.Fatal(err)
	}
	planInc, err := tc.CompileIncremental(ctx, surfcomm.BraidBackend{}, single)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parity: single-module program, monolithic %d cycles vs incremental %d cycles, equal: %t\n",
		planMono.Cycles, planInc.Cycles, planMono.Cycles == planInc.Cycles)
}

func ms(since time.Time) float64 {
	return float64(time.Since(since).Microseconds()) / 1000
}
