// Crossover analysis (paper §7.2-7.3, Figures 8 and 9): characterize a
// serial and a parallel application, then locate the computation size
// at which double-defect codes overtake planar codes — and how that
// boundary moves with device error rate.
package main

import (
	"fmt"
	"log"

	"surfcomm"
)

func main() {
	log.SetFlags(0)

	serial := surfcomm.Workload{Name: "GSE", Circuit: surfcomm.GSE(surfcomm.GSEConfig{M: 10, Steps: 2})}
	parallel := surfcomm.Workload{Name: "IM", Circuit: surfcomm.Ising(surfcomm.IsingConfig{N: 64, Steps: 2}, true)}

	for _, w := range []surfcomm.Workload{serial, parallel} {
		m, err := surfcomm.Characterize(w, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: parallelism %.1f, move fraction %.2f, braid congestion %.2f\n",
			m.Name, m.Parallelism, m.MoveFraction, m.CongestionDD)

		fmt.Printf("  %-12s %-6s %-10s %-10s %-12s\n", "K", "d", "qubits", "time", "space-time")
		for _, k := range []float64{1e2, 1e6, 1e10, 1e14} {
			dp, err := surfcomm.Evaluate(m, k, 1e-5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12.0e %-6d %-10.2f %-10.3f %-12.3f\n",
				k, dp.Distance, dp.QubitsRatio, dp.TimeRatio, dp.SpaceTimeRatio)
		}
		fmt.Printf("  crossover boundary K*(p_P):")
		for _, p := range []float64{1e-8, 1e-6, 1e-4, 1e-3} {
			if k, ok := surfcomm.Crossover(m, p); ok {
				fmt.Printf("  %.0e→%.1e", p, k)
			} else {
				fmt.Printf("  %.0e→planar", p)
			}
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("Ratios are double-defect relative to planar; the parallel app's boundary")
	fmt.Println("sits higher because braid congestion keeps planar codes favorable longer.")
}
