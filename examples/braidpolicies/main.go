// Braid priority policies (paper §6.3, Figure 6): simulate the Ising
// model on the tiled double-defect architecture under all seven
// policies and watch the schedule approach the critical path as the
// heuristics stack up.
package main

import (
	"fmt"
	"log"

	"surfcomm"
)

func main() {
	log.SetFlags(0)

	im := surfcomm.Ising(surfcomm.IsingConfig{N: 48, Steps: 2}, true)
	est, err := surfcomm.EstimateCircuit(im)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d ops, parallelism %.1f\n\n", im.Name, est.LogicalOps, est.Parallelism)

	fmt.Printf("%-10s %28s %14s %10s\n", "policy", "schedule/critical-path", "utilization", "adaptive")
	base := 0.0
	for _, p := range surfcomm.AllBraidPolicies {
		r, err := surfcomm.SimulateBraids(im, p, surfcomm.BraidConfig{Distance: 9, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if p == surfcomm.Policy0 {
			base = r.Ratio
		}
		bar := ""
		for i := 0; i < int(r.Ratio*8); i++ {
			bar += "#"
		}
		fmt.Printf("%-10s %6.2f %-21s %13.1f%% %10d\n", p, r.Ratio, bar, 100*r.AvgUtilization, r.AdaptiveRoutes)
	}
	last, err := surfcomm.SimulateBraids(im, surfcomm.Policy6, surfcomm.BraidConfig{Distance: 9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPolicy 6 improves on Policy 0 by %.1fx for this parallel workload.\n", base/last.Ratio)
}
