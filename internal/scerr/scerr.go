// Package scerr holds the sentinel errors shared by the toolchain
// facade and the internal compilation stages. Internals wrap these with
// %w so callers can classify failures with errors.Is regardless of
// which stage produced them; the surfcomm package re-exports them as
// ErrCanceled, ErrBadConfig and ErrUnknownModel.
package scerr

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCanceled reports a compilation stage aborted by its context.
	ErrCanceled = errors.New("surfcomm: canceled")
	// ErrBadConfig reports an invalid configuration, option, or target.
	ErrBadConfig = errors.New("surfcomm: bad config")
	// ErrUnknownModel reports a lookup of an application model or
	// scaling law that is not registered.
	ErrUnknownModel = errors.New("surfcomm: unknown model")
	// ErrUnroutable reports a communication route (or a placement) that
	// is impossible on the target device: endpoints dead or in different
	// connected components of the defective fabric. Compiles fail fast
	// with this instead of hanging or panicking.
	ErrUnroutable = errors.New("surfcomm: unroutable on device")
	// ErrOverloaded reports a request shed by admission control or a
	// per-client rate limit: the service is healthy but cannot take the
	// work right now. Retrying after a backoff is the correct response;
	// the serving layer maps it to HTTP 429/503 with Retry-After.
	ErrOverloaded = errors.New("surfcomm: overloaded")
)

// Canceled wraps the context's cause so the result matches both
// ErrCanceled and the underlying context error (context.Canceled or
// context.DeadlineExceeded).
func Canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// BadConfig builds a configuration error that matches ErrBadConfig.
func BadConfig(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
}

// UnknownModel builds a lookup error that matches ErrUnknownModel.
func UnknownModel(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnknownModel, fmt.Sprintf(format, args...))
}

// Unroutable builds a routing-impossible error that matches
// ErrUnroutable.
func Unroutable(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnroutable, fmt.Sprintf(format, args...))
}

// Overloaded builds a shed-this-request error that matches
// ErrOverloaded.
func Overloaded(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrOverloaded, fmt.Sprintf(format, args...))
}
