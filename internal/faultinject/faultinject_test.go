package faultinject_test

import (
	"testing"
	"time"

	"surfcomm/internal/faultinject"
)

// TestNilInjectorIsInert pins the zero-cost-when-off contract: every
// method is nil-safe and injects nothing.
func TestNilInjectorIsInert(t *testing.T) {
	var in *faultinject.Injector
	for _, p := range faultinject.Points() {
		if in.Fire(p) {
			t.Errorf("nil injector fired %s", p)
		}
	}
	if d := in.CompileDelay(); d != 0 {
		t.Errorf("nil injector delay = %s, want 0", d)
	}
	if c := in.Counts(); c != nil {
		t.Errorf("nil injector counts = %v, want nil", c)
	}
	if s := in.String(); s != "off" {
		t.Errorf("nil injector String = %q, want off", s)
	}
}

// TestProbabilityEndpoints pins the two deterministic regimes tests
// lean on: probability 0 never fires, probability 1 always fires.
func TestProbabilityEndpoints(t *testing.T) {
	in := faultinject.New(1)
	if err := in.Set(faultinject.TornWrite, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !in.Fire(faultinject.TornWrite) {
			t.Fatal("probability 1 must always fire")
		}
		if in.Fire(faultinject.CompileError) {
			t.Fatal("unarmed point must never fire")
		}
	}
	if got := in.Counts()["torn-write"]; got != 100 {
		t.Errorf("torn-write count = %d, want 100", got)
	}
}

// TestDeterministicSequence pins seed determinism: two injectors with
// the same seed and config fire identically call for call.
func TestDeterministicSequence(t *testing.T) {
	a, b := faultinject.New(42), faultinject.New(42)
	for _, in := range []*faultinject.Injector{a, b} {
		if err := in.Set(faultinject.CompileError, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if a.Fire(faultinject.CompileError) != b.Fire(faultinject.CompileError) {
			t.Fatalf("draw %d diverges between same-seed injectors", i)
		}
	}
	other := faultinject.New(43)
	if err := other.Set(faultinject.CompileError, 0.3); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 500; i++ {
		if a.Fire(faultinject.CompileError) != other.Fire(faultinject.CompileError) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical 500-draw sequence")
	}
}

// TestParse pins the -chaos spec grammar.
func TestParse(t *testing.T) {
	in, err := faultinject.Parse("compile-error=1, torn-write=0.0 ,compile-latency=50ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Fire(faultinject.CompileError) {
		t.Error("compile-error=1 must fire")
	}
	if in.Fire(faultinject.TornWrite) {
		t.Error("torn-write=0 must not fire")
	}
	if d := in.CompileDelay(); d != 50*time.Millisecond {
		t.Errorf("latency = %s, want 50ms", d)
	}

	for _, bad := range []string{
		"compile-error",        // no value
		"compile-error=2",      // out of range
		"compile-error=-0.1",   // negative
		"no-such-point=0.5",    // unknown point
		"compile-latency=fast", // not a duration
		"compile-latency=-1s",  // negative duration
		"seed=banana",          // non-integer seed
	} {
		if _, err := faultinject.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", bad)
		}
	}

	empty, err := faultinject.Parse("")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range faultinject.Points() {
		if empty.Fire(p) {
			t.Errorf("empty spec fired %s", p)
		}
	}
}
