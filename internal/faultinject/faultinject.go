// Package faultinject is the deterministic chaos layer behind the
// serving stack's robustness tests and the daemon's -chaos flag. An
// Injector holds a seeded RNG and a probability per named injection
// point; production code asks Fire(point) at each site and a nil
// injector answers false everywhere, so the instrumented paths cost a
// nil check when chaos is off. The points cover the failure modes the
// ISSUE's acceptance criteria exercise: slow compiles (queue pressure),
// failed compiles (retry paths), failed disk writes (write-behind must
// stay non-fatal), and torn writes (crash-consistency of the plan
// store).
//
// Determinism: all draws come from one seeded source, so a serial test
// replays the exact fault sequence for a given seed. Concurrent sites
// interleave their draws nondeterministically — tests that need exact
// schedules use probabilities 0 or 1.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Point names one injection site.
type Point string

const (
	// CompileError fails a compile with ErrInjected before the backend
	// runs (the serving layer maps it to a retryable 503).
	CompileError Point = "compile-error"
	// StoreWriteError fails a plan-store Put with ErrInjected; the
	// write-behind layer must log and carry on.
	StoreWriteError Point = "store-write-error"
	// TornWrite truncates a plan-store Put mid-payload while still
	// reporting success — the on-disk entry is corrupt and must be
	// caught by checksum verification, never served.
	TornWrite Point = "torn-write"
	// DecodeError sheds a /decode streaming session at admission with
	// ErrInjected (503) before it occupies a worker slot.
	DecodeError Point = "decode-error"
)

// Points lists every probability-gated injection site.
func Points() []Point { return []Point{CompileError, StoreWriteError, TornWrite, DecodeError} }

// ErrInjected is the root of every injected failure; layers wrap it
// with %w so tests (and the HTTP status mapper) can classify a fault as
// deliberate chaos rather than a real defect.
var ErrInjected = errors.New("faultinject: injected fault")

// Injector is a seeded fault source, safe for concurrent use. The zero
// value is not usable; construct with New or Parse. A nil *Injector is
// valid everywhere and injects nothing.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	probs   map[Point]float64
	latency time.Duration
	fired   map[Point]uint64
	delays  uint64
}

// New returns an injector drawing from a source seeded with seed; no
// point fires until Set enables it.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		probs: make(map[Point]float64),
		fired: make(map[Point]uint64),
	}
}

// Set enables a point at the given firing probability in [0,1].
func (in *Injector) Set(p Point, prob float64) error {
	if !validPoint(p) {
		return fmt.Errorf("faultinject: unknown point %q (valid: %s)", p, pointList())
	}
	if prob < 0 || prob > 1 {
		return fmt.Errorf("faultinject: probability %g for %q outside [0,1]", prob, p)
	}
	in.mu.Lock()
	in.probs[p] = prob
	in.mu.Unlock()
	return nil
}

// SetLatency makes every compile sleep d before running (CompileDelay
// reports it); zero disables.
func (in *Injector) SetLatency(d time.Duration) {
	in.mu.Lock()
	in.latency = d
	in.mu.Unlock()
}

// Fire draws once for the point and reports whether the fault should
// trigger. Nil-safe: a nil injector never fires.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	prob := in.probs[p]
	if prob <= 0 {
		return false
	}
	// prob == 1 must fire without consuming a draw only if we wanted
	// draw-sequence stability across configs; we prefer one draw per
	// call so the sequence depends only on call order.
	if in.rng.Float64() >= prob {
		return false
	}
	in.fired[p]++
	return true
}

// CompileDelay returns the injected compile latency (zero when
// disabled). Nil-safe.
func (in *Injector) CompileDelay() time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.latency > 0 {
		in.delays++
	}
	return in.latency
}

// Counts snapshots how often each fault actually fired (the
// "compile-latency" key counts injected delays). Nil-safe: nil map.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.fired)+1)
	for p, n := range in.fired {
		out[string(p)] = n
	}
	if in.delays > 0 {
		out["compile-latency"] = in.delays
	}
	return out
}

// Parse builds an injector from a -chaos flag spec: comma-separated
// key=value entries where keys are the Points (value: probability),
// "compile-latency" (value: a Go duration), and "seed" (value: int64,
// default 1). Example:
//
//	compile-error=0.3,torn-write=0.2,compile-latency=50ms,seed=7
func Parse(spec string) (*Injector, error) {
	type entry struct {
		key, val string
	}
	var (
		entries []entry
		seed    int64 = 1
	)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: spec entry %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "seed" {
			if _, err := fmt.Sscanf(val, "%d", &seed); err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", val)
			}
			continue
		}
		entries = append(entries, entry{key, val})
	}
	in := New(seed)
	for _, e := range entries {
		if e.key == "compile-latency" {
			d, err := time.ParseDuration(e.val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: bad compile-latency %q (want a Go duration)", e.val)
			}
			in.SetLatency(d)
			continue
		}
		var prob float64
		if _, err := fmt.Sscanf(e.val, "%g", &prob); err != nil {
			return nil, fmt.Errorf("faultinject: bad probability %q for %q", e.val, e.key)
		}
		if err := in.Set(Point(e.key), prob); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// String renders the enabled configuration (sorted, stable) for logs.
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var parts []string
	for p, prob := range in.probs {
		if prob > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", p, prob))
		}
	}
	sort.Strings(parts)
	if in.latency > 0 {
		parts = append(parts, fmt.Sprintf("compile-latency=%s", in.latency))
	}
	if len(parts) == 0 {
		return "enabled (no points armed)"
	}
	return strings.Join(parts, ",")
}

func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

func pointList() string {
	names := make([]string, 0, 4)
	for _, p := range Points() {
		names = append(names, string(p))
	}
	names = append(names, "compile-latency")
	return strings.Join(names, ", ")
}
