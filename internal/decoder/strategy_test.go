package decoder

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"surfcomm/internal/scerr"
)

func TestStrategyRegistry(t *testing.T) {
	s, err := StrategyByName("")
	if err != nil || s.Name() != StrategyMWPM {
		t.Fatalf("empty name should resolve to mwpm, got %v, %v", s, err)
	}
	s, err = StrategyByName(StrategyMWPM)
	if err != nil || s.Name() != StrategyMWPM {
		t.Fatalf("mwpm should resolve, got %v, %v", s, err)
	}
	if _, err := StrategyByName("banana"); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("unknown strategy: got %v, want ErrBadConfig", err)
	}
	if names := StrategyNames(); !slices.Contains(names, StrategyMWPM) {
		t.Errorf("StrategyNames() = %v, want mwpm included", names)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Workers: -1}).Validate(); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("negative workers: got %v, want ErrBadConfig", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config should validate, got %v", err)
	}
	// The harnesses surface it too.
	mc := &MonteCarlo{Lattice: lattice(t, 3), Rng: rand.New(rand.NewSource(1)), Config: Config{Workers: -2}}
	if _, err := mc.Run(0.1, 10); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("MonteCarlo negative workers: got %v, want ErrBadConfig", err)
	}
	if _, err := (&MonteCarlo{Lattice: lattice(t, 3), Rng: rand.New(rand.NewSource(1))}).Run(0.1, 0); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("zero trials: want ErrBadConfig")
	}
	if _, err := (&MonteCarlo{Rng: rand.New(rand.NewSource(1))}).Run(0.1, 5); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("nil lattice: want ErrBadConfig")
	}
	if _, err := (&MonteCarlo{Lattice: lattice(t, 3)}).Run(0.1, 5); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("nil rng: want ErrBadConfig")
	}
	hmc := &HistoryMonteCarlo{Lattice: lattice(t, 3), Rounds: 3, Rng: rand.New(rand.NewSource(1)), Config: Config{Workers: -1}}
	if _, err := hmc.Run(0.01, 0.01, 10); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("HistoryMonteCarlo negative workers: got %v, want ErrBadConfig", err)
	}
	if _, err := NewLattice(4); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("even distance: want ErrBadConfig")
	}
}

// TestWindowDecoderMatchesBatch: a stream with perfect measurements
// pushed through a WindowDecoder must, cumulatively, clear the final
// syndrome — the streaming contract the /decode endpoint serves.
func TestWindowDecoderMatchesBatch(t *testing.T) {
	l := lattice(t, 5)
	rng := rand.New(rand.NewSource(17))
	const window, totalRounds = 3, 9

	w, err := NewWindowDecoder(l, window, nil)
	if err != nil {
		t.Fatal(err)
	}
	errs := l.NewErrorPattern()
	cumulative := l.NewErrorPattern()
	syndrome := make([]bool, l.Checks())
	for round := 0; round < totalRounds; round++ {
		for q := range errs {
			if rng.Float64() < 0.02 {
				errs[q] = !errs[q]
			}
		}
		copy(syndrome, l.Syndrome(errs))
		decoded, err := w.PushRound(syndrome)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if decoded {
			for q, hot := range w.Correction() {
				if hot {
					cumulative[q] = !cumulative[q]
				}
			}
		}
	}
	if w.Windows() != totalRounds/window {
		t.Fatalf("windows = %d, want %d", w.Windows(), totalRounds/window)
	}
	if w.Rounds() != totalRounds {
		t.Fatalf("rounds = %d, want %d", w.Rounds(), totalRounds)
	}
	if w.Vents() != 0 {
		t.Fatalf("perfect measurements should never vent, got %d", w.Vents())
	}
	combined := l.NewErrorPattern()
	for q := range combined {
		combined[q] = errs[q] != cumulative[q]
	}
	for i, hot := range l.Syndrome(combined) {
		if hot {
			t.Fatalf("cumulative streamed correction leaves defect at plaquette %d", i)
		}
	}
}

// TestWindowDecoderFlushPartial: a stream ending mid-window decodes
// the remainder via Flush.
func TestWindowDecoderFlushPartial(t *testing.T) {
	l := lattice(t, 3)
	w, err := NewWindowDecoder(l, 4, MWPM())
	if err != nil {
		t.Fatal(err)
	}
	errs := l.NewErrorPattern()
	errs[0] = true
	syn := l.Syndrome(errs)
	for i := 0; i < 2; i++ {
		decoded, err := w.PushRound(syn)
		if err != nil || decoded {
			t.Fatalf("push %d: decoded=%v err=%v", i, decoded, err)
		}
	}
	decoded, err := w.Flush()
	if err != nil || !decoded {
		t.Fatalf("flush: decoded=%v err=%v", decoded, err)
	}
	if w.Windows() != 1 || w.Rounds() != 2 {
		t.Fatalf("windows=%d rounds=%d, want 1, 2", w.Windows(), w.Rounds())
	}
	// The single data error produces two changes in round 0 only; the
	// correction must clear its syndrome.
	combined := l.NewErrorPattern()
	for q, hot := range w.Correction() {
		combined[q] = errs[q] != hot
	}
	for i, hot := range l.Syndrome(combined) {
		if hot {
			t.Fatalf("flush correction leaves defect at plaquette %d", i)
		}
	}
	// Flushing again is a no-op.
	if decoded, err := w.Flush(); decoded || err != nil {
		t.Fatalf("second flush: decoded=%v err=%v", decoded, err)
	}
}

// TestWindowDecoderVentsSeamMeasurementError: a measurement error whose
// defect pair straddles a window seam gives both windows odd parity;
// the vent must fire in each, and the two vent corrections must cancel
// up to a stabilizer loop — the net correction is syndrome-neutral and
// not a logical operator, i.e. identity on the code space.
func TestWindowDecoderVentsSeamMeasurementError(t *testing.T) {
	l := lattice(t, 5)
	const window = 2
	w, err := NewWindowDecoder(l, window, MWPM())
	if err != nil {
		t.Fatal(err)
	}
	clean := make([]bool, l.Checks())
	flipped := make([]bool, l.Checks())
	flipped[7] = true // check 7 misreads in round 1 (last round of window 0)

	cumulative := l.NewErrorPattern()
	push := func(s []bool) {
		t.Helper()
		decoded, err := w.PushRound(s)
		if err != nil {
			t.Fatal(err)
		}
		if decoded {
			for q, hot := range w.Correction() {
				if hot {
					cumulative[q] = !cumulative[q]
				}
			}
		}
	}
	push(clean)
	push(flipped) // window 0 decodes: one change at (1, 7) → odd → vent
	push(clean)   // change at (0, 7) of window 1
	push(clean)   // window 1 decodes: odd → vent
	if w.Vents() != 2 {
		t.Fatalf("vents = %d, want 2", w.Vents())
	}
	// There was no data error, so the net correction must act as the
	// identity on the code space: every plaquette check clear, no
	// torus winding.
	for i, hot := range l.Syndrome(cumulative) {
		if hot {
			t.Fatalf("net vent correction excites plaquette %d", i)
		}
	}
	if l.LogicalFailure(l.NewErrorPattern(), cumulative) {
		t.Fatal("net vent correction winds the torus — a logical error")
	}
}

// TestWindowDecoderValidation covers the config and frame error paths.
func TestWindowDecoderValidation(t *testing.T) {
	l := lattice(t, 3)
	if _, err := NewWindowDecoder(nil, 3, nil); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("nil lattice: got %v, want ErrBadConfig", err)
	}
	if _, err := NewWindowDecoder(l, 0, nil); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("zero window: got %v, want ErrBadConfig", err)
	}
	w, err := NewWindowDecoder(l, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.PushRound(make([]bool, 2)); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("short syndrome: got %v, want ErrBadConfig", err)
	}
}
