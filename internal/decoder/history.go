package decoder

import (
	"fmt"
	"math/rand"
	"sort"
)

// Syndrome-history decoding (paper §2.3): real syndrome measurements
// are themselves faulty, so syndromes are recorded over d rounds and
// decoded in a space-time volume — defects are syndrome *changes*
// between consecutive rounds, and matching runs in three dimensions
// (two space, one time). A defect pair joined through time is a
// measurement error (no data correction); the spatial displacement of a
// pair projects onto data corrections.

// spacetimeDefect is an anomalous syndrome change at (round t,
// plaquette (r,c)).
type spacetimeDefect struct {
	t int
	d defect
}

// HistoryMonteCarlo estimates logical error rates for a syndrome
// history of the given number of rounds: each round injects fresh data
// errors with probability p per qubit and flips each syndrome bit with
// probability q (the final round is measured perfectly, closing the
// volume — the standard terminating round).
type HistoryMonteCarlo struct {
	Lattice *Lattice
	Rounds  int
	Rng     *rand.Rand
}

// Run samples, decodes the space-time volume, and counts logical
// failures over the accumulated error.
func (mc *HistoryMonteCarlo) Run(p, q float64, trials int) (Result, error) {
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return Result{}, fmt.Errorf("decoder: rates (%g, %g) outside [0,1]", p, q)
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("decoder: need at least one trial")
	}
	if mc.Rounds < 1 {
		return Result{}, fmt.Errorf("decoder: need at least one round")
	}
	l := mc.Lattice
	res := Result{Distance: l.Distance(), PhysicalRate: p, Trials: trials}
	for trial := 0; trial < trials; trial++ {
		errs := l.NewErrorPattern() // cumulative data errors
		prev := make([]bool, l.Checks())
		var defects []spacetimeDefect
		for t := 0; t < mc.Rounds; t++ {
			for qb := range errs {
				if mc.Rng.Float64() < p {
					errs[qb] = !errs[qb]
				}
			}
			meas := l.Syndrome(errs)
			if t < mc.Rounds-1 { // final round is perfect
				for i := range meas {
					if mc.Rng.Float64() < q {
						meas[i] = !meas[i]
					}
				}
			}
			for i := range meas {
				if meas[i] != prev[i] {
					defects = append(defects, spacetimeDefect{
						t: t,
						d: defect{r: i / l.d, c: i % l.d},
					})
				}
			}
			prev = meas
		}
		correction := l.decodeSpacetime(defects)

		combined := l.NewErrorPattern()
		for qb := range combined {
			combined[qb] = errs[qb] != correction[qb]
		}
		for i, hot := range l.Syndrome(combined) {
			if hot {
				panic(fmt.Sprintf("decoder: space-time residual defect at plaquette %d", i))
			}
		}
		if l.LogicalFailure(errs, correction) {
			res.Failures++
		}
	}
	res.LogicalRate = float64(res.Failures) / float64(res.Trials)
	return res, nil
}

// decodeSpacetime matches defects in the space-time metric (torus
// Manhattan + time separation) and projects each pair's spatial
// displacement onto data corrections.
func (l *Lattice) decodeSpacetime(defects []spacetimeDefect) ErrorPattern {
	correction := l.NewErrorPattern()
	n := len(defects)
	if n == 0 {
		return correction
	}
	dist := func(a, b spacetimeDefect) int {
		dt := a.t - b.t
		if dt < 0 {
			dt = -dt
		}
		return l.torusDist(a.d, b.d) + dt
	}
	type cand struct{ a, b, w int }
	cands := make([]cand, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cands = append(cands, cand{a, b, dist(defects[a], defects[b])})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w < cands[j].w
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	matched := make([]bool, n)
	var pairs [][2]int
	for _, c := range cands {
		if !matched[c.a] && !matched[c.b] {
			matched[c.a] = true
			matched[c.b] = true
			pairs = append(pairs, [2]int{c.a, c.b})
		}
	}
	// 2-opt refinement, as in the single-round matcher.
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(pairs); i++ {
			for j := i + 1; j < len(pairs); j++ {
				a0, a1 := pairs[i][0], pairs[i][1]
				b0, b1 := pairs[j][0], pairs[j][1]
				cur := dist(defects[a0], defects[a1]) + dist(defects[b0], defects[b1])
				if alt := dist(defects[a0], defects[b0]) + dist(defects[a1], defects[b1]); alt < cur {
					pairs[i] = [2]int{a0, b0}
					pairs[j] = [2]int{a1, b1}
					improved = true
					continue
				}
				if alt := dist(defects[a0], defects[b1]) + dist(defects[a1], defects[b0]); alt < cur {
					pairs[i] = [2]int{a0, b1}
					pairs[j] = [2]int{a1, b0}
					improved = true
				}
			}
		}
	}
	for _, pr := range pairs {
		// The spatial projection carries the data correction; the time
		// component is measurement-error bookkeeping.
		l.flipGeodesic(correction, defects[pr[0]].d, defects[pr[1]].d)
	}
	return correction
}
