package decoder

import (
	"context"
	"fmt"
	"math/rand"

	"surfcomm/internal/scerr"
)

// Syndrome-history decoding (paper §2.3): real syndrome measurements
// are themselves faulty, so syndromes are recorded over d rounds and
// decoded in a space-time volume — defects are syndrome *changes*
// between consecutive rounds, and matching runs in three dimensions
// (two space, one time). A defect pair joined through time is a
// measurement error (no data correction); the spatial displacement of a
// pair projects onto data corrections.

// spacetimeDefect is an anomalous syndrome change at (round t,
// plaquette (r,c)).
type spacetimeDefect struct {
	t int
	d defect
}

// HistoryMonteCarlo estimates logical error rates for a syndrome
// history of the given number of rounds: each round injects fresh data
// errors with probability p per qubit and flips each syndrome bit with
// probability q (the final round is measured perfectly, closing the
// volume — the standard terminating round). Trials decode in parallel
// (see Workers); the failure count is identical to a serial run at any
// worker count.
type HistoryMonteCarlo struct {
	Lattice *Lattice
	Rounds  int
	Rng     *rand.Rand
	Config
}

// Run samples, decodes the space-time volume, and counts logical
// failures over the accumulated error.
func (mc *HistoryMonteCarlo) Run(p, q float64, trials int) (Result, error) {
	return mc.RunContext(context.Background(), p, q, trials)
}

// RunContext is Run with cooperative cancellation, polled between trial
// batches; an aborted run returns an error matching scerr.ErrCanceled,
// and a nonsensical configuration one matching scerr.ErrBadConfig.
func (mc *HistoryMonteCarlo) RunContext(ctx context.Context, p, q float64, trials int) (Result, error) {
	if mc.Lattice == nil {
		return Result{}, scerr.BadConfig("decoder: nil lattice")
	}
	if mc.Rng == nil {
		return Result{}, scerr.BadConfig("decoder: nil random source")
	}
	if err := mc.Config.Validate(); err != nil {
		return Result{}, err
	}
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return Result{}, scerr.BadConfig("decoder: rates (%g, %g) outside [0,1]", p, q)
	}
	if trials < 1 {
		return Result{}, scerr.BadConfig("decoder: need at least one trial, got %d", trials)
	}
	if mc.Rounds < 1 {
		return Result{}, scerr.BadConfig("decoder: need at least one round, got %d", mc.Rounds)
	}
	l := mc.Lattice
	res := Result{Distance: l.Distance(), PhysicalRate: p, Trials: trials}
	nq, checks, rounds := l.DataQubits(), l.Checks(), mc.Rounds
	// One trial's draw layout, in the exact order a serial run consumes
	// the Rng: per round, nq data-flip draws, then (for every round but
	// the perfectly-measured last) checks measurement-flip draws.
	stride := rounds*nq + (rounds-1)*checks
	failures, ops, err := runTrialBatches(ctx, l, mc.Workers, mc.strategy(), trials, stride,
		func(draws []bool) {
			pos := 0
			for t := 0; t < rounds; t++ {
				for qb := 0; qb < nq; qb++ {
					draws[pos+qb] = mc.Rng.Float64() < p
				}
				pos += nq
				if t < rounds-1 {
					for i := 0; i < checks; i++ {
						draws[pos+i] = mc.Rng.Float64() < q
					}
					pos += checks
				}
			}
		},
		func(l *Lattice, sc *trialScratch, draws []bool) (bool, error) {
			return l.historyTrial(sc, rounds, draws)
		})
	if err != nil {
		return Result{}, err
	}
	res.Failures = failures
	res.WorkOps = ops
	res.LogicalRate = float64(res.Failures) / float64(res.Trials)
	return res, nil
}

// historyTrial replays one pregenerated syndrome history, extracts the
// round-to-round syndrome changes, and hands the space-time volume to
// the solver.
func (l *Lattice) historyTrial(sc *trialScratch, rounds int, draws []bool) (bool, error) {
	nq, checks := l.DataQubits(), l.Checks()
	clear(sc.errs) // cumulative data errors
	clear(sc.prev)
	if cap(sc.changes) < rounds*checks {
		sc.changes = make([]bool, rounds*checks)
	}
	sc.changes = sc.changes[:rounds*checks]
	pos := 0
	for t := 0; t < rounds; t++ {
		for qb := 0; qb < nq; qb++ {
			if draws[pos+qb] {
				sc.errs[qb] = !sc.errs[qb]
			}
		}
		pos += nq
		l.syndromeInto(sc.meas, sc.errs)
		if t < rounds-1 { // final round is perfect
			for i := 0; i < checks; i++ {
				if draws[pos+i] {
					sc.meas[i] = !sc.meas[i]
				}
			}
			pos += checks
		}
		for i := range sc.meas {
			sc.changes[t*checks+i] = sc.meas[i] != sc.prev[i]
		}
		sc.meas, sc.prev = sc.prev, sc.meas
	}
	if err := sc.solver.DecodeHistory(sc.correction, sc.changes, rounds); err != nil {
		return false, err
	}

	for qb := range sc.combined {
		sc.combined[qb] = sc.errs[qb] != sc.correction[qb]
	}
	l.syndromeInto(sc.syndrome, sc.combined)
	for i, hot := range sc.syndrome {
		if hot {
			panic(fmt.Sprintf("decoder: space-time residual defect at plaquette %d", i))
		}
	}
	return l.LogicalFailure(sc.errs, sc.correction), nil
}
