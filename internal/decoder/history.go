package decoder

import (
	"context"
	"fmt"
	"math/rand"
)

// Syndrome-history decoding (paper §2.3): real syndrome measurements
// are themselves faulty, so syndromes are recorded over d rounds and
// decoded in a space-time volume — defects are syndrome *changes*
// between consecutive rounds, and matching runs in three dimensions
// (two space, one time). A defect pair joined through time is a
// measurement error (no data correction); the spatial displacement of a
// pair projects onto data corrections.

// spacetimeDefect is an anomalous syndrome change at (round t,
// plaquette (r,c)).
type spacetimeDefect struct {
	t int
	d defect
}

// HistoryMonteCarlo estimates logical error rates for a syndrome
// history of the given number of rounds: each round injects fresh data
// errors with probability p per qubit and flips each syndrome bit with
// probability q (the final round is measured perfectly, closing the
// volume — the standard terminating round). Trials decode in parallel
// (see Workers); the failure count is identical to a serial run at any
// worker count.
type HistoryMonteCarlo struct {
	Lattice *Lattice
	Rounds  int
	Rng     *rand.Rand
	// Workers bounds the decoding worker pool; <= 0 selects GOMAXPROCS,
	// 1 forces serial decoding.
	Workers int
}

// Run samples, decodes the space-time volume, and counts logical
// failures over the accumulated error.
func (mc *HistoryMonteCarlo) Run(p, q float64, trials int) (Result, error) {
	return mc.RunContext(context.Background(), p, q, trials)
}

// RunContext is Run with cooperative cancellation, polled between trial
// batches; an aborted run returns an error matching scerr.ErrCanceled.
func (mc *HistoryMonteCarlo) RunContext(ctx context.Context, p, q float64, trials int) (Result, error) {
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return Result{}, fmt.Errorf("decoder: rates (%g, %g) outside [0,1]", p, q)
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("decoder: need at least one trial")
	}
	if mc.Rounds < 1 {
		return Result{}, fmt.Errorf("decoder: need at least one round")
	}
	l := mc.Lattice
	res := Result{Distance: l.Distance(), PhysicalRate: p, Trials: trials}
	nq, checks, rounds := l.DataQubits(), l.Checks(), mc.Rounds
	// One trial's draw layout, in the exact order a serial run consumes
	// the Rng: per round, nq data-flip draws, then (for every round but
	// the perfectly-measured last) checks measurement-flip draws.
	stride := rounds*nq + (rounds-1)*checks
	failures, err := runTrialBatches(ctx, l, mc.Workers, trials, stride,
		func(draws []bool) {
			pos := 0
			for t := 0; t < rounds; t++ {
				for qb := 0; qb < nq; qb++ {
					draws[pos+qb] = mc.Rng.Float64() < p
				}
				pos += nq
				if t < rounds-1 {
					for i := 0; i < checks; i++ {
						draws[pos+i] = mc.Rng.Float64() < q
					}
					pos += checks
				}
			}
		},
		func(l *Lattice, sc *trialScratch, draws []bool) (bool, error) {
			return l.historyTrial(sc, rounds, draws)
		})
	if err != nil {
		return Result{}, err
	}
	res.Failures = failures
	res.LogicalRate = float64(res.Failures) / float64(res.Trials)
	return res, nil
}

// historyTrial replays one pregenerated syndrome history and decodes
// its space-time volume.
func (l *Lattice) historyTrial(sc *trialScratch, rounds int, draws []bool) (bool, error) {
	nq, checks := l.DataQubits(), l.Checks()
	clear(sc.errs) // cumulative data errors
	clear(sc.prev)
	sc.stDefects = sc.stDefects[:0]
	pos := 0
	for t := 0; t < rounds; t++ {
		for qb := 0; qb < nq; qb++ {
			if draws[pos+qb] {
				sc.errs[qb] = !sc.errs[qb]
			}
		}
		pos += nq
		l.syndromeInto(sc.meas, sc.errs)
		if t < rounds-1 { // final round is perfect
			for i := 0; i < checks; i++ {
				if draws[pos+i] {
					sc.meas[i] = !sc.meas[i]
				}
			}
			pos += checks
		}
		for i := range sc.meas {
			if sc.meas[i] != sc.prev[i] {
				sc.stDefects = append(sc.stDefects, spacetimeDefect{
					t: t,
					d: defect{r: i / l.d, c: i % l.d},
				})
			}
		}
		sc.meas, sc.prev = sc.prev, sc.meas
	}
	l.decodeSpacetimeInto(sc)

	for qb := range sc.combined {
		sc.combined[qb] = sc.errs[qb] != sc.correction[qb]
	}
	l.syndromeInto(sc.syndrome, sc.combined)
	for i, hot := range sc.syndrome {
		if hot {
			panic(fmt.Sprintf("decoder: space-time residual defect at plaquette %d", i))
		}
	}
	return l.LogicalFailure(sc.errs, sc.correction), nil
}

// decodeSpacetimeInto matches sc.stDefects in the space-time metric
// (torus Manhattan + time separation) and projects each pair's spatial
// displacement onto data corrections in sc.correction. Candidate
// ordering uses the same total (weight, defect indices) key as the
// single-round matcher.
func (l *Lattice) decodeSpacetimeInto(sc *trialScratch) {
	clear(sc.correction)
	if len(sc.stDefects) == 0 {
		return
	}
	defects := sc.stDefects
	pairs := sc.match.matchPairs(len(defects), func(a, b int) int {
		dt := defects[a].t - defects[b].t
		if dt < 0 {
			dt = -dt
		}
		return l.torusDist(defects[a].d, defects[b].d) + dt
	})
	for _, pr := range pairs {
		// The spatial projection carries the data correction; the time
		// component is measurement-error bookkeeping.
		l.flipGeodesic(sc.correction, defects[pr[0]].d, defects[pr[1]].d)
	}
}
