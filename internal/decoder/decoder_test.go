package decoder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lattice(t *testing.T, d int) *Lattice {
	t.Helper()
	l, err := NewLattice(d)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLatticeValidation(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4, 8} {
		if _, err := NewLattice(d); err == nil {
			t.Errorf("d=%d should be rejected", d)
		}
	}
	l := lattice(t, 5)
	if l.DataQubits() != 50 || l.Checks() != 25 || l.Distance() != 5 {
		t.Errorf("lattice dimensions wrong: %d data, %d checks", l.DataQubits(), l.Checks())
	}
}

func TestPlaquetteEdgesShape(t *testing.T) {
	l := lattice(t, 3)
	// Every edge must appear in exactly two plaquettes (torus).
	count := make([]int, l.DataQubits())
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			for _, q := range l.PlaquetteEdges(r, c) {
				count[q]++
			}
		}
	}
	for q, n := range count {
		if n != 2 {
			t.Errorf("edge %d appears in %d plaquettes, want 2", q, n)
		}
	}
}

func TestNoErrorNoSyndrome(t *testing.T) {
	l := lattice(t, 5)
	s := l.Syndrome(l.NewErrorPattern())
	for i, hot := range s {
		if hot {
			t.Fatalf("clean pattern produced defect at %d", i)
		}
	}
	corr, err := l.Decode(s)
	if err != nil {
		t.Fatal(err)
	}
	for q, f := range corr {
		if f {
			t.Fatalf("empty syndrome produced correction at %d", q)
		}
	}
}

func TestSingleErrorExactlyCorrected(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l := lattice(t, d)
		for q := 0; q < l.DataQubits(); q++ {
			e := l.NewErrorPattern()
			e[q] = true
			s := l.Syndrome(e)
			defects := 0
			for _, hot := range s {
				if hot {
					defects++
				}
			}
			if defects != 2 {
				t.Fatalf("d=%d single error on %d: %d defects, want 2", d, q, defects)
			}
			corr, err := l.Decode(s)
			if err != nil {
				t.Fatal(err)
			}
			if l.LogicalFailure(e, corr) {
				t.Errorf("d=%d: single error on edge %d caused logical failure", d, q)
			}
		}
	}
}

func TestStabilizerResidualIsNotLogical(t *testing.T) {
	// A vertex star (product of X stabilizers) is a trivial residual:
	// syndrome-free and not a logical operator.
	l := lattice(t, 5)
	star := l.NewErrorPattern()
	star[l.hEdge(0, 0)] = true
	star[l.hEdge(0, l.d-1)] = true
	star[l.vEdge(0, 0)] = true
	star[l.vEdge(l.d-1, 0)] = true
	for i, hot := range l.Syndrome(star) {
		if hot {
			t.Fatalf("vertex star has defect at %d — not a stabilizer", i)
		}
	}
	if l.LogicalFailure(star, l.NewErrorPattern()) {
		t.Error("vertex star misdetected as logical operator")
	}
}

func TestWindingLoopIsLogical(t *testing.T) {
	l := lattice(t, 5)
	// Vertical dual loop: a column of horizontal edges.
	loop := l.NewErrorPattern()
	for r := 0; r < l.d; r++ {
		loop[l.hEdge(r, 2)] = true
	}
	for i, hot := range l.Syndrome(loop) {
		if hot {
			t.Fatalf("winding loop has defect at %d — not a cycle", i)
		}
	}
	if !l.LogicalFailure(loop, l.NewErrorPattern()) {
		t.Error("vertical winding loop not detected as logical")
	}
	// Horizontal dual loop: a row of vertical edges.
	loop2 := l.NewErrorPattern()
	for c := 0; c < l.d; c++ {
		loop2[l.vEdge(1, c)] = true
	}
	if !l.LogicalFailure(loop2, l.NewErrorPattern()) {
		t.Error("horizontal winding loop not detected as logical")
	}
}

func TestDecodeRejectsBadSyndrome(t *testing.T) {
	l := lattice(t, 3)
	if _, err := l.Decode(make([]bool, 5)); err == nil {
		t.Error("wrong-length syndrome should fail")
	}
	odd := make([]bool, l.Checks())
	odd[0] = true
	if _, err := l.Decode(odd); err == nil {
		t.Error("odd defect count should fail")
	}
}

// Property: for any error pattern, the decoder's correction clears the
// syndrome (the load-bearing matching invariant).
func TestCorrectionClearsSyndromeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, _ := NewLattice(3 + 2*rng.Intn(3))
		e := l.NewErrorPattern()
		for q := range e {
			if rng.Float64() < 0.15 {
				e[q] = true
			}
		}
		corr, err := l.Decode(l.Syndrome(e))
		if err != nil {
			return false
		}
		combined := l.NewErrorPattern()
		for q := range combined {
			combined[q] = e[q] != corr[q]
		}
		for _, hot := range l.Syndrome(combined) {
			if hot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	mc := &MonteCarlo{Rng: rand.New(rand.NewSource(1))}
	mc.Lattice = lattice(t, 3)
	if _, err := mc.Run(-0.1, 10); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := mc.Run(0.1, 0); err == nil {
		t.Error("zero trials should fail")
	}
	r, err := mc.Run(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 {
		t.Errorf("zero physical rate should never fail, got %d", r.Failures)
	}
}

// TestSuppressionBelowThreshold is the empirical validation of the
// toolflow's error model: below threshold, increasing the distance
// suppresses the logical rate.
func TestSuppressionBelowThreshold(t *testing.T) {
	const p = 0.03 // well below the matching threshold (~0.10)
	const trials = 3000
	rates := map[int]float64{}
	for _, d := range []int{3, 5, 7} {
		mc := &MonteCarlo{Lattice: lattice(t, d), Rng: rand.New(rand.NewSource(7))}
		r, err := mc.Run(p, trials)
		if err != nil {
			t.Fatal(err)
		}
		rates[d] = r.LogicalRate
	}
	if !(rates[3] > rates[5] && rates[5] > rates[7]) {
		t.Errorf("suppression violated below threshold: d3=%.4f d5=%.4f d7=%.4f",
			rates[3], rates[5], rates[7])
	}
	// At least ~2x suppression per distance step at p/p_th ~ 0.3.
	if rates[5] > 0 && rates[3]/rates[5] < 1.5 {
		t.Errorf("suppression factor d3->d5 too weak: %.2f", rates[3]/rates[5])
	}
}

// TestNoSuppressionAboveThreshold: far above threshold, more distance
// no longer helps (the paper's uncorrectable regime).
func TestNoSuppressionAboveThreshold(t *testing.T) {
	const p = 0.25
	const trials = 1500
	mc3 := &MonteCarlo{Lattice: lattice(t, 3), Rng: rand.New(rand.NewSource(9))}
	r3, err := mc3.Run(p, trials)
	if err != nil {
		t.Fatal(err)
	}
	mc7 := &MonteCarlo{Lattice: lattice(t, 7), Rng: rand.New(rand.NewSource(9))}
	r7, err := mc7.Run(p, trials)
	if err != nil {
		t.Fatal(err)
	}
	if r7.LogicalRate < r3.LogicalRate*0.8 {
		t.Errorf("above threshold, distance should not suppress: d3=%.3f d7=%.3f",
			r3.LogicalRate, r7.LogicalRate)
	}
}

func TestMatchRefinementImproves(t *testing.T) {
	// Four defects in a rectangle where greedy-nearest could pick the
	// crossing pairing; 2-opt must settle on the side pairing whose
	// total weight is minimal.
	l := lattice(t, 7)
	defects := []defect{{0, 0}, {0, 3}, {1, 0}, {1, 3}}
	pairs := l.match(defects)
	total := 0
	for _, p := range pairs {
		total += l.torusDist(defects[p[0]], defects[p[1]])
	}
	if total != 2 {
		t.Errorf("matching weight = %d, want 2 (vertical pairs)", total)
	}
}
