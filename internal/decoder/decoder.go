// Package decoder implements the classical error-correction machinery
// the paper's QEC layer rests on (§2.3): syndrome extraction on a
// surface-code lattice and matching-based decoding, with a Monte Carlo
// harness that measures logical error rates. It empirically validates
// the p_L(d) = A·(p/p_th)^((d+1)/2) suppression model the toolflow's
// distance selection assumes.
//
// The lattice is the toric code (periodic boundaries — every data qubit
// sits on an edge between two plaquettes), which exercises the same
// decoding problem as the paper's planar/double-defect patches without
// boundary special-casing. One Pauli sector is simulated (independent X
// errors against Z-plaquette checks); the other sector is symmetric.
//
// The paper decodes with Edmonds' minimum-weight perfect matching
// (their ref [25]); this package substitutes greedy nearest-pair
// matching with a 2-opt refinement pass — the same matching objective,
// polynomial and dependency-free, with a slightly lower threshold
// (documented in DESIGN.md). The exponential error suppression below
// threshold, which is what the toolflow consumes, is preserved.
//
// The Monte Carlo harnesses parallelize over trials: random draws are
// generated sequentially from the caller's Rng (so the consumed stream
// is identical to a serial run), then trials decode across a bounded
// worker pool with per-worker scratch. Failure counts are bit-identical
// at any worker count.
package decoder

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"surfcomm/internal/scerr"
)

// Lattice is a distance-d toric code patch: 2d² data qubits on the
// edges of a d×d periodic grid, d² Z-plaquette checks.
type Lattice struct {
	d int
}

// NewLattice returns a distance-d lattice; d must be odd and ≥ 3 (the
// error matches scerr.ErrBadConfig).
func NewLattice(d int) (*Lattice, error) {
	if d < 3 || d%2 == 0 {
		return nil, scerr.BadConfig("decoder: distance must be odd and >= 3, got %d", d)
	}
	return &Lattice{d: d}, nil
}

// Distance returns the code distance.
func (l *Lattice) Distance() int { return l.d }

// DataQubits returns the number of data qubits (edges).
func (l *Lattice) DataQubits() int { return 2 * l.d * l.d }

// Checks returns the number of Z-plaquette stabilizers.
func (l *Lattice) Checks() int { return l.d * l.d }

// Edge indexing: horizontal edge h(r,c) has index r*d+c; vertical edge
// v(r,c) has index d² + r*d + c. h(r,c) runs along the top of plaquette
// (r,c); v(r,c) runs along its left side.
func (l *Lattice) hEdge(r, c int) int { return r*l.d + c }
func (l *Lattice) vEdge(r, c int) int { return l.d*l.d + r*l.d + c }

func (l *Lattice) wrap(x int) int {
	x %= l.d
	if x < 0 {
		x += l.d
	}
	return x
}

// PlaquetteEdges returns the four data qubits of plaquette (r,c):
// its top and bottom horizontal edges and left and right vertical ones.
func (l *Lattice) PlaquetteEdges(r, c int) [4]int {
	return [4]int{
		l.hEdge(r, c),
		l.hEdge(l.wrap(r+1), c),
		l.vEdge(r, c),
		l.vEdge(r, l.wrap(c+1)),
	}
}

// ErrorPattern is a set of X-flipped data qubits.
type ErrorPattern []bool

// NewErrorPattern returns an all-clear pattern for the lattice.
func (l *Lattice) NewErrorPattern() ErrorPattern {
	return make(ErrorPattern, l.DataQubits())
}

// Syndrome measures every plaquette: true means an odd number of its
// edges are flipped (a defect).
func (l *Lattice) Syndrome(e ErrorPattern) []bool {
	s := make([]bool, l.Checks())
	l.syndromeInto(s, e)
	return s
}

// syndromeInto measures every plaquette into dst (length Checks).
func (l *Lattice) syndromeInto(dst []bool, e ErrorPattern) {
	for r := 0; r < l.d; r++ {
		for c := 0; c < l.d; c++ {
			parity := false
			for _, q := range l.PlaquetteEdges(r, c) {
				if e[q] {
					parity = !parity
				}
			}
			dst[r*l.d+c] = parity
		}
	}
}

// defect is a plaquette with anomalous syndrome.
type defect struct{ r, c int }

// torusDist returns the shortest wrap-around distance between defects.
func (l *Lattice) torusDist(a, b defect) int {
	dr := abs(a.r - b.r)
	if wrapped := l.d - dr; wrapped < dr {
		dr = wrapped
	}
	dc := abs(a.c - b.c)
	if wrapped := l.d - dc; wrapped < dc {
		dc = wrapped
	}
	return dr + dc
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Decode returns a correction pattern whose application clears the
// syndrome: defects are paired by matching and each pair is joined by a
// geodesic chain of edge flips. The correction plus the true error
// always forms closed loops; decoding succeeds when no loop winds
// around the torus.
func (l *Lattice) Decode(syndrome []bool) (ErrorPattern, error) {
	if len(syndrome) != l.Checks() {
		return nil, fmt.Errorf("decoder: syndrome length %d != %d checks", len(syndrome), l.Checks())
	}
	var defects []defect
	for i, hot := range syndrome {
		if hot {
			defects = append(defects, defect{r: i / l.d, c: i % l.d})
		}
	}
	if len(defects)%2 != 0 {
		return nil, fmt.Errorf("decoder: odd defect count %d (corrupted syndrome)", len(defects))
	}
	pairs := l.match(defects)
	correction := l.NewErrorPattern()
	for _, p := range pairs {
		l.flipGeodesic(correction, defects[p[0]], defects[p[1]])
	}
	return correction, nil
}

// cand is one candidate defect pairing with its matching weight.
type cand struct{ a, b, w int }

// matchScratch holds the reusable candidate/matched/pairs buffers of
// the greedy + 2-opt matcher, so steady-state matching never allocates.
// ops counts cumulative weight evaluations (candidate generation plus
// 2-opt probes) — the matcher's deterministic work measure.
type matchScratch struct {
	cands   []cand
	matched []bool
	pairs   [][2]int
	ops     uint64
}

// matchPairs pairs n defects greedily by ascending weight under dist,
// then improves the pairing with 2-opt swaps until no swap reduces
// total weight — the polynomial substitute for Edmonds' blossom
// matching. Candidates sort on the total key (weight, then both defect
// indices): equal-weight pairs always match in the same order no matter
// what the sort algorithm does with ties. The returned slice is valid
// until the next call.
func (ms *matchScratch) matchPairs(n int, dist func(a, b int) int) [][2]int {
	ms.pairs = ms.pairs[:0]
	if n == 0 {
		return ms.pairs
	}
	ms.cands = ms.cands[:0]
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ms.cands = append(ms.cands, cand{a, b, dist(a, b)})
			ms.ops++
		}
	}
	slices.SortFunc(ms.cands, func(x, y cand) int {
		if x.w != y.w {
			return x.w - y.w
		}
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	if cap(ms.matched) < n {
		ms.matched = make([]bool, n)
	}
	ms.matched = ms.matched[:n]
	clear(ms.matched)
	for _, c := range ms.cands {
		if !ms.matched[c.a] && !ms.matched[c.b] {
			ms.matched[c.a] = true
			ms.matched[c.b] = true
			ms.pairs = append(ms.pairs, [2]int{c.a, c.b})
		}
	}
	// 2-opt refinement: try re-pairing every pair of pairs.
	pairs := ms.pairs
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(pairs); i++ {
			for j := i + 1; j < len(pairs); j++ {
				a0, a1 := pairs[i][0], pairs[i][1]
				b0, b1 := pairs[j][0], pairs[j][1]
				ms.ops += 4
				cur := dist(a0, a1) + dist(b0, b1)
				if alt := dist(a0, b0) + dist(a1, b1); alt < cur {
					pairs[i] = [2]int{a0, b0}
					pairs[j] = [2]int{a1, b1}
					improved = true
					continue
				}
				ms.ops += 2
				if alt := dist(a0, b1) + dist(a1, b0); alt < cur {
					pairs[i] = [2]int{a0, b1}
					pairs[j] = [2]int{a1, b0}
					improved = true
				}
			}
		}
	}
	return pairs
}

// match pairs defects with a fresh scratch (steady-state callers hold a
// trialScratch and call matchPairs directly).
func (l *Lattice) match(defects []defect) [][2]int {
	var ms matchScratch
	return ms.matchPairs(len(defects), func(a, b int) int {
		return l.torusDist(defects[a], defects[b])
	})
}

// flipGeodesic flips the edges of a shortest torus path between two
// defects: first along rows (through the vertical edges separating
// vertically-adjacent plaquettes), then along columns.
func (l *Lattice) flipGeodesic(e ErrorPattern, a, b defect) {
	r, c := a.r, a.c
	// Move vertically toward b.r along the shorter wrap direction.
	stepR := 1
	dr := l.wrap(b.r - r)
	if dr > l.d/2 {
		stepR = -1
		dr = l.d - dr
	}
	for k := 0; k < dr; k++ {
		// Crossing from plaquette row r to r+stepR flips the shared
		// horizontal edge: h(r+1, c) when stepping down, h(r, c) up.
		if stepR == 1 {
			e[l.hEdge(l.wrap(r+1), c)] = !e[l.hEdge(l.wrap(r+1), c)]
		} else {
			e[l.hEdge(l.wrap(r), c)] = !e[l.hEdge(l.wrap(r), c)]
		}
		r = l.wrap(r + stepR)
	}
	// Move horizontally toward b.c.
	stepC := 1
	dc := l.wrap(b.c - c)
	if dc > l.d/2 {
		stepC = -1
		dc = l.d - dc
	}
	for k := 0; k < dc; k++ {
		if stepC == 1 {
			e[l.vEdge(r, l.wrap(c+1))] = !e[l.vEdge(r, l.wrap(c+1))]
		} else {
			e[l.vEdge(r, l.wrap(c))] = !e[l.vEdge(r, l.wrap(c))]
		}
		c = l.wrap(c + stepC)
	}
}

// LogicalFailure reports whether the residual pattern (error ⊕
// correction) implements a logical operator: a chain winding around the
// torus. Winding is detected by the parity of crossings of two fixed
// cuts — horizontal edges in row 0 (vertical winding) and vertical
// edges in column 0 (horizontal winding).
func (l *Lattice) LogicalFailure(err, correction ErrorPattern) bool {
	vertWind := false
	horzWind := false
	for c := 0; c < l.d; c++ {
		if err[l.hEdge(0, c)] != correction[l.hEdge(0, c)] {
			vertWind = !vertWind
		}
	}
	for r := 0; r < l.d; r++ {
		if err[l.vEdge(r, 0)] != correction[l.vEdge(r, 0)] {
			horzWind = !horzWind
		}
	}
	return vertWind || horzWind
}

// Config tunes a Monte Carlo harness: the worker pool and the decoding
// strategy. The zero value is valid (GOMAXPROCS workers, MWPM).
type Config struct {
	// Workers bounds the decoding worker pool; 0 selects GOMAXPROCS,
	// 1 forces serial decoding. Negative counts are rejected by
	// Validate — they used to silently select GOMAXPROCS.
	Workers int
	// Strategy selects the decoding algorithm; nil selects MWPM.
	Strategy Strategy
}

// Validate rejects nonsensical configurations with an error matching
// scerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return scerr.BadConfig("decoder: negative worker count %d", c.Workers)
	}
	return nil
}

// strategy returns the configured strategy, defaulting to MWPM.
func (c Config) strategy() Strategy {
	if c.Strategy == nil {
		return MWPM()
	}
	return c.Strategy
}

// MonteCarlo estimates the logical X-error rate per decode round for
// independent physical error rate p over the given number of trials.
// Trials decode in parallel (see Config.Workers); the random stream and
// the failure count are identical to a serial run at any worker count.
type MonteCarlo struct {
	Lattice *Lattice
	Rng     *rand.Rand
	Config
}

// Result summarizes a Monte Carlo run.
type Result struct {
	Distance     int
	PhysicalRate float64
	Trials       int
	Failures     int
	LogicalRate  float64
	// WorkOps is the summed Solver.WorkOps over all trials — the
	// strategy's deterministic work measure, identical at any worker
	// count.
	WorkOps uint64
}

// trialScratch is one worker's reusable decode state: error/correction
// patterns, syndrome buffers, and the strategy's solver (which owns the
// matching/cluster scratch). With it, a steady-state trial allocates
// nothing.
type trialScratch struct {
	solver     Solver
	errs       ErrorPattern
	correction ErrorPattern
	combined   ErrorPattern
	syndrome   []bool
	meas       []bool
	prev       []bool
	changes    []bool
}

func (l *Lattice) newTrialScratch(s Strategy) *trialScratch {
	if s == nil {
		s = MWPM()
	}
	return &trialScratch{
		solver:     s.NewSolver(l),
		errs:       l.NewErrorPattern(),
		correction: l.NewErrorPattern(),
		combined:   l.NewErrorPattern(),
		syndrome:   make([]bool, l.Checks()),
		meas:       make([]bool, l.Checks()),
		prev:       make([]bool, l.Checks()),
	}
}

// mcTrial decodes one pregenerated trial: draws holds the per-qubit
// error flips. Returns whether the trial is a logical failure. It
// panics only on internal invariant violations (syndrome not cleared by
// its own correction), which indicate decoder bugs, not user error.
func (l *Lattice) mcTrial(sc *trialScratch, draws []bool) (bool, error) {
	copy(sc.errs, draws)
	l.syndromeInto(sc.syndrome, sc.errs)
	if err := sc.solver.Decode(sc.correction, sc.syndrome); err != nil {
		return false, err
	}
	// Invariant: correction must clear the syndrome.
	for q := range sc.combined {
		sc.combined[q] = sc.errs[q] != sc.correction[q]
	}
	l.syndromeInto(sc.syndrome, sc.combined)
	for i, hot := range sc.syndrome {
		if hot {
			panic(fmt.Sprintf("decoder: residual defect at plaquette %d — the solver broke the syndrome", i))
		}
	}
	return l.LogicalFailure(sc.errs, sc.correction), nil
}

// Run samples error patterns, decodes, and counts logical failures.
func (mc *MonteCarlo) Run(p float64, trials int) (Result, error) {
	return mc.RunContext(context.Background(), p, trials)
}

// RunContext is Run with cooperative cancellation, polled between trial
// batches; an aborted run returns an error matching scerr.ErrCanceled,
// and a nonsensical configuration one matching scerr.ErrBadConfig.
func (mc *MonteCarlo) RunContext(ctx context.Context, p float64, trials int) (Result, error) {
	if mc.Lattice == nil {
		return Result{}, scerr.BadConfig("decoder: nil lattice")
	}
	if mc.Rng == nil {
		return Result{}, scerr.BadConfig("decoder: nil random source")
	}
	if err := mc.Config.Validate(); err != nil {
		return Result{}, err
	}
	if p < 0 || p > 1 {
		return Result{}, scerr.BadConfig("decoder: physical rate %g outside [0,1]", p)
	}
	if trials < 1 {
		return Result{}, scerr.BadConfig("decoder: need at least one trial, got %d", trials)
	}
	l := mc.Lattice
	res := Result{Distance: l.Distance(), PhysicalRate: p, Trials: trials}
	stride := l.DataQubits()
	failures, ops, err := runTrialBatches(ctx, l, mc.Workers, mc.strategy(), trials, stride,
		func(draws []bool) {
			for i := range draws {
				draws[i] = mc.Rng.Float64() < p
			}
		},
		(*Lattice).mcTrial)
	if err != nil {
		return Result{}, err
	}
	res.Failures = failures
	res.WorkOps = ops
	res.LogicalRate = float64(res.Failures) / float64(res.Trials)
	return res, nil
}

// batchTrials bounds the pregenerated-draw buffer: draws for at most
// this many trials are in memory at once.
const batchTrials = 1024

// runTrialBatches is the shared Monte Carlo engine: it draws trial
// randomness sequentially (gen fills one trial's stride of draws, so
// the Rng stream matches a serial run), then decodes each batch across
// the worker pool with per-worker scratch. The failure count is a sum
// of independent per-trial outcomes, so it is identical at any worker
// count — and so is the summed work-op count, since each trial's ops
// depend only on its own draws; errors surface from the lowest-indexed
// failing trial.
func runTrialBatches(ctx context.Context, l *Lattice, workers int, strategy Strategy, trials, stride int,
	gen func(draws []bool), trial func(*Lattice, *trialScratch, []bool) (bool, error)) (int, uint64, error) {

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	batch := batchTrials
	if batch > trials {
		batch = trials
	}
	draws := make([]bool, batch*stride)
	fails := make([]bool, batch)
	errs := make([]error, batch)
	scratch := make([]*trialScratch, workers)
	for w := range scratch {
		scratch[w] = l.newTrialScratch(strategy)
	}
	failures := 0
	done := ctx.Done()
	for start := 0; start < trials; start += batch {
		if done != nil {
			select {
			case <-done:
				return 0, 0, scerr.Canceled(ctx)
			default:
			}
		}
		n := batch
		if rem := trials - start; n > rem {
			n = rem
		}
		for t := 0; t < n; t++ {
			gen(draws[t*stride : (t+1)*stride])
		}
		if workers <= 1 {
			sc := scratch[0]
			for t := 0; t < n; t++ {
				fails[t], errs[t] = trial(l, sc, draws[t*stride:(t+1)*stride])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				sc := scratch[w]
				go func() {
					defer wg.Done()
					for {
						t := int(next.Add(1)) - 1
						if t >= n {
							return
						}
						fails[t], errs[t] = trial(l, sc, draws[t*stride:(t+1)*stride])
					}
				}()
			}
			wg.Wait()
		}
		for t := 0; t < n; t++ {
			if errs[t] != nil {
				return 0, 0, errs[t]
			}
			if fails[t] {
				failures++
			}
		}
	}
	var ops uint64
	for _, sc := range scratch {
		ops += sc.solver.WorkOps()
	}
	return failures, ops, nil
}
