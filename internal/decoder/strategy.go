package decoder

import (
	"sort"
	"sync"

	"surfcomm/internal/scerr"
)

// Strategy names accepted by StrategyByName (and by every layer above —
// sweep grids, the toolchain option, the streaming decode service).
const (
	// StrategyMWPM is the matching-based decoder of §2.3: greedy
	// nearest-pair matching with 2-opt refinement, the polynomial
	// substitute for Edmonds' blossom matching. It is the accuracy
	// reference; its cost grows quadratically in the defect count.
	StrategyMWPM = "mwpm"
	// StrategyUnionFind is the almost-linear-time union-find decoder
	// (weighted cluster growth + peeling), registered by
	// internal/ufdecoder. Slightly less accurate than matching, but its
	// cost stays near-linear in the defect count — the raw-speed choice
	// at large distances and the real-time streaming default.
	StrategyUnionFind = "unionfind"
)

// Solver is one worker's decoding engine for a fixed lattice: it owns
// its scratch (pooled, allocation-free in steady state) and is NOT safe
// for concurrent use — each Monte Carlo worker and each streaming
// session holds its own.
type Solver interface {
	// Decode writes a correction clearing the syndrome (length Checks)
	// into correction (length DataQubits, cleared by the solver). It
	// fails on syndromes no correction can clear (odd defect parity on
	// a boundaryless lattice).
	Decode(correction ErrorPattern, syndrome []bool) error
	// DecodeHistory decodes a space-time syndrome volume: changes holds
	// rounds × Checks() syndrome-CHANGE bits in round-major order
	// (changes[t*Checks()+i] reports check i flipping between rounds
	// t-1 and t). The spatial projection of the space-time matching —
	// the data correction — lands in correction.
	DecodeHistory(correction ErrorPattern, changes []bool, rounds int) error
	// WorkOps reports the cumulative algorithmic work this solver has
	// performed, in strategy-specific primitive operations (candidate
	// comparisons for matching; growth/union/peel steps for
	// union-find). Deterministic for a given decode sequence, so summed
	// counts are comparable across strategies and machine-independent —
	// the wall-clock proxy the BENCH_decode.json crossover records.
	WorkOps() uint64
}

// Strategy constructs per-worker solvers for a lattice. Implementations
// register themselves with RegisterStrategy so layers that only know a
// name (the HTTP service, cmd/sweep flags) can resolve one.
type Strategy interface {
	Name() string
	NewSolver(l *Lattice) Solver
}

var (
	strategyMu sync.RWMutex
	strategies = map[string]Strategy{StrategyMWPM: mwpmStrategy{}}
)

// RegisterStrategy makes a decoding strategy resolvable by name;
// re-registering a name replaces it (latest wins).
func RegisterStrategy(s Strategy) {
	strategyMu.Lock()
	strategies[s.Name()] = s
	strategyMu.Unlock()
}

// StrategyByName resolves a decoding strategy; the empty name selects
// MWPM (the historical default). Unknown names fail with an error
// matching scerr.ErrBadConfig that lists the registered set.
func StrategyByName(name string) (Strategy, error) {
	if name == "" {
		name = StrategyMWPM
	}
	strategyMu.RLock()
	s, ok := strategies[name]
	strategyMu.RUnlock()
	if !ok {
		return nil, scerr.BadConfig("decoder: unknown strategy %q (valid: %v)", name, StrategyNames())
	}
	return s, nil
}

// StrategyNames lists the registered strategies, sorted.
func StrategyNames() []string {
	strategyMu.RLock()
	names := make([]string, 0, len(strategies))
	for n := range strategies {
		names = append(names, n)
	}
	strategyMu.RUnlock()
	sort.Strings(names)
	return names
}

// mwpmStrategy is the built-in matching decoder behind Strategy.
type mwpmStrategy struct{}

// MWPM returns the matching-based decoding strategy (the default).
func MWPM() Strategy { return mwpmStrategy{} }

func (mwpmStrategy) Name() string { return StrategyMWPM }

func (mwpmStrategy) NewSolver(l *Lattice) Solver { return &mwpmSolver{l: l} }

// mwpmSolver is one worker's matching decoder: the greedy + 2-opt
// matcher plus the defect-list scratch, reused across decodes.
type mwpmSolver struct {
	l         *Lattice
	match     matchScratch
	defects   []defect
	stDefects []spacetimeDefect
}

func (s *mwpmSolver) WorkOps() uint64 { return s.match.ops }

func (s *mwpmSolver) Decode(correction ErrorPattern, syndrome []bool) error {
	l := s.l
	s.defects = s.defects[:0]
	for i, hot := range syndrome {
		if hot {
			s.defects = append(s.defects, defect{r: i / l.d, c: i % l.d})
		}
	}
	if len(s.defects)%2 != 0 {
		return scerr.BadConfig("decoder: odd defect count %d (corrupted syndrome)", len(s.defects))
	}
	pairs := s.match.matchPairs(len(s.defects), func(a, b int) int {
		return l.torusDist(s.defects[a], s.defects[b])
	})
	clear(correction)
	for _, p := range pairs {
		l.flipGeodesic(correction, s.defects[p[0]], s.defects[p[1]])
	}
	return nil
}

func (s *mwpmSolver) DecodeHistory(correction ErrorPattern, changes []bool, rounds int) error {
	l := s.l
	checks := l.Checks()
	s.stDefects = s.stDefects[:0]
	for t := 0; t < rounds; t++ {
		base := t * checks
		for i := 0; i < checks; i++ {
			if changes[base+i] {
				s.stDefects = append(s.stDefects, spacetimeDefect{
					t: t,
					d: defect{r: i / l.d, c: i % l.d},
				})
			}
		}
	}
	clear(correction)
	if len(s.stDefects) == 0 {
		return nil
	}
	if len(s.stDefects)%2 != 0 {
		return scerr.BadConfig("decoder: odd space-time defect count %d (corrupted syndrome stream)", len(s.stDefects))
	}
	defects := s.stDefects
	pairs := s.match.matchPairs(len(defects), func(a, b int) int {
		dt := defects[a].t - defects[b].t
		if dt < 0 {
			dt = -dt
		}
		return l.torusDist(defects[a].d, defects[b].d) + dt
	})
	for _, pr := range pairs {
		// The spatial projection carries the data correction; the time
		// component is measurement-error bookkeeping.
		l.flipGeodesic(correction, defects[pr[0]].d, defects[pr[1]].d)
	}
	return nil
}
