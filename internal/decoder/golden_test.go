package decoder

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestGoldenMonteCarloFailures pins the Monte Carlo failure counts
// bit-identically to the pre-refactor serial harness, at every worker
// count: draws are pregenerated sequentially from the Rng, so the
// consumed stream — and therefore each trial's outcome — is the same
// no matter how the decoding work is pooled.
func TestGoldenMonteCarloFailures(t *testing.T) {
	cases := []struct {
		d        int
		p        float64
		trials   int
		seed     int64
		failures int
	}{
		{3, 0.03, 400, 7, 10},
		{5, 0.05, 300, 11, 19},
		{7, 0.08, 200, 3, 42},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			l := lattice(t, c.d)
			mc := &MonteCarlo{Lattice: l, Rng: rand.New(rand.NewSource(c.seed)), Config: Config{Workers: workers}}
			r, err := mc.Run(c.p, c.trials)
			if err != nil {
				t.Fatal(err)
			}
			if r.Failures != c.failures {
				t.Errorf("d=%d p=%g seed=%d workers=%d: failures = %d, want %d",
					c.d, c.p, c.seed, workers, r.Failures, c.failures)
			}
		}
	}
}

// TestGoldenHistoryFailures pins the space-time harness the same way.
func TestGoldenHistoryFailures(t *testing.T) {
	cases := []struct {
		d, rounds int
		p, q      float64
		trials    int
		seed      int64
		failures  int
	}{
		{3, 3, 0.02, 0.01, 300, 5, 14},
		{5, 5, 0.03, 0.02, 150, 9, 21},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			l := lattice(t, c.d)
			mc := &HistoryMonteCarlo{Lattice: l, Rounds: c.rounds, Rng: rand.New(rand.NewSource(c.seed)), Config: Config{Workers: workers}}
			r, err := mc.Run(c.p, c.q, c.trials)
			if err != nil {
				t.Fatal(err)
			}
			if r.Failures != c.failures {
				t.Errorf("d=%d rounds=%d seed=%d workers=%d: failures = %d, want %d",
					c.d, c.rounds, c.seed, workers, r.Failures, c.failures)
			}
		}
	}
}
