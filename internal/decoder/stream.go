package decoder

import "surfcomm/internal/scerr"

// WindowDecoder is the streaming face of the space-time decoder: the
// caller pushes syndrome rounds as the hardware measures them, and
// every `window` rounds the accumulated change volume decodes as one
// space-time batch. The change bits at a window seam diff against the
// last round of the previous window (carried over in prev), so a defect
// pair straddling a seam still produces one change in each window —
// windows decode independently but the stream loses no defects.
//
// A WindowDecoder is NOT safe for concurrent use; each streaming
// session owns one. In steady state (after the first window) pushing
// and decoding allocate nothing.
type WindowDecoder struct {
	l       *Lattice
	solver  Solver
	window  int
	checks  int
	prev    []bool
	changes []bool
	filled  int

	rounds     int // total rounds pushed
	windows    int // total windows decoded
	vents      int // windows that needed the parity vent
	correction ErrorPattern
	defects    int // change bits in the last decoded window
}

// NewWindowDecoder builds a streaming decoder for the lattice: every
// `window` pushed rounds decode as one space-time volume using the
// given strategy (nil selects MWPM).
func NewWindowDecoder(l *Lattice, window int, s Strategy) (*WindowDecoder, error) {
	if l == nil {
		return nil, scerr.BadConfig("decoder: nil lattice")
	}
	if window < 1 {
		return nil, scerr.BadConfig("decoder: window must be >= 1, got %d", window)
	}
	if s == nil {
		s = MWPM()
	}
	checks := l.Checks()
	return &WindowDecoder{
		l:          l,
		solver:     s.NewSolver(l),
		window:     window,
		checks:     checks,
		prev:       make([]bool, checks),
		changes:    make([]bool, window*checks),
		correction: l.NewErrorPattern(),
	}, nil
}

// PushRound feeds one measured syndrome (length Checks). When the
// pushed round fills the window, the window decodes and PushRound
// reports decoded=true: Correction and Defects then describe the
// freshly decoded window until the next decode.
func (w *WindowDecoder) PushRound(syndrome []bool) (decoded bool, err error) {
	if len(syndrome) != w.checks {
		return false, scerr.BadConfig("decoder: syndrome length %d != %d checks", len(syndrome), w.checks)
	}
	base := w.filled * w.checks
	for i, hot := range syndrome {
		w.changes[base+i] = hot != w.prev[i]
	}
	copy(w.prev, syndrome)
	w.filled++
	w.rounds++
	if w.filled < w.window {
		return false, nil
	}
	return true, w.decode()
}

// Flush decodes a partially filled final window (fewer rounds than the
// declared window size, e.g. at end of stream). It reports whether
// anything was decoded; an empty buffer is a no-op.
func (w *WindowDecoder) Flush() (decoded bool, err error) {
	if w.filled == 0 {
		return false, nil
	}
	return true, w.decode()
}

func (w *WindowDecoder) decode() error {
	rounds := w.filled
	w.filled = 0
	vol := w.changes[:rounds*w.checks]
	w.defects = 0
	for _, hot := range vol {
		if hot {
			w.defects++
		}
	}
	// Parity vent: a measurement error straddling a window seam leaves
	// this window one defect short of its partner (the pair lands in
	// the next window), so the change volume has odd parity — which a
	// closed volume cannot decode. Venting flips the change bit of
	// check 0 in the window's last round: the stray defect pairs with
	// the vent now, and when its partner arrives the next window vents
	// identically, so the two vent corrections cancel cumulatively up
	// to a stabilizer loop (identity on the code space).
	if w.defects%2 != 0 {
		vent := (rounds - 1) * w.checks
		w.changes[vent] = !w.changes[vent]
		if w.changes[vent] {
			w.defects++
		} else {
			w.defects--
		}
		w.vents++
	}
	if err := w.solver.DecodeHistory(w.correction, vol, rounds); err != nil {
		return err
	}
	w.windows++
	return nil
}

// Correction returns the data correction of the last decoded window.
// The slice is reused by the next decode; copy it to retain it.
func (w *WindowDecoder) Correction() ErrorPattern { return w.correction }

// Defects returns the space-time defect count of the last decoded
// window.
func (w *WindowDecoder) Defects() int { return w.defects }

// Rounds returns the total number of rounds pushed.
func (w *WindowDecoder) Rounds() int { return w.rounds }

// Windows returns the total number of windows decoded.
func (w *WindowDecoder) Windows() int { return w.windows }

// Vents returns how many decoded windows needed the parity vent (see
// decode) — nonzero only when measurement errors straddle window
// seams.
func (w *WindowDecoder) Vents() int { return w.vents }

// WorkOps returns the solver's cumulative work-op count.
func (w *WindowDecoder) WorkOps() uint64 { return w.solver.WorkOps() }
