package decoder

import (
	"math/rand"
	"testing"
)

// TestTrialZeroAlloc asserts the Monte Carlo trial bodies are
// allocation-free in steady state: with a worker's scratch warmed up,
// syndrome extraction, matching (candidates, pairs, 2-opt), correction,
// and the verification pass all reuse their buffers.
func TestTrialZeroAlloc(t *testing.T) {
	l := lattice(t, 7)
	rng := rand.New(rand.NewSource(3))
	sc := l.newTrialScratch(nil)

	draws := make([]bool, l.DataQubits())
	for i := range draws {
		draws[i] = rng.Float64() < 0.08
	}
	if _, err := l.mcTrial(sc, draws); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := l.mcTrial(sc, draws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("mcTrial allocates %.1f times per trial, want 0", allocs)
	}

	const rounds = 5
	hist := make([]bool, rounds*l.DataQubits()+(rounds-1)*l.Checks())
	for i := range hist {
		hist[i] = rng.Float64() < 0.04
	}
	if _, err := l.historyTrial(sc, rounds, hist); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := l.historyTrial(sc, rounds, hist); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("historyTrial allocates %.1f times per trial, want 0", allocs)
	}
}
