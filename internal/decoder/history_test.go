package decoder

import (
	"math/rand"
	"testing"
)

func TestHistoryValidation(t *testing.T) {
	mc := &HistoryMonteCarlo{Lattice: lattice(t, 3), Rounds: 3, Rng: rand.New(rand.NewSource(1))}
	if _, err := mc.Run(-0.1, 0, 10); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := mc.Run(0.1, 2, 10); err == nil {
		t.Error("q > 1 should fail")
	}
	if _, err := mc.Run(0.1, 0.1, 0); err == nil {
		t.Error("zero trials should fail")
	}
	bad := &HistoryMonteCarlo{Lattice: lattice(t, 3), Rounds: 0, Rng: rand.New(rand.NewSource(1))}
	if _, err := bad.Run(0.1, 0.1, 10); err == nil {
		t.Error("zero rounds should fail")
	}
}

func TestHistoryNoNoiseNoFailures(t *testing.T) {
	mc := &HistoryMonteCarlo{Lattice: lattice(t, 5), Rounds: 5, Rng: rand.New(rand.NewSource(2))}
	r, err := mc.Run(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 {
		t.Errorf("noiseless history produced %d failures", r.Failures)
	}
}

func TestHistoryPureMeasurementNoiseHarmless(t *testing.T) {
	// Measurement errors alone create defect pairs adjacent in time;
	// matching them through time applies no data correction, so no
	// logical failure is possible.
	mc := &HistoryMonteCarlo{Lattice: lattice(t, 3), Rounds: 7, Rng: rand.New(rand.NewSource(3))}
	r, err := mc.Run(0, 0.05, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 {
		t.Errorf("pure measurement noise caused %d logical failures", r.Failures)
	}
}

func TestHistorySuppressionWithDistance(t *testing.T) {
	const p, q = 0.008, 0.008
	const trials = 1500
	rates := map[int]float64{}
	for _, d := range []int{3, 5} {
		mc := &HistoryMonteCarlo{
			Lattice: lattice(t, d),
			Rounds:  d, // syndrome recorded for d rounds, as on hardware
			Rng:     rand.New(rand.NewSource(11)),
		}
		r, err := mc.Run(p, q, trials)
		if err != nil {
			t.Fatal(err)
		}
		rates[d] = r.LogicalRate
	}
	if rates[3] <= rates[5] {
		t.Errorf("space-time suppression violated: d3=%.4f d5=%.4f", rates[3], rates[5])
	}
}

func TestHistorySingleRoundMatchesPerfectDecoder(t *testing.T) {
	// One round with q=0 degenerates to the perfect-measurement case:
	// identical failure statistics under the same seed stream length is
	// too strict, but the rates should be close.
	const p = 0.04
	const trials = 2000
	hist := &HistoryMonteCarlo{Lattice: lattice(t, 5), Rounds: 1, Rng: rand.New(rand.NewSource(5))}
	hr, err := hist.Run(p, 0, trials)
	if err != nil {
		t.Fatal(err)
	}
	mc := &MonteCarlo{Lattice: lattice(t, 5), Rng: rand.New(rand.NewSource(5))}
	sr, err := mc.Run(p, trials)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sr.LogicalRate*0.5-0.01, sr.LogicalRate*2+0.01
	if hr.LogicalRate < lo || hr.LogicalRate > hi {
		t.Errorf("single-round history rate %.4f far from perfect-measurement rate %.4f",
			hr.LogicalRate, sr.LogicalRate)
	}
}

func TestHistoryMeasurementNoiseHurts(t *testing.T) {
	// Adding measurement noise must not make decoding better.
	const p = 0.02
	const trials = 1500
	clean := &HistoryMonteCarlo{Lattice: lattice(t, 3), Rounds: 5, Rng: rand.New(rand.NewSource(6))}
	rc, err := clean.Run(p, 0, trials)
	if err != nil {
		t.Fatal(err)
	}
	noisy := &HistoryMonteCarlo{Lattice: lattice(t, 3), Rounds: 5, Rng: rand.New(rand.NewSource(6))}
	rn, err := noisy.Run(p, 0.05, trials)
	if err != nil {
		t.Fatal(err)
	}
	if rn.LogicalRate+0.01 < rc.LogicalRate {
		t.Errorf("measurement noise improved decoding: %.4f vs %.4f", rn.LogicalRate, rc.LogicalRate)
	}
}
