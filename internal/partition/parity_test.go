package partition

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sync"
	"testing"
)

// The bisector feeds qubit placement, and placement digests feed the
// committed BENCH artifacts — so Bisect must be a pure function of
// (graph, options): no map-iteration-order leakage, no shared scratch
// between calls, no dependence on who else is partitioning at the same
// time. The tests below pin that down harder than the single-graph
// determinism check in partition_test.go.

// parityCorpus is the seeded random-graph family the parity tests
// sweep: sizes from below MaxCoarseSize (no coarsening at all) to well
// above it (several coarsening levels), with edge densities from
// near-forest to dense.
func parityCorpus() []*Graph {
	var graphs []*Graph
	for i := 0; i < 30; i++ {
		n := 8 + (i*7)%89      // 8..96, straddling MaxCoarseSize=24
		edges := n * (1 + i%4) // sparse to dense
		seed := int64(100 + i*13)
		graphs = append(graphs, randomGraph(n, edges, seed))
	}
	return graphs
}

// bisectFingerprint hashes one Bisect result into a digest.
func bisectFingerprint(h *sha256Writer, side []int, cut int) {
	h.writeInt(cut)
	for _, s := range side {
		h.writeInt(s)
	}
}

type sha256Writer struct {
	h   [32]byte
	buf []byte
}

func (w *sha256Writer) writeInt(v int) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(int64(v)))
}

func (w *sha256Writer) sum() string {
	w.h = sha256.Sum256(w.buf)
	return hex.EncodeToString(w.h[:])
}

// parityGoldenDigest pins the serial results over the whole corpus.
// If a change to this package moves it, that change was NOT
// behavior-preserving: every committed BENCH artifact downstream of
// placement is suspect and must be regenerated deliberately.
const parityGoldenDigest = "b36445c759e8c574ceee9da4d75909fbbfc71e2aaf9b7159c5463d44ada9bc03"

// TestBisectCorpusGoldenDigest recomputes the corpus digest serially
// and compares it against the pinned constant.
func TestBisectCorpusGoldenDigest(t *testing.T) {
	w := &sha256Writer{}
	for i, g := range parityCorpus() {
		side, cut := Bisect(g, Options{Seed: int64(i)})
		bisectFingerprint(w, side, cut)
	}
	if got := w.sum(); got != parityGoldenDigest {
		t.Errorf("corpus digest %s != pinned %s — bisector results moved; "+
			"downstream BENCH artifacts are stale", got, parityGoldenDigest)
	}
}

// TestBisectConcurrentParity computes a serial golden per corpus graph,
// then re-runs every (graph, seed) pair from a pool of concurrent
// callers sharing the same *Graph values — the shape of a toolchain
// compiling modules in parallel. Every concurrent result must be
// identical to its serial golden; under -race this also flushes out any
// shared mutable state between calls.
func TestBisectConcurrentParity(t *testing.T) {
	graphs := parityCorpus()
	goldenSides := make([][]int, len(graphs))
	goldenCuts := make([]int, len(graphs))
	for i, g := range graphs {
		goldenSides[i], goldenCuts[i] = Bisect(g, Options{Seed: int64(i)})
	}

	callers := 2 * runtime.GOMAXPROCS(0)
	if callers < 4 {
		callers = 4
	}
	const itersPerCaller = 3
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < itersPerCaller; iter++ {
				// Stagger the starting graph so callers overlap on
				// different graphs at different times.
				for k := range graphs {
					i := (k + c) % len(graphs)
					side, cut := Bisect(graphs[i], Options{Seed: int64(i)})
					if cut != goldenCuts[i] {
						errs <- "concurrent cut diverged from serial golden"
						return
					}
					for v := range side {
						if side[v] != goldenSides[i][v] {
							errs <- "concurrent assignment diverged from serial golden"
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBisectOptionDefaultsParity checks that zero-value options and
// explicitly spelled-out defaults are the same partition, and that
// degenerate negative options are treated like the zero value instead
// of being honored.
func TestBisectOptionDefaultsParity(t *testing.T) {
	g := randomGraph(72, 220, 77)
	zeroSide, zeroCut := Bisect(g, Options{Seed: 5})
	explicit := Options{Seed: 5, BalanceTolerance: 0.08, MaxCoarseSize: 24, Passes: 8}
	expSide, expCut := Bisect(g, explicit)
	if zeroCut != expCut {
		t.Fatalf("zero-value options cut %d != explicit defaults cut %d", zeroCut, expCut)
	}
	for v := range zeroSide {
		if zeroSide[v] != expSide[v] {
			t.Fatal("zero-value options and explicit defaults disagree on assignment")
		}
	}
	negative := Options{Seed: 5, BalanceTolerance: -1, MaxCoarseSize: -3, Passes: -8}
	negSide, negCut := Bisect(g, negative)
	if negCut != zeroCut {
		t.Fatalf("negative options cut %d != defaults cut %d", negCut, zeroCut)
	}
	for v := range negSide {
		if negSide[v] != zeroSide[v] {
			t.Fatal("negative options should behave like the zero value")
		}
	}
}
