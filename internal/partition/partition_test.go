package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, u, v, w int) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	mustAdd(t, g, 0, 1, 3)
	mustAdd(t, g, 1, 0, 2) // accumulates
	mustAdd(t, g, 2, 3, 1)
	if got := g.EdgeWeight(0, 1); got != 5 {
		t.Errorf("EdgeWeight(0,1) = %d, want 5", got)
	}
	if got := g.EdgeWeight(1, 0); got != 5 {
		t.Errorf("symmetric weight = %d, want 5", got)
	}
	if got := g.EdgeWeight(0, 2); got != 0 {
		t.Errorf("absent edge weight = %d, want 0", got)
	}
	if got := g.TotalEdgeWeight(); got != 6 {
		t.Errorf("TotalEdgeWeight = %d, want 6", got)
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 1 || nbrs[0] != 0 {
		t.Errorf("Neighbors(1) = %v, want [0]", nbrs)
	}
}

func TestGraphRejectsBadEdges(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range should fail")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight should fail")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestCutWeight(t *testing.T) {
	g := NewGraph(4)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 2, 3, 3)
	mustAdd(t, g, 1, 2, 7)
	if got := g.CutWeight([]int{0, 0, 1, 1}); got != 7 {
		t.Errorf("cut = %d, want 7", got)
	}
	if got := g.CutWeight([]int{0, 1, 0, 1}); got != 2+3+7 {
		t.Errorf("cut = %d, want 12 (all three edges cross)", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewGraph(5)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 3, 4, 9)
	sub, mapping, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("sub size = %d, want 3", sub.NumVertices())
	}
	// Edge (1,2) survives as (0,1) in new ids; (0,1) and (3,4) are cut off.
	if got := sub.EdgeWeight(0, 1); got != 2 {
		t.Errorf("sub edge = %d, want 2", got)
	}
	if sub.TotalEdgeWeight() != 2 {
		t.Errorf("sub total = %d, want 2", sub.TotalEdgeWeight())
	}
	if mapping[0] != 1 || mapping[1] != 2 || mapping[2] != 3 {
		t.Errorf("mapping = %v", mapping)
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Error("duplicate vertex should fail")
	}
	if _, _, err := g.InducedSubgraph([]int{9}); err == nil {
		t.Error("out-of-range vertex should fail")
	}
}

// twoCliques builds two k-cliques joined by a single light edge — the
// canonical case with a known optimal bisection.
func twoCliques(t *testing.T, k int) *Graph {
	g := NewGraph(2 * k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			mustAdd(t, g, a, b, 10)
			mustAdd(t, g, k+a, k+b, 10)
		}
	}
	mustAdd(t, g, 0, k, 1)
	return g
}

func TestBisectTwoCliques(t *testing.T) {
	g := twoCliques(t, 8)
	side, cut := Bisect(g, Options{Seed: 1})
	if cut != 1 {
		t.Fatalf("cut = %d, want 1 (the bridge)", cut)
	}
	// Each clique must land wholly on one side.
	for v := 1; v < 8; v++ {
		if side[v] != side[0] {
			t.Errorf("clique A split: v%d side %d vs %d", v, side[v], side[0])
		}
		if side[8+v] != side[8] {
			t.Errorf("clique B split: v%d", 8+v)
		}
	}
	if side[0] == side[8] {
		t.Error("cliques should be on opposite sides")
	}
}

func TestBisectRing(t *testing.T) {
	const n = 32
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		mustAdd(t, g, i, (i+1)%n, 1)
	}
	side, cut := Bisect(g, Options{Seed: 3})
	if cut != 2 {
		t.Errorf("ring cut = %d, want 2 (contiguous arc)", cut)
	}
	if !Balanced(side, 0.08) {
		t.Error("ring bisection unbalanced")
	}
}

func TestBisectBalancedOnEdgelessGraph(t *testing.T) {
	g := NewGraph(10)
	side, cut := Bisect(g, Options{Seed: 5})
	if cut != 0 {
		t.Errorf("edgeless cut = %d, want 0", cut)
	}
	if !Balanced(side, 0.08) {
		counts := [2]int{}
		for _, s := range side {
			counts[s]++
		}
		t.Errorf("edgeless bisection unbalanced: %v", counts)
	}
}

func TestBisectTinyGraphs(t *testing.T) {
	for n := 0; n <= 3; n++ {
		g := NewGraph(n)
		if n >= 2 {
			mustAdd(t, g, 0, 1, 1)
		}
		side, _ := Bisect(g, Options{Seed: 7})
		if len(side) != n {
			t.Errorf("n=%d: side length %d", n, len(side))
		}
	}
}

func TestBisectDeterministic(t *testing.T) {
	g := randomGraph(64, 200, 42)
	sideA, cutA := Bisect(g, Options{Seed: 9})
	sideB, cutB := Bisect(g, Options{Seed: 9})
	if cutA != cutB {
		t.Fatalf("same seed, different cuts: %d vs %d", cutA, cutB)
	}
	for v := range sideA {
		if sideA[v] != sideB[v] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestBisectBeatsNaiveSplit(t *testing.T) {
	// Random geometric-ish graph: bisection should beat the index split
	// on a shuffled-community graph.
	g := NewGraph(64)
	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(64) // hidden communities: perm[v] < 32 vs >= 32
	for a := 0; a < 64; a++ {
		for b := a + 1; b < 64; b++ {
			sameCommunity := (perm[a] < 32) == (perm[b] < 32)
			switch {
			case sameCommunity && rng.Float64() < 0.4:
				mustAdd(t, g, a, b, 4)
			case !sameCommunity && rng.Float64() < 0.04:
				mustAdd(t, g, a, b, 1)
			}
		}
	}
	naive := make([]int, 64)
	for v := 32; v < 64; v++ {
		naive[v] = 1
	}
	naiveCut := g.CutWeight(naive)
	_, cut := Bisect(g, Options{Seed: 19})
	if cut >= naiveCut {
		t.Errorf("bisect cut %d should beat naive index split %d", cut, naiveCut)
	}
}

func randomGraph(n, edges int, seed int64) *Graph {
	g := NewGraph(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		_ = g.AddEdge(a, b, 1+rng.Intn(5))
	}
	return g
}

// Property: every bisection is a valid balanced 0/1 assignment and the
// reported cut matches a direct recount.
func TestBisectInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		n := 2 + int(nRaw%62)
		e := int(eRaw)
		g := randomGraph(n, e, seed)
		side, cut := Bisect(g, Options{Seed: seed})
		if len(side) != n {
			return false
		}
		for _, s := range side {
			if s != 0 && s != 1 {
				return false
			}
		}
		if cut != g.CutWeight(side) {
			return false
		}
		return Balanced(side, 0.10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSideVertices(t *testing.T) {
	zero, one := SideVertices([]int{0, 1, 0, 1, 0})
	if len(zero) != 3 || len(one) != 2 {
		t.Fatalf("split sizes %d/%d", len(zero), len(one))
	}
	if zero[0] != 0 || zero[1] != 2 || zero[2] != 4 {
		t.Errorf("zero side = %v", zero)
	}
}

func TestBalanced(t *testing.T) {
	if !Balanced([]int{0, 1, 0, 1}, 0.0) {
		t.Error("perfect split should be balanced at zero tolerance")
	}
	if Balanced([]int{0, 0, 0, 1}, 0.0) {
		t.Error("3/1 split should fail zero tolerance")
	}
	if !Balanced([]int{0, 0, 0, 1}, 0.3) {
		t.Error("3/1 split should pass 30% tolerance")
	}
}
