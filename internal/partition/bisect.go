package partition

import (
	"math/rand"
	"sort"
)

// Options tunes Bisect. The zero value selects sensible defaults.
type Options struct {
	// Seed makes runs reproducible; the same seed always yields the
	// same partition.
	Seed int64
	// BalanceTolerance ε allows side weights up to (0.5+ε)·total.
	// Zero selects 0.08.
	BalanceTolerance float64
	// MaxCoarseSize stops coarsening once the graph is this small.
	// Zero selects 24.
	MaxCoarseSize int
	// Passes bounds FM refinement passes per level. Zero selects 8.
	Passes int
}

func (o Options) withDefaults() Options {
	// Negative values are degenerate (no refinement passes, a coarsen
	// loop that never terminates early, an inverted balance band) —
	// treat them like the zero value rather than honoring them.
	if o.BalanceTolerance <= 0 {
		o.BalanceTolerance = 0.08
	}
	if o.MaxCoarseSize <= 0 {
		o.MaxCoarseSize = 24
	}
	if o.Passes <= 0 {
		o.Passes = 8
	}
	return o
}

// Bisect splits the graph into two balanced sides minimizing the cut
// weight, returning the side assignment (0 or 1 per vertex) and the
// achieved cut. Multilevel scheme: heavy-edge-matching coarsening, a
// greedy seed-growth partition of the coarsest graph, then FM
// refinement at every uncoarsening level.
func Bisect(g *Graph, opts Options) (side []int, cut int) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	side = make([]int, n)
	if n <= 1 {
		return side, 0
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	level := fromGraph(g)
	var hierarchy []*coarseLevel
	for level.size() > opts.MaxCoarseSize {
		next, ok := level.coarsen(rng)
		if !ok {
			break
		}
		hierarchy = append(hierarchy, next)
		level = next.graph
	}

	// One refinement scratch serves every level: sized for the finest
	// graph, it is reused across initial partitioning, every FM pass,
	// and every uncoarsening level instead of reallocating per pass.
	sc := newFMScratch(n)
	coarseSide := level.initialPartition(rng, opts.BalanceTolerance, sc)
	level.refine(coarseSide, opts, sc)

	// Project back through the hierarchy, refining at each level.
	for i := len(hierarchy) - 1; i >= 0; i-- {
		h := hierarchy[i]
		fine := h.fine
		fineSide := make([]int, fine.size())
		for v := range fineSide {
			fineSide[v] = coarseSide[h.match[v]]
		}
		fine.refine(fineSide, opts, sc)
		coarseSide = fineSide
	}
	copy(side, coarseSide)
	return side, g.CutWeight(side)
}

// fmScratch is the reusable working set of the refinement passes: gain
// tables, lock flags, and the tentative move sequence. Buffers grow to
// the finest level and are re-sliced per level.
type fmScratch struct {
	gain   []int
	locked []bool
	seq    []fmMove
}

type fmMove struct{ v, gain int }

func newFMScratch(n int) *fmScratch {
	return &fmScratch{
		gain:   make([]int, n),
		locked: make([]bool, n),
		seq:    make([]fmMove, 0, n),
	}
}

// forSize returns zeroed gain and locked views of length n.
func (sc *fmScratch) forSize(n int) (gain []int, locked []bool) {
	if cap(sc.gain) < n {
		sc.gain = make([]int, n)
		sc.locked = make([]bool, n)
	}
	gain, locked = sc.gain[:n], sc.locked[:n]
	clear(gain)
	clear(locked)
	return gain, locked
}

// coarseLevel records one coarsening step: the fine graph and the
// mapping of fine vertices to coarse supervertices.
type coarseLevel struct {
	fine  *levelGraph
	graph *levelGraph
	match []int // fine vertex -> coarse vertex
}

// levelGraph is the internal weighted-vertex representation used during
// multilevel bisection (supervertices carry the weight of everything
// merged into them).
type levelGraph struct {
	vw  []int
	nbr []map[int]int
}

func fromGraph(g *Graph) *levelGraph {
	n := g.NumVertices()
	lg := &levelGraph{vw: make([]int, n), nbr: make([]map[int]int, n)}
	for v := 0; v < n; v++ {
		lg.vw[v] = 1
		if g.nbr[v] != nil {
			m := make(map[int]int, len(g.nbr[v]))
			for u, w := range g.nbr[v] {
				m[u] = w
			}
			lg.nbr[v] = m
		} else {
			lg.nbr[v] = map[int]int{}
		}
	}
	return lg
}

func (lg *levelGraph) size() int { return len(lg.vw) }

func (lg *levelGraph) totalWeight() int {
	t := 0
	for _, w := range lg.vw {
		t += w
	}
	return t
}

// coarsen performs one round of heavy-edge matching. It returns ok =
// false when matching cannot shrink the graph (e.g. no edges left).
func (lg *levelGraph) coarsen(rng *rand.Rand) (*coarseLevel, bool) {
	n := lg.size()
	order := rng.Perm(n)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	coarseCount := 0
	// Heavy-edge matching: each unmatched vertex pairs with its
	// heaviest-edge unmatched neighbor.
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, 0
		for u, w := range lg.nbr[v] {
			// Deterministic tie-break on vertex id: map iteration order
			// must not leak into the partition.
			if match[u] < 0 && (w > bestW || (w == bestW && best >= 0 && u < best)) {
				best, bestW = u, w
			}
		}
		match[v] = coarseCount
		if best >= 0 {
			match[best] = coarseCount
		}
		coarseCount++
	}
	if coarseCount == n {
		return nil, false
	}
	coarse := &levelGraph{vw: make([]int, coarseCount), nbr: make([]map[int]int, coarseCount)}
	for i := range coarse.nbr {
		coarse.nbr[i] = map[int]int{}
	}
	for v := 0; v < n; v++ {
		cv := match[v]
		coarse.vw[cv] += lg.vw[v]
		for u, w := range lg.nbr[v] {
			cu := match[u]
			if cu != cv && v < u {
				coarse.nbr[cv][cu] += w
				coarse.nbr[cu][cv] += w
			}
		}
	}
	return &coarseLevel{fine: lg, graph: coarse, match: match}, true
}

// initialPartition grows side 0 from a seed by repeatedly absorbing the
// vertex most heavily connected to the growing region, until half the
// total vertex weight is absorbed.
func (lg *levelGraph) initialPartition(rng *rand.Rand, tolerance float64, sc *fmScratch) []int {
	n := lg.size()
	side := make([]int, n)
	for v := range side {
		side[v] = 1
	}
	target := lg.totalWeight() / 2
	if n == 0 || target == 0 {
		return side
	}
	gain, _ := sc.forSize(n)
	seed := rng.Intn(n)
	side[seed] = 0
	absorbed := lg.vw[seed]
	for u, w := range lg.nbr[seed] {
		gain[u] += w
	}
	for absorbed < target {
		best, bestGain := -1, -1
		for v := 0; v < n; v++ {
			if side[v] == 1 && gain[v] > bestGain {
				best, bestGain = v, gain[v]
			}
		}
		if best < 0 {
			break
		}
		// Disconnected remainder: gain 0 vertices still get absorbed,
		// keeping balance even for edgeless graphs.
		side[best] = 0
		absorbed += lg.vw[best]
		for u, w := range lg.nbr[best] {
			gain[u] += w
		}
	}
	return side
}

// refine restores balance (projection from a coarser level, or the
// greedy initial partition, can overshoot when supervertices are
// lumpy), then runs FM passes until no pass improves the cut.
func (lg *levelGraph) refine(side []int, opts Options, sc *fmScratch) {
	total := lg.totalWeight()
	maxSide := int(float64(total) * (0.5 + opts.BalanceTolerance))
	if min := (total + 1) / 2; maxSide < min {
		maxSide = min
	}
	lg.rebalance(side, maxSide)
	for pass := 0; pass < opts.Passes; pass++ {
		if !lg.fmPass(side, maxSide, sc) {
			return
		}
	}
}

// rebalance moves best-gain vertices off the heavy side until both
// sides fit under maxSide (or no further move can help — a single
// overweight supervertex resolves at a finer level, where weights are
// smaller).
func (lg *levelGraph) rebalance(side []int, maxSide int) {
	weights := [2]int{}
	for v, s := range side {
		weights[s] += lg.vw[v]
	}
	for {
		heavy := 0
		if weights[1] > weights[0] {
			heavy = 1
		}
		if weights[heavy] <= maxSide {
			return
		}
		best, bestGain := -1, 0
		for v, s := range side {
			if s != heavy {
				continue
			}
			if g := lg.moveGain(v, side); best < 0 || g > bestGain {
				best, bestGain = v, g
			}
		}
		if best < 0 {
			return // heavy side is a single vertex; nothing to move
		}
		side[best] = 1 - heavy
		weights[heavy] -= lg.vw[best]
		weights[1-heavy] += lg.vw[best]
		if weights[1-heavy] > weights[heavy] && weights[1-heavy] > maxSide {
			// The move flipped which side is overweight without fixing
			// anything (one huge vertex): undo and give up at this level.
			side[best] = heavy
			weights[heavy] += lg.vw[best]
			weights[1-heavy] -= lg.vw[best]
			return
		}
	}
}

// fmPass performs one Fiduccia–Mattheyses pass: tentatively move every
// vertex once in best-gain order (respecting balance), then keep the
// best prefix of the move sequence. Returns whether the cut improved.
func (lg *levelGraph) fmPass(side []int, maxSide int, sc *fmScratch) bool {
	n := lg.size()
	gain, locked := sc.forSize(n)
	for v := 0; v < n; v++ {
		gain[v] = lg.moveGain(v, side)
	}
	weights := [2]int{}
	for v := 0; v < n; v++ {
		weights[side[v]] += lg.vw[v]
	}

	sequence := sc.seq[:0]
	cumulative, best, bestIdx := 0, 0, -1

	for step := 0; step < n; step++ {
		cand, candGain := -1, 0
		for v := 0; v < n; v++ {
			if locked[v] {
				continue
			}
			dst := 1 - side[v]
			if weights[dst]+lg.vw[v] > maxSide {
				continue
			}
			if cand < 0 || gain[v] > candGain {
				cand, candGain = v, gain[v]
			}
		}
		if cand < 0 {
			break
		}
		src := side[cand]
		side[cand] = 1 - src
		weights[src] -= lg.vw[cand]
		weights[1-src] += lg.vw[cand]
		locked[cand] = true
		cumulative += candGain
		sequence = append(sequence, fmMove{cand, candGain})
		if cumulative > best {
			best, bestIdx = cumulative, len(sequence)-1
		}
		for u := range lg.nbr[cand] {
			if !locked[u] {
				gain[u] = lg.moveGain(u, side)
			}
		}
	}
	// Roll back everything after the best prefix.
	for i := len(sequence) - 1; i > bestIdx; i-- {
		v := sequence[i].v
		side[v] = 1 - side[v]
	}
	sc.seq = sequence[:0] // hand grown capacity back for the next pass
	return best > 0
}

// moveGain returns the cut reduction from moving v to the other side:
// external connectivity minus internal connectivity.
func (lg *levelGraph) moveGain(v int, side []int) int {
	g := 0
	for u, w := range lg.nbr[v] {
		if side[u] == side[v] {
			g -= w
		} else {
			g += w
		}
	}
	return g
}

// Balanced reports whether the side assignment keeps both sides within
// the tolerance used by Bisect (unit vertex weights). A ceil(n/2) side
// is always considered balanced — no split of an odd set can do better.
func Balanced(side []int, tolerance float64) bool {
	counts := [2]int{}
	for _, s := range side {
		counts[s]++
	}
	limit := int(float64(len(side)) * (0.5 + tolerance))
	if min := (len(side) + 1) / 2; limit < min {
		limit = min
	}
	return counts[0] <= limit && counts[1] <= limit
}

// SideVertices splits vertex ids by side, each in ascending order.
func SideVertices(side []int) (zero, one []int) {
	for v, s := range side {
		if s == 0 {
			zero = append(zero, v)
		} else {
			one = append(one, v)
		}
	}
	sort.Ints(zero)
	sort.Ints(one)
	return zero, one
}
