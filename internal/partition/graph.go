// Package partition implements multilevel graph bisection — the
// in-tree substitute for the METIS library the paper calls for qubit
// placement (§6.2). The algorithm family is the same one METIS ships:
// heavy-edge-matching coarsening, a greedy partition of the coarsest
// graph, and Fiduccia–Mattheyses refinement during uncoarsening.
//
// The layout package applies it recursively to the logical-qubit
// interaction graph to co-locate frequently-interacting qubits on the
// tiled architecture, minimizing braid length and collision risk.
package partition

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted graph over vertices 0..N-1. Parallel
// edge insertions accumulate weight; self-loops are rejected.
type Graph struct {
	n   int
	nbr []map[int]int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("partition: negative vertex count")
	}
	g := &Graph{n: n, nbr: make([]map[int]int, n)}
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// AddEdge accumulates weight w onto the undirected edge {u,v}.
func (g *Graph) AddEdge(u, v, w int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("partition: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("partition: self-loop on %d", u)
	}
	if w <= 0 {
		return fmt.Errorf("partition: non-positive edge weight %d", w)
	}
	if g.nbr[u] == nil {
		g.nbr[u] = make(map[int]int)
	}
	if g.nbr[v] == nil {
		g.nbr[v] = make(map[int]int)
	}
	g.nbr[u][v] += w
	g.nbr[v][u] += w
	return nil
}

// EdgeWeight returns the accumulated weight of {u,v} (0 if absent).
func (g *Graph) EdgeWeight(u, v int) int {
	if u < 0 || u >= g.n || g.nbr[u] == nil {
		return 0
	}
	return g.nbr[u][v]
}

// Neighbors returns v's neighbors in ascending order.
func (g *Graph) Neighbors(v int) []int {
	if g.nbr[v] == nil {
		return nil
	}
	out := make([]int, 0, len(g.nbr[v]))
	for u := range g.nbr[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// TotalEdgeWeight returns the sum of all edge weights.
func (g *Graph) TotalEdgeWeight() int {
	total := 0
	for u := 0; u < g.n; u++ {
		for v, w := range g.nbr[u] {
			if u < v {
				total += w
			}
		}
	}
	return total
}

// CutWeight returns the total weight of edges crossing the given 0/1
// side assignment.
func (g *Graph) CutWeight(side []int) int {
	cut := 0
	for u := 0; u < g.n; u++ {
		for v, w := range g.nbr[u] {
			if u < v && side[u] != side[v] {
				cut += w
			}
		}
	}
	return cut
}

// InducedSubgraph returns the subgraph on the given vertex subset, plus
// the mapping from new vertex ids to original ids (new id i ↦
// vertices[i]).
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	index := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("partition: vertex %d out of range", v)
		}
		if _, dup := index[v]; dup {
			return nil, nil, fmt.Errorf("partition: duplicate vertex %d", v)
		}
		index[v] = i
	}
	sub := NewGraph(len(vertices))
	for i, v := range vertices {
		for u, w := range g.nbr[v] {
			if j, ok := index[u]; ok && i < j {
				if err := sub.AddEdge(i, j, w); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	mapping := append([]int(nil), vertices...)
	return sub, mapping, nil
}
