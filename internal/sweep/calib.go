package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
	"surfcomm/internal/device"
	"surfcomm/internal/resource"
	"surfcomm/internal/scerr"
	"surfcomm/internal/surface"
)

// The calibration study: how much does device heterogeneity — coupling
// topology, per-coupler calibration, and mid-execution coupler deaths —
// move the braid-compiled schedule and its logical error rate? The grid
// compares square vs. heavy-hex coupling, uniform vs. calibrated
// devices (per-tile logical-rate spread from local calibration), and
// measures the live-defect survival fraction: the share of runs that
// re-route around mid-schedule coupler deaths instead of failing.

// CalibTopology names of the study's coupling patterns.
const (
	CalibSquare   = "square"
	CalibHeavyHex = "heavy-hex"
)

// CalibCell is one braid compile of the calibration study.
type CalibCell struct {
	App      string
	Topology string // CalibSquare or CalibHeavyHex
	// Calibrated marks cells running under a synthetic calibration
	// snapshot (heterogeneous link weights + per-tile error rates).
	Calibrated bool
	// Defects is the number of live coupler-death events injected
	// mid-schedule (0 = static device).
	Defects int
	Trial   int
	// Seed is the cell's derived realization seed.
	Seed int64
	// Device is the realized device's record string.
	Device string
	// Survived is false when the run failed with ErrUnroutable (the
	// fabric disconnected); survival fraction = mean over defect cells.
	Survived bool
	Cycles   int64
	Ratio    float64
	Adaptive int64
	// Reroutes counts in-flight braids torn down and re-placed around a
	// live coupler death.
	Reroutes int64
	Tiles    int
	// RateMin/RateMax/RateMean summarize the per-tile logical error
	// rates under local calibration (all equal to the uniform rate on
	// uncalibrated cells) — the calibrated-vs-uniform spread.
	RateMin  float64
	RateMax  float64
	RateMean float64
	// LogicalRate estimates the probability of at least one logical
	// error over the schedule, priced at the mean per-tile rate.
	LogicalRate float64
}

// CalibOptions selects the calibration-study grid.
type CalibOptions struct {
	// Distance is the code distance; zero selects 9.
	Distance int
	// App restricts the grid to one application; empty selects GSE.
	App string
	// Trials is the number of independent calibrations (and defect
	// schedules) per topology; zero selects 2.
	Trials int
	// DefectEvents is the number of live coupler deaths per defect
	// cell; zero selects 3.
	DefectEvents int
	// PhysicalError is the uniform p_P baseline; zero selects 1e-3
	// (calibration-scale error rates, so spreads are visible).
	PhysicalError float64
	// SquareOnly drops the heavy-hex rows; the zero value keeps them
	// (the topology comparison is the study's point).
	SquareOnly bool
	// Calibration overrides the synthetic snapshot with a loaded one
	// (applied to every calibrated cell; the cell seed then only
	// drives defect schedules).
	Calibration *device.Calibration
}

func (o CalibOptions) withDefaults() CalibOptions {
	if o.Distance == 0 {
		o.Distance = 9
	}
	if o.App == "" {
		o.App = "GSE"
	}
	if o.Trials == 0 {
		o.Trials = 2
	}
	if o.DefectEvents == 0 {
		o.DefectEvents = 3
	}
	if o.PhysicalError == 0 {
		o.PhysicalError = 1e-3
	}
	return o
}

// calibCellSpec is one grid coordinate before execution.
type calibCellSpec struct {
	topology   string
	calibrated bool
	defects    int
	trial      int
}

// CalibGrid runs the calibration study. A serial pre-pass compiles the
// workload once on the perfect square device to learn the junction-grid
// dimensions (shared by every cell — neither heavy-hex nor calibration
// kills tiles) and the baseline schedule length that scales the
// defect-event horizon; the grid cells then fan across the worker pool,
// each deriving its seed from the base seed and cell index.
func CalibGrid(ctx context.Context, opt Options, copt CalibOptions) ([]CalibCell, error) {
	copt = copt.withDefaults()
	var workload *apps.Workload
	for _, w := range apps.Fig6Suite() {
		if strings.EqualFold(w.Name, copt.App) {
			workload = &w
			break
		}
	}
	if workload == nil {
		return nil, scerr.BadConfig("sweep: unknown calib app %q", copt.App)
	}
	tech := surface.Superconducting(copt.PhysicalError)
	base, err := braid.SimulateContext(ctx, workload.Circuit, braid.Policy6, braid.Config{
		Distance:       copt.Distance,
		Seed:           opt.Seed,
		RecordSchedule: true, // only to learn the floorplan dims
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: calib pre-pass: %w", err)
	}
	jrows, jcols := base.Arch.TileRows+1, base.Arch.TileCols+1
	horizon := base.ScheduleCycles / 2
	if horizon < 1 {
		horizon = 1
	}

	topologies := []string{CalibSquare}
	if !copt.SquareOnly {
		topologies = append(topologies, CalibHeavyHex)
	}
	var cells []calibCellSpec
	for _, topo := range topologies {
		cells = append(cells, calibCellSpec{topology: topo})
	}
	for t := 0; t < copt.Trials; t++ {
		for _, topo := range topologies {
			cells = append(cells, calibCellSpec{topology: topo, calibrated: true, trial: t})
		}
	}
	for t := 0; t < copt.Trials; t++ {
		for _, topo := range topologies {
			cells = append(cells, calibCellSpec{topology: topo, defects: copt.DefectEvents, trial: t})
		}
	}

	return Map(ctx, opt, cells, func(i int, c calibCellSpec) (CalibCell, error) {
		seed := device.CellSeed(opt.Seed, i)
		dev := device.Perfect()
		if c.topology == CalibHeavyHex {
			dev = device.HeavyHex(seed)
		}
		if c.calibrated {
			cal := copt.Calibration
			if cal == nil {
				cal = device.SyntheticCalibration(seed, jrows, jcols)
			}
			dev = dev.WithCalibration(cal)
		}
		var defects *device.DefectSchedule
		if c.defects > 0 {
			defects = device.RandomDefectSchedule(seed, jrows, jcols, c.defects, horizon)
		}
		out := CalibCell{
			App:        workload.Name,
			Topology:   c.topology,
			Calibrated: c.calibrated,
			Defects:    c.defects,
			Trial:      c.trial,
			Seed:       seed,
			Device:     dev.String(),
			Survived:   true,
		}
		// Per-tile logical-rate spread on the realized junction grid.
		topo := dev.Instance(jrows, jcols)
		rates := resource.TileLogicalRates(topo, tech, copt.Distance)
		out.RateMin, out.RateMax, out.RateMean = resource.RateSpread(rates)
		r, err := braid.SimulateContext(ctx, workload.Circuit, braid.Policy6, braid.Config{
			Distance: copt.Distance,
			Seed:     opt.Seed,
			Device:   dev,
			Defects:  defects,
		})
		if err != nil {
			if errors.Is(err, scerr.ErrUnroutable) {
				out.Survived = false
				return out, nil
			}
			return CalibCell{}, fmt.Errorf("sweep: calib %s trial %d: %w", c.topology, c.trial, err)
		}
		out.Cycles = r.ScheduleCycles
		out.Ratio = r.Ratio
		out.Adaptive = r.AdaptiveRoutes
		out.Reroutes = r.Reroutes
		out.Tiles = r.Tiles
		if lr := float64(r.Tiles) * float64(r.ScheduleCycles) * out.RateMean; lr < 1 {
			out.LogicalRate = lr
		} else {
			out.LogicalRate = 1
		}
		return out, nil
	})
}
