package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
	"surfcomm/internal/device"
	"surfcomm/internal/scerr"
	"surfcomm/internal/surface"
)

// YieldCell is one braid compile on one realized defective device: a
// (application, defect fraction, trial) point of the yield study. Cells
// where the circuit cannot be compiled at all — endpoints cut off by
// the defect map — record Unroutable instead of failing the grid.
type YieldCell struct {
	App        string
	DefectFrac float64
	Trial      int
	// Seed is the cell's derived device-realization seed
	// (deterministic from Options.Seed and the cell index).
	Seed int64
	// Device is the realized device's record string (preset, defect
	// fraction, seed).
	Device     string
	Unroutable bool
	Cycles     int64
	Ratio      float64
	Adaptive   int64
	Tiles      int
	// LogicalRate estimates the probability of at least one logical
	// error over the schedule: tiles × cycles × p_L(d), capped at 1 —
	// longer defect-detoured schedules accumulate more logical error.
	LogicalRate float64
}

// YieldOptions selects the yield-study grid.
type YieldOptions struct {
	// Distance is the code distance; zero selects 9.
	Distance int
	// App restricts the grid to one application (case-insensitive
	// name); empty selects GSE (the fastest braid workload — the grid
	// regenerates in CI).
	App string
	// Fractions are the defect fractions swept; empty selects
	// {0, 0.02, 0.05}.
	Fractions []float64
	// Trials is the number of independent device realizations per
	// fraction; zero selects 2.
	Trials int
	// Clustered selects spatially correlated defects
	// (device.ClusteredDefects) instead of independent random yield.
	Clustered bool
	// PhysicalError is p_P for the logical-rate estimate; zero selects
	// 1e-8.
	PhysicalError float64
}

func (o YieldOptions) withDefaults() YieldOptions {
	if o.Distance == 0 {
		o.Distance = 9
	}
	if o.App == "" {
		o.App = "GSE"
	}
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{0, 0.02, 0.05}
	}
	if o.Trials == 0 {
		o.Trials = 2
	}
	if o.PhysicalError == 0 {
		o.PhysicalError = 1e-8
	}
	return o
}

// YieldGrid compiles one workload through the braid backend across a
// grid of defective devices — logical error rate and schedule latency
// vs. defect fraction, the communication-yield study no ideal-grid
// model can express. Each cell realizes its own device from a seed
// derived deterministically from the base seed and the cell index, so
// the grid is bit-identical at any worker count; unroutable cells are
// recorded, not fatal.
func YieldGrid(ctx context.Context, opt Options, yopt YieldOptions) ([]YieldCell, error) {
	yopt = yopt.withDefaults()
	var workload *apps.Workload
	for _, w := range apps.Fig6Suite() {
		if strings.EqualFold(w.Name, yopt.App) {
			workload = &w
			break
		}
	}
	if workload == nil {
		return nil, scerr.BadConfig("sweep: unknown yield app %q", yopt.App)
	}
	tech := surface.Superconducting(yopt.PhysicalError)
	perCycle := tech.LogicalErrorPerCycle(yopt.Distance)
	type cell struct {
		frac  float64
		trial int
	}
	cells := make([]cell, 0, len(yopt.Fractions)*yopt.Trials)
	for _, f := range yopt.Fractions {
		for t := 0; t < yopt.Trials; t++ {
			cells = append(cells, cell{f, t})
		}
	}
	return Map(ctx, opt, cells, func(i int, c cell) (YieldCell, error) {
		seed := device.CellSeed(opt.Seed, i)
		dev := device.RandomYield(c.frac, seed)
		if yopt.Clustered {
			dev = device.ClusteredDefects(c.frac, seed)
		}
		out := YieldCell{
			App:        workload.Name,
			DefectFrac: c.frac,
			Trial:      c.trial,
			Seed:       seed,
			Device:     dev.String(),
		}
		r, err := braid.SimulateContext(ctx, workload.Circuit, braid.Policy6, braid.Config{
			Distance: yopt.Distance,
			Seed:     opt.Seed,
			Device:   dev,
		})
		if err != nil {
			if errors.Is(err, scerr.ErrUnroutable) {
				out.Unroutable = true
				return out, nil
			}
			return YieldCell{}, fmt.Errorf("sweep: %s at p=%g trial %d: %w", workload.Name, c.frac, c.trial, err)
		}
		out.Cycles = r.ScheduleCycles
		out.Ratio = r.Ratio
		out.Adaptive = r.AdaptiveRoutes
		out.Tiles = r.Tiles
		if lr := float64(r.Tiles) * float64(r.ScheduleCycles) * perCycle; lr < 1 {
			out.LogicalRate = lr
		} else {
			out.LogicalRate = 1
		}
		return out, nil
	})
}
