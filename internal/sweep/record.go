package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"surfcomm/internal/device"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

// CellResult is one machine-readable grid cell: which study it belongs
// to, which cell of the grid it is, and its scalar metrics. A sweep run
// serialized as a list of CellResults (see WriteRecords) is the
// BENCH_*.json artifact used to track the perf and accuracy trajectory
// of the reproduction across revisions.
type CellResult struct {
	Study   string             `json:"study"`
	Cell    string             `json:"cell"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
	// Device names the topology the cell ran on (preset + defect
	// fraction + realization seed), so records from different
	// topologies are distinguishable. It serializes last among the
	// always-present fields: pre-device records gain a byte-compatible
	// `"device": "perfect"` suffix.
	Device string `json:"device"`
	// Strategy names the decoding strategy for decoder/decode-study
	// cells. It is omitted when empty, so records predating the
	// strategy field (implicitly MWPM) stay byte-identical.
	Strategy string `json:"strategy,omitempty"`
}

// WriteRecords serializes cells as indented JSON. Encoding is stable:
// cell order is preserved and metric keys marshal sorted, so two runs
// that computed the same values produce identical bytes — the property
// the parallel-equals-serial check and cross-revision diffs rely on.
func WriteRecords(w io.Writer, cells []CellResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// WriteRecordsFile writes cells to path (the BENCH_*.json convention).
func WriteRecordsFile(path string, cells []CellResult) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if err := WriteRecords(f, cells); err != nil {
		f.Close()
		return fmt.Errorf("sweep: encoding %s: %w", path, err)
	}
	return f.Close()
}

// ModelRecords converts characterized app models to cell results.
func ModelRecords(seed int64, models []toolflow.AppModel) []CellResult {
	out := make([]CellResult, 0, len(models))
	for _, m := range models {
		out = append(out, CellResult{
			Study:  "characterization",
			Device: device.PresetPerfect,
			Cell:   m.Name,
			Seed:   seed,
			Metrics: map[string]float64{
				"parallelism":       m.Parallelism,
				"sched_parallelism": m.SchedParallelism,
				"move_fraction":     m.MoveFraction,
				"congestion_dd":     m.CongestionDD,
			},
		})
	}
	return out
}

// CurveRecords converts Figure 7/8 design points to cell results.
func CurveRecords(study, app string, physicalError float64, seed int64, pts []toolflow.DesignPoint) []CellResult {
	out := make([]CellResult, 0, len(pts))
	for _, dp := range pts {
		out = append(out, CellResult{
			Study:  study,
			Device: device.PresetPerfect,
			Cell:   fmt.Sprintf("%s/K=%.1e/pp=%.0e", app, dp.TotalOps, physicalError),
			Seed:   seed,
			Metrics: map[string]float64{
				"distance":         float64(dp.Distance),
				"planar_seconds":   dp.PlanarSeconds,
				"dd_seconds":       dp.DDSeconds,
				"planar_qubits":    dp.PlanarQubits,
				"dd_qubits":        dp.DDQubits,
				"space_time_ratio": dp.SpaceTimeRatio,
			},
		})
	}
	return out
}

// BoundaryRecords converts a Figure 9 boundary grid (one row per
// model, as Boundary returns it) to cell results. Off-chart points —
// planar favored across the whole K range — carry the -1 sentinel.
func BoundaryRecords(seed int64, models []toolflow.AppModel, boundaries [][]toolflow.BoundaryPoint) []CellResult {
	var out []CellResult
	for mi, m := range models {
		for _, pt := range boundaries[mi] {
			k := pt.CrossoverOps
			if pt.OffChart {
				k = -1
			}
			out = append(out, CellResult{
				Study:   "figure9",
				Device:  device.PresetPerfect,
				Cell:    fmt.Sprintf("%s/pp=%.1e", m.Name, pt.PhysicalError),
				Seed:    seed,
				Metrics: map[string]float64{"crossover_k": k},
			})
		}
	}
	return out
}

// EPRWindowLabel names a window row the way the §8.1 tables print it.
func EPRWindowLabel(windowCycles int64) string {
	if windowCycles == teleport.PrefetchAll {
		return "prefetch-all"
	}
	return fmt.Sprintf("%d", windowCycles)
}

// EPRRecords converts the §8.1 window study to cell results.
func EPRRecords(seed int64, cells []EPRCell) []CellResult {
	var out []CellResult
	for _, c := range cells {
		for _, r := range c.Rows {
			out = append(out, CellResult{
				Study:  "epr",
				Device: device.PresetPerfect,
				Cell:   fmt.Sprintf("%s/window=%s", c.Name, EPRWindowLabel(r.WindowCycles)),
				Seed:   seed,
				Metrics: map[string]float64{
					"peak_live_epr":    float64(r.PeakLiveEPR),
					"stall_cycles":     float64(r.StallCycles),
					"latency_overhead": r.LatencyOverhead,
				},
			})
		}
	}
	return out
}

// DecoderRecords converts an error-model validation grid to cell
// results; each record carries the cell's own derived seed.
func DecoderRecords(cells []DecoderCell) []CellResult {
	out := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		out = append(out, CellResult{
			Study:    "decoder",
			Device:   device.PresetPerfect,
			Strategy: c.Strategy,
			Cell:     fmt.Sprintf("d=%d/p=%.2e", c.Distance, c.PhysicalRate),
			Seed:     c.Seed,
			Metrics: map[string]float64{
				"failures":     float64(c.Failures),
				"logical_rate": c.LogicalRate,
				"trials":       float64(c.Trials),
			},
		})
	}
	return out
}

// DecodeBenchRecords converts a strategy-comparison grid (the
// BENCH_decode.json study) to cell results: unlike DecoderRecords it
// names the strategy in every cell and records the deterministic
// work-op count — the machine-independent wall-clock proxy the
// crossover analysis compares (work-ops per trial, not seconds, so the
// artifact reproduces bit-identically on any machine).
func DecodeBenchRecords(study string, cells []DecoderCell) []CellResult {
	out := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		strategy := c.Strategy
		if strategy == "" {
			strategy = "mwpm"
		}
		out = append(out, CellResult{
			Study:    study,
			Device:   device.PresetPerfect,
			Strategy: strategy,
			Cell:     fmt.Sprintf("d=%d/p=%.2e/%s", c.Distance, c.PhysicalRate, strategy),
			Seed:     c.Seed,
			Metrics: map[string]float64{
				"failures":          float64(c.Failures),
				"logical_rate":      c.LogicalRate,
				"trials":            float64(c.Trials),
				"workops":           float64(c.WorkOps),
				"workops_per_trial": float64(c.WorkOps) / float64(c.Trials),
			},
		})
	}
	return out
}

// YieldRecords converts a yield study to cell results; each record
// names the realized device it compiled on and carries the cell's own
// derived realization seed.
func YieldRecords(cells []YieldCell) []CellResult {
	out := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		unroutable := 0.0
		if c.Unroutable {
			unroutable = 1
		}
		out = append(out, CellResult{
			Study:  "yield",
			Device: c.Device,
			Cell:   fmt.Sprintf("%s/p=%g/trial%d", c.App, c.DefectFrac, c.Trial),
			Seed:   c.Seed,
			Metrics: map[string]float64{
				"cycles":       float64(c.Cycles),
				"ratio":        c.Ratio,
				"adaptive":     float64(c.Adaptive),
				"tiles":        float64(c.Tiles),
				"logical_rate": c.LogicalRate,
				"unroutable":   unroutable,
			},
		})
	}
	return out
}

// CalibRecords converts a calibration study to cell results; each
// record names the realized device (including the calibration snapshot
// digest when one is attached) and carries the cell's derived seed.
func CalibRecords(cells []CalibCell) []CellResult {
	out := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		survived := 0.0
		if c.Survived {
			survived = 1
		}
		label := "uniform"
		if c.Calibrated {
			label = "calibrated"
		}
		if c.Defects > 0 {
			label = fmt.Sprintf("defects=%d", c.Defects)
		}
		out = append(out, CellResult{
			Study:  "calib",
			Device: c.Device,
			Cell:   fmt.Sprintf("%s/%s/%s/trial%d", c.App, c.Topology, label, c.Trial),
			Seed:   c.Seed,
			Metrics: map[string]float64{
				"cycles":       float64(c.Cycles),
				"ratio":        c.Ratio,
				"adaptive":     float64(c.Adaptive),
				"reroutes":     float64(c.Reroutes),
				"tiles":        float64(c.Tiles),
				"rate_min":     c.RateMin,
				"rate_max":     c.RateMax,
				"rate_mean":    c.RateMean,
				"logical_rate": c.LogicalRate,
				"survived":     survived,
			},
		})
	}
	return out
}

// Figure6Records converts a Figure 6 policy grid to cell results.
func Figure6Records(seed int64, cells []Figure6Cell) []CellResult {
	out := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		out = append(out, CellResult{
			Study:  "figure6",
			Device: device.PresetPerfect,
			Cell:   fmt.Sprintf("%s/policy%d", c.App, c.Policy),
			Seed:   seed,
			Metrics: map[string]float64{
				"ratio":  c.Ratio,
				"util":   c.Util,
				"cycles": float64(c.Cycles),
			},
		})
	}
	return out
}
