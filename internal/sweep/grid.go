package sweep

import (
	"fmt"
	"math/rand"
	"strings"

	"context"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
	"surfcomm/internal/decoder"
	"surfcomm/internal/device"
	"surfcomm/internal/simd"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

// The domain grids: each study of the paper's evaluation expressed as
// independent cells over the Map runner. Every grid is a pure function
// of (inputs, seed), so runs at any worker count agree cell-for-cell
// with a serial run.

// Characterize measures app models for the given workloads in parallel
// — one cell per workload, each running the full frontend + Multi-SIMD
// + braid characterization. The seed is shared across cells (it is part
// of the model identity): the result equals a serial loop over
// toolflow.Characterize.
func Characterize(ctx context.Context, opt Options, workloads []apps.Workload) ([]toolflow.AppModel, error) {
	return Map(ctx, opt, workloads, func(_ int, w apps.Workload) (toolflow.AppModel, error) {
		return toolflow.CharacterizeContext(ctx, w, opt.Seed)
	})
}

// Models characterizes the reference suite (the models behind Figures
// 7–9) across the worker pool. Equivalent to
// toolflow.ReferenceModels(opt.Seed), cell-parallel.
func Models(ctx context.Context, opt Options) ([]toolflow.AppModel, error) {
	return Characterize(ctx, opt, toolflow.ReferenceWorkloads())
}

// Curve evaluates a log-spaced K sweep for one model — the Figure 7/8
// series — one cell per design point. Equivalent to toolflow.Curve.
func Curve(ctx context.Context, opt Options, m toolflow.AppModel, physicalError float64, fromExp, toExp, pointsPerDecade int) ([]toolflow.DesignPoint, error) {
	exps := make([]int, 0, (toExp-fromExp)*pointsPerDecade+1)
	for i := fromExp * pointsPerDecade; i <= toExp*pointsPerDecade; i++ {
		exps = append(exps, i)
	}
	return Map(ctx, opt, exps, func(_ int, i int) (toolflow.DesignPoint, error) {
		return toolflow.CurvePoint(m, physicalError, i, pointsPerDecade)
	})
}

// Boundary computes the Figure 9 crossover boundaries for every model
// over the full error-rate axis — the (application × p_P) grid, one
// crossover search per cell. Row i holds models[i]'s boundary in rate
// order, exactly as toolflow.Boundary returns it.
func Boundary(ctx context.Context, opt Options, models []toolflow.AppModel, rates []float64) ([][]toolflow.BoundaryPoint, error) {
	type cell struct {
		model int
		rate  int
	}
	cells := make([]cell, 0, len(models)*len(rates))
	for mi := range models {
		for ri := range rates {
			cells = append(cells, cell{mi, ri})
		}
	}
	pts, err := Map(ctx, opt, cells, func(_ int, c cell) (toolflow.BoundaryPoint, error) {
		return toolflow.BoundaryAt(models[c.model], rates[c.rate]), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]toolflow.BoundaryPoint, len(models))
	for mi := range models {
		out[mi] = pts[mi*len(rates) : (mi+1)*len(rates)]
	}
	return out, nil
}

// EPRCell is one application's §8.1 window-sweep study.
type EPRCell struct {
	Name      string
	Moves     int
	Timesteps int
	JIT       int64
	// JITIndex is the position of the JIT-window row in Rows, so
	// consumers never hard-code the window ordering.
	JITIndex int
	Rows     []teleport.Result
}

// EPRWindows runs the §8.1 pipelined-EPR window study for every Fig. 6
// workload in parallel — one cell per application, each scheduling the
// circuit on the Multi-SIMD machine and sweeping look-ahead windows
// around the JIT heuristic.
func EPRWindows(ctx context.Context, opt Options, cfg teleport.Config) ([]EPRCell, error) {
	return Map(ctx, opt, apps.Fig6Suite(), func(_ int, w apps.Workload) (EPRCell, error) {
		sched, err := simd.RunContext(ctx, w.Circuit, simd.ConfigFor(w.Circuit.NumQubits, opt.Seed))
		if err != nil {
			return EPRCell{}, err
		}
		jit := teleport.JITWindow(sched, cfg)
		const jitIndex = 3
		windows := []int64{0, jit / 4, jit / 2, jit, 2 * jit, 8 * jit, teleport.PrefetchAll}
		rows, err := teleport.SweepWindowsContext(ctx, sched, windows, cfg)
		if err != nil {
			return EPRCell{}, err
		}
		return EPRCell{
			Name:      w.Name,
			Moves:     len(sched.Moves),
			Timesteps: sched.Timesteps,
			JIT:       jit,
			JITIndex:  jitIndex,
			Rows:      rows,
		}, nil
	})
}

// DecoderCell is one Monte Carlo decoding cell of the §2.3 error-model
// validation grid: a (distance, physical rate) point with its measured
// failure count.
type DecoderCell struct {
	Distance     int
	PhysicalRate float64
	Trials       int
	// Seed is the cell's derived Monte Carlo seed (deterministic from
	// Options.Seed and the cell index, recorded for reproduction).
	Seed        int64
	Failures    int
	LogicalRate float64
	// Strategy names the decoding strategy the cell ran under; empty
	// means the default (MWPM), keeping pre-strategy records
	// byte-identical.
	Strategy string
	// WorkOps is the cell's summed deterministic decode work (see
	// decoder.Result.WorkOps) — the machine-independent cost measure
	// the crossover study compares across strategies.
	WorkOps uint64
}

// DecoderGrid measures the logical error rate across the (distance ×
// physical rate) plane — the decoding counterpart of the Figure 9
// boundary studies. Each cell derives its seed deterministically from
// the base seed and its index, runs its Monte Carlo serially (the grid
// itself fans across the worker pool), and is bit-identical at any
// worker count. A nil strategy selects the default (MWPM) and leaves
// the per-cell Strategy field empty, keeping pre-strategy records
// byte-identical.
func DecoderGrid(ctx context.Context, opt Options, distances []int, rates []float64, trials int, strategy decoder.Strategy) ([]DecoderCell, error) {
	type cell struct {
		d    int
		rate float64
	}
	cells := make([]cell, 0, len(distances)*len(rates))
	for _, d := range distances {
		for _, r := range rates {
			cells = append(cells, cell{d, r})
		}
	}
	name := ""
	if strategy != nil {
		name = strategy.Name()
	}
	return Map(ctx, opt, cells, func(i int, c cell) (DecoderCell, error) {
		seed := device.CellSeed(opt.Seed, i)
		l, err := decoder.NewLattice(c.d)
		if err != nil {
			return DecoderCell{}, err
		}
		mc := &decoder.MonteCarlo{
			Lattice: l,
			Rng:     rand.New(rand.NewSource(seed)),
			Config:  decoder.Config{Workers: 1, Strategy: strategy},
		}
		r, err := mc.RunContext(ctx, c.rate, trials)
		if err != nil {
			return DecoderCell{}, err
		}
		return DecoderCell{
			Distance:     c.d,
			PhysicalRate: c.rate,
			Trials:       trials,
			Seed:         seed,
			Failures:     r.Failures,
			LogicalRate:  r.LogicalRate,
			Strategy:     name,
			WorkOps:      r.WorkOps,
		}, nil
	})
}

// Figure6Cell is one (application, policy) braid simulation of the
// Figure 6 grid.
type Figure6Cell struct {
	App    string
	Policy int
	Ratio  float64
	Util   float64
	Cycles int64
	// Braids/Adaptive/Reinjections expose the engine's placement
	// counters (the cmd/braidsim columns).
	Braids       int64
	Adaptive     int64
	Reinjections int64
	// Result carries the full simulation result so callers can
	// replay-validate cells. It is populated only when
	// Figure6Options.RecordSchedule is set, keeping default cells
	// directly comparable across runs (the parallel==serial checks).
	Result *braid.Result
}

// Figure6Options selects the Figure 6 grid variant.
type Figure6Options struct {
	// Distance is the code distance; zero selects 9.
	Distance int
	// LocalTOps is the magic-state ablation (states pre-delivered).
	LocalTOps bool
	// RecordSchedule captures each cell's static schedule for replay
	// validation.
	RecordSchedule bool
	// App restricts the grid to one application (case-insensitive
	// name); empty runs the full suite.
	App string
}

// Figure6 runs the Figure 6 policy sweep — every application under
// every braid policy — across the worker pool. Each cell is an
// independent braid simulation with its own mesh, so the grid scales to
// the core count.
func Figure6(ctx context.Context, opt Options, fopt Figure6Options) ([]Figure6Cell, error) {
	if fopt.Distance == 0 {
		fopt.Distance = 9
	}
	type cell struct {
		w apps.Workload
		p braid.Policy
	}
	var cells []cell
	for _, w := range apps.Fig6Suite() {
		if fopt.App != "" && !strings.EqualFold(fopt.App, w.Name) {
			continue
		}
		for _, p := range braid.AllPolicies {
			cells = append(cells, cell{w, p})
		}
	}
	return Map(ctx, opt, cells, func(_ int, c cell) (Figure6Cell, error) {
		r, err := braid.SimulateContext(ctx, c.w.Circuit, c.p, braid.Config{
			Distance:       fopt.Distance,
			Seed:           opt.Seed,
			LocalTOps:      fopt.LocalTOps,
			RecordSchedule: fopt.RecordSchedule,
		})
		if err != nil {
			return Figure6Cell{}, fmt.Errorf("sweep: %s under %v: %w", c.w.Name, c.p, err)
		}
		out := Figure6Cell{
			App:          c.w.Name,
			Policy:       int(c.p),
			Ratio:        r.Ratio,
			Util:         r.AvgUtilization,
			Cycles:       r.ScheduleCycles,
			Braids:       r.BraidsPlaced,
			Adaptive:     r.AdaptiveRoutes,
			Reinjections: r.Reinjections,
		}
		if fopt.RecordSchedule {
			out.Result = &r
		}
		return out, nil
	})
}
