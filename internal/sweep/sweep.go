// Package sweep is the parallel evaluation-grid runner behind the
// paper's design-space studies (Figures 7–9, §8.1). The evaluation is a
// wide grid — applications × braid policies × code distances × physical
// error rates — whose cells are independent simulations, so the package
// fans them across a bounded worker pool while keeping every result in
// submission order: a parallel run is bit-identical to a serial one.
//
// Determinism rules:
//
//   - Cell functions receive their index and must derive any randomness
//     from explicit seeds; the grids share Options.Seed (it is part of
//     the result's identity, matching the serial toolflow paths) and
//     every emitted cell records the seed it ran under.
//   - Results land in a slice slot owned by the cell, never appended
//     from racing goroutines.
//   - Errors are reported by the lowest-indexed failing cell, so the
//     error surface is deterministic too.
//
// Every grid takes a context: workers stop claiming cells once it is
// canceled (an abort surfaces as an error matching scerr.ErrCanceled
// and wastes at most one in-flight cell per worker), and Options can
// carry a progress callback so callers stream partial grid results.
//
// The domain grids in grid.go cover app-model characterization and the
// figure sweeps; record.go serializes per-cell results as stable JSON
// so benchmark trajectories (BENCH_*.json) can be tracked across
// revisions.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"surfcomm/internal/scerr"
)

// Options tunes a sweep run.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Seed is the base seed; cells derive theirs deterministically.
	Seed int64
	// Progress, when non-nil, is invoked once per completed cell with
	// the cell's index and the grid size. Calls are serialized (never
	// concurrent) but may arrive out of index order on a pooled run.
	Progress func(index, total int)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MapFill evaluates the infallible fn over every item on the pool,
// always returning one output per item: per-item failures are fn's
// business (encoded in O), and when the pool itself aborts — a
// canceled context stops workers from claiming cells — every slot no
// worker ran is filled with fill(abortErr) instead of a zero value.
// This is the batch-serving primitive: request order is preserved at
// any worker count and nothing short of cancellation is fatal.
func MapFill[I, O any](ctx context.Context, opt Options, items []I, fn func(i int, item I) O, fill func(err error) O) []O {
	// processed records which slots a worker actually ran; each worker
	// owns its index and Map drains the pool before returning, so the
	// flags are safely read afterwards.
	processed := make([]bool, len(items))
	out, err := Map(ctx, opt, items, func(i int, item I) (O, error) {
		processed[i] = true
		return fn(i, item), nil
	})
	if err != nil {
		for i := range out {
			if !processed[i] {
				out[i] = fill(err)
			}
		}
	}
	return out
}

// Map evaluates fn over every item on a pool of workers, returning the
// outputs in item order. It is the primitive under all grids: cell i's
// output lands in slot i, and on failure the error of the
// lowest-indexed failing cell is returned (alongside the partial
// results), so parallel and serial runs fail identically. Workers check
// the context before claiming each cell, so a cancellation aborts the
// grid within a bounded number of in-flight cells and the pool's
// goroutines always drain before Map returns.
func Map[I, O any](ctx context.Context, opt Options, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, nil
	}
	errs := make([]error, len(items))
	var progressMu sync.Mutex
	report := func(i int) {
		if opt.Progress == nil {
			return
		}
		progressMu.Lock()
		opt.Progress(i, len(items))
		progressMu.Unlock()
	}
	done := ctx.Done()
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	workers := opt.workers()
	if workers > len(items) {
		workers = len(items)
	}
	var aborted atomic.Bool
	if workers <= 1 {
		for i := range items {
			if canceled() {
				aborted.Store(true)
				break
			}
			out[i], errs[i] = fn(i, items[i])
			report(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					if canceled() {
						aborted.Store(true)
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(items) {
						return
					}
					out[i], errs[i] = fn(i, items[i])
					report(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := firstError(errs); err != nil {
		return out, err
	}
	if aborted.Load() {
		return out, scerr.Canceled(ctx)
	}
	return out, nil
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
