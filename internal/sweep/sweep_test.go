package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"surfcomm/internal/apps"
	"surfcomm/internal/scerr"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 16, 0} {
		out, err := Map(context.Background(), Options{Workers: workers}, items, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), Options{}, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

// The error surface must be deterministic: whatever the worker count,
// the reported error is the lowest-indexed failing cell's.
func TestMapFirstErrorDeterministic(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4, 8} {
		_, err := Map(context.Background(), Options{Workers: workers}, items, func(i, item int) (int, error) {
			if item%2 == 1 {
				return 0, fmt.Errorf("cell %d failed", item)
			}
			return item, nil
		})
		if err == nil || err.Error() != "cell 1 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 1 failed", workers, err)
		}
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), Options{Workers: 2}, []int{1, 2, 3}, func(i, item int) (int, error) {
		if item == 2 {
			return 0, errors.New("boom")
		}
		return item * 10, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out[0] != 10 || out[2] != 30 {
		t.Fatalf("partial results lost: %v", out)
	}
}

func syntheticModel(name string, congestion float64) toolflow.AppModel {
	return toolflow.AppModel{
		Name:             name,
		Parallelism:      2,
		SchedParallelism: 2,
		MoveFraction:     0.5,
		CongestionDD:     congestion,
		QubitsForOps:     func(k float64) float64 { return 8 * math.Cbrt(k) },
	}
}

// Grid cells are pure, so a pooled run must equal the serial one
// value-for-value — the property that makes the parallel runner safe to
// substitute anywhere.
func TestCurveParallelEqualsSerial(t *testing.T) {
	m := syntheticModel("synthetic", 1.8)
	serial, err := Curve(context.Background(), Options{Workers: 1}, m, 1e-6, 0, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Curve(context.Background(), Options{Workers: 8}, m, 1e-6, 0, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(wide) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, serial[i], wide[i])
		}
	}
	// And the parallel grid must agree with the serial toolflow sweep.
	ref, err := toolflow.Curve(m, 1e-6, 0, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != wide[i] {
			t.Fatalf("point %d differs from toolflow.Curve: %+v vs %+v", i, ref[i], wide[i])
		}
	}
}

func TestBoundaryParallelEqualsSerial(t *testing.T) {
	models := []toolflow.AppModel{
		syntheticModel("serial-app", 1.1),
		syntheticModel("parallel-app", 3.2),
	}
	rates := toolflow.Figure9ErrorRates()
	serial, err := Boundary(context.Background(), Options{Workers: 1}, models, rates)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Boundary(context.Background(), Options{Workers: 8}, models, rates)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range models {
		ref := toolflow.Boundary(models[mi], rates)
		for ri := range rates {
			if serial[mi][ri] != wide[mi][ri] {
				t.Fatalf("model %d rate %d: parallel differs from serial", mi, ri)
			}
			if ref[ri] != wide[mi][ri] {
				t.Fatalf("model %d rate %d: grid differs from toolflow.Boundary", mi, ri)
			}
		}
	}
}

// Characterization cells run full simulations; with small workloads the
// pooled run must still reproduce the serial toolflow result exactly.
func TestCharacterizeParallelEqualsSerial(t *testing.T) {
	workloads := []apps.Workload{
		{Name: "GSE", Circuit: apps.GSE(apps.GSEConfig{M: 4, Steps: 1})},
		{Name: "IM", Circuit: apps.Ising(apps.IsingConfig{N: 10, Steps: 1}, true)},
	}
	wide, err := Characterize(context.Background(), Options{Workers: 4, Seed: 3}, workloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range workloads {
		ref, err := toolflow.Characterize(w, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := wide[i]
		if got.Name != ref.Name || got.Parallelism != ref.Parallelism ||
			got.SchedParallelism != ref.SchedParallelism ||
			got.MoveFraction != ref.MoveFraction || got.CongestionDD != ref.CongestionDD {
			t.Fatalf("workload %s: parallel model %+v differs from serial %+v", w.Name, got, ref)
		}
	}
}

// The remaining two grids — the Figure 6 policy grid and the §8.1 EPR
// window study — must also be worker-count-invariant; each cell is a
// full simulation, so any shared mutable state across cells would show
// up here as serial/parallel divergence.
func TestFigure6ParallelEqualsSerial(t *testing.T) {
	serial, err := Figure6(context.Background(), Options{Workers: 1, Seed: 1}, Figure6Options{Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Figure6(context.Background(), Options{Workers: 8, Seed: 1}, Figure6Options{Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(wide) {
		t.Fatalf("grid sizes differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, serial[i], wide[i])
		}
	}
}

func TestEPRWindowsParallelEqualsSerial(t *testing.T) {
	cfg := teleport.Config{Distance: 9}
	serial, err := EPRWindows(context.Background(), Options{Workers: 1, Seed: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := EPRWindows(context.Background(), Options{Workers: 8, Seed: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(wide) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		s, w := serial[i], wide[i]
		if s.Name != w.Name || s.Moves != w.Moves || s.Timesteps != w.Timesteps ||
			s.JIT != w.JIT || s.JITIndex != w.JITIndex || len(s.Rows) != len(w.Rows) {
			t.Fatalf("cell %s differs: %+v vs %+v", s.Name, s, w)
		}
		for j := range s.Rows {
			if s.Rows[j] != w.Rows[j] {
				t.Fatalf("cell %s row %d differs: %+v vs %+v", s.Name, j, s.Rows[j], w.Rows[j])
			}
		}
	}
}

// JSON records must serialize identically across runs so BENCH_*.json
// diffs only move when the science moves.
func TestWriteRecordsStable(t *testing.T) {
	cells := []CellResult{
		{Study: "figure6", Cell: "IM/policy6", Seed: 1,
			Metrics: map[string]float64{"ratio": 2.41, "util": 0.27, "cycles": 9000}},
		{Study: "epr", Cell: "SQ/window=88", Seed: 1,
			Metrics: map[string]float64{"peak_live_epr": 12, "stall_cycles": 0}},
	}
	var a, b bytes.Buffer
	if err := WriteRecords(&a, cells); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecords(&b, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("record encoding is not stable")
	}
	if !bytes.Contains(a.Bytes(), []byte(`"cycles": 9000`)) {
		t.Errorf("unexpected encoding:\n%s", a.String())
	}
}

// A canceled context must stop the pool before uncomputed cells run,
// surface an error matching scerr.ErrCanceled, and still serialize any
// progress callbacks that did fire.
func TestMapCancellation(t *testing.T) {
	items := make([]int, 64)
	ctx, cancel := context.WithCancel(context.Background())
	completed := 0
	opt := Options{Workers: 2, Progress: func(i, total int) {
		completed++ // serialized by the runner
		if total != len(items) {
			t.Errorf("progress total = %d, want %d", total, len(items))
		}
		cancel()
	}}
	ran := atomic.Int64{}
	_, err := Map(ctx, opt, items, func(i, item int) (int, error) {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return item, nil
	})
	if !errors.Is(err, scerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := ran.Load(); n == 0 || n > 4 {
		t.Errorf("%d cells ran after cancellation, want 1..4", n)
	}
	if completed == 0 {
		t.Error("no progress events delivered")
	}
}

// A pre-canceled context runs nothing at all.
func TestMapPrecanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	_, err := Map(ctx, Options{Workers: 4}, make([]int, 16), func(i, item int) (int, error) {
		ran.Add(1)
		return item, nil
	})
	if !errors.Is(err, scerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d cells ran under a pre-canceled context", ran.Load())
	}
}
