package sweep

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestYieldGridWorkerParity asserts the yield grid — cells, derived
// device seeds, and serialized records — is bit-identical at any worker
// count.
func TestYieldGridWorkerParity(t *testing.T) {
	yopt := YieldOptions{Distance: 5, Fractions: []float64{0, 0.03}, Trials: 2}
	serial, err := YieldGrid(context.Background(), Options{Workers: 1, Seed: 1}, yopt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := YieldGrid(context.Background(), Options{Workers: 4, Seed: 1}, yopt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel yield grid differs from serial:\n%+v\nvs\n%+v", serial, parallel)
	}
	var a, b bytes.Buffer
	if err := WriteRecords(&a, YieldRecords(serial)); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecords(&b, YieldRecords(parallel)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialized yield records differ between worker counts")
	}
}

// TestYieldGridSeedsAndDevices pins the per-cell identity rules: seeds
// derive from base seed + index, device strings name the realization,
// and the zero-fraction cells match the perfect-device baseline.
func TestYieldGridSeedsAndDevices(t *testing.T) {
	cells, err := YieldGrid(context.Background(), Options{Workers: 2, Seed: 10},
		YieldOptions{Distance: 5, Fractions: []float64{0, 0.02}, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for i, c := range cells {
		if c.Seed != 10+int64(i) {
			t.Errorf("cell %d seed %d, want %d", i, c.Seed, 10+int64(i))
		}
		if c.Device == "" {
			t.Errorf("cell %d has empty device string", i)
		}
	}
	// Zero-defect realizations are the perfect grid: both trials agree.
	if cells[0].Cycles != cells[1].Cycles || cells[0].Ratio != cells[1].Ratio {
		t.Errorf("zero-fraction trials differ: %+v vs %+v", cells[0], cells[1])
	}
	// Records carry the device string through.
	recs := YieldRecords(cells)
	for i, r := range recs {
		if r.Device != cells[i].Device {
			t.Errorf("record %d device %q != cell %q", i, r.Device, cells[i].Device)
		}
		if r.Study != "yield" {
			t.Errorf("record %d study %q", i, r.Study)
		}
	}
}

// TestNonYieldRecordsPerfectDevice asserts every pre-device record
// constructor stamps the appended device field with "perfect".
func TestNonYieldRecordsPerfectDevice(t *testing.T) {
	recs := DecoderRecords([]DecoderCell{{Distance: 3, PhysicalRate: 0.05, Trials: 10, Seed: 4}})
	if len(recs) != 1 || recs[0].Device != "perfect" {
		t.Fatalf("decoder record device = %+v, want perfect", recs)
	}
}
