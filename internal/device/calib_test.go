package device

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"surfcomm/internal/scerr"
)

// TestCalibrationRoundTrip pins the snapshot round trip: encoding a
// snapshot and parsing it back preserves every entry and the content
// digest, and re-encoding with different whitespace parses to the same
// digest (the digest covers measurements, not formatting).
func TestCalibrationRoundTrip(t *testing.T) {
	cal := SyntheticCalibration(11, 5, 6)
	var buf bytes.Buffer
	if err := cal.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCalibration(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != cal.Digest() {
		t.Fatalf("round-trip digest %s != %s", back.Digest(), cal.Digest())
	}
	if len(back.Qubits) != len(cal.Qubits) || len(back.Couplers) != len(cal.Couplers) {
		t.Fatalf("round trip lost entries: %d/%d qubits, %d/%d couplers",
			len(back.Qubits), len(cal.Qubits), len(back.Couplers), len(cal.Couplers))
	}
	// Reformat: strip the indentation the encoder added.
	squashed := strings.ReplaceAll(strings.ReplaceAll(buf.String(), "\n", ""), "  ", "")
	again, err := ParseCalibration([]byte(squashed))
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest() != cal.Digest() {
		t.Fatal("whitespace changed the content digest")
	}
}

// TestSyntheticCalibrationDeterministic pins the generator: same
// (seed, dims) → identical digest, different seed → different digest.
func TestSyntheticCalibrationDeterministic(t *testing.T) {
	a := SyntheticCalibration(5, 4, 4)
	b := SyntheticCalibration(5, 4, 4)
	if a.Digest() != b.Digest() {
		t.Fatal("same seed/dims drew different snapshots")
	}
	if SyntheticCalibration(6, 4, 4).Digest() == a.Digest() {
		t.Fatal("different seeds drew identical snapshots")
	}
}

// TestParseCalibrationRejections walks the malformed-snapshot table:
// every violation must fail with an error matching scerr.ErrBadConfig.
func TestParseCalibrationRejections(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"wrong version":  `{"version":2,"name":"x","qubits":[],"couplers":[]}`,
		"missing name":   `{"version":1,"qubits":[],"couplers":[]}`,
		"negative coord": `{"version":1,"name":"x","qubits":[{"row":-1,"col":0,"t1_us":100,"t2_us":80,"readout_error":0.01}]}`,
		"zero T1":        `{"version":1,"name":"x","qubits":[{"row":0,"col":0,"t1_us":0,"t2_us":80,"readout_error":0.01}]}`,
		"readout >= 1":   `{"version":1,"name":"x","qubits":[{"row":0,"col":0,"t1_us":100,"t2_us":80,"readout_error":1.5}]}`,
		"duplicate qubit": `{"version":1,"name":"x","qubits":[
			{"row":0,"col":0,"t1_us":100,"t2_us":80,"readout_error":0.01},
			{"row":0,"col":0,"t1_us":90,"t2_us":70,"readout_error":0.02}]}`,
		"non-adjacent coupler": `{"version":1,"name":"x","couplers":[{"a":[0,0],"b":[2,0],"gate_error":0.005}]}`,
		"gate error >= 1":      `{"version":1,"name":"x","couplers":[{"a":[0,0],"b":[0,1],"gate_error":1}]}`,
		"latency below 1":      `{"version":1,"name":"x","couplers":[{"a":[0,0],"b":[0,1],"gate_error":0.005,"latency":0.5}]}`,
		"duplicate coupler": `{"version":1,"name":"x","couplers":[
			{"a":[0,0],"b":[0,1],"gate_error":0.005},
			{"a":[0,1],"b":[0,0],"gate_error":0.006}]}`,
	}
	for name, raw := range cases {
		if _, err := ParseCalibration([]byte(raw)); !errors.Is(err, scerr.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestCalibrationApply pins realization: couplers with latency set link
// weights and error rates, qubits set tile rates, out-of-grid entries
// are ignored, and any applied snapshot marks the topology calibrated.
func TestCalibrationApply(t *testing.T) {
	raw := `{"version":1,"name":"apply","qubits":[
		{"row":0,"col":0,"t1_us":100,"t2_us":100,"readout_error":0.01},
		{"row":99,"col":99,"t1_us":100,"t2_us":100,"readout_error":0.5}],
	"couplers":[
		{"a":[0,0],"b":[0,1],"gate_error":0.02,"latency":2},
		{"a":[98,99],"b":[99,99],"gate_error":0.9}]}`
	cal, err := ParseCalibration([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	topo := NewTopology(3, 3)
	cal.Apply(topo)
	if !topo.Calibrated() {
		t.Fatal("applied snapshot left topology uncalibrated")
	}
	at := Coord{Row: 0, Col: 0}
	want := QubitCal{T1Us: 100, T2Us: 100, ReadoutError: 0.01}.EffectiveErrorRate()
	if got := topo.TileErrorRate(at); got != want {
		t.Fatalf("tile rate %g, want %g", got, want)
	}
	right := Coord{Row: 0, Col: 1}
	if w := topo.LinkWeight(at, right); w != 2 {
		t.Fatalf("link weight %g, want 2", w)
	}
	if e := topo.LinkErrorRate(at, right); e != 0.02 {
		t.Fatalf("link error rate %g, want 0.02", e)
	}
	// Out-of-grid entries must not have leaked anywhere.
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if r == 0 && c == 0 {
				continue
			}
			if topo.TileErrorRate(Coord{Row: r, Col: c}) != 0 {
				t.Fatalf("unexpected rate at (%d,%d)", r, c)
			}
		}
	}
}

// TestDeviceWithCalibration pins the facade: attaching a snapshot
// changes the device's record string (the digest suffix that splits
// cache lines) and realizes calibrated instances, while the bare
// perfect device stays perfect.
func TestDeviceWithCalibration(t *testing.T) {
	cal := SyntheticCalibration(3, 4, 4)
	d := Perfect().WithCalibration(cal)
	if d.IsPerfect() {
		t.Fatal("calibrated device claims perfect")
	}
	if Perfect().String() == d.String() {
		t.Fatal("calibration did not change the device record string")
	}
	topo := d.Instance(4, 4)
	if topo == nil || !topo.Calibrated() {
		t.Fatal("calibrated device realized an uncalibrated instance")
	}
	if !Perfect().IsPerfect() {
		t.Fatal("WithCalibration mutated the perfect device")
	}
	if got := Perfect().WithCalibration(nil); !got.IsPerfect() {
		t.Fatal("nil calibration should leave the device perfect")
	}
}

// TestSeedDerivation pins the shared helpers: CellSeed must equal the
// historical inline base+index (committed BENCH artifacts encode it),
// and DeriveSeed must vary with every dimension.
func TestSeedDerivation(t *testing.T) {
	if CellSeed(42, 7) != 49 {
		t.Fatalf("CellSeed(42, 7) = %d, want 49", CellSeed(42, 7))
	}
	base := DeriveSeed(1, 8, 9)
	if DeriveSeed(1, 9, 8) == base || DeriveSeed(2, 8, 9) == base || DeriveSeed(1, 8, 10) == base {
		t.Fatal("DeriveSeed collision across distinct inputs")
	}
}

// TestDefectScheduleSorted pins ordering: Sorted is stable for
// same-cycle events and does not mutate the receiver.
func TestDefectScheduleSorted(t *testing.T) {
	s := &DefectSchedule{Events: []DefectEvent{
		{Cycle: 9, A: Coord{Row: 0, Col: 0}, B: Coord{Row: 0, Col: 1}},
		{Cycle: 2, A: Coord{Row: 1, Col: 0}, B: Coord{Row: 1, Col: 1}},
		{Cycle: 2, A: Coord{Row: 2, Col: 0}, B: Coord{Row: 2, Col: 1}},
	}}
	got := s.Sorted()
	if got[0].Cycle != 2 || got[1].Cycle != 2 || got[2].Cycle != 9 {
		t.Fatalf("sort order wrong: %+v", got)
	}
	if got[0].A.Row != 1 || got[1].A.Row != 2 {
		t.Fatal("same-cycle events reordered (sort not stable)")
	}
	if s.Events[0].Cycle != 9 {
		t.Fatal("Sorted mutated the receiver")
	}
	var nilSched *DefectSchedule
	if !nilSched.Empty() || nilSched.Sorted() != nil {
		t.Fatal("nil schedule should be empty")
	}
}

// TestRandomDefectScheduleDeterministic pins the draw and its bounds.
func TestRandomDefectScheduleDeterministic(t *testing.T) {
	a := RandomDefectSchedule(5, 6, 6, 4, 100)
	b := RandomDefectSchedule(5, 6, 6, 4, 100)
	if len(a.Events) != 4 || len(b.Events) != 4 {
		t.Fatalf("drew %d/%d events, want 4", len(a.Events), len(b.Events))
	}
	seen := map[[2]Coord]bool{}
	for i, ev := range a.Events {
		if ev != b.Events[i] {
			t.Fatal("same seed drew different schedules")
		}
		if ev.Cycle < 1 || ev.Cycle > 100 {
			t.Fatalf("cycle %d outside [1,100]", ev.Cycle)
		}
		if !Adjacent(ev.A, ev.B) {
			t.Fatalf("event %d kills non-adjacent pair %v-%v", i, ev.A, ev.B)
		}
		key := normalizePair(ev.A, ev.B)
		if seen[key] {
			t.Fatalf("duplicate coupler %v", key)
		}
		seen[key] = true
	}
}
