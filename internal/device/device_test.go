package device

import (
	"math/rand"
	"testing"
)

// TestPerfectRealization pins the perfect fast-path contract: nil and
// Perfect devices realize non-degraded topologies at any dims.
func TestPerfectRealization(t *testing.T) {
	for _, d := range []*Device{nil, Perfect()} {
		if !d.IsPerfect() {
			t.Fatalf("%v not perfect", d)
		}
		if d.String() != "perfect" {
			t.Fatalf("String() = %q", d.String())
		}
		topo := d.Instance(5, 7)
		if topo.Degraded() || topo.DeadTiles() != 0 || topo.DisabledLinks() != 0 {
			t.Fatalf("perfect instance degraded: %+v", topo)
		}
		if topo.MaxLinkWeight() != 1 {
			t.Fatalf("perfect max weight %v", topo.MaxLinkWeight())
		}
	}
}

// TestInstanceDeterministic asserts the device contract: the same
// (spec, dims) always realizes the same topology, independent of call
// order or prior instantiations at other dims.
func TestInstanceDeterministic(t *testing.T) {
	for _, dev := range []*Device{
		RandomYield(0.1, 42),
		ClusteredDefects(0.15, 7),
	} {
		a := dev.Instance(9, 11)
		_ = dev.Instance(4, 4) // interleaved other-dims realization
		b := dev.Instance(9, 11)
		if a.DeadTiles() != b.DeadTiles() || a.DisabledLinks() != b.DisabledLinks() {
			t.Fatalf("%v: realizations differ: %d/%d dead, %d/%d disabled",
				dev, a.DeadTiles(), b.DeadTiles(), a.DisabledLinks(), b.DisabledLinks())
		}
		for r := 0; r < 9; r++ {
			for c := 0; c < 11; c++ {
				cc := Coord{Row: r, Col: c}
				if a.TileDead(cc) != b.TileDead(cc) {
					t.Fatalf("%v: tile %v dead-ness differs", dev, cc)
				}
				for _, nb := range []Coord{{Row: r, Col: c + 1}, {Row: r + 1, Col: c}} {
					if !a.InBounds(nb) {
						continue
					}
					if a.LinkDisabled(cc, nb) != b.LinkDisabled(cc, nb) ||
						a.LinkWeight(cc, nb) != b.LinkWeight(cc, nb) {
						t.Fatalf("%v: link %v-%v differs", dev, cc, nb)
					}
				}
			}
		}
	}
}

// TestDeadTileDisablesLinks asserts a dead tile's incident links are
// unusable.
func TestDeadTileDisablesLinks(t *testing.T) {
	topo := NewTopology(3, 3)
	topo.DisableTile(Coord{Row: 1, Col: 1})
	for _, nb := range []Coord{{Row: 1, Col: 0}, {Row: 1, Col: 2}, {Row: 0, Col: 1}, {Row: 2, Col: 1}} {
		if !topo.LinkDisabled(Coord{Row: 1, Col: 1}, nb) {
			t.Fatalf("link to %v still enabled", nb)
		}
	}
	if topo.DeadTiles() != 1 || topo.DisabledLinks() != 4 {
		t.Fatalf("counts: %d dead, %d disabled", topo.DeadTiles(), topo.DisabledLinks())
	}
}

// TestComponents labels a split fabric correctly: a wall of disabled
// links separates the grid into two components.
func TestComponents(t *testing.T) {
	topo := NewTopology(3, 4)
	for r := 0; r < 3; r++ {
		topo.DisableLink(Coord{Row: r, Col: 1}, Coord{Row: r, Col: 2})
	}
	comps := topo.Components()
	left := comps[0]
	right := comps[2]
	if left == right {
		t.Fatalf("wall did not split the fabric: %v", comps)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			want := left
			if c >= 2 {
				want = right
			}
			if comps[r*4+c] != want {
				t.Fatalf("cell (%d,%d) labeled %d, want %d", r, c, comps[r*4+c], want)
			}
		}
	}
}

// TestViewDistances checks device-aware distances: Manhattan on a full
// grid, detours around dead tiles, Unreachable across cuts.
func TestViewDistances(t *testing.T) {
	full := NewView(4, 4, func(Coord) bool { return true })
	if d := full.Distance(Coord{Row: 0, Col: 0}, Coord{Row: 3, Col: 3}); d != 6 {
		t.Fatalf("full-grid distance %d, want Manhattan 6", d)
	}
	// Kill the middle of row 1: paths from (0,1) to (2,1) must detour.
	wall := NewView(3, 3, func(c Coord) bool { return c != Coord{Row: 1, Col: 1} })
	if d := wall.Distance(Coord{Row: 0, Col: 1}, Coord{Row: 2, Col: 1}); d != 4 {
		t.Fatalf("detour distance %d, want 4", d)
	}
	// An isolated cell is unreachable.
	island := NewView(1, 3, func(c Coord) bool { return c.Col != 1 })
	if d := island.Distance(Coord{Row: 0, Col: 0}, Coord{Row: 0, Col: 2}); d != Unreachable {
		t.Fatalf("cut distance %d, want Unreachable", d)
	}
}

// TestCustomDevice checks the builder hook runs at instance dims with
// the seeded RNG.
func TestCustomDevice(t *testing.T) {
	dev := Custom("test-map", 3, func(topo *Topology, rng *rand.Rand) {
		topo.DisableTile(Coord{Row: 0, Col: rng.Intn(topo.Cols())})
	})
	if dev.IsPerfect() {
		t.Fatal("custom device reported perfect")
	}
	a, b := dev.Instance(2, 5), dev.Instance(2, 5)
	if a.DeadTiles() != 1 || b.DeadTiles() != 1 {
		t.Fatalf("dead tiles %d/%d, want 1", a.DeadTiles(), b.DeadTiles())
	}
	for c := 0; c < 5; c++ {
		cc := Coord{Row: 0, Col: c}
		if a.TileDead(cc) != b.TileDead(cc) {
			t.Fatal("custom realization not deterministic")
		}
	}
}
