package device

// Seed derivation shared by every consumer that expands one base seed
// into a family of deterministic sub-seeds. Realization (a spec
// instantiated at several grid dims) and sweep grids (one cell per
// index) used to each carry their own copy of these expressions; any
// drift between the copies would silently re-realize devices and break
// the committed BENCH artifacts, so they live here once.

// DeriveSeed mixes a base seed with grid dims: the realization seed of
// a device spec instantiated at rows×cols. The same (base, dims) always
// derives the same seed, and the two odd multipliers decorrelate the
// row and column contributions, so one spec instantiated at several
// grids (a tile grid for placement, a junction grid for routing) stays
// deterministic per grid.
func DeriveSeed(base int64, rows, cols int) int64 {
	return base ^ int64(rows)*0x9e3779b9 ^ int64(cols)*0x85ebca6b
}

// CellSeed derives the per-cell seed of a sweep grid from the base seed
// and the cell index — the convention every BENCH grid records, so a
// cell can be reproduced in isolation from its record alone.
func CellSeed(base int64, cell int) int64 {
	return base + int64(cell)
}
