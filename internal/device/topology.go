package device

import "fmt"

// Topology is one realized defect map over a rows×cols cell grid: dead
// cells, disabled links between adjacent cells, and per-link latency
// multipliers on the surviving links. Cells are tiles, junctions, or
// regions depending on the consumer; the link layout matches the mesh
// convention (horizontal link (r,c)–(r,c+1), vertical (r,c)–(r+1,c)).
//
// A freshly built Topology is perfect; defects are applied through
// DisableTile/DisableLink/SetLinkWeight. Once any defect or non-unit
// weight exists the topology reports Degraded, which is the flag
// consumers use to leave their ideal-grid fast paths.
type Topology struct {
	rows, cols int
	dead       []bool
	disH, disV []bool    // disabled links, mesh layout
	wH, wV     []float64 // latency multipliers; nil until first SetLinkWeight
	deadTiles  int
	disabled   int
	maxWeight  float64
	degraded   bool

	// Calibration overlay (nil/false until a snapshot is applied):
	// per-cell effective physical error rates and per-link gate error
	// rates. A calibrated topology reports Degraded even with no dead
	// cells, so consumers leave their uniform fast paths and price the
	// heterogeneity.
	tileErr    []float64
	eH, eV     []float64
	calibrated bool
}

// NewTopology returns a perfect rows×cols topology.
func NewTopology(rows, cols int) *Topology {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("device: invalid topology dims %dx%d", rows, cols))
	}
	return &Topology{
		rows:      rows,
		cols:      cols,
		dead:      make([]bool, rows*cols),
		disH:      make([]bool, rows*(cols-1)),
		disV:      make([]bool, (rows-1)*cols),
		maxWeight: 1,
	}
}

// Rows returns the cell-grid row count.
func (t *Topology) Rows() int { return t.rows }

// Cols returns the cell-grid column count.
func (t *Topology) Cols() int { return t.cols }

// InBounds reports whether the cell exists.
func (t *Topology) InBounds(c Coord) bool {
	return c.Row >= 0 && c.Row < t.rows && c.Col >= 0 && c.Col < t.cols
}

func (t *Topology) index(c Coord) int { return c.Row*t.cols + c.Col }

// linkSlot resolves an adjacent cell pair to its slice and index;
// ok=false for non-adjacent or out-of-bounds pairs.
func (t *Topology) linkSlot(a, b Coord) (horizontal bool, idx int, ok bool) {
	if !t.InBounds(a) || !t.InBounds(b) || !Adjacent(a, b) {
		return false, 0, false
	}
	if a.Row == b.Row {
		return true, a.Row*(t.cols-1) + min(a.Col, b.Col), true
	}
	return false, min(a.Row, b.Row)*t.cols + a.Col, true
}

// TileDead reports whether the cell is defective (out-of-bounds cells
// count as dead).
func (t *Topology) TileDead(c Coord) bool {
	if !t.InBounds(c) {
		return true
	}
	return t.dead[t.index(c)]
}

// DisableTile marks a cell defective and disables its incident links (a
// dead tile's channels are unusable).
func (t *Topology) DisableTile(c Coord) {
	if !t.InBounds(c) || t.dead[t.index(c)] {
		return
	}
	t.dead[t.index(c)] = true
	t.deadTiles++
	t.degraded = true
	for _, n := range [4]Coord{
		{Row: c.Row, Col: c.Col + 1}, {Row: c.Row, Col: c.Col - 1},
		{Row: c.Row + 1, Col: c.Col}, {Row: c.Row - 1, Col: c.Col},
	} {
		t.DisableLink(c, n)
	}
}

// LinkDisabled reports whether the link between two adjacent cells is
// unusable (non-adjacent and out-of-bounds pairs count as disabled).
func (t *Topology) LinkDisabled(a, b Coord) bool {
	h, i, ok := t.linkSlot(a, b)
	if !ok {
		return true
	}
	if h {
		return t.disH[i]
	}
	return t.disV[i]
}

// DisableLink marks the link between two adjacent cells unusable.
func (t *Topology) DisableLink(a, b Coord) {
	h, i, ok := t.linkSlot(a, b)
	if !ok {
		return
	}
	s := t.disV
	if h {
		s = t.disH
	}
	if !s[i] {
		s[i] = true
		t.disabled++
		t.degraded = true
	}
}

// LinkWeight returns the latency multiplier of the link between two
// adjacent cells (1 is ideal; disabled or invalid links report 1 — they
// are excluded by LinkDisabled, not priced).
func (t *Topology) LinkWeight(a, b Coord) float64 {
	if t.wH == nil {
		return 1
	}
	h, i, ok := t.linkSlot(a, b)
	if !ok {
		return 1
	}
	if h {
		if w := t.wH[i]; w > 0 && !t.disH[i] {
			return w
		}
		return 1
	}
	if w := t.wV[i]; w > 0 && !t.disV[i] {
		return w
	}
	return 1
}

// SetLinkWeight sets the latency multiplier of an adjacent-cell link
// (values below 1 are clamped to 1: links cannot beat the ideal).
func (t *Topology) SetLinkWeight(a, b Coord, w float64) {
	h, i, ok := t.linkSlot(a, b)
	if !ok {
		return
	}
	if w < 1 {
		w = 1
	}
	if t.wH == nil {
		t.wH = make([]float64, len(t.disH))
		t.wV = make([]float64, len(t.disV))
	}
	if h {
		t.wH[i] = w
	} else {
		t.wV[i] = w
	}
	if w > t.maxWeight {
		t.maxWeight = w
	}
	if w > 1 {
		t.degraded = true
	}
}

// Degraded reports whether the topology differs from the perfect grid
// in any way — dead cells, disabled links, non-unit weights, or a
// calibration overlay — the flag consumers use to stay on (or leave)
// their ideal-grid fast paths.
func (t *Topology) Degraded() bool { return t.degraded || t.calibrated }

// Calibrated reports whether a calibration snapshot has been applied:
// per-cell and per-link error rates are meaningful and consumers should
// price heterogeneity per traversed link instead of by the worst link.
func (t *Topology) Calibrated() bool { return t.calibrated }

// markCalibrated switches the topology to calibrated semantics,
// allocating the overlay storage on first use.
func (t *Topology) markCalibrated() {
	if t.calibrated {
		return
	}
	t.calibrated = true
	t.tileErr = make([]float64, t.rows*t.cols)
	t.eH = make([]float64, len(t.disH))
	t.eV = make([]float64, len(t.disV))
}

// SetTileErrorRate records the effective physical error rate of one
// cell from its calibration (clamped to [0,1)) and marks the topology
// calibrated.
func (t *Topology) SetTileErrorRate(c Coord, p float64) {
	if !t.InBounds(c) {
		return
	}
	t.markCalibrated()
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	t.tileErr[t.index(c)] = p
}

// TileErrorRate returns the calibrated effective physical error rate of
// a cell; 0 means uncalibrated (callers substitute the uniform rate).
func (t *Topology) TileErrorRate(c Coord) float64 {
	if !t.calibrated || !t.InBounds(c) {
		return 0
	}
	return t.tileErr[t.index(c)]
}

// SetLinkErrorRate records the two-qubit gate error rate of an
// adjacent-cell link (clamped to [0,1)) and marks the topology
// calibrated.
func (t *Topology) SetLinkErrorRate(a, b Coord, p float64) {
	h, i, ok := t.linkSlot(a, b)
	if !ok {
		return
	}
	t.markCalibrated()
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	if h {
		t.eH[i] = p
	} else {
		t.eV[i] = p
	}
}

// LinkErrorRate returns the calibrated gate error rate of an
// adjacent-cell link; 0 means uncalibrated or invalid.
func (t *Topology) LinkErrorRate(a, b Coord) float64 {
	if !t.calibrated {
		return 0
	}
	h, i, ok := t.linkSlot(a, b)
	if !ok {
		return 0
	}
	if h {
		return t.eH[i]
	}
	return t.eV[i]
}

// DeadTiles returns the defective cell count.
func (t *Topology) DeadTiles() int { return t.deadTiles }

// DisabledLinks returns the unusable link count.
func (t *Topology) DisabledLinks() int { return t.disabled }

// MaxLinkWeight returns the largest latency multiplier on the grid.
func (t *Topology) MaxLinkWeight() float64 { return t.maxWeight }

// eachLink visits every potential link of the grid in a fixed order
// (horizontal row-major, then vertical row-major) — the order defect
// realization draws its randomness in.
func (t *Topology) eachLink(fn func(a, b Coord)) {
	for r := 0; r < t.rows; r++ {
		for c := 0; c+1 < t.cols; c++ {
			fn(Coord{Row: r, Col: c}, Coord{Row: r, Col: c + 1})
		}
	}
	for r := 0; r+1 < t.rows; r++ {
		for c := 0; c < t.cols; c++ {
			fn(Coord{Row: r, Col: c}, Coord{Row: r + 1, Col: c})
		}
	}
}

// Components labels every cell with its connected-component id over
// alive cells and enabled links; dead cells get -1. Two cells can
// communicate iff their labels are equal and non-negative — the
// routability precheck behind ErrUnroutable.
func (t *Topology) Components() []int32 {
	label := make([]int32, t.rows*t.cols)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	next := int32(0)
	for start := range label {
		if label[start] >= 0 || t.dead[start] {
			continue
		}
		label[start] = next
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			ci := int(queue[len(queue)-1])
			queue = queue[:len(queue)-1]
			cur := Coord{Row: ci / t.cols, Col: ci % t.cols}
			for _, n := range [4]Coord{
				{Row: cur.Row, Col: cur.Col + 1}, {Row: cur.Row, Col: cur.Col - 1},
				{Row: cur.Row + 1, Col: cur.Col}, {Row: cur.Row - 1, Col: cur.Col},
			} {
				if !t.InBounds(n) || t.TileDead(n) || t.LinkDisabled(cur, n) {
					continue
				}
				ni := t.index(n)
				if label[ni] < 0 {
					label[ni] = next
					queue = append(queue, int32(ni))
				}
			}
		}
		next++
	}
	return label
}
