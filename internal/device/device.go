// Package device models the physical topology of a superconducting
// surface-code machine: which tiles of the 2-D fabric are usable, which
// channel links between adjacent cells are disabled, and how much
// slower each surviving link is than the ideal. Real devices have
// fabrication defects, dead couplers, and non-uniform link quality (Wu
// et al. 2021 on surface-code mapping; Fowler et al. 2009 on per-link
// communication cost), so every geometry consumer of the toolchain —
// mesh routing, qubit placement, EPR distribution, braid timing — takes
// its view of the machine from this package instead of assuming an
// ideal uniform grid.
//
// A Device is a named, seeded topology *spec*; instantiating it at a
// concrete grid size yields a Topology, the realized defect map. The
// same (device, dims) pair always realizes the same Topology, so
// defective-device sweeps are deterministic and their records
// reproducible. The Perfect device realizes a defect-free grid and is
// guaranteed to leave every consumer on its original, bit-identical
// fast path.
package device

import (
	"fmt"
	"math/rand"
)

// Coord is a position on a 2-D grid (row-major) — the coordinate type
// shared by layout tiles, mesh junctions, and teleport regions.
type Coord struct {
	Row, Col int
}

// Manhattan returns the L1 distance between coordinates.
func Manhattan(a, b Coord) int {
	dr := a.Row - b.Row
	if dr < 0 {
		dr = -dr
	}
	dc := a.Col - b.Col
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Adjacent reports whether two cells are one grid step apart.
func Adjacent(a, b Coord) bool {
	return Manhattan(a, b) == 1
}

// Preset names of the built-in device families.
const (
	PresetPerfect   = "perfect"
	PresetRandom    = "random-yield"
	PresetClustered = "clustered"
	PresetHeavyHex  = "heavy-hex"
)

// Device is a topology spec: a named defect model plus the seed and
// defect fraction that parameterize it. A nil *Device means Perfect.
type Device struct {
	preset string
	frac   float64
	seed   int64
	build  func(*Topology, *rand.Rand) // custom realization hook
	graph  *CouplingGraph              // coupling pattern; nil means square
	cal    *Calibration                // calibration overlay; nil means uniform
}

// Perfect returns the ideal uniform device: no dead tiles, no disabled
// links, all link weights 1. Consumers treat it (and a nil Device) as
// the original hardcoded grid and stay on their allocation-free,
// bit-identical fast paths.
func Perfect() *Device { return &Device{preset: PresetPerfect} }

// RandomYield returns a device where each tile and each link is
// independently defective with probability frac, and a same-sized
// fraction of the surviving links is degraded to twice the ideal
// latency — the uncorrelated fabrication-yield model.
func RandomYield(frac float64, seed int64) *Device {
	return &Device{preset: PresetRandom, frac: clampFrac(frac), seed: seed}
}

// ClusteredDefects returns a device whose dead tiles clump into
// contiguous patches (fabrication defects are spatially correlated):
// cluster centers are drawn until the dead-tile budget frac·tiles is
// met, each killing a small disk of tiles, and every link touching a
// dead tile is disabled.
func ClusteredDefects(frac float64, seed int64) *Device {
	return &Device{preset: PresetClustered, frac: clampFrac(frac), seed: seed}
}

// Custom returns a device realized by an arbitrary builder, called on a
// fresh perfect Topology at the requested dims with a seeded RNG.
// Intended for tests and hand-measured device maps.
func Custom(name string, seed int64, build func(*Topology, *rand.Rand)) *Device {
	return &Device{preset: name, seed: seed, build: build}
}

// HeavyHex returns a device with the heavy-hexagon coupling pattern:
// the square fabric minus the vertical couplers the heavy-hex lattice
// does not ship (see HeavyHexGraph). No randomness — the seed only
// participates in realization-seed derivation for consistency with the
// other presets.
func HeavyHex(seed int64) *Device {
	return &Device{preset: PresetHeavyHex, seed: seed, graph: HeavyHexGraph()}
}

// OnGraph returns a device realized on an arbitrary coupling pattern.
// The complete square graph realizes non-degraded topologies and keeps
// every consumer on its perfect fast path.
func OnGraph(g *CouplingGraph, seed int64) *Device {
	if g == nil || g.Name() == GraphSquare {
		return Perfect()
	}
	return &Device{preset: g.Name(), seed: seed, graph: g}
}

// WithCalibration returns a copy of the device carrying a calibration
// snapshot: every realized topology gains the snapshot's heterogeneous
// link weights and per-cell error rates (and reports Calibrated). A nil
// snapshot returns the device unchanged. The receiver may be nil (the
// perfect device).
func (d *Device) WithCalibration(cal *Calibration) *Device {
	if cal == nil {
		return d
	}
	var out Device
	if d != nil {
		out = *d
	} else {
		out.preset = PresetPerfect
	}
	out.cal = cal
	return &out
}

// Calibration returns the device's calibration snapshot (nil when
// uniform).
func (d *Device) Calibration() *Calibration {
	if d == nil {
		return nil
	}
	return d.cal
}

// Graph returns the device's coupling pattern (nil means the complete
// square mesh).
func (d *Device) Graph() *CouplingGraph {
	if d == nil {
		return nil
	}
	return d.graph
}

func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// IsPerfect reports whether the device realizes defect-free topologies.
// A nil Device is perfect; a coupling-graph or calibrated device never
// is.
func (d *Device) IsPerfect() bool {
	return d == nil || (d.preset == PresetPerfect && d.build == nil && d.graph == nil && d.cal == nil)
}

// Preset returns the device's preset (or custom) name.
func (d *Device) Preset() string {
	if d == nil {
		return PresetPerfect
	}
	return d.preset
}

// DefectFraction returns the device's defect fraction parameter.
func (d *Device) DefectFraction() float64 {
	if d == nil {
		return 0
	}
	return d.frac
}

// Seed returns the device's realization seed.
func (d *Device) Seed() int64 {
	if d == nil {
		return 0
	}
	return d.seed
}

// String names the device the way sweep records serialize it:
// "perfect", or "preset(p=…,seed=…)", with a "+cal:…" suffix naming
// the calibration snapshot's digest prefix when one is attached (the
// snapshot changes realized topologies, so it is part of the device
// identity — and of every compile digest built from it).
func (d *Device) String() string {
	if d.IsPerfect() {
		return PresetPerfect
	}
	s := fmt.Sprintf("%s(p=%g,seed=%d)", d.preset, d.frac, d.seed)
	if d.cal != nil {
		s += "+cal:" + shortDigest(d.cal.Digest())
	}
	return s
}

// shortDigest abbreviates a content digest for record strings and logs.
func shortDigest(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}

// Instance realizes the device at a rows×cols cell grid. Realization is
// deterministic: the same device and dims always produce the same
// Topology, regardless of call order or prior instantiations.
func (d *Device) Instance(rows, cols int) *Topology {
	t := NewTopology(rows, cols)
	if d.IsPerfect() {
		return t
	}
	// The realization RNG is derived from the seed and the dims so that
	// one spec instantiated at several grids (a tile grid for placement,
	// a junction grid for routing) stays deterministic per grid.
	rng := rand.New(rand.NewSource(DeriveSeed(d.seed, rows, cols)))
	switch {
	case d.build != nil:
		d.build(t, rng)
	case d.preset == PresetRandom:
		d.realizeRandom(t, rng)
	case d.preset == PresetClustered:
		d.realizeClustered(t, rng)
	}
	if d.graph != nil {
		d.graph.Apply(t)
	}
	if d.cal != nil {
		d.cal.Apply(t)
	}
	return t
}

// realizeRandom draws independent per-tile and per-link defects in a
// fixed order (tiles row-major, then horizontal links, then vertical
// links, then weight degradation) so the realization is reproducible.
func (d *Device) realizeRandom(t *Topology, rng *rand.Rand) {
	for r := 0; r < t.rows; r++ {
		for c := 0; c < t.cols; c++ {
			if rng.Float64() < d.frac {
				t.DisableTile(Coord{Row: r, Col: c})
			}
		}
	}
	t.eachLink(func(a, b Coord) {
		if rng.Float64() < d.frac {
			t.DisableLink(a, b)
		}
	})
	t.eachLink(func(a, b Coord) {
		if !t.LinkDisabled(a, b) && rng.Float64() < d.frac {
			t.SetLinkWeight(a, b, 2)
		}
	})
}

// realizeClustered kills disks of tiles around random centers until the
// dead-tile budget is met; links touching dead tiles are disabled by
// DisableTile itself.
func (d *Device) realizeClustered(t *Topology, rng *rand.Rand) {
	budget := int(d.frac * float64(t.rows*t.cols))
	const radius = 1
	for guard := 0; t.DeadTiles() < budget && guard < 4*t.rows*t.cols; guard++ {
		center := Coord{Row: rng.Intn(t.rows), Col: rng.Intn(t.cols)}
		for dr := -radius; dr <= radius; dr++ {
			for dc := -radius; dc <= radius; dc++ {
				c := Coord{Row: center.Row + dr, Col: center.Col + dc}
				if t.InBounds(c) && Manhattan(center, c) <= radius && t.DeadTiles() < budget {
					t.DisableTile(c)
				}
			}
		}
	}
}
