// Coupling graphs: which junctions and couplers of the fabric exist.
//
// The square mesh every simulator in this repo was built on is one
// member of a family — real superconducting chips ship restricted
// coupling maps, most prominently the heavy-hexagon lattice (Wu et al.,
// "Mapping Surface Code to Superconducting Quantum Processors", arXiv
// 2111.13729). A CouplingGraph is a *pattern* over the grid embedding:
// a presence predicate for nodes and edges, evaluable at any realized
// dims (the braid, teleport, and layout layers each instantiate the
// device at dims of their own choosing). Realization subtracts the
// absent resources from a Topology, so every downstream consumer — mesh
// masking, the BFS route fallback, connected-component prechecks,
// placement views — works unchanged, and the complete square graph
// realizes a non-degraded topology that keeps the perfect-device fast
// paths bit-identical.
package device

import (
	"encoding/json"
	"fmt"
	"io"

	"surfcomm/internal/scerr"
)

// Graph preset names.
const (
	GraphSquare   = "square"
	GraphHeavyHex = "heavy-hex"
)

// CouplingGraph is a coupling-map pattern: presence predicates for the
// junctions (nodes) and couplers (edges) of a rows×cols grid, evaluable
// at arbitrary realized dims.
type CouplingGraph struct {
	name string
	// node/edge report presence at the realized dims. nil means "all
	// present".
	node func(rows, cols int, c Coord) bool
	edge func(rows, cols int, a, b Coord) bool
}

// Name returns the graph's preset (or loaded) name.
func (g *CouplingGraph) Name() string { return g.name }

// HasNode reports whether the junction exists at the realized dims.
func (g *CouplingGraph) HasNode(rows, cols int, c Coord) bool {
	if g.node == nil {
		return true
	}
	return g.node(rows, cols, c)
}

// HasEdge reports whether the coupler between two adjacent junctions
// exists at the realized dims. Edges incident to absent nodes never
// exist.
func (g *CouplingGraph) HasEdge(rows, cols int, a, b Coord) bool {
	if !g.HasNode(rows, cols, a) || !g.HasNode(rows, cols, b) {
		return false
	}
	if g.edge == nil {
		return true
	}
	return g.edge(rows, cols, a, b)
}

// Apply subtracts the pattern's absent resources from a realized
// topology: absent nodes become dead cells, absent edges disabled
// links. The complete square graph applies nothing, leaving the
// topology non-degraded.
func (g *CouplingGraph) Apply(t *Topology) {
	rows, cols := t.Rows(), t.Cols()
	if g.node != nil {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if p := (Coord{Row: r, Col: c}); !g.node(rows, cols, p) {
					t.DisableTile(p)
				}
			}
		}
	}
	if g.edge != nil {
		t.eachLink(func(a, b Coord) {
			if !g.HasEdge(rows, cols, a, b) {
				t.DisableLink(a, b)
			}
		})
	}
}

// SquareGraph returns the complete square mesh — the pattern the rest
// of the toolchain was built on. Realizing it is a no-op: perfect
// devices stay on their bit-identical fast paths.
func SquareGraph() *CouplingGraph {
	return &CouplingGraph{name: GraphSquare}
}

// heavyHexRungPitch spaces the vertical "rung" couplers of the
// heavy-hex pattern along each row pair.
const heavyHexRungPitch = 4

// HeavyHexGraph returns the heavy-hexagon coupling pattern: every
// junction and every horizontal coupler exists, but vertical couplers
// survive only at rung columns — column ≡ 0 (mod 4) below even rows,
// column ≡ 2 (mod 4) below odd rows — giving the degree-≤3 brick
// lattice of IBM's heavy-hex chips. Each row stays connected
// horizontally and every adjacent row pair keeps at least one rung, so
// the pattern is connected at any dims; grids narrower than 3 columns
// keep all vertical couplers (too narrow to thin without disconnecting).
func HeavyHexGraph() *CouplingGraph {
	return &CouplingGraph{
		name: GraphHeavyHex,
		edge: func(rows, cols int, a, b Coord) bool {
			if a.Row == b.Row || cols < 3 {
				return true
			}
			top := min(a.Row, b.Row)
			offset := 0
			if top%2 == 1 {
				offset = 2
			}
			return a.Col%heavyHexRungPitch == offset
		},
	}
}

// graphSpec is the on-disk custom coupling-graph format: an explicit
// unit cell of couplers, tiled across whatever grid the toolchain
// realizes. Couplers interior to a cell copy follow the spec; the
// boundary couplers stitching adjacent copies together are always
// present (the cells tile a larger chip).
type graphSpec struct {
	Version  int           `json:"version"`
	Name     string        `json:"name"`
	Rows     int           `json:"rows"`
	Cols     int           `json:"cols"`
	Couplers []couplerSpec `json:"couplers"`
}

type couplerSpec struct {
	A [2]int `json:"a"` // [row, col]
	B [2]int `json:"b"`
}

// GraphVersion is the supported custom coupling-graph format version.
const GraphVersion = 1

// ParseCouplingGraph loads a custom coupling graph from its versioned
// JSON spec. Malformed specs — wrong version, out-of-bounds or
// non-adjacent couplers, empty cells — fail with an error matching
// scerr.ErrBadConfig.
func ParseCouplingGraph(data []byte) (*CouplingGraph, error) {
	var spec graphSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, scerr.BadConfig("device: coupling graph: %v", err)
	}
	if spec.Version != GraphVersion {
		return nil, scerr.BadConfig("device: coupling graph: unsupported version %d (want %d)", spec.Version, GraphVersion)
	}
	if spec.Name == "" {
		return nil, scerr.BadConfig("device: coupling graph: missing name")
	}
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, scerr.BadConfig("device: coupling graph: invalid cell dims %dx%d", spec.Rows, spec.Cols)
	}
	if len(spec.Couplers) == 0 {
		return nil, scerr.BadConfig("device: coupling graph: no couplers")
	}
	edges := make(map[[2]Coord]bool, len(spec.Couplers))
	for i, cp := range spec.Couplers {
		a := Coord{Row: cp.A[0], Col: cp.A[1]}
		b := Coord{Row: cp.B[0], Col: cp.B[1]}
		if a.Row < 0 || a.Row >= spec.Rows || a.Col < 0 || a.Col >= spec.Cols ||
			b.Row < 0 || b.Row >= spec.Rows || b.Col < 0 || b.Col >= spec.Cols {
			return nil, scerr.BadConfig("device: coupling graph: coupler %d endpoints %v-%v outside %dx%d cell",
				i, a, b, spec.Rows, spec.Cols)
		}
		if !Adjacent(a, b) {
			return nil, scerr.BadConfig("device: coupling graph: coupler %d endpoints %v-%v not adjacent", i, a, b)
		}
		if b.Row < a.Row || (b.Row == a.Row && b.Col < a.Col) {
			a, b = b, a
		}
		edges[[2]Coord{a, b}] = true
	}
	cellRows, cellCols := spec.Rows, spec.Cols
	return &CouplingGraph{
		name: spec.Name,
		edge: func(rows, cols int, a, b Coord) bool {
			// Couplers stitching adjacent cell copies are always present.
			if a.Row/cellRows != b.Row/cellRows || a.Col/cellCols != b.Col/cellCols {
				return true
			}
			am := Coord{Row: a.Row % cellRows, Col: a.Col % cellCols}
			bm := Coord{Row: b.Row % cellRows, Col: b.Col % cellCols}
			if bm.Row < am.Row || (bm.Row == am.Row && bm.Col < am.Col) {
				am, bm = bm, am
			}
			return edges[[2]Coord{am, bm}]
		},
	}, nil
}

// LoadCouplingGraph reads a custom coupling-graph spec from r.
func LoadCouplingGraph(r io.Reader) (*CouplingGraph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("device: coupling graph: %w", err)
	}
	return ParseCouplingGraph(data)
}
