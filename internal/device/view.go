package device

// View is the placement-facing projection of a device: which cells of a
// placement grid are usable and the device-aware distance between them.
// Placement grids (logical data tiles) are coarser than the topology
// grids routing sees (mesh junctions with factory columns inserted), so
// a View is built from an alive predicate supplied by the consumer that
// owns the mapping. Distances are BFS hop counts over alive cells —
// dead tiles force detours, so strongly interacting qubits are steered
// away from defect clusters; link-level defects stay the router's
// concern. On a fully alive grid the distance equals Manhattan.
type View struct {
	rows, cols int
	alive      []bool
	aliveCount int
	dist       []int32 // all-pairs hop distance, Unreachable across components

	// errRate is the optional per-cell calibrated error rate (nil when
	// the device is uncalibrated — every cell then reports 0 and the
	// placement objective reduces to pure distance).
	errRate func(Coord) float64
}

// Unreachable is the View distance between cells with no alive path.
// It is large enough to dominate any real placement objective while
// leaving Σ weight·distance far from integer overflow.
const Unreachable = 1 << 20

// NewView builds a rows×cols placement view from an alive predicate.
// The all-pairs distance table (one BFS per alive cell — placement
// grids are at most a few hundred cells) is computed lazily on the
// first Distance call, so aliveness-only consumers (row-major
// placement, dead-tile validation) never pay for it.
func NewView(rows, cols int, alive func(Coord) bool) *View {
	v := &View{rows: rows, cols: cols, alive: make([]bool, rows*cols)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if alive(Coord{Row: r, Col: c}) {
				v.alive[r*cols+c] = true
				v.aliveCount++
			}
		}
	}
	return v
}

// computeDistances fills the all-pairs table.
func (v *View) computeDistances() {
	rows, cols := v.rows, v.cols
	n := rows * cols
	v.dist = make([]int32, n*n)
	for i := range v.dist {
		v.dist[i] = Unreachable
	}
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		if !v.alive[src] {
			continue
		}
		row := v.dist[src*n : (src+1)*n]
		row[src] = 0
		queue = append(queue[:0], int32(src))
		for head := 0; head < len(queue); head++ {
			ci := int(queue[head])
			cur := Coord{Row: ci / cols, Col: ci % cols}
			for _, nb := range [4]Coord{
				{Row: cur.Row, Col: cur.Col + 1}, {Row: cur.Row, Col: cur.Col - 1},
				{Row: cur.Row + 1, Col: cur.Col}, {Row: cur.Row - 1, Col: cur.Col},
			} {
				if nb.Row < 0 || nb.Row >= rows || nb.Col < 0 || nb.Col >= cols {
					continue
				}
				ni := nb.Row*cols + nb.Col
				if !v.alive[ni] || row[ni] != Unreachable {
					continue
				}
				row[ni] = row[ci] + 1
				queue = append(queue, int32(ni))
			}
		}
	}
}

// Rows returns the view's grid row count.
func (v *View) Rows() int { return v.rows }

// Cols returns the view's grid column count.
func (v *View) Cols() int { return v.cols }

// Alive reports whether the cell is usable for placement.
func (v *View) Alive(c Coord) bool {
	if c.Row < 0 || c.Row >= v.rows || c.Col < 0 || c.Col >= v.cols {
		return false
	}
	return v.alive[c.Row*v.cols+c.Col]
}

// AliveCount returns the number of usable cells.
func (v *View) AliveCount() int { return v.aliveCount }

// SetErrorRates attaches a per-cell calibrated error-rate function to
// the view (nil detaches). It returns the view for chaining.
func (v *View) SetErrorRates(fn func(Coord) float64) *View {
	v.errRate = fn
	return v
}

// Calibrated reports whether the view carries per-cell error rates.
func (v *View) Calibrated() bool { return v.errRate != nil }

// ErrorRate returns the cell's calibrated physical error rate (0 when
// the view is uncalibrated or the cell is out of bounds).
func (v *View) ErrorRate(c Coord) float64 {
	if v.errRate == nil || !v.Alive(c) {
		return 0
	}
	return v.errRate(c)
}

// Distance returns the device-aware hop distance between two cells
// (Unreachable when no alive path connects them). The table is built on
// first use; a View is safe for one goroutine at a time.
func (v *View) Distance(a, b Coord) int {
	if !v.Alive(a) || !v.Alive(b) {
		return Unreachable
	}
	if v.dist == nil {
		v.computeDistances()
	}
	n := v.rows * v.cols
	return int(v.dist[(a.Row*v.cols+a.Col)*n+b.Row*v.cols+b.Col])
}
