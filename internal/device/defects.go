package device

import (
	"math/rand"
	"slices"
)

// Time-varying defects: couplers that die *during* execution. A static
// defect map (Topology) models fabrication yield; a DefectSchedule
// models the failures that happen while a schedule is running — a TLS
// defect drifting onto a coupler's frequency, a flux line dropping out.
// The braid engine consumes the schedule mid-simulation: when a coupler
// dies, in-flight braids holding it are torn down and re-routed around
// the new mask via the adaptive BFS fallback, and ErrUnroutable is
// raised only when the fabric genuinely disconnects.

// DefectEvent kills the coupler between adjacent cells A and B at the
// start of cycle Cycle.
type DefectEvent struct {
	Cycle int64 `json:"cycle"`
	A     Coord `json:"a"`
	B     Coord `json:"b"`
}

// DefectSchedule is an ordered list of mid-execution coupler deaths.
type DefectSchedule struct {
	Name   string        `json:"name"`
	Events []DefectEvent `json:"events"`
}

// Empty reports whether the schedule has no events (nil schedules are
// empty).
func (s *DefectSchedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Sorted returns the events in non-decreasing cycle order (stable, so
// same-cycle events keep their declaration order). The receiver is not
// modified.
func (s *DefectSchedule) Sorted() []DefectEvent {
	if s.Empty() {
		return nil
	}
	out := slices.Clone(s.Events)
	slices.SortStableFunc(out, func(a, b DefectEvent) int {
		switch {
		case a.Cycle < b.Cycle:
			return -1
		case a.Cycle > b.Cycle:
			return 1
		}
		return 0
	})
	return out
}

// RandomDefectSchedule draws a deterministic schedule of n distinct
// coupler deaths on a rows×cols grid, with death cycles uniform in
// [1, horizon]. The same (seed, dims, n, horizon) always draws the same
// schedule — the live-defect sweep study depends on it.
func RandomDefectSchedule(seed int64, rows, cols, n int, horizon int64) *DefectSchedule {
	if horizon < 1 {
		horizon = 1
	}
	// Enumerate the candidate links in the canonical fixed order.
	type link struct{ a, b Coord }
	var links []link
	t := NewTopology(rows, cols)
	t.eachLink(func(a, b Coord) {
		links = append(links, link{a, b})
	})
	if n > len(links) {
		n = len(links)
	}
	rng := rand.New(rand.NewSource(DeriveSeed(seed, rows, cols)))
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	s := &DefectSchedule{Name: "random"}
	for i := 0; i < n; i++ {
		s.Events = append(s.Events, DefectEvent{
			Cycle: 1 + rng.Int63n(horizon),
			A:     links[i].a,
			B:     links[i].b,
		})
	}
	s.Events = s.Sorted()
	return s
}
