// Calibration snapshots: per-qubit and per-coupler measurements of a
// real chip, in the versioned JSON format hardware providers publish
// (T1/T2/readout error per qubit, gate error and latency per coupler).
// A snapshot realizes onto a Topology as heterogeneous link weights and
// per-cell effective error rates, which the routing, placement, timing,
// and logical-rate layers all price — the uniform-p model is the
// special case of an empty snapshot.
package device

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"surfcomm/internal/scerr"
)

// CalibrationVersion is the supported snapshot format version.
const CalibrationVersion = 1

// calSyndromeCycleSeconds converts decoherence times to a per-cycle
// error contribution: the superconducting syndrome-measurement cycle
// (4 two-qubit gates + 2 single-qubit gates + measure/reset, ~620 ns).
const calSyndromeCycleSeconds = 620e-9

// QubitCal is one qubit's calibration entry. Times are microseconds —
// the unit calibration dashboards report.
type QubitCal struct {
	Row          int     `json:"row"`
	Col          int     `json:"col"`
	T1Us         float64 `json:"t1_us"`
	T2Us         float64 `json:"t2_us"`
	ReadoutError float64 `json:"readout_error"`
}

// EffectiveErrorRate folds the entry into one per-cycle physical error
// rate: readout infidelity plus the decoherence accumulated over one
// syndrome cycle (t_cycle/T1 + t_cycle/T2), clamped below 1.
func (q QubitCal) EffectiveErrorRate() float64 {
	p := q.ReadoutError
	if q.T1Us > 0 {
		p += calSyndromeCycleSeconds / (q.T1Us * 1e-6)
	}
	if q.T2Us > 0 {
		p += calSyndromeCycleSeconds / (q.T2Us * 1e-6)
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	return p
}

// CouplerCal is one coupler's calibration entry: the two-qubit gate
// error across the link and its latency multiplier relative to the
// chip's fastest coupler (1 = ideal; 0 defaults to 1).
type CouplerCal struct {
	A         [2]int  `json:"a"` // [row, col]
	B         [2]int  `json:"b"`
	GateError float64 `json:"gate_error"`
	Latency   float64 `json:"latency,omitempty"`
}

// Calibration is one loaded snapshot.
type Calibration struct {
	Version  int          `json:"version"`
	Name     string       `json:"name"`
	Taken    time.Time    `json:"taken"`
	Qubits   []QubitCal   `json:"qubits"`
	Couplers []CouplerCal `json:"couplers"`

	digest string
}

// validate range-checks every entry; violations fail with an error
// matching scerr.ErrBadConfig.
func (cal *Calibration) validate() error {
	if cal.Version != CalibrationVersion {
		return scerr.BadConfig("device: calibration: unsupported version %d (want %d)", cal.Version, CalibrationVersion)
	}
	if cal.Name == "" {
		return scerr.BadConfig("device: calibration: missing name")
	}
	seenQ := make(map[Coord]bool, len(cal.Qubits))
	for i, q := range cal.Qubits {
		at := Coord{Row: q.Row, Col: q.Col}
		switch {
		case q.Row < 0 || q.Col < 0:
			return scerr.BadConfig("device: calibration: qubit %d at negative coordinate %v", i, at)
		case q.T1Us <= 0 || q.T2Us <= 0:
			return scerr.BadConfig("device: calibration: qubit %d at %v: T1/T2 must be positive, got %g/%g µs",
				i, at, q.T1Us, q.T2Us)
		case q.ReadoutError < 0 || q.ReadoutError >= 1:
			return scerr.BadConfig("device: calibration: qubit %d at %v: readout error %g outside [0,1)",
				i, at, q.ReadoutError)
		case seenQ[at]:
			return scerr.BadConfig("device: calibration: duplicate qubit entry at %v", at)
		}
		seenQ[at] = true
	}
	seenC := make(map[[2]Coord]bool, len(cal.Couplers))
	for i, c := range cal.Couplers {
		a := Coord{Row: c.A[0], Col: c.A[1]}
		b := Coord{Row: c.B[0], Col: c.B[1]}
		key := normalizePair(a, b)
		switch {
		case a.Row < 0 || a.Col < 0 || b.Row < 0 || b.Col < 0:
			return scerr.BadConfig("device: calibration: coupler %d at negative coordinate %v-%v", i, a, b)
		case !Adjacent(a, b):
			return scerr.BadConfig("device: calibration: coupler %d endpoints %v-%v not adjacent", i, a, b)
		case c.GateError < 0 || c.GateError >= 1:
			return scerr.BadConfig("device: calibration: coupler %d %v-%v: gate error %g outside [0,1)",
				i, a, b, c.GateError)
		case c.Latency != 0 && c.Latency < 1:
			return scerr.BadConfig("device: calibration: coupler %d %v-%v: latency %g below 1 (links cannot beat ideal)",
				i, a, b, c.Latency)
		case seenC[key]:
			return scerr.BadConfig("device: calibration: duplicate coupler entry %v-%v", a, b)
		}
		seenC[key] = true
	}
	return nil
}

func normalizePair(a, b Coord) [2]Coord {
	if b.Row < a.Row || (b.Row == a.Row && b.Col < a.Col) {
		a, b = b, a
	}
	return [2]Coord{a, b}
}

// finalize computes the canonical digest; call after any construction.
func (cal *Calibration) finalize() error {
	if err := cal.validate(); err != nil {
		return err
	}
	canon, err := json.Marshal(cal)
	if err != nil {
		return fmt.Errorf("device: calibration: %w", err)
	}
	sum := sha256.Sum256(canon)
	cal.digest = hex.EncodeToString(sum[:])
	return nil
}

// Digest returns the snapshot's content digest (hex SHA-256 of the
// canonical encoding) — whitespace- and field-order-insensitive, so two
// loads of the same measurements always agree. Operators compare it
// across a replica fleet to detect stale calibrations.
func (cal *Calibration) Digest() string {
	if cal == nil {
		return ""
	}
	return cal.digest
}

// Age returns how stale the snapshot is at the given instant.
func (cal *Calibration) Age(now time.Time) time.Duration {
	return now.Sub(cal.Taken)
}

// ParseCalibration loads a snapshot from its versioned JSON form.
// Malformed or out-of-range entries fail with an error matching
// scerr.ErrBadConfig.
func ParseCalibration(data []byte) (*Calibration, error) {
	var cal Calibration
	if err := json.Unmarshal(data, &cal); err != nil {
		return nil, scerr.BadConfig("device: calibration: %v", err)
	}
	if err := cal.finalize(); err != nil {
		return nil, err
	}
	return &cal, nil
}

// LoadCalibration reads a snapshot from r.
func LoadCalibration(r io.Reader) (*Calibration, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("device: calibration: %w", err)
	}
	return ParseCalibration(data)
}

// Encode serializes the snapshot in its canonical JSON form.
func (cal *Calibration) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cal)
}

// Apply realizes the snapshot onto a topology: couplers set link
// latency weights and gate error rates, qubits set per-cell effective
// error rates. Entries outside the grid are ignored (a snapshot
// measures the physical chip; a realization may use a corner of it),
// and uncovered cells keep rate 0 — consumers substitute the uniform
// baseline. Applying any snapshot (even an empty one) marks the
// topology calibrated, switching consumers to per-link pricing.
func (cal *Calibration) Apply(t *Topology) {
	t.markCalibrated()
	for _, q := range cal.Qubits {
		t.SetTileErrorRate(Coord{Row: q.Row, Col: q.Col}, q.EffectiveErrorRate())
	}
	for _, c := range cal.Couplers {
		a := Coord{Row: c.A[0], Col: c.A[1]}
		b := Coord{Row: c.B[0], Col: c.B[1]}
		if lat := c.Latency; lat > 1 {
			t.SetLinkWeight(a, b, lat)
		}
		t.SetLinkErrorRate(a, b, c.GateError)
	}
}

// SyntheticCalibration generates a deterministic, plausible snapshot
// for a rows×cols grid: T1/T2 spread around superconducting medians
// (~200 µs), readout errors around 0.1–0.5%, coupler gate errors around
// 0.5–1% with a tail of slow outlier couplers carrying latency
// multipliers. The effective per-cycle rates straddle the threshold —
// the regime where per-tile spreads actually matter. The same
// (seed, dims) always generates byte-identical snapshots — the
// calibration sweep study and its BENCH artifact depend on it.
func SyntheticCalibration(seed int64, rows, cols int) *Calibration {
	rng := rand.New(rand.NewSource(DeriveSeed(seed, rows, cols)))
	cal := &Calibration{
		Version: CalibrationVersion,
		Name:    fmt.Sprintf("synthetic-%dx%d-seed%d", rows, cols, seed),
		// A fixed reference instant keeps the digest deterministic.
		Taken: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cal.Qubits = append(cal.Qubits, QubitCal{
				Row:          r,
				Col:          c,
				T1Us:         120 + 280*rng.Float64(),
				T2Us:         80 + 220*rng.Float64(),
				ReadoutError: 0.001 + 0.004*rng.Float64(),
			})
		}
	}
	addCoupler := func(a, b Coord) {
		cc := CouplerCal{
			A:         [2]int{a.Row, a.Col},
			B:         [2]int{b.Row, b.Col},
			GateError: 0.003 + 0.008*rng.Float64(),
		}
		// ~1 in 8 couplers is a slow outlier.
		if rng.Float64() < 0.125 {
			cc.GateError += 0.01 + 0.02*rng.Float64()
			cc.Latency = 1.5 + rng.Float64()
		}
		cal.Couplers = append(cal.Couplers, cc)
	}
	// Fixed link order (horizontal row-major, then vertical row-major)
	// so the draw sequence is reproducible.
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			addCoupler(Coord{Row: r, Col: c}, Coord{Row: r, Col: c + 1})
		}
	}
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			addCoupler(Coord{Row: r, Col: c}, Coord{Row: r + 1, Col: c})
		}
	}
	sort.SliceStable(cal.Qubits, func(i, j int) bool {
		if cal.Qubits[i].Row != cal.Qubits[j].Row {
			return cal.Qubits[i].Row < cal.Qubits[j].Row
		}
		return cal.Qubits[i].Col < cal.Qubits[j].Col
	})
	if err := cal.finalize(); err != nil {
		panic(fmt.Sprintf("device: synthetic calibration invariant broken: %v", err))
	}
	return cal
}
