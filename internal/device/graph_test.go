package device

import (
	"errors"
	"testing"

	"surfcomm/internal/scerr"
)

// graphConnected BFS-checks that every present node is reachable from
// every other through present edges at the realized dims.
func graphConnected(g *CouplingGraph, rows, cols int) bool {
	var start Coord
	found := false
	for r := 0; r < rows && !found; r++ {
		for c := 0; c < cols && !found; c++ {
			if g.HasNode(rows, cols, Coord{Row: r, Col: c}) {
				start, found = Coord{Row: r, Col: c}, true
			}
		}
	}
	if !found {
		return false
	}
	seen := map[Coord]bool{start: true}
	queue := []Coord{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range []Coord{
			{Row: cur.Row, Col: cur.Col + 1}, {Row: cur.Row, Col: cur.Col - 1},
			{Row: cur.Row + 1, Col: cur.Col}, {Row: cur.Row - 1, Col: cur.Col},
		} {
			if nb.Row < 0 || nb.Row >= rows || nb.Col < 0 || nb.Col >= cols || seen[nb] {
				continue
			}
			if g.HasEdge(rows, cols, cur, nb) {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	total := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if g.HasNode(rows, cols, Coord{Row: r, Col: c}) {
				total++
			}
		}
	}
	return len(seen) == total
}

// TestHeavyHexGraphProperties pins the lattice invariants across a
// spread of realized dims: connected, degree <= 3 where the pattern
// thins (cols >= 3), every horizontal coupler present, and rungs only
// at the pattern's columns.
func TestHeavyHexGraphProperties(t *testing.T) {
	g := HeavyHexGraph()
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 2}, {5, 5}, {4, 9}, {9, 4}, {12, 17}} {
		rows, cols := dims[0], dims[1]
		if !graphConnected(g, rows, cols) {
			t.Fatalf("%dx%d: heavy-hex disconnected", rows, cols)
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				cur := Coord{Row: r, Col: c}
				if c+1 < cols && !g.HasEdge(rows, cols, cur, Coord{Row: r, Col: c + 1}) {
					t.Fatalf("%dx%d: missing horizontal coupler at %v", rows, cols, cur)
				}
				deg := 0
				for _, nb := range []Coord{
					{Row: r, Col: c + 1}, {Row: r, Col: c - 1},
					{Row: r + 1, Col: c}, {Row: r - 1, Col: c},
				} {
					if nb.Row < 0 || nb.Row >= rows || nb.Col < 0 || nb.Col >= cols {
						continue
					}
					if g.HasEdge(rows, cols, cur, nb) {
						deg++
					}
				}
				if cols >= 3 && deg > 3 {
					t.Fatalf("%dx%d: node %v has degree %d > 3", rows, cols, cur, deg)
				}
			}
		}
	}
}

// TestSquareGraphIsComplete pins the square preset: every node and edge
// present, and realization leaves the topology non-degraded so perfect
// devices stay on their bit-identical fast paths.
func TestSquareGraphIsComplete(t *testing.T) {
	g := SquareGraph()
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			cur := Coord{Row: r, Col: c}
			if !g.HasNode(4, 4, cur) {
				t.Fatalf("square missing node %v", cur)
			}
			if c+1 < 4 && !g.HasEdge(4, 4, cur, Coord{Row: r, Col: c + 1}) {
				t.Fatalf("square missing edge at %v", cur)
			}
		}
	}
	topo := NewTopology(4, 4)
	g.Apply(topo)
	if topo.Degraded() {
		t.Fatal("square graph degraded the topology")
	}
}

// TestParseCouplingGraphTiling pins the custom loader: a 2x2 unit cell
// keeping only one vertical coupler tiles across larger dims, with
// cell-stitching couplers always present.
func TestParseCouplingGraphTiling(t *testing.T) {
	raw := `{"version":1,"name":"ladder","rows":2,"cols":2,"couplers":[
		{"a":[0,0],"b":[0,1]},
		{"a":[1,0],"b":[1,1]},
		{"a":[0,0],"b":[1,0]}]}`
	g, err := ParseCouplingGraph([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "ladder" {
		t.Fatalf("name %q", g.Name())
	}
	// Interior of each 2x2 copy: (0,0)-(1,0) kept, (0,1)-(1,1) dropped.
	if !g.HasEdge(4, 4, Coord{Row: 0, Col: 0}, Coord{Row: 1, Col: 0}) {
		t.Fatal("kept coupler missing")
	}
	if g.HasEdge(4, 4, Coord{Row: 0, Col: 1}, Coord{Row: 1, Col: 1}) {
		t.Fatal("dropped coupler present")
	}
	// Copy at rows 2..3 repeats the pattern.
	if !g.HasEdge(4, 4, Coord{Row: 2, Col: 0}, Coord{Row: 3, Col: 0}) {
		t.Fatal("tiled copy lost its coupler")
	}
	// The coupler stitching vertically adjacent copies is always present.
	if !g.HasEdge(4, 4, Coord{Row: 1, Col: 1}, Coord{Row: 2, Col: 1}) {
		t.Fatal("cell-stitching coupler missing")
	}
}

// TestParseCouplingGraphRejections walks the malformed-spec table.
func TestParseCouplingGraphRejections(t *testing.T) {
	cases := map[string]string{
		"not json":      `]`,
		"wrong version": `{"version":9,"name":"x","rows":2,"cols":2,"couplers":[{"a":[0,0],"b":[0,1]}]}`,
		"missing name":  `{"version":1,"rows":2,"cols":2,"couplers":[{"a":[0,0],"b":[0,1]}]}`,
		"bad dims":      `{"version":1,"name":"x","rows":0,"cols":2,"couplers":[{"a":[0,0],"b":[0,1]}]}`,
		"no couplers":   `{"version":1,"name":"x","rows":2,"cols":2,"couplers":[]}`,
		"out of cell":   `{"version":1,"name":"x","rows":2,"cols":2,"couplers":[{"a":[0,0],"b":[0,2]}]}`,
		"non-adjacent":  `{"version":1,"name":"x","rows":3,"cols":3,"couplers":[{"a":[0,0],"b":[2,0]}]}`,
	}
	for name, raw := range cases {
		if _, err := ParseCouplingGraph([]byte(raw)); !errors.Is(err, scerr.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestHeavyHexDeviceInstance pins realization through the Device
// facade: absent couplers realize as disabled links and the topology
// reports degraded (so meshes mask it), while the square-graph device
// realizes exactly like the perfect device.
func TestHeavyHexDeviceInstance(t *testing.T) {
	topo := HeavyHex(1).Instance(5, 5)
	if topo == nil {
		t.Fatal("heavy-hex realized no topology")
	}
	if !topo.Degraded() {
		t.Fatal("heavy-hex instance not degraded")
	}
	g := HeavyHexGraph()
	for r := 0; r+1 < 5; r++ {
		for c := 0; c < 5; c++ {
			a, b := Coord{Row: r, Col: c}, Coord{Row: r + 1, Col: c}
			if g.HasEdge(5, 5, a, b) == topo.LinkDisabled(a, b) {
				t.Fatalf("link %v-%v: graph says %v, topology says disabled=%v",
					a, b, g.HasEdge(5, 5, a, b), topo.LinkDisabled(a, b))
			}
		}
	}
	if got := OnGraph(SquareGraph(), 3); !got.IsPerfect() {
		t.Fatal("square-graph device should normalize to perfect")
	}
	if OnGraph(nil, 3) == nil || !OnGraph(nil, 3).IsPerfect() {
		t.Fatal("nil-graph device should normalize to perfect")
	}
}
