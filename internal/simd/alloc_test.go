package simd

import (
	"testing"

	"surfcomm/internal/circuit"
	"surfcomm/internal/resource"
)

// TestScheduleTimestepZeroAlloc asserts the per-timestep packing loop
// is allocation-free in steady state (mirroring the braid engine's
// zero-alloc hot-path test): grouping, region packing, and move
// emission all run out of the stamp-cleared scratch.
func TestScheduleTimestepZeroAlloc(t *testing.T) {
	c := circuit.New("hot", 64)
	for q := 0; q < 64; q++ {
		c.Append(circuit.H, q)
	}
	for q := 0; q < 63; q += 2 {
		c.Append(circuit.CNOT, q, q+1)
	}
	for q := 0; q < 64; q += 4 {
		c.Append(circuit.T, q)
	}
	cfg := Config{Regions: 4, Width: 8}.withDefaults()
	dag, err := resource.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	st := newSchedState(c, cfg, dag.Heights())
	// Admit only the dependency-free first layer so the ready set is
	// stable across runs (scheduleTimestep does not retire ops itself).
	remDeps := make([]int, len(c.Gates))
	for i := range c.Gates {
		remDeps[i] = len(dag.Preds[i])
		if remDeps[i] == 0 {
			st.push(i)
		}
	}
	st.flush()
	if len(st.ready) == 0 {
		t.Fatal("no ready ops")
	}
	bank := homeRegions(c, cfg)
	orig := append([]int(nil), bank...)
	sched := &Schedule{Config: cfg}

	run := func() {
		copy(bank, orig)
		sched.Moves = sched.Moves[:0]
		sched.Teleports, sched.MagicMoves = 0, 0
		if got := st.scheduleTimestep(bank, 0, sched); len(got) == 0 {
			t.Fatal("nothing scheduled")
		}
	}
	run() // grow Moves and scratch to steady-state capacity
	if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
		t.Errorf("scheduleTimestep allocates %.1f times per timestep, want 0", allocs)
	}
}
