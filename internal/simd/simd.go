// Package simd implements the Multi-SIMD scheduler for planar-code
// architectures (paper §4.4, after Heckey et al. ASPLOS'15): qubits
// live in k reconfigurable SIMD regions, each region applies one
// operation type per logical timestep to up to w qubits (microwave
// broadcast), and qubits that change region between timesteps teleport
// through the EPR network. The scheduler performs the mapping-level
// communication reduction of Fig. 4: qubits are partitioned into home
// regions by interaction locality, and operations are packed into
// regions where their operands already reside, minimizing
// teleportations.
package simd

import (
	"context"
	"fmt"
	"sort"

	"surfcomm/internal/circuit"
	"surfcomm/internal/partition"
	"surfcomm/internal/resource"
	"surfcomm/internal/scerr"
)

// MagicSource is the Move.From value for magic-state deliveries: the
// state is produced in a magic-state factory region and teleported to
// the consuming SIMD region.
const MagicSource = -1

// Config sizes the Multi-SIMD machine.
type Config struct {
	// Regions is k, the number of SIMD regions (power of two; the
	// home-region partition halves recursively). Zero selects 4.
	Regions int
	// Width is w, the maximum qubits operated on per region per
	// timestep. Zero selects 32.
	Width int
	// Seed drives the home-region partitioner.
	Seed int64
	// NaiveBanks disables locality partitioning (round-robin home
	// regions) — the baseline the mapping optimization is measured
	// against.
	NaiveBanks bool
}

func (c Config) withDefaults() Config {
	if c.Regions == 0 {
		c.Regions = 4
	}
	if c.Width == 0 {
		c.Width = 32
	}
	return c
}

func (c Config) validate() error {
	if c.Regions < 1 || c.Regions&(c.Regions-1) != 0 {
		return scerr.BadConfig("simd: regions must be a power of two, got %d", c.Regions)
	}
	if c.Width < 1 {
		return scerr.BadConfig("simd: width must be positive, got %d", c.Width)
	}
	return nil
}

// ConfigFor sizes the Multi-SIMD machine for a circuit: the Fig. 3a
// four-region checkerboard, widened to the full 16-region machine for
// large applications, with region width grown so every bank fits its
// share of the qubits. This is the single sizing rule shared by the
// EPR-study grid and the planar backend, so the two can never drift.
func ConfigFor(numQubits int, seed int64) Config {
	regions := 4
	if numQubits > 128 {
		regions = 16
	}
	width := 32
	if perBank := (numQubits + regions - 1) / regions; perBank > width {
		width = perBank
	}
	return Config{Regions: regions, Width: width, Seed: seed}
}

// Move is one teleportation: qubit Qubit relocates from region From to
// region To at the given timestep, consuming one EPR pair. Magic-state
// deliveries use From = MagicSource and Qubit = -1.
type Move struct {
	Timestep int
	Qubit    int
	From, To int
}

// Schedule is the Multi-SIMD execution plan of a circuit.
type Schedule struct {
	Config    Config
	Timesteps int
	Ops       int
	// Teleports counts inter-region qubit moves (data communication).
	Teleports int
	// MagicMoves counts magic-state deliveries (one per T gate).
	MagicMoves int
	// Moves lists every EPR-consuming event in timestep order.
	Moves []Move
	// HomeRegion is the initial bank assignment of each qubit.
	HomeRegion []int
	// CriticalTimesteps is the DAG depth under unit op latency — the
	// contention-free lower bound on Timesteps.
	CriticalTimesteps int
}

// Parallelism returns ops per timestep achieved by the schedule.
func (s *Schedule) Parallelism() float64 {
	if s.Timesteps == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Timesteps)
}

// Run schedules the circuit on the Multi-SIMD machine.
func Run(c *circuit.Circuit, cfg Config) (*Schedule, error) {
	return RunContext(context.Background(), c, cfg)
}

// RunContext is Run with cooperative cancellation, polled once per
// timestep; an aborted run returns an error matching scerr.ErrCanceled.
func RunContext(ctx context.Context, c *circuit.Circuit, cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dag, err := resource.Build(c)
	if err != nil {
		return nil, err
	}
	heights := dag.Heights()

	bank := homeRegions(c, cfg)
	sched := &Schedule{
		Config:     cfg,
		Ops:        c.Ops(),
		HomeRegion: append([]int(nil), bank...),
	}
	_, depth := dag.ASAP()
	sched.CriticalTimesteps = depth

	remDeps := make([]int, len(c.Gates))
	for i := range c.Gates {
		remDeps[i] = len(dag.Preds[i])
	}
	var ready []int
	var admit func(i int)
	completed := 0
	admit = func(i int) {
		if c.Gates[i].Op == circuit.Barrier {
			completed++
			for _, s := range dag.Succs[i] {
				remDeps[s]--
				if remDeps[s] == 0 {
					admit(int(s))
				}
			}
			return
		}
		ready = append(ready, i)
	}
	for i := range c.Gates {
		if remDeps[i] == 0 {
			admit(i)
		}
	}

	timestep := 0
	done := ctx.Done()
	for completed < len(c.Gates) {
		if done != nil {
			select {
			case <-done:
				return nil, scerr.Canceled(ctx)
			default:
			}
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("simd: no ready ops with %d gates pending (dependency corruption)",
				len(c.Gates)-completed)
		}
		scheduled := scheduleTimestep(c, cfg, ready, heights, bank, timestep, sched)
		if len(scheduled) == 0 {
			return nil, fmt.Errorf("simd: empty timestep with %d ready ops", len(ready))
		}
		// Retire scheduled ops and admit their successors.
		isScheduled := make(map[int]bool, len(scheduled))
		for _, i := range scheduled {
			isScheduled[i] = true
		}
		next := ready[:0]
		for _, i := range ready {
			if !isScheduled[i] {
				next = append(next, i)
			}
		}
		ready = next
		for _, i := range scheduled {
			completed++
			for _, s := range dag.Succs[i] {
				remDeps[s]--
				if remDeps[s] == 0 {
					admit(int(s))
				}
			}
		}
		timestep++
	}
	sched.Timesteps = timestep
	return sched, nil
}

// homeRegions assigns each qubit an initial bank: recursive bisection
// of the interaction graph (locality), or round-robin when NaiveBanks.
func homeRegions(c *circuit.Circuit, cfg Config) []int {
	bank := make([]int, c.NumQubits)
	if cfg.NaiveBanks || cfg.Regions == 1 {
		for q := range bank {
			bank[q] = q % cfg.Regions
		}
		return bank
	}
	g := partition.NewGraph(c.NumQubits)
	for _, gt := range c.Gates {
		if gt.Op.IsTwoQubit() {
			// Operands validated distinct by circuit validation.
			_ = g.AddEdge(gt.Qubits[0], gt.Qubits[1], 1)
		}
	}
	var rec func(vertices []int, base, parts int, seed int64)
	rec = func(vertices []int, base, parts int, seed int64) {
		if parts == 1 || len(vertices) == 0 {
			for _, v := range vertices {
				bank[v] = base
			}
			return
		}
		sub, mapping, err := g.InducedSubgraph(vertices)
		if err != nil {
			// Vertices come from our own recursion; cannot happen.
			panic(err)
		}
		side, _ := partition.Bisect(sub, partition.Options{Seed: seed})
		zero, one := partition.SideVertices(side)
		left := make([]int, len(zero))
		for i, v := range zero {
			left[i] = mapping[v]
		}
		right := make([]int, len(one))
		for i, v := range one {
			right[i] = mapping[v]
		}
		rec(left, base, parts/2, seed+1)
		rec(right, base+parts/2, parts/2, seed+2)
	}
	all := make([]int, c.NumQubits)
	for i := range all {
		all[i] = i
	}
	rec(all, 0, cfg.Regions, cfg.Seed)
	return bank
}

// scheduleTimestep packs ready ops into the k regions for one timestep
// and returns the scheduled op indices. It mutates bank (qubit
// residency) and appends the timestep's moves to sched.
func scheduleTimestep(c *circuit.Circuit, cfg Config, ready []int, heights []int,
	bank []int, timestep int, sched *Schedule) []int {

	// Group ready ops by opcode — a SIMD region broadcasts one
	// operation type per timestep.
	groups := map[circuit.Opcode][]int{}
	for _, i := range ready {
		groups[c.Gates[i].Op] = append(groups[c.Gates[i].Op], i)
	}
	type scored struct {
		op       circuit.Opcode
		ops      []int
		priority int // max criticality in the group
	}
	var list []scored
	for op, ops := range groups {
		sort.Slice(ops, func(a, b int) bool {
			if heights[ops[a]] != heights[ops[b]] {
				return heights[ops[a]] > heights[ops[b]]
			}
			return ops[a] < ops[b]
		})
		list = append(list, scored{op: op, ops: ops, priority: heights[ops[0]]})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].priority != list[b].priority {
			return list[a].priority > list[b].priority
		}
		if len(list[a].ops) != len(list[b].ops) {
			return len(list[a].ops) > len(list[b].ops)
		}
		return list[a].op < list[b].op
	})
	// Region state for this timestep: a region is either unconfigured
	// or broadcasts one opcode; several regions may broadcast the same
	// opcode (each has its own control), which keeps clustered operands
	// at home.
	regionOp := make([]circuit.Opcode, cfg.Regions) // Nop = unconfigured
	regionLoad := make([]int, cfg.Regions)
	var scheduled []int
	engaged := map[int]bool{} // qubits already operated on this timestep

	// placeIn tries to commit op i to region r.
	placeIn := func(i, r int) bool {
		if regionOp[r] == circuit.Nop {
			regionOp[r] = c.Gates[i].Op
		} else if regionOp[r] != c.Gates[i].Op || regionLoad[r] >= cfg.Width {
			return false
		}
		if regionLoad[r] >= cfg.Width {
			return false
		}
		regionLoad[r]++
		for _, q := range c.Gates[i].Qubits {
			engaged[q] = true
			if bank[q] != r {
				sched.Moves = append(sched.Moves, Move{
					Timestep: timestep, Qubit: q, From: bank[q], To: r,
				})
				sched.Teleports++
				bank[q] = r
			}
		}
		if c.Gates[i].Op.IsT() {
			sched.Moves = append(sched.Moves, Move{
				Timestep: timestep, Qubit: -1, From: MagicSource, To: r,
			})
			sched.MagicMoves++
		}
		scheduled = append(scheduled, i)
		return true
	}

	for _, grp := range list {
		for _, i := range grp.ops {
			conflict := false
			for _, q := range c.Gates[i].Qubits {
				if engaged[q] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			// Preference order: the operand-majority region, then any
			// region already broadcasting this opcode with spare width,
			// then any unconfigured region.
			counts := make([]int, cfg.Regions)
			for _, q := range c.Gates[i].Qubits {
				counts[bank[q]]++
			}
			pref, best := 0, -1
			for r := 0; r < cfg.Regions; r++ {
				if counts[r] > best {
					pref, best = r, counts[r]
				}
			}
			if placeIn(i, pref) {
				continue
			}
			placed := false
			for r := 0; r < cfg.Regions && !placed; r++ {
				if r != pref && regionOp[r] == c.Gates[i].Op && regionLoad[r] < cfg.Width {
					placed = placeIn(i, r)
				}
			}
			for r := 0; r < cfg.Regions && !placed; r++ {
				if regionOp[r] == circuit.Nop {
					placed = placeIn(i, r)
				}
			}
		}
	}
	return scheduled
}
