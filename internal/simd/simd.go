// Package simd implements the Multi-SIMD scheduler for planar-code
// architectures (paper §4.4, after Heckey et al. ASPLOS'15): qubits
// live in k reconfigurable SIMD regions, each region applies one
// operation type per logical timestep to up to w qubits (microwave
// broadcast), and qubits that change region between timesteps teleport
// through the EPR network. The scheduler performs the mapping-level
// communication reduction of Fig. 4: qubits are partitioned into home
// regions by interaction locality, and operations are packed into
// regions where their operands already reside, minimizing
// teleportations.
package simd

import (
	"context"
	"fmt"
	"slices"

	"surfcomm/internal/circuit"
	"surfcomm/internal/partition"
	"surfcomm/internal/resource"
	"surfcomm/internal/scerr"
)

// MagicSource is the Move.From value for magic-state deliveries: the
// state is produced in a magic-state factory region and teleported to
// the consuming SIMD region.
const MagicSource = -1

// Config sizes the Multi-SIMD machine.
type Config struct {
	// Regions is k, the number of SIMD regions (power of two; the
	// home-region partition halves recursively). Zero selects 4.
	Regions int
	// Width is w, the maximum qubits operated on per region per
	// timestep. Zero selects 32.
	Width int
	// Seed drives the home-region partitioner.
	Seed int64
	// NaiveBanks disables locality partitioning (round-robin home
	// regions) — the baseline the mapping optimization is measured
	// against.
	NaiveBanks bool
}

func (c Config) withDefaults() Config {
	if c.Regions == 0 {
		c.Regions = 4
	}
	if c.Width == 0 {
		c.Width = 32
	}
	return c
}

func (c Config) validate() error {
	if c.Regions < 1 || c.Regions&(c.Regions-1) != 0 {
		return scerr.BadConfig("simd: regions must be a power of two, got %d", c.Regions)
	}
	if c.Width < 1 {
		return scerr.BadConfig("simd: width must be positive, got %d", c.Width)
	}
	return nil
}

// Validate checks the config as a caller-supplied machine shape (after
// zero-field defaulting); errors match scerr.ErrBadConfig. The facade
// validates SIMD overrides at the Target boundary with this, so the
// scheduler's internal constructors can assume sane dimensions.
func (c Config) Validate() error { return c.withDefaults().validate() }

// ConfigFor sizes the Multi-SIMD machine for a circuit: the Fig. 3a
// four-region checkerboard, widened to the full 16-region machine for
// large applications, with region width grown so every bank fits its
// share of the qubits. This is the single sizing rule shared by the
// EPR-study grid and the planar backend, so the two can never drift.
func ConfigFor(numQubits int, seed int64) Config {
	regions := 4
	if numQubits > 128 {
		regions = 16
	}
	width := 32
	if perBank := (numQubits + regions - 1) / regions; perBank > width {
		width = perBank
	}
	return Config{Regions: regions, Width: width, Seed: seed}
}

// Move is one teleportation: qubit Qubit relocates from region From to
// region To at the given timestep, consuming one EPR pair. Magic-state
// deliveries use From = MagicSource and Qubit = -1.
type Move struct {
	Timestep int
	Qubit    int
	From, To int
}

// Schedule is the Multi-SIMD execution plan of a circuit.
type Schedule struct {
	Config    Config
	Timesteps int
	Ops       int
	// Teleports counts inter-region qubit moves (data communication).
	Teleports int
	// MagicMoves counts magic-state deliveries (one per T gate).
	MagicMoves int
	// Moves lists every EPR-consuming event in timestep order.
	Moves []Move
	// HomeRegion is the initial bank assignment of each qubit.
	HomeRegion []int
	// CriticalTimesteps is the DAG depth under unit op latency — the
	// contention-free lower bound on Timesteps.
	CriticalTimesteps int
}

// Parallelism returns ops per timestep achieved by the schedule.
func (s *Schedule) Parallelism() float64 {
	if s.Timesteps == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Timesteps)
}

// Run schedules the circuit on the Multi-SIMD machine.
func Run(c *circuit.Circuit, cfg Config) (*Schedule, error) {
	return RunContext(context.Background(), c, cfg)
}

// schedState is the per-run scheduling state: the ready structure plus
// all per-timestep scratch, allocated once per Run and stamp-cleared
// between timesteps so the scheduling loop never allocates in steady
// state (the mesh/braid scratch pattern).
type schedState struct {
	c       *circuit.Circuit
	cfg     Config
	heights []int

	// ready holds schedulable ops in priority order (height descending,
	// op index ascending — a total order, so no stable sort is needed).
	// Insertions stage into pending and merge in one pass per timestep,
	// the batched-merge pattern of braid's readyQueue; the comparator is
	// static, so the merged slice is never resorted.
	ready   []int
	pending []int
	spare   []int

	// Stamp-cleared per-timestep scratch: a slot is live iff its stamp
	// matches the current timestep's stamp, so clearing is O(1).
	stamp       int64
	engagedAt   []int64          // per qubit: operated on this timestep
	scheduledAt []int64          // per op: committed this timestep
	groupAt     []int64          // per opcode: group live this timestep
	groupOps    [][]int          // per opcode: ready ops, priority order
	groupList   []circuit.Opcode // opcodes with ready ops this timestep
	counts      []int            // per region: operand residency
	regionOp    []circuit.Opcode // per region: broadcast opcode (Nop = unset)
	regionLoad  []int            // per region: ops committed
	scheduled   []int            // ops committed this timestep
}

func newSchedState(c *circuit.Circuit, cfg Config, heights []int) *schedState {
	return &schedState{
		c:           c,
		cfg:         cfg,
		heights:     heights,
		engagedAt:   make([]int64, c.NumQubits),
		scheduledAt: make([]int64, len(c.Gates)),
		groupAt:     make([]int64, circuit.OpcodeCount),
		groupOps:    make([][]int, circuit.OpcodeCount),
		groupList:   make([]circuit.Opcode, 0, circuit.OpcodeCount),
		counts:      make([]int, cfg.Regions),
		regionOp:    make([]circuit.Opcode, cfg.Regions),
		regionLoad:  make([]int, cfg.Regions),
	}
}

// less is the static ready-order comparator: most critical first,
// then op index — the same total order the per-timestep group sorts
// used to produce.
func (st *schedState) less(a, b int) bool {
	if st.heights[a] != st.heights[b] {
		return st.heights[a] > st.heights[b]
	}
	return a < b
}

// push stages an op for insertion at the next flush.
func (st *schedState) push(i int) { st.pending = append(st.pending, i) }

// flush merges staged ops into the ordered ready slice in one pass.
func (st *schedState) flush() {
	if len(st.pending) == 0 {
		return
	}
	slices.SortFunc(st.pending, func(a, b int) int {
		if st.less(a, b) {
			return -1
		}
		return 1
	})
	merged := st.spare[:0]
	i, j := 0, 0
	for i < len(st.ready) && j < len(st.pending) {
		if st.less(st.pending[j], st.ready[i]) {
			merged = append(merged, st.pending[j])
			j++
		} else {
			merged = append(merged, st.ready[i])
			i++
		}
	}
	merged = append(merged, st.ready[i:]...)
	merged = append(merged, st.pending[j:]...)
	st.spare = st.ready[:0]
	st.ready = merged
	st.pending = st.pending[:0]
}

// RunContext is Run with cooperative cancellation, polled once per
// timestep; an aborted run returns an error matching scerr.ErrCanceled.
func RunContext(ctx context.Context, c *circuit.Circuit, cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dag, err := resource.Build(c)
	if err != nil {
		return nil, err
	}
	heights := dag.Heights()

	bank := homeRegions(c, cfg)
	sched := &Schedule{
		Config:     cfg,
		Ops:        c.Ops(),
		HomeRegion: append([]int(nil), bank...),
	}
	_, depth := dag.ASAP()
	sched.CriticalTimesteps = depth

	st := newSchedState(c, cfg, heights)
	remDeps := make([]int, len(c.Gates))
	for i := range c.Gates {
		remDeps[i] = len(dag.Preds[i])
	}
	var admit func(i int)
	completed := 0
	admit = func(i int) {
		if c.Gates[i].Op == circuit.Barrier {
			completed++
			for _, s := range dag.Succs[i] {
				remDeps[s]--
				if remDeps[s] == 0 {
					admit(int(s))
				}
			}
			return
		}
		st.push(i)
	}
	for i := range c.Gates {
		if remDeps[i] == 0 {
			admit(i)
		}
	}

	timestep := 0
	done := ctx.Done()
	for completed < len(c.Gates) {
		if done != nil {
			select {
			case <-done:
				return nil, scerr.Canceled(ctx)
			default:
			}
		}
		st.flush()
		if len(st.ready) == 0 {
			return nil, fmt.Errorf("simd: no ready ops with %d gates pending (dependency corruption)",
				len(c.Gates)-completed)
		}
		scheduled := st.scheduleTimestep(bank, timestep, sched)
		if len(scheduled) == 0 {
			return nil, fmt.Errorf("simd: empty timestep with %d ready ops", len(st.ready))
		}
		// Retire scheduled ops (stamped by scheduleTimestep) and admit
		// their successors. The filter keeps the ready order intact.
		next := st.ready[:0]
		for _, i := range st.ready {
			if st.scheduledAt[i] != st.stamp {
				next = append(next, i)
			}
		}
		st.ready = next
		for _, i := range scheduled {
			completed++
			for _, s := range dag.Succs[i] {
				remDeps[s]--
				if remDeps[s] == 0 {
					admit(int(s))
				}
			}
		}
		timestep++
	}
	sched.Timesteps = timestep
	return sched, nil
}

// homeRegions assigns each qubit an initial bank: recursive bisection
// of the interaction graph (locality), or round-robin when NaiveBanks.
func homeRegions(c *circuit.Circuit, cfg Config) []int {
	bank := make([]int, c.NumQubits)
	if cfg.NaiveBanks || cfg.Regions == 1 {
		for q := range bank {
			bank[q] = q % cfg.Regions
		}
		return bank
	}
	g := partition.NewGraph(c.NumQubits)
	for _, gt := range c.Gates {
		if gt.Op.IsTwoQubit() {
			// Operands validated distinct by circuit validation.
			_ = g.AddEdge(gt.Qubits[0], gt.Qubits[1], 1)
		}
	}
	var rec func(vertices []int, base, parts int, seed int64)
	rec = func(vertices []int, base, parts int, seed int64) {
		if parts == 1 || len(vertices) == 0 {
			for _, v := range vertices {
				bank[v] = base
			}
			return
		}
		sub, mapping, err := g.InducedSubgraph(vertices)
		if err != nil {
			// Vertices come from our own recursion; cannot happen.
			panic(err)
		}
		side, _ := partition.Bisect(sub, partition.Options{Seed: seed})
		zero, one := partition.SideVertices(side)
		left := make([]int, len(zero))
		for i, v := range zero {
			left[i] = mapping[v]
		}
		right := make([]int, len(one))
		for i, v := range one {
			right[i] = mapping[v]
		}
		rec(left, base, parts/2, seed+1)
		rec(right, base+parts/2, parts/2, seed+2)
	}
	all := make([]int, c.NumQubits)
	for i := range all {
		all[i] = i
	}
	rec(all, 0, cfg.Regions, cfg.Seed)
	return bank
}

// scheduleTimestep packs ready ops into the k regions for one timestep
// and returns the scheduled op indices (valid until the next call). It
// mutates bank (qubit residency), appends the timestep's moves to
// sched, and stamps scheduledAt for every committed op. Steady-state
// allocation-free: all working sets live in the reused scratch.
func (st *schedState) scheduleTimestep(bank []int, timestep int, sched *Schedule) []int {
	st.stamp++
	stamp := st.stamp
	c, cfg := st.c, st.cfg

	// Group ready ops by opcode — a SIMD region broadcasts one operation
	// type per timestep. The ready slice is already in (height desc,
	// index asc) order, so each group inherits its priority order.
	st.groupList = st.groupList[:0]
	for _, i := range st.ready {
		op := c.Gates[i].Op
		if st.groupAt[op] != stamp {
			st.groupAt[op] = stamp
			st.groupOps[op] = st.groupOps[op][:0]
			st.groupList = append(st.groupList, op)
		}
		st.groupOps[op] = append(st.groupOps[op], i)
	}
	// Order groups by (max criticality desc, size desc, opcode asc).
	slices.SortFunc(st.groupList, func(a, b circuit.Opcode) int {
		if pa, pb := st.heights[st.groupOps[a][0]], st.heights[st.groupOps[b][0]]; pa != pb {
			if pa > pb {
				return -1
			}
			return 1
		}
		if la, lb := len(st.groupOps[a]), len(st.groupOps[b]); la != lb {
			if la > lb {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		return 1
	})

	// Region state for this timestep: a region is either unconfigured
	// or broadcasts one opcode; several regions may broadcast the same
	// opcode (each has its own control), which keeps clustered operands
	// at home.
	for r := 0; r < cfg.Regions; r++ {
		st.regionOp[r] = circuit.Nop
		st.regionLoad[r] = 0
	}
	st.scheduled = st.scheduled[:0]

	for _, op := range st.groupList {
		for _, i := range st.groupOps[op] {
			conflict := false
			for _, q := range c.Gates[i].Qubits {
				if st.engagedAt[q] == stamp {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			// Preference order: the operand-majority region, then any
			// region already broadcasting this opcode with spare width,
			// then any unconfigured region.
			for r := 0; r < cfg.Regions; r++ {
				st.counts[r] = 0
			}
			for _, q := range c.Gates[i].Qubits {
				st.counts[bank[q]]++
			}
			pref, best := 0, -1
			for r := 0; r < cfg.Regions; r++ {
				if st.counts[r] > best {
					pref, best = r, st.counts[r]
				}
			}
			if st.placeIn(i, pref, bank, timestep, sched) {
				continue
			}
			placed := false
			for r := 0; r < cfg.Regions && !placed; r++ {
				if r != pref && st.regionOp[r] == c.Gates[i].Op && st.regionLoad[r] < cfg.Width {
					placed = st.placeIn(i, r, bank, timestep, sched)
				}
			}
			for r := 0; r < cfg.Regions && !placed; r++ {
				if st.regionOp[r] == circuit.Nop {
					placed = st.placeIn(i, r, bank, timestep, sched)
				}
			}
		}
	}
	return st.scheduled
}

// placeIn tries to commit op i to region r.
func (st *schedState) placeIn(i, r int, bank []int, timestep int, sched *Schedule) bool {
	c := st.c
	if st.regionOp[r] == circuit.Nop {
		st.regionOp[r] = c.Gates[i].Op
	} else if st.regionOp[r] != c.Gates[i].Op || st.regionLoad[r] >= st.cfg.Width {
		return false
	}
	if st.regionLoad[r] >= st.cfg.Width {
		return false
	}
	st.regionLoad[r]++
	for _, q := range c.Gates[i].Qubits {
		st.engagedAt[q] = st.stamp
		if bank[q] != r {
			sched.Moves = append(sched.Moves, Move{
				Timestep: timestep, Qubit: q, From: bank[q], To: r,
			})
			sched.Teleports++
			bank[q] = r
		}
	}
	if c.Gates[i].Op.IsT() {
		sched.Moves = append(sched.Moves, Move{
			Timestep: timestep, Qubit: -1, From: MagicSource, To: r,
		})
		sched.MagicMoves++
	}
	st.scheduledAt[i] = st.stamp
	st.scheduled = append(st.scheduled, i)
	return true
}
