package simd

import (
	"fmt"
	"hash/fnv"
	"testing"

	"surfcomm/internal/apps"
)

// TestGoldenSchedules pins the Fig. 6 suite schedules bit-identically
// to the pre-refactor scheduler (the per-timestep map/sort
// implementation): the stamp-based scratch and batched-merge ready
// queue are pure mechanical changes, so every digest must hold exactly.
func TestGoldenSchedules(t *testing.T) {
	golden := map[string]struct {
		timesteps, ops, teleports, magic, crit int
		movesHash, homeHash                    uint64
	}{
		"GSE":   {1080, 1480, 70, 608, 1079, 0x1027d6176e50e547, 0xbfaf6bc5b6ddeed4},
		"SQ":    {412, 865, 366, 364, 412, 0x4e9c57db0e5bd85b, 0xc9efeb18f239e6f8},
		"SHA-1": {1670, 15749, 10902, 6608, 1670, 0xea35cf2155a81f6e, 0xafb2afd68cf2bc40},
		"IM":    {149, 4862, 398, 2032, 131, 0x17d5f0822ced76e2, 0xa7b4e9fa86cffd42},
	}
	for _, w := range apps.Fig6Suite() {
		want, ok := golden[w.Name]
		if !ok {
			t.Fatalf("no golden for suite app %s", w.Name)
		}
		sched, err := Run(w.Circuit, ConfigFor(w.Circuit.NumQubits, 1))
		if err != nil {
			t.Fatal(err)
		}
		if sched.Timesteps != want.timesteps || sched.Ops != want.ops ||
			sched.Teleports != want.teleports || sched.MagicMoves != want.magic ||
			sched.CriticalTimesteps != want.crit {
			t.Errorf("%s counters drifted: got (%d,%d,%d,%d,%d), want (%d,%d,%d,%d,%d)",
				w.Name, sched.Timesteps, sched.Ops, sched.Teleports, sched.MagicMoves,
				sched.CriticalTimesteps, want.timesteps, want.ops, want.teleports,
				want.magic, want.crit)
		}
		h := fnv.New64a()
		for _, m := range sched.Moves {
			fmt.Fprintf(h, "%d,%d,%d,%d;", m.Timestep, m.Qubit, m.From, m.To)
		}
		if got := h.Sum64(); got != want.movesHash {
			t.Errorf("%s move list drifted: hash %#x, want %#x", w.Name, got, want.movesHash)
		}
		hh := fnv.New64a()
		for _, b := range sched.HomeRegion {
			fmt.Fprintf(hh, "%d;", b)
		}
		if got := hh.Sum64(); got != want.homeHash {
			t.Errorf("%s home regions drifted: hash %#x, want %#x", w.Name, got, want.homeHash)
		}
	}
}
