package simd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
)

func run(t *testing.T, c *circuit.Circuit, cfg Config) *Schedule {
	t.Helper()
	s, err := Run(c, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	return s
}

func TestSerialChainOneOpPerTimestep(t *testing.T) {
	c := circuit.New("chain", 1)
	for i := 0; i < 8; i++ {
		c.Append(circuit.H, 0)
	}
	s := run(t, c, Config{Regions: 4, Width: 8})
	if s.Timesteps != 8 {
		t.Errorf("timesteps = %d, want 8", s.Timesteps)
	}
	if s.Teleports != 0 {
		t.Errorf("teleports = %d, want 0 (single qubit stays home)", s.Teleports)
	}
	if s.CriticalTimesteps != 8 {
		t.Errorf("critical = %d, want 8", s.CriticalTimesteps)
	}
}

func TestParallelSameTypePacksOneTimestep(t *testing.T) {
	c := circuit.New("wide", 8)
	for q := 0; q < 8; q++ {
		c.Append(circuit.H, q)
	}
	s := run(t, c, Config{Regions: 4, Width: 8})
	// All H ops are one type; one region runs up to 8 of them at once,
	// but operands live in 4 different banks: expect few timesteps and
	// some teleports, or one step per bank if region reuse is blocked.
	if s.Timesteps > 4 {
		t.Errorf("timesteps = %d, want <= 4", s.Timesteps)
	}
	if s.Ops != 8 {
		t.Errorf("ops = %d, want 8", s.Ops)
	}
}

func TestWidthLimitForcesExtraTimesteps(t *testing.T) {
	c := circuit.New("wide", 8)
	for q := 0; q < 8; q++ {
		c.Append(circuit.X, q)
	}
	narrow := run(t, c, Config{Regions: 1, Width: 2})
	if narrow.Timesteps < 4 {
		t.Errorf("width 2, 8 ops, 1 region: timesteps = %d, want >= 4", narrow.Timesteps)
	}
	wide := run(t, c, Config{Regions: 1, Width: 8})
	if wide.Timesteps != 1 {
		t.Errorf("width 8: timesteps = %d, want 1", wide.Timesteps)
	}
}

func TestRegionLimitSerializesTypes(t *testing.T) {
	// 4 distinct op types, 2 regions: at most 2 types per timestep.
	c := circuit.New("types", 4)
	c.Append(circuit.H, 0)
	c.Append(circuit.X, 1)
	c.Append(circuit.S, 2)
	c.Append(circuit.T, 3)
	s := run(t, c, Config{Regions: 2, Width: 8})
	if s.Timesteps != 2 {
		t.Errorf("timesteps = %d, want 2", s.Timesteps)
	}
}

func TestDependenciesRespected(t *testing.T) {
	c := circuit.New("dep", 2)
	c.Append(circuit.H, 0)
	c.Append(circuit.CNOT, 0, 1)
	c.Append(circuit.MeasZ, 1)
	s := run(t, c, Config{Regions: 4, Width: 4})
	if s.Timesteps != 3 {
		t.Errorf("timesteps = %d, want 3 (pure chain)", s.Timesteps)
	}
}

func TestTwoQubitOpColocatesOperands(t *testing.T) {
	// Qubits 0 and 1 in different home banks must generate exactly one
	// teleport for their CNOT.
	c := circuit.New("cnot", 2)
	c.Append(circuit.CNOT, 0, 1)
	s := run(t, c, Config{Regions: 2, Width: 4, NaiveBanks: true})
	if s.HomeRegion[0] == s.HomeRegion[1] {
		t.Fatal("naive banks should split consecutive qubits across regions")
	}
	if s.Teleports != 1 {
		t.Errorf("teleports = %d, want 1", s.Teleports)
	}
}

func TestMagicMovesPerTGate(t *testing.T) {
	c := circuit.New("t", 2)
	c.Append(circuit.T, 0)
	c.Append(circuit.Tdg, 1)
	c.Append(circuit.H, 0)
	s := run(t, c, Config{Regions: 4, Width: 4})
	if s.MagicMoves != 2 {
		t.Errorf("magic moves = %d, want 2", s.MagicMoves)
	}
	for _, m := range s.Moves {
		if m.From == MagicSource && m.Qubit != -1 {
			t.Error("magic moves should not name a data qubit")
		}
	}
}

func TestBarriersCostNothing(t *testing.T) {
	c := circuit.New("fence", 2)
	c.Append(circuit.H, 0)
	c.Append(circuit.Barrier, 0, 1)
	c.Append(circuit.H, 1)
	s := run(t, c, Config{Regions: 2, Width: 2})
	if s.Timesteps != 2 {
		t.Errorf("timesteps = %d, want 2 (barrier serializes but is free)", s.Timesteps)
	}
}

func TestLocalityPartitionReducesTeleports(t *testing.T) {
	// Two independent clusters interacting internally: locality banks
	// should produce far fewer teleports than naive round-robin.
	c := circuit.New("clusters", 8)
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 4; i += 2 {
			c.Append(circuit.CNOT, i, i+1)
			c.Append(circuit.CNOT, 4+i, 5+i)
		}
		c.Append(circuit.CNOT, 0, 2)
		c.Append(circuit.CNOT, 4, 6)
	}
	local := run(t, c, Config{Regions: 2, Width: 8, Seed: 1})
	naive := run(t, c, Config{Regions: 2, Width: 8, NaiveBanks: true})
	if local.Teleports >= naive.Teleports {
		t.Errorf("locality banks %d teleports should beat naive %d",
			local.Teleports, naive.Teleports)
	}
}

func TestConfigValidation(t *testing.T) {
	c := circuit.New("x", 1)
	c.Append(circuit.X, 0)
	if _, err := Run(c, Config{Regions: 3}); err == nil {
		t.Error("non-power-of-two regions should fail")
	}
	if _, err := Run(c, Config{Regions: 4, Width: -1}); err == nil {
		t.Error("negative width should fail")
	}
}

func TestAppSchedules(t *testing.T) {
	for _, w := range []apps.Workload{
		{Name: "GSE", Circuit: apps.GSE(apps.GSEConfig{M: 6, Steps: 1})},
		{Name: "IM", Circuit: apps.Ising(apps.IsingConfig{N: 16, Steps: 1}, true)},
	} {
		s := run(t, w.Circuit, Config{Regions: 4, Width: 16, Seed: 2})
		if s.Timesteps < s.CriticalTimesteps {
			t.Errorf("%s: timesteps %d below critical %d", w.Name, s.Timesteps, s.CriticalTimesteps)
		}
		if s.Ops != w.Circuit.Ops() {
			t.Errorf("%s: ops %d != circuit ops %d", w.Name, s.Ops, w.Circuit.Ops())
		}
	}
}

func TestMoveAccounting(t *testing.T) {
	c := apps.SQ(apps.SQConfig{N: 4, Iters: 1})
	s := run(t, c, Config{Regions: 4, Width: 8, Seed: 3})
	teleports, magic := 0, 0
	for _, m := range s.Moves {
		if m.From == MagicSource {
			magic++
			continue
		}
		teleports++
		if m.From == m.To {
			t.Error("teleport with identical endpoints")
		}
		if m.Timestep < 0 || m.Timestep >= s.Timesteps {
			t.Errorf("move timestep %d out of range", m.Timestep)
		}
	}
	if teleports != s.Teleports || magic != s.MagicMoves {
		t.Errorf("move list (%d,%d) disagrees with counters (%d,%d)",
			teleports, magic, s.Teleports, s.MagicMoves)
	}
	if magic != c.TCount() {
		t.Errorf("magic moves %d != T count %d", magic, c.TCount())
	}
}

// Property: every schedule retires all ops, meets the critical-path
// lower bound, and never exceeds resource limits per timestep.
func TestScheduleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		c := circuit.New("rand", n)
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Append(circuit.H, rng.Intn(n))
			case 1:
				c.Append(circuit.T, rng.Intn(n))
			case 2:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.Append(circuit.CNOT, a, b)
			}
		}
		cfg := Config{Regions: 1 << uint(rng.Intn(3)), Width: 1 + rng.Intn(6), Seed: seed}
		s, err := Run(c, cfg)
		if err != nil {
			return false
		}
		if s.Timesteps < s.CriticalTimesteps {
			return false
		}
		// Per-timestep resource check from the move list is indirect;
		// re-run the schedule invariants: ops counted once.
		return s.Ops == c.Ops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
