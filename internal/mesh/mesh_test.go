package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLinkNormalizes(t *testing.T) {
	a, b := Node{Row: 1, Col: 2}, Node{Row: 1, Col: 3}
	if NewLink(a, b) != NewLink(b, a) {
		t.Error("link normalization should make order irrelevant")
	}
	v1, v2 := Node{Row: 2, Col: 1}, Node{Row: 3, Col: 1}
	if NewLink(v2, v1).A != v1 {
		t.Error("vertical link should normalize to smaller row first")
	}
}

func TestPathValidate(t *testing.T) {
	good := Path{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	jump := Path{{Row: 0, Col: 0}, {Row: 0, Col: 2}}
	if err := jump.Validate(); err == nil {
		t.Error("non-adjacent step should fail")
	}
	revisit := Path{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 0, Col: 0}}
	if err := revisit.Validate(); err == nil {
		t.Error("revisit should fail")
	}
	if err := (Path{}).Validate(); err == nil {
		t.Error("empty path should fail")
	}
	single := Path{{Row: 0, Col: 0}}
	if err := single.Validate(); err != nil {
		t.Errorf("single-junction path should be valid: %v", err)
	}
}

func TestPathLinks(t *testing.T) {
	p := Path{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 1}}
	links := p.Links()
	if len(links) != 2 {
		t.Fatalf("links = %d, want 2", len(links))
	}
	if links[0] != NewLink(Node{Row: 0, Col: 0}, Node{Row: 0, Col: 1}) {
		t.Errorf("first link = %v", links[0])
	}
	if (Path{{Row: 0, Col: 0}}).Links() != nil {
		t.Error("single-node path has no links")
	}
}

func TestReserveRelease(t *testing.T) {
	m := New(4, 4)
	p := XYPath(Node{Row: 0, Col: 0}, Node{Row: 2, Col: 3})
	if err := m.Reserve(p, 7); err != nil {
		t.Fatal(err)
	}
	if m.NodeOwner(Node{Row: 0, Col: 0}) != 7 {
		t.Error("endpoint not owned after reserve")
	}
	if m.BusyLinks() != len(p.Links()) {
		t.Errorf("busy links = %d, want %d", m.BusyLinks(), len(p.Links()))
	}
	// Conflicting reservation must fail atomically.
	q := XYPath(Node{Row: 2, Col: 0}, Node{Row: 0, Col: 3}) // crosses p
	if err := m.Reserve(q, 8); err == nil {
		t.Fatal("crossing reservation should fail")
	}
	// Atomicity: nothing of q may be claimed.
	for _, n := range q {
		if o := m.NodeOwner(n); o != Free && o != 7 {
			t.Errorf("junction %v leaked owner %d", n, o)
		}
	}
	if err := m.Release(p, 7); err != nil {
		t.Fatal(err)
	}
	if m.BusyLinks() != 0 {
		t.Errorf("busy links after release = %d", m.BusyLinks())
	}
	if err := m.Reserve(q, 8); err != nil {
		t.Errorf("reservation after release should succeed: %v", err)
	}
}

func TestReserveRejectsBadOwner(t *testing.T) {
	m := New(2, 2)
	if err := m.Reserve(Path{{Row: 0, Col: 0}}, -1); err == nil {
		t.Error("negative owner should be rejected")
	}
}

func TestReleaseWrongOwnerFails(t *testing.T) {
	m := New(3, 3)
	p := XYPath(Node{Row: 0, Col: 0}, Node{Row: 0, Col: 2})
	if err := m.Reserve(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(p, 2); err == nil {
		t.Error("release by non-owner should fail")
	}
	if err := m.Release(XYPath(Node{Row: 2, Col: 0}, Node{Row: 2, Col: 2}), 1); err == nil {
		t.Error("release of unclaimed path should fail")
	}
}

func TestTwoBraidsCannotShareJunction(t *testing.T) {
	m := New(3, 3)
	// Path 1 passes through (1,1).
	if err := m.Reserve(Path{{Row: 1, Col: 0}, {Row: 1, Col: 1}}, 1); err != nil {
		t.Fatal(err)
	}
	// Path 2 would bend at (1,1) without sharing a link: still illegal.
	if err := m.Reserve(Path{{Row: 0, Col: 1}, {Row: 1, Col: 1}, {Row: 2, Col: 1}}, 2); err == nil {
		t.Error("junction sharing should be rejected (braids cannot cross)")
	}
}

func TestXYPathShape(t *testing.T) {
	p := XYPath(Node{Row: 0, Col: 0}, Node{Row: 2, Col: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p) != 6 {
		t.Errorf("XY path length = %d, want 6 (manhattan+1)", len(p))
	}
	// Horizontal leg first.
	if p[1] != (Node{Row: 0, Col: 1}) {
		t.Errorf("XY second hop = %v, want {0,1}", p[1])
	}
	if p[len(p)-1] != (Node{Row: 2, Col: 3}) {
		t.Error("XY path must end at destination")
	}
}

func TestYXPathShape(t *testing.T) {
	p := YXPath(Node{Row: 0, Col: 0}, Node{Row: 2, Col: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p[1] != (Node{Row: 1, Col: 0}) {
		t.Errorf("YX second hop = %v, want {1,0}", p[1])
	}
}

func TestPathsToSelf(t *testing.T) {
	for _, p := range []Path{XYPath(Node{Row: 1, Col: 1}, Node{Row: 1, Col: 1}), YXPath(Node{Row: 1, Col: 1}, Node{Row: 1, Col: 1})} {
		if len(p) != 1 {
			t.Errorf("self path length = %d, want 1", len(p))
		}
	}
}

func TestAdaptiveRouteFindsDetour(t *testing.T) {
	m := New(4, 4)
	// Wall across the middle rows at column 1, leaving row 3 open.
	if err := m.Reserve(Path{{Row: 0, Col: 1}, {Row: 1, Col: 1}, {Row: 2, Col: 1}}, 1); err != nil {
		t.Fatal(err)
	}
	p, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 0, Col: 3})
	if !ok {
		t.Fatal("detour should exist via row 3")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.PathFree(p) {
		t.Error("adaptive route must avoid reserved resources")
	}
	if p[0] != (Node{Row: 0, Col: 0}) || p[len(p)-1] != (Node{Row: 0, Col: 3}) {
		t.Error("route endpoints wrong")
	}
}

func TestAdaptiveRouteShortestWhenFree(t *testing.T) {
	m := New(5, 5)
	p, ok := m.AdaptiveRoute(Node{Row: 1, Col: 1}, Node{Row: 3, Col: 4})
	if !ok {
		t.Fatal("route should exist on empty mesh")
	}
	if len(p) != Manhattan(Node{Row: 1, Col: 1}, Node{Row: 3, Col: 4})+1 {
		t.Errorf("free-mesh adaptive route should be shortest: len %d", len(p))
	}
}

func TestAdaptiveRouteFailsWhenBlocked(t *testing.T) {
	m := New(3, 3)
	// Full wall down column 1.
	if err := m.Reserve(Path{{Row: 0, Col: 1}, {Row: 1, Col: 1}, {Row: 2, Col: 1}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AdaptiveRoute(Node{Row: 1, Col: 0}, Node{Row: 1, Col: 2}); ok {
		t.Error("no route should exist through a full wall")
	}
}

func TestAdaptiveRouteBusyEndpoint(t *testing.T) {
	m := New(3, 3)
	if err := m.Reserve(Path{{Row: 0, Col: 0}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 2, Col: 2}); ok {
		t.Error("busy source should not route")
	}
}

func TestUtilization(t *testing.T) {
	m := New(3, 3) // 3*2*2 = 12 links
	if m.TotalLinks() != 12 {
		t.Fatalf("total links = %d, want 12", m.TotalLinks())
	}
	if m.Utilization() != 0 {
		t.Error("fresh mesh should be idle")
	}
	if err := m.Reserve(Path{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 0, Col: 2}}, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Utilization(); got != 2.0/12.0 {
		t.Errorf("utilization = %v, want %v", got, 2.0/12.0)
	}
}

// Property: reserve/release round-trips leave the mesh exactly empty,
// and XY/YX paths are always valid with Manhattan+1 nodes.
func TestMeshQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(6), 2+rng.Intn(6)
		m := New(rows, cols)
		a := Node{Row: rng.Intn(rows), Col: rng.Intn(cols)}
		b := Node{Row: rng.Intn(rows), Col: rng.Intn(cols)}
		xy, yx := XYPath(a, b), YXPath(a, b)
		if xy.Validate() != nil || yx.Validate() != nil {
			return false
		}
		if len(xy) != Manhattan(a, b)+1 || len(yx) != Manhattan(a, b)+1 {
			return false
		}
		if err := m.Reserve(xy, 0); err != nil {
			return false
		}
		if err := m.Release(xy, 0); err != nil {
			return false
		}
		if m.BusyLinks() != 0 {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if m.NodeOwner(Node{Row: r, Col: c}) != Free {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
