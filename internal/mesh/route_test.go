package mesh

import (
	"math/rand"
	"testing"
)

// The adaptive router runs on reusable stamp-based scratch; these tests
// pin down its edge cases and prove the hot path is allocation-free and
// history-independent (reused scratch never changes an answer).

func TestAdaptiveRouteBlockedDestination(t *testing.T) {
	m := New(3, 3)
	if err := m.Reserve(Path{{Row: 2, Col: 2}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 2, Col: 2}); ok {
		t.Error("busy destination should not route")
	}
}

func TestAdaptiveRouteOutOfBounds(t *testing.T) {
	m := New(3, 3)
	if _, ok := m.AdaptiveRoute(Node{Row: -1, Col: 0}, Node{Row: 2, Col: 2}); ok {
		t.Error("out-of-bounds source should not route")
	}
	if _, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 3, Col: 0}); ok {
		t.Error("out-of-bounds destination should not route")
	}
}

func TestAdaptiveRouteSelf(t *testing.T) {
	m := New(2, 2)
	p, ok := m.AdaptiveRoute(Node{Row: 1, Col: 1}, Node{Row: 1, Col: 1})
	if !ok || len(p) != 1 || p[0] != (Node{Row: 1, Col: 1}) {
		t.Errorf("self route = %v ok=%v, want single-junction path", p, ok)
	}
}

func TestAdaptiveRouteNoCorridorMesh(t *testing.T) {
	// A 1×n strip: reserving any interior junction splits the mesh into
	// halves with no corridor between them.
	m := New(1, 5)
	if err := m.Reserve(Path{{Row: 0, Col: 2}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 0, Col: 4}); ok {
		t.Error("severed strip should not route")
	}
	// Endpoints on the same side still route.
	if _, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 0, Col: 1}); !ok {
		t.Error("same-side route should exist")
	}
}

func TestAdaptiveRouteBlockedLinkOnly(t *testing.T) {
	// Claim only the link (0,0)-(0,1) by reserving the two-junction path
	// then freeing... links cannot be claimed without junctions here, so
	// instead wall the direct corridor and require the detour to avoid a
	// free-junction/busy-link combination: reserve a path, release it,
	// and re-reserve a sub-path so stale scratch state would be visible.
	m := New(2, 2)
	wall := Path{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	if err := m.Reserve(wall, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(wall, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(Path{{Row: 0, Col: 1}}, 2); err != nil {
		t.Fatal(err)
	}
	p, ok := m.AdaptiveRoute(Node{Row: 0, Col: 0}, Node{Row: 1, Col: 1})
	if !ok {
		t.Fatal("detour via (1,0) should exist")
	}
	for _, n := range p {
		if n == (Node{Row: 0, Col: 1}) {
			t.Error("route crossed a claimed junction")
		}
	}
}

// TestAdaptiveRouteScratchReuse drives many searches over the same mesh
// with mutating reservation state and checks each answer against a
// fresh mesh with identical reservations: reused stamps, queues, and
// predecessor buffers must never leak state between calls.
func TestAdaptiveRouteScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := New(6, 6)
	var held []Path
	for iter := 0; iter < 200; iter++ {
		// Mutate: randomly reserve or release.
		if len(held) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(held))
			if err := m.Release(held[i], 7); err != nil {
				t.Fatal(err)
			}
			held = append(held[:i], held[i+1:]...)
		} else {
			a := Node{Row: rng.Intn(6), Col: rng.Intn(6)}
			b := Node{Row: rng.Intn(6), Col: rng.Intn(6)}
			p := XYPath(a, b)
			if m.PathFree(p) {
				if err := m.Reserve(p, 7); err != nil {
					t.Fatal(err)
				}
				held = append(held, p)
			}
		}
		// Probe: adaptive route on the reused mesh vs a pristine clone.
		src := Node{Row: rng.Intn(6), Col: rng.Intn(6)}
		dst := Node{Row: rng.Intn(6), Col: rng.Intn(6)}
		got, gotOK := m.AdaptiveRoute(src, dst)
		fresh := New(6, 6)
		for _, p := range held {
			if err := fresh.Reserve(p, 7); err != nil {
				t.Fatal(err)
			}
		}
		want, wantOK := fresh.AdaptiveRoute(src, dst)
		if gotOK != wantOK {
			t.Fatalf("iter %d: reused scratch ok=%v, fresh mesh ok=%v", iter, gotOK, wantOK)
		}
		if gotOK && len(got) != len(want) {
			t.Fatalf("iter %d: reused scratch path len %d, fresh %d", iter, len(got), len(want))
		}
		if gotOK {
			if err := got.Validate(); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if !m.PathFree(got) {
				t.Fatalf("iter %d: route crosses reserved resources", iter)
			}
		}
	}
}

func TestPathIntoVariantsMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make(Path, 0, 4) // deliberately small: must grow correctly
	for i := 0; i < 50; i++ {
		a := Node{Row: rng.Intn(7), Col: rng.Intn(7)}
		b := Node{Row: rng.Intn(7), Col: rng.Intn(7)}
		buf = XYPathInto(buf, a, b)
		if want := XYPath(a, b); !pathsEqual(buf, want) {
			t.Fatalf("XYPathInto %v->%v = %v, want %v", a, b, buf, want)
		}
		buf = YXPathInto(buf, a, b)
		if want := YXPath(a, b); !pathsEqual(buf, want) {
			t.Fatalf("YXPathInto %v->%v = %v, want %v", a, b, buf, want)
		}
	}
}

func pathsEqual(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The braid engine routes on every placement attempt; once the scratch
// and destination buffers are warm, the whole reserve/route/release
// cycle must not allocate.
func TestRoutingHotPathAllocationFree(t *testing.T) {
	m := New(8, 8)
	wall := Path{{Row: 0, Col: 3}, {Row: 1, Col: 3}, {Row: 2, Col: 3}, {Row: 3, Col: 3}, {Row: 4, Col: 3}, {Row: 5, Col: 3}}
	if err := m.Reserve(wall, 1); err != nil {
		t.Fatal(err)
	}
	dst := make(Path, 0, 64)
	xy := make(Path, 0, 64)
	// Warm the scratch.
	if _, ok := m.AdaptiveRouteInto(dst, Node{Row: 2, Col: 0}, Node{Row: 2, Col: 7}); !ok {
		t.Fatal("detour should exist under the wall")
	}
	allocs := testing.AllocsPerRun(100, func() {
		xy = XYPathInto(xy, Node{Row: 2, Col: 0}, Node{Row: 2, Col: 7})
		if m.PathFree(xy) {
			t.Fatal("direct path should be blocked by the wall")
		}
		p, ok := m.AdaptiveRouteInto(dst, Node{Row: 2, Col: 0}, Node{Row: 2, Col: 7})
		if !ok {
			t.Fatal("adaptive route vanished")
		}
		if err := m.Reserve(p, 2); err != nil {
			t.Fatal(err)
		}
		if err := m.Release(p, 2); err != nil {
			t.Fatal(err)
		}
		dst = p
	})
	if allocs != 0 {
		t.Errorf("routing hot path allocates %.1f times per cycle, want 0", allocs)
	}
}
