package mesh

import (
	"math/rand"
	"testing"

	"surfcomm/internal/device"
)

// refShortest is an independent BFS over the masked, reservation-free
// mesh: the oracle the stamp-scratch fallback is checked against.
func refShortest(m *Mesh, topo *device.Topology, a, b Node) (int, bool) {
	if topo.TileDead(a) || topo.TileDead(b) {
		return 0, false
	}
	dist := make(map[Node]int)
	dist[a] = 0
	queue := []Node{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			return dist[cur], true
		}
		for _, d := range []Node{{Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 0, Col: -1}, {Row: -1, Col: 0}} {
			next := Node{Row: cur.Row + d.Row, Col: cur.Col + d.Col}
			if !m.InBounds(next) || topo.TileDead(next) || topo.LinkDisabled(cur, next) {
				continue
			}
			if _, seen := dist[next]; seen {
				continue
			}
			dist[next] = dist[cur] + 1
			queue = append(queue, next)
		}
	}
	return 0, false
}

// TestMaskedBFSFallbackProperty is the random-yield routing property
// test: on many realized defective devices, for random endpoint pairs,
// the BFS fallback (a) succeeds exactly when a path exists, (b) returns
// a valid self-avoiding path that never enters a dead junction or
// crosses a disabled link, and (c) is minimal — the same length as an
// independent shortest-path oracle.
func TestMaskedBFSFallbackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		rows, cols := 4+rng.Intn(6), 4+rng.Intn(6)
		frac := 0.05 + 0.25*rng.Float64()
		dev := device.RandomYield(frac, rng.Int63())
		topo := dev.Instance(rows, cols)
		m := New(rows, cols)
		if err := m.ApplyTopology(topo); err != nil {
			t.Fatal(err)
		}
		var buf Path
		for pair := 0; pair < 20; pair++ {
			a := Node{Row: rng.Intn(rows), Col: rng.Intn(cols)}
			b := Node{Row: rng.Intn(rows), Col: rng.Intn(cols)}
			if a == b {
				continue
			}
			want, feasible := refShortest(m, topo, a, b)
			var got Path
			var ok bool
			got, ok = m.AdaptiveRouteInto(buf, a, b)
			buf = got
			if ok != feasible {
				t.Fatalf("trial %d: route %v->%v ok=%v, oracle feasible=%v (frac=%.2f)",
					trial, a, b, ok, feasible, frac)
			}
			if !ok {
				continue
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: invalid path: %v", trial, err)
			}
			if got[0] != a || got[len(got)-1] != b {
				t.Fatalf("trial %d: path endpoints %v..%v, want %v..%v", trial, got[0], got[len(got)-1], a, b)
			}
			for i, n := range got {
				if topo.TileDead(n) {
					t.Fatalf("trial %d: path enters dead junction %v", trial, n)
				}
				if i > 0 && topo.LinkDisabled(got[i-1], n) {
					t.Fatalf("trial %d: path crosses disabled link %v-%v", trial, got[i-1], n)
				}
			}
			if len(got)-1 != want {
				t.Fatalf("trial %d: path length %d, oracle shortest %d", trial, len(got)-1, want)
			}
		}
	}
}

// TestMaskBlockedEscalation checks PathBlockedByMask distinguishes
// permanent mask obstructions from transient reservations.
func TestMaskedPathChecks(t *testing.T) {
	topo := device.NewTopology(4, 4)
	topo.DisableLink(Node{Row: 0, Col: 1}, Node{Row: 0, Col: 2})
	m := New(4, 4)
	if err := m.ApplyTopology(topo); err != nil {
		t.Fatal(err)
	}
	if !m.Masked() {
		t.Fatal("mesh not masked")
	}
	xy := XYPath(Node{Row: 0, Col: 0}, Node{Row: 0, Col: 3})
	if m.PathFree(xy) {
		t.Fatal("path across disabled link reported free")
	}
	if !m.PathBlockedByMask(xy) {
		t.Fatal("disabled link not reported as mask obstruction")
	}
	detour := Path{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 1, Col: 1}, {Row: 1, Col: 2}, {Row: 1, Col: 3}, {Row: 0, Col: 3}}
	if !m.PathFree(detour) {
		t.Fatal("detour path should be free")
	}
	if m.PathBlockedByMask(detour) {
		t.Fatal("detour reported mask-blocked")
	}
	if err := m.Reserve(detour, 1); err != nil {
		t.Fatal(err)
	}
	if m.PathBlockedByMask(detour) {
		t.Fatal("reservation must not count as mask obstruction")
	}
	// Reserving across the mask must fail without side effects.
	if err := m.Release(detour, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(xy, 2); err == nil {
		t.Fatal("reserve across disabled link succeeded")
	}
	if m.BusyLinks() != 0 {
		t.Fatalf("failed reserve left %d busy links", m.BusyLinks())
	}
}

// TestPerfectTopologyNoMask asserts applying a defect-free topology
// leaves the mesh on the unmasked fast path.
func TestPerfectTopologyNoMask(t *testing.T) {
	m := New(5, 5)
	if err := m.ApplyTopology(device.Perfect().Instance(5, 5)); err != nil {
		t.Fatal(err)
	}
	if m.Masked() {
		t.Fatal("perfect topology masked the mesh")
	}
}

// TestApplyTopologyDimsMismatch asserts dimension mismatches are
// rejected.
func TestApplyTopologyDimsMismatch(t *testing.T) {
	topo := device.NewTopology(3, 3)
	topo.DisableTile(Node{Row: 0, Col: 0})
	if err := New(4, 4).ApplyTopology(topo); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

// BenchmarkMaskedBFSFallback measures the stamp-scratch BFS fallback on
// a defective mesh — the defect-detour hot path of the braid router. It
// must stay allocation-free in steady state (the bench-smoke CI job
// watches allocs/op).
func BenchmarkMaskedBFSFallback(b *testing.B) {
	const rows, cols = 24, 24
	topo := device.RandomYield(0.08, 5).Instance(rows, cols)
	m := New(rows, cols)
	if err := m.ApplyTopology(topo); err != nil {
		b.Fatal(err)
	}
	// Deterministic corner-to-corner pairs that exercise long detours.
	pairs := [][2]Node{}
	comps := topo.Components()
	for r := 0; r < rows; r += 3 {
		a := Node{Row: r, Col: 0}
		c := Node{Row: rows - 1 - r, Col: cols - 1}
		if comps[r*cols] >= 0 && comps[r*cols] == comps[(rows-1-r)*cols+cols-1] {
			pairs = append(pairs, [2]Node{a, c})
		}
	}
	if len(pairs) == 0 {
		b.Fatal("no routable benchmark pairs — adjust seed")
	}
	var buf Path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		var ok bool
		buf, ok = m.AdaptiveRouteInto(buf, p[0], p[1])
		if !ok {
			b.Fatal("routable pair failed")
		}
	}
}
