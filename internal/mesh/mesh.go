// Package mesh implements the circuit-switched two-dimensional channel
// network of the tiled double-defect architecture (paper §6.1, Fig. 5).
// Junctions sit at tile corners ("the tile corners are routers");
// channel segments between adjacent junctions are links. A braid claims
// an entire path — every link and junction along it — atomically when
// it opens and holds the claim until it closes: braids cannot cross,
// cannot be buffered, and cannot share channels (no virtual channels).
//
// The package is purely spatial: reservation state, path validity, and
// route search. Time (cycles, braid lifetimes, priorities) belongs to
// the braid package.
package mesh

import (
	"fmt"

	"surfcomm/internal/device"
)

// Node is a junction at a tile corner. It is the shared grid coordinate
// of the device layer, so junctions, tiles, and regions interconvert
// without copying.
type Node = device.Coord

// Link is an undirected channel segment between two adjacent junctions,
// stored in normalized order (A before B row-major).
type Link struct {
	A, B Node
}

// NewLink normalizes the endpoint order.
func NewLink(a, b Node) Link {
	if b.Row < a.Row || (b.Row == a.Row && b.Col < a.Col) {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// adjacent reports whether two junctions are one channel segment apart.
func adjacent(a, b Node) bool { return device.Adjacent(a, b) }

// Manhattan returns the junction-grid L1 distance.
func Manhattan(a, b Node) int { return device.Manhattan(a, b) }

// Path is a junction sequence; consecutive entries must be adjacent and
// no junction may repeat.
type Path []Node

// Validate checks contiguity and self-avoidance.
func (p Path) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("mesh: empty path")
	}
	seen := make(map[Node]bool, len(p))
	for i, n := range p {
		if seen[n] {
			return fmt.Errorf("mesh: path revisits junction %v", n)
		}
		seen[n] = true
		if i > 0 && !adjacent(p[i-1], n) {
			return fmt.Errorf("mesh: path jump %v -> %v", p[i-1], n)
		}
	}
	return nil
}

// Links returns the path's channel segments.
func (p Path) Links() []Link {
	if len(p) < 2 {
		return nil
	}
	out := make([]Link, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = NewLink(p[i-1], p[i])
	}
	return out
}

// Free is the owner value of unclaimed resources.
const Free = -1

// Mesh is the reservation state of a rows×cols junction grid.
//
// A Mesh also owns reusable route-search scratch (visit stamps, BFS
// predecessor and queue buffers) so AdaptiveRoute and path validation
// are allocation-free in steady state. The scratch makes a Mesh safe
// for one goroutine at a time; concurrent simulations each use their
// own Mesh.
type Mesh struct {
	rows, cols int
	nodeOwner  []int
	linkOwnerH []int // horizontal links: (r,c)-(r,c+1), rows×(cols-1)
	linkOwnerV []int // vertical links: (r,c)-(r+1,c), (rows-1)×cols
	busyLinks  int

	// Device mask (inactive on a perfect device): dead junctions and
	// disabled links are permanently unusable, independent of the
	// reservation state. The mask is one bool test per resource on the
	// hot path, so the perfect-device fast path stays allocation-free
	// and bit-identical.
	masked   bool
	topo     *device.Topology
	deadNode []bool
	maskH    []bool
	maskV    []bool

	// Route/validation scratch, grown once on first use. visitedAt is
	// stamp-based so clearing between searches is O(1): a node is
	// visited iff visitedAt[i] == stamp.
	stamp     int64
	visitedAt []int64
	bfsPrev   []int32 // predecessor node index during BFS
	bfsQueue  []int32
}

// New returns an empty mesh with the given junction-grid dimensions.
func New(rows, cols int) *Mesh {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", rows, cols))
	}
	m := &Mesh{
		rows:       rows,
		cols:       cols,
		nodeOwner:  make([]int, rows*cols),
		linkOwnerH: make([]int, rows*(cols-1)),
		linkOwnerV: make([]int, (rows-1)*cols),
	}
	for i := range m.nodeOwner {
		m.nodeOwner[i] = Free
	}
	for i := range m.linkOwnerH {
		m.linkOwnerH[i] = Free
	}
	for i := range m.linkOwnerV {
		m.linkOwnerV[i] = Free
	}
	return m
}

// Rows returns the junction-grid row count.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the junction-grid column count.
func (m *Mesh) Cols() int { return m.cols }

// InBounds reports whether the junction exists.
func (m *Mesh) InBounds(n Node) bool {
	return n.Row >= 0 && n.Row < m.rows && n.Col >= 0 && n.Col < m.cols
}

func (m *Mesh) nodeIndex(n Node) int { return n.Row*m.cols + n.Col }

// linkIndex resolves a link to its storage slot; ok=false if the link
// is outside the mesh.
func (m *Mesh) linkIndex(l Link) (horizontal bool, idx int, ok bool) {
	if !m.InBounds(l.A) || !m.InBounds(l.B) || !adjacent(l.A, l.B) {
		return false, 0, false
	}
	if l.A.Row == l.B.Row {
		return true, l.A.Row*(m.cols-1) + min(l.A.Col, l.B.Col), true
	}
	return false, min(l.A.Row, l.B.Row)*m.cols + l.A.Col, true
}

// linkOwner returns a pointer to the owner slot of a link, or nil if the
// link is outside the mesh.
func (m *Mesh) linkOwner(l Link) *int {
	h, i, ok := m.linkIndex(l)
	if !ok {
		return nil
	}
	if h {
		return &m.linkOwnerH[i]
	}
	return &m.linkOwnerV[i]
}

// linkMasked reports whether a link is disabled by the device mask.
func (m *Mesh) linkMasked(l Link) bool {
	if !m.masked {
		return false
	}
	h, i, ok := m.linkIndex(l)
	if !ok {
		return false
	}
	if h {
		return m.maskH[i]
	}
	return m.maskV[i]
}

// ApplyTopology masks the mesh with a device topology at junction dims:
// dead cells become unusable junctions, disabled links unusable
// channels. The topology is retained for link-weight queries. Applying
// a perfect (non-degraded) topology leaves the mesh unmasked, so the
// ideal-grid behavior is bit-identical.
func (m *Mesh) ApplyTopology(t *device.Topology) error {
	if t == nil {
		// Nil means perfect everywhere in the device layer: drop any
		// previously applied mask.
		m.masked = false
		m.topo = nil
		m.deadNode, m.maskH, m.maskV = nil, nil, nil
		return nil
	}
	if t.Rows() != m.rows || t.Cols() != m.cols {
		return fmt.Errorf("mesh: topology dims %dx%d do not match junction grid %dx%d",
			t.Rows(), t.Cols(), m.rows, m.cols)
	}
	if !t.Degraded() {
		// Clear any previously applied mask: the mesh is now perfect.
		m.masked = false
		m.topo = nil
		m.deadNode, m.maskH, m.maskV = nil, nil, nil
		return nil
	}
	m.masked = true
	m.topo = t
	m.deadNode = make([]bool, m.rows*m.cols)
	m.maskH = make([]bool, len(m.linkOwnerH))
	m.maskV = make([]bool, len(m.linkOwnerV))
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			n := Node{Row: r, Col: c}
			if t.TileDead(n) {
				m.deadNode[m.nodeIndex(n)] = true
			}
			if c+1 < m.cols && t.LinkDisabled(n, Node{Row: r, Col: c + 1}) {
				m.maskH[r*(m.cols-1)+c] = true
			}
			if r+1 < m.rows && t.LinkDisabled(n, Node{Row: r + 1, Col: c}) {
				m.maskV[r*m.cols+c] = true
			}
		}
	}
	return nil
}

// Masked reports whether a device mask is active.
func (m *Mesh) Masked() bool { return m.masked }

// NodeMasked reports whether the junction is disabled by the device
// mask (out-of-bounds junctions count as masked).
func (m *Mesh) NodeMasked(n Node) bool {
	if !m.masked {
		return false
	}
	if !m.InBounds(n) {
		return true
	}
	return m.deadNode[m.nodeIndex(n)]
}

// PathBlockedByMask reports whether the path crosses a masked junction
// or link — a permanent obstruction, as opposed to a transient
// reservation. The braid router uses it to escalate straight to the BFS
// fallback instead of waiting out the congestion timeout.
func (m *Mesh) PathBlockedByMask(p Path) bool {
	if !m.masked {
		return false
	}
	for i, n := range p {
		if m.NodeMasked(n) {
			return true
		}
		if i > 0 && m.linkMasked(NewLink(p[i-1], n)) {
			return true
		}
	}
	return false
}

// PathMaxWeight returns the largest device link-latency multiplier
// along the path (1 on a perfect device).
func (m *Mesh) PathMaxWeight(p Path) float64 {
	if m.topo == nil {
		return 1
	}
	w := 1.0
	for i := 1; i < len(p); i++ {
		if lw := m.topo.LinkWeight(p[i-1], p[i]); lw > w {
			w = lw
		}
	}
	return w
}

// Calibrated reports whether the applied topology carries a calibration
// overlay — the flag that switches consumers from worst-link to
// per-traversed-link pricing.
func (m *Mesh) Calibrated() bool { return m.topo != nil && m.topo.Calibrated() }

// PathCost prices a path per traversed link under the applied
// calibration: Σ weight·(1+gateError) over the path's links — the
// generalization of the scalar PathMaxWeight to heterogeneous fabrics.
// Slow couplers cost their latency multiplier, error-prone couplers an
// additional fidelity penalty, so minimum-cost route selection prefers
// fast, clean corridors. On an uncalibrated mesh every link costs 1 and
// PathCost degenerates to the hop count.
func (m *Mesh) PathCost(p Path) float64 {
	if len(p) < 2 {
		return 0
	}
	if m.topo == nil {
		return float64(len(p) - 1)
	}
	cost := 0.0
	for i := 1; i < len(p); i++ {
		cost += m.topo.LinkWeight(p[i-1], p[i]) * (1 + m.topo.LinkErrorRate(p[i-1], p[i]))
	}
	return cost
}

// MaskLink disables one link at runtime — a coupler death from a
// live-defect schedule. Unlike ApplyTopology it composes with the
// current mask (or creates one on a previously perfect mesh) without
// touching reservation state: a braid currently holding the link keeps
// its claim until the engine tears it down and re-routes. Out-of-mesh
// links are ignored.
func (m *Mesh) MaskLink(a, b Node) {
	h, i, ok := m.linkIndex(NewLink(a, b))
	if !ok {
		return
	}
	if !m.masked {
		m.masked = true
		if m.deadNode == nil {
			m.deadNode = make([]bool, m.rows*m.cols)
		}
		if m.maskH == nil {
			m.maskH = make([]bool, len(m.linkOwnerH))
			m.maskV = make([]bool, len(m.linkOwnerV))
		}
	}
	if h {
		m.maskH[i] = true
	} else {
		m.maskV[i] = true
	}
}

// LinkMasked reports whether the link between two adjacent junctions is
// disabled by the device mask or a runtime MaskLink.
func (m *Mesh) LinkMasked(a, b Node) bool {
	return m.linkMasked(NewLink(a, b))
}

// NodeOwner returns the claim owner of a junction (Free if unclaimed).
func (m *Mesh) NodeOwner(n Node) int {
	if !m.InBounds(n) {
		return Free
	}
	return m.nodeOwner[m.nodeIndex(n)]
}

// LinkOwner returns the claim owner of a link (Free if unclaimed).
func (m *Mesh) LinkOwner(l Link) int {
	p := m.linkOwner(l)
	if p == nil {
		return Free
	}
	return *p
}

// PathFree reports whether every junction and link along the path is
// unclaimed and inside the mesh. Links are walked in place — no
// intermediate slice — so the check never allocates.
func (m *Mesh) PathFree(p Path) bool {
	for i, n := range p {
		if !m.InBounds(n) || m.nodeOwner[m.nodeIndex(n)] != Free {
			return false
		}
		if m.masked && m.deadNode[m.nodeIndex(n)] {
			return false
		}
		if i > 0 {
			l := NewLink(p[i-1], n)
			if o := m.linkOwner(l); o == nil || *o != Free {
				return false
			}
			if m.linkMasked(l) {
				return false
			}
		}
	}
	return true
}

// checkPath is the allocation-free Reserve precondition: contiguity,
// self-avoidance (stamp-marked, not map-based), bounds, and freeness in
// a single pass.
func (m *Mesh) checkPath(p Path) error {
	if len(p) == 0 {
		return fmt.Errorf("mesh: empty path")
	}
	m.growScratch()
	m.stamp++
	for i, n := range p {
		if !m.InBounds(n) {
			return fmt.Errorf("mesh: path not free")
		}
		ni := m.nodeIndex(n)
		if m.visitedAt[ni] == m.stamp {
			return fmt.Errorf("mesh: path revisits junction %v", n)
		}
		m.visitedAt[ni] = m.stamp
		if m.nodeOwner[ni] != Free || (m.masked && m.deadNode[ni]) {
			return fmt.Errorf("mesh: path not free")
		}
		if i > 0 {
			if !adjacent(p[i-1], n) {
				return fmt.Errorf("mesh: path jump %v -> %v", p[i-1], n)
			}
			l := NewLink(p[i-1], n)
			if *m.linkOwner(l) != Free || m.linkMasked(l) {
				return fmt.Errorf("mesh: path not free")
			}
		}
	}
	return nil
}

// Reserve atomically claims the whole path for the owner. It fails
// without side effects if any resource is taken (braids claim all-or-
// nothing: a partial braid is physically meaningless). Owner must be a
// non-negative id.
func (m *Mesh) Reserve(p Path, owner int) error {
	if owner < 0 {
		return fmt.Errorf("mesh: owner must be non-negative, got %d", owner)
	}
	if err := m.checkPath(p); err != nil {
		return err
	}
	for i, n := range p {
		m.nodeOwner[m.nodeIndex(n)] = owner
		if i > 0 {
			*m.linkOwner(NewLink(p[i-1], n)) = owner
		}
	}
	m.busyLinks += len(p) - 1
	return nil
}

// Release frees a path previously claimed by owner. Ownership is
// verified on every resource; a mismatch means engine corruption and is
// reported rather than silently absorbed.
func (m *Mesh) Release(p Path, owner int) error {
	if len(p) == 0 {
		return fmt.Errorf("mesh: empty path")
	}
	for i, n := range p {
		if !m.InBounds(n) || m.nodeOwner[m.nodeIndex(n)] != owner {
			return fmt.Errorf("mesh: junction %v not owned by %d", n, owner)
		}
		if i > 0 {
			if o := m.linkOwner(NewLink(p[i-1], n)); o == nil || *o != owner {
				return fmt.Errorf("mesh: link %v not owned by %d", NewLink(p[i-1], n), owner)
			}
		}
	}
	for i, n := range p {
		m.nodeOwner[m.nodeIndex(n)] = Free
		if i > 0 {
			*m.linkOwner(NewLink(p[i-1], n)) = Free
		}
	}
	m.busyLinks -= len(p) - 1
	return nil
}

// BusyLinks returns the number of currently claimed links.
func (m *Mesh) BusyLinks() int { return m.busyLinks }

// TotalLinks returns the link count of the mesh.
func (m *Mesh) TotalLinks() int { return len(m.linkOwnerH) + len(m.linkOwnerV) }

// Utilization returns the fraction of links currently claimed.
func (m *Mesh) Utilization() float64 {
	if m.TotalLinks() == 0 {
		return 0
	}
	return float64(m.busyLinks) / float64(m.TotalLinks())
}

// growScratch sizes the route-search scratch to the mesh (once).
func (m *Mesh) growScratch() {
	if n := m.rows * m.cols; len(m.visitedAt) < n {
		m.visitedAt = make([]int64, n)
		m.bfsPrev = make([]int32, n)
		m.bfsQueue = make([]int32, 0, n)
	}
}
