// Package mesh implements the circuit-switched two-dimensional channel
// network of the tiled double-defect architecture (paper §6.1, Fig. 5).
// Junctions sit at tile corners ("the tile corners are routers");
// channel segments between adjacent junctions are links. A braid claims
// an entire path — every link and junction along it — atomically when
// it opens and holds the claim until it closes: braids cannot cross,
// cannot be buffered, and cannot share channels (no virtual channels).
//
// The package is purely spatial: reservation state, path validity, and
// route search. Time (cycles, braid lifetimes, priorities) belongs to
// the braid package.
package mesh

import "fmt"

// Node is a junction at a tile corner.
type Node struct {
	Row, Col int
}

// Link is an undirected channel segment between two adjacent junctions,
// stored in normalized order (A before B row-major).
type Link struct {
	A, B Node
}

// NewLink normalizes the endpoint order.
func NewLink(a, b Node) Link {
	if b.Row < a.Row || (b.Row == a.Row && b.Col < a.Col) {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// adjacent reports whether two junctions are one channel segment apart.
func adjacent(a, b Node) bool {
	dr := a.Row - b.Row
	if dr < 0 {
		dr = -dr
	}
	dc := a.Col - b.Col
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}

// Manhattan returns the junction-grid L1 distance.
func Manhattan(a, b Node) int {
	dr := a.Row - b.Row
	if dr < 0 {
		dr = -dr
	}
	dc := a.Col - b.Col
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Path is a junction sequence; consecutive entries must be adjacent and
// no junction may repeat.
type Path []Node

// Validate checks contiguity and self-avoidance.
func (p Path) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("mesh: empty path")
	}
	seen := make(map[Node]bool, len(p))
	for i, n := range p {
		if seen[n] {
			return fmt.Errorf("mesh: path revisits junction %v", n)
		}
		seen[n] = true
		if i > 0 && !adjacent(p[i-1], n) {
			return fmt.Errorf("mesh: path jump %v -> %v", p[i-1], n)
		}
	}
	return nil
}

// Links returns the path's channel segments.
func (p Path) Links() []Link {
	if len(p) < 2 {
		return nil
	}
	out := make([]Link, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = NewLink(p[i-1], p[i])
	}
	return out
}

// Free is the owner value of unclaimed resources.
const Free = -1

// Mesh is the reservation state of a rows×cols junction grid.
//
// A Mesh also owns reusable route-search scratch (visit stamps, BFS
// predecessor and queue buffers) so AdaptiveRoute and path validation
// are allocation-free in steady state. The scratch makes a Mesh safe
// for one goroutine at a time; concurrent simulations each use their
// own Mesh.
type Mesh struct {
	rows, cols int
	nodeOwner  []int
	linkOwnerH []int // horizontal links: (r,c)-(r,c+1), rows×(cols-1)
	linkOwnerV []int // vertical links: (r,c)-(r+1,c), (rows-1)×cols
	busyLinks  int

	// Route/validation scratch, grown once on first use. visitedAt is
	// stamp-based so clearing between searches is O(1): a node is
	// visited iff visitedAt[i] == stamp.
	stamp     int64
	visitedAt []int64
	bfsPrev   []int32 // predecessor node index during BFS
	bfsQueue  []int32
}

// New returns an empty mesh with the given junction-grid dimensions.
func New(rows, cols int) *Mesh {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", rows, cols))
	}
	m := &Mesh{
		rows:       rows,
		cols:       cols,
		nodeOwner:  make([]int, rows*cols),
		linkOwnerH: make([]int, rows*(cols-1)),
		linkOwnerV: make([]int, (rows-1)*cols),
	}
	for i := range m.nodeOwner {
		m.nodeOwner[i] = Free
	}
	for i := range m.linkOwnerH {
		m.linkOwnerH[i] = Free
	}
	for i := range m.linkOwnerV {
		m.linkOwnerV[i] = Free
	}
	return m
}

// Rows returns the junction-grid row count.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the junction-grid column count.
func (m *Mesh) Cols() int { return m.cols }

// InBounds reports whether the junction exists.
func (m *Mesh) InBounds(n Node) bool {
	return n.Row >= 0 && n.Row < m.rows && n.Col >= 0 && n.Col < m.cols
}

func (m *Mesh) nodeIndex(n Node) int { return n.Row*m.cols + n.Col }

// linkOwner returns a pointer to the owner slot of a link, or nil if the
// link is outside the mesh.
func (m *Mesh) linkOwner(l Link) *int {
	if !m.InBounds(l.A) || !m.InBounds(l.B) || !adjacent(l.A, l.B) {
		return nil
	}
	if l.A.Row == l.B.Row { // horizontal
		return &m.linkOwnerH[l.A.Row*(m.cols-1)+min(l.A.Col, l.B.Col)]
	}
	return &m.linkOwnerV[min(l.A.Row, l.B.Row)*m.cols+l.A.Col]
}

// NodeOwner returns the claim owner of a junction (Free if unclaimed).
func (m *Mesh) NodeOwner(n Node) int {
	if !m.InBounds(n) {
		return Free
	}
	return m.nodeOwner[m.nodeIndex(n)]
}

// LinkOwner returns the claim owner of a link (Free if unclaimed).
func (m *Mesh) LinkOwner(l Link) int {
	p := m.linkOwner(l)
	if p == nil {
		return Free
	}
	return *p
}

// PathFree reports whether every junction and link along the path is
// unclaimed and inside the mesh. Links are walked in place — no
// intermediate slice — so the check never allocates.
func (m *Mesh) PathFree(p Path) bool {
	for i, n := range p {
		if !m.InBounds(n) || m.nodeOwner[m.nodeIndex(n)] != Free {
			return false
		}
		if i > 0 {
			if o := m.linkOwner(NewLink(p[i-1], n)); o == nil || *o != Free {
				return false
			}
		}
	}
	return true
}

// checkPath is the allocation-free Reserve precondition: contiguity,
// self-avoidance (stamp-marked, not map-based), bounds, and freeness in
// a single pass.
func (m *Mesh) checkPath(p Path) error {
	if len(p) == 0 {
		return fmt.Errorf("mesh: empty path")
	}
	m.growScratch()
	m.stamp++
	for i, n := range p {
		if !m.InBounds(n) {
			return fmt.Errorf("mesh: path not free")
		}
		ni := m.nodeIndex(n)
		if m.visitedAt[ni] == m.stamp {
			return fmt.Errorf("mesh: path revisits junction %v", n)
		}
		m.visitedAt[ni] = m.stamp
		if m.nodeOwner[ni] != Free {
			return fmt.Errorf("mesh: path not free")
		}
		if i > 0 {
			if !adjacent(p[i-1], n) {
				return fmt.Errorf("mesh: path jump %v -> %v", p[i-1], n)
			}
			if *m.linkOwner(NewLink(p[i-1], n)) != Free {
				return fmt.Errorf("mesh: path not free")
			}
		}
	}
	return nil
}

// Reserve atomically claims the whole path for the owner. It fails
// without side effects if any resource is taken (braids claim all-or-
// nothing: a partial braid is physically meaningless). Owner must be a
// non-negative id.
func (m *Mesh) Reserve(p Path, owner int) error {
	if owner < 0 {
		return fmt.Errorf("mesh: owner must be non-negative, got %d", owner)
	}
	if err := m.checkPath(p); err != nil {
		return err
	}
	for i, n := range p {
		m.nodeOwner[m.nodeIndex(n)] = owner
		if i > 0 {
			*m.linkOwner(NewLink(p[i-1], n)) = owner
		}
	}
	m.busyLinks += len(p) - 1
	return nil
}

// Release frees a path previously claimed by owner. Ownership is
// verified on every resource; a mismatch means engine corruption and is
// reported rather than silently absorbed.
func (m *Mesh) Release(p Path, owner int) error {
	if len(p) == 0 {
		return fmt.Errorf("mesh: empty path")
	}
	for i, n := range p {
		if !m.InBounds(n) || m.nodeOwner[m.nodeIndex(n)] != owner {
			return fmt.Errorf("mesh: junction %v not owned by %d", n, owner)
		}
		if i > 0 {
			if o := m.linkOwner(NewLink(p[i-1], n)); o == nil || *o != owner {
				return fmt.Errorf("mesh: link %v not owned by %d", NewLink(p[i-1], n), owner)
			}
		}
	}
	for i, n := range p {
		m.nodeOwner[m.nodeIndex(n)] = Free
		if i > 0 {
			*m.linkOwner(NewLink(p[i-1], n)) = Free
		}
	}
	m.busyLinks -= len(p) - 1
	return nil
}

// BusyLinks returns the number of currently claimed links.
func (m *Mesh) BusyLinks() int { return m.busyLinks }

// TotalLinks returns the link count of the mesh.
func (m *Mesh) TotalLinks() int { return len(m.linkOwnerH) + len(m.linkOwnerV) }

// Utilization returns the fraction of links currently claimed.
func (m *Mesh) Utilization() float64 {
	if m.TotalLinks() == 0 {
		return 0
	}
	return float64(m.busyLinks) / float64(m.TotalLinks())
}

// growScratch sizes the route-search scratch to the mesh (once).
func (m *Mesh) growScratch() {
	if n := m.rows * m.cols; len(m.visitedAt) < n {
		m.visitedAt = make([]int64, n)
		m.bfsPrev = make([]int32, n)
		m.bfsQueue = make([]int32, 0, n)
	}
}
