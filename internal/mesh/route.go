package mesh

// Routing for braid paths (paper §6.1): dimension-ordered routes are
// tried first; when the network is congested the engine escalates to an
// adaptive shortest-path search over currently-free resources.

// XYPath returns the dimension-ordered route from a to b: horizontal
// first, then vertical. Always valid, ignores reservations.
func XYPath(a, b Node) Path {
	p := Path{a}
	cur := a
	for cur.Col != b.Col {
		if b.Col > cur.Col {
			cur.Col++
		} else {
			cur.Col--
		}
		p = append(p, cur)
	}
	for cur.Row != b.Row {
		if b.Row > cur.Row {
			cur.Row++
		} else {
			cur.Row--
		}
		p = append(p, cur)
	}
	return p
}

// YXPath returns the dimension-ordered route from a to b: vertical
// first, then horizontal.
func YXPath(a, b Node) Path {
	p := Path{a}
	cur := a
	for cur.Row != b.Row {
		if b.Row > cur.Row {
			cur.Row++
		} else {
			cur.Row--
		}
		p = append(p, cur)
	}
	for cur.Col != b.Col {
		if b.Col > cur.Col {
			cur.Col++
		} else {
			cur.Col--
		}
		p = append(p, cur)
	}
	return p
}

// AdaptiveRoute searches for the shortest path from a to b across
// currently-free junctions and links (BFS). It returns ok=false when
// the endpoints are busy or no free corridor exists. Used by the braid
// engine after dimension-ordered attempts time out.
func (m *Mesh) AdaptiveRoute(a, b Node) (Path, bool) {
	if !m.InBounds(a) || !m.InBounds(b) {
		return nil, false
	}
	if m.NodeOwner(a) != Free || m.NodeOwner(b) != Free {
		return nil, false
	}
	if a == b {
		return Path{a}, true
	}
	prev := make([]Node, m.rows*m.cols)
	visited := make([]bool, m.rows*m.cols)
	queue := []Node{a}
	visited[m.nodeIndex(a)] = true
	dirs := [4]Node{{Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 0, Col: -1}, {Row: -1, Col: 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			next := Node{Row: cur.Row + d.Row, Col: cur.Col + d.Col}
			if !m.InBounds(next) || visited[m.nodeIndex(next)] {
				continue
			}
			if m.NodeOwner(next) != Free {
				continue
			}
			if *m.linkOwner(NewLink(cur, next)) != Free {
				continue
			}
			visited[m.nodeIndex(next)] = true
			prev[m.nodeIndex(next)] = cur
			if next == b {
				return m.reconstruct(prev, a, b), true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

func (m *Mesh) reconstruct(prev []Node, a, b Node) Path {
	var rev Path
	for cur := b; cur != a; cur = prev[m.nodeIndex(cur)] {
		rev = append(rev, cur)
	}
	rev = append(rev, a)
	out := make(Path, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}
