package mesh

// Routing for braid paths (paper §6.1): dimension-ordered routes are
// tried first; when the network is congested the engine escalates to an
// adaptive shortest-path search over currently-free resources. On a
// device-masked mesh (ApplyTopology) the same stamp-scratch BFS doubles
// as the defect fallback: dead junctions and disabled links are never
// entered, and the engine escalates to it immediately when a
// dimension-ordered path is blocked by the mask rather than by
// congestion (PathBlockedByMask).
//
// Every routine has an Into form that writes the route into a
// caller-supplied buffer (reusing its capacity) so the braid engine's
// placement loop — which routes on every attempt, including the many
// failed ones — allocates nothing in steady state. The plain forms
// remain as convenience wrappers.

// XYPath returns the dimension-ordered route from a to b: horizontal
// first, then vertical. Always valid, ignores reservations.
func XYPath(a, b Node) Path { return XYPathInto(nil, a, b) }

// XYPathInto writes the horizontal-then-vertical route into dst[:0],
// growing it only when capacity is insufficient.
func XYPathInto(dst Path, a, b Node) Path {
	p := append(dst[:0], a)
	cur := a
	for cur.Col != b.Col {
		if b.Col > cur.Col {
			cur.Col++
		} else {
			cur.Col--
		}
		p = append(p, cur)
	}
	for cur.Row != b.Row {
		if b.Row > cur.Row {
			cur.Row++
		} else {
			cur.Row--
		}
		p = append(p, cur)
	}
	return p
}

// YXPath returns the dimension-ordered route from a to b: vertical
// first, then horizontal.
func YXPath(a, b Node) Path { return YXPathInto(nil, a, b) }

// YXPathInto writes the vertical-then-horizontal route into dst[:0],
// growing it only when capacity is insufficient.
func YXPathInto(dst Path, a, b Node) Path {
	p := append(dst[:0], a)
	cur := a
	for cur.Row != b.Row {
		if b.Row > cur.Row {
			cur.Row++
		} else {
			cur.Row--
		}
		p = append(p, cur)
	}
	for cur.Col != b.Col {
		if b.Col > cur.Col {
			cur.Col++
		} else {
			cur.Col--
		}
		p = append(p, cur)
	}
	return p
}

// AdaptiveRoute searches for the shortest path from a to b across
// currently-free junctions and links (BFS). It returns ok=false when
// the endpoints are busy or no free corridor exists. Used by the braid
// engine after dimension-ordered attempts time out.
func (m *Mesh) AdaptiveRoute(a, b Node) (Path, bool) {
	return m.AdaptiveRouteInto(nil, a, b)
}

// AdaptiveRouteInto is AdaptiveRoute writing the found path into
// dst[:0]. The search itself runs on the mesh's reusable stamp-based
// scratch, so repeated calls allocate nothing once the scratch and dst
// have grown to size. On failure the returned path is dst[:0] (capacity
// preserved for reuse).
func (m *Mesh) AdaptiveRouteInto(dst Path, a, b Node) (Path, bool) {
	dst = dst[:0]
	if !m.InBounds(a) || !m.InBounds(b) {
		return dst, false
	}
	if m.NodeOwner(a) != Free || m.NodeOwner(b) != Free {
		return dst, false
	}
	if m.masked && (m.deadNode[m.nodeIndex(a)] || m.deadNode[m.nodeIndex(b)]) {
		return dst, false
	}
	if a == b {
		return append(dst, a), true
	}
	m.growScratch()
	m.stamp++
	queue := m.bfsQueue[:0]
	queue = append(queue, int32(m.nodeIndex(a)))
	m.visitedAt[m.nodeIndex(a)] = m.stamp
	dirs := [4]Node{{Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 0, Col: -1}, {Row: -1, Col: 0}}
	for head := 0; head < len(queue); head++ {
		ci := int(queue[head])
		cur := Node{Row: ci / m.cols, Col: ci % m.cols}
		for _, d := range dirs {
			next := Node{Row: cur.Row + d.Row, Col: cur.Col + d.Col}
			if !m.InBounds(next) {
				continue
			}
			ni := m.nodeIndex(next)
			if m.visitedAt[ni] == m.stamp {
				continue
			}
			if m.nodeOwner[ni] != Free || (m.masked && m.deadNode[ni]) {
				continue
			}
			l := NewLink(cur, next)
			if *m.linkOwner(l) != Free || m.linkMasked(l) {
				continue
			}
			m.visitedAt[ni] = m.stamp
			m.bfsPrev[ni] = int32(ci)
			if next == b {
				m.bfsQueue = queue[:0]
				return m.reconstructInto(dst, a, b), true
			}
			queue = append(queue, int32(ni))
		}
	}
	m.bfsQueue = queue[:0]
	return dst, false
}

// reconstructInto walks the BFS predecessor chain b→a into dst, then
// reverses it in place.
func (m *Mesh) reconstructInto(dst Path, a, b Node) Path {
	ai := m.nodeIndex(a)
	for ci := m.nodeIndex(b); ci != ai; ci = int(m.bfsPrev[ci]) {
		dst = append(dst, Node{Row: ci / m.cols, Col: ci % m.cols})
	}
	dst = append(dst, a)
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}
