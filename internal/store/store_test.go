package store_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"surfcomm/internal/faultinject"
	"surfcomm/internal/store"
)

// digestFor builds a syntactically valid cache digest from a short tag.
func digestFor(tag string) string {
	d := strings.Repeat("0", 64-len(tag)) + tag
	return strings.ToLower(d)
}

func openT(t *testing.T, dir string, inj *faultinject.Injector) *store.Store {
	t.Helper()
	s, err := store.Open(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir(), nil)
	digest := digestFor("abc123")
	payload := []byte(`{"backend":"braid","cycles":42}`)
	if err := s.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(digest)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get(digestFor("def456")); ok {
		t.Error("absent digest reported a hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInvalidDigestRejected(t *testing.T) {
	s := openT(t, t.TempDir(), nil)
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), "../../etc/passwd", strings.Repeat("A", 64)} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid digest", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) hit on an invalid digest", bad)
		}
	}
}

// TestEntriesSurviveReopen pins the restart contract: a second Open on
// the same directory serves everything the first one wrote.
func TestEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir, nil)
	digest := digestFor("5eed")
	payload := []byte("plan-bytes")
	if err := s1.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, nil)
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	got, ok := s2.Get(digest)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

// TestTornWriteQuarantinedOnReopen is the crash-recovery satellite at
// the store layer: a torn write reports success, the reopen scan
// quarantines it instead of crashing, and a clean re-Put of the same
// digest lands byte-identical to an untouched control store.
func TestTornWriteQuarantinedOnReopen(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1)
	if err := inj.Set(faultinject.TornWrite, 1); err != nil {
		t.Fatal(err)
	}
	s1 := openT(t, dir, inj)
	digest := digestFor("dead")
	payload := []byte(`{"backend":"braid","cycles":4242,"seconds":0.001}`)
	if err := s1.Put(digest, payload); err != nil {
		t.Fatalf("torn write must still report success (the crash is after the ack): %v", err)
	}

	// The reopen scan must quarantine the torn entry, not crash on it
	// (and must never serve it).
	s2 := openT(t, dir, nil)
	if st := s2.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("reopen stats = %+v, want 1 quarantined, 0 entries", st)
	}
	if _, ok := s2.Get(digest); ok {
		t.Fatal("torn entry served after reopen")
	}
	// The quarantined bytes are preserved for postmortems.
	quarantined, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine dir = %v, %v; want the torn entry", quarantined, err)
	}

	// A recompile (deterministic payload) repopulates byte-identically:
	// the healed entry equals a control store's entry for the same
	// payload, byte for byte.
	if err := s2.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	control := openT(t, t.TempDir(), nil)
	if err := control.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	healed, err := os.ReadFile(filepath.Join(dir, "plans", digest+".plan"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(control.Dir(), "plans", digest+".plan"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, want) {
		t.Error("healed entry is not byte-identical to a clean write of the same payload")
	}
	if got, ok := s2.Get(digest); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("healed Get = %q, %v", got, ok)
	}
}

// TestCorruptPayloadQuarantinedOnRead flips one payload byte on disk
// and asserts the checksum catches it at read time.
func TestCorruptPayloadQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	digest := digestFor("c0ffee")
	if err := s.Put(digest, []byte("payload-under-test")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "plans", digest+".plan")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digest); ok {
		t.Fatal("bit-flipped entry served")
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still in the live namespace")
	}
}

// TestForeignFilesQuarantinedAtOpen pins the never-crash-at-startup
// rule for junk in plans/.
func TestForeignFilesQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	openT(t, dir, nil) // create layout
	junk := filepath.Join(dir, "plans", "README.txt")
	if err := os.WriteFile(junk, []byte("not a plan"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, nil)
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want the junk file quarantined", st)
	}
}

// TestInjectedWriteErrorIsCleanFailure pins the write-behind contract:
// a failed Put surfaces as ErrInjected, leaves no live entry, and the
// store keeps serving.
func TestInjectedWriteErrorIsCleanFailure(t *testing.T) {
	inj := faultinject.New(1)
	if err := inj.Set(faultinject.StoreWriteError, 1); err != nil {
		t.Fatal(err)
	}
	s := openT(t, t.TempDir(), inj)
	digest := digestFor("beef")
	err := s.Put(digest, []byte("x"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put error = %v, want ErrInjected", err)
	}
	if _, ok := s.Get(digest); ok {
		t.Error("failed Put left a live entry")
	}
	if st := s.Stats(); st.PutErrors != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAbandonedTempFilesCleared pins Open's tmp/ cleanup: a write
// killed before its rename leaves a temp file that must be dropped, not
// surfaced.
func TestAbandonedTempFilesCleared(t *testing.T) {
	dir := t.TempDir()
	openT(t, dir, nil)
	stray := filepath.Join(dir, "tmp", digestFor("ab")+"-12345")
	if err := os.WriteFile(stray, []byte("half a wri"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, nil)
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("abandoned temp file survived Open")
	}
}
