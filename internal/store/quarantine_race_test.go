package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentReadersQuarantineOnce corrupts a live entry mid-serve
// and hammers it from many goroutines: every reader must see a clean
// miss (never corrupt bytes), exactly one reader quarantines the entry
// (no double-count, no double-move), and a recompile-shaped Put of the
// same digest re-serves byte-identical content afterwards. Run under
// -race this also pins the counter/rename discipline in quarantine.
func TestConcurrentReadersQuarantineOnce(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	digest := digestFor("bad1dea")
	payload := []byte(`{"backend":"braid","cycles":7,"seed":3}`)
	if err := s.Put(digest, payload); err != nil {
		t.Fatal(err)
	}

	// Corrupt the live entry in place: flip payload bytes so the header
	// parses but the checksum fails — the mid-serve corruption case, not
	// a torn write caught at open.
	path := filepath.Join(dir, "plans", digest+".plan")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	const readers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 8; j++ {
				if got, ok := s.Get(digest); ok {
					t.Errorf("Get served corrupt entry: %q", got)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want exactly 1 (one corrupt entry, %d concurrent readers)",
			st.Quarantined, readers)
	}
	// Exactly one file landed in quarantine/ and the live entry is gone.
	qs, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("quarantine/ holds %d files, want 1", len(qs))
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("live entry still present after quarantine: %v", err)
	}

	// Deterministic recompile repopulates the digest; readers see the
	// original bytes again.
	if err := s.Put(digest, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(digest)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after repopulation Get = %q, %v; want original payload", got, ok)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined moved to %d after repopulation, want still 1", st.Quarantined)
	}
}
