// Package store is the crash-safe, content-addressed disk layer under
// the serving cache: plan payloads keyed by the same SHA-256 request
// digest the in-memory LRU uses, so a restarted daemon (or another
// replica sharing the directory) serves warm hits instead of
// recompiling. Three disciplines make it safe to kill at any instant:
//
//   - writes go to a private temp file and reach the live namespace
//     only through an atomic rename, so a reader never sees a
//     half-written entry under its final name;
//   - every entry embeds a SHA-256 checksum of its payload, verified
//     on each read, so an entry torn by a crash between write and
//     fsync (or corrupted on disk) is detected instead of served;
//   - Open scans the live entries and quarantines — never crashes on —
//     anything malformed, so one bad file cannot take down a daemon at
//     startup.
//
// Corrupt entries move to quarantine/ (kept for postmortems, invisible
// to Get), and a later Put of the same digest simply rewrites the
// entry: because compiles are deterministic, the recompiled payload is
// byte-identical to what the torn write should have been.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"surfcomm/internal/faultinject"
)

const (
	planExt   = ".plan"
	headerTag = "surfcomm-plan/1"
	// subdirectories under the store root
	plansDir      = "plans"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
)

// Store is a content-addressed plan store rooted at one directory. It
// is safe for concurrent use within a process; cross-process sharing is
// safe for readers because entries are immutable once renamed into
// place.
type Store struct {
	root string
	inj  *faultinject.Injector

	mu          sync.Mutex
	entries     map[string]struct{}
	quarantined uint64
	puts        uint64
	putErrors   uint64
	hits        uint64
	misses      uint64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Entries is the live (readable, checksum-unknown until read) entry
	// count.
	Entries int `json:"entries"`
	// Quarantined counts entries moved aside as corrupt — at Open's
	// startup scan or when a read's checksum verification failed.
	Quarantined uint64 `json:"quarantined"`
	// Puts counts successful writes; PutErrors counts failed ones
	// (including injected faults), which the write-behind layer treats
	// as cache-population misses, never fatal.
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
	// Hits and Misses count Get outcomes (a quarantined-on-read entry
	// is a miss).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Open initializes a store rooted at dir (created if absent), clears
// leftover temp files, and scans the live entries: malformed names and
// entries whose checksum line is unparseable or whose payload digest
// mismatches are moved to quarantine/ and counted, never fatal. The
// injector arms the write-fault points (nil injects nothing).
func Open(dir string, inj *faultinject.Injector) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{plansDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{root: dir, inj: inj, entries: make(map[string]struct{})}

	// A temp file is an abandoned write from a previous run killed
	// mid-Put; it never reached the live namespace, so dropping it is
	// the crash-consistent choice.
	tmps, err := os.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range tmps {
		os.Remove(filepath.Join(dir, tmpDir, e.Name())) //nolint:errcheck // best-effort cleanup
	}

	live, err := os.ReadDir(filepath.Join(dir, plansDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range live {
		if e.IsDir() {
			continue
		}
		digest, ok := digestFromName(e.Name())
		if !ok {
			s.quarantineLocked(e.Name())
			continue
		}
		if _, err := s.readVerified(digest); err != nil {
			s.quarantineLocked(e.Name())
			continue
		}
		s.entries[digest] = struct{}{}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// Len returns the live entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Get returns the verified payload for a digest. A checksum mismatch
// quarantines the entry and reports a miss — a corrupt plan is never
// returned.
func (s *Store) Get(digest string) ([]byte, bool) {
	if !validDigest(digest) {
		return nil, false
	}
	payload, err := s.readVerified(digest)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if !os.IsNotExist(err) {
			// Present but unreadable or corrupt: move it aside so the
			// next scan/read doesn't trip over it again.
			s.quarantineLocked(digest + planExt)
		}
		delete(s.entries, digest)
		s.misses++
		return nil, false
	}
	s.entries[digest] = struct{}{}
	s.hits++
	return payload, true
}

// Put atomically persists a payload under its digest: temp file in
// tmp/, then rename into plans/. Injected faults simulate a full disk
// (StoreWriteError: the Put fails cleanly) and a crash between rename
// and data reaching the platter (TornWrite: the entry lands truncated
// while Put still reports success — exactly what checksum verification
// exists to catch).
func (s *Store) Put(digest string, payload []byte) error {
	if !validDigest(digest) {
		return s.putErr(fmt.Errorf("store: invalid digest %q", digest))
	}
	if s.inj.Fire(faultinject.StoreWriteError) {
		return s.putErr(fmt.Errorf("%w: store write for %.12s…", faultinject.ErrInjected, digest))
	}
	data := encodeEntry(payload)
	if s.inj.Fire(faultinject.TornWrite) {
		data = data[:len(data)/2]
	}
	f, err := os.CreateTemp(filepath.Join(s.root, tmpDir), digest+"-*")
	if err != nil {
		return s.putErr(fmt.Errorf("store: %w", err))
	}
	tmpName := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close() //nolint:errcheck,staticcheck // error path; the write error wins
		os.Remove(tmpName)
		return s.putErr(fmt.Errorf("store: %w", err))
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return s.putErr(fmt.Errorf("store: %w", err))
	}
	if err := os.Rename(tmpName, filepath.Join(s.root, plansDir, digest+planExt)); err != nil {
		os.Remove(tmpName)
		return s.putErr(fmt.Errorf("store: %w", err))
	}
	s.mu.Lock()
	s.entries[digest] = struct{}{}
	s.puts++
	s.mu.Unlock()
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.entries),
		Quarantined: s.quarantined,
		Puts:        s.puts,
		PutErrors:   s.putErrors,
		Hits:        s.hits,
		Misses:      s.misses,
	}
}

func (s *Store) putErr(err error) error {
	s.mu.Lock()
	s.putErrors++
	s.mu.Unlock()
	return err
}

// encodeEntry frames a payload with its checksum header. The encoding
// is deterministic, so identical payloads produce byte-identical
// entries — the property the crash-recovery tests pin when a recompile
// repopulates a quarantined digest.
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s %d\n", headerTag, hex.EncodeToString(sum[:]), len(payload))
	buf.Write(payload)
	return buf.Bytes()
}

// readVerified reads and checksum-verifies one live entry. It returns
// an os.IsNotExist error for absent digests and a descriptive error for
// torn/corrupt ones; it never returns unverified bytes.
func (s *Store) readVerified(digest string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.root, plansDir, digest+planExt))
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("store: %s: truncated header", digest)
	}
	var (
		tag    string
		sumHex string
		n      int
	)
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %s %d", &tag, &sumHex, &n); err != nil || tag != headerTag {
		return nil, fmt.Errorf("store: %s: malformed header", digest)
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("store: %s: torn entry (%d of %d payload bytes)", digest, len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("store: %s: checksum mismatch", digest)
	}
	return payload, nil
}

// quarantineLocked moves a live file into quarantine/ (falling back to
// removal if the rename fails) and counts it — but only when this call
// is the one that actually took the file out of the live namespace.
// Concurrent readers of the same corrupt entry all fail verification
// and all land here; the losers find the source already gone and must
// not count it again (one corrupt entry is one quarantine, not one per
// in-flight reader). Callers must hold s.mu or own the store
// exclusively (Open's scan).
func (s *Store) quarantineLocked(name string) {
	src := filepath.Join(s.root, plansDir, name)
	dst := filepath.Join(s.root, quarantineDir, name)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.root, quarantineDir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(src, dst); err != nil {
		if os.IsNotExist(err) {
			return // a concurrent reader already quarantined it
		}
		if rmErr := os.Remove(src); rmErr != nil && os.IsNotExist(rmErr) {
			return
		}
	}
	s.quarantined++
}

func digestFromName(name string) (string, bool) {
	digest, ok := strings.CutSuffix(name, planExt)
	if !ok || !validDigest(digest) {
		return "", false
	}
	return digest, true
}

// validDigest accepts exactly the lowercase-hex SHA-256 strings the
// serving layer keys plans with; anything else would let a crafted
// digest escape the plans/ directory.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
