package debugserve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestStartServesPprofIndex(t *testing.T) {
	var logged strings.Builder
	stop, err := Start("127.0.0.1:0", func(format string, args ...any) {
		fmt.Fprintf(&logged, format, args...)
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer stop()

	// The startup log line carries the resolved address.
	line := logged.String()
	i := strings.Index(line, "http://")
	j := strings.Index(line, "/debug/pprof/")
	if i < 0 || j < i {
		t.Fatalf("startup log does not name the endpoint: %q", line)
	}

	t.Run("index", func(t *testing.T) {
		// Reconstruct the base URL from the logged line.
		base := line[i:j]
		resp, err := http.Get(base + "/debug/pprof/")
		if err != nil {
			t.Fatalf("GET index: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("index status %d", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(body), "goroutine") {
			t.Error("pprof index does not list the goroutine profile")
		}
	})
}

func TestStartBadAddressFailsFast(t *testing.T) {
	if _, err := Start("256.0.0.1:99999", func(string, ...any) {}); err == nil {
		t.Fatal("want a startup error for an unusable address")
	}
}
