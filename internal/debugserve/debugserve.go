// Package debugserve exposes the net/http/pprof profiling endpoints on
// a dedicated listener and mux, isolated from a daemon's serving mux.
//
// The isolation is the point: registering pprof on the serving mux (the
// net/http/pprof import side effect on http.DefaultServeMux) would
// expose heap dumps and CPU profiles to anyone who can reach the
// service port. Here the operator opts in with an explicit address —
// typically localhost or a firewalled port — and the serving handler
// never learns the profiling routes exist.
package debugserve

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Start serves the pprof endpoints (/debug/pprof/...) on addr using a
// dedicated mux, returning a stop function. The listen happens
// synchronously so a bad address fails at startup rather than being
// discovered mid-incident when the profile is finally needed.
func Start(addr string, logf func(format string, args ...any)) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// No write timeout: /debug/pprof/profile?seconds=30 streams for
		// as long as the operator asked it to.
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			logf("pprof server: %v", serr)
		}
	}()
	logf("pprof on http://%s/debug/pprof/ (dedicated mux — keep this address private)", ln.Addr())
	// Close, not Shutdown: an in-flight 30s CPU profile must not stall a
	// daemon's drain window.
	return func() { _ = srv.Close() }, nil
}
