package circuit

import (
	"math/rand"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	c := buildSample()
	text := QASMString(c)
	got, err := ReadQASM(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadQASM: %v\n%s", err, text)
	}
	if got.NumQubits != c.NumQubits {
		t.Errorf("NumQubits = %d, want %d", got.NumQubits, c.NumQubits)
	}
	if got.Name != c.Name {
		t.Errorf("Name = %q, want %q", got.Name, c.Name)
	}
	if len(got.Gates) != len(c.Gates) {
		t.Fatalf("gate count = %d, want %d", len(got.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		if got.Gates[i].String() != c.Gates[i].String() {
			t.Errorf("gate %d = %q, want %q", i, got.Gates[i].String(), c.Gates[i].String())
		}
	}
}

func TestQASMRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 16
	c := New("random", n)
	ops1 := []Opcode{PrepZ, PrepX, MeasZ, MeasX, X, Y, Z, H, S, Sdg, T, Tdg}
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(ops1[rng.Intn(len(ops1))], rng.Intn(n))
		case 1:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			ops2 := []Opcode{CNOT, CZ, Swap}
			c.Append(ops2[rng.Intn(3)], a, b)
		case 2:
			a := rng.Intn(n - 2)
			c.Append(Barrier, a, a+1, a+2)
		}
	}
	got, err := ReadQASM(strings.NewReader(QASMString(c)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Gates) != len(c.Gates) {
		t.Fatalf("gate count %d != %d", len(got.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		if got.Gates[i].String() != c.Gates[i].String() {
			t.Fatalf("gate %d mismatch: %q != %q", i, got.Gates[i].String(), c.Gates[i].String())
		}
	}
}

func TestReadQASMErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"gate before header", "h q0\n"},
		{"bad count", "qubits notanumber\n"},
		{"negative count", "qubits -2\n"},
		{"unknown gate", "qubits 2\nfoo q0\n"},
		{"bad operand", "qubits 2\nh qx\n"},
		{"missing prefix", "qubits 2\nh 0\n"},
		{"out of range", "qubits 2\nh q5\n"},
		{"arity", "qubits 2\ncnot q0\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadQASM(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadQASMSkipsCommentsAndBlankLines(t *testing.T) {
	in := "# title here\n\nqubits 2\n# mid comment\nh q0\n\ncnot q0,q1\n"
	c, err := ReadQASM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "title here" {
		t.Errorf("Name = %q, want %q", c.Name, "title here")
	}
	if len(c.Gates) != 2 {
		t.Errorf("gates = %d, want 2", len(c.Gates))
	}
}
