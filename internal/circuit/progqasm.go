package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProgramQASM serializes a hierarchical program in the module-
// extended QASM dialect:
//
//	# comment
//	entry main
//	module main 4
//	h q0
//	call sub q0,q1
//	module sub 2
//	cnot q0,q1
//
// An `entry` directive names the entry module; each `module` directive
// opens a module body that runs until the next directive or EOF. Gate
// lines use the flat dialect; `call <module> q…` lines bind the
// caller's qubits positionally to the callee's formals.
//
// Emission is canonical: the entry module first, the remaining modules
// sorted by name. Two programs with equal structure serialize to equal
// bytes, which is what the per-module digest cache and the service's
// cache keys rely on.
func WriteProgramQASM(w io.Writer, p *Program) error {
	if p == nil {
		return fmt.Errorf("qasm: nil program")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "entry %s\n", p.Entry)
	for _, name := range p.moduleOrder() {
		m := p.Modules[name]
		if err := writeModule(bw, m); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// moduleOrder returns the canonical emission order: entry first, then
// the remaining modules sorted by name.
func (p *Program) moduleOrder() []string {
	names := make([]string, 0, len(p.Modules))
	for name := range p.Modules {
		if name != p.Entry {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, ok := p.Modules[p.Entry]; ok {
		names = append([]string{p.Entry}, names...)
	}
	return names
}

// writeModule emits one module body in canonical form.
func writeModule(bw *bufio.Writer, m *Module) error {
	fmt.Fprintf(bw, "module %s %d\n", m.Name, m.NumQubits)
	for _, in := range m.Insts {
		if in.IsCall() {
			fmt.Fprintf(bw, "call %s %s\n", in.Callee, operandList(in.Args))
			continue
		}
		fmt.Fprintln(bw, Gate{Op: in.Op, Qubits: in.Args}.String())
	}
	return nil
}

func operandList(args []int) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = "q" + strconv.Itoa(a)
	}
	return strings.Join(parts, ",")
}

// ProgramQASMString renders the program as a canonical QASM string.
func ProgramQASMString(p *Program) string {
	var sb strings.Builder
	if err := WriteProgramQASM(&sb, p); err != nil {
		// strings.Builder writes cannot fail; a nil program is a caller
		// bug surfaced loudly.
		panic(err)
	}
	return sb.String()
}

// ModuleQASMString renders one module body in the canonical per-module
// form WriteProgramQASM emits — the text the module content digest
// covers.
func ModuleQASMString(m *Module) string {
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	if err := writeModule(bw, m); err != nil {
		panic(err)
	}
	if err := bw.Flush(); err != nil {
		panic(err)
	}
	return sb.String()
}

// LooksHierarchicalQASM reports whether the text is in the module-
// extended dialect (it contains an `entry` or `module` directive before
// any gate line), so services can route flat and hierarchical requests
// to the right parser without trying both.
func LooksHierarchicalQASM(text string) bool {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		return strings.HasPrefix(t, "entry ") || strings.HasPrefix(t, "module ")
	}
	return false
}

// ReadProgramQASM parses the module-extended QASM dialect produced by
// WriteProgramQASM. The program is structurally validated (entry
// exists, calls resolve, arities match, no recursion) before being
// returned.
func ReadProgramQASM(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	p := &Program{Modules: map[string]*Module{}}
	var cur *Module
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "entry":
			if len(fields) != 2 {
				return nil, fmt.Errorf("qasm line %d: malformed entry directive", line)
			}
			if p.Entry != "" {
				return nil, fmt.Errorf("qasm line %d: duplicate entry directive", line)
			}
			p.Entry = fields[1]
			continue
		case "module":
			if len(fields) != 3 {
				return nil, fmt.Errorf("qasm line %d: malformed module directive", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("qasm line %d: bad module qubit count %q", line, fields[2])
			}
			cur = &Module{Name: fields[1], NumQubits: n}
			if err := p.AddModule(cur); err != nil {
				return nil, fmt.Errorf("qasm line %d: %v", line, err)
			}
			continue
		case "call":
			if cur == nil {
				return nil, fmt.Errorf("qasm line %d: call before module directive", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("qasm line %d: malformed call (want: call <module> q…)", line)
			}
			args, err := parseOperands(fields[2], line)
			if err != nil {
				return nil, err
			}
			cur.Call(fields[1], args...)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("qasm line %d: gate before module directive", line)
		}
		op, err := ParseOpcode(fields[0])
		if err != nil {
			return nil, fmt.Errorf("qasm line %d: %w", line, err)
		}
		var qubits []int
		if len(fields) > 1 {
			if qubits, err = parseOperands(fields[1], line); err != nil {
				return nil, err
			}
		}
		cur.Gate(op, qubits...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Entry == "" {
		return nil, fmt.Errorf("qasm: missing entry directive")
	}
	if len(p.Modules) == 0 {
		return nil, fmt.Errorf("qasm: no modules")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseOperands parses a comma-separated q-prefixed operand list.
func parseOperands(s string, line int) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if !strings.HasPrefix(tok, "q") {
			return nil, fmt.Errorf("qasm line %d: operand %q missing q prefix", line, tok)
		}
		q, err := strconv.Atoi(tok[1:])
		if err != nil {
			return nil, fmt.Errorf("qasm line %d: bad operand %q", line, tok)
		}
		out = append(out, q)
	}
	return out, nil
}

// Clone returns a deep copy of the program: mutating the copy's modules
// or instructions never aliases the original. It is how callers derive
// edited variants (the incremental-compilation workflows mutate one
// module of a cloned program and recompile).
func (p *Program) Clone() *Program {
	cp := &Program{Modules: make(map[string]*Module, len(p.Modules)), Entry: p.Entry}
	for name, m := range p.Modules {
		cp.Modules[name] = m.Clone()
	}
	return cp
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	cp := &Module{Name: m.Name, NumQubits: m.NumQubits, Insts: make([]Inst, len(m.Insts))}
	for i, in := range m.Insts {
		cp.Insts[i] = Inst{Op: in.Op, Args: append([]int(nil), in.Args...), Callee: in.Callee}
	}
	return cp
}
