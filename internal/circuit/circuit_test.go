package circuit

import (
	"testing"
)

func buildSample() *Circuit {
	c := New("sample", 4)
	c.Append(PrepZ, 0)
	c.Append(H, 0)
	c.Append(CNOT, 0, 1)
	c.Append(T, 1)
	c.Append(Tdg, 2)
	c.Append(CZ, 2, 3)
	c.Append(Barrier, 0, 1, 2, 3)
	c.Append(MeasZ, 0)
	return c
}

func TestCircuitCounts(t *testing.T) {
	c := buildSample()
	if got := c.Ops(); got != 7 {
		t.Errorf("Ops() = %d, want 7 (barrier excluded)", got)
	}
	if got := c.TCount(); got != 2 {
		t.Errorf("TCount() = %d, want 2", got)
	}
	if got := c.TwoQubitCount(); got != 2 {
		t.Errorf("TwoQubitCount() = %d, want 2", got)
	}
	if got := c.CountOp(H); got != 1 {
		t.Errorf("CountOp(H) = %d, want 1", got)
	}
	h := c.Histogram()
	if h[CNOT] != 1 || h[Barrier] != 1 || h[MeasZ] != 1 {
		t.Errorf("Histogram unexpected: %v", h)
	}
}

func TestCircuitValidate(t *testing.T) {
	c := buildSample()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	c.Gates = append(c.Gates, Gate{Op: CNOT, Qubits: []int{0, 9}})
	if err := c.Validate(); err == nil {
		t.Error("out-of-range gate should fail validation")
	}
}

func TestAppendPanicsOnInvalid(t *testing.T) {
	c := New("p", 2)
	defer func() {
		if recover() == nil {
			t.Error("Append with out-of-range qubit should panic")
		}
	}()
	c.Append(H, 5)
}

func TestInteractionGraph(t *testing.T) {
	c := New("ig", 4)
	c.Append(CNOT, 0, 1)
	c.Append(CNOT, 0, 1)
	c.Append(CZ, 1, 2)
	c.Append(H, 3)
	g := c.InteractionGraph()
	if g[0][1] != 2 || g[1][0] != 2 {
		t.Errorf("edge (0,1) weight = %d/%d, want 2/2", g[0][1], g[1][0])
	}
	if g[1][2] != 1 || g[2][1] != 1 {
		t.Errorf("edge (1,2) weight = %d/%d, want 1/1", g[1][2], g[2][1])
	}
	if len(g[3]) != 0 {
		t.Errorf("qubit 3 should have no interactions, got %v", g[3])
	}
	if _, self := g[0][0]; self {
		t.Error("self edge present")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := buildSample()
	d := c.Clone()
	d.Gates[2].Qubits[0] = 3
	if c.Gates[2].Qubits[0] == 3 {
		t.Error("Clone shares qubit slices with original")
	}
	d.Gates = append(d.Gates, Gate{Op: H, Qubits: []int{0}})
	if len(c.Gates) == len(d.Gates) {
		t.Error("Clone shares gate slice header growth")
	}
}

func TestOpsEmptyCircuit(t *testing.T) {
	c := New("empty", 0)
	if c.Ops() != 0 || c.TCount() != 0 || c.TwoQubitCount() != 0 {
		t.Error("empty circuit should have zero counts")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("empty circuit should validate: %v", err)
	}
}
