package circuit

import (
	"testing"
	"testing/quick"
)

func TestOpcodeStringParseRoundTrip(t *testing.T) {
	for op := PrepZ; op < numOpcodes; op++ {
		got, err := ParseOpcode(op.String())
		if err != nil {
			t.Fatalf("ParseOpcode(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("round trip %v -> %q -> %v", op, op.String(), got)
		}
	}
}

func TestParseOpcodeRejectsUnknown(t *testing.T) {
	for _, s := range []string{"", "nop", "ccx", "H", "cnotx"} {
		if _, err := ParseOpcode(s); err == nil {
			t.Errorf("ParseOpcode(%q) should fail", s)
		}
	}
}

func TestOpcodeArity(t *testing.T) {
	cases := []struct {
		op   Opcode
		want int
	}{
		{H, 1}, {T, 1}, {MeasZ, 1}, {PrepX, 1},
		{CNOT, 2}, {CZ, 2}, {Swap, 2},
		{Barrier, -1}, {Nop, 0},
	}
	for _, c := range cases {
		if got := c.op.Arity(); got != c.want {
			t.Errorf("%v.Arity() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestOpcodeClassPredicates(t *testing.T) {
	if !CNOT.IsTwoQubit() || !CZ.IsTwoQubit() || !Swap.IsTwoQubit() {
		t.Error("two-qubit predicate missing a two-qubit gate")
	}
	if H.IsTwoQubit() || T.IsTwoQubit() {
		t.Error("single-qubit gate flagged as two-qubit")
	}
	if !T.IsT() || !Tdg.IsT() {
		t.Error("T predicate missing T gates")
	}
	if S.IsT() {
		t.Error("S flagged as T")
	}
	if T.IsClifford() || Tdg.IsClifford() {
		t.Error("T gates are not Clifford")
	}
	for _, op := range []Opcode{X, Y, Z, H, S, Sdg, CNOT, CZ, Swap} {
		if !op.IsClifford() {
			t.Errorf("%v should be Clifford", op)
		}
	}
	if !MeasZ.IsMeasurement() || !MeasX.IsMeasurement() {
		t.Error("measurement predicate broken")
	}
	if !PrepZ.IsPreparation() || !PrepX.IsPreparation() {
		t.Error("preparation predicate broken")
	}
	if Barrier.IsClifford() || Barrier.IsTwoQubit() {
		t.Error("barrier misclassified")
	}
}

func TestNewGateValidation(t *testing.T) {
	if _, err := NewGate(CNOT, 0, 0); err == nil {
		t.Error("repeated operand should fail")
	}
	if _, err := NewGate(CNOT, 0); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := NewGate(H, -1); err == nil {
		t.Error("negative operand should fail")
	}
	if _, err := NewGate(Barrier); err == nil {
		t.Error("empty barrier should fail")
	}
	if _, err := NewGate(Nop); err == nil {
		t.Error("nop should fail")
	}
	g, err := NewGate(CNOT, 1, 4)
	if err != nil {
		t.Fatalf("valid gate rejected: %v", err)
	}
	if err := g.Validate(3); err == nil {
		t.Error("out-of-range operand should fail against numQubits=3")
	}
	if err := g.Validate(5); err != nil {
		t.Errorf("in-range operand failed: %v", err)
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Op: CNOT, Qubits: []int{0, 3}}
	if got, want := g.String(), "cnot q0,q3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	b := Gate{Op: Barrier, Qubits: []int{1, 2, 5}}
	if got, want := b.String(), "barrier q1,q2,q5"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: any gate built from a valid opcode and distinct in-range
// qubits validates, and its String form is parseable back to the opcode.
func TestGateValidateQuick(t *testing.T) {
	f := func(opRaw uint8, a, b uint8) bool {
		op := Opcode(opRaw%uint8(numOpcodes-1) + 1) // skip Nop
		qa, qb := int(a%32), int(b%32)
		if qa == qb {
			qb = (qb + 1) % 32
		}
		var g Gate
		switch op.Arity() {
		case 1:
			g = Gate{Op: op, Qubits: []int{qa}}
		case 3:
			qc := (qb + 1) % 32
			if qc == qa {
				qc = (qc + 1) % 32
			}
			g = Gate{Op: op, Qubits: []int{qa, qb, qc}}
		default: // two-qubit gates and barrier
			g = Gate{Op: op, Qubits: []int{qa, qb}}
		}
		if err := g.Validate(32); err != nil {
			return false
		}
		parsed, err := ParseOpcode(op.String())
		return err == nil && parsed == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
