package circuit

import (
	"fmt"
	"sort"
)

// Inst is one instruction inside a Module: either a gate on the module's
// local qubit indices, or a call to another module binding local qubits
// to the callee's formals.
type Inst struct {
	Op     Opcode // gate instruction when Op != Nop
	Args   []int  // qubit operands (gate) or actual arguments (call)
	Callee string // call instruction when non-empty
}

// IsCall reports whether the instruction is a module call.
func (in Inst) IsCall() bool { return in.Callee != "" }

// Module is a reusable subcircuit over NumQubits formal qubits. Calls
// bind formals positionally to the caller's actual qubits.
type Module struct {
	Name      string
	NumQubits int
	Insts     []Inst
}

// Gate appends a gate instruction to the module.
func (m *Module) Gate(op Opcode, qubits ...int) {
	m.Insts = append(m.Insts, Inst{Op: op, Args: qubits})
}

// Call appends a call instruction to the module.
func (m *Module) Call(callee string, args ...int) {
	m.Insts = append(m.Insts, Inst{Callee: callee, Args: args})
}

// Program is a hierarchical circuit: a set of modules and a designated
// entry module, the unit the ScaffCC-style frontend hands to flattening.
type Program struct {
	Modules map[string]*Module
	Entry   string
}

// NewProgram returns a program with a single empty entry module over n
// qubits.
func NewProgram(entry string, n int) *Program {
	p := &Program{Modules: map[string]*Module{}, Entry: entry}
	p.Modules[entry] = &Module{Name: entry, NumQubits: n}
	return p
}

// AddModule registers a module body.
func (p *Program) AddModule(m *Module) error {
	if m.Name == "" {
		return fmt.Errorf("circuit: module needs a name")
	}
	if _, dup := p.Modules[m.Name]; dup {
		return fmt.Errorf("circuit: duplicate module %q", m.Name)
	}
	p.Modules[m.Name] = m
	return nil
}

// Validate checks entry existence, call targets, arities, and operand
// ranges, and rejects call cycles (quantum programs are loop-unrolled by
// the frontend; recursion cannot be flattened).
func (p *Program) Validate() error {
	entry, ok := p.Modules[p.Entry]
	if !ok {
		return fmt.Errorf("circuit: entry module %q not found", p.Entry)
	}
	_ = entry
	// Per-module static checks.
	names := make([]string, 0, len(p.Modules))
	for name := range p.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := p.Modules[name]
		for i, in := range m.Insts {
			if in.IsCall() {
				callee, ok := p.Modules[in.Callee]
				if !ok {
					return fmt.Errorf("circuit: %s inst %d calls unknown module %q", name, i, in.Callee)
				}
				if len(in.Args) != callee.NumQubits {
					return fmt.Errorf("circuit: %s inst %d: call %s wants %d args, got %d",
						name, i, in.Callee, callee.NumQubits, len(in.Args))
				}
				// Prefix scan, not a set: call widths are small and this
				// runs on every recompile (see Gate.Validate).
				for ai, a := range in.Args {
					if a < 0 || a >= m.NumQubits {
						return fmt.Errorf("circuit: %s inst %d: arg %d out of range", name, i, a)
					}
					for _, prev := range in.Args[:ai] {
						if prev == a {
							return fmt.Errorf("circuit: %s inst %d: repeated arg %d", name, i, a)
						}
					}
				}
				continue
			}
			g := Gate{Op: in.Op, Qubits: in.Args}
			if err := g.Validate(m.NumQubits); err != nil {
				return fmt.Errorf("circuit: %s inst %d: %w", name, i, err)
			}
		}
	}
	// Cycle check over the call graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("circuit: recursive call cycle through %q", name)
		case black:
			return nil
		}
		color[name] = grey
		for _, in := range p.Modules[name].Insts {
			if in.IsCall() {
				if err := visit(in.Callee); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	return visit(p.Entry)
}

// InlineAll is the depth argument to Flatten selecting seamless inlining
// of every call level (the paper's "fully inlined" configuration).
const InlineAll = -1

// Flatten expands the program into a flat Circuit.
//
// inlineDepth controls the paper's inlining degree knob (§7.3,
// IM_Semi_Inlined vs IM_Fully_Inlined): calls nested deeper than
// inlineDepth are still expanded into gates, but are wrapped in Barrier
// fences over the call's qubits, so the dependency analysis treats the
// call as an atomic region and cross-call parallelism is lost.
// InlineAll (or any depth >= the call-tree height) yields a barrier-free
// circuit with maximal exposed parallelism.
func (p *Program) Flatten(inlineDepth int) (*Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	entry := p.Modules[p.Entry]
	out := New(p.Entry, entry.NumQubits)

	// binding maps callee-local qubit indices to entry-level indices.
	var expand func(m *Module, binding []int, depth int)
	expand = func(m *Module, binding []int, depth int) {
		for _, in := range m.Insts {
			if !in.IsCall() {
				mapped := make([]int, len(in.Args))
				for i, a := range in.Args {
					mapped[i] = binding[a]
				}
				out.Gates = append(out.Gates, Gate{Op: in.Op, Qubits: mapped})
				continue
			}
			callee := p.Modules[in.Callee]
			sub := make([]int, len(in.Args))
			for i, a := range in.Args {
				sub[i] = binding[a]
			}
			fence := inlineDepth != InlineAll && depth >= inlineDepth
			if fence {
				out.Gates = append(out.Gates, Gate{Op: Barrier, Qubits: append([]int(nil), sub...)})
			}
			expand(callee, sub, depth+1)
			if fence {
				out.Gates = append(out.Gates, Gate{Op: Barrier, Qubits: append([]int(nil), sub...)})
			}
		}
	}

	identity := make([]int, entry.NumQubits)
	for i := range identity {
		identity[i] = i
	}
	expand(entry, identity, 0)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// CallTreeHeight returns the maximum call nesting depth below the entry
// module (0 when the entry makes no calls).
func (p *Program) CallTreeHeight() int {
	var height func(string) int
	height = func(name string) int {
		h := 0
		for _, in := range p.Modules[name].Insts {
			if in.IsCall() {
				if c := 1 + height(in.Callee); c > h {
					h = c
				}
			}
		}
		return h
	}
	return height(p.Entry)
}
