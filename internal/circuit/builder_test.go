package circuit

import "testing"

func TestToffoliDecomposition(t *testing.T) {
	b := NewBuilder("toffoli", 3)
	b.Toffoli(0, 1, 2)
	c := b.Circuit
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.TCount(); got != 7 {
		t.Errorf("Toffoli T-count = %d, want 7", got)
	}
	if got := c.CountOp(CNOT); got != 6 {
		t.Errorf("Toffoli CNOT count = %d, want 6", got)
	}
	if got := c.CountOp(H); got != 2 {
		t.Errorf("Toffoli H count = %d, want 2", got)
	}
}

func TestToffoliRejectsDuplicateOperands(t *testing.T) {
	b := NewBuilder("bad", 3)
	defer func() {
		if recover() == nil {
			t.Error("Toffoli with duplicate operands should panic")
		}
	}()
	b.Toffoli(0, 0, 1)
}

func TestRzUsesConfiguredDepth(t *testing.T) {
	b := NewBuilder("rz", 1)
	b.RotationTDepth = 4
	b.Rz(0, 1.234)
	if got := b.Circuit.TCount(); got != 4 {
		t.Errorf("Rz T-count = %d, want 4", got)
	}
	// Single-qubit rotation must only touch its qubit.
	for _, g := range b.Circuit.Gates {
		if len(g.Qubits) != 1 || g.Qubits[0] != 0 {
			t.Fatalf("Rz emitted gate off-qubit: %v", g)
		}
	}
}

func TestRzDefaultDepth(t *testing.T) {
	b := NewBuilder("rz", 1)
	b.Rz(0, 0.5)
	if got := b.Circuit.TCount(); got != DefaultRotationTDepth {
		t.Errorf("default Rz T-count = %d, want %d", got, DefaultRotationTDepth)
	}
}

func TestCRzStructure(t *testing.T) {
	b := NewBuilder("crz", 2)
	b.RotationTDepth = 2
	b.CRz(0, 1, 0.7)
	c := b.Circuit
	if got := c.CountOp(CNOT); got != 2 {
		t.Errorf("CRz CNOT count = %d, want 2", got)
	}
	if got := c.TCount(); got != 4 {
		t.Errorf("CRz T-count = %d, want 4 (two rotations of depth 2)", got)
	}
}

func TestZZStructure(t *testing.T) {
	b := NewBuilder("zz", 2)
	b.RotationTDepth = 2
	b.ZZ(0, 1, 0.3)
	c := b.Circuit
	if got := c.CountOp(CNOT); got != 2 {
		t.Errorf("ZZ CNOT count = %d, want 2", got)
	}
	first, last := c.Gates[0], c.Gates[len(c.Gates)-1]
	if first.Op != CNOT || last.Op != CNOT {
		t.Error("ZZ should be CNOT-conjugated")
	}
}

func TestRxBasisChange(t *testing.T) {
	b := NewBuilder("rx", 1)
	b.RotationTDepth = 2
	b.Rx(0, 0.3)
	c := b.Circuit
	if c.Gates[0].Op != H || c.Gates[len(c.Gates)-1].Op != H {
		t.Error("Rx should be H-conjugated Rz")
	}
}

func TestBuilderNativeGates(t *testing.T) {
	b := NewBuilder("native", 3)
	b.PrepZ(0)
	b.PrepX(1)
	b.X(0)
	b.Y(1)
	b.Z(2)
	b.H(0)
	b.S(1)
	b.Sdg(2)
	b.T(0)
	b.Tdg(1)
	b.CNOT(0, 1)
	b.CZ(1, 2)
	b.Swap(0, 2)
	b.Barrier(0, 1)
	b.MeasZ(0)
	b.MeasX(1)
	b.Gate(H, 2)
	c := b.Circuit
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Gates); got != 17 {
		t.Errorf("gate count = %d, want 17", got)
	}
}
