// Package circuit defines the logical-level intermediate representation
// used throughout the toolchain: quantum gates drawn from a standard
// fault-tolerant instruction set (Clifford+T plus preparation and
// measurement), flat circuits, hierarchical module programs, and a
// textual QASM form.
//
// The IR deliberately stops at the logical level: error-correction
// redundancy, tile geometry, and communication are added by the backend
// packages (surface, braid, teleport). This mirrors the paper's split
// between the ScaffCC-style frontend and the mapping/simulation backend.
package circuit

import "fmt"

// Opcode identifies a logical gate. The set is the standard universal
// fault-tolerant basis for surface codes: Cliffords are cheap
// (transversal or braided), T requires a distilled magic state, and
// arbitrary rotations are macro-expanded into Clifford+T sequences by
// the Builder before they reach this level.
type Opcode uint8

const (
	// Nop does nothing; it never appears in well-formed circuits but is
	// the zero value so uninitialized gates are detectably invalid.
	Nop Opcode = iota

	// PrepZ initializes a qubit to |0>.
	PrepZ
	// PrepX initializes a qubit to |+>.
	PrepX
	// MeasZ measures a qubit in the Z basis.
	MeasZ
	// MeasX measures a qubit in the X basis.
	MeasX

	// X is the Pauli bit-flip.
	X
	// Y is the Pauli Y.
	Y
	// Z is the Pauli phase-flip.
	Z
	// H is the Hadamard.
	H
	// S is the phase gate (Z^1/2).
	S
	// Sdg is the inverse phase gate.
	Sdg
	// T is the π/8 gate (Z^1/4); the only gate that consumes a magic state.
	T
	// Tdg is the inverse T gate; also consumes a magic state.
	Tdg

	// CNOT is the controlled-NOT; the canonical braided / transversal
	// two-qubit interaction.
	CNOT
	// CZ is the controlled-Z.
	CZ
	// Swap exchanges two qubits. At the logical level it appears only in
	// generated movement sequences; applications use CNOT/CZ.
	Swap

	// Toffoli is the doubly-controlled NOT kept as a macro instruction.
	// Backends never see it: Builder expands it to Clifford+T unless
	// KeepMacros is set (used by classical-logic verification of
	// arithmetic blocks).
	Toffoli

	// Barrier is a scheduling fence over its qubit list. It is emitted by
	// the module inliner at non-inlined call boundaries and consumes no
	// physical resources; the dependency analysis serializes across it.
	Barrier

	numOpcodes
)

// OpcodeCount is the size of the opcode space — schedulers use it to
// build dense per-opcode tables instead of maps.
const OpcodeCount = int(numOpcodes)

var opcodeNames = [numOpcodes]string{
	Nop:     "nop",
	PrepZ:   "prepz",
	PrepX:   "prepx",
	MeasZ:   "measz",
	MeasX:   "measx",
	X:       "x",
	Y:       "y",
	Z:       "z",
	H:       "h",
	S:       "s",
	Sdg:     "sdg",
	T:       "t",
	Tdg:     "tdg",
	CNOT:    "cnot",
	CZ:      "cz",
	Swap:    "swap",
	Toffoli: "toffoli",
	Barrier: "barrier",
}

// String returns the lower-case QASM mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// ParseOpcode converts a QASM mnemonic back to an Opcode.
func ParseOpcode(s string) (Opcode, error) {
	for op, name := range opcodeNames {
		if name == s && Opcode(op) != Nop {
			return Opcode(op), nil
		}
	}
	return Nop, fmt.Errorf("circuit: unknown opcode %q", s)
}

// Arity returns the number of qubit operands the opcode takes, or -1 for
// variable arity (Barrier).
func (op Opcode) Arity() int {
	switch op {
	case CNOT, CZ, Swap:
		return 2
	case Toffoli:
		return 3
	case Barrier:
		return -1
	case Nop:
		return 0
	default:
		return 1
	}
}

// IsTwoQubit reports whether the gate couples two logical qubits and
// therefore generates communication when the qubits are not colocated.
func (op Opcode) IsTwoQubit() bool { return op == CNOT || op == CZ || op == Swap }

// IsMeasurement reports whether the gate is a destructive readout.
func (op Opcode) IsMeasurement() bool { return op == MeasZ || op == MeasX }

// IsPreparation reports whether the gate (re)initializes its qubit.
func (op Opcode) IsPreparation() bool { return op == PrepZ || op == PrepX }

// IsT reports whether the gate consumes a distilled magic state.
func (op Opcode) IsT() bool { return op == T || op == Tdg }

// IsClifford reports whether the gate is in the Clifford group (cheap on
// the surface code; no ancilla factory traffic).
func (op Opcode) IsClifford() bool {
	switch op {
	case X, Y, Z, H, S, Sdg, CNOT, CZ, Swap, PrepZ, PrepX, MeasZ, MeasX:
		return true
	}
	return false
}

// Gate is one logical instruction on specific qubit indices.
type Gate struct {
	Op     Opcode
	Qubits []int
}

// NewGate constructs a gate, validating arity.
func NewGate(op Opcode, qubits ...int) (Gate, error) {
	g := Gate{Op: op, Qubits: qubits}
	if err := g.Validate(-1); err != nil {
		return Gate{}, err
	}
	return g, nil
}

// Validate checks operand arity, distinctness, and (when numQubits >= 0)
// that every operand index is in [0, numQubits).
func (g Gate) Validate(numQubits int) error {
	if g.Op == Nop || g.Op >= numOpcodes {
		return fmt.Errorf("circuit: invalid opcode %v", g.Op)
	}
	if want := g.Op.Arity(); want >= 0 && len(g.Qubits) != want {
		return fmt.Errorf("circuit: %v wants %d operands, got %d", g.Op, want, len(g.Qubits))
	}
	if g.Op == Barrier && len(g.Qubits) == 0 {
		return fmt.Errorf("circuit: barrier needs at least one qubit")
	}
	// Duplicate detection scans the prefix instead of building a set:
	// operand lists are tiny (1-2 qubits for gates, a module width for
	// barriers), and this runs per gate on every Append and Validate —
	// a map allocation here dominates hierarchical recompile profiles.
	for i, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("circuit: negative qubit index %d in %v", q, g.Op)
		}
		if numQubits >= 0 && q >= numQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d) in %v", q, numQubits, g.Op)
		}
		for _, prev := range g.Qubits[:i] {
			if prev == q {
				return fmt.Errorf("circuit: repeated qubit %d in %v", q, g.Op)
			}
		}
	}
	return nil
}

// String renders the gate in QASM form, e.g. "cnot q0,q3".
func (g Gate) String() string {
	s := g.Op.String()
	for i, q := range g.Qubits {
		if i == 0 {
			s += " "
		} else {
			s += ","
		}
		s += fmt.Sprintf("q%d", q)
	}
	return s
}
