package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteQASM serializes the circuit in the flat QASM dialect used by the
// toolchain:
//
//	# comment
//	qubits 5
//	h q0
//	cnot q0,q2
//	barrier q1,q3
//
// The format round-trips through ReadQASM and exists for golden tests,
// debugging, and interchange with external visualizers.
func WriteQASM(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	if c.Name != "" {
		fmt.Fprintf(bw, "# %s\n", c.Name)
	}
	fmt.Fprintf(bw, "qubits %d\n", c.NumQubits)
	for _, g := range c.Gates {
		fmt.Fprintln(bw, g.String())
	}
	return bw.Flush()
}

// QASMString renders the circuit as a QASM string.
func QASMString(c *Circuit) string {
	var sb strings.Builder
	if err := WriteQASM(&sb, c); err != nil {
		// strings.Builder writes cannot fail.
		panic(err)
	}
	return sb.String()
}

// ReadQASM parses the flat QASM dialect produced by WriteQASM.
func ReadQASM(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	c := &Circuit{NumQubits: -1}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if c.Name == "" && line == 1 {
				c.Name = strings.TrimSpace(strings.TrimPrefix(text, "#"))
			}
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "qubits" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("qasm line %d: malformed qubits directive", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("qasm line %d: bad qubit count %q", line, fields[1])
			}
			c.NumQubits = n
			continue
		}
		if c.NumQubits < 0 {
			return nil, fmt.Errorf("qasm line %d: gate before qubits directive", line)
		}
		op, err := ParseOpcode(fields[0])
		if err != nil {
			return nil, fmt.Errorf("qasm line %d: %w", line, err)
		}
		var qubits []int
		if len(fields) > 1 {
			for _, tok := range strings.Split(fields[1], ",") {
				tok = strings.TrimSpace(tok)
				if !strings.HasPrefix(tok, "q") {
					return nil, fmt.Errorf("qasm line %d: operand %q missing q prefix", line, tok)
				}
				q, err := strconv.Atoi(tok[1:])
				if err != nil {
					return nil, fmt.Errorf("qasm line %d: bad operand %q", line, tok)
				}
				qubits = append(qubits, q)
			}
		}
		g := Gate{Op: op, Qubits: qubits}
		if err := g.Validate(c.NumQubits); err != nil {
			return nil, fmt.Errorf("qasm line %d: %w", line, err)
		}
		c.Gates = append(c.Gates, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.NumQubits < 0 {
		return nil, fmt.Errorf("qasm: missing qubits directive")
	}
	return c, nil
}
