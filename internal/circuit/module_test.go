package circuit

import (
	"strings"
	"testing"
)

// twoLevel builds main -> outer -> inner with gates at every level.
func twoLevel() *Program {
	p := NewProgram("main", 4)
	main := p.Modules["main"]
	main.Gate(H, 0)
	main.Call("outer", 0, 1, 2, 3)
	main.Gate(MeasZ, 0)

	outer := &Module{Name: "outer", NumQubits: 4}
	outer.Gate(CNOT, 0, 1)
	outer.Call("inner", 2, 3)
	if err := p.AddModule(outer); err != nil {
		panic(err)
	}

	inner := &Module{Name: "inner", NumQubits: 2}
	inner.Gate(CZ, 0, 1)
	inner.Gate(T, 1)
	if err := p.AddModule(inner); err != nil {
		panic(err)
	}
	return p
}

func TestFlattenFullInline(t *testing.T) {
	p := twoLevel()
	c, err := p.Flatten(InlineAll)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountOp(Barrier) != 0 {
		t.Errorf("fully inlined circuit has %d barriers, want 0", c.CountOp(Barrier))
	}
	want := []string{"h q0", "cnot q0,q1", "cz q2,q3", "t q3", "measz q0"}
	if len(c.Gates) != len(want) {
		t.Fatalf("gate count %d, want %d: %v", len(c.Gates), len(want), c.Gates)
	}
	for i, w := range want {
		if c.Gates[i].String() != w {
			t.Errorf("gate %d = %q, want %q", i, c.Gates[i].String(), w)
		}
	}
}

func TestFlattenQubitRemapping(t *testing.T) {
	p := NewProgram("main", 3)
	p.Modules["main"].Call("sub", 2, 0) // callee q0->2, q1->0
	sub := &Module{Name: "sub", NumQubits: 2}
	sub.Gate(CNOT, 0, 1)
	if err := p.AddModule(sub); err != nil {
		t.Fatal(err)
	}
	c, err := p.Flatten(InlineAll)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Gates[0].String(); got != "cnot q2,q0" {
		t.Errorf("remapped gate = %q, want cnot q2,q0", got)
	}
}

func TestFlattenDepthZeroFencesTopLevelCalls(t *testing.T) {
	p := twoLevel()
	c, err := p.Flatten(0)
	if err != nil {
		t.Fatal(err)
	}
	// depth 0: the call to outer is fenced; the nested call to inner is
	// inside outer's expansion and also fenced (depth >= 0 everywhere).
	if got := c.CountOp(Barrier); got != 4 {
		t.Errorf("barriers = %d, want 4 (two fenced calls)", got)
	}
	// Gate content must be identical to the fully inlined version.
	if got, want := c.Ops(), 5; got != want {
		t.Errorf("ops = %d, want %d", got, want)
	}
}

func TestFlattenDepthOneFencesOnlyNested(t *testing.T) {
	p := twoLevel()
	c, err := p.Flatten(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountOp(Barrier); got != 2 {
		t.Errorf("barriers = %d, want 2 (only inner fenced)", got)
	}
	// The inner fence must cover exactly the two bound qubits 2,3.
	for _, g := range c.Gates {
		if g.Op == Barrier {
			if len(g.Qubits) != 2 || g.Qubits[0] != 2 || g.Qubits[1] != 3 {
				t.Errorf("inner barrier qubits = %v, want [2 3]", g.Qubits)
			}
		}
	}
}

func TestFlattenDepthAtHeightEqualsFullInline(t *testing.T) {
	p := twoLevel()
	if h := p.CallTreeHeight(); h != 2 {
		t.Fatalf("CallTreeHeight = %d, want 2", h)
	}
	c, err := p.Flatten(p.CallTreeHeight())
	if err != nil {
		t.Fatal(err)
	}
	if c.CountOp(Barrier) != 0 {
		t.Error("depth >= height should be barrier-free")
	}
}

func TestValidateRejectsUnknownCallee(t *testing.T) {
	p := NewProgram("main", 1)
	p.Modules["main"].Call("ghost", 0)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("expected unknown-callee error, got %v", err)
	}
}

func TestValidateRejectsArityMismatch(t *testing.T) {
	p := NewProgram("main", 3)
	p.Modules["main"].Call("sub", 0, 1, 2)
	sub := &Module{Name: "sub", NumQubits: 2}
	if err := p.AddModule(sub); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Error("expected arity mismatch error")
	}
}

func TestValidateRejectsRepeatedCallArg(t *testing.T) {
	p := NewProgram("main", 2)
	p.Modules["main"].Call("sub", 0, 0)
	sub := &Module{Name: "sub", NumQubits: 2}
	if err := p.AddModule(sub); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Error("expected repeated-arg error")
	}
}

func TestValidateRejectsRecursion(t *testing.T) {
	p := NewProgram("main", 1)
	p.Modules["main"].Call("a", 0)
	a := &Module{Name: "a", NumQubits: 1}
	a.Call("b", 0)
	b := &Module{Name: "b", NumQubits: 1}
	b.Call("a", 0)
	if err := p.AddModule(a); err != nil {
		t.Fatal(err)
	}
	if err := p.AddModule(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("expected recursion error, got %v", err)
	}
}

func TestValidateRejectsMissingEntry(t *testing.T) {
	p := &Program{Modules: map[string]*Module{}, Entry: "nope"}
	if err := p.Validate(); err == nil {
		t.Error("expected missing-entry error")
	}
}

func TestAddModuleRejectsDuplicates(t *testing.T) {
	p := NewProgram("main", 1)
	if err := p.AddModule(&Module{Name: "main", NumQubits: 1}); err == nil {
		t.Error("duplicate module should be rejected")
	}
	if err := p.AddModule(&Module{NumQubits: 1}); err == nil {
		t.Error("anonymous module should be rejected")
	}
}

func TestCallTreeHeightNoCalls(t *testing.T) {
	p := NewProgram("main", 1)
	p.Modules["main"].Gate(H, 0)
	if h := p.CallTreeHeight(); h != 0 {
		t.Errorf("height = %d, want 0", h)
	}
}
