package circuit

import "fmt"

// Circuit is a flat logical program: a gate list over NumQubits logical
// qubits, in program order. It is the unit every backend consumes.
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	return &Circuit{Name: name, NumQubits: n}
}

// Validate checks every gate against the circuit's qubit count.
func (c *Circuit) Validate() error {
	if c.NumQubits < 0 {
		return fmt.Errorf("circuit %q: negative qubit count", c.Name)
	}
	for i, g := range c.Gates {
		if err := g.Validate(c.NumQubits); err != nil {
			return fmt.Errorf("circuit %q gate %d: %w", c.Name, i, err)
		}
	}
	return nil
}

// Append adds a gate, panicking on malformed input. Builders construct
// gates from trusted code paths; the panic surfaces programming errors
// immediately (applications never construct gates from user input).
func (c *Circuit) Append(op Opcode, qubits ...int) {
	g := Gate{Op: op, Qubits: qubits}
	if err := g.Validate(c.NumQubits); err != nil {
		panic(err)
	}
	c.Gates = append(c.Gates, g)
}

// Ops returns the number of resource-bearing operations (barriers are
// scheduling metadata, not operations).
func (c *Circuit) Ops() int {
	n := 0
	for _, g := range c.Gates {
		if g.Op != Barrier {
			n++
		}
	}
	return n
}

// CountOp returns how many gates with the given opcode the circuit holds.
func (c *Circuit) CountOp(op Opcode) int {
	n := 0
	for _, g := range c.Gates {
		if g.Op == op {
			n++
		}
	}
	return n
}

// TCount returns the number of magic-state-consuming gates (T and T†),
// the quantity that sizes the magic-state factories.
func (c *Circuit) TCount() int { return c.CountOp(T) + c.CountOp(Tdg) }

// TwoQubitCount returns the number of two-qubit interactions, the
// quantity that generates communication (braids or teleports).
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Op.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Histogram returns per-opcode gate counts.
func (c *Circuit) Histogram() map[Opcode]int {
	h := make(map[Opcode]int)
	for _, g := range c.Gates {
		h[g.Op]++
	}
	return h
}

// InteractionGraph returns the weighted logical-qubit interaction graph:
// result[a][b] = number of two-qubit gates between a and b (symmetric,
// no self edges). The layout optimizer partitions this graph.
func (c *Circuit) InteractionGraph() map[int]map[int]int {
	g := make(map[int]map[int]int)
	add := func(a, b int) {
		m := g[a]
		if m == nil {
			m = make(map[int]int)
			g[a] = m
		}
		m[b]++
	}
	for _, gt := range c.Gates {
		if gt.Op.IsTwoQubit() {
			a, b := gt.Qubits[0], gt.Qubits[1]
			add(a, b)
			add(b, a)
		}
	}
	return g
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		out.Gates[i] = Gate{Op: g.Op, Qubits: append([]int(nil), g.Qubits...)}
	}
	return out
}
