package circuit

import (
	"strings"
	"testing"
)

// testProgram builds a small two-level program: main calls sub twice
// over different qubit windows, sub calls leaf.
func testProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("main", 4)
	main := p.Modules["main"]
	main.Gate(H, 0)
	main.Call("sub", 0, 1)
	main.Gate(CNOT, 1, 2)
	main.Call("sub", 2, 3)
	sub := &Module{Name: "sub", NumQubits: 2}
	sub.Gate(T, 0)
	sub.Call("leaf", 1)
	leaf := &Module{Name: "leaf", NumQubits: 1}
	leaf.Gate(X, 0)
	if err := p.AddModule(sub); err != nil {
		t.Fatal(err)
	}
	if err := p.AddModule(leaf); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramQASMRoundTrip(t *testing.T) {
	p := testProgram(t)
	text := ProgramQASMString(p)
	got, err := ReadProgramQASM(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadProgramQASM: %v", err)
	}
	if got.Entry != p.Entry {
		t.Fatalf("entry %q, want %q", got.Entry, p.Entry)
	}
	if len(got.Modules) != len(p.Modules) {
		t.Fatalf("modules %d, want %d", len(got.Modules), len(p.Modules))
	}
	// Re-serialization must be byte-identical — the digest layer depends
	// on canonical emission.
	if again := ProgramQASMString(got); again != text {
		t.Fatalf("round trip not canonical:\n%s\nvs\n%s", text, again)
	}
	// Flattened semantics must match.
	want, err := p.Flatten(InlineAll)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Flatten(InlineAll)
	if err != nil {
		t.Fatal(err)
	}
	if QASMString(want) != QASMString(have) {
		t.Fatal("flattened circuits differ after round trip")
	}
}

func TestProgramQASMCanonicalOrder(t *testing.T) {
	// Entry first, then remaining modules sorted by name — regardless of
	// insertion order.
	p := NewProgram("zzz", 2)
	p.Modules["zzz"].Call("beta", 0)
	p.Modules["zzz"].Call("alpha", 1)
	for _, name := range []string{"beta", "alpha"} {
		m := &Module{Name: name, NumQubits: 1}
		m.Gate(H, 0)
		if err := p.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	text := ProgramQASMString(p)
	zi := strings.Index(text, "module zzz")
	ai := strings.Index(text, "module alpha")
	bi := strings.Index(text, "module beta")
	if !(zi >= 0 && ai > zi && bi > ai) {
		t.Fatalf("canonical order violated:\n%s", text)
	}
}

func TestLooksHierarchicalQASM(t *testing.T) {
	if !LooksHierarchicalQASM("# c\nentry main\nmodule main 1\nh q0\n") {
		t.Error("entry-directive text should sniff hierarchical")
	}
	if LooksHierarchicalQASM("# flat\nqubits 2\nh q0\ncnot q0,q1\n") {
		t.Error("flat dialect should not sniff hierarchical")
	}
	if LooksHierarchicalQASM("") {
		t.Error("empty text should not sniff hierarchical")
	}
}

func TestReadProgramQASMErrors(t *testing.T) {
	cases := map[string]string{
		"missing entry":   "module main 1\nh q0\n",
		"unknown callee":  "entry main\nmodule main 1\ncall ghost q0\n",
		"arity mismatch":  "entry main\nmodule main 2\ncall sub q0,q1\nmodule sub 1\nh q0\n",
		"gate pre-module": "entry main\nh q0\nmodule main 1\n",
		"bad qubit count": "entry main\nmodule main 0\n",
		"recursion":       "entry main\nmodule main 1\ncall main q0\n",
		"duplicate entry": "entry main\nentry other\nmodule main 1\nh q0\n",
	}
	for name, text := range cases {
		if _, err := ReadProgramQASM(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := testProgram(t)
	cp := p.Clone()
	cp.Modules["leaf"].Gate(Z, 0)
	cp.Modules["main"].Insts[1].Args[0] = 3
	if len(p.Modules["leaf"].Insts) != 1 {
		t.Error("clone aliased leaf instructions")
	}
	if p.Modules["main"].Insts[1].Args[0] != 0 {
		t.Error("clone aliased call args")
	}
	if ProgramQASMString(p) == ProgramQASMString(cp) {
		t.Error("mutated clone should serialize differently")
	}
}

func TestModuleQASMStringCoversBody(t *testing.T) {
	p := testProgram(t)
	s := ModuleQASMString(p.Modules["sub"])
	if !strings.HasPrefix(s, "module sub 2\n") {
		t.Fatalf("missing header: %q", s)
	}
	if !strings.Contains(s, "call leaf q1\n") {
		t.Fatalf("missing call line: %q", s)
	}
}
