package circuit

import "fmt"

// DefaultRotationTDepth is the number of T-stage fragments used to
// macro-expand one arbitrary-angle rotation into Clifford+T. The value
// models a coarse gate-synthesis budget (~1e-3 synthesis accuracy with
// period-era ("repeat-until-success"-free) ladder synthesis); it is a
// knob, not physics: resource counts scale linearly in it.
const DefaultRotationTDepth = 8

// Builder appends gates to a Circuit with automatic macro decomposition
// of non-native gates (Toffoli, arbitrary rotations) into the Clifford+T
// set, matching what a ScaffCC-style frontend emits after gate synthesis.
type Builder struct {
	Circuit *Circuit

	// RotationTDepth is the number of alternating H/T fragments emitted
	// per arbitrary rotation. Zero selects DefaultRotationTDepth.
	RotationTDepth int

	// KeepMacros suppresses Toffoli expansion, emitting the macro
	// opcode instead. Backends require expanded circuits; the flag
	// exists so reversible-arithmetic blocks can be verified on basis
	// states by the logicsim package.
	KeepMacros bool
}

// NewBuilder returns a Builder over a fresh circuit with n qubits.
func NewBuilder(name string, n int) *Builder {
	return &Builder{Circuit: New(name, n)}
}

func (b *Builder) rotDepth() int {
	if b.RotationTDepth > 0 {
		return b.RotationTDepth
	}
	return DefaultRotationTDepth
}

// Gate appends a native gate directly.
func (b *Builder) Gate(op Opcode, qubits ...int) { b.Circuit.Append(op, qubits...) }

// PrepZ, PrepX, MeasZ, MeasX, X, Y, Z, H, S, Sdg, T, Tdg, CNOT, CZ, Swap
// are the native single- and two-qubit appends.

func (b *Builder) PrepZ(q int)   { b.Circuit.Append(PrepZ, q) }
func (b *Builder) PrepX(q int)   { b.Circuit.Append(PrepX, q) }
func (b *Builder) MeasZ(q int)   { b.Circuit.Append(MeasZ, q) }
func (b *Builder) MeasX(q int)   { b.Circuit.Append(MeasX, q) }
func (b *Builder) X(q int)       { b.Circuit.Append(X, q) }
func (b *Builder) Y(q int)       { b.Circuit.Append(Y, q) }
func (b *Builder) Z(q int)       { b.Circuit.Append(Z, q) }
func (b *Builder) H(q int)       { b.Circuit.Append(H, q) }
func (b *Builder) S(q int)       { b.Circuit.Append(S, q) }
func (b *Builder) Sdg(q int)     { b.Circuit.Append(Sdg, q) }
func (b *Builder) T(q int)       { b.Circuit.Append(T, q) }
func (b *Builder) Tdg(q int)     { b.Circuit.Append(Tdg, q) }
func (b *Builder) CNOT(c, t int) { b.Circuit.Append(CNOT, c, t) }
func (b *Builder) CZ(a, c int)   { b.Circuit.Append(CZ, a, c) }
func (b *Builder) Swap(a, c int) { b.Circuit.Append(Swap, a, c) }

// Barrier appends a scheduling fence over the given qubits.
func (b *Builder) Barrier(qubits ...int) { b.Circuit.Append(Barrier, qubits...) }

// Toffoli appends the standard 7-T-gate Clifford+T decomposition of the
// doubly-controlled NOT (controls c1, c2; target t).
func (b *Builder) Toffoli(c1, c2, t int) {
	if c1 == c2 || c1 == t || c2 == t {
		panic(fmt.Sprintf("circuit: toffoli operands must be distinct: %d %d %d", c1, c2, t))
	}
	if b.KeepMacros {
		b.Circuit.Append(Toffoli, c1, c2, t)
		return
	}
	b.H(t)
	b.CNOT(c2, t)
	b.Tdg(t)
	b.CNOT(c1, t)
	b.T(t)
	b.CNOT(c2, t)
	b.Tdg(t)
	b.CNOT(c1, t)
	b.T(c2)
	b.T(t)
	b.H(t)
	b.CNOT(c1, c2)
	b.T(c1)
	b.Tdg(c2)
	b.CNOT(c1, c2)
}

// Rz appends an arbitrary Z-rotation as an alternating H/T fragment
// ladder of configured depth — the coarse stand-in for gate synthesis
// (Solovay-Kitaev / ladder methods). The angle is accepted for
// documentation of intent; the resource model depends only on depth.
func (b *Builder) Rz(q int, angle float64) {
	_ = angle
	for i := 0; i < b.rotDepth(); i++ {
		b.H(q)
		if i%2 == 0 {
			b.T(q)
		} else {
			b.Tdg(q)
		}
	}
	b.H(q)
}

// Rx appends an arbitrary X-rotation (basis change around Rz).
func (b *Builder) Rx(q int, angle float64) {
	b.H(q)
	b.Rz(q, angle)
	b.H(q)
}

// CRz appends a controlled-Z-rotation using the standard two-CNOT
// conjugation: Rz(t, a/2); CNOT; Rz(t, -a/2); CNOT.
func (b *Builder) CRz(c, t int, angle float64) {
	b.Rz(t, angle/2)
	b.CNOT(c, t)
	b.Rz(t, -angle/2)
	b.CNOT(c, t)
}

// ZZ appends exp(-i θ Z⊗Z) on (a, c): CNOT; Rz; CNOT. This is the Ising
// coupling primitive.
func (b *Builder) ZZ(a, c int, angle float64) {
	b.CNOT(a, c)
	b.Rz(c, angle)
	b.CNOT(a, c)
}
