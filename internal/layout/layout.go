// Package layout assigns logical qubits to tiles of a 2-D grid — the
// mapping-level optimization of paper §6.2. The optimized placement
// recursively bisects the qubit interaction graph (via the partition
// package) while splitting the grid region in half, so strongly
// interacting qubits land in the same subregion and braid routes stay
// short. The naive row-major placement is retained as the baseline the
// paper compares against.
package layout

import (
	"fmt"
	"math"

	"surfcomm/internal/device"
	"surfcomm/internal/partition"
	"surfcomm/internal/scerr"
)

// Coord is a tile position on the grid (row-major). It is the shared
// grid coordinate of the device layer, so tiles, mesh junctions, and
// teleport regions interconvert without copying.
type Coord = device.Coord

// ManhattanDistance returns the L1 distance between coordinates.
func ManhattanDistance(a, b Coord) int { return device.Manhattan(a, b) }

// Placement maps logical qubits to distinct grid coordinates.
type Placement struct {
	Rows, Cols int
	Pos        []Coord
}

// GridFor returns the smallest near-square grid that fits n tiles.
func GridFor(n int) (rows, cols int) {
	if n <= 0 {
		return 0, 0
	}
	cols = int(math.Ceil(math.Sqrt(float64(n))))
	rows = (n + cols - 1) / cols
	return rows, cols
}

// RowMajor places qubit i at (i/cols, i%cols): the unoptimized baseline.
func RowMajor(n int) *Placement {
	rows, cols := GridFor(n)
	p := &Placement{Rows: rows, Cols: cols, Pos: make([]Coord, n)}
	for i := 0; i < n; i++ {
		p.Pos[i] = Coord{Row: i / cols, Col: i % cols}
	}
	return p
}

// Validate checks that every qubit has an in-bounds, distinct tile.
func (p *Placement) Validate() error {
	seen := make(map[Coord]int, len(p.Pos))
	for q, c := range p.Pos {
		if c.Row < 0 || c.Row >= p.Rows || c.Col < 0 || c.Col >= p.Cols {
			return fmt.Errorf("layout: qubit %d at %v outside %dx%d grid", q, c, p.Rows, p.Cols)
		}
		if prev, dup := seen[c]; dup {
			return fmt.Errorf("layout: qubits %d and %d share tile %v", prev, q, c)
		}
		seen[c] = q
	}
	return nil
}

// Distance returns the Manhattan tile distance between two qubits.
func (p *Placement) Distance(a, b int) int {
	return ManhattanDistance(p.Pos[a], p.Pos[b])
}

// WeightedDistance returns Σ weight(a,b)·distance(a,b) over all
// interaction edges — the objective the optimizer minimizes.
func WeightedDistance(g *partition.Graph, p *Placement) int {
	total := 0
	n := g.NumVertices()
	for a := 0; a < n; a++ {
		for _, b := range g.Neighbors(a) {
			if a < b {
				total += g.EdgeWeight(a, b) * p.Distance(a, b)
			}
		}
	}
	return total
}

// Optimized places the interaction graph's vertices by recursive
// bisection: the grid region and the vertex set are halved together,
// cutting as little interaction weight as possible at each split.
// Several bisection seeds are tried and the row-major baseline is kept
// as a candidate, so the optimizer never returns a placement worse than
// naive (chain-like interaction graphs are already near-optimal under
// row-major).
func Optimized(g *partition.Graph, seed int64) (*Placement, error) {
	n := g.NumVertices()
	best := RowMajor(n)
	if n == 0 {
		return best, nil
	}
	bestCost := WeightedDistance(g, best)
	for trial := 0; trial < 3; trial++ {
		p, err := bisectionPlacement(g, seed+int64(trial)*101)
		if err != nil {
			return nil, err
		}
		if cost := WeightedDistance(g, p); cost < bestCost {
			best, bestCost = p, cost
		}
	}
	return best, nil
}

// bisectionPlacement runs one recursive-bisection placement pass.
func bisectionPlacement(g *partition.Graph, seed int64) (*Placement, error) {
	n := g.NumVertices()
	rows, cols := GridFor(n)
	p := &Placement{Rows: rows, Cols: cols, Pos: make([]Coord, n)}
	vertices := make([]int, n)
	for i := range vertices {
		vertices[i] = i
	}
	r := region{row: 0, col: 0, rows: rows, cols: cols}
	if err := placeRecursive(g, vertices, r, p, seed); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("layout: internal error: %w", err)
	}
	return p, nil
}

// region is a rectangular grid window.
type region struct {
	row, col   int
	rows, cols int
}

func (r region) capacity() int { return r.rows * r.cols }

// split halves the region along its longer dimension, returning the two
// subwindows (first gets the ceiling half).
func (r region) split() (region, region) {
	if r.cols >= r.rows {
		left := (r.cols + 1) / 2
		return region{r.row, r.col, r.rows, left},
			region{r.row, r.col + left, r.rows, r.cols - left}
	}
	top := (r.rows + 1) / 2
	return region{r.row, r.col, top, r.cols},
		region{r.row + top, r.col, r.rows - top, r.cols}
}

// cells lists the region's coordinates row-major.
func (r region) cells() []Coord {
	out := make([]Coord, 0, r.capacity())
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.cols; j++ {
			out = append(out, Coord{Row: r.row + i, Col: r.col + j})
		}
	}
	return out
}

func placeRecursive(g *partition.Graph, vertices []int, r region, p *Placement, seed int64) error {
	if len(vertices) > r.capacity() {
		return fmt.Errorf("layout: %d vertices exceed region capacity %d", len(vertices), r.capacity())
	}
	if len(vertices) == 0 {
		return nil
	}
	if len(vertices) <= 2 || r.capacity() <= 2 {
		for i, v := range vertices {
			p.Pos[v] = r.cells()[i]
		}
		return nil
	}
	rA, rB := r.split()
	sub, mapping, err := g.InducedSubgraph(vertices)
	if err != nil {
		return err
	}
	side, _ := partition.Bisect(sub, partition.Options{Seed: seed})

	// Fit the two parts to the subregion capacities: the bisection is
	// balanced within tolerance, but regions have hard capacities, so
	// surplus vertices migrate by best move gain.
	fitSides(sub, side, rA.capacity(), rB.capacity())

	zero, one := partition.SideVertices(side)
	partA := make([]int, len(zero))
	for i, v := range zero {
		partA[i] = mapping[v]
	}
	partB := make([]int, len(one))
	for i, v := range one {
		partB[i] = mapping[v]
	}
	if err := placeRecursive(g, partA, rA, p, seed+1); err != nil {
		return err
	}
	return placeRecursive(g, partB, rB, p, seed+2)
}

// --- Device-aware placement ---
//
// On a defective device the placement grid has unusable tiles and the
// cost of separating two interacting qubits is no longer their raw
// Manhattan distance (routes detour around defects). The *On variants
// below take a device.View — which tiles are alive and the hop distance
// between them — refuse dead tiles, and optimize against device-aware
// distances. A nil view selects the original ideal-grid paths, which
// stay bit-identical.

// RowMajorOn places qubit i at the i-th usable tile in row-major order
// — the naive baseline on a defective device. It fails with an error
// matching scerr.ErrUnroutable when the view has fewer usable tiles
// than qubits. A nil view is the ideal grid.
func RowMajorOn(n int, v *device.View) (*Placement, error) {
	if v == nil {
		return RowMajor(n), nil
	}
	if v.AliveCount() < n {
		return nil, scerr.Unroutable("layout: %d qubits need %d usable tiles, device has %d",
			n, n, v.AliveCount())
	}
	p := &Placement{Rows: v.Rows(), Cols: v.Cols(), Pos: make([]Coord, n)}
	q := 0
	for r := 0; r < v.Rows() && q < n; r++ {
		for c := 0; c < v.Cols() && q < n; c++ {
			if v.Alive(Coord{Row: r, Col: c}) {
				p.Pos[q] = Coord{Row: r, Col: c}
				q++
			}
		}
	}
	return p, nil
}

// ValidateOn checks Validate plus that no qubit sits on a dead tile.
func (p *Placement) ValidateOn(v *device.View) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if v == nil {
		return nil
	}
	for q, c := range p.Pos {
		if !v.Alive(c) {
			return fmt.Errorf("layout: qubit %d placed on dead tile %v", q, c)
		}
	}
	return nil
}

// DistanceOn returns the device-aware tile distance between two qubits
// (Manhattan when the view is nil).
func (p *Placement) DistanceOn(a, b int, v *device.View) int {
	if v == nil {
		return p.Distance(a, b)
	}
	return v.Distance(p.Pos[a], p.Pos[b])
}

// WeightedDistanceOn is WeightedDistance under device-aware distances.
func WeightedDistanceOn(g *partition.Graph, p *Placement, v *device.View) int {
	if v == nil {
		return WeightedDistance(g, p)
	}
	total := 0
	n := g.NumVertices()
	for a := 0; a < n; a++ {
		for _, b := range g.Neighbors(a) {
			if a < b {
				total += g.EdgeWeight(a, b) * v.Distance(p.Pos[a], p.Pos[b])
			}
		}
	}
	return total
}

// errorPenaltyWeight converts a placement's summed per-tile calibrated
// error rate into distance units for the optimizer objective: a tile
// that is 1% worse than its neighbors costs one braid hop. Large enough
// to steer qubits off noisy tiles, small enough that distance still
// dominates.
const errorPenaltyWeight = 100

// ErrorPenalty sums the calibrated error rates of the tiles a placement
// occupies (0 on an uncalibrated view or nil view) — the low-error-
// region preference term of the placement objective.
func ErrorPenalty(p *Placement, v *device.View) float64 {
	if v == nil || !v.Calibrated() {
		return 0
	}
	total := 0.0
	for _, c := range p.Pos {
		total += v.ErrorRate(c)
	}
	return total
}

// placementCost is the full device-aware objective: weighted interaction
// distance plus the calibrated error penalty. On an uncalibrated view
// the penalty is 0 and the comparison is exactly the integer distance
// objective.
func placementCost(g *partition.Graph, p *Placement, v *device.View) float64 {
	return float64(WeightedDistanceOn(g, p, v)) + errorPenaltyWeight*ErrorPenalty(p, v)
}

// OptimizedOn is Optimized against a device view: recursive bisection
// over the usable tiles only, costed with device-aware distances (plus a
// low-error-region preference when the view carries calibration), with
// the device-aware row-major placement kept as the never-worse-than-
// naive candidate. A nil view selects the original Optimized exactly.
func OptimizedOn(g *partition.Graph, seed int64, v *device.View) (*Placement, error) {
	if v == nil {
		return Optimized(g, seed)
	}
	n := g.NumVertices()
	best, err := RowMajorOn(n, v)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return best, nil
	}
	bestCost := placementCost(g, best, v)
	for trial := 0; trial < 3; trial++ {
		p, err := bisectionPlacementOn(g, seed+int64(trial)*101, v)
		if err != nil {
			return nil, err
		}
		if cost := placementCost(g, p, v); cost < bestCost {
			best, bestCost = p, cost
		}
	}
	return best, nil
}

// bisectionPlacementOn runs one recursive-bisection pass over the
// usable tiles of the view.
func bisectionPlacementOn(g *partition.Graph, seed int64, v *device.View) (*Placement, error) {
	n := g.NumVertices()
	p := &Placement{Rows: v.Rows(), Cols: v.Cols(), Pos: make([]Coord, n)}
	vertices := make([]int, n)
	for i := range vertices {
		vertices[i] = i
	}
	r := region{row: 0, col: 0, rows: v.Rows(), cols: v.Cols()}
	if err := placeRecursiveOn(g, vertices, r, p, seed, v); err != nil {
		return nil, err
	}
	if err := p.ValidateOn(v); err != nil {
		return nil, fmt.Errorf("layout: internal error: %w", err)
	}
	return p, nil
}

// capacityOn counts the region's usable tiles.
func (r region) capacityOn(v *device.View) int {
	n := 0
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.cols; j++ {
			if v.Alive(Coord{Row: r.row + i, Col: r.col + j}) {
				n++
			}
		}
	}
	return n
}

// cellsOn lists the region's usable tiles row-major.
func (r region) cellsOn(v *device.View) []Coord {
	out := make([]Coord, 0, r.capacity())
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.cols; j++ {
			if c := (Coord{Row: r.row + i, Col: r.col + j}); v.Alive(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// placeRecursiveOn is placeRecursive with region capacities counted
// over usable tiles only, so qubits never land on dead ones.
func placeRecursiveOn(g *partition.Graph, vertices []int, r region, p *Placement, seed int64, v *device.View) error {
	capacity := r.capacityOn(v)
	if len(vertices) > capacity {
		return fmt.Errorf("layout: %d vertices exceed usable region capacity %d", len(vertices), capacity)
	}
	if len(vertices) == 0 {
		return nil
	}
	if len(vertices) <= 2 || capacity <= 2 {
		cells := r.cellsOn(v)
		for i, vtx := range vertices {
			p.Pos[vtx] = cells[i]
		}
		return nil
	}
	rA, rB := r.split()
	sub, mapping, err := g.InducedSubgraph(vertices)
	if err != nil {
		return err
	}
	side, _ := partition.Bisect(sub, partition.Options{Seed: seed})
	fitSides(sub, side, rA.capacityOn(v), rB.capacityOn(v))
	zero, one := partition.SideVertices(side)
	partA := make([]int, len(zero))
	for i, vtx := range zero {
		partA[i] = mapping[vtx]
	}
	partB := make([]int, len(one))
	for i, vtx := range one {
		partB[i] = mapping[vtx]
	}
	if err := placeRecursiveOn(g, partA, rA, p, seed+1, v); err != nil {
		return err
	}
	return placeRecursiveOn(g, partB, rB, p, seed+2, v)
}

// fitSides enforces |side 0| ≤ capA and |side 1| ≤ capB by moving the
// least-attached vertices off the oversubscribed side.
func fitSides(g *partition.Graph, side []int, capA, capB int) {
	counts := [2]int{}
	for _, s := range side {
		counts[s]++
	}
	caps := [2]int{capA, capB}
	for from := 0; from < 2; from++ {
		to := 1 - from
		for counts[from] > caps[from] {
			best, bestGain := -1, 0
			for v, s := range side {
				if s != from {
					continue
				}
				gain := 0
				for _, u := range g.Neighbors(v) {
					w := g.EdgeWeight(v, u)
					if side[u] == from {
						gain -= w
					} else {
						gain += w
					}
				}
				if best < 0 || gain > bestGain {
					best, bestGain = v, gain
				}
			}
			side[best] = to
			counts[from]--
			counts[to]++
		}
	}
}
