package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
	"surfcomm/internal/partition"
)

func interactionGraph(t *testing.T, c *circuit.Circuit) *partition.Graph {
	t.Helper()
	g := partition.NewGraph(c.NumQubits)
	for _, gate := range c.Gates {
		if gate.Op.IsTwoQubit() {
			if err := g.AddEdge(gate.Qubits[0], gate.Qubits[1], 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestManhattanDistance(t *testing.T) {
	if got := ManhattanDistance(Coord{Row: 0, Col: 0}, Coord{Row: 3, Col: 4}); got != 7 {
		t.Errorf("distance = %d, want 7", got)
	}
	if got := ManhattanDistance(Coord{Row: 5, Col: 2}, Coord{Row: 1, Col: 6}); got != 8 {
		t.Errorf("distance = %d, want 8", got)
	}
	if got := ManhattanDistance(Coord{Row: 2, Col: 2}, Coord{Row: 2, Col: 2}); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{0, 0, 0}, {1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {5, 2, 3}, {9, 3, 3}, {10, 3, 4}, {17, 4, 5},
	}
	for _, c := range cases {
		rows, cols := GridFor(c.n)
		if rows != c.rows || cols != c.cols {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", c.n, rows, cols, c.rows, c.cols)
		}
		if c.n > 0 && rows*cols < c.n {
			t.Errorf("GridFor(%d) capacity %d too small", c.n, rows*cols)
		}
	}
}

func TestRowMajorValid(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		p := RowMajor(n)
		if err := p.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRowMajorAdjacent(t *testing.T) {
	p := RowMajor(9) // 3x3
	if p.Distance(0, 1) != 1 {
		t.Error("consecutive qubits should be adjacent")
	}
	if p.Distance(0, 3) != 1 {
		t.Error("qubit 3 should be directly below qubit 0 on a 3-wide grid")
	}
	if p.Distance(0, 8) != 4 {
		t.Errorf("corner distance = %d, want 4", p.Distance(0, 8))
	}
}

func TestValidateCatchesCollision(t *testing.T) {
	p := &Placement{Rows: 2, Cols: 2, Pos: []Coord{{Row: 0, Col: 0}, {Row: 0, Col: 0}}}
	if err := p.Validate(); err == nil {
		t.Error("shared tile should fail validation")
	}
	p = &Placement{Rows: 2, Cols: 2, Pos: []Coord{{Row: 0, Col: 0}, {Row: 5, Col: 0}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-bounds tile should fail validation")
	}
}

func TestOptimizedValidPlacement(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 25, 64} {
		g := partition.NewGraph(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n*3; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				_ = g.AddEdge(a, b, 1+rng.Intn(4))
			}
		}
		p, err := Optimized(g, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if len(p.Pos) != n {
			t.Errorf("n=%d: placed %d qubits", n, len(p.Pos))
		}
	}
}

func TestOptimizedBeatsRowMajorOnClusters(t *testing.T) {
	// Shuffled clusters of 4 heavily-interacting qubits: row-major
	// scatters them, the optimizer should reunite them.
	const n = 36
	g := partition.NewGraph(n)
	rng := rand.New(rand.NewSource(23))
	perm := rng.Perm(n)
	for c := 0; c < n/4; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if err := g.AddEdge(perm[4*c+i], perm[4*c+j], 10); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	naive := WeightedDistance(g, RowMajor(n))
	opt, err := Optimized(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	optCost := WeightedDistance(g, opt)
	if optCost >= naive {
		t.Errorf("optimized cost %d should beat row-major %d", optCost, naive)
	}
	// Clusters of 4 can always be placed in 2x2 blocks: 6 edges x 10
	// weight x avg distance ~1.33 => ~80 per cluster is achievable;
	// assert we got at least 2x better than naive as a regression floor.
	if optCost*2 > naive {
		t.Logf("note: optimized=%d naive=%d (weak improvement)", optCost, naive)
	}
}

func TestOptimizedBeatsRowMajorOnApps(t *testing.T) {
	for _, w := range []apps.Workload{
		{Name: "SQ", Circuit: apps.SQ(apps.SQConfig{N: 8, Iters: 1})},
		{Name: "IM", Circuit: apps.Ising(apps.IsingConfig{N: 32, Steps: 1}, true)},
	} {
		g := interactionGraph(t, w.Circuit)
		naive := WeightedDistance(g, RowMajor(g.NumVertices()))
		opt, err := Optimized(g, 3)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		optCost := WeightedDistance(g, opt)
		if optCost > naive {
			t.Errorf("%s: optimized %d worse than row-major %d", w.Name, optCost, naive)
		}
	}
}

func TestWeightedDistanceKnownValue(t *testing.T) {
	g := partition.NewGraph(4)
	if err := g.AddEdge(0, 3, 5); err != nil {
		t.Fatal(err)
	}
	p := RowMajor(4) // 2x2: 0=(0,0) 3=(1,1)
	if got := WeightedDistance(g, p); got != 10 {
		t.Errorf("weighted distance = %d, want 10", got)
	}
}

// Property: Optimized always yields a valid permutation placement with
// every vertex inside the grid.
func TestOptimizedQuick(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		n := 1 + int(nRaw%40)
		g := partition.NewGraph(n)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(eRaw); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				_ = g.AddEdge(a, b, 1)
			}
		}
		p, err := Optimized(g, seed)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegionSplit(t *testing.T) {
	r := region{0, 0, 4, 6}
	a, b := r.split() // splits columns: 3 | 3
	if a.cols != 3 || b.cols != 3 || a.rows != 4 || b.rows != 4 {
		t.Errorf("split = %+v, %+v", a, b)
	}
	if b.col != 3 {
		t.Errorf("right region starts at col %d, want 3", b.col)
	}
	r = region{1, 1, 5, 2}
	a, b = r.split() // splits rows: 3 | 2
	if a.rows != 3 || b.rows != 2 || b.row != 4 {
		t.Errorf("split = %+v, %+v", a, b)
	}
	if a.capacity()+b.capacity() != r.capacity() {
		t.Error("split loses capacity")
	}
}
