package layout

import (
	"errors"
	"testing"

	"surfcomm/internal/device"
	"surfcomm/internal/partition"
	"surfcomm/internal/scerr"
)

// TestRowMajorOnSkipsDeadTiles places around a dead tile and refuses
// grids with too few usable tiles.
func TestRowMajorOnSkipsDeadTiles(t *testing.T) {
	v := device.NewView(2, 2, func(c Coord) bool { return c != Coord{Row: 0, Col: 1} })
	p, err := RowMajorOn(3, v)
	if err != nil {
		t.Fatal(err)
	}
	want := []Coord{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 1, Col: 1}}
	for i, c := range p.Pos {
		if c != want[i] {
			t.Fatalf("qubit %d at %v, want %v", i, c, want[i])
		}
	}
	if err := p.ValidateOn(v); err != nil {
		t.Fatal(err)
	}
	if _, err := RowMajorOn(4, v); !errors.Is(err, scerr.ErrUnroutable) {
		t.Fatalf("over-capacity err = %v, want ErrUnroutable", err)
	}
}

// TestRowMajorOnNilViewMatchesRowMajor pins the perfect fast path.
func TestRowMajorOnNilViewMatchesRowMajor(t *testing.T) {
	p, err := RowMajorOn(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := RowMajor(7)
	if p.Rows != ref.Rows || p.Cols != ref.Cols {
		t.Fatalf("dims %dx%d != %dx%d", p.Rows, p.Cols, ref.Rows, ref.Cols)
	}
	for i := range p.Pos {
		if p.Pos[i] != ref.Pos[i] {
			t.Fatalf("qubit %d at %v != %v", i, p.Pos[i], ref.Pos[i])
		}
	}
}

// TestOptimizedOnAvoidsDeadTiles runs the device-aware optimizer on a
// grid with dead cells: the placement must validate, never land on a
// dead tile, and never be worse than the device-aware row-major
// baseline under device-aware distances.
func TestOptimizedOnAvoidsDeadTiles(t *testing.T) {
	g := partition.NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}} {
		if err := g.AddEdge(e[0], e[1], 2); err != nil {
			t.Fatal(err)
		}
	}
	v := device.NewView(3, 3, func(c Coord) bool {
		return c != Coord{Row: 1, Col: 1} && c != Coord{Row: 0, Col: 2}
	})
	p, err := OptimizedOn(g, 1, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateOn(v); err != nil {
		t.Fatal(err)
	}
	base, err := RowMajorOn(6, v)
	if err != nil {
		t.Fatal(err)
	}
	if WeightedDistanceOn(g, p, v) > WeightedDistanceOn(g, base, v) {
		t.Fatalf("optimized placement worse than baseline: %d > %d",
			WeightedDistanceOn(g, p, v), WeightedDistanceOn(g, base, v))
	}
}
