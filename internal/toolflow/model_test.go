package toolflow

import (
	"math"
	"testing"

	"surfcomm/internal/apps"
)

// synthetic models: fast to evaluate, no simulation required.
func serialModel() AppModel {
	return AppModel{
		Name:             "serial",
		Parallelism:      1.5,
		SchedParallelism: 1.5,
		MoveFraction:     0.45,
		CongestionDD:     1.1,
		QubitsForOps:     func(k float64) float64 { return math.Max(2, math.Sqrt(k/80)) },
	}
}

func parallelModel() AppModel {
	return AppModel{
		Name:             "parallel",
		Parallelism:      50,
		SchedParallelism: 45,
		MoveFraction:     0.45,
		CongestionDD:     2.5,
		QubitsForOps:     func(k float64) float64 { return math.Max(2, math.Sqrt(k/40)) },
	}
}

func TestModelValidate(t *testing.T) {
	good := serialModel()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Parallelism = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero parallelism should fail")
	}
	bad = good
	bad.CongestionDD = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("congestion below 1 should fail")
	}
	bad = good
	bad.QubitsForOps = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing scaling should fail")
	}
	bad = good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("missing name should fail")
	}
}

func TestEvaluateBasicInvariants(t *testing.T) {
	m := serialModel()
	for _, k := range []float64{10, 1e6, 1e12, 1e18} {
		dp, err := Evaluate(m, k, 1e-5)
		if err != nil {
			t.Fatalf("K=%g: %v", k, err)
		}
		if dp.PlanarQubits <= 0 || dp.DDQubits <= 0 || dp.PlanarSeconds <= 0 || dp.DDSeconds <= 0 {
			t.Fatalf("K=%g: non-positive resources: %+v", k, dp)
		}
		if dp.QubitsRatio <= 1 {
			t.Errorf("K=%g: planar tiles are smaller — qubits ratio %.2f should exceed 1", k, dp.QubitsRatio)
		}
		if got := dp.QubitsRatio * dp.TimeRatio; math.Abs(got-dp.SpaceTimeRatio) > 1e-9 {
			t.Errorf("K=%g: product inconsistency: %g vs %g", k, got, dp.SpaceTimeRatio)
		}
	}
}

func TestEvaluateDistanceMonotoneInK(t *testing.T) {
	m := serialModel()
	prev := 0
	for _, k := range []float64{1, 1e4, 1e8, 1e12, 1e16, 1e20, 1e24} {
		dp, err := Evaluate(m, k, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Distance < prev {
			t.Errorf("distance decreased at K=%g: %d < %d", k, dp.Distance, prev)
		}
		prev = dp.Distance
	}
}

func TestEvaluatePlanarFavoredAtSmallK(t *testing.T) {
	// The headline small-K claim: planar codes fare better (smaller
	// lattices) before the crossover.
	for _, m := range []AppModel{serialModel(), parallelModel()} {
		dp, err := Evaluate(m, 100, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if dp.SpaceTimeRatio <= 1 {
			t.Errorf("%s: space-time ratio at K=100 is %.2f, want > 1 (planar favored)",
				m.Name, dp.SpaceTimeRatio)
		}
	}
}

func TestEvaluateRatioDeclinesWithK(t *testing.T) {
	m := serialModel()
	prev := math.Inf(1)
	for _, k := range []float64{1e2, 1e6, 1e10, 1e14, 1e18, 1e22} {
		dp, err := Evaluate(m, k, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if dp.SpaceTimeRatio > prev*1.05 { // allow distance-step wiggle
			t.Errorf("ratio rose at K=%g: %.3f > %.3f", k, dp.SpaceTimeRatio, prev)
		}
		prev = dp.SpaceTimeRatio
	}
}

func TestEvaluateErrors(t *testing.T) {
	m := serialModel()
	if _, err := Evaluate(m, 0.5, 1e-5); err == nil {
		t.Error("K < 1 should fail")
	}
	if _, err := Evaluate(m, 1e6, 2e-2); err == nil {
		t.Error("above-threshold device should fail")
	}
	bad := m
	bad.QubitsForOps = nil
	if _, err := Evaluate(bad, 1e6, 1e-5); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestCrossoverExistsAndOrdered(t *testing.T) {
	s, sok := Crossover(serialModel(), 1e-5)
	p, pok := Crossover(parallelModel(), 1e-5)
	if !sok || !pok {
		t.Fatalf("both crossovers should exist: serial=%v parallel=%v", sok, pok)
	}
	if s <= 1 || p <= 1 {
		t.Fatalf("crossovers should be beyond K=1: %g, %g", s, p)
	}
	// The paper's central claim: congestion pushes the parallel app's
	// crossover to larger computations.
	if p <= s {
		t.Errorf("parallel crossover %.3g should exceed serial %.3g", p, s)
	}
}

func TestCrossoverMonotoneInErrorRate(t *testing.T) {
	m := serialModel()
	prev := math.Inf(1)
	for _, p := range []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		k, ok := Crossover(m, p)
		if !ok {
			continue
		}
		if k > prev*1.10 {
			t.Errorf("boundary rose at p=%g: %.3g > %.3g", p, k, prev)
		}
		prev = k
	}
}

func TestCrossoverUncorrectableDevice(t *testing.T) {
	if _, ok := Crossover(serialModel(), 5e-2); ok {
		t.Error("above-threshold device has no meaningful crossover")
	}
}

func TestBoundarySweep(t *testing.T) {
	rates := Figure9ErrorRates()
	if len(rates) != 11 {
		t.Fatalf("error rates = %d, want 11 (1e-8..1e-3, half-decades)", len(rates))
	}
	if rates[0] != 1e-8 || math.Abs(rates[len(rates)-1]-1e-3)/1e-3 > 1e-9 {
		t.Errorf("rate endpoints: %g .. %g", rates[0], rates[len(rates)-1])
	}
	pts := Boundary(serialModel(), rates)
	if len(pts) != len(rates) {
		t.Fatalf("boundary points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.PhysicalError != rates[i] {
			t.Errorf("point %d rate %g != %g", i, pt.PhysicalError, rates[i])
		}
		if !pt.OffChart && pt.CrossoverOps < 1 {
			t.Errorf("point %d: invalid crossover %g", i, pt.CrossoverOps)
		}
	}
}

func TestCurve(t *testing.T) {
	pts, err := Curve(serialModel(), 1e-6, 0, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 25 {
		t.Fatalf("points = %d, want 25", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TotalOps <= pts[i-1].TotalOps {
			t.Error("curve K values must increase")
		}
	}
}

func TestCharacterizeSmallApps(t *testing.T) {
	gse, err := Characterize(apps.Workload{Name: "GSE", Circuit: apps.GSE(apps.GSEConfig{M: 6, Steps: 1})}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := gse.Validate(); err != nil {
		t.Fatal(err)
	}
	im, err := Characterize(apps.Workload{Name: "IM", Circuit: apps.Ising(apps.IsingConfig{N: 32, Steps: 1}, true)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if im.Parallelism <= gse.Parallelism {
		t.Errorf("IM parallelism %.1f should exceed GSE %.1f", im.Parallelism, gse.Parallelism)
	}
	if im.CongestionDD < gse.CongestionDD {
		t.Errorf("IM congestion %.2f should be at least GSE %.2f", im.CongestionDD, gse.CongestionDD)
	}
}

func TestCharacterizeUnknownScaling(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 4, Steps: 1})
	if _, err := Characterize(apps.Workload{Name: "mystery", Circuit: c}, 1); err == nil {
		t.Error("unknown app name should fail (no scaling model)")
	}
}

func TestModelFor(t *testing.T) {
	models := []AppModel{serialModel(), parallelModel()}
	m, err := ModelFor(models, "parallel")
	if err != nil || m.Name != "parallel" {
		t.Errorf("ModelFor failed: %v %v", m, err)
	}
	if _, err := ModelFor(models, "nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

// TestReferenceModelsIntegration runs the full characterization suite —
// the slowest test in the package, guarded by -short.
func TestReferenceModelsIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration characterization skipped in -short mode")
	}
	models, err := ReferenceModels(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 5 {
		t.Fatalf("models = %d, want 5", len(models))
	}
	byName := map[string]AppModel{}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		byName[m.Name] = m
	}
	// Paper-shape assertions on the measured characterization.
	if !(byName["GSE"].Parallelism < byName["SQ"].Parallelism) {
		t.Error("GSE should be the most serial app")
	}
	if !(byName["SHA-1"].Parallelism > 5) {
		t.Error("SHA-1 should be parallel")
	}
	if !(byName["IM_Fully_Inlined"].Parallelism > byName["IM_Semi_Inlined"].Parallelism) {
		t.Error("full inlining should expose more parallelism")
	}
	if !(byName["IM_Fully_Inlined"].CongestionDD > byName["GSE"].CongestionDD) {
		t.Error("parallel apps should congest braids more than serial apps")
	}
	// Boundary ordering at a mid-range error rate: the congested
	// parallel app crosses over later than the serial one.
	gseK, ok1 := Crossover(byName["GSE"], 1e-4)
	imK, ok2 := Crossover(byName["IM_Fully_Inlined"], 1e-4)
	if !ok1 || !ok2 {
		t.Fatalf("both crossovers should exist at 1e-4: %v %v", ok1, ok2)
	}
	if imK <= gseK {
		t.Errorf("IM boundary %.3g should sit above GSE %.3g at p=1e-4", imK, gseK)
	}
}
