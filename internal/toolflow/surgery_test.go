package toolflow

import (
	"math"
	"testing"
)

func TestEvaluateSurgeryBasics(t *testing.T) {
	m := serialModel()
	sp, err := EvaluateSurgery(m, 1e8, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if sp.SurgeryQubits <= 0 || sp.SurgerySeconds <= 0 {
		t.Fatalf("non-positive surgery resources: %+v", sp)
	}
	// Surgery keeps planar-code space: cheaper than double-defect,
	// within a corridor factor of planar.
	if sp.SurgeryQubits >= sp.DDQubits {
		t.Errorf("surgery space %.3g should undercut double-defect %.3g",
			sp.SurgeryQubits, sp.DDQubits)
	}
	if sp.SurgeryQubits <= sp.PlanarQubits {
		t.Errorf("surgery corridors cost something: %.3g vs planar %.3g",
			sp.SurgeryQubits, sp.PlanarQubits)
	}
	// Distance-dependent unprefetchable chains: slower than planar.
	if sp.SurgerySeconds <= sp.PlanarSeconds {
		t.Errorf("surgery time %.3g should exceed planar %.3g",
			sp.SurgerySeconds, sp.PlanarSeconds)
	}
}

// TestSurgeryDominatedAcrossDesignSpace quantifies the paper's §8.2
// dismissal: across the evaluated design space, lattice surgery is
// dominated by braiding or teleportation (usually both).
func TestSurgeryDominatedAcrossDesignSpace(t *testing.T) {
	for _, m := range []AppModel{serialModel(), parallelModel()} {
		for _, k := range []float64{1e4, 1e8, 1e12, 1e16} {
			for _, p := range []float64{1e-8, 1e-5, 1e-3} {
				sp, err := EvaluateSurgery(m, k, p)
				if err != nil {
					t.Fatal(err)
				}
				if !sp.SurgeryDominated() {
					t.Errorf("%s K=%g p=%g: surgery undominated (vsPlanar=%.2f vsDD=%.2f)",
						m.Name, k, p, sp.SurgeryVsPlanar, sp.SurgeryVsDD)
				}
			}
		}
	}
}

func TestSurgerySlowerThanPlanarEverywhere(t *testing.T) {
	// The merge/split chain is unprefetchable and fully
	// distance-dependent: surgery never beats planar on time. (The gap
	// is non-monotone in K because planar's own EPR-retry inflation
	// grows at very large machines, but it never closes.)
	m := serialModel()
	for _, k := range []float64{1e6, 1e10, 1e14, 1e18} {
		sp, err := EvaluateSurgery(m, k, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		ratio := sp.SurgerySeconds / sp.PlanarSeconds
		if math.IsNaN(ratio) || ratio <= 1 {
			t.Errorf("surgery should be slower than planar at K=%g, ratio %.2f", k, ratio)
		}
	}
}

func TestEvaluateSurgeryPropagatesErrors(t *testing.T) {
	bad := serialModel()
	bad.QubitsForOps = nil
	if _, err := EvaluateSurgery(bad, 1e6, 1e-5); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := EvaluateSurgery(serialModel(), 1e6, 5e-2); err == nil {
		t.Error("uncorrectable device should fail")
	}
}
