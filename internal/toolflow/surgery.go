package toolflow

import (
	"math"

	"surfcomm/internal/surface"
)

// Lattice surgery (paper §8.2) — the third communication option the
// paper discusses and declines to evaluate in depth: adjacent planar
// patches merge and split by toggling boundary syndromes, and distant
// qubits interact through a chain of merges. The paper's argument is
// qualitative: "the chain of merges and splits does not have the
// benefits of braids (fast movement) nor teleportation
// (prefetchability)". This extension quantifies that claim inside the
// same cost model.
//
// Cost axioms:
//   - Space: planar tiles (surgery keeps the planar code's low qubit
//     overhead) plus a half-tile-wide merge corridor per tile row/col —
//     cheaper than double-defect, slightly above bare planar.
//   - Time: each communicating op performs a chain of merge+split
//     steps across the Manhattan distance; every step stabilizes for d
//     cycles (a merged boundary must be measured d rounds before the
//     product is trusted). Nothing is prefetchable and latency grows
//     with distance: cost per comm op = distance · 2d cycles.

// SurgeryPoint extends a DesignPoint with the lattice-surgery column.
type SurgeryPoint struct {
	DesignPoint
	SurgeryQubits  float64
	SurgerySeconds float64
	// SurgeryVsPlanar and SurgeryVsDD are space-time products relative
	// to the respective baselines (> 1 means surgery loses).
	SurgeryVsPlanar float64
	SurgeryVsDD     float64
}

// EvaluateSurgery costs a design point under all three communication
// schemes.
func EvaluateSurgery(m AppModel, totalOps, physicalError float64) (SurgeryPoint, error) {
	dp, err := Evaluate(m, totalOps, physicalError)
	if err != nil {
		return SurgeryPoint{}, err
	}
	sp := SurgeryPoint{DesignPoint: dp}
	tech := surface.Superconducting(physicalError)
	d := dp.Distance

	q := m.QubitsForOps(totalOps)
	if q < 2 {
		q = 2
	}
	tiles := q + factoryTiles(q)

	// Space: planar tiles plus merge corridors (half a tile width of
	// extra lattice between adjacent patches).
	corridor := 1.5
	sp.SurgeryQubits = tiles * corridor * float64(surface.PlanarTileQubits(d))

	// Time: compute steps as planar; every EPR-consuming move becomes a
	// merge/split chain across the average distance, 2d cycles per hop,
	// unhidden and unpipelined beyond the app's parallelism.
	distTiles := (2.0 / 3.0) * math.Sqrt(tiles)
	tc := tech.SyndromeCycleTime()
	surgeryCycles := (totalOps/m.Parallelism)*float64(d) +
		(totalOps*m.MoveFraction/m.Parallelism)*distTiles*float64(2*d)
	sp.SurgerySeconds = surgeryCycles * tc

	sp.SurgeryVsPlanar = (sp.SurgeryQubits * sp.SurgerySeconds) / (dp.PlanarQubits * dp.PlanarSeconds)
	sp.SurgeryVsDD = (sp.SurgeryQubits * sp.SurgerySeconds) / (dp.DDQubits * dp.DDSeconds)
	return sp, nil
}

// SurgeryDominated reports whether, at this design point, lattice
// surgery is beaten by at least one of the two schemes the paper
// focuses on — the quantified version of the §8.2 dismissal.
func (sp SurgeryPoint) SurgeryDominated() bool {
	return sp.SurgeryVsPlanar > 1 || sp.SurgeryVsDD > 1
}
