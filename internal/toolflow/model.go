// Package toolflow is the end-to-end design-space pipeline of the paper
// (Fig. 4, §7): it characterizes an application with the compilation
// frontend and both backend simulators at a reference scale, then
// evaluates planar vs. double-defect space-time cost across computation
// sizes (1/p_L) and physical error rates (p_P), producing the data for
// Figures 7, 8 and 9 — absolute scaling, normalized resource ratios
// with their favorability crossover, and the crossover boundary as a
// function of device error rate.
//
// Cost model (documented in DESIGN.md §4.6):
//
//   - Both encodings run at the code distance d(K, p_P) that meets the
//     paper's 50% success target for K logical operations.
//   - Double-defect time: braids are latency-insensitive — extension
//     and shrinkage take one cycle each regardless of distance
//     (Table 1) — so the per-op chain cost is 2 cycles, inflated by the
//     application's measured braid-congestion factor (Fig. 6 engine,
//     Policy 6) and divided by the application's DAG parallelism.
//   - Planar time: one logical timestep of d EC cycles per dependent
//     op, plus teleportation transit — EPR halves swap across the
//     machine diameter at physical speed; just-in-time prefetch hides
//     half of the transit and pipelines moves min(P, 8) deep, and EPR
//     fidelity decay at high p_P inflates transit by a
//     retry/purification factor R = 1/(1 − 3·p_P·sites). Teleportation
//     is the distance- and error-rate-sensitive channel (Table 1).
//   - Space: planar tiles (2d−1)², double-defect tiles (4d−1)(2d−1)
//     plus braid-channel corridors; both provision ancilla factories at
//     the paper's 1:4 balance.
package toolflow

import (
	"context"
	"fmt"
	"math"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
	"surfcomm/internal/resource"
	"surfcomm/internal/scerr"
	"surfcomm/internal/simd"
	"surfcomm/internal/surface"
)

// AppModel is the measured characterization of one application at
// reference scale plus its analytic scaling model — everything Evaluate
// needs to cost a design point at any computation size.
type AppModel struct {
	Name string
	// Parallelism is the DAG parallelism factor (Table 2).
	Parallelism float64
	// SchedParallelism is the ops/timestep the Multi-SIMD scheduler
	// achieves at reference scale.
	SchedParallelism float64
	// MoveFraction is EPR-consuming moves (teleports + magic-state
	// deliveries) per logical op on the Multi-SIMD machine.
	MoveFraction float64
	// CongestionDD is the braid schedule/critical-path ratio under
	// Policy 6 — the contention multiplier braids pay (Fig. 6).
	CongestionDD float64
	// QubitsForOps maps computation size K to logical data qubits.
	QubitsForOps func(totalOps float64) float64
}

// referenceDistance is the code distance used for reference-scale
// kernel simulation.
const referenceDistance = 9

// Characterize measures an application's model from its reference
// circuit: frontend estimate, Multi-SIMD schedule, and braid simulation.
func Characterize(w apps.Workload, seed int64) (AppModel, error) {
	return CharacterizeContext(context.Background(), w, seed)
}

// CharacterizeContext is Characterize with cooperative cancellation
// threaded through both backend simulations.
func CharacterizeContext(ctx context.Context, w apps.Workload, seed int64) (AppModel, error) {
	est, err := resource.EstimateCircuit(w.Circuit)
	if err != nil {
		return AppModel{}, fmt.Errorf("toolflow: %s: %w", w.Name, err)
	}
	// Region width scales with the machine (a region's broadcast spans
	// its bank); four regions is the Fig. 3a checkerboard.
	width := 32
	if perBank := (w.Circuit.NumQubits + 3) / 4; perBank > width {
		width = perBank
	}
	sched, err := simd.RunContext(ctx, w.Circuit, simd.Config{Regions: 4, Width: width, Seed: seed})
	if err != nil {
		return AppModel{}, fmt.Errorf("toolflow: %s: %w", w.Name, err)
	}
	braidRes, err := braid.SimulateContext(ctx, w.Circuit, braid.Policy6, braid.Config{Distance: referenceDistance, Seed: seed})
	if err != nil {
		return AppModel{}, fmt.Errorf("toolflow: %s: %w", w.Name, err)
	}
	scaling, err := apps.ScalingFor(w.Name)
	if err != nil {
		return AppModel{}, fmt.Errorf("toolflow: %w", err)
	}
	m := AppModel{
		Name:             w.Name,
		Parallelism:      est.Parallelism,
		SchedParallelism: sched.Parallelism(),
		CongestionDD:     braidRes.Ratio,
		QubitsForOps:     scaling.QubitsForOps,
	}
	if est.LogicalOps > 0 {
		m.MoveFraction = float64(len(sched.Moves)) / float64(est.LogicalOps)
	}
	return m, nil
}

// Validate checks the model is usable.
func (m AppModel) Validate() error {
	switch {
	case m.Name == "":
		return scerr.BadConfig("toolflow: model needs a name")
	case m.Parallelism <= 0 || m.SchedParallelism <= 0:
		return scerr.BadConfig("toolflow: %s: non-positive parallelism", m.Name)
	case m.CongestionDD < 1:
		return scerr.BadConfig("toolflow: %s: congestion factor %.2f below 1", m.Name, m.CongestionDD)
	case m.MoveFraction < 0:
		return scerr.BadConfig("toolflow: %s: negative move fraction", m.Name)
	case m.QubitsForOps == nil:
		return scerr.BadConfig("toolflow: %s: missing scaling model", m.Name)
	}
	return nil
}

// DesignPoint is one evaluated (application, K, p_P) configuration —
// one x-position of Figures 7 and 8.
type DesignPoint struct {
	App           string
	TotalOps      float64 // K = 1/p_L (the x axis)
	PhysicalError float64
	Distance      int

	PlanarQubits  float64
	PlanarSeconds float64
	DDQubits      float64
	DDSeconds     float64

	// QubitsRatio, TimeRatio, SpaceTimeRatio are double-defect relative
	// to the planar baseline (Fig. 8's y axes); the crossover is where
	// SpaceTimeRatio crosses 1.
	QubitsRatio    float64
	TimeRatio      float64
	SpaceTimeRatio float64
}

// Model constants (see package comment).
const (
	residualFraction = 0.5 // fraction of swap transit NOT hidden by JIT prefetch
	swapsPerSite     = 2   // physical error exposures per lattice-site hop
	retryFloor       = 0.02
)

// factoryTiles is the ancilla-factory provisioning in logical tiles for
// q data qubits: the paper's 1:4 balance, with at least one full
// magic-state factory (the same floor for both encodings).
func factoryTiles(q float64) float64 {
	return math.Max(q/surface.AncillaDataRatio, surface.MagicFactoryLogicalQubits)
}

// Evaluate costs one design point.
func Evaluate(m AppModel, totalOps, physicalError float64) (DesignPoint, error) {
	if err := m.Validate(); err != nil {
		return DesignPoint{}, err
	}
	if totalOps < 1 {
		return DesignPoint{}, scerr.BadConfig("toolflow: totalOps %g < 1", totalOps)
	}
	tech := surface.Superconducting(physicalError)
	d, err := tech.RequiredDistance(totalOps, 0.5)
	if err != nil {
		return DesignPoint{}, err
	}
	dp := DesignPoint{
		App:           m.Name,
		TotalOps:      totalOps,
		PhysicalError: physicalError,
		Distance:      d,
	}

	q := m.QubitsForOps(totalOps)
	if q < 2 {
		q = 2
	}
	tiles := q + factoryTiles(q) // same logical floorplan size for both

	// --- Space ---
	dp.PlanarQubits = tiles * float64(surface.PlanarTileQubits(d))

	side := math.Sqrt(tiles)
	links := 2 * (side + 1) * side
	channelQubits := links * float64(surface.ChannelWidthQubits(d)) * float64(2*d-1)
	dp.DDQubits = tiles*float64(surface.DoubleDefectTileQubits(d)) + channelQubits

	// --- Time ---
	tc := tech.SyndromeCycleTime()

	// Double defect: per dependent op, one braid — opened, stabilized d
	// cycles, closed, stabilized (Fig. 5: 2(d+1) cycles) — throttled by
	// the measured congestion factor. Braid latency is independent of
	// distance and of machine size: its cost never grows with K beyond
	// the error-correction scaling.
	ddCycles := (totalOps / m.Parallelism) * float64(2*(d+1)) * m.CongestionDD
	dp.DDSeconds = ddCycles * tc

	// Planar: one d-cycle logical timestep per dependent op, plus swap
	// transit for the EPR behind each teleport. Transit crosses the
	// machine diameter at physical-swap speed — the distance-dependent
	// cost of Table 1 — with JIT prefetch hiding half and pipelining
	// concurrent transits at the application's parallelism ("EPRs in
	// planar codes can still be pipelined to avoid congestion", §7.2).
	// At high p_P, unencoded EPR halves decay in transit: the
	// retry/purification factor diverges as p_P·swaps approaches 1,
	// which is what bends the Figure 9 boundary downward on the right.
	// Swap chains move encoded qubits: each site-shift is interleaved
	// into the syndrome schedule, costing one EC cycle per site.
	distTiles := (2.0 / 3.0) * math.Sqrt(tiles)
	sites := distTiles * float64(2*d-1)
	retry := 1.0 / math.Max(retryFloor, 1-float64(swapsPerSite)*physicalError*sites)
	transitCycles := sites * retry
	// Both backends exploit the application's dataflow parallelism (the
	// Multi-SIMD machine supports data and instruction parallelism,
	// §7.2), so P appears symmetrically and the ratio depends on the
	// per-op costs alone.
	planarCycles := (totalOps/m.Parallelism)*float64(d) +
		(totalOps*m.MoveFraction/m.Parallelism)*residualFraction*transitCycles
	dp.PlanarSeconds = planarCycles * tc

	dp.QubitsRatio = dp.DDQubits / dp.PlanarQubits
	dp.TimeRatio = dp.DDSeconds / dp.PlanarSeconds
	dp.SpaceTimeRatio = dp.QubitsRatio * dp.TimeRatio
	return dp, nil
}

// Crossover returns the computation size K* where the double-defect
// space-time product first beats planar (SpaceTimeRatio ≤ 1), scanning
// a log grid over K ∈ [10^0, 10^24]. ok is false when planar stays
// favored across the whole range (the boundary is off the chart) or
// the device is uncorrectable.
func Crossover(m AppModel, physicalError float64) (kStar float64, ok bool) {
	const pointsPerDecade = 4
	prevK := 0.0
	prevRatio := 0.0
	for i := 0; i <= 24*pointsPerDecade; i++ {
		k := math.Pow(10, float64(i)/pointsPerDecade)
		dp, err := Evaluate(m, k, physicalError)
		if err != nil {
			return 0, false
		}
		if dp.SpaceTimeRatio <= 1 {
			if i == 0 || prevRatio <= 1 {
				return k, true
			}
			// Log-linear interpolation between the bracketing points.
			t := (math.Log(prevRatio) - 0) / (math.Log(prevRatio) - math.Log(dp.SpaceTimeRatio))
			return math.Exp(math.Log(prevK) + t*(math.Log(k)-math.Log(prevK))), true
		}
		prevK, prevRatio = k, dp.SpaceTimeRatio
	}
	return 0, false
}

// CurvePoint evaluates one grid index of a log-spaced K sweep:
// K = 10^(i/pointsPerDecade). It is the single cell definition shared
// by the serial Curve and the parallel sweep grid, so the two can
// never drift.
func CurvePoint(m AppModel, physicalError float64, gridIndex, pointsPerDecade int) (DesignPoint, error) {
	k := math.Pow(10, float64(gridIndex)/float64(pointsPerDecade))
	return Evaluate(m, k, physicalError)
}

// Curve evaluates a log-spaced K sweep (Figures 7 and 8 series).
func Curve(m AppModel, physicalError float64, fromExp, toExp, pointsPerDecade int) ([]DesignPoint, error) {
	return CurveContext(context.Background(), m, physicalError, fromExp, toExp, pointsPerDecade)
}

// CurveContext is Curve with cooperative cancellation, polled per point.
func CurveContext(ctx context.Context, m AppModel, physicalError float64, fromExp, toExp, pointsPerDecade int) ([]DesignPoint, error) {
	done := ctx.Done()
	var out []DesignPoint
	for i := fromExp * pointsPerDecade; i <= toExp*pointsPerDecade; i++ {
		if done != nil {
			select {
			case <-done:
				return nil, scerr.Canceled(ctx)
			default:
			}
		}
		dp, err := CurvePoint(m, physicalError, i, pointsPerDecade)
		if err != nil {
			return nil, err
		}
		out = append(out, dp)
	}
	return out, nil
}

// BoundaryPoint is one (p_P, K*) sample of a Figure 9 line.
type BoundaryPoint struct {
	PhysicalError float64
	CrossoverOps  float64
	OffChart      bool // planar favored across the full K range
}

// BoundaryAt computes one (application, p_P) boundary sample — the
// cell shared by the serial Boundary and the parallel sweep grid.
func BoundaryAt(m AppModel, physicalError float64) BoundaryPoint {
	k, ok := Crossover(m, physicalError)
	return BoundaryPoint{PhysicalError: physicalError, CrossoverOps: k, OffChart: !ok}
}

// Boundary sweeps physical error rates (Figure 9's x axis, 1e-8…1e-3)
// and returns the crossover boundary for the application.
func Boundary(m AppModel, errorRates []float64) []BoundaryPoint {
	out := make([]BoundaryPoint, 0, len(errorRates))
	for _, p := range errorRates {
		out = append(out, BoundaryAt(m, p))
	}
	return out
}

// Figure9ErrorRates is the paper's p_P sweep: 1e-8 (future optimistic)
// through 1e-3 (current technology), two points per decade.
func Figure9ErrorRates() []float64 {
	var out []float64
	for e := -8.0; e <= -3.0; e += 0.5 {
		out = append(out, math.Pow(10, e))
	}
	return out
}

// ReferenceWorkloads is the standard suite (plus both IM inlining
// variants) at simulation scale — the single definition shared by the
// serial and parallel characterization paths.
func ReferenceWorkloads() []apps.Workload {
	workloads := []apps.Workload{
		{Name: "GSE", Circuit: apps.GSE(apps.GSEConfig{M: 10, Steps: 2})},
		{Name: "SQ", Circuit: apps.SQ(apps.SQConfig{N: 8, Iters: 2})},
		{Name: "SHA-1", Circuit: apps.SHA1(apps.SHA1Config{Rounds: 1, WordWidth: 16})},
	}
	return append(workloads, apps.IMVariants(96, 2)...)
}

// ReferenceModels characterizes the reference suite — the models behind
// Figures 7–9.
func ReferenceModels(seed int64) ([]AppModel, error) {
	return ReferenceModelsContext(context.Background(), seed)
}

// ReferenceModelsContext is ReferenceModels with cooperative
// cancellation threaded through every characterization.
func ReferenceModelsContext(ctx context.Context, seed int64) ([]AppModel, error) {
	workloads := ReferenceWorkloads()
	out := make([]AppModel, 0, len(workloads))
	for _, w := range workloads {
		m, err := CharacterizeContext(ctx, w, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ModelFor picks a model by name from a characterized set. A missing
// name reports an error matching scerr.ErrUnknownModel.
func ModelFor(models []AppModel, name string) (AppModel, error) {
	for _, m := range models {
		if m.Name == name {
			return m, nil
		}
	}
	return AppModel{}, scerr.UnknownModel("toolflow: no model named %q", name)
}
