package resource

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfcomm/internal/circuit"
)

// chain: h q0; t q0; measz q0 — a pure dependency chain.
func chainCircuit() *circuit.Circuit {
	c := circuit.New("chain", 1)
	c.Append(circuit.H, 0)
	c.Append(circuit.T, 0)
	c.Append(circuit.MeasZ, 0)
	return c
}

// wide: h on 8 disjoint qubits — fully parallel.
func wideCircuit() *circuit.Circuit {
	c := circuit.New("wide", 8)
	for q := 0; q < 8; q++ {
		c.Append(circuit.H, q)
	}
	return c
}

func TestBuildChainDependencies(t *testing.T) {
	d, err := Build(chainCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Preds[0]) != 0 {
		t.Errorf("gate 0 preds = %v, want none", d.Preds[0])
	}
	if len(d.Preds[1]) != 1 || d.Preds[1][0] != 0 {
		t.Errorf("gate 1 preds = %v, want [0]", d.Preds[1])
	}
	if len(d.Preds[2]) != 1 || d.Preds[2][0] != 1 {
		t.Errorf("gate 2 preds = %v, want [1]", d.Preds[2])
	}
	if len(d.Succs[0]) != 1 || d.Succs[0][0] != 1 {
		t.Errorf("gate 0 succs = %v, want [1]", d.Succs[0])
	}
}

func TestBuildTwoQubitSharedPredDeduplicated(t *testing.T) {
	c := circuit.New("dedup", 2)
	c.Append(circuit.CNOT, 0, 1) // gate 0 touches both qubits
	c.Append(circuit.CNOT, 0, 1) // gate 1 depends on gate 0 once, not twice
	d, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Preds[1]) != 1 {
		t.Errorf("preds = %v, want single deduplicated entry", d.Preds[1])
	}
}

func TestASAPChainAndWide(t *testing.T) {
	dChain, _ := Build(chainCircuit())
	_, depth := dChain.ASAP()
	if depth != 3 {
		t.Errorf("chain depth = %d, want 3", depth)
	}
	dWide, _ := Build(wideCircuit())
	levels, depth := dWide.ASAP()
	if depth != 1 {
		t.Errorf("wide depth = %d, want 1", depth)
	}
	for i, lv := range levels {
		if lv != 0 {
			t.Errorf("wide gate %d level = %d, want 0", i, lv)
		}
	}
}

func TestBarrierSerializesButAddsNoLatency(t *testing.T) {
	c := circuit.New("fence", 2)
	c.Append(circuit.H, 0)
	c.Append(circuit.Barrier, 0, 1)
	c.Append(circuit.H, 1) // would be level 0 without the barrier
	d, _ := Build(c)
	levels, depth := d.ASAP()
	if levels[2] != 1 {
		t.Errorf("post-barrier gate level = %d, want 1 (serialized)", levels[2])
	}
	if depth != 2 {
		t.Errorf("depth = %d, want 2 (barrier weightless)", depth)
	}
}

func TestALAPBoundsAndSlack(t *testing.T) {
	// Diamond: cnot(0,1); then h q0 and t q1 in parallel; then cnot(0,1).
	c := circuit.New("diamond", 2)
	c.Append(circuit.CNOT, 0, 1)
	c.Append(circuit.H, 0)
	c.Append(circuit.T, 1)
	c.Append(circuit.CNOT, 0, 1)
	d, _ := Build(c)
	asap, depth := d.ASAP()
	alap := d.ALAP()
	if depth != 3 {
		t.Fatalf("depth = %d, want 3", depth)
	}
	for i := range asap {
		if alap[i] < asap[i] {
			t.Errorf("gate %d ALAP %d < ASAP %d", i, alap[i], asap[i])
		}
	}
	// All four gates are critical in this diamond.
	for i := range asap {
		if alap[i] != asap[i] {
			t.Errorf("gate %d slack = %d, want 0", i, alap[i]-asap[i])
		}
	}
}

func TestALAPPositiveSlack(t *testing.T) {
	// Two chains of different length; short chain has slack.
	c := circuit.New("slack", 2)
	c.Append(circuit.H, 0) // long chain
	c.Append(circuit.T, 0)
	c.Append(circuit.S, 0)
	c.Append(circuit.H, 1) // short chain: slack 2
	d, _ := Build(c)
	asap, _ := d.ASAP()
	alap := d.ALAP()
	if slack := alap[3] - asap[3]; slack != 2 {
		t.Errorf("short-chain slack = %d, want 2", slack)
	}
}

func TestHeights(t *testing.T) {
	d, _ := Build(chainCircuit())
	h := d.Heights()
	want := []int{3, 2, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("height[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestDescendantCountsExact(t *testing.T) {
	// Diamond from TestALAP: gate 0 has 3 descendants, middles have 1,
	// sink has 0.
	c := circuit.New("diamond", 2)
	c.Append(circuit.CNOT, 0, 1)
	c.Append(circuit.H, 0)
	c.Append(circuit.T, 1)
	c.Append(circuit.CNOT, 0, 1)
	d, _ := Build(c)
	counts, ok := d.DescendantCounts()
	if !ok {
		t.Fatal("exact counts should be available for tiny circuit")
	}
	want := []int{3, 1, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("descendants[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestDescendantCountsDeclinesWhenHuge(t *testing.T) {
	c := circuit.New("huge", 1)
	for i := 0; i < maxExactDescendants+1; i++ {
		c.Append(circuit.H, 0)
	}
	d, _ := Build(c)
	if _, ok := d.DescendantCounts(); ok {
		t.Error("should decline exact computation above bound")
	}
}

// Property: for random circuits, ASAP depth ≤ ops (unit weights), every
// edge respects levels, and heights are consistent with ASAP depth.
func TestDAGInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		c := circuit.New("rand", n)
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 {
				c.Append(circuit.H, rng.Intn(n))
			} else {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.Append(circuit.CNOT, a, b)
			}
		}
		d, err := Build(c)
		if err != nil {
			return false
		}
		asap, depth := d.ASAP()
		if depth > c.Ops() || depth <= 0 {
			return false
		}
		for i := range d.Preds {
			for _, p := range d.Preds[i] {
				if asap[int(p)]+d.Weight(int(p)) > asap[i] {
					return false
				}
			}
		}
		alap := d.ALAP()
		for i := range asap {
			if alap[i] < asap[i] {
				return false
			}
		}
		h := d.Heights()
		maxH := 0
		for _, x := range h {
			if x > maxH {
				maxH = x
			}
		}
		return maxH == depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildRejectsInvalidCircuit(t *testing.T) {
	c := circuit.New("bad", 1)
	c.Gates = append(c.Gates, circuit.Gate{Op: circuit.CNOT, Qubits: []int{0, 5}})
	if _, err := Build(c); err == nil {
		t.Error("invalid circuit should be rejected")
	}
}
