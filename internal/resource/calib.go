package resource

import (
	"surfcomm/internal/device"
	"surfcomm/internal/surface"
)

// Per-tile logical error rates from local calibration. The uniform
// model applies one physical error rate p_P to every tile; a calibrated
// topology carries a measured effective rate per cell, so the logical
// error rate of the code patch on each tile follows the threshold
// formula with the *local* physical rate. The spread between the best
// and worst tile is what the calibration sweep study quantifies: on a
// real chip the worst tile, not the average, bounds the computation.

// TileLogicalRates returns the per-tile logical error rate per syndrome
// cycle at distance d, row-major over the topology grid. Tiles without
// a calibration entry (rate 0) and all tiles of an uncalibrated or nil
// topology fall back to the technology's uniform rate; dead tiles
// report 0 (no patch lives there).
func TileLogicalRates(t *device.Topology, tech surface.Technology, d int) []float64 {
	if t == nil {
		return nil
	}
	uniform := tech.LogicalErrorPerCycle(d)
	out := make([]float64, t.Rows()*t.Cols())
	for r := 0; r < t.Rows(); r++ {
		for c := 0; c < t.Cols(); c++ {
			i := r*t.Cols() + c
			cell := device.Coord{Row: r, Col: c}
			if t.TileDead(cell) {
				continue
			}
			if p := t.TileErrorRate(cell); p > 0 {
				local := tech
				local.PhysicalErrorRate = p
				// Above-threshold tiles blow the power law past 1; a rate
				// is a probability, so saturate at certain failure.
				if lr := local.LogicalErrorPerCycle(d); lr < 1 {
					out[i] = lr
				} else {
					out[i] = 1
				}
			} else {
				out[i] = uniform
			}
		}
	}
	return out
}

// RateSpread summarizes a per-tile rate slice: the minimum and maximum
// over live tiles (rate > 0) and the mean across them. All zeros (or an
// empty slice) report 0s.
func RateSpread(rates []float64) (min, max, mean float64) {
	n := 0
	for _, p := range rates {
		if p <= 0 {
			continue
		}
		if n == 0 || p < min {
			min = p
		}
		if p > max {
			max = p
		}
		mean += p
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	return min, max, mean
}
