package resource

import (
	"fmt"

	"surfcomm/internal/circuit"
)

// Estimate is the frontend's logical-level characterization of one
// application (the inputs to Table 2 and to backend policy/code-distance
// choices).
type Estimate struct {
	Name          string
	LogicalQubits int
	LogicalOps    int     // resource-bearing gates (K, the computation size)
	TCount        int     // magic-state demand
	TwoQubitOps   int     // communication demand
	CriticalPath  int     // weighted DAG depth, logical cycles
	Parallelism   float64 // LogicalOps / CriticalPath — Table 2's factor
}

// Estimate runs the frontend analyses over a flat circuit.
func EstimateCircuit(c *circuit.Circuit) (Estimate, error) {
	d, err := Build(c)
	if err != nil {
		return Estimate{}, err
	}
	_, depth := d.ASAP()
	e := Estimate{
		Name:          c.Name,
		LogicalQubits: c.NumQubits,
		LogicalOps:    c.Ops(),
		TCount:        c.TCount(),
		TwoQubitOps:   c.TwoQubitCount(),
		CriticalPath:  depth,
	}
	if depth > 0 {
		e.Parallelism = float64(e.LogicalOps) / float64(depth)
	}
	return e, nil
}

// String renders the estimate as a one-line report row.
func (e Estimate) String() string {
	return fmt.Sprintf("%-18s qubits=%-6d ops=%-9d T=%-8d 2q=%-8d depth=%-8d parallelism=%.1f",
		e.Name, e.LogicalQubits, e.LogicalOps, e.TCount, e.TwoQubitOps, e.CriticalPath, e.Parallelism)
}

// LevelWidths returns a histogram of how many resource ops sit at each
// ASAP level — the instantaneous parallelism profile the Multi-SIMD
// scheduler consumes.
func LevelWidths(d *DAG) []int {
	levels, depth := d.ASAP()
	widths := make([]int, depth)
	for i, lv := range levels {
		if d.Weight(i) > 0 {
			widths[lv]++
		}
	}
	return widths
}

// MaxWidth returns the maximum instantaneous parallelism.
func MaxWidth(d *DAG) int {
	m := 0
	for _, w := range LevelWidths(d) {
		if w > m {
			m = w
		}
	}
	return m
}
