package resource

import (
	"strings"
	"testing"

	"surfcomm/internal/circuit"
)

func TestEstimateCircuitSerialVsParallel(t *testing.T) {
	serial := circuit.New("serial", 1)
	for i := 0; i < 10; i++ {
		serial.Append(circuit.T, 0)
	}
	es, err := EstimateCircuit(serial)
	if err != nil {
		t.Fatal(err)
	}
	if es.Parallelism != 1.0 {
		t.Errorf("serial parallelism = %v, want 1.0", es.Parallelism)
	}
	if es.LogicalOps != 10 || es.TCount != 10 || es.CriticalPath != 10 {
		t.Errorf("serial estimate unexpected: %+v", es)
	}

	par := circuit.New("par", 10)
	for q := 0; q < 10; q++ {
		par.Append(circuit.H, q)
	}
	ep, err := EstimateCircuit(par)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Parallelism != 10.0 {
		t.Errorf("parallel parallelism = %v, want 10.0", ep.Parallelism)
	}
	if ep.CriticalPath != 1 {
		t.Errorf("parallel depth = %d, want 1", ep.CriticalPath)
	}
}

func TestEstimateEmptyCircuit(t *testing.T) {
	e, err := EstimateCircuit(circuit.New("empty", 3))
	if err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 0 || e.LogicalOps != 0 || e.CriticalPath != 0 {
		t.Errorf("empty estimate unexpected: %+v", e)
	}
}

func TestEstimateStringContainsFields(t *testing.T) {
	c := circuit.New("named", 2)
	c.Append(circuit.CNOT, 0, 1)
	e, _ := EstimateCircuit(c)
	s := e.String()
	for _, want := range []string{"named", "ops=1", "2q=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestLevelWidthsProfile(t *testing.T) {
	// Level 0: h q0, h q1. Level 1: cnot(0,1). Level 2: t q1.
	c := circuit.New("profile", 2)
	c.Append(circuit.H, 0)
	c.Append(circuit.H, 1)
	c.Append(circuit.CNOT, 0, 1)
	c.Append(circuit.T, 1)
	d, _ := Build(c)
	w := LevelWidths(d)
	want := []int{2, 1, 1}
	if len(w) != len(want) {
		t.Fatalf("widths = %v, want %v", w, want)
	}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("width[%d] = %d, want %d", i, w[i], want[i])
		}
	}
	if MaxWidth(d) != 2 {
		t.Errorf("MaxWidth = %d, want 2", MaxWidth(d))
	}
}

func TestLevelWidthsSkipBarriers(t *testing.T) {
	c := circuit.New("fence", 2)
	c.Append(circuit.H, 0)
	c.Append(circuit.Barrier, 0, 1)
	c.Append(circuit.H, 1)
	d, _ := Build(c)
	total := 0
	for _, w := range LevelWidths(d) {
		total += w
	}
	if total != 2 {
		t.Errorf("widths should count 2 real ops, got %d", total)
	}
}
