// Package resource implements the logical-level analyses of the
// compilation frontend (paper §5.3): dependency-DAG construction over a
// flat circuit, ASAP/ALAP leveling, critical-path extraction, and the
// parallelism estimate that drives backend policy choices and the
// Table 2 characterization.
package resource

import (
	"fmt"

	"surfcomm/internal/circuit"
)

// DAG is the data-dependency graph of a flat circuit: gate i depends on
// the previous gate touching each of its qubits. Barriers participate in
// the graph (serializing their qubit set) but carry zero latency.
type DAG struct {
	Circuit *circuit.Circuit
	Preds   [][]int32 // distinct predecessor gate indices, ascending
	Succs   [][]int32 // distinct successor gate indices, ascending
}

// Weight returns the latency contribution of gate i in logical cycles:
// 0 for barriers, 1 for every real operation. Backends re-cost gates
// with their own latency models; the frontend uses unit weights, as the
// paper's parallelism factor does.
func (d *DAG) Weight(i int) int {
	if d.Circuit.Gates[i].Op == circuit.Barrier {
		return 0
	}
	return 1
}

// Build constructs the dependency DAG for c in O(gates × operands).
func Build(c *circuit.Circuit) (*DAG, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("resource: %w", err)
	}
	n := len(c.Gates)
	d := &DAG{
		Circuit: c,
		Preds:   make([][]int32, n),
		Succs:   make([][]int32, n),
	}
	last := make([]int32, c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	for i, g := range c.Gates {
		var preds []int32
		for _, q := range g.Qubits {
			if p := last[q]; p >= 0 {
				preds = appendDistinct(preds, p)
			}
			last[q] = int32(i)
		}
		d.Preds[i] = preds
		for _, p := range preds {
			d.Succs[p] = append(d.Succs[p], int32(i))
		}
	}
	return d, nil
}

// appendDistinct inserts v into the ascending slice s if absent. Gate
// fan-in is bounded by operand count (≤ a handful), so linear insert is
// the fast path.
func appendDistinct(s []int32, v int32) []int32 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Len returns the number of gates in the DAG.
func (d *DAG) Len() int { return len(d.Preds) }

// ASAP returns each gate's earliest start level under unit op weights
// (as-soon-as-possible schedule) and the total schedule depth, i.e. the
// critical path length in logical operation cycles.
func (d *DAG) ASAP() (levels []int, depth int) {
	n := d.Len()
	levels = make([]int, n)
	for i := 0; i < n; i++ { // gates are in program order: topological
		lv := 0
		for _, p := range d.Preds[i] {
			if e := levels[p] + d.Weight(int(p)); e > lv {
				lv = e
			}
		}
		levels[i] = lv
		if e := lv + d.Weight(i); e > depth {
			depth = e
		}
	}
	return levels, depth
}

// ASAPWeighted generalizes ASAP to arbitrary non-negative per-gate
// latencies (in any unit): it returns each gate's earliest start time
// and the makespan. Backends use it to compute the contention-free
// critical path under their own cost models — the denominator of the
// paper's schedule-to-critical-path ratio (Fig. 6).
func (d *DAG) ASAPWeighted(weight func(i int) int64) (starts []int64, makespan int64) {
	n := d.Len()
	starts = make([]int64, n)
	for i := 0; i < n; i++ {
		var t int64
		for _, p := range d.Preds[i] {
			if e := starts[p] + weight(int(p)); e > t {
				t = e
			}
		}
		starts[i] = t
		if e := t + weight(i); e > makespan {
			makespan = e
		}
	}
	return starts, makespan
}

// ALAP returns each gate's latest start level that still meets the ASAP
// depth. Slack(i) = ALAP(i) − ASAP(i); zero-slack gates are critical.
func (d *DAG) ALAP() []int {
	n := d.Len()
	_, depth := d.ASAP()
	levels := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		lv := depth - d.Weight(i)
		for _, s := range d.Succs[i] {
			if e := levels[s] - d.Weight(i); e < lv {
				lv = e
			}
		}
		levels[i] = lv
	}
	return levels
}

// Heights returns, for each gate, the weighted length of the longest
// dependency chain hanging below it (inclusive of the gate itself).
// This is the criticality metric the braid priority policies sort by:
// the longer the chain a braid is blocking, the more urgent it is.
func (d *DAG) Heights() []int {
	n := d.Len()
	h := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0
		for _, s := range d.Succs[i] {
			if h[s] > best {
				best = h[s]
			}
		}
		h[i] = best + d.Weight(i)
	}
	return h
}

// maxExactDescendants bounds the circuit size for which exact
// descendant-set counting (bitset transitive closure, O(V²/64) space) is
// attempted; larger circuits should rank by Heights instead.
const maxExactDescendants = 8192

// DescendantCounts returns, for each gate, the exact number of gates
// transitively depending on it — the paper's literal criticality count.
// It returns ok=false (and ranks unavailable) when the circuit exceeds
// the exact-computation bound; callers then fall back to Heights, which
// induces the same urgency ordering on chain-dominated workloads.
func (d *DAG) DescendantCounts() (counts []int, ok bool) {
	n := d.Len()
	if n > maxExactDescendants {
		return nil, false
	}
	words := (n + 63) / 64
	sets := make([]uint64, n*words)
	counts = make([]int, n)
	for i := n - 1; i >= 0; i-- {
		row := sets[i*words : (i+1)*words]
		for _, s := range d.Succs[i] {
			row[int(s)/64] |= 1 << (uint(s) % 64)
			srow := sets[int(s)*words : (int(s)+1)*words]
			for w := range row {
				row[w] |= srow[w]
			}
		}
		c := 0
		for _, w := range row {
			c += popcount(w)
		}
		counts[i] = c
	}
	return counts, true
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
