package modcompile

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"surfcomm/internal/circuit"
	"surfcomm/internal/layout"
	"surfcomm/internal/mesh"
	"surfcomm/internal/partition"
	"surfcomm/internal/scerr"
)

// StitchStats summarizes the linker's cross-module stitching pass.
type StitchStats struct {
	// Phases is the number of routing rounds the distinct call edges
	// packed into: edges whose channels collide (shared patches or
	// corridors) serialize into later phases.
	Phases int
	// RouteLinks is the total mesh links reserved across all phases —
	// the stitch layer's physical channel footprint.
	RouteLinks int
	// CrossBraids counts dynamic cross-module braid operations: one per
	// bound qubit per call execution.
	CrossBraids int64
	// CallExecutions is the dynamic number of call-site executions.
	CallExecutions int64
	// StitchCycles is the linked schedule overhead of the call fences:
	// distance cycles per call execution (the merge/split boundary a
	// call crossing costs, matching Flatten's barrier semantics).
	StitchCycles int64
}

// link places module patches, routes cross-module braids, and fills the
// Result totals from the per-module plans plus the stitch layer.
//
// The cost model composes per-module schedules serially along call
// executions (Flatten fences calls into atomic regions, so the
// monolithic pipeline serializes them the same way): total cycles are
// Σ multiplicity×module-cycles plus distance cycles per call execution.
// The placement/routing pass prices the *spatial* side — how many mesh
// links the cross-module channels occupy and how many phases they pack
// into — and contributes the channel footprint to physical qubits.
func link(p *circuit.Program, res *Result, cfg Config) error {
	// Static multiplicity of each module: times it executes per run of
	// the entry. Reverse topo order visits callers before callees.
	mult := make(map[string]int64, len(res.Topo))
	mult[p.Entry] = 1
	for i := len(res.Topo) - 1; i >= 0; i-- {
		caller := res.Topo[i]
		for _, in := range p.Modules[caller].Insts {
			if in.IsCall() {
				mult[in.Callee] += mult[caller]
				res.Stitch.CallExecutions += mult[caller]
				res.Stitch.CrossBraids += int64(len(in.Args)) * mult[caller]
			}
		}
	}

	// Aggregate totals: each distinct module occupies one patch (its
	// compiled footprint counts once); its schedule repeats per
	// execution.
	for _, name := range res.Topo {
		mp := res.Plans[name]
		res.Cycles += mult[name] * mp.Cycles
		res.CommOps += mult[name] * mp.CommOps
		res.PhysicalQubits += mp.PhysicalQubits
	}
	res.Stitch.StitchCycles = int64(cfg.Distance) * res.Stitch.CallExecutions
	res.Cycles += res.Stitch.StitchCycles
	res.CommOps += res.Stitch.CrossBraids

	if len(res.Topo) < 2 || res.Stitch.CallExecutions == 0 {
		return nil // nothing to stitch
	}

	phases, links, err := routeStitchChannels(p, res.Topo, mult, cfg.Seed, cfg.Stitch)
	if err != nil {
		return err
	}
	res.Stitch.Phases = phases
	res.Stitch.RouteLinks = links
	res.PhysicalQubits += float64(links) * cfg.ChannelQubitsPerLink
	return nil
}

// StitchMemo caches the outcome of the linker's placement + routing
// pass, keyed by everything that determines it: the seed, the module
// set, and the weighted call-edge list. Module *bodies* are not inputs
// — a leaf edit leaves the module graph unchanged, so the edited
// program's stitch layout is a memo hit and the warm recompile pays
// only the dirty module's backend compile. Entries are two ints each;
// one accumulates per distinct program shape, so the memo needs no
// eviction. Safe for concurrent use.
type StitchMemo struct {
	mu sync.Mutex
	m  map[string]stitchRoute
	// hits counts memo hits (observability; monotone).
	hits uint64
}

type stitchRoute struct{ phases, links int }

// NewStitchMemo returns an empty memo.
func NewStitchMemo() *StitchMemo { return &StitchMemo{m: map[string]stitchRoute{}} }

// Hits reports how many placement+routing passes the memo has saved.
func (s *StitchMemo) Hits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

func (s *StitchMemo) get(key string) (stitchRoute, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	if ok {
		s.hits++
	}
	return r, ok
}

func (s *StitchMemo) put(key string, r stitchRoute) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = r
}

// routeStitchChannels places one patch per module on a near-square
// grid (communication-weighted, via the multilevel bisector) and
// routes one channel per distinct caller→callee edge on a super-mesh
// with the braid engine's stamp-scratch BFS. Colliding channels spill
// into later phases; a channel that cannot route even on an empty mesh
// is a genuine topology failure.
func routeStitchChannels(p *circuit.Program, topo []string, mult map[string]int64, seed int64, memo *StitchMemo) (phases, links int, err error) {
	idx := make(map[string]int, len(topo))
	for i, name := range topo {
		idx[name] = i
	}

	// Module graph: edge weight = dynamic qubit traffic between the two
	// patches, driving the placer to keep chatty modules adjacent.
	type edge struct{ u, v int }
	weight := map[edge]int64{}
	var order []edge // deterministic routing order: reverse topo, call-site order
	for i := len(topo) - 1; i >= 0; i-- {
		caller := topo[i]
		for _, in := range p.Modules[caller].Insts {
			if !in.IsCall() {
				continue
			}
			e := edge{idx[caller], idx[in.Callee]}
			if _, seen := weight[e]; !seen {
				order = append(order, e)
			}
			weight[e] += int64(len(in.Args)) * mult[caller]
		}
	}
	// The graph (not the bodies behind it) plus the seed fully determine
	// the placement and routing below — probe the memo before paying for
	// either. The key folds the module names so renames miss.
	var key string
	if memo != nil {
		h := sha256.New()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(seed))
		h.Write(buf[:])
		for _, name := range topo {
			h.Write([]byte(name))
			h.Write([]byte{0})
		}
		for _, e := range order {
			binary.LittleEndian.PutUint64(buf[:], uint64(e.u)<<32|uint64(e.v))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], uint64(weight[e]))
			h.Write(buf[:])
		}
		key = string(h.Sum(nil))
		if r, ok := memo.get(key); ok {
			return r.phases, r.links, nil
		}
	}

	g := partition.NewGraph(len(topo))
	for _, e := range order {
		w := weight[e]
		if w > 1<<30 {
			w = 1 << 30
		}
		if err := g.AddEdge(e.u, e.v, int(w)); err != nil {
			return 0, 0, err
		}
	}

	pl, err := layout.Optimized(g, seed)
	if err != nil {
		return 0, 0, err
	}

	// Super-mesh: patches sit at odd coordinates so every pair of
	// patches has free corridor rows/columns between and around them.
	m := mesh.New(pl.Rows*2+1, pl.Cols*2+1)
	center := func(v int) mesh.Node {
		c := pl.Pos[v]
		return mesh.Node{Row: c.Row*2 + 1, Col: c.Col*2 + 1}
	}

	phases = 1
	var reserved []mesh.Path // current phase's claims
	var scratch mesh.Path
	for i, e := range order {
		var path mesh.Path
		var ok bool
		scratch, ok = m.AdaptiveRouteInto(scratch, center(e.u), center(e.v))
		if !ok {
			// Phase is full: release this phase's channels and retry on
			// the emptied mesh.
			for _, rp := range reserved {
				if rerr := m.Release(rp, 0); rerr != nil {
					return 0, 0, rerr
				}
			}
			reserved = reserved[:0]
			phases++
			scratch, ok = m.AdaptiveRouteInto(scratch, center(e.u), center(e.v))
			if !ok {
				return 0, 0, scerr.Unroutable("modcompile: stitch channel %d/%d unroutable on empty %dx%d mesh",
					i, len(order), pl.Rows*2+1, pl.Cols*2+1)
			}
		}
		path = append(mesh.Path(nil), scratch...)
		if err := m.Reserve(path, 0); err != nil {
			return 0, 0, err
		}
		reserved = append(reserved, path)
		links += len(path) - 1
	}
	if memo != nil {
		memo.put(key, stitchRoute{phases: phases, links: links})
	}
	return phases, links, nil
}
