package modcompile

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"surfcomm/internal/circuit"
	"surfcomm/internal/scerr"
)

// memCache is a test double: a map plus a compile log.
type memCache struct {
	mu sync.Mutex
	m  map[string]ModulePlan
}

func newMemCache() *memCache { return &memCache{m: map[string]ModulePlan{}} }

func (c *memCache) GetModule(d string) (ModulePlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mp, ok := c.m[d]
	return mp, ok
}

func (c *memCache) PutModule(p ModulePlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[p.Digest] = p
}

// countingCompile returns a CompileFunc whose resource numbers derive
// from the module circuit (so tests can check aggregation) and which
// appends each compiled circuit name to log.
func countingCompile(mu *sync.Mutex, log *[]string) CompileFunc {
	return func(_ context.Context, c *circuit.Circuit) (ModulePlan, error) {
		mu.Lock()
		*log = append(*log, c.Name)
		mu.Unlock()
		return ModulePlan{
			Cycles:         int64(10 * len(c.Gates)),
			PhysicalQubits: float64(100 * c.NumQubits),
			CommOps:        int64(len(c.Gates)),
		}, nil
	}
}

// diamond builds main→{left,right}→shared: the canonical diamond DAG.
func diamond(t *testing.T) *circuit.Program {
	t.Helper()
	p := circuit.NewProgram("main", 4)
	main := p.Modules["main"]
	main.Gate(circuit.H, 0)
	main.Call("left", 0, 1)
	main.Call("right", 2, 3)
	left := &circuit.Module{Name: "left", NumQubits: 2}
	left.Gate(circuit.CNOT, 0, 1)
	left.Call("shared", 1)
	right := &circuit.Module{Name: "right", NumQubits: 2}
	right.Gate(circuit.CZ, 0, 1)
	right.Call("shared", 0)
	shared := &circuit.Module{Name: "shared", NumQubits: 1}
	shared.Gate(circuit.T, 0)
	for _, m := range []*circuit.Module{left, right, shared} {
		if err := p.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func runDiamond(t *testing.T, p *circuit.Program, cache Cache) (Result, []string) {
	t.Helper()
	var mu sync.Mutex
	var log []string
	res, err := Run(context.Background(), p, Config{
		Workers: 4, TargetFingerprint: "fp1", Distance: 9,
		ChannelQubitsPerLink: 2, Seed: 1, Cache: cache,
		Compile: countingCompile(&mu, &log),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, log
}

func TestDiamondCompiledOncePerModule(t *testing.T) {
	res, log := runDiamond(t, diamond(t), newMemCache())
	// shared is called from two parents but compiles exactly once.
	if len(log) != 4 {
		t.Fatalf("compiled %v, want each of 4 modules once", log)
	}
	counts := map[string]int{}
	for _, n := range log {
		counts[n]++
	}
	for _, n := range []string{"main", "left", "right", "shared"} {
		if counts[n] != 1 {
			t.Errorf("module %s compiled %d times", n, counts[n])
		}
	}
	if res.Misses != 4 || res.Hits != 0 || res.Trivial != 0 {
		t.Errorf("hits/misses/trivial = %d/%d/%d, want 0/4/0", res.Hits, res.Misses, res.Trivial)
	}
	// Topo: callees before callers, entry last.
	if res.Topo[len(res.Topo)-1] != "main" {
		t.Errorf("topo %v should end at entry", res.Topo)
	}
	if res.Topo[0] != "shared" {
		t.Errorf("topo %v should start at the deepest leaf", res.Topo)
	}
}

func TestLeafEditRecompilesOnlyLeaf(t *testing.T) {
	cache := newMemCache()
	p := diamond(t)
	if res, _ := runDiamond(t, p, cache); len(res.Compiled) != 4 {
		t.Fatalf("cold run compiled %v", res.Compiled)
	}

	// Warm rerun: everything cached, nothing compiles.
	res, log := runDiamond(t, p, cache)
	if len(log) != 0 || res.Hits != 4 || res.Misses != 0 {
		t.Fatalf("warm run compiled %v (hits %d, misses %d)", log, res.Hits, res.Misses)
	}

	// Edit the shared leaf's body: ONLY the leaf recompiles. Its
	// interface (name, width) is unchanged, so ancestors stay cached.
	edited := p.Clone()
	edited.Modules["shared"].Gate(circuit.Z, 0)
	res, log = runDiamond(t, edited, cache)
	if !reflect.DeepEqual(log, []string{"shared"}) {
		t.Fatalf("leaf edit recompiled %v, want [shared]", log)
	}
	if res.Hits != 3 || res.Misses != 1 {
		t.Fatalf("leaf edit: hits %d misses %d, want 3/1", res.Hits, res.Misses)
	}
	if !reflect.DeepEqual(res.Compiled, []string{"shared"}) {
		t.Fatalf("Compiled = %v, want [shared]", res.Compiled)
	}

	// But the linked artifact identity must change.
	orig, _ := runDiamond(t, p, cache)
	if orig.LinkDigest == res.LinkDigest {
		t.Error("leaf edit should change LinkDigest")
	}
}

func TestInterfaceChangeDirtiesCallers(t *testing.T) {
	cache := newMemCache()
	p := diamond(t)
	runDiamond(t, p, cache)

	// Widening shared's interface forces its callers dirty too (their
	// digests fold the callee interface), but not the entry, whose
	// callees' interfaces are unchanged.
	edited := p.Clone()
	edited.Modules["shared"].NumQubits = 2
	edited.Modules["shared"].Gate(circuit.CNOT, 0, 1)
	edited.Modules["left"].Insts[1] = circuit.Inst{Callee: "shared", Args: []int{1, 0}}
	edited.Modules["right"].Insts[1] = circuit.Inst{Callee: "shared", Args: []int{0, 1}}
	_, log := runDiamond(t, edited, cache)
	counts := map[string]int{}
	for _, n := range log {
		counts[n]++
	}
	if counts["shared"] != 1 || counts["left"] != 1 || counts["right"] != 1 || counts["main"] != 0 {
		t.Fatalf("interface change recompiled %v, want shared+left+right only", log)
	}
}

func TestRecursionRejectedWithBadConfig(t *testing.T) {
	p := circuit.NewProgram("a", 1)
	p.Modules["a"].Call("b", 0)
	b := &circuit.Module{Name: "b", NumQubits: 1}
	b.Call("a", 0)
	if err := p.AddModule(b); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), p, Config{
		Compile: func(context.Context, *circuit.Circuit) (ModulePlan, error) {
			return ModulePlan{}, nil
		},
	})
	if !errors.Is(err, scerr.ErrBadConfig) {
		t.Fatalf("recursive program: got %v, want ErrBadConfig", err)
	}
}

func TestTrivialCallOnlyModule(t *testing.T) {
	p := circuit.NewProgram("main", 2)
	p.Modules["main"].Call("leaf", 0)
	p.Modules["main"].Call("leaf", 1)
	leaf := &circuit.Module{Name: "leaf", NumQubits: 1}
	leaf.Gate(circuit.H, 0)
	if err := p.AddModule(leaf); err != nil {
		t.Fatal(err)
	}
	res, log := runDiamond(t, p, newMemCache())
	if !reflect.DeepEqual(log, []string{"leaf"}) {
		t.Fatalf("compiled %v, want only the leaf (main is call-only)", log)
	}
	if res.Trivial != 1 {
		t.Errorf("Trivial = %d, want 1", res.Trivial)
	}
	if res.Stitch.CallExecutions != 2 || res.Stitch.CrossBraids != 2 {
		t.Errorf("stitch executions/braids = %d/%d, want 2/2",
			res.Stitch.CallExecutions, res.Stitch.CrossBraids)
	}
	// leaf plan: 1 gate → 10 cycles, ×2 executions + 9×2 stitch cycles.
	if want := int64(2*10 + 9*2); res.Cycles != want {
		t.Errorf("Cycles = %d, want %d", res.Cycles, want)
	}
}

func TestMultiplicityThroughDeepChain(t *testing.T) {
	// main calls mid twice; mid calls leaf twice → leaf executes 4×.
	p := circuit.NewProgram("main", 2)
	p.Modules["main"].Gate(circuit.H, 0)
	p.Modules["main"].Call("mid", 0, 1)
	p.Modules["main"].Call("mid", 1, 0)
	mid := &circuit.Module{Name: "mid", NumQubits: 2}
	mid.Gate(circuit.X, 0)
	mid.Call("leaf", 0)
	mid.Call("leaf", 1)
	leaf := &circuit.Module{Name: "leaf", NumQubits: 1}
	leaf.Gate(circuit.T, 0)
	for _, m := range []*circuit.Module{mid, leaf} {
		if err := p.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := runDiamond(t, p, newMemCache())
	// CallExecutions: 2 (main→mid) + 2×2 (mid→leaf) = 6.
	if res.Stitch.CallExecutions != 6 {
		t.Fatalf("CallExecutions = %d, want 6", res.Stitch.CallExecutions)
	}
	// Cycles: main 2 gates? (H only → 1 gate =10) + mid ×2 (1 gate + 2
	// barriers; barriers count as gates in len(Gates))… derive instead:
	// leaf executes 4×, each 10 cycles → the leaf term alone is 40.
	leafOnly := res.Plans["leaf"].Cycles * 4
	if leafOnly != 40 {
		t.Fatalf("leaf term %d, want 40", leafOnly)
	}
	if res.Stitch.StitchCycles != 9*6 {
		t.Fatalf("StitchCycles = %d, want 54", res.Stitch.StitchCycles)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var base Result
	for i, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		var log []string
		res, err := Run(context.Background(), diamond(t), Config{
			Workers: workers, TargetFingerprint: "fp", Distance: 7,
			ChannelQubitsPerLink: 3, Seed: 42,
			Compile: countingCompile(&mu, &log),
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Plans = nil // map iteration aside, compare the scalar surface
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverges:\n%+v\nvs\n%+v", workers, base, res)
		}
	}
}

func TestStitchLayerRoutesCrossEdges(t *testing.T) {
	res, _ := runDiamond(t, diamond(t), newMemCache())
	// 4 distinct call edges (main→left, main→right, left→shared,
	// right→shared) must reserve channel links in ≥1 phase.
	if res.Stitch.Phases < 1 {
		t.Errorf("Phases = %d, want >= 1", res.Stitch.Phases)
	}
	if res.Stitch.RouteLinks < 4 {
		t.Errorf("RouteLinks = %d, want >= 4 (one per edge minimum)", res.Stitch.RouteLinks)
	}
	// Channel footprint priced into physical qubits.
	var patches float64
	for _, mp := range res.Plans {
		patches += mp.PhysicalQubits
	}
	if want := patches + float64(res.Stitch.RouteLinks)*2; res.PhysicalQubits != want {
		t.Errorf("PhysicalQubits = %g, want %g", res.PhysicalQubits, want)
	}
}
