// Package modcompile is the hierarchical incremental-compilation
// driver: it treats each circuit.Module as an independently compiled,
// independently cached unit, mirroring the source paper's module-by-
// module toolflow (ScaffCC emits hierarchical QASM; the mapper
// schedules leaf modules once and stitches call sites).
//
// The driver topologically orders the call graph, computes a content
// digest per module (canonical body serialization + resolved-target
// fingerprint + callee *interfaces* — name and width only,
// so editing a leaf's body dirties just that leaf, never its ancestors
// or sibling subtrees), compiles the dirty modules concurrently over
// the sweep worker pool, and links the module plans with a stitching
// pass (see link.go) that places module patches and routes only the
// cross-module braids.
package modcompile

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"surfcomm/internal/circuit"
	"surfcomm/internal/scerr"
	"surfcomm/internal/sweep"
)

// ModulePlan is the cached unit: the resource summary of one compiled
// module, plus an opaque backend payload (the facade stores the full
// *surfcomm.Plan there; this package never needs to look inside).
type ModulePlan struct {
	Name           string
	Digest         string // content digest the plan was compiled under
	Cycles         int64
	PhysicalQubits float64
	CommOps        int64
	Cached         bool // satisfied from the cache, not compiled
	Trivial        bool // call-only module: synthesized without a backend
	Payload        any
}

// Cache is the module-plan store the driver probes before compiling.
// Implementations must be safe for concurrent use; the driver only
// calls GetModule before the parallel compile phase and PutModule
// after it, both from the driver goroutine.
type Cache interface {
	GetModule(digest string) (ModulePlan, bool)
	PutModule(p ModulePlan)
}

// CompileFunc compiles one module's local circuit (calls lowered to
// Barrier fences) into a ModulePlan. The driver fills Name, Digest,
// and Cached afterwards; implementations populate the resource fields
// and Payload.
type CompileFunc func(ctx context.Context, c *circuit.Circuit) (ModulePlan, error)

// Config parameterizes a Run.
type Config struct {
	// Workers bounds the parallel module-compile pool (<=0 selects
	// GOMAXPROCS, matching sweep.Options).
	Workers int
	// TargetFingerprint folds every resolved-target knob that affects
	// compilation into the module digests; two targets with equal
	// fingerprints may share cached module plans.
	TargetFingerprint string
	// Distance is the code distance, used by the stitch-cycle model.
	Distance int
	// ChannelQubitsPerLink prices each reserved stitch-channel link in
	// physical qubits (tile footprint of the backend's channel unit).
	ChannelQubitsPerLink float64
	// Seed drives module-patch placement in the linker.
	Seed int64
	// Cache is optional; nil disables reuse (every module compiles).
	Cache Cache
	// Stitch optionally memoizes the linker's placement + routing pass
	// across compiles whose module graphs match (body edits keep the
	// graph, so warm recompiles skip the pass). Nil recomputes every
	// link.
	Stitch *StitchMemo
	// Compile is required.
	Compile CompileFunc
}

// Result is the linked outcome of an incremental compile.
type Result struct {
	Entry string
	// Topo is the deterministic post-order of reachable modules
	// (callees before callers; entry last).
	Topo []string
	// Plans holds one plan per reachable module.
	Plans map[string]ModulePlan
	// Hits/Misses/Trivial count cache probes for non-trivial modules
	// and synthesized call-only modules respectively.
	Hits, Misses, Trivial int
	// Compiled lists the modules that went through the backend this
	// run, in topo order — the compile-count invariant tests pin this.
	Compiled []string
	// Linked totals (see link.go for the stitch model).
	Cycles         int64
	PhysicalQubits float64
	CommOps        int64
	Stitch         StitchStats
	// LinkDigest identifies the linked artifact: it folds the target
	// fingerprint and every reachable module's content digest, so it
	// changes whenever any module body, interface, or knob changes.
	LinkDigest string
}

// Run validates the program, digests and topologically orders its
// reachable modules, compiles the dirty ones in parallel, and links.
func Run(ctx context.Context, p *circuit.Program, cfg Config) (Result, error) {
	var res Result
	if p == nil {
		return res, scerr.BadConfig("modcompile: nil program")
	}
	if cfg.Compile == nil {
		return res, scerr.BadConfig("modcompile: Config.Compile is required")
	}
	if err := p.Validate(); err != nil {
		// Validation failures (recursive call chains, arity mismatches,
		// unknown callees) are configuration errors to API callers.
		return res, scerr.BadConfig("%v", err)
	}
	res.Entry = p.Entry
	res.Topo = topoOrder(p)
	res.Plans = make(map[string]ModulePlan, len(res.Topo))

	digests := moduleDigests(p, res.Topo, cfg.TargetFingerprint)

	// Probe the cache; partition reachable modules into cached, dirty,
	// and trivial (call-only bodies never reach a backend — their cost
	// lives entirely in the callee plans and the stitch layer).
	var dirty []string
	for _, name := range res.Topo {
		m := p.Modules[name]
		d := digests[name]
		if isTrivialModule(m) {
			res.Plans[name] = ModulePlan{Name: name, Digest: d, Trivial: true}
			res.Trivial++
			continue
		}
		if cfg.Cache != nil {
			if mp, ok := cfg.Cache.GetModule(d); ok {
				mp.Name, mp.Digest, mp.Cached = name, d, true
				res.Plans[name] = mp
				res.Hits++
				continue
			}
		}
		res.Misses++
		dirty = append(dirty, name)
	}

	// Compile dirty modules concurrently. sweep.Map preserves item
	// order and fails on the lowest-index error, so parallel and serial
	// runs are bit-identical.
	if len(dirty) > 0 {
		plans, err := sweep.Map(ctx, sweep.Options{Workers: cfg.Workers, Seed: cfg.Seed},
			dirty, func(i int, name string) (ModulePlan, error) {
				mp, err := cfg.Compile(ctx, moduleCircuit(p.Modules[name]))
				if err != nil {
					return ModulePlan{}, fmt.Errorf("module %s: %w", name, err)
				}
				mp.Name, mp.Digest, mp.Cached = name, digests[name], false
				return mp, nil
			})
		if err != nil {
			return res, err
		}
		for _, mp := range plans {
			res.Plans[mp.Name] = mp
			res.Compiled = append(res.Compiled, mp.Name)
			if cfg.Cache != nil {
				cfg.Cache.PutModule(mp)
			}
		}
	}

	if err := link(p, &res, cfg); err != nil {
		return res, err
	}
	res.LinkDigest = linkDigest(p, res.Topo, digests, cfg.TargetFingerprint)
	return res, nil
}

// topoOrder returns the deterministic post-order of modules reachable
// from the entry: callees before callers, call sites visited in
// instruction order, each module emitted once. Validate has already
// rejected cycles.
func topoOrder(p *circuit.Program) []string {
	var order []string
	seen := map[string]bool{}
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		for _, in := range p.Modules[name].Insts {
			if in.IsCall() {
				visit(in.Callee)
			}
		}
		order = append(order, name)
	}
	visit(p.Entry)
	return order
}

// moduleDigests computes the per-module content digest: target
// fingerprint, a canonical binary serialization of the module body,
// and the sorted callee *interfaces* (name and width only — never the
// callee's content digest, which is exactly what keeps a leaf-body
// edit from dirtying its ancestors).
//
// The body is hashed in binary, not as rendered QASM: digesting runs
// on every CompileIncremental — warm recompiles are digest-bound once
// module compiles are cached, and fmt-rendering the text just to hash
// it was the hot path. Every field is delimiter- or length-separated,
// so distinct bodies cannot collide by concatenation.
func moduleDigests(p *circuit.Program, topo []string, targetFP string) map[string]string {
	out := make(map[string]string, len(topo))
	h := sha256.New()
	var buf []byte
	var names []string
	for _, name := range topo {
		m := p.Modules[name]
		buf = buf[:0]
		buf = append(buf, "module|"...)
		buf = append(buf, targetFP...)
		buf = append(buf, '|')
		buf = appendModuleBody(buf, m)
		callees := map[string]bool{}
		for _, in := range m.Insts {
			if in.IsCall() {
				callees[in.Callee] = true
			}
		}
		names = names[:0]
		for c := range callees {
			names = append(names, c)
		}
		sort.Strings(names)
		for _, c := range names {
			buf = append(buf, "callee|"...)
			buf = append(buf, c...)
			buf = append(buf, '|')
			buf = binary.AppendVarint(buf, int64(p.Modules[c].NumQubits))
			buf = append(buf, '|')
		}
		h.Reset()
		h.Write(buf)
		out[name] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// appendModuleBody serializes a module body canonically: name, width,
// then each instruction with an unambiguous tag ('C' call with callee
// and args, 'G' gate with opcode and args), args length-prefixed.
func appendModuleBody(buf []byte, m *circuit.Module) []byte {
	buf = append(buf, m.Name...)
	buf = append(buf, 0)
	buf = binary.AppendVarint(buf, int64(m.NumQubits))
	for _, in := range m.Insts {
		if in.IsCall() {
			buf = append(buf, 'C')
			buf = append(buf, in.Callee...)
			buf = append(buf, 0)
		} else {
			buf = append(buf, 'G')
			buf = binary.AppendVarint(buf, int64(in.Op))
		}
		buf = binary.AppendVarint(buf, int64(len(in.Args)))
		for _, a := range in.Args {
			buf = binary.AppendVarint(buf, int64(a))
		}
	}
	return buf
}

// isTrivialModule reports whether a module body holds no local resource
// ops — only calls (and barriers/nops). Such modules never reach a
// backend: a braid schedule over zero gates is meaningless, and the
// work they represent already lives in their callees.
func isTrivialModule(m *circuit.Module) bool {
	for _, in := range m.Insts {
		if in.IsCall() || in.Op == circuit.Barrier || in.Op == circuit.Nop {
			continue
		}
		return false
	}
	return true
}

// moduleCircuit lowers one module body to a flat circuit: local gates
// verbatim, each call site fenced to a Barrier over its argument qubits
// (the callee executes in its own patch; from this module's schedule
// the call is an atomic region, matching Flatten's fence semantics).
func moduleCircuit(m *circuit.Module) *circuit.Circuit {
	c := circuit.New(m.Name, m.NumQubits)
	for _, in := range m.Insts {
		if in.IsCall() {
			c.Append(circuit.Barrier, in.Args...)
			continue
		}
		c.Append(in.Op, in.Args...)
	}
	return c
}

// linkDigest folds the target fingerprint and every reachable module's
// content digest in topo order — the identity of the linked plan.
func linkDigest(p *circuit.Program, topo []string, digests map[string]string, targetFP string) string {
	h := sha256.New()
	fmt.Fprintf(h, "link|%s|%s|", targetFP, p.Entry)
	for _, name := range topo {
		fmt.Fprintf(h, "%s|%s|", name, digests[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}
