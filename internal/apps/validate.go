package apps

import (
	"surfcomm/internal/circuit"
	"surfcomm/internal/scerr"
)

// This file is the panic-free entry into the workload generators. The
// generators themselves (GSE, SQ, SHA1, Ising) predate the serving
// layer and panic on malformed configs — acceptable for one-shot
// tools, fatal for a long-running server. Each config therefore gets a
// Validate method whose errors match scerr.ErrBadConfig, and a New*
// constructor that validates before generating; the panicking
// generators now fail through the same Validate, so the two entry
// points can never drift.

// Validate checks the GSE sizing; errors match scerr.ErrBadConfig.
func (cfg GSEConfig) Validate() error {
	if cfg.M < 2 || cfg.Steps < 1 {
		return scerr.BadConfig("apps: GSE needs M >= 2 and Steps >= 1, got %+v", cfg)
	}
	if cfg.RotationTDepth < 0 {
		return scerr.BadConfig("apps: GSE rotation T-depth must be >= 0, got %d", cfg.RotationTDepth)
	}
	return nil
}

// Validate checks the SQ sizing; errors match scerr.ErrBadConfig.
func (cfg SQConfig) Validate() error {
	if cfg.N < 4 || cfg.N%2 != 0 {
		return scerr.BadConfig("apps: SQ needs even N >= 4, got %d", cfg.N)
	}
	if cfg.Iters < 0 {
		return scerr.BadConfig("apps: SQ iterations must be >= 0, got %d", cfg.Iters)
	}
	if cfg.Iters == 0 {
		if opt := SQOptimalIters(cfg.N); opt > 1<<20 {
			return scerr.BadConfig("apps: SQ optimal iteration count %g too large to materialize; set Iters", opt)
		}
	}
	if cfg.RotationTDepth < 0 {
		return scerr.BadConfig("apps: SQ rotation T-depth must be >= 0, got %d", cfg.RotationTDepth)
	}
	return nil
}

// Validate checks the SHA-1 sizing (after width defaulting); errors
// match scerr.ErrBadConfig.
func (cfg SHA1Config) Validate() error {
	cfg = cfg.normalize()
	if cfg.Rounds < 1 || cfg.WordWidth < 4 {
		return scerr.BadConfig("apps: SHA1 needs Rounds >= 1, WordWidth >= 4, got %+v", cfg)
	}
	return nil
}

// Validate checks the Ising sizing; errors match scerr.ErrBadConfig.
func (cfg IsingConfig) Validate() error {
	if cfg.N < 2 || cfg.Steps < 1 {
		return scerr.BadConfig("apps: Ising needs N >= 2 and Steps >= 1, got %+v", cfg)
	}
	if cfg.RotationTDepth < 0 {
		return scerr.BadConfig("apps: Ising rotation T-depth must be >= 0, got %d", cfg.RotationTDepth)
	}
	return nil
}

// NewGSE generates the Ground State Estimation workload, rejecting bad
// configs with an error matching scerr.ErrBadConfig instead of
// panicking.
func NewGSE(cfg GSEConfig) (*circuit.Circuit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return GSE(cfg), nil
}

// NewSQ generates the Square Root workload, rejecting bad configs with
// an error matching scerr.ErrBadConfig instead of panicking.
func NewSQ(cfg SQConfig) (*circuit.Circuit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return SQ(cfg), nil
}

// NewSHA1 generates the SHA-1 workload, rejecting bad configs with an
// error matching scerr.ErrBadConfig instead of panicking.
func NewSHA1(cfg SHA1Config) (*circuit.Circuit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return SHA1(cfg), nil
}

// NewIsing generates the Ising workload at the chosen inlining level,
// rejecting bad configs with an error matching scerr.ErrBadConfig
// instead of panicking.
func NewIsing(cfg IsingConfig, fullyInline bool) (*circuit.Circuit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return Ising(cfg, fullyInline), nil
}
