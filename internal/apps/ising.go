package apps

import (
	"fmt"

	"surfcomm/internal/circuit"
)

// IsingConfig sizes the Ising Model workload: digitized adiabatic
// evolution of an N-spin chain over Steps Trotter steps, with a serial
// parity probe after every step.
type IsingConfig struct {
	N              int
	Steps          int
	RotationTDepth int
}

// probeStride selects which spins the per-step parity probe samples.
const probeStride = 4

// probeSpins returns the sampled spin indices for an N-spin chain.
func probeSpins(n int) []int {
	var spins []int
	for i := 0; i < n; i += probeStride {
		spins = append(spins, i)
	}
	return spins
}

// IsingProgram generates the Ising workload as a hierarchical program
// (paper Table 2: parallelism ~66). The entry module alternates two
// calls per Trotter step:
//
//   - trotter_step: exp(-iθZZ) on the even bonds (disjoint — fully
//     bit-parallel), then the odd bonds, then a transverse-field Rx on
//     every spin. This is the wide, layered part.
//   - parity_probe: a serial CNOT chain collecting the parity of every
//     fourth spin onto a probe ancilla, measured each step (the
//     energy-tracking readout of digitized adiabatic experiments).
//
// Flattening depth models the paper's inlining knob (§7.3). With
// Flatten(0) every call is fenced (IM_Semi_Inlined): the serial probe
// sits between steps and stretches the critical path. With
// Flatten(circuit.InlineAll) (IM_Fully_Inlined) the probe chain of step
// s pipelines under the wide layers of step s+1, so the critical path
// is set by the Trotter layers alone — fully inlining buys parallelism,
// which is exactly the upward movement of the IM boundary in Figure 9.
func IsingProgram(cfg IsingConfig) *circuit.Program {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.N
	probe := n // probe ancilla index
	p := circuit.NewProgram(fmt.Sprintf("im_n%d_s%d", n, cfg.Steps), n+1)

	step := moduleFromBuilder("trotter_step", n, cfg.RotationTDepth, func(b *circuit.Builder) {
		for i := 0; i+1 < n; i += 2 {
			b.ZZ(i, i+1, 0.21)
		}
		for i := 1; i+1 < n; i += 2 {
			b.ZZ(i, i+1, 0.21)
		}
		for q := 0; q < n; q++ {
			b.Rx(q, 0.4)
		}
	})
	if err := p.AddModule(step); err != nil {
		panic(err)
	}

	spins := probeSpins(n)
	probeFormals := len(spins) + 1 // sampled spins plus the ancilla (last)
	probeMod := moduleFromBuilder("parity_probe", probeFormals, cfg.RotationTDepth, func(b *circuit.Builder) {
		anc := probeFormals - 1
		b.PrepZ(anc)
		for i := 0; i < len(spins); i++ {
			b.CNOT(i, anc)
		}
		b.MeasZ(anc)
	})
	if err := p.AddModule(probeMod); err != nil {
		panic(err)
	}

	main := p.Modules[p.Entry]
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	probeArgs := append(append([]int(nil), spins...), probe)
	for s := 0; s < cfg.Steps; s++ {
		main.Call("trotter_step", all...)
		main.Call("parity_probe", probeArgs...)
	}
	return p
}

// Ising flattens IsingProgram at the requested inlining level.
func Ising(cfg IsingConfig, fullyInline bool) *circuit.Circuit {
	depth := 0
	if fullyInline {
		depth = circuit.InlineAll
	}
	c, err := IsingProgram(cfg).Flatten(depth)
	if err != nil {
		panic(err) // generator-produced programs are valid by construction
	}
	if fullyInline {
		c.Name += "_fully"
	} else {
		c.Name += "_semi"
	}
	return c
}

// IsingOps returns the exact logical-op count Ising emits (barriers are
// not operations, so the count is inlining-independent).
func IsingOps(cfg IsingConfig) int {
	r := cfg.RotationTDepth
	if r == 0 {
		r = circuit.DefaultRotationTDepth
	}
	gate := 2*r + 3 // ZZ = 2 CNOT + rotation; Rx = rotation + 2 H
	bonds := cfg.N - 1
	probe := len(probeSpins(cfg.N)) + 2 // CNOT chain + prep + measure
	return cfg.Steps * ((bonds+cfg.N)*gate + probe)
}

// moduleFromBuilder runs a builder-based generator and converts the
// resulting gates into a reusable module body.
func moduleFromBuilder(name string, n, rotDepth int, f func(*circuit.Builder)) *circuit.Module {
	b := circuit.NewBuilder(name, n)
	b.RotationTDepth = rotDepth
	f(b)
	m := &circuit.Module{Name: name, NumQubits: n}
	for _, g := range b.Circuit.Gates {
		m.Insts = append(m.Insts, circuit.Inst{Op: g.Op, Args: g.Qubits})
	}
	return m
}
