package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfcomm/internal/circuit"
	"surfcomm/internal/logicsim"
	"surfcomm/internal/resource"
)

func TestNewRegister(t *testing.T) {
	r := NewRegister(5, 4)
	want := []int{5, 6, 7, 8}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("r[%d] = %d, want %d", i, r[i], want[i])
		}
	}
}

func TestRotL(t *testing.T) {
	r := NewRegister(0, 4) // [0 1 2 3]
	got := r.RotL(1)       // bit i of result = bit i-1 of input
	want := []int{3, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RotL(1)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Rotation by width (and by 0) is identity.
	for _, k := range []int{0, 4, 8, -4} {
		g := r.RotL(k)
		for i := range r {
			if g[i] != r[i] {
				t.Errorf("RotL(%d) not identity at %d", k, i)
			}
		}
	}
	// Negative rotation is the inverse.
	inv := r.RotL(1).RotL(-1)
	for i := range r {
		if inv[i] != r[i] {
			t.Errorf("RotL(1) then RotL(-1) not identity at %d", i)
		}
	}
}

func TestRotLQuickPermutation(t *testing.T) {
	f := func(width uint8, k int8) bool {
		n := int(width%16) + 1
		r := NewRegister(0, n)
		g := r.RotL(int(k))
		seen := make(map[int]bool, n)
		for _, q := range g {
			if q < 0 || q >= n || seen[q] {
				return false
			}
			seen[q] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorIntoCounts(t *testing.T) {
	b := circuit.NewBuilder("xor", 8)
	XorInto(b, NewRegister(0, 4), NewRegister(4, 4))
	if got := b.Circuit.CountOp(circuit.CNOT); got != 4 {
		t.Errorf("CNOTs = %d, want 4", got)
	}
}

func TestAndIntoCounts(t *testing.T) {
	b := circuit.NewBuilder("and", 12)
	AndInto(b, NewRegister(0, 4), NewRegister(4, 4), NewRegister(8, 4))
	if got := b.Circuit.TCount(); got != 4*7 {
		t.Errorf("T count = %d, want %d", got, 28)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	b := circuit.NewBuilder("bad", 8)
	for name, f := range map[string]func(){
		"xor": func() { XorInto(b, NewRegister(0, 3), NewRegister(4, 4)) },
		"and": func() { AndInto(b, NewRegister(0, 2), NewRegister(2, 2), NewRegister(4, 3)) },
		"ripple": func() {
			RippleAdd(b, NewRegister(0, 2), NewRegister(2, 3), 7)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: width mismatch should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRippleAddOpsFormula(t *testing.T) {
	for _, width := range []int{1, 4, 8, 16} {
		b := circuit.NewBuilder("ripple", 2*width+1)
		RippleAdd(b, NewRegister(0, width), NewRegister(width, width), 2*width)
		if got, want := b.Circuit.Ops(), rippleAddOps(width); got != want {
			t.Errorf("width %d: generated %d ops, formula %d", width, got, want)
		}
	}
}

func TestRippleAddIsSerial(t *testing.T) {
	width := 8
	b := circuit.NewBuilder("ripple", 2*width+1)
	RippleAdd(b, NewRegister(0, width), NewRegister(width, width), 2*width)
	e, err := resource.EstimateCircuit(b.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if e.Parallelism > 2.0 {
		t.Errorf("ripple adder parallelism = %.2f, want carry-chain-serial (< 2)", e.Parallelism)
	}
}

func TestPrefixAddOpsFormula(t *testing.T) {
	for _, width := range []int{4, 8, 16, 32} {
		n := 3*width + PrefixAdderAncillas(width)
		b := circuit.NewBuilder("prefix", n)
		x := NewRegister(0, width)
		y := NewRegister(width, width)
		sum := NewRegister(2*width, width)
		anc := NewRegister(3*width, PrefixAdderAncillas(width))
		PrefixAdd(b, x, y, sum, anc)
		if got, want := b.Circuit.Ops(), prefixAddOps(width); got != want {
			t.Errorf("width %d: generated %d ops, formula %d", width, got, want)
		}
	}
}

func TestPrefixAddIsParallel(t *testing.T) {
	width := 32
	n := 3*width + PrefixAdderAncillas(width)
	b := circuit.NewBuilder("prefix", n)
	PrefixAdd(b,
		NewRegister(0, width),
		NewRegister(width, width),
		NewRegister(2*width, width),
		NewRegister(3*width, PrefixAdderAncillas(width)))
	e, err := resource.EstimateCircuit(b.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if e.Parallelism < 8 {
		t.Errorf("prefix adder parallelism = %.2f, want word-level (>= 8)", e.Parallelism)
	}
}

func TestPrefixAddNeedsAncillas(t *testing.T) {
	b := circuit.NewBuilder("prefix", 100)
	defer func() {
		if recover() == nil {
			t.Error("insufficient ancillas should panic")
		}
	}()
	PrefixAdd(b, NewRegister(0, 8), NewRegister(8, 8), NewRegister(16, 8), NewRegister(24, 3))
}

// TestRippleAddComputesSums verifies the Cuccaro adder on basis states:
// y ← x + y (mod 2^w), x preserved, carry ancilla returned clean.
func TestRippleAddComputesSums(t *testing.T) {
	width := 8
	b := circuit.NewBuilder("ripple", 2*width+1)
	b.KeepMacros = true
	x := NewRegister(0, width)
	y := NewRegister(width, width)
	carry := 2 * width
	RippleAdd(b, x, y, carry)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 64; trial++ {
		xv := rng.Uint64() & 0xFF
		yv := rng.Uint64() & 0xFF
		in := logicsim.NewState(b.Circuit.NumQubits)
		in.SetUint64(x, xv)
		in.SetUint64(y, yv)
		out, err := logicsim.Run(b.Circuit, in)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Uint64(y); got != (xv+yv)&0xFF {
			t.Fatalf("ripple %d+%d = %d, want %d", xv, yv, got, (xv+yv)&0xFF)
		}
		if out.Uint64(x) != xv {
			t.Fatalf("ripple corrupted x: %d -> %d", xv, out.Uint64(x))
		}
		if out[carry] {
			t.Fatal("ripple left carry ancilla dirty")
		}
	}
}

// TestPrefixAddComputesSums verifies the Kogge-Stone adder on basis
// states: sum ← x + y (mod 2^w), operands preserved, every ancilla
// returned to zero (the compute/copy/uncompute discipline).
func TestPrefixAddComputesSums(t *testing.T) {
	for _, width := range []int{4, 5, 8, 16} {
		ancN := PrefixAdderAncillas(width)
		b := circuit.NewBuilder("prefix", 3*width+ancN)
		b.KeepMacros = true
		x := NewRegister(0, width)
		y := NewRegister(width, width)
		sum := NewRegister(2*width, width)
		anc := NewRegister(3*width, ancN)
		PrefixAdd(b, x, y, sum, anc)
		mask := uint64(1)<<uint(width) - 1
		rng := rand.New(rand.NewSource(int64(width)))
		for trial := 0; trial < 64; trial++ {
			xv := rng.Uint64() & mask
			yv := rng.Uint64() & mask
			in := logicsim.NewState(b.Circuit.NumQubits)
			in.SetUint64(x, xv)
			in.SetUint64(y, yv)
			out, err := logicsim.Run(b.Circuit, in)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.Uint64(sum); got != (xv+yv)&mask {
				t.Fatalf("width %d: %d+%d = %d, want %d", width, xv, yv, got, (xv+yv)&mask)
			}
			if out.Uint64(x) != xv || out.Uint64(y) != yv {
				t.Fatalf("width %d: operands corrupted", width)
			}
			for _, q := range anc {
				if out[q] {
					t.Fatalf("width %d: ancilla q%d dirty after add", width, q)
				}
			}
		}
	}
}

func TestKoggeStoneLevels(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 16: 4, 32: 5, 5: 3}
	for width, want := range cases {
		if got := koggeStoneLevels(width); got != want {
			t.Errorf("levels(%d) = %d, want %d", width, got, want)
		}
	}
}
