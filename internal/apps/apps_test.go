package apps

import (
	"testing"

	"surfcomm/internal/circuit"
	"surfcomm/internal/resource"
)

func estimate(t *testing.T, c *circuit.Circuit) resource.Estimate {
	t.Helper()
	e, err := resource.EstimateCircuit(c)
	if err != nil {
		t.Fatalf("estimate %s: %v", c.Name, err)
	}
	return e
}

func TestGSEOpsFormulaMatchesGenerator(t *testing.T) {
	for _, cfg := range []GSEConfig{
		{M: 2, Steps: 1},
		{M: 5, Steps: 3},
		{M: 10, Steps: 2},
		{M: 7, Steps: 1, RotationTDepth: 4},
	} {
		c := GSE(cfg)
		if err := c.Validate(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if got, want := c.Ops(), GSEOps(cfg); got != want {
			t.Errorf("%+v: generated %d ops, formula %d", cfg, got, want)
		}
	}
}

func TestGSEIsSerial(t *testing.T) {
	e := estimate(t, GSE(GSEConfig{M: 10, Steps: 2}))
	if e.Parallelism < 1.0 || e.Parallelism > 1.6 {
		t.Errorf("GSE parallelism = %.2f, want Table 2 regime ~1.2", e.Parallelism)
	}
	if e.LogicalQubits != 11 {
		t.Errorf("GSE qubits = %d, want 11", e.LogicalQubits)
	}
}

func TestSQOpsFormulaMatchesGenerator(t *testing.T) {
	for _, cfg := range []SQConfig{
		{N: 4, Iters: 1},
		{N: 8, Iters: 2},
		{N: 6, Iters: 3},
	} {
		c := SQ(cfg)
		if err := c.Validate(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if got, want := c.Ops(), SQOps(cfg); got != want {
			t.Errorf("%+v: generated %d ops, formula %d", cfg, got, want)
		}
	}
}

func TestSQIsMostlySerial(t *testing.T) {
	e := estimate(t, SQ(SQConfig{N: 8, Iters: 2}))
	if e.Parallelism < 1.1 || e.Parallelism > 2.5 {
		t.Errorf("SQ parallelism = %.2f, want Table 2 regime ~1.5", e.Parallelism)
	}
}

func TestSQDefaultItersSmall(t *testing.T) {
	c := SQ(SQConfig{N: 4})
	// Optimal for n=4: ceil(pi/4 * 4) = 4 iterations.
	if got, want := c.Ops(), SQOps(SQConfig{N: 4, Iters: 4}); got != want {
		t.Errorf("default iters ops = %d, want %d", got, want)
	}
}

func TestSQRejectsBadConfig(t *testing.T) {
	for _, cfg := range []SQConfig{{N: 3, Iters: 1}, {N: 2, Iters: 1}, {N: 7, Iters: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%+v should panic", cfg)
				}
			}()
			SQ(cfg)
		}()
	}
}

func TestSQOptimalItersGrowth(t *testing.T) {
	if SQOptimalIters(8) >= SQOptimalIters(10) {
		t.Error("optimal iterations should grow with n")
	}
	if got := SQOptimalIters(4); got != 4 {
		t.Errorf("SQOptimalIters(4) = %v, want 4", got)
	}
}

func TestSHA1OpsFormulaMatchesGenerator(t *testing.T) {
	for _, cfg := range []SHA1Config{
		{Rounds: 1, WordWidth: 8},
		{Rounds: 2, WordWidth: 16},
		{Rounds: 17, WordWidth: 8}, // crosses the schedule-update boundary
		{Rounds: 21, WordWidth: 8}, // crosses the Ch->Parity boundary
	} {
		c := SHA1(cfg)
		if err := c.Validate(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if got, want := c.Ops(), SHA1Ops(cfg); got != want {
			t.Errorf("%+v: generated %d ops, formula %d", cfg, got, want)
		}
	}
}

func TestSHA1IsHighlyParallel(t *testing.T) {
	e := estimate(t, SHA1(SHA1Config{Rounds: 2, WordWidth: 32}))
	if e.Parallelism < 8 {
		t.Errorf("SHA-1 parallelism = %.2f, want Table 2 regime (tens)", e.Parallelism)
	}
}

func TestSHA1QubitCount(t *testing.T) {
	c := SHA1(SHA1Config{Rounds: 1, WordWidth: 32})
	want := 27*32 + PrefixAdderAncillas(32)
	if c.NumQubits != want {
		t.Errorf("SHA-1 qubits = %d, want %d", c.NumQubits, want)
	}
}

func TestIsingOpsFormulaMatchesGenerator(t *testing.T) {
	for _, cfg := range []IsingConfig{
		{N: 2, Steps: 1},
		{N: 9, Steps: 2},
		{N: 16, Steps: 3, RotationTDepth: 4},
	} {
		for _, fully := range []bool{false, true} {
			c := Ising(cfg, fully)
			if err := c.Validate(); err != nil {
				t.Fatalf("%+v fully=%v: %v", cfg, fully, err)
			}
			if got, want := c.Ops(), IsingOps(cfg); got != want {
				t.Errorf("%+v fully=%v: generated %d ops, formula %d", cfg, fully, got, want)
			}
		}
	}
}

func TestIsingSemiHasBarriers(t *testing.T) {
	semi := Ising(IsingConfig{N: 8, Steps: 3}, false)
	fully := Ising(IsingConfig{N: 8, Steps: 3}, true)
	if semi.CountOp(circuit.Barrier) != 12 {
		t.Errorf("semi barriers = %d, want 12 (two per fenced call, two calls per step)", semi.CountOp(circuit.Barrier))
	}
	if fully.CountOp(circuit.Barrier) != 0 {
		t.Errorf("fully inlined barriers = %d, want 0", fully.CountOp(circuit.Barrier))
	}
}

func TestIsingInliningIncreasesParallelism(t *testing.T) {
	cfg := IsingConfig{N: 64, Steps: 3}
	semi := estimate(t, Ising(cfg, false))
	fully := estimate(t, Ising(cfg, true))
	if fully.Parallelism <= semi.Parallelism {
		t.Errorf("fully inlined parallelism %.1f should exceed semi %.1f",
			fully.Parallelism, semi.Parallelism)
	}
}

func TestIsingIsHighlyParallel(t *testing.T) {
	e := estimate(t, Ising(IsingConfig{N: 96, Steps: 2}, false))
	if e.Parallelism < 30 {
		t.Errorf("IM parallelism = %.2f, want Table 2 regime (tens)", e.Parallelism)
	}
}

func TestTable2SuiteOrdering(t *testing.T) {
	// The load-bearing claim of Table 2: GSE < SQ << SHA-1 < IM.
	suite := Table2Suite()
	if len(suite) != 4 {
		t.Fatalf("suite size = %d, want 4", len(suite))
	}
	par := map[string]float64{}
	for _, w := range suite {
		par[w.Name] = estimate(t, w.Circuit).Parallelism
	}
	if !(par["GSE"] < par["SQ"] && par["SQ"] < par["SHA-1"] && par["SHA-1"] < par["IM"]) {
		t.Errorf("parallelism ordering violated: %v", par)
	}
}

func TestFig6SuitePreservesOrdering(t *testing.T) {
	par := map[string]float64{}
	for _, w := range Fig6Suite() {
		par[w.Name] = estimate(t, w.Circuit).Parallelism
	}
	if !(par["GSE"] < 3 && par["SQ"] < 3) {
		t.Errorf("serial apps should stay serial: %v", par)
	}
	if !(par["SHA-1"] > 5 && par["IM"] > 5) {
		t.Errorf("parallel apps should stay parallel: %v", par)
	}
}

func TestIMVariantsNames(t *testing.T) {
	vs := IMVariants(16, 2)
	if vs[0].Name != "IM_Semi_Inlined" || vs[1].Name != "IM_Fully_Inlined" {
		t.Errorf("variant names unexpected: %s, %s", vs[0].Name, vs[1].Name)
	}
}

func TestScalingModels(t *testing.T) {
	for _, name := range []string{"GSE", "SQ", "SHA-1", "IM", "IM_Semi_Inlined", "IM_Fully_Inlined"} {
		s, err := ScalingFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q4, q12 := s.QubitsForOps(1e4), s.QubitsForOps(1e12)
		if q4 <= 0 || q12 <= 0 {
			t.Errorf("%s: nonpositive qubit counts %v %v", name, q4, q12)
		}
		if q12 < q4 {
			t.Errorf("%s: qubits should be nondecreasing in K: %v then %v", name, q4, q12)
		}
	}
	if _, err := ScalingFor("nope"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestSHA1ScalingQubitsConstant(t *testing.T) {
	s, _ := ScalingFor("SHA-1")
	if s.QubitsForOps(1e3) != s.QubitsForOps(1e20) {
		t.Error("SHA-1 register file should be size-independent")
	}
}

func TestSQScalingInversionConsistent(t *testing.T) {
	// Round-trip: qubits at K = SQOpsAt(n) should be ~2.5n-1.
	for _, n := range []int{8, 16, 24} {
		k := SQOpsAt(n)
		s, _ := ScalingFor("SQ")
		got := s.QubitsForOps(k)
		want := 2.5*float64(n) - 1
		if got < want-3 || got > want+3 {
			t.Errorf("n=%d: QubitsForOps(%g) = %.1f, want ~%.1f", n, k, got, want)
		}
	}
}

func TestSQOpsAtMonotone(t *testing.T) {
	prev := 0.0
	for n := 4; n <= 120; n += 2 {
		k := SQOpsAt(n)
		if k <= prev {
			t.Fatalf("SQOpsAt not increasing at n=%d", n)
		}
		prev = k
	}
	if SQOpsAt(120) < 1e19 {
		t.Errorf("SQOpsAt(120) = %g, expected to reach Figure 8 scales", SQOpsAt(120))
	}
}

func TestSHA1OpsAtLinearInBlocks(t *testing.T) {
	one, two := SHA1OpsAt(1), SHA1OpsAt(2)
	if two != 2*one {
		t.Errorf("SHA1OpsAt should be linear: %v, %v", one, two)
	}
}
