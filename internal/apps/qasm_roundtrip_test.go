package apps

import (
	"strings"
	"testing"

	"surfcomm/internal/circuit"
)

// TestAppsRoundTripThroughQASM serializes every suite application to
// the QASM dialect and parses it back, checking gate-for-gate equality —
// the interchange path a downstream user would rely on.
func TestAppsRoundTripThroughQASM(t *testing.T) {
	workloads := []Workload{
		{Name: "GSE", Circuit: GSE(GSEConfig{M: 6, Steps: 1})},
		{Name: "SQ", Circuit: SQ(SQConfig{N: 6, Iters: 1})},
		{Name: "SHA-1", Circuit: SHA1(SHA1Config{Rounds: 1, WordWidth: 8})},
		{Name: "IM-semi", Circuit: Ising(IsingConfig{N: 12, Steps: 1}, false)},
		{Name: "IM-fully", Circuit: Ising(IsingConfig{N: 12, Steps: 1}, true)},
	}
	for _, w := range workloads {
		text := circuit.QASMString(w.Circuit)
		got, err := circuit.ReadQASM(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: parse: %v", w.Name, err)
		}
		if got.NumQubits != w.Circuit.NumQubits {
			t.Errorf("%s: qubits %d != %d", w.Name, got.NumQubits, w.Circuit.NumQubits)
		}
		if len(got.Gates) != len(w.Circuit.Gates) {
			t.Fatalf("%s: gates %d != %d", w.Name, len(got.Gates), len(w.Circuit.Gates))
		}
		for i := range got.Gates {
			if got.Gates[i].String() != w.Circuit.Gates[i].String() {
				t.Fatalf("%s: gate %d: %q != %q", w.Name, i,
					got.Gates[i].String(), w.Circuit.Gates[i].String())
			}
		}
	}
}
