package apps

import (
	"math"

	"surfcomm/internal/circuit"
	"surfcomm/internal/scerr"
)

// Workload pairs a generated circuit with its suite name.
type Workload struct {
	Name    string
	Circuit *circuit.Circuit
}

// Table2Suite returns the four applications at the characterization
// sizes used for the Table 2 reproduction: sizes are chosen so the
// measured parallelism factors land in the paper's regimes
// (GSE ~1.2, SQ ~1.5, SHA-1 ~29, IM ~66).
func Table2Suite() []Workload {
	return []Workload{
		{Name: "GSE", Circuit: GSE(GSEConfig{M: 10, Steps: 2})},
		{Name: "SQ", Circuit: SQ(SQConfig{N: 8, Iters: 2})},
		{Name: "SHA-1", Circuit: SHA1(SHA1Config{Rounds: 2, WordWidth: 32})},
		{Name: "IM", Circuit: Ising(IsingConfig{N: 96, Steps: 2}, true)},
	}
}

// Fig6Suite returns the four applications at braid-simulation scale:
// the same shapes, sized so a full seven-policy sweep of the tiled
// architecture runs in seconds (word width reduced for SHA-1, chain
// shortened for IM). Relative parallelism ordering is preserved:
// GSE < SQ << SHA-1, IM.
func Fig6Suite() []Workload {
	return []Workload{
		{Name: "GSE", Circuit: GSE(GSEConfig{M: 10, Steps: 2})},
		{Name: "SQ", Circuit: SQ(SQConfig{N: 8, Iters: 2})},
		{Name: "SHA-1", Circuit: SHA1(SHA1Config{Rounds: 1, WordWidth: 16})},
		{Name: "IM", Circuit: Ising(IsingConfig{N: 64, Steps: 2}, true)},
	}
}

// IMVariants returns the two inlining configurations of the Ising model
// evaluated in Figure 9 (fully inlined exposes more parallelism).
func IMVariants(n, steps int) []Workload {
	return []Workload{
		{Name: "IM_Semi_Inlined", Circuit: Ising(IsingConfig{N: n, Steps: steps}, false)},
		{Name: "IM_Fully_Inlined", Circuit: Ising(IsingConfig{N: n, Steps: steps}, true)},
	}
}

// Scaling models how an application's logical footprint grows with
// total computation size K (the 1/p_L axis of Figures 7-9). Qubit
// counts follow each generator's allocation; the functions invert the
// closed-form op counts.
type Scaling struct {
	Name string
	// QubitsForOps returns the logical data-qubit count when the app is
	// sized so its total logical op count is totalOps.
	QubitsForOps func(totalOps float64) float64
}

// ScalingFor returns the scaling model for a suite application name.
// Recognized names: GSE, SQ, SHA-1, IM, IM_Semi_Inlined,
// IM_Fully_Inlined.
func ScalingFor(name string) (Scaling, error) {
	switch name {
	case "GSE":
		// Steps scale with M (longer evolution for bigger molecules):
		// K ≈ perStep(M)·M with perStep ≈ 78M (rotation depth 8), so
		// M ≈ sqrt(K/78); logical qubits = M+1.
		return Scaling{Name: name, QubitsForOps: func(k float64) float64 {
			m := math.Sqrt(k / 78)
			if m < 2 {
				m = 2
			}
			return m + 1
		}}, nil
	case "SQ":
		// Grover: K grows as 2^(n/2); invert numerically. Logical
		// qubits = in(n) + work(n/2) + ladder(n-2) + phase ≈ 2.5n-1.
		return Scaling{Name: name, QubitsForOps: func(k float64) float64 {
			n := sqBitsForOps(k)
			return 2.5*n - 1
		}}, nil
	case "SHA-1":
		// Fixed register file; longer messages add blocks, not qubits.
		q := float64(27*32 + PrefixAdderAncillas(32))
		return Scaling{Name: name, QubitsForOps: func(float64) float64 { return q }}, nil
	case "IM", "IM_Semi_Inlined", "IM_Fully_Inlined":
		// Steps scale with N: K ≈ 19·(2N−1)·N ≈ 38N², so N ≈ sqrt(K/38).
		return Scaling{Name: name, QubitsForOps: func(k float64) float64 {
			n := math.Sqrt(k / 38)
			if n < 2 {
				n = 2
			}
			return n
		}}, nil
	}
	return Scaling{}, scerr.UnknownModel("apps: no scaling model for %q", name)
}

// sqBitsForOps inverts SQOpsAt: the (fractional) register width n whose
// optimally-iterated Grover run executes k logical ops.
func sqBitsForOps(k float64) float64 {
	lo, hi := 4, 400
	if SQOpsAt(lo) >= k {
		return float64(lo)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if SQOpsAt(mid) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Log-linear interpolation between lo and hi.
	kl, kh := math.Log(SQOpsAt(lo)), math.Log(SQOpsAt(hi))
	t := (math.Log(k) - kl) / (kh - kl)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return float64(lo) + t
}
