package apps

import (
	"fmt"
	"math"

	"surfcomm/internal/circuit"
)

// SQConfig sizes the Square Root workload: Grover search over an N-bit
// input register (N even, >= 4) for Iters Grover iterations. Iters = 0
// selects the optimal ⌈(π/4)·2^(N/2)⌉ count — only sensible for tiny N;
// simulations pass explicit small iteration counts.
type SQConfig struct {
	N              int
	Iters          int
	RotationTDepth int
}

// SQOptimalIters returns the optimal Grover iteration count for an
// N-bit search space as a float (exceeds integer range for large N).
func SQOptimalIters(n int) float64 {
	return math.Ceil(math.Pi / 4 * math.Pow(2, float64(n)/2))
}

// SQ generates the Square Root circuit (paper Table 2: parallelism
// ~1.5): Grover iterations whose oracle computes pairwise partial
// products of the input (one bit-parallel Toffoli layer — the source of
// the modest parallelism) and folds them into a phase flip through a
// serial Toffoli ladder; the diffusion operator is the standard
// H/X/multi-controlled-Z/X/H sandwich, again ladder-dominated.
func SQ(cfg SQConfig) *circuit.Circuit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	iters := cfg.Iters
	if iters == 0 {
		iters = int(SQOptimalIters(cfg.N))
	}
	n := cfg.N
	w := n / 2
	ladN := n - 2 // ladder ancillas; n-1 controls need n-2
	if w-1 > ladN {
		ladN = w - 1
	}
	total := n + w + ladN + 1
	b := circuit.NewBuilder(fmt.Sprintf("sq_n%d_i%d", n, iters), total)
	b.RotationTDepth = cfg.RotationTDepth

	in := NewRegister(0, n)
	work := NewRegister(n, w)
	lad := NewRegister(n+w, ladN)
	phase := n + w + ladN

	// Uniform superposition over the search register.
	for _, q := range in {
		b.H(q)
	}
	b.PrepX(phase)

	for it := 0; it < iters; it++ {
		// Oracle: bit-parallel partial-product layer, then the serial
		// phase ladder, then uncompute.
		for i := 0; i < w; i++ {
			b.Toffoli(in[2*i], in[2*i+1], work[i])
		}
		mcPhase(b, work, lad, phase)
		for i := w - 1; i >= 0; i-- {
			b.Toffoli(in[2*i], in[2*i+1], work[i])
		}
		// Diffusion about the mean.
		for _, q := range in {
			b.H(q)
		}
		for _, q := range in {
			b.X(q)
		}
		mcPhase(b, in[:n-1], lad, in[n-1])
		for _, q := range in {
			b.X(q)
		}
		for _, q := range in {
			b.H(q)
		}
	}
	for _, q := range in {
		b.MeasZ(q)
	}
	return b.Circuit
}

// mcPhase applies a phase flip conditioned on every control being 1,
// via the standard Toffoli ladder over clean ancillas (computed, used,
// uncomputed). The ladder is inherently serial — each rung depends on
// the previous ancilla.
func mcPhase(b *circuit.Builder, controls Register, anc Register, target int) {
	k := len(controls)
	switch k {
	case 0:
		b.Z(target)
		return
	case 1:
		b.CZ(controls[0], target)
		return
	}
	if len(anc) < k-1 {
		panic(fmt.Sprintf("apps: mcPhase with %d controls needs %d ancillas, got %d", k, k-1, len(anc)))
	}
	b.Toffoli(controls[0], controls[1], anc[0])
	for i := 2; i < k; i++ {
		b.Toffoli(controls[i], anc[i-2], anc[i-1])
	}
	b.CZ(anc[k-2], target)
	for i := k - 1; i >= 2; i-- {
		b.Toffoli(controls[i], anc[i-2], anc[i-1])
	}
	b.Toffoli(controls[0], controls[1], anc[0])
}

// mcPhaseOps returns the gate count of mcPhase for k controls.
func mcPhaseOps(k int) int {
	switch k {
	case 0, 1:
		return 1
	}
	return 2*(k-1)*15 + 1
}

// SQIterOps returns the exact logical-op count of one Grover iteration.
func SQIterOps(n int) int {
	w := n / 2
	oracle := 2*w*15 + mcPhaseOps(w)
	diffusion := 4*n + mcPhaseOps(n-1)
	return oracle + diffusion
}

// SQOps returns the exact logical-op count SQ emits, in closed form.
func SQOps(cfg SQConfig) int {
	iters := cfg.Iters
	if iters == 0 {
		iters = int(SQOptimalIters(cfg.N))
	}
	return cfg.N + 1 + iters*SQIterOps(cfg.N) + cfg.N
}

// SQOpsAt returns the total-op count at the optimal iteration count as
// a float, usable far beyond integer range (the Figure 7–9 x-axis).
func SQOpsAt(n int) float64 {
	return float64(n) + 1 + SQOptimalIters(n)*float64(SQIterOps(n)) + float64(n)
}
