package apps

import (
	"surfcomm/internal/circuit"
	"surfcomm/internal/scerr"
)

// stageQubits is the width of each pipeline stage module.
const stageQubits = 8

// PipelineProgram builds the hierarchical incremental-compilation
// workload: an entry module over enough qubits to window n distinct
// stage modules, each stage a distinct-bodied 8-qubit kernel, called
// over overlapping qubit windows (stride 4, so adjacent stages share
// half their qubits — cross-module braid traffic is real, not
// decorative). It is the corpus the modular benchmarks, the
// examples/incremental walkthrough, and surfload's -modular mode edit
// one module of and recompile.
func PipelineProgram(n int) (*circuit.Program, error) {
	if n < 1 {
		return nil, scerr.BadConfig("apps: pipeline needs >= 1 stage, got %d", n)
	}
	const stride = stageQubits / 2
	width := stageQubits + stride*(n-1)
	p := circuit.NewProgram("pipeline", width)
	entry := p.Modules["pipeline"]
	// A little local work in the entry keeps it non-trivial.
	entry.Gate(circuit.PrepZ, 0)
	entry.Gate(circuit.H, 0)
	for i := 0; i < n; i++ {
		name := stageName(i)
		m := stageModule(name, i)
		if err := p.AddModule(m); err != nil {
			return nil, err
		}
		args := make([]int, stageQubits)
		for q := range args {
			args[q] = i*stride + q
		}
		entry.Call(name, args...)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func stageName(i int) string { return "stage" + string(rune('a'+i%26)) + suffix(i/26) }

func suffix(k int) string {
	if k == 0 {
		return ""
	}
	s := ""
	for k > 0 {
		s = string(rune('0'+k%10)) + s
		k /= 10
	}
	return s
}

// stageRounds is the entangler-ladder depth of each stage kernel. The
// body must be big enough that recompiling a module costs visibly more
// than stitching it — a one-gate "module" would make the incremental
// path look artificially cheap (all stitch, no compile) and the
// monolithic path artificially competitive.
const stageRounds = 6

// stageModule builds a distinct kernel body per stage index: rounds of
// entangler ladders plus an index-dependent tail, so no two stages
// share a content digest.
func stageModule(name string, idx int) *circuit.Module {
	m := &circuit.Module{Name: name, NumQubits: stageQubits}
	for r := 0; r < stageRounds; r++ {
		for q := 0; q < stageQubits; q++ {
			m.Gate(circuit.H, q)
		}
		for q := 0; q+1 < stageQubits; q++ {
			m.Gate(circuit.CNOT, q, q+1)
		}
		m.Gate(circuit.T, (idx+r)%stageQubits)
	}
	// Index-dependent tail: rotate a different qubit pair per stage.
	a := idx % stageQubits
	b := (idx*3 + 1) % stageQubits
	if b == a {
		b = (b + 1) % stageQubits
	}
	m.Gate(circuit.T, a)
	m.Gate(circuit.CZ, a, b)
	m.Gate(circuit.Tdg, b)
	for i := 0; i <= idx%4; i++ {
		m.Gate(circuit.S, (a+i)%stageQubits)
	}
	return m
}

// MutateModule returns a deep copy of the program with one module's
// body extended by a deterministic, variant-keyed gate pair — the
// "edit one module" step of the incremental workflows. Distinct
// variants produce distinct content digests; the module's interface
// (name, width) never changes, so only that module goes dirty.
func MutateModule(p *circuit.Program, name string, variant int) (*circuit.Program, error) {
	m, ok := p.Modules[name]
	if !ok {
		return nil, scerr.BadConfig("apps: no module %q to mutate", name)
	}
	cp := p.Clone()
	mm := cp.Modules[name]
	q := (variant + 7) % m.NumQubits
	if q < 0 {
		q += m.NumQubits
	}
	mm.Gate(circuit.Z, q)
	mm.Gate(circuit.S, (q+1)%m.NumQubits)
	// Encode the variant's bits as a Z/S tail so *every* variant has a
	// distinct body — a fixed-shape edit would cycle with the qubit
	// count and silently turn long edit-loops into full cache hits.
	for v := variant; v > 0; v >>= 1 {
		if v&1 == 1 {
			mm.Gate(circuit.S, q)
		} else {
			mm.Gate(circuit.Z, q)
		}
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}
