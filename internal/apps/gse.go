package apps

import (
	"fmt"

	"surfcomm/internal/circuit"
)

// GSEConfig sizes the Ground State Estimation workload: iterative phase
// estimation over a Trotterized molecular Hamiltonian on M system
// qubits, Steps Trotter steps, with RotationTDepth fragments per
// synthesized rotation (0 selects the builder default).
type GSEConfig struct {
	M              int
	Steps          int
	RotationTDepth int
}

// GSE generates the Ground State Estimation circuit (paper Table 2:
// parallelism factor ~1.2). One phase ancilla serializes every
// controlled rotation — each Hamiltonian term is applied as a
// controlled-Rz through the ancilla, with basis-change and CNOT-ladder
// dressing for the coupling terms. The only exposed parallelism is the
// basis-change layer overlapping the ancilla chain, which is why the
// application is the paper's most serial workload.
func GSE(cfg GSEConfig) *circuit.Circuit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := circuit.NewBuilder(fmt.Sprintf("gse_m%d_s%d", cfg.M, cfg.Steps), 1+cfg.M)
	b.RotationTDepth = cfg.RotationTDepth
	anc := 0
	sys := func(i int) int { return 1 + i }

	for step := 0; step < cfg.Steps; step++ {
		b.PrepX(anc)
		// Single-qubit Z terms: controlled rotation per system qubit,
		// all chained through the phase ancilla.
		for i := 0; i < cfg.M; i++ {
			b.CRz(anc, sys(i), 0.31*float64(i+1))
		}
		// Nearest-neighbor coupling terms: basis change, entangle,
		// controlled rotation, disentangle, restore basis.
		for i := 0; i+1 < cfg.M; i++ {
			b.H(sys(i))
			b.H(sys(i + 1))
			b.CNOT(sys(i), sys(i+1))
			b.CRz(anc, sys(i+1), 0.17*float64(i+1))
			b.CNOT(sys(i), sys(i+1))
			b.H(sys(i))
			b.H(sys(i + 1))
		}
		b.MeasX(anc)
	}
	return b.Circuit
}

// GSEOps returns the exact logical-op count GSE emits, in closed form.
func GSEOps(cfg GSEConfig) int {
	r := cfg.RotationTDepth
	if r == 0 {
		r = circuit.DefaultRotationTDepth
	}
	crz := 2*(2*r+1) + 2 // two synthesized rotations plus two CNOTs
	perStep := 2 + cfg.M*crz + (cfg.M-1)*(crz+6)
	return cfg.Steps * perStep
}
