// Package apps generates the paper's benchmark applications (Table 2) as
// logical circuits: Ground State Estimation (GSE), Square Root via
// Grover search (SQ), SHA-1 decryption rounds (SHA-1), and the digitized
// adiabatic Ising model (IM). Each generator is parameterized by problem
// size, emits the Clifford+T instruction set via circuit.Builder, and is
// paired with a closed-form operation-count formula used by the
// design-space sweeps at computation sizes too large to materialize.
//
// The generators substitute for the paper's Scaffold sources compiled by
// ScaffCC: they reproduce the dataflow shape (serial ancilla chains in
// GSE, Toffoli ladders in SQ, bitwise word-parallel logic plus adder
// trees in SHA-1, even/odd bond layers in IM) that determines
// communication behavior downstream.
package apps

import (
	"fmt"

	"surfcomm/internal/circuit"
)

// Register is a view of a word of logical qubits, least significant bit
// first. Rotations are views (compiler renaming), not gates.
type Register []int

// NewRegister allocates indices [base, base+width) as a register.
func NewRegister(base, width int) Register {
	r := make(Register, width)
	for i := range r {
		r[i] = base + i
	}
	return r
}

// RotL returns the register rotated left by k bit positions (bit i of
// the result is bit (i-k) mod width of the input). This is qubit
// relabeling: free at the logical level, as in the paper's toolflow.
func (r Register) RotL(k int) Register {
	n := len(r)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make(Register, n)
	for i := range out {
		out[i] = r[(i-k+n)%n]
	}
	return out
}

// XorInto appends bitwise src ⊕= into dst (CNOT per bit); the layers are
// fully bit-parallel.
func XorInto(b *circuit.Builder, src, dst Register) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("apps: xor width mismatch %d vs %d", len(src), len(dst)))
	}
	for i := range src {
		b.CNOT(src[i], dst[i])
	}
}

// AndInto appends bitwise dst ⊕= x·y (Toffoli per bit).
func AndInto(b *circuit.Builder, x, y, dst Register) {
	if len(x) != len(y) || len(x) != len(dst) {
		panic("apps: and width mismatch")
	}
	for i := range x {
		b.Toffoli(x[i], y[i], dst[i])
	}
}

// maj appends the Cuccaro majority step on (x, y, z).
func maj(b *circuit.Builder, x, y, z int) {
	b.CNOT(z, y)
	b.CNOT(z, x)
	b.Toffoli(x, y, z)
}

// uma appends the Cuccaro unmajority-and-add step on (x, y, z).
func uma(b *circuit.Builder, x, y, z int) {
	b.Toffoli(x, y, z)
	b.CNOT(z, x)
	b.CNOT(x, y)
}

// RippleAdd appends the Cuccaro ripple-carry adder computing
// y ← x + y (mod 2^width) with a single carry ancilla. The carry chain
// is inherently serial — the low-parallelism adder baseline.
func RippleAdd(b *circuit.Builder, x, y Register, carry int) {
	if len(x) != len(y) {
		panic("apps: adder width mismatch")
	}
	n := len(x)
	if n == 0 {
		return
	}
	maj(b, carry, y[0], x[0])
	for i := 1; i < n; i++ {
		maj(b, x[i-1], y[i], x[i])
	}
	for i := n - 1; i >= 1; i-- {
		uma(b, x[i-1], y[i], x[i])
	}
	uma(b, carry, y[0], x[0])
}

// rippleAddOps returns the exact gate count RippleAdd emits for a width.
func rippleAddOps(width int) int {
	// Each MAJ and each UMA is 2 CNOT + 1 Toffoli (15 gates) = 17 gates.
	return width * 2 * 17
}

// PrefixAdderAncillas returns the ancilla demand of PrefixAdd for a
// width: generate and propagate registers at each Kogge-Stone level.
func PrefixAdderAncillas(width int) int {
	levels := koggeStoneLevels(width)
	return width * (levels + 1) * 2
}

func koggeStoneLevels(width int) int {
	l := 0
	for stride := 1; stride < width; stride *= 2 {
		l++
	}
	return l
}

// PrefixAdd appends a Kogge-Stone carry-lookahead adder computing
// sum ← x + y (mod 2^width), out of place, leaving x and y intact and
// returning all ancillas to |0> (compute, copy out, uncompute).
//
// Unlike the ripple adder, all work within a prefix level is
// bit-parallel, so depth is O(log width) Toffoli layers — this is the
// adder that gives SHA-1 its word-level parallelism.
//
// anc must provide PrefixAdderAncillas(len(x)) clean qubits.
func PrefixAdd(b *circuit.Builder, x, y, sum Register, anc Register) {
	n := len(x)
	if len(y) != n || len(sum) != n {
		panic("apps: prefix adder width mismatch")
	}
	if len(anc) < PrefixAdderAncillas(n) {
		panic(fmt.Sprintf("apps: prefix adder needs %d ancillas, got %d", PrefixAdderAncillas(n), len(anc)))
	}
	levels := koggeStoneLevels(n)
	// Carve per-level G and P registers out of the ancilla pool.
	g := make([]Register, levels+1)
	p := make([]Register, levels+1)
	off := 0
	for l := 0; l <= levels; l++ {
		g[l] = anc[off : off+n]
		off += n
		p[l] = anc[off : off+n]
		off += n
	}

	// Level 0: g0_i = x_i·y_i ; p0_i = x_i ⊕ y_i. Fully bit-parallel.
	level0 := func() {
		for i := 0; i < n; i++ {
			b.Toffoli(x[i], y[i], g[0][i])
			b.CNOT(x[i], p[0][i])
			b.CNOT(y[i], p[0][i])
		}
	}
	// Kogge-Stone combine, level l with stride 2^(l-1):
	//   G_l[i] = G_{l-1}[i] ⊕ P_{l-1}[i]·G_{l-1}[i-s]
	//   P_l[i] = P_{l-1}[i]·P_{l-1}[i-s]
	// For i < s the pair passes through unchanged (CNOT copies).
	combine := func(l int) {
		s := 1 << (l - 1)
		for i := 0; i < n; i++ {
			if i < s {
				b.CNOT(g[l-1][i], g[l][i])
				b.CNOT(p[l-1][i], p[l][i])
				continue
			}
			b.CNOT(g[l-1][i], g[l][i])
			b.Toffoli(p[l-1][i], g[l-1][i-s], g[l][i])
			b.Toffoli(p[l-1][i], p[l-1][i-s], p[l][i])
		}
	}
	uncombine := func(l int) {
		s := 1 << (l - 1)
		for i := n - 1; i >= 0; i-- {
			if i < s {
				b.CNOT(p[l-1][i], p[l][i])
				b.CNOT(g[l-1][i], g[l][i])
				continue
			}
			b.Toffoli(p[l-1][i], p[l-1][i-s], p[l][i])
			b.Toffoli(p[l-1][i], g[l-1][i-s], g[l][i])
			b.CNOT(g[l-1][i], g[l][i])
		}
	}
	unlevel0 := func() {
		for i := n - 1; i >= 0; i-- {
			b.CNOT(y[i], p[0][i])
			b.CNOT(x[i], p[0][i])
			b.Toffoli(x[i], y[i], g[0][i])
		}
	}

	level0()
	for l := 1; l <= levels; l++ {
		combine(l)
	}
	// sum_i = p0_i ⊕ carry_i, carry_i = G_top[i-1] (carry into bit i).
	for i := 0; i < n; i++ {
		b.CNOT(x[i], sum[i])
		b.CNOT(y[i], sum[i])
		if i > 0 {
			b.CNOT(g[levels][i-1], sum[i])
		}
	}
	for l := levels; l >= 1; l-- {
		uncombine(l)
	}
	unlevel0()
}

// prefixAddOps returns the exact gate count PrefixAdd emits for a width.
func prefixAddOps(width int) int {
	n := width
	levels := koggeStoneLevels(n)
	toffoliGates := 15 // circuit.Builder Toffoli expansion size
	// Level 0 compute+uncompute: per bit 1 Toffoli + 2 CNOT, twice.
	ops := 2 * n * (toffoliGates + 2)
	// Combine levels, compute+uncompute.
	for l := 1; l <= levels; l++ {
		s := 1 << (l - 1)
		pass := s * 2                          // CNOT pairs for i < s
		rest := (n - s) * (1 + 2*toffoliGates) // copy + two Toffolis
		ops += 2 * (pass + rest)
	}
	// Sum copy-out: 2 CNOT per bit + carry CNOT for bits 1..n-1.
	ops += 2*n + (n - 1)
	return ops
}
