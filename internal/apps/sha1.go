package apps

import (
	"fmt"
	"math/bits"

	"surfcomm/internal/circuit"
)

// SHA1Config sizes the SHA-1 decryption workload. Rounds is the number
// of compression rounds (the full function uses 80); WordWidth is the
// architectural word size (32 for real SHA-1; tests shrink it). The
// workload is the preimage-search setting of the paper: the message
// schedule starts in uniform superposition and the compression function
// runs reversibly over it.
type SHA1Config struct {
	Rounds    int
	WordWidth int
}

func (cfg SHA1Config) normalize() SHA1Config {
	if cfg.WordWidth == 0 {
		cfg.WordWidth = 32
	}
	return cfg
}

// sha1IV are the standard chaining-value constants for registers a..e.
var sha1IV = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}

// sha1K returns the round constant for round i.
func sha1K(i int) uint32 {
	switch {
	case i < 20:
		return 0x5A827999
	case i < 40:
		return 0x6ED9EBA1
	case i < 60:
		return 0x8F1BBCDC
	default:
		return 0xCA62C1D6
	}
}

// SHA1 generates the SHA-1 compression circuit (paper Table 2:
// parallelism ~29). Parallelism comes from three bit-parallel sources —
// the 16-word superposed message schedule, the bitwise f-functions
// (Ch/Parity/Maj as Toffoli/CNOT layers), and the Kogge-Stone prefix
// adders whose levels are word-wide — stacked against the serial
// accumulation chain through register a.
//
// Register file: architectural a..e, a 16-word rotating schedule, a
// five-word recycle pool for f-outputs and add accumulators (registers
// are reset with bitwise PrepZ on reuse), a round-constant word, and a
// clean adder-ancilla bank shared by the in-round adds.
func SHA1(cfg SHA1Config) *circuit.Circuit {
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := cfg.WordWidth
	bank := PrefixAdderAncillas(w)
	total := 5*w + 16*w + 5*w + w + bank
	b := circuit.NewBuilder(fmt.Sprintf("sha1_r%d_w%d", cfg.Rounds, w), total)

	next := 0
	alloc := func(width int) Register {
		r := NewRegister(next, width)
		next += width
		return r
	}
	arch := make([]Register, 5) // a b c d e
	for i := range arch {
		arch[i] = alloc(w)
	}
	sched := make([]Register, 16)
	for i := range sched {
		sched[i] = alloc(w)
	}
	pool := make([]Register, 5)
	for i := range pool {
		pool[i] = alloc(w)
	}
	kreg := alloc(w)
	anc := alloc(bank)

	// allocReg takes a register from the recycle pool and resets it.
	allocReg := func() Register {
		r := pool[0]
		pool = pool[1:]
		for _, q := range r {
			b.PrepZ(q)
		}
		return r
	}
	freeReg := func(r Register) { pool = append(pool, r) }

	// setConst flips the bits of a (freshly reset) register to match the
	// low bits of a classical constant.
	setConst := func(r Register, c uint32) {
		for i, q := range r {
			if c>>(uint(i)%32)&1 == 1 {
				b.X(q)
			}
		}
	}

	// Initialization: chaining values classical, message in superposition.
	for i, r := range arch {
		setConst(r, sha1IV[i])
	}
	for _, r := range sched {
		for _, q := range r {
			b.H(q)
		}
	}

	for i := 0; i < cfg.Rounds; i++ {
		// Message schedule: w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]).
		if i >= 16 {
			slot := i % 16
			XorInto(b, sched[(i-3)%16], sched[slot])
			XorInto(b, sched[(i-8)%16], sched[slot])
			XorInto(b, sched[(i-14)%16], sched[slot])
			sched[slot] = sched[slot].RotL(1)
		}
		// f(b,c,d) into a fresh word, per round regime.
		t := allocReg()
		bb, cc, dd := arch[1], arch[2], arch[3]
		switch {
		case i < 20:
			// Ch(b,c,d) = (b AND c) ⊕ (¬b AND d)
			AndInto(b, bb, cc, t)
			for _, q := range bb {
				b.X(q)
			}
			AndInto(b, bb, dd, t)
			for _, q := range bb {
				b.X(q)
			}
		case i >= 40 && i < 60:
			// Maj(b,c,d)
			AndInto(b, bb, cc, t)
			AndInto(b, bb, dd, t)
			AndInto(b, cc, dd, t)
		default:
			// Parity(b,c,d)
			XorInto(b, bb, t)
			XorInto(b, cc, t)
			XorInto(b, dd, t)
		}
		// Round constant.
		for _, q := range kreg {
			b.PrepZ(q)
		}
		setConst(kreg, sha1K(i))
		// temp = rotl5(a) + f + e + k + w[i]: chain of prefix adds into
		// fresh accumulators.
		acc1 := allocReg()
		PrefixAdd(b, arch[0].RotL(5), t, acc1, anc)
		acc2 := allocReg()
		PrefixAdd(b, acc1, arch[4], acc2, anc)
		acc3 := allocReg()
		PrefixAdd(b, acc2, sched[i%16], acc3, anc)
		acc4 := allocReg()
		PrefixAdd(b, acc3, kreg, acc4, anc)

		// Rotate the architectural registers; recycle the dead ones.
		oldE := arch[4]
		arch[4] = arch[3]
		arch[3] = arch[2]
		arch[2] = arch[1].RotL(30)
		arch[1] = arch[0]
		arch[0] = acc4
		freeReg(t)
		freeReg(acc1)
		freeReg(acc2)
		freeReg(acc3)
		freeReg(oldE)
	}
	for _, r := range arch {
		for _, q := range r {
			b.MeasZ(q)
		}
	}
	return b.Circuit
}

// popcountWidth counts set bits of c restricted to the low `width` bits.
func popcountWidth(c uint32, width int) int {
	if width >= 32 {
		return bits.OnesCount32(c)
	}
	return bits.OnesCount32(c & (1<<uint(width) - 1))
}

// SHA1Ops returns the exact logical-op count SHA1 emits, in closed form.
func SHA1Ops(cfg SHA1Config) int {
	cfg = cfg.normalize()
	w := cfg.WordWidth
	ops := 0
	for i := range sha1IV {
		ops += popcountWidth(sha1IV[i], w)
	}
	ops += 16 * w // schedule superposition
	add := prefixAddOps(w)
	for i := 0; i < cfg.Rounds; i++ {
		if i >= 16 {
			ops += 3 * w
		}
		ops += w // t reset
		switch {
		case i < 20:
			ops += 2*15*w + 2*w // Ch
		case i >= 40 && i < 60:
			ops += 3 * 15 * w // Maj
		default:
			ops += 3 * w // Parity
		}
		ops += w + popcountWidth(sha1K(i), w) // kreg reset + constant
		ops += 4*w + 4*add                    // accumulator resets + adds
	}
	ops += 5 * w // final measurement
	return ops
}

// SHA1OpsAt returns the op count of `blocks` sequential 80-round
// compressions as a float (the Figure 9 x-axis scaling: longer messages
// mean proportionally more logical work on the same register file).
func SHA1OpsAt(blocks float64) float64 {
	return blocks * float64(SHA1Ops(SHA1Config{Rounds: 80}))
}
