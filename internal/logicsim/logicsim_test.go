package logicsim

import (
	"testing"

	"surfcomm/internal/circuit"
)

func run(t *testing.T, c *circuit.Circuit, in State) State {
	t.Helper()
	out, err := Run(c, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestXFlips(t *testing.T) {
	c := circuit.New("x", 1)
	c.Append(circuit.X, 0)
	out := run(t, c, NewState(1))
	if !out[0] {
		t.Error("X|0> should be |1>")
	}
	out = run(t, c, State{true})
	if out[0] {
		t.Error("X|1> should be |0>")
	}
}

func TestCNOTTruthTable(t *testing.T) {
	c := circuit.New("cnot", 2)
	c.Append(circuit.CNOT, 0, 1)
	cases := []struct{ c0, t0, t1 bool }{
		{false, false, false},
		{false, true, true},
		{true, false, true},
		{true, true, false},
	}
	for _, tc := range cases {
		out := run(t, c, State{tc.c0, tc.t0})
		if out[0] != tc.c0 || out[1] != tc.t1 {
			t.Errorf("CNOT(%v,%v) -> (%v,%v), want target %v", tc.c0, tc.t0, out[0], out[1], tc.t1)
		}
	}
}

func TestToffoliTruthTable(t *testing.T) {
	c := circuit.New("tof", 3)
	c.Append(circuit.Toffoli, 0, 1, 2)
	for mask := 0; mask < 8; mask++ {
		in := State{mask&1 == 1, mask&2 == 2, mask&4 == 4}
		out := run(t, c, in)
		wantT := in[2] != (in[0] && in[1])
		if out[2] != wantT || out[0] != in[0] || out[1] != in[1] {
			t.Errorf("Toffoli(%v) -> %v", in, out)
		}
	}
}

func TestSwap(t *testing.T) {
	c := circuit.New("swap", 2)
	c.Append(circuit.Swap, 0, 1)
	out := run(t, c, State{true, false})
	if out[0] || !out[1] {
		t.Errorf("Swap(1,0) -> %v, want (0,1)", out)
	}
}

func TestPrepZResets(t *testing.T) {
	c := circuit.New("prep", 1)
	c.Append(circuit.PrepZ, 0)
	out := run(t, c, State{true})
	if out[0] {
		t.Error("PrepZ should reset to 0")
	}
}

func TestBarrierIsNoop(t *testing.T) {
	c := circuit.New("fence", 2)
	c.Append(circuit.Barrier, 0, 1)
	out := run(t, c, State{true, false})
	if !out[0] || out[1] {
		t.Error("Barrier should not change state")
	}
}

func TestQuantumGateRejected(t *testing.T) {
	c := circuit.New("h", 1)
	c.Append(circuit.H, 0)
	if _, err := Run(c, NewState(1)); err == nil {
		t.Error("H should be rejected as non-classical")
	}
}

func TestWidthMismatchRejected(t *testing.T) {
	c := circuit.New("w", 2)
	if _, err := Run(c, NewState(3)); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestInputNotMutated(t *testing.T) {
	c := circuit.New("x", 1)
	c.Append(circuit.X, 0)
	in := NewState(1)
	run(t, c, in)
	if in[0] {
		t.Error("Run must not mutate its input")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	s := NewState(8)
	reg := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.SetUint64(reg, 0xA5)
	if got := s.Uint64(reg); got != 0xA5 {
		t.Errorf("round trip = %#x, want 0xA5", got)
	}
	// Register views select and order bits: 0xA5 has bits 0 and 2 set.
	if got := s.Uint64([]int{2, 0}); got != 0b11 {
		t.Errorf("view = %#b, want 0b11", got)
	}
	if got := s.Uint64([]int{1, 0}); got != 0b10 {
		t.Errorf("view = %#b, want 0b10", got)
	}
}

func TestUint64TooWidePanics(t *testing.T) {
	s := NewState(65)
	reg := make([]int, 65)
	for i := range reg {
		reg[i] = i
	}
	defer func() {
		if recover() == nil {
			t.Error("width > 64 should panic")
		}
	}()
	s.Uint64(reg)
}
