// Package logicsim evaluates circuits composed purely of classical
// reversible gates (X, CNOT, Toffoli, Swap, plus PrepZ resets and
// Barrier fences) on computational basis states.
//
// It is the verification substrate for the reversible arithmetic inside
// the application generators: adders and bitwise blocks built with
// circuit.Builder in KeepMacros mode are replayed on random inputs and
// checked against ordinary integer arithmetic. Quantum gates (H, T,
// phases) are out of scope by design — a gate outside the classical
// subset is an error, not an approximation.
package logicsim

import (
	"fmt"

	"surfcomm/internal/circuit"
)

// State is an assignment of classical bits to logical qubits.
type State []bool

// NewState returns an all-zero state for n qubits.
func NewState(n int) State { return make(State, n) }

// Uint64 packs qubits of a register view (least significant first) into
// an integer. Widths above 64 bits panic.
func (s State) Uint64(reg []int) uint64 {
	if len(reg) > 64 {
		panic("logicsim: register wider than 64 bits")
	}
	var v uint64
	for i, q := range reg {
		if s[q] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// SetUint64 stores the low len(reg) bits of v into the register view.
func (s State) SetUint64(reg []int, v uint64) {
	for i, q := range reg {
		s[q] = v>>uint(i)&1 == 1
	}
}

// Run applies the circuit to the input state and returns the output
// state. The input is copied; it is not modified. Gates outside the
// classical reversible subset yield an error identifying the offender.
func Run(c *circuit.Circuit, in State) (State, error) {
	if len(in) != c.NumQubits {
		return nil, fmt.Errorf("logicsim: state width %d != circuit width %d", len(in), c.NumQubits)
	}
	s := make(State, len(in))
	copy(s, in)
	for i, g := range c.Gates {
		switch g.Op {
		case circuit.X:
			s[g.Qubits[0]] = !s[g.Qubits[0]]
		case circuit.CNOT:
			if s[g.Qubits[0]] {
				s[g.Qubits[1]] = !s[g.Qubits[1]]
			}
		case circuit.Toffoli:
			if s[g.Qubits[0]] && s[g.Qubits[1]] {
				s[g.Qubits[2]] = !s[g.Qubits[2]]
			}
		case circuit.Swap:
			a, b := g.Qubits[0], g.Qubits[1]
			s[a], s[b] = s[b], s[a]
		case circuit.PrepZ:
			s[g.Qubits[0]] = false
		case circuit.Barrier:
			// Scheduling metadata; no effect on state.
		default:
			return nil, fmt.Errorf("logicsim: gate %d (%v) is not classical reversible logic", i, g.Op)
		}
	}
	return s, nil
}
