package braid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
	"surfcomm/internal/layout"
)

func simulate(t *testing.T, c *circuit.Circuit, p Policy, cfg Config) Result {
	t.Helper()
	r, err := Simulate(c, p, cfg)
	if err != nil {
		t.Fatalf("%s under %v: %v", c.Name, p, err)
	}
	return r
}

func TestSingleCNOTMatchesCriticalPath(t *testing.T) {
	c := circuit.New("one", 2)
	c.Append(circuit.CNOT, 0, 1)
	r := simulate(t, c, Policy1, Config{Distance: 5})
	want := int64(2 * (5 + 1)) // two braid phases
	if r.ScheduleCycles != want {
		t.Errorf("schedule = %d, want %d", r.ScheduleCycles, want)
	}
	if r.CriticalPathCycles != want {
		t.Errorf("critical = %d, want %d", r.CriticalPathCycles, want)
	}
	if r.Ratio != 1.0 {
		t.Errorf("ratio = %v, want 1.0", r.Ratio)
	}
	if r.BraidsPlaced != 2 {
		t.Errorf("braids placed = %d, want 2 (open + close)", r.BraidsPlaced)
	}
	if r.AvgUtilization <= 0 || r.AvgUtilization > 1 {
		t.Errorf("utilization = %v out of range", r.AvgUtilization)
	}
}

func TestSerialLocalChain(t *testing.T) {
	c := circuit.New("chain", 1)
	for i := 0; i < 10; i++ {
		c.Append(circuit.H, 0)
	}
	r := simulate(t, c, Policy0, Config{Distance: 7})
	// Local logical gates are transversal/frame operations: 1 cycle.
	if r.ScheduleCycles != 10 {
		t.Errorf("schedule = %d, want 10", r.ScheduleCycles)
	}
	if r.Ratio != 1.0 {
		t.Errorf("serial chain ratio = %v, want 1.0", r.Ratio)
	}
	if r.BraidsPlaced != 0 {
		t.Error("local chain should place no braids")
	}
}

func TestMeasPrepFastLocal(t *testing.T) {
	c := circuit.New("mp", 1)
	c.Append(circuit.PrepZ, 0)
	c.Append(circuit.MeasZ, 0)
	r := simulate(t, c, Policy1, Config{Distance: 9})
	if r.ScheduleCycles != 2 {
		t.Errorf("prep+meas schedule = %d, want 2", r.ScheduleCycles)
	}
}

func TestBarrierOnlyCircuit(t *testing.T) {
	c := circuit.New("fences", 2)
	c.Append(circuit.Barrier, 0, 1)
	c.Append(circuit.Barrier, 0, 1)
	r := simulate(t, c, Policy1, Config{Distance: 5})
	if r.ScheduleCycles != 0 {
		t.Errorf("barrier-only schedule = %d, want 0", r.ScheduleCycles)
	}
}

func TestParallelDisjointCNOTs(t *testing.T) {
	// Two CNOTs between vertically adjacent tiles in different columns
	// of a 2x2 grid: (0,0)-(1,0)... with row-major on 4 qubits, pairs
	// (0,2) and (1,3) are vertical neighbors with disjoint routes.
	c := circuit.New("par", 4)
	c.Append(circuit.CNOT, 0, 2)
	c.Append(circuit.CNOT, 1, 3)
	r := simulate(t, c, Policy1, Config{Distance: 5})
	want := int64(2 * (5 + 1))
	if r.ScheduleCycles != want {
		t.Errorf("disjoint braids should run concurrently: schedule %d, want %d",
			r.ScheduleCycles, want)
	}
}

func TestConflictingBraidsSerialize(t *testing.T) {
	// Two braids sharing a junction cannot coexist; under Policy 1 with
	// row-major layout, CNOT(0,1) and CNOT(1,2)... share qubit 1 (data
	// dependency). Instead use CNOT(0,3) and CNOT(1,2) on a 2x2 grid:
	// XY routes both traverse junction (0,1).
	c := circuit.New("conflict", 4)
	c.Append(circuit.CNOT, 0, 3)
	c.Append(circuit.CNOT, 1, 2)
	r := simulate(t, c, Policy1, Config{Distance: 5, AdaptTimeout: 1 << 30})
	// With adaptivity disabled the second braid must wait for a phase.
	if r.ScheduleCycles <= 2*(5+1) {
		t.Errorf("conflicting braids finished too fast: %d", r.ScheduleCycles)
	}
	if r.Ratio <= 1.0 {
		t.Errorf("conflict should push ratio above 1, got %v", r.Ratio)
	}
}

func TestAdaptiveRoutingRelievesConflict(t *testing.T) {
	c := circuit.New("adapt", 4)
	c.Append(circuit.CNOT, 0, 3)
	c.Append(circuit.CNOT, 1, 2)
	blocked := simulate(t, c, Policy1, Config{Distance: 5, AdaptTimeout: 1 << 30})
	adaptive := simulate(t, c, Policy1, Config{Distance: 5, AdaptTimeout: 1})
	if adaptive.ScheduleCycles > blocked.ScheduleCycles {
		t.Errorf("adaptivity should not hurt: %d > %d",
			adaptive.ScheduleCycles, blocked.ScheduleCycles)
	}
}

func TestScheduleNeverBeatsCriticalPath(t *testing.T) {
	for _, w := range []apps.Workload{
		{Name: "GSE", Circuit: apps.GSE(apps.GSEConfig{M: 5, Steps: 1})},
		{Name: "SQ", Circuit: apps.SQ(apps.SQConfig{N: 4, Iters: 1})},
		{Name: "IM", Circuit: apps.Ising(apps.IsingConfig{N: 12, Steps: 1}, true)},
	} {
		for _, p := range AllPolicies {
			r := simulate(t, w.Circuit, p, Config{Distance: 5})
			if r.ScheduleCycles < r.CriticalPathCycles {
				t.Errorf("%s %v: schedule %d beats critical path %d",
					w.Name, p, r.ScheduleCycles, r.CriticalPathCycles)
			}
			if r.AvgUtilization < 0 || r.AvgUtilization > 1 {
				t.Errorf("%s %v: utilization %v out of range", w.Name, p, r.AvgUtilization)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := apps.Ising(apps.IsingConfig{N: 12, Steps: 1}, true)
	a := simulate(t, c, Policy6, Config{Distance: 5, Seed: 3})
	b := simulate(t, c, Policy6, Config{Distance: 5, Seed: 3})
	if a.ScheduleCycles != b.ScheduleCycles || a.BraidsPlaced != b.BraidsPlaced ||
		a.AdaptiveRoutes != b.AdaptiveRoutes || a.AvgUtilization != b.AvgUtilization {
		t.Errorf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

func TestPoliciesImproveParallelApp(t *testing.T) {
	c := apps.Ising(apps.IsingConfig{N: 24, Steps: 1}, true)
	p0 := simulate(t, c, Policy0, Config{Distance: 5})
	p6 := simulate(t, c, Policy6, Config{Distance: 5})
	if p6.Ratio >= p0.Ratio {
		t.Errorf("Policy 6 ratio %.2f should beat Policy 0 ratio %.2f", p6.Ratio, p0.Ratio)
	}
	// Utilization ordering is an emergent full-scale effect (Figure 6
	// bench); at unit-test scale we only require sane values.
	if p6.AvgUtilization <= 0 || p0.AvgUtilization <= 0 {
		t.Errorf("utilizations should be positive: p0=%.3f p6=%.3f",
			p0.AvgUtilization, p6.AvgUtilization)
	}
}

func TestSerialAppAlreadyNearCriticalPath(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 6, Steps: 1})
	r := simulate(t, c, Policy0, Config{Distance: 5})
	if r.Ratio > 2.5 {
		t.Errorf("serial app ratio = %.2f, expected near critical path", r.Ratio)
	}
}

func TestMagicTrafficDefault(t *testing.T) {
	c := circuit.New("ts", 2)
	c.Append(circuit.T, 0)
	c.Append(circuit.T, 1)
	c.Append(circuit.Tdg, 0)
	r := simulate(t, c, Policy1, Config{Distance: 5})
	if r.BraidsPlaced != 6 {
		t.Errorf("3 T gates should place 6 braid phases, got %d", r.BraidsPlaced)
	}
	if r.ScheduleCycles <= 0 {
		t.Error("schedule empty")
	}
	// Ablation: with pre-delivered states, T is local.
	r2 := simulate(t, c, Policy1, Config{Distance: 5, LocalTOps: true})
	if r2.BraidsPlaced != 0 {
		t.Error("LocalTOps mode should place no braids")
	}
	if r2.ScheduleCycles >= r.ScheduleCycles {
		t.Errorf("local T ablation should be faster: %d vs %d", r2.ScheduleCycles, r.ScheduleCycles)
	}
}

func TestMagicTrafficFactorySerialization(t *testing.T) {
	// Many concurrent T gates contending for factory ports and mesh
	// corridors: the schedule must stretch beyond the critical path.
	c := circuit.New("tpar", 16)
	for q := 0; q < 16; q++ {
		c.Append(circuit.T, q)
	}
	r := simulate(t, c, Policy1, Config{Distance: 5})
	if r.Ratio < 1.5 {
		t.Errorf("16 parallel T on shared ports should congest: ratio %.2f", r.Ratio)
	}
}

func TestExplicitPlacementOverride(t *testing.T) {
	c := circuit.New("two", 2)
	c.Append(circuit.CNOT, 0, 1)
	// Far-apart placement on a 1x8 strip.
	p := &layout.Placement{Rows: 1, Cols: 8, Pos: []layout.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 7}}}
	far := simulate(t, c, Policy1, Config{Distance: 5, Placement: p})
	near := simulate(t, c, Policy1, Config{Distance: 5})
	// Braid latency is distance-independent (1-cycle extension): the
	// defining property of braids (Table 1).
	if far.ScheduleCycles != near.ScheduleCycles {
		t.Errorf("braid latency should be distance-independent: far %d vs near %d",
			far.ScheduleCycles, near.ScheduleCycles)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	c := circuit.New("ok", 2)
	c.Append(circuit.CNOT, 0, 1)
	if _, err := Simulate(c, Policy(42), Config{}); err == nil {
		t.Error("unknown policy should fail")
	}
	bad := circuit.New("bad", 1)
	bad.Gates = append(bad.Gates, circuit.Gate{Op: circuit.CNOT, Qubits: []int{0, 7}})
	if _, err := Simulate(bad, Policy1, Config{}); err == nil {
		t.Error("invalid circuit should fail")
	}
}

// Property: random circuits complete under every policy, schedules
// respect the critical-path lower bound, and op counts match.
func TestEngineQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		c := circuit.New("rand", n)
		for i := 0; i < 40; i++ {
			switch rng.Intn(4) {
			case 0:
				c.Append(circuit.H, rng.Intn(n))
			case 1:
				c.Append(circuit.T, rng.Intn(n))
			case 2:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.Append(circuit.CNOT, a, b)
			case 3:
				c.Append(circuit.MeasZ, rng.Intn(n))
			}
		}
		p := AllPolicies[rng.Intn(len(AllPolicies))]
		r, err := Simulate(c, p, Config{Distance: 3, Seed: seed})
		if err != nil {
			return false
		}
		return r.ScheduleCycles >= r.CriticalPathCycles &&
			r.AvgUtilization >= 0 && r.AvgUtilization <= 1 &&
			r.Ops == c.Ops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
