package braid

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
	"surfcomm/internal/device"
	"surfcomm/internal/scerr"
)

// scheduleDigest FNV-hashes a recorded static schedule, path by path —
// the bit-identity fingerprint the perfect-device property test pins.
func scheduleDigest(entries []ScheduleEntry) uint64 {
	h := fnv.New64a()
	for _, e := range entries {
		fmt.Fprintf(h, "%d/%d/%d/%d/%d:", e.Op, e.Kind, e.Start, e.End, e.Factory)
		for _, n := range e.Path {
			fmt.Fprintf(h, "(%d,%d)", n.Row, n.Col)
		}
	}
	return h.Sum64()
}

// TestPerfectDeviceBitIdentical is the refactor's core guarantee: for
// every suite workload and a spread of policies, compiling on
// device.Perfect (and on a zero-defect random-yield device) produces
// FNV-identical schedules to the pre-device engine path.
func TestPerfectDeviceBitIdentical(t *testing.T) {
	for _, w := range apps.Fig6Suite() {
		for _, p := range []Policy{Policy0, Policy4, Policy6} {
			base, err := Simulate(w.Circuit, p, Config{Distance: 5, RecordSchedule: true})
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, p, err)
			}
			want := scheduleDigest(base.Schedule)
			for name, dev := range map[string]*device.Device{
				"perfect":    device.Perfect(),
				"zero-yield": device.RandomYield(0, 123),
			} {
				got, err := Simulate(w.Circuit, p, Config{Distance: 5, RecordSchedule: true, Device: dev})
				if err != nil {
					t.Fatalf("%s/%v on %s: %v", w.Name, p, name, err)
				}
				if d := scheduleDigest(got.Schedule); d != want {
					t.Errorf("%s/%v on %s: schedule digest %x != baseline %x", w.Name, p, name, d, want)
				}
				if got.ScheduleCycles != base.ScheduleCycles || got.Ratio != base.Ratio ||
					got.PhysicalQubits != base.PhysicalQubits {
					t.Errorf("%s/%v on %s: metrics diverge from baseline", w.Name, p, name)
				}
			}
		}
	}
}

// TestDefectiveDeviceSchedulesReplay compiles on random-yield devices
// and replay-validates the recorded schedules: every committed path
// must respect dependencies and never double-book (or cross a masked)
// resource on the defective floorplan.
func TestDefectiveDeviceSchedulesReplay(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	for seed := int64(1); seed <= 5; seed++ {
		dev := device.RandomYield(0.06, seed)
		r, err := Simulate(c, Policy6, Config{Distance: 5, RecordSchedule: true, Device: dev})
		if err != nil {
			if errors.Is(err, scerr.ErrUnroutable) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Arch.Topo == nil {
			t.Fatalf("seed %d: defective compile lost its topology", seed)
		}
		if err := Replay(c, r.Arch, r.Schedule); err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		// No committed path may touch a masked resource.
		for _, e := range r.Schedule {
			for i, n := range e.Path {
				if r.Arch.Topo.TileDead(n) {
					t.Fatalf("seed %d: op %d path enters dead junction %v", seed, e.Op, n)
				}
				if i > 0 && r.Arch.Topo.LinkDisabled(e.Path[i-1], n) {
					t.Fatalf("seed %d: op %d path crosses disabled link", seed, e.Op)
				}
			}
		}
	}
}

// TestWeightedLinksStretchPhases pins the weighted-timing rule: a
// uniform 2× link weight doubles (±1 toggle cycle) every braid phase,
// so the schedule is strictly longer than on the unweighted device.
func TestWeightedLinksStretchPhases(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	slow := device.Custom("slow-links", 1, func(topo *device.Topology, _ *rand.Rand) {
		for r := 0; r < topo.Rows(); r++ {
			for cc := 0; cc < topo.Cols(); cc++ {
				cur := device.Coord{Row: r, Col: cc}
				topo.SetLinkWeight(cur, device.Coord{Row: r, Col: cc + 1}, 2)
				topo.SetLinkWeight(cur, device.Coord{Row: r + 1, Col: cc}, 2)
			}
		}
	})
	base, err := Simulate(c, Policy6, Config{Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Simulate(c, Policy6, Config{Distance: 5, Device: slow})
	if err != nil {
		t.Fatal(err)
	}
	if weighted.ScheduleCycles <= base.ScheduleCycles {
		t.Fatalf("2x links did not stretch the schedule: %d <= %d",
			weighted.ScheduleCycles, base.ScheduleCycles)
	}
}

// TestDisconnectedDeviceUnroutable asserts a fabric with every channel
// disabled fails fast with ErrUnroutable — no hang, no panic.
func TestDisconnectedDeviceUnroutable(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	dev := device.Custom("no-links", 0, func(topo *device.Topology, _ *rand.Rand) {
		for r := 0; r < topo.Rows(); r++ {
			for cc := 0; cc < topo.Cols(); cc++ {
				cur := device.Coord{Row: r, Col: cc}
				topo.DisableLink(cur, device.Coord{Row: r, Col: cc + 1})
				topo.DisableLink(cur, device.Coord{Row: r + 1, Col: cc})
			}
		}
	})
	_, err := Simulate(c, Policy6, Config{Distance: 5, Device: dev})
	if !errors.Is(err, scerr.ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
}

// TestDeadFactoriesUnroutable kills every factory column: magic-state
// traffic must fail with ErrUnroutable (and succeed with LocalTOps).
func TestDeadFactoriesUnroutable(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	dev := device.Custom("dead-factories", 0, func(topo *device.Topology, _ *rand.Rand) {
		// Factory columns sit at physical columns pitch, 2*pitch+1, …;
		// kill every junction in those columns.
		for col := factoryColumnPitch; col < topo.Cols(); col += factoryColumnPitch + 1 {
			for r := 0; r < topo.Rows(); r++ {
				topo.DisableTile(device.Coord{Row: r, Col: col})
			}
		}
		// The rightmost physical column can also host clamped ports.
		for r := 0; r < topo.Rows(); r++ {
			topo.DisableTile(device.Coord{Row: r, Col: topo.Cols() - 2})
		}
	})
	_, err := Simulate(c, Policy6, Config{Distance: 5, Device: dev})
	if !errors.Is(err, scerr.ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
	if _, err := Simulate(c, Policy6, Config{Distance: 5, Device: dev, LocalTOps: true}); err != nil {
		t.Fatalf("LocalTOps ablation should not need factories: %v", err)
	}
}

// TestCliffordOnlyIgnoresDeadFactories asserts a circuit with no magic
// traffic compiles even when every factory port is dead — dead ports
// only matter for ops that need them.
func TestCliffordOnlyIgnoresDeadFactories(t *testing.T) {
	c := circuitNoT(t)
	dev := device.Custom("dead-factories", 0, func(topo *device.Topology, _ *rand.Rand) {
		for col := factoryColumnPitch; col < topo.Cols(); col += factoryColumnPitch + 1 {
			for r := 0; r < topo.Rows(); r++ {
				topo.DisableTile(device.Coord{Row: r, Col: col})
			}
		}
		for r := 0; r < topo.Rows(); r++ {
			topo.DisableTile(device.Coord{Row: r, Col: topo.Cols() - 2})
		}
	})
	r, err := Simulate(c, Policy6, Config{Distance: 5, Device: dev})
	if err != nil {
		t.Fatalf("Clifford-only circuit should not need factories: %v", err)
	}
	if r.ScheduleCycles <= 0 {
		t.Fatal("empty schedule")
	}
}

// circuitNoT builds a magic-free (Clifford-only) CNOT chain.
func circuitNoT(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := circuit.New("cnot-chain", 10)
	for q := 0; q+1 < 10; q++ {
		c.Append(circuit.CNOT, q, q+1)
	}
	return c
}

// TestYieldGrowthFindsRoom asserts the data grid grows until enough
// usable tiles exist: a heavy-but-connected defect map still compiles.
func TestYieldGrowthFindsRoom(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	// Kill the whole top row of any instance: the grid must grow.
	dev := device.Custom("top-row-dead", 0, func(topo *device.Topology, _ *rand.Rand) {
		for cc := 0; cc < topo.Cols(); cc++ {
			topo.DisableTile(device.Coord{Row: 0, Col: cc})
		}
	})
	r, err := Simulate(c, Policy6, Config{Distance: 5, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if r.ScheduleCycles <= 0 {
		t.Fatal("empty schedule")
	}
}
