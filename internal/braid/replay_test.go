package braid

import (
	"strings"
	"testing"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
)

func recordedRun(t *testing.T, c *circuit.Circuit, p Policy) Result {
	t.Helper()
	r, err := Simulate(c, p, Config{Distance: 5, Seed: 1, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule == nil || r.Arch == nil {
		t.Fatal("recording enabled but schedule/arch missing")
	}
	return r
}

func TestRecordedSchedulesReplayCleanly(t *testing.T) {
	workloads := []apps.Workload{
		{Name: "GSE", Circuit: apps.GSE(apps.GSEConfig{M: 5, Steps: 1})},
		{Name: "SQ", Circuit: apps.SQ(apps.SQConfig{N: 4, Iters: 1})},
		{Name: "IM", Circuit: apps.Ising(apps.IsingConfig{N: 16, Steps: 1}, true)},
	}
	for _, w := range workloads {
		for _, p := range []Policy{Policy0, Policy1, Policy6} {
			r := recordedRun(t, w.Circuit, p)
			if err := Replay(w.Circuit, r.Arch, r.Schedule); err != nil {
				t.Errorf("%s under %v: recorded schedule fails replay: %v", w.Name, p, err)
			}
		}
	}
}

func TestReplayDetectsMissingOp(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 4, Steps: 1})
	r := recordedRun(t, c, Policy1)
	truncated := r.Schedule[:len(r.Schedule)-1]
	if err := Replay(c, r.Arch, truncated); err == nil {
		t.Error("dropping an entry should fail replay")
	}
}

func TestReplayDetectsDependencyInversion(t *testing.T) {
	c := circuit.New("chain", 1)
	c.Append(circuit.H, 0)
	c.Append(circuit.H, 0)
	r := recordedRun(t, c, Policy1)
	// Move the second op before the first finishes.
	broken := append([]ScheduleEntry(nil), r.Schedule...)
	for i := range broken {
		if broken[i].Op == 1 {
			broken[i].Start = 0
			broken[i].End = 1
		}
	}
	err := Replay(c, r.Arch, broken)
	if err == nil {
		t.Fatal("dependency inversion should fail replay")
	}
	if !strings.Contains(err.Error(), "dependency") && !strings.Contains(err.Error(), "double-booked") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestReplayDetectsResourceConflict(t *testing.T) {
	// Two independent CNOTs; shift the second braid's open on top of
	// the first one's interval along an overlapping path.
	c := circuit.New("pair", 4)
	c.Append(circuit.CNOT, 0, 3)
	c.Append(circuit.CNOT, 1, 2)
	r := recordedRun(t, c, Policy1)
	broken := append([]ScheduleEntry(nil), r.Schedule...)
	// Force op 1's entries to occupy op 0's path at op 0's time.
	var path0 []ScheduleEntry
	for _, e := range broken {
		if e.Op == 0 && e.Kind != EntryLocal {
			path0 = append(path0, e)
		}
	}
	if len(path0) == 0 {
		t.Fatal("no braid entries for op 0")
	}
	for i := range broken {
		if broken[i].Op == 1 && broken[i].Kind == EntryOpen {
			broken[i].Start = path0[0].Start
			broken[i].End = path0[0].End
			broken[i].Path = path0[0].Path
		}
	}
	if err := Replay(c, r.Arch, broken); err == nil {
		t.Error("path double-booking should fail replay")
	}
}

func TestReplayDetectsMalformedEntries(t *testing.T) {
	c := circuit.New("one", 2)
	c.Append(circuit.CNOT, 0, 1)
	r := recordedRun(t, c, Policy1)

	bad := append([]ScheduleEntry(nil), r.Schedule...)
	bad[0].End = bad[0].Start
	if err := Replay(c, r.Arch, bad); err == nil {
		t.Error("empty interval should fail")
	}

	bad = append([]ScheduleEntry(nil), r.Schedule...)
	bad[0].Op = 99
	if err := Replay(c, r.Arch, bad); err == nil {
		t.Error("out-of-range op should fail")
	}
}

func TestNoRecordingByDefault(t *testing.T) {
	c := circuit.New("one", 2)
	c.Append(circuit.CNOT, 0, 1)
	r, err := Simulate(c, Policy1, Config{Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule != nil || r.Arch != nil {
		t.Error("schedule should not be recorded unless requested")
	}
}

func TestRecordedScheduleShape(t *testing.T) {
	c := circuit.New("mix", 3)
	c.Append(circuit.H, 0)
	c.Append(circuit.CNOT, 0, 1)
	c.Append(circuit.T, 2) // magic braid by default
	r := recordedRun(t, c, Policy1)
	counts := map[EntryKind]int{}
	for _, e := range r.Schedule {
		counts[e.Kind]++
	}
	if counts[EntryLocal] != 1 {
		t.Errorf("local entries = %d, want 1", counts[EntryLocal])
	}
	if counts[EntryOpen] != 2 || counts[EntryClose] != 2 {
		t.Errorf("braid entries = %d open, %d close; want 2 and 2",
			counts[EntryOpen], counts[EntryClose])
	}
	for _, e := range r.Schedule {
		if e.Kind != EntryLocal && len(e.Path) < 2 {
			t.Errorf("braid entry for op %d has trivial path", e.Op)
		}
	}
}
