package braid

import (
	"fmt"
	"sort"

	"surfcomm/internal/circuit"
	"surfcomm/internal/mesh"
	"surfcomm/internal/resource"
)

// The paper's braiding approach discovers a static schedule by dynamic
// simulation and replays it at execution time (§6.1: "we replay the
// dynamic schedule as a static one... failed schedules are not recorded
// and used"). This file implements the recorded-schedule artifact and
// an independent validator that checks what the quantum machine would
// need to hold: every op scheduled, dependencies respected, and no two
// claims overlapping on any tile, junction, or channel link.

// EntryKind labels a schedule entry.
type EntryKind uint8

const (
	// EntryLocal is a tile-local logical gate.
	EntryLocal EntryKind = iota
	// EntryOpen is a braid opening phase (path claimed Start..End).
	EntryOpen
	// EntryClose is a braid closing phase.
	EntryClose
)

// String returns the entry kind name.
func (k EntryKind) String() string {
	switch k {
	case EntryLocal:
		return "local"
	case EntryOpen:
		return "open"
	case EntryClose:
		return "close"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ScheduleEntry is one committed placement of the static schedule.
type ScheduleEntry struct {
	Op      int // gate index in the circuit
	Kind    EntryKind
	Start   int64
	End     int64     // exclusive
	Path    mesh.Path // braid phases only
	Factory int       // magic braids only, else -1
}

// Replay validates a recorded schedule against its circuit and
// architecture. It returns an error describing the first violation:
// a missing or duplicated op, a dependency inversion, or a double-booked
// physical resource.
func Replay(c *circuit.Circuit, arch *Arch, schedule []ScheduleEntry) error {
	dag, err := resource.Build(c)
	if err != nil {
		return err
	}

	// Collect per-op timing.
	type opTiming struct {
		startSet bool
		start    int64
		end      int64
		opens    int
		closes   int
		hasLocal bool
	}
	timing := make([]opTiming, len(c.Gates))
	for i, e := range schedule {
		if e.Op < 0 || e.Op >= len(c.Gates) {
			return fmt.Errorf("braid: entry %d references op %d outside circuit", i, e.Op)
		}
		if e.End <= e.Start {
			return fmt.Errorf("braid: entry %d (%v op %d) has empty interval [%d,%d)", i, e.Kind, e.Op, e.Start, e.End)
		}
		t := &timing[e.Op]
		switch e.Kind {
		case EntryLocal:
			t.hasLocal = true
			t.start, t.startSet = e.Start, true
			t.end = e.End
		case EntryOpen:
			t.opens++
			t.start, t.startSet = e.Start, true
			if err := e.Path.Validate(); err != nil {
				return fmt.Errorf("braid: entry %d: %w", i, err)
			}
		case EntryClose:
			t.closes++
			if e.End > t.end {
				t.end = e.End
			}
			if err := e.Path.Validate(); err != nil {
				return fmt.Errorf("braid: entry %d: %w", i, err)
			}
		}
	}

	// Every non-barrier op appears exactly once with the right shape.
	for i, g := range c.Gates {
		t := timing[i]
		switch {
		case g.Op == circuit.Barrier:
			if t.startSet || t.hasLocal || t.opens > 0 {
				return fmt.Errorf("braid: barrier %d has schedule entries", i)
			}
		case g.Op.IsTwoQubit() || (g.Op.IsT() && t.opens > 0):
			if t.opens != 1 || t.closes != 1 {
				return fmt.Errorf("braid: op %d (%v) has %d opens, %d closes; want 1 and 1",
					i, g.Op, t.opens, t.closes)
			}
		default:
			if !t.hasLocal {
				return fmt.Errorf("braid: op %d (%v) missing from schedule", i, g.Op)
			}
		}
	}

	// Dependencies: an op starts no earlier than every predecessor
	// finishes (barriers are transparent: their effective end is the
	// max end of their own predecessors).
	effectiveEnd := make([]int64, len(c.Gates))
	for i, g := range c.Gates { // program order is topological
		if g.Op == circuit.Barrier {
			var e int64
			for _, p := range dag.Preds[i] {
				if effectiveEnd[p] > e {
					e = effectiveEnd[p]
				}
			}
			effectiveEnd[i] = e
			continue
		}
		for _, p := range dag.Preds[i] {
			if timing[i].start < effectiveEnd[p] {
				return fmt.Errorf("braid: op %d starts at %d before dependency %d finishes at %d",
					i, timing[i].start, p, effectiveEnd[p])
			}
		}
		effectiveEnd[i] = timing[i].end
	}

	// Resource exclusivity: junctions and links from braid paths, data
	// tiles for local gates and braid endpoints (held open→close), and
	// factory ports.
	type claim struct {
		start, end int64
		op         int
	}
	claims := map[string][]claim{}
	add := func(key string, start, end int64, op int) {
		claims[key] = append(claims[key], claim{start, end, op})
	}
	for _, e := range schedule {
		switch e.Kind {
		case EntryLocal:
			q := c.Gates[e.Op].Qubits[0]
			add(fmt.Sprintf("tile:%v", arch.QubitTile[q]), e.Start, e.End, e.Op)
		case EntryOpen, EntryClose:
			for _, n := range e.Path {
				add(fmt.Sprintf("junction:%v", n), e.Start, e.End, e.Op)
			}
			for _, l := range e.Path.Links() {
				add(fmt.Sprintf("link:%v", l), e.Start, e.End, e.Op)
			}
		}
	}
	// Tile holds across the whole braid op (open start to close end) —
	// same namespace as local-gate claims, so a local op on a tile
	// engaged in a braid is flagged.
	for i := range c.Gates {
		g := c.Gates[i]
		t := timing[i]
		if t.opens == 0 {
			continue
		}
		add(fmt.Sprintf("tile:%v", arch.QubitTile[g.Qubits[0]]), t.start, t.end, i)
		if g.Op.IsTwoQubit() {
			add(fmt.Sprintf("tile:%v", arch.QubitTile[g.Qubits[1]]), t.start, t.end, i)
		}
	}
	for key, cs := range claims {
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].start != cs[b].start {
				return cs[a].start < cs[b].start
			}
			return cs[a].end < cs[b].end
		})
		for i := 1; i < len(cs); i++ {
			if cs[i].start < cs[i-1].end && cs[i].op != cs[i-1].op {
				return fmt.Errorf("braid: %s double-booked: op %d [%d,%d) overlaps op %d [%d,%d)",
					key, cs[i-1].op, cs[i-1].start, cs[i-1].end, cs[i].op, cs[i].start, cs[i].end)
			}
		}
	}
	return nil
}
