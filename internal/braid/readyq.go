package braid

import "slices"

// readyQueue keeps the ready event set in policy order. It replaces the
// old sorted slice — which paid an O(n) memmove on every insertion and
// a full sort.SliceStable whenever the Policy-6 comparator changed —
// with batched merging: insertions stage into a pending buffer that is
// sorted and merged into the ordered slice in one pass at the next
// flush, and the whole queue is re-sorted only when the comparator
// itself moves (maxHeight changes).
//
// The policy order is total on live events: at most one event per op is
// ready at a time, and every comparator falls through to the unique
// (opIndex, phase) tie-break. Batched merging therefore reproduces
// exactly the order that sequential sorted insertion produced, and no
// stable sort is needed.
type readyQueue struct {
	events  []event // in policy order between flushes
	pending []event // staged since the last flush
	spare   []event // merge scratch, swapped with events to avoid allocs
}

// Len counts all live events, staged or merged.
func (q *readyQueue) Len() int { return len(q.events) + len(q.pending) }

// push stages an event for insertion at the next flush.
func (q *readyQueue) push(ev event) { q.pending = append(q.pending, ev) }

// flush brings events back into policy order: re-sorts the merged slice
// when the comparator changed (resort), then merges the staged events
// in a single pass. The comparator takes events by value — taking their
// addresses would force every comparison's operands to escape to the
// heap, which is exactly the per-round allocation churn this queue
// exists to remove.
func (q *readyQueue) flush(resort bool, less func(a, b event) bool) {
	cmp := func(a, b event) int {
		if less(a, b) {
			return -1
		}
		return 1
	}
	if resort && len(q.events) > 1 {
		slices.SortFunc(q.events, cmp)
	}
	if len(q.pending) == 0 {
		return
	}
	slices.SortFunc(q.pending, cmp)
	merged := q.spare[:0]
	i, j := 0, 0
	for i < len(q.events) && j < len(q.pending) {
		if less(q.pending[j], q.events[i]) {
			merged = append(merged, q.pending[j])
			j++
		} else {
			merged = append(merged, q.events[i])
			i++
		}
	}
	merged = append(merged, q.events[i:]...)
	merged = append(merged, q.pending[j:]...)
	q.spare = q.events[:0]
	q.events = merged
	q.pending = q.pending[:0]
}
