package braid

import "testing"

func TestPolicyFlags(t *testing.T) {
	if Policy0.Interleave() {
		t.Error("Policy 0 must not interleave")
	}
	for _, p := range AllPolicies[1:] {
		if !p.Interleave() {
			t.Errorf("%v should interleave", p)
		}
	}
	if Policy1.OptimizedLayout() {
		t.Error("Policy 1 uses the naive layout")
	}
	for _, p := range AllPolicies[2:] {
		if !p.OptimizedLayout() {
			t.Errorf("%v should use the optimized layout", p)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Policy3.String() != "Policy 3" {
		t.Errorf("String = %q", Policy3.String())
	}
	if Policy(9).String() != "Policy(9)" {
		t.Errorf("String = %q", Policy(9).String())
	}
}

func TestPolicy5TypeOrdering(t *testing.T) {
	closing := event{opIndex: 5, closing: true, phase: 1}
	opening := event{opIndex: 1, closing: false}
	if !Policy5.eventPriority(closing, opening, 0) {
		t.Error("Policy 5: closing braids outrank opening braids")
	}
	if Policy5.eventPriority(opening, closing, 0) {
		t.Error("Policy 5: ordering must be antisymmetric here")
	}
	// Without type ordering, program order wins.
	if Policy1.eventPriority(closing, opening, 0) {
		t.Error("Policy 1: lower op index should go first")
	}
}

func TestPolicy3CriticalityOrdering(t *testing.T) {
	hi := event{opIndex: 9, height: 40}
	lo := event{opIndex: 1, height: 3}
	if !Policy3.eventPriority(hi, lo, 40) {
		t.Error("Policy 3: higher criticality first")
	}
	// Policy 4 ignores criticality; falls to program order.
	if Policy4.eventPriority(hi, lo, 40) {
		t.Error("Policy 4: should ignore criticality and use program order")
	}
}

func TestPolicy4LengthOrdering(t *testing.T) {
	long := event{opIndex: 9, length: 12}
	short := event{opIndex: 1, length: 2}
	if !Policy4.eventPriority(long, short, 0) {
		t.Error("Policy 4: longest braid first")
	}
}

func TestPolicy6CombinedOrdering(t *testing.T) {
	maxH := 50
	// Closing beats everything.
	closing := event{opIndex: 9, closing: true, height: 1}
	criticalOpen := event{opIndex: 1, height: maxH}
	if !Policy6.eventPriority(closing, criticalOpen, maxH) {
		t.Error("Policy 6: closing first")
	}
	// Among top-criticality events, shortest first.
	shortTop := event{opIndex: 9, height: maxH, length: 2}
	longTop := event{opIndex: 1, height: maxH, length: 9}
	if !Policy6.eventPriority(shortTop, longTop, maxH) {
		t.Error("Policy 6: shortest-first within the top criticality class")
	}
	// Below the top class, longest first.
	shortLow := event{opIndex: 1, height: 10, length: 2}
	longLow := event{opIndex: 9, height: 10, length: 9}
	if !Policy6.eventPriority(longLow, shortLow, maxH) {
		t.Error("Policy 6: longest-first below the top criticality class")
	}
	// Criticality still separates classes.
	if !Policy6.eventPriority(criticalOpen, shortLow, maxH) {
		t.Error("Policy 6: higher criticality class first")
	}
}

func TestReinjectionDemotes(t *testing.T) {
	fresh := event{opIndex: 9, generation: 0}
	dropped := event{opIndex: 1, generation: 2}
	if !Policy1.eventPriority(fresh, dropped, 0) {
		t.Error("re-injected events yield to fresh ones")
	}
}

func TestEventPriorityDeterministicTieBreak(t *testing.T) {
	a := event{opIndex: 3, phase: 0}
	b := event{opIndex: 3, phase: 1}
	for _, p := range AllPolicies[1:] {
		if !p.eventPriority(a, b, 0) || p.eventPriority(b, a, 0) {
			t.Errorf("%v: phase tiebreak broken", p)
		}
	}
}
