package braid

import "fmt"

// Policy selects the braid prioritization heuristic (paper §6.3).
type Policy int

const (
	// Policy0 issues operations and events strictly in program order
	// (head-of-line blocking; no interleaving).
	Policy0 Policy = iota
	// Policy1 adds event interleaving: any ready event may be placed,
	// braids progress concurrently at different rates.
	Policy1
	// Policy2 adds the interaction-aware qubit layout of §6.2.
	Policy2
	// Policy3 adds criticality-first ordering (most dependent work first).
	Policy3
	// Policy4 adds length ordering (longest braids first).
	Policy4
	// Policy5 adds type ordering (closing braids before opening braids).
	Policy5
	// Policy6 combines all metrics: closing first, then criticality;
	// shortest-first within the top criticality class, longest-first
	// below it.
	Policy6
)

// AllPolicies lists the policies in evaluation order (the Figure 6
// x-axis).
var AllPolicies = []Policy{Policy0, Policy1, Policy2, Policy3, Policy4, Policy5, Policy6}

// String returns the paper's name for the policy.
func (p Policy) String() string {
	if p < Policy0 || p > Policy6 {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return fmt.Sprintf("Policy %d", int(p))
}

// Interleave reports whether the policy allows out-of-order event
// placement (everything above Policy 0).
func (p Policy) Interleave() bool { return p >= Policy1 }

// OptimizedLayout reports whether the policy uses the interaction-aware
// qubit arrangement (Policy 2 and above).
func (p Policy) OptimizedLayout() bool { return p >= Policy2 }

// byCriticality reports whether ready events sort by criticality.
func (p Policy) byCriticality() bool { return p == Policy3 || p == Policy6 }

// byLength reports whether ready events sort by braid length.
func (p Policy) byLength() bool { return p == Policy4 || p == Policy6 }

// byType reports whether closing braids outrank opening braids.
func (p Policy) byType() bool { return p == Policy5 || p == Policy6 }

// eventPriority orders two ready events under the policy; it reports
// whether a should be attempted before b. maxHeight is the largest
// criticality among currently ready events (Policy 6 treats the top
// criticality class specially). Events come by value so sort loops
// never force their operands onto the heap.
func (p Policy) eventPriority(a, b event, maxHeight int) bool {
	if p.byType() && a.closing != b.closing {
		return a.closing
	}
	if p.byCriticality() && a.height != b.height {
		return a.height > b.height
	}
	if p.byLength() {
		if p == Policy6 {
			// Most critical braids: run the short ones first to retire
			// as many as possible; below the top class, start the
			// toughest (longest) braids early.
			aTop := a.height == maxHeight
			bTop := b.height == maxHeight
			if aTop && bTop {
				if a.length != b.length {
					return a.length < b.length
				}
			} else if a.length != b.length {
				return a.length > b.length
			}
		} else if a.length != b.length {
			return a.length > b.length
		}
	}
	if a.generation != b.generation {
		// Dropped-and-reinjected events yield to fresh ones.
		return a.generation < b.generation
	}
	if a.opIndex != b.opIndex {
		return a.opIndex < b.opIndex
	}
	return a.phase < b.phase
}
