package braid

import (
	"math/rand"
	"sort"
	"testing"

	"surfcomm/internal/circuit"
)

// The ready queue batches insertions and merges them at flush; this
// must reproduce exactly the order a naive fully-sorted slice maintains
// under the same comparator, for every policy.
func TestReadyQueueMatchesReferenceOrder(t *testing.T) {
	for _, p := range AllPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(p) + 99))
			e := &engine{policy: p}
			var reference []event
			nextOp := 0
			for round := 0; round < 60; round++ {
				// Stage a burst of events with random priorities.
				for burst := rng.Intn(4); burst >= 0; burst-- {
					ev := event{
						opIndex:    nextOp,
						phase:      rng.Intn(2),
						closing:    rng.Intn(2) == 0,
						height:     rng.Intn(6),
						length:     rng.Intn(9),
						generation: rng.Intn(2),
						readySince: int64(rng.Intn(50)),
					}
					nextOp++
					e.insertEvent(ev)
					reference = append(reference, ev)
				}
				e.flushReady()
				// The reference: full sort under the engine comparator
				// with the same maxHeight.
				sort.SliceStable(reference, func(i, j int) bool {
					return e.less(reference[i], reference[j])
				})
				if len(e.ready.events) != len(reference) {
					t.Fatalf("round %d: queue has %d events, want %d",
						round, len(e.ready.events), len(reference))
				}
				for i := range reference {
					if e.ready.events[i] != reference[i] {
						t.Fatalf("round %d slot %d: queue %+v, reference %+v",
							round, i, e.ready.events[i], reference[i])
					}
				}
				// Occasionally retire events from the front, as placement
				// does, and keep the reference in lockstep.
				if n := rng.Intn(len(reference) + 1); n > 0 {
					e.ready.events = append(e.ready.events[:0], e.ready.events[n:]...)
					reference = append(reference[:0], reference[n:]...)
					e.refreshMax()
					e.needResort = true
				}
			}
		})
	}
}

// Whole-simulation regression: the batched queue and pooled paths must
// leave every observable metric of a reference workload bit-identical
// across repeated runs (the engine is a deterministic discrete-event
// simulator; any scratch-reuse bug shows up as run-to-run drift).
func TestEngineScratchReuseDeterminism(t *testing.T) {
	c := circuitWithMixedTraffic()
	type fingerprint struct {
		cycles, critical, braids, adaptive, reinject int64
		util                                         float64
	}
	for _, p := range AllPolicies {
		var first fingerprint
		for run := 0; run < 3; run++ {
			r, err := Simulate(c, p, Config{Distance: 5, Seed: 2})
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			fp := fingerprint{r.ScheduleCycles, r.CriticalPathCycles, r.BraidsPlaced,
				r.AdaptiveRoutes, r.Reinjections, r.AvgUtilization}
			if run == 0 {
				first = fp
			} else if fp != first {
				t.Fatalf("%v: run %d diverged: %+v vs %+v", p, run, fp, first)
			}
		}
	}
}

func circuitWithMixedTraffic() *circuit.Circuit {
	c := circuit.New("mixed", 12)
	for i := 0; i < 12; i++ {
		c.Append(circuit.T, i)
	}
	for i := 0; i < 11; i++ {
		c.Append(circuit.CNOT, i, i+1)
	}
	for i := 0; i < 12; i += 3 {
		c.Append(circuit.H, i)
	}
	return c
}
