package braid

import (
	"context"
	"fmt"
	"math"
	"slices"

	"surfcomm/internal/circuit"
	"surfcomm/internal/device"
	"surfcomm/internal/layout"
	"surfcomm/internal/mesh"
	"surfcomm/internal/partition"
	"surfcomm/internal/resource"
	"surfcomm/internal/scerr"
	"surfcomm/internal/surface"
)

// Config tunes a braid simulation. Zero values select defaults.
type Config struct {
	// Distance is the code distance d: braids stabilize for d cycles,
	// local logical gates take d syndrome cycles. Zero selects 9.
	Distance int
	// Seed drives the layout optimizer.
	Seed int64
	// AdaptTimeout is how long (cycles) an event must be blocked before
	// the router escalates from dimension-ordered to adaptive routes.
	// Zero selects one braid lifetime, 2(d+1).
	AdaptTimeout int64
	// DropTimeout is how long an event may be blocked before it is
	// dropped and re-injected (demoted behind fresh events). Zero
	// selects 8(d+1).
	DropTimeout int64
	// LocalTOps is the ablation knob: when true, T gates execute
	// locally (magic states assumed pre-delivered) instead of braiding
	// a state in from a factory port. The paper's model — and the
	// default — is that every T operation's ancilla is produced in a
	// factory and consumed at the data (§4.3), which is a major source
	// of braid traffic.
	LocalTOps bool
	// FactoryRefill is the recovery time of a factory port after
	// supplying a state (cycles): the port's share of distillation
	// pipeline throughput. Zero selects d (factories continuously
	// prepare states, paper §4.3).
	FactoryRefill int64
	// MaxAttemptsPerRound bounds failed placement attempts per
	// scheduling round (greedy placement stops after this many misses;
	// a full scan is forced whenever the network is idle). Zero
	// selects 48.
	MaxAttemptsPerRound int
	// Device is the physical topology the machine is realized on: dead
	// tiles are never placed or routed through, disabled links are
	// excluded from routing, and link latency multipliers stretch braid
	// stabilization. Nil (or device.Perfect()) selects the ideal uniform
	// grid and keeps every path bit-identical to the pre-device engine.
	Device *device.Device
	// Surgery switches the engine to lattice-surgery timing (paper
	// §8.2): a communicating op becomes a chain of patch merges and
	// splits along its route, each hop stabilizing for d cycles, so
	// phase latency grows with route length instead of being the
	// distance-independent 1-cycle claim of a braid. Contention rules
	// are identical — a merge chain claims its whole route — which is
	// exactly the paper's point: surgery has neither braiding's fast
	// movement nor teleportation's prefetchability.
	Surgery bool
	// Defects is an optional schedule of mid-execution coupler deaths:
	// at each event's cycle the link is masked out of the mesh and any
	// in-flight braid holding it is torn down and re-routed around the
	// new mask (via the same dimension-ordered → adaptive BFS
	// escalation). The simulation fails with an error matching
	// scerr.ErrUnroutable only when the surviving fabric genuinely
	// cannot carry the remaining traffic.
	Defects *device.DefectSchedule
	// Placement overrides the policy-selected qubit arrangement.
	Placement *layout.Placement
	// RecordSchedule captures the discovered static schedule in
	// Result.Schedule so it can be independently validated (Replay) or
	// exported for execution — the paper's "replay the dynamic schedule
	// as a static one".
	RecordSchedule bool
}

func (c Config) withDefaults() Config {
	if c.Distance == 0 {
		c.Distance = 9
	}
	if c.AdaptTimeout == 0 {
		c.AdaptTimeout = int64(2 * (c.Distance + 1))
	}
	if c.DropTimeout == 0 {
		c.DropTimeout = int64(8 * (c.Distance + 1))
	}
	if c.FactoryRefill == 0 {
		c.FactoryRefill = int64(c.Distance)
	}
	if c.MaxAttemptsPerRound == 0 {
		c.MaxAttemptsPerRound = 48
	}
	return c
}

// Result reports one braid simulation (one bar plus one utilization
// point of Figure 6).
type Result struct {
	Policy             Policy
	Distance           int
	ScheduleCycles     int64
	CriticalPathCycles int64
	// Ratio is ScheduleCycles / CriticalPathCycles — the blue bars of
	// Figure 6 (1.0 is a perfect contention-free schedule).
	Ratio float64
	// AvgUtilization is the time-averaged fraction of busy mesh links —
	// the red curve of Figure 6.
	AvgUtilization float64
	Ops            int
	BraidsPlaced   int64
	AdaptiveRoutes int64
	Reinjections   int64
	// Reroutes counts in-flight braids torn down and re-placed around a
	// mid-execution coupler death (Config.Defects).
	Reroutes       int64
	Tiles          int
	PhysicalQubits int
	// Schedule is the recorded static schedule (nil unless
	// Config.RecordSchedule is set).
	Schedule []ScheduleEntry
	// Arch is the floorplan the schedule was discovered on (set only
	// when the schedule is recorded; needed to replay it).
	Arch *Arch
}

type opKind uint8

const (
	opBarrier opKind = iota
	opLocal
	opBraid
	opMagic
)

type op struct {
	kind    opKind
	qubits  []int
	latency int64 // local latency; braids use phase latency
	remDeps int
	phase   int // 0 pending-open, 1 opening, 2 pending-close, 3 closing, 4 done
	path    mesh.Path
	factory int
	// gen invalidates in-flight completions: a defect-event teardown
	// bumps it, so the torn-down phase's completion is skipped when it
	// pops instead of being excised from the heap.
	gen int
}

// event is a pending placement attempt: the opening or closing phase of
// a braid, or a local gate waiting for its tile.
type event struct {
	opIndex    int
	phase      int // 0 = opening / local, 1 = closing
	closing    bool
	height     int
	length     int
	readySince int64
	generation int
}

type compKind uint8

const (
	compLocal compKind = iota
	compOpenDone
	compCloseDone
	compWake // factory refill timer: wakes the scheduler, no payload
)

type completion struct {
	time int64
	op   int
	kind compKind
	gen  int   // op generation at push; stale pops are skipped
	seq  int64 // insertion order: deterministic pop order at equal times
}

// completionHeap is a min-heap on (time, seq). It is managed by inline
// sift methods rather than container/heap so pushes and pops move
// completion values directly — no interface boxing, no allocation.
type completionHeap []completion

func (h completionHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *completionHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *completionHeap) pop() completion {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && s.less(r, j) {
			j = r
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	return top
}

type engine struct {
	cfg    Config
	policy Policy
	arch   *Arch
	net    *mesh.Mesh
	dag    *resource.DAG
	ops    []op

	// Cooperative cancellation: ctx's done channel is latched once at
	// engine construction; the run loop polls it with a non-blocking
	// select per scheduling round — no allocation, and nil (background
	// context) skips the check entirely.
	ctx  context.Context
	done <-chan struct{}

	ready      readyQueue // ready events in policy priority order
	needResort bool       // comparator changed; reorder at next flush
	maxHeight  int        // max height among ready (Policy 6 length rule)
	atMax      int        // ready events at maxHeight

	heap      completionHeap
	seq       int64
	now       int64
	doneCount int

	tileBusy      []bool
	factoryBusy   []bool
	factoryFreeAt []int64

	// Reusable hot-path scratch: braid path buffers cycle through a
	// free list (claimed at route time, returned at release), and the
	// per-round worklist and factory candidate slices keep their
	// capacity across rounds.
	pathPool     []mesh.Path
	worklist     []int
	factoryCands []factoryCand

	busyIntegral   int64
	lastT          int64
	braidsPlaced   int64
	adaptiveRoutes int64
	reinjections   int64
	reroutes       int64

	// Live-defect schedule: events sorted by cycle, consumed in order as
	// simulated time passes them.
	defects   []device.DefectEvent
	defectIdx int

	record   bool
	schedule []ScheduleEntry
}

// removeEntry deletes the most recent recorded entry for (op, kind) —
// the aborted phase of a defect-event teardown. Failed placements are
// not part of the static schedule (§6.1: "failed schedules are not
// recorded"); the re-route records a fresh entry when it commits.
func (e *engine) removeEntry(opIndex int, kind EntryKind) {
	if !e.record {
		return
	}
	for i := len(e.schedule) - 1; i >= 0; i-- {
		if e.schedule[i].Op == opIndex && e.schedule[i].Kind == kind {
			e.schedule = append(e.schedule[:i], e.schedule[i+1:]...)
			return
		}
	}
}

// recordEntry appends to the static schedule when recording is on.
func (e *engine) recordEntry(entry ScheduleEntry) {
	if e.record {
		e.schedule = append(e.schedule, entry)
	}
}

// InteractionGraph converts a circuit's two-qubit interaction profile
// into a partition graph for the layout optimizer.
func InteractionGraph(c *circuit.Circuit) *partition.Graph {
	g := partition.NewGraph(c.NumQubits)
	for _, gt := range c.Gates {
		if gt.Op.IsTwoQubit() {
			// Gate operands are validated distinct; error impossible.
			_ = g.AddEdge(gt.Qubits[0], gt.Qubits[1], 1)
		}
	}
	return g
}

// Simulate discovers a static braid schedule for the circuit under the
// given policy and configuration, returning Figure 6 metrics.
func Simulate(c *circuit.Circuit, p Policy, cfg Config) (Result, error) {
	return SimulateContext(context.Background(), c, p, cfg)
}

// SimulateContext is Simulate with cooperative cancellation: the
// scheduling loop polls ctx once per round and aborts with an error
// matching scerr.ErrCanceled. The poll is a non-blocking select against
// a pre-latched channel, so the hot path stays allocation-free.
func SimulateContext(ctx context.Context, c *circuit.Circuit, p Policy, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if p < Policy0 || p > Policy6 {
		return Result{}, scerr.BadConfig("braid: unknown policy %d", int(p))
	}
	dag, err := resource.Build(c)
	if err != nil {
		return Result{}, err
	}
	topo, view, err := realizeDevice(cfg.Device, c.NumQubits, cfg.Placement)
	if err != nil {
		return Result{}, err
	}
	place := cfg.Placement
	if place == nil {
		if p.OptimizedLayout() {
			place, err = layout.OptimizedOn(InteractionGraph(c), cfg.Seed, view)
		} else {
			place, err = layout.RowMajorOn(c.NumQubits, view)
		}
		if err != nil {
			return Result{}, err
		}
	} else if view != nil {
		// A malformed placement (collision, out of bounds) is a caller
		// bug, not a device property; dead-tile refusals are NewArchOn's
		// job and classify as unroutable there.
		if err := place.Validate(); err != nil {
			return Result{}, fmt.Errorf("braid: %w", err)
		}
	}
	arch, err := NewArchOn(place, topo)
	if err != nil {
		return Result{}, err
	}
	e := &engine{
		cfg:     cfg,
		policy:  p,
		arch:    arch,
		net:     arch.NewMesh(),
		dag:     dag,
		record:  cfg.RecordSchedule,
		defects: cfg.Defects.Sorted(),
		ctx:     ctx,
		done:    ctx.Done(),
	}
	if err := e.buildOps(c); err != nil {
		return Result{}, err
	}
	if err := e.checkRoutable(); err != nil {
		return Result{}, err
	}
	if err := e.run(); err != nil {
		return Result{}, err
	}
	_, critical := dag.ASAPWeighted(e.latencyWeight)
	res := Result{
		Policy:             p,
		Distance:           cfg.Distance,
		ScheduleCycles:     e.now,
		CriticalPathCycles: critical,
		Ops:                c.Ops(),
		BraidsPlaced:       e.braidsPlaced,
		AdaptiveRoutes:     e.adaptiveRoutes,
		Reinjections:       e.reinjections,
		Reroutes:           e.reroutes,
		Tiles:              arch.TotalTiles(),
		PhysicalQubits:     arch.PhysicalQubits(cfg.Distance),
	}
	if critical > 0 {
		res.Ratio = float64(e.now) / float64(critical)
	}
	if e.now > 0 && e.net.TotalLinks() > 0 {
		res.AvgUtilization = float64(e.busyIntegral) / float64(e.now*int64(e.net.TotalLinks()))
	}
	if cfg.Surgery {
		// Surgery keeps the planar code's cheap patches (plus a merge
		// corridor between adjacent tiles) instead of double-defect
		// tiles and braid channels.
		res.PhysicalQubits = arch.TotalTiles() * surface.PlanarTileQubits(cfg.Distance) * 3 / 2
	}
	if cfg.RecordSchedule {
		res.Schedule = e.schedule
		res.Arch = arch
	}
	return res, nil
}

// realizeDevice instantiates the device at the junction grid the
// circuit's floorplan implies and builds the placement view of its
// usable data tiles. The data grid grows beyond the ideal near-square
// fit until enough tiles survive the defect map; a yield too low to
// ever fit the circuit fails with an error matching scerr.ErrUnroutable.
// Perfect (and nil) devices return (nil, nil): every caller stays on
// the original ideal-grid path.
func realizeDevice(dev *device.Device, qubits int, fixed *layout.Placement) (*device.Topology, *device.View, error) {
	if dev.IsPerfect() {
		return nil, nil, nil
	}
	rows, cols := layout.GridFor(qubits)
	if fixed != nil {
		// A caller-fixed placement pins the grid; no growth.
		rows, cols = fixed.Rows, fixed.Cols
	}
	for {
		topo := dev.Instance(rows+1, archCols(cols)+1)
		// A data tile is usable iff its attachment junction survives.
		// The View's all-pairs distance table is lazy, so building one
		// per growth iteration costs only the aliveness scan.
		view := device.NewView(rows, cols, func(c device.Coord) bool {
			return !topo.TileDead(device.Coord{Row: c.Row, Col: physicalCol(c.Col)})
		})
		if topo.Calibrated() {
			// Expose per-tile calibrated error rates so the placement
			// optimizer steers qubits toward low-error regions.
			view.SetErrorRates(func(c device.Coord) float64 {
				return topo.TileErrorRate(device.Coord{Row: c.Row, Col: physicalCol(c.Col)})
			})
		}
		if view.AliveCount() >= qubits || fixed != nil {
			if !topo.Degraded() {
				return nil, nil, nil
			}
			return topo, view, nil
		}
		if rows*cols > 4*qubits+64 {
			return nil, nil, scerr.Unroutable(
				"braid: device yield too low: %d usable tiles on a %dx%d grid for %d qubits",
				view.AliveCount(), rows, cols, qubits)
		}
		if cols <= rows {
			cols++
		} else {
			rows++
		}
	}
}

// checkRoutable fails fast — with an error matching scerr.ErrUnroutable
// — when any op's communication is impossible on the masked mesh even
// when idle: braid endpoints in different connected components of the
// defective fabric, or a magic destination cut off from every factory
// port. On a perfect device it is a no-op.
func (e *engine) checkRoutable() error {
	if e.arch.Topo == nil {
		return nil
	}
	comps := e.arch.Topo.Components()
	jcols := e.arch.TileCols + 1
	compOf := func(n mesh.Node) int32 { return comps[n.Row*jcols+n.Col] }
	factoryComp := make(map[int32]bool, len(e.arch.FactoryTiles))
	for f := range e.arch.FactoryTiles {
		factoryComp[compOf(e.arch.FactoryJunction(f))] = true
	}
	for i := range e.ops {
		o := &e.ops[i]
		switch o.kind {
		case opBraid:
			ca, cb := compOf(e.arch.QubitJunction(o.qubits[0])), compOf(e.arch.QubitJunction(o.qubits[1]))
			if ca < 0 || ca != cb {
				return scerr.Unroutable("braid: op %d qubits %d and %d are disconnected on the device",
					i, o.qubits[0], o.qubits[1])
			}
		case opMagic:
			if len(e.arch.FactoryTiles) == 0 {
				return scerr.Unroutable("braid: every factory port is dead on the device")
			}
			if cd := compOf(e.arch.QubitJunction(o.qubits[0])); cd < 0 || !factoryComp[cd] {
				return scerr.Unroutable("braid: op %d qubit %d cannot reach any factory port on the device",
					i, o.qubits[0])
			}
		}
	}
	return nil
}

func (e *engine) buildOps(c *circuit.Circuit) error {
	d := int64(e.cfg.Distance)
	e.ops = make([]op, len(c.Gates))
	for i, g := range c.Gates {
		o := &e.ops[i]
		o.qubits = g.Qubits
		o.remDeps = len(e.dag.Preds[i])
		o.factory = -1
		switch {
		case g.Op == circuit.Barrier:
			o.kind = opBarrier
		case g.Op.IsTwoQubit():
			o.kind = opBraid
		case g.Op.IsT() && !e.cfg.LocalTOps:
			o.kind = opMagic
		default:
			// Local logical operations are cheap on the surface code:
			// Paulis are frame updates, H/S/measure/prep are transversal
			// or single-round operations, and T (with a delivered magic
			// state) is one interaction. The d-cycle stabilization burden
			// rides on braids, not on tile-local gates — this asymmetry
			// ("an entire braid in 1 cycle, but stable for d") is what
			// creates the contention scaling of §6.
			o.kind = opLocal
			o.latency = 1
		}
		_ = d
	}
	e.tileBusy = make([]bool, e.arch.TileRows*e.arch.TileCols)
	e.factoryBusy = make([]bool, len(e.arch.FactoryTiles))
	e.factoryFreeAt = make([]int64, len(e.arch.FactoryTiles))
	// Pre-size the completion heap and ready queue for the in-flight
	// population so the steady state never regrows them.
	e.heap = make(completionHeap, 0, 16+len(c.Gates)/4)
	e.ready.events = make([]event, 0, 16+len(c.Gates)/8)
	e.ready.spare = make([]event, 0, 16+len(c.Gates)/8)
	if !e.cfg.LocalTOps && len(e.arch.FactoryTiles) == 0 && e.arch.Topo == nil {
		// On a degraded device dead factory ports only matter when the
		// circuit actually braids magic states in — checkRoutable
		// reports those per op with ErrUnroutable.
		return fmt.Errorf("braid: magic traffic enabled but no factories provisioned")
	}
	return nil
}

// latencyWeight is the contention-free latency of gate i — the cost
// model shared by the engine and the critical-path baseline.
func (e *engine) latencyWeight(i int) int64 {
	o := &e.ops[i]
	switch o.kind {
	case opBarrier:
		return 0
	case opLocal:
		return o.latency
	default: // braid/magic/merge-chain: open phase + close phase
		return 2 * e.phaseLatencyHops(e.opLength(i))
	}
}

// phaseLatencyHops is one communication phase for a route of the given
// hop count. Braids: the 1-cycle claim (the braid extends its full
// length in a single cycle regardless of distance) plus d stabilization
// cycles (paper Fig. 5) — length-independent. Lattice surgery: one
// d-cycle merge (or split) per hop plus the toggle cycle — latency
// grows with route length.
func (e *engine) phaseLatencyHops(hops int) int64 {
	if e.cfg.Surgery {
		if hops < 1 {
			hops = 1
		}
		return int64(hops)*int64(e.cfg.Distance) + 1
	}
	return int64(e.cfg.Distance) + 1
}

// phaseLatency is the phase latency of a routed path. On a weighted
// device the slowest link along the route stretches the whole phase —
// the stabilization rounds are paced by the worst channel the braid
// (or merge chain) occupies. Perfect devices multiply by 1 exactly.
//
// On a *calibrated* fabric the stretch is priced per actual traversed
// link instead of by the single worst one: the phase scales with the
// mean per-link cost of the route (Σ weight·(1+gateError) / hops), so
// one slow coupler on a long route costs its share rather than taxing
// the whole path at the worst-link rate. Legacy weighted presets keep
// the worst-link formula, preserving their committed artifacts
// bit-for-bit.
func (e *engine) phaseLatency(p mesh.Path) int64 {
	lat := e.phaseLatencyHops(len(p) - 1)
	if e.net.Calibrated() {
		if hops := len(p) - 1; hops > 0 {
			if mean := e.net.PathCost(p) / float64(hops); mean > 1 {
				lat = int64(math.Ceil(float64(lat) * mean))
			}
		}
		return lat
	}
	if w := e.net.PathMaxWeight(p); w > 1 {
		lat = int64(math.Ceil(float64(lat) * w))
	}
	return lat
}

func (e *engine) tileIndex(c layout.Coord) int { return c.Row*e.arch.TileCols + c.Col }

func (e *engine) run() error {
	heights := e.dag.Heights()
	// Arm the live-defect schedule: events at or before cycle 0 apply
	// immediately (nothing is in flight yet), later ones get a wake
	// completion so simulated time always lands on their cycle even when
	// no braid completes there.
	e.applyDefects(heights)
	for _, ev := range e.defects[e.defectIdx:] {
		e.push(completion{time: ev.Cycle, kind: compWake})
	}
	// Seed the ready set with dependency-free ops.
	worklist := e.worklist[:0]
	for i := range e.ops {
		if e.ops[i].remDeps == 0 {
			worklist = append(worklist, i)
		}
	}
	e.worklist = e.admit(worklist, heights)

	for e.doneCount < len(e.ops) {
		if e.done != nil {
			select {
			case <-e.done:
				return scerr.Canceled(e.ctx)
			default:
			}
		}
		placed := e.trySchedule(false, heights)
		if len(e.heap) == 0 {
			if placed > 0 {
				continue
			}
			if e.trySchedule(true, heights) == 0 {
				detail := "empty ready set"
				if len(e.ready.events) > 0 {
					h := &e.ready.events[0]
					o := &e.ops[h.opIndex]
					detail = fmt.Sprintf("head op %d kind=%d phase=%d opPhase=%d qubits=%v factory=%d tileBusy=%v factBusy=%v factFree=%v",
						h.opIndex, o.kind, h.phase, o.phase, o.qubits, o.factory,
						e.tileBusy[e.tileIndex(e.arch.QubitTile[o.qubits[0]])], e.factoryBusy, e.factoryFreeAt)
				}
				if e.net.Masked() {
					// The routability precheck passed, so this should be
					// unreachable — but on a defective device a stall must
					// surface as unroutable, never as a hang or panic.
					return scerr.Unroutable("braid: no progress at t=%d with %d ops pending on masked mesh (%s)",
						e.now, len(e.ops)-e.doneCount, detail)
				}
				return fmt.Errorf("braid: no progress at t=%d with %d ops pending, %d ready, idle network (%s)",
					e.now, len(e.ops)-e.doneCount, e.ready.Len(), detail)
			}
			continue
		}
		e.advance(heights)
	}
	e.flushUtil(e.now)
	return nil
}

// admit inserts newly dependency-free ops: barriers complete instantly
// (cascading), real ops become ready events. It returns the drained
// worklist so its capacity is reused next round.
func (e *engine) admit(worklist []int, heights []int) []int {
	for len(worklist) > 0 {
		i := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if e.ops[i].kind == opBarrier {
			e.doneCount++
			for _, s := range e.dag.Succs[i] {
				e.ops[s].remDeps--
				if e.ops[s].remDeps == 0 {
					worklist = append(worklist, int(s))
				}
			}
			continue
		}
		e.insertEvent(event{
			opIndex:    i,
			height:     heights[i],
			length:     e.opLength(i),
			readySince: e.now,
		})
	}
	return worklist[:0]
}

// opLength estimates the braid length of an op (junction Manhattan
// distance); local ops are length 0.
func (e *engine) opLength(i int) int {
	o := &e.ops[i]
	switch o.kind {
	case opBraid:
		return mesh.Manhattan(e.arch.QubitJunction(o.qubits[0]), e.arch.QubitJunction(o.qubits[1]))
	case opMagic:
		dst := e.arch.QubitJunction(o.qubits[0])
		best := 0
		for f := range e.arch.FactoryTiles {
			d := mesh.Manhattan(e.arch.FactoryJunction(f), dst)
			if f == 0 || d < best {
				best = d
			}
		}
		return best
	}
	return 0
}

// insertEvent stages ev for the ready queue, maintaining the Policy-6
// max-height bookkeeping. A rising maxHeight changes the comparator, so
// the queue is flagged for a reorder at its next flush; the event
// itself merges in the same flush.
func (e *engine) insertEvent(ev event) {
	if ev.height > e.maxHeight {
		e.maxHeight = ev.height
		e.atMax = 0
		e.needResort = true
	}
	if ev.height == e.maxHeight {
		e.atMax++
	}
	e.ready.push(ev)
}

// less is the scheduling order: program order for Policy 0, the
// priority heuristics otherwise. Events are passed by value: the
// comparator runs inside sort loops where address-of-parameter would
// heap-allocate both operands per comparison.
func (e *engine) less(a, b event) bool {
	if !e.policy.Interleave() {
		if a.opIndex != b.opIndex {
			return a.opIndex < b.opIndex
		}
		return a.phase < b.phase
	}
	return e.policy.eventPriority(a, b, e.maxHeight)
}

// flushReady brings the ready queue into policy order, applying any
// pending comparator change exactly once.
func (e *engine) flushReady() {
	e.ready.flush(e.needResort, e.less)
	e.needResort = false
}

func (e *engine) trySchedule(full bool, heights []int) int {
	e.flushReady()
	if len(e.ready.events) == 0 {
		return 0
	}
	if !e.policy.Interleave() {
		return e.tryScheduleInOrder()
	}
	placed, failures := 0, 0
	resorted := false
	events := e.ready.events
	out := events[:0]
	stop := -1
	for idx := range events {
		ev := events[idx]
		if stop >= 0 {
			out = append(out, ev)
			continue
		}
		if e.place(&ev) {
			placed++
			e.atMaxRetireDeferred(&ev, &resorted)
			continue
		}
		if age := e.now - ev.readySince; e.cfg.DropTimeout > 0 && age > e.cfg.DropTimeout {
			ev.generation++
			ev.readySince = e.now
			e.reinjections++
			resorted = true
		}
		failures++
		out = append(out, ev)
		if !full && failures >= e.cfg.MaxAttemptsPerRound {
			stop = idx
		}
	}
	e.ready.events = out
	if resorted {
		e.refreshMax()
		e.needResort = true
	}
	return placed
}

// tryScheduleInOrder is the Policy-0 scheduler: opening events issue
// strictly in program order with head-of-line blocking. Closing events
// are exempt — a braid that has opened must always be allowed to
// shrink, otherwise a blocked newer opening ahead of an older braid's
// close deadlocks the network (priority inversion on held tiles and
// factory ports).
func (e *engine) tryScheduleInOrder() int {
	placed := 0
	blockedOpen := false
	events := e.ready.events
	out := events[:0]
	for idx := range events {
		ev := events[idx]
		if !ev.closing && blockedOpen {
			out = append(out, ev)
			continue
		}
		if e.place(&ev) {
			placed++
			continue
		}
		out = append(out, ev)
		if !ev.closing {
			blockedOpen = true
		}
	}
	e.ready.events = out
	return placed
}

// atMaxRetireDeferred handles max-height bookkeeping for a placed event
// without immediately resorting mid-iteration; the resort (if needed)
// happens once after the placement loop.
func (e *engine) atMaxRetireDeferred(ev *event, resorted *bool) {
	if ev.height == e.maxHeight {
		e.atMax--
		if e.atMax <= 0 {
			*resorted = true
		}
	}
}

func (e *engine) refreshMax() {
	e.maxHeight = 0
	e.atMax = 0
	for i := range e.ready.events {
		r := &e.ready.events[i]
		if r.height > e.maxHeight {
			e.maxHeight = r.height
			e.atMax = 1
		} else if r.height == e.maxHeight {
			e.atMax++
		}
	}
}

func (e *engine) place(ev *event) bool {
	o := &e.ops[ev.opIndex]
	switch o.kind {
	case opLocal:
		t := e.tileIndex(e.arch.QubitTile[o.qubits[0]])
		if e.tileBusy[t] {
			return false
		}
		e.tileBusy[t] = true
		e.push(completion{time: e.now + o.latency, op: ev.opIndex, kind: compLocal})
		e.recordEntry(ScheduleEntry{
			Op: ev.opIndex, Kind: EntryLocal, Start: e.now, End: e.now + o.latency, Factory: -1,
		})
		return true
	case opBraid:
		if ev.phase == 0 {
			return e.placeBraidOpen(ev, o)
		}
		return e.placeClose(ev, o, e.arch.QubitJunction(o.qubits[0]), e.arch.QubitJunction(o.qubits[1]))
	case opMagic:
		if ev.phase == 0 {
			return e.placeMagicOpen(ev, o)
		}
		return e.placeClose(ev, o, e.arch.FactoryJunction(o.factory), e.arch.QubitJunction(o.qubits[0]))
	}
	return false
}

func (e *engine) placeBraidOpen(ev *event, o *op) bool {
	ta := e.tileIndex(e.arch.QubitTile[o.qubits[0]])
	tb := e.tileIndex(e.arch.QubitTile[o.qubits[1]])
	if e.tileBusy[ta] || e.tileBusy[tb] {
		return false
	}
	path, ok := e.route(ev, e.arch.QubitJunction(o.qubits[0]), e.arch.QubitJunction(o.qubits[1]))
	if !ok {
		return false
	}
	e.reserve(path, ev.opIndex)
	e.tileBusy[ta] = true
	e.tileBusy[tb] = true
	o.path = path
	o.phase = 1
	lat := e.phaseLatency(path)
	e.push(completion{time: e.now + lat, op: ev.opIndex, kind: compOpenDone, gen: o.gen})
	e.recordEntry(ScheduleEntry{
		Op: ev.opIndex, Kind: EntryOpen, Start: e.now, End: e.now + lat,
		Path: append(mesh.Path(nil), path...), Factory: -1,
	})
	return true
}

// factoryCand is a candidate factory port for a magic-state braid.
type factoryCand struct{ f, dist int }

func (e *engine) placeMagicOpen(ev *event, o *op) bool {
	td := e.tileIndex(e.arch.QubitTile[o.qubits[0]])
	if e.tileBusy[td] {
		return false
	}
	dst := e.arch.QubitJunction(o.qubits[0])
	// Nearest available factory first; deterministic tie-break on index.
	cands := e.factoryCands[:0]
	for f := range e.arch.FactoryTiles {
		if e.factoryBusy[f] || e.factoryFreeAt[f] > e.now {
			continue
		}
		cands = append(cands, factoryCand{f, mesh.Manhattan(e.arch.FactoryJunction(f), dst)})
	}
	slices.SortFunc(cands, func(a, b factoryCand) int {
		if a.dist != b.dist {
			return a.dist - b.dist
		}
		return a.f - b.f
	})
	e.factoryCands = cands
	for _, c := range cands {
		path, ok := e.route(ev, e.arch.FactoryJunction(c.f), dst)
		if !ok {
			continue
		}
		e.reserve(path, ev.opIndex)
		e.tileBusy[td] = true
		e.factoryBusy[c.f] = true
		o.factory = c.f
		o.path = path
		o.phase = 1
		lat := e.phaseLatency(path)
		e.push(completion{time: e.now + lat, op: ev.opIndex, kind: compOpenDone, gen: o.gen})
		e.recordEntry(ScheduleEntry{
			Op: ev.opIndex, Kind: EntryOpen, Start: e.now, End: e.now + lat,
			Path: append(mesh.Path(nil), path...), Factory: c.f,
		})
		return true
	}
	return false
}

func (e *engine) placeClose(ev *event, o *op, src, dst mesh.Node) bool {
	path, ok := e.route(ev, src, dst)
	if !ok {
		return false
	}
	e.reserve(path, ev.opIndex)
	o.path = path
	o.phase = 3
	lat := e.phaseLatency(path)
	e.push(completion{time: e.now + lat, op: ev.opIndex, kind: compCloseDone, gen: o.gen})
	e.recordEntry(ScheduleEntry{
		Op: ev.opIndex, Kind: EntryClose, Start: e.now, End: e.now + lat,
		Path: append(mesh.Path(nil), path...), Factory: o.factory,
	})
	return true
}

// route escalates from dimension-ordered to adaptive search once the
// event has been blocked past the adaptivity timeout (paper §6.1). On a
// device-masked mesh the escalation is immediate when the dimension-
// ordered path crosses a dead junction or disabled link: that
// obstruction is permanent, so waiting out the congestion timeout would
// only stall (or deadlock) the schedule. The candidate path is built in
// a pooled buffer: a successful route keeps it until the braid phase
// releases, a failed attempt returns it — so routing allocates nothing
// once the pool has warmed up.
func (e *engine) route(ev *event, src, dst mesh.Node) (mesh.Path, bool) {
	if e.net.Calibrated() {
		return e.routeCalibrated(ev, src, dst)
	}
	p := mesh.XYPathInto(e.getPath(), src, dst)
	if e.net.PathFree(p) {
		return p, true
	}
	escalate := e.now-ev.readySince >= e.cfg.AdaptTimeout
	if !escalate && e.net.Masked() && e.net.PathBlockedByMask(p) {
		escalate = true
	}
	if escalate {
		p = mesh.YXPathInto(p, src, dst)
		if e.net.PathFree(p) {
			return p, true
		}
		var ok bool
		if p, ok = e.net.AdaptiveRouteInto(p, src, dst); ok {
			e.adaptiveRoutes++
			return p, true
		}
	}
	e.putPath(p)
	return nil, false
}

// routeCalibrated is route on a calibrated fabric: both dimension-
// ordered candidates are priced per traversed link (mesh.PathCost) and
// the cheaper free one wins — the router prefers fast, low-error
// corridors instead of taking the XY staircase unconditionally. Ties
// keep XY, so a uniform calibration routes exactly like the legacy
// path. Escalation to the adaptive BFS fallback is unchanged.
func (e *engine) routeCalibrated(ev *event, src, dst mesh.Node) (mesh.Path, bool) {
	xy := mesh.XYPathInto(e.getPath(), src, dst)
	yx := mesh.YXPathInto(e.getPath(), src, dst)
	first, second := xy, yx
	if e.net.PathCost(yx) < e.net.PathCost(xy) {
		first, second = yx, xy
	}
	if e.net.PathFree(first) {
		e.putPath(second)
		return first, true
	}
	escalate := e.now-ev.readySince >= e.cfg.AdaptTimeout
	if !escalate && e.net.Masked() && e.net.PathBlockedByMask(first) {
		escalate = true
	}
	if escalate {
		if e.net.PathFree(second) {
			e.putPath(first)
			return second, true
		}
		var ok bool
		if first, ok = e.net.AdaptiveRouteInto(first, src, dst); ok {
			e.adaptiveRoutes++
			e.putPath(second)
			return first, true
		}
	}
	e.putPath(first)
	e.putPath(second)
	return nil, false
}

// getPath takes a path buffer from the free list (empty, capacity
// retained) or mints a fresh one.
func (e *engine) getPath() mesh.Path {
	if n := len(e.pathPool); n > 0 {
		p := e.pathPool[n-1]
		e.pathPool = e.pathPool[:n-1]
		return p[:0]
	}
	return make(mesh.Path, 0, 16)
}

// putPath returns a path buffer to the free list.
func (e *engine) putPath(p mesh.Path) {
	if cap(p) > 0 {
		e.pathPool = append(e.pathPool, p[:0])
	}
}

func (e *engine) reserve(p mesh.Path, owner int) {
	if err := e.net.Reserve(p, owner); err != nil {
		panic(fmt.Sprintf("braid: reservation invariant broken: %v", err))
	}
	e.braidsPlaced++
}

func (e *engine) release(p mesh.Path, owner int) {
	if err := e.net.Release(p, owner); err != nil {
		panic(fmt.Sprintf("braid: release invariant broken: %v", err))
	}
}

func (e *engine) push(c completion) {
	c.seq = e.seq
	e.seq++
	e.heap.push(c)
}

// advance pops every completion at the next timestamp and processes it.
// Defect events due at (or before) the timestamp apply first — a braid
// scheduled to finish exactly at the death cycle is conservatively torn
// down and re-routed, and its now-stale completion is skipped by the
// generation check.
func (e *engine) advance(heights []int) {
	t := e.heap[0].time
	e.flushUtil(t)
	e.now = t
	e.applyDefects(heights)
	worklist := e.worklist[:0]
	for len(e.heap) > 0 && e.heap[0].time == t {
		c := e.heap.pop()
		switch c.kind {
		case compWake:
			// Scheduler wake-up only.
		case compLocal:
			o := &e.ops[c.op]
			e.tileBusy[e.tileIndex(e.arch.QubitTile[o.qubits[0]])] = false
			worklist = e.completeOp(c.op, worklist)
		case compOpenDone:
			o := &e.ops[c.op]
			if c.gen != o.gen {
				continue // phase torn down by a defect event
			}
			e.release(o.path, c.op)
			e.putPath(o.path)
			o.path = nil
			o.phase = 2
			e.insertEvent(event{
				opIndex:    c.op,
				phase:      1,
				closing:    true,
				height:     heights[c.op],
				length:     e.opLength(c.op),
				readySince: e.now,
			})
		case compCloseDone:
			o := &e.ops[c.op]
			if c.gen != o.gen {
				continue // phase torn down by a defect event
			}
			e.release(o.path, c.op)
			e.putPath(o.path)
			o.path = nil
			o.phase = 4
			e.tileBusy[e.tileIndex(e.arch.QubitTile[o.qubits[0]])] = false
			if o.kind == opBraid {
				e.tileBusy[e.tileIndex(e.arch.QubitTile[o.qubits[1]])] = false
			} else {
				e.factoryBusy[o.factory] = false
				e.factoryFreeAt[o.factory] = e.now + e.cfg.FactoryRefill
				e.push(completion{time: e.factoryFreeAt[o.factory], kind: compWake})
			}
			worklist = e.completeOp(c.op, worklist)
		}
	}
	e.worklist = e.admit(worklist, heights)
}

// applyDefects consumes every defect event due at or before the current
// cycle: the coupler is masked out of the mesh, and any in-flight braid
// phase holding it is torn down and re-queued so the normal placement
// path re-routes it around the new mask. Events naming links outside
// the realized mesh (a schedule drawn for a larger chip) are ignored.
func (e *engine) applyDefects(heights []int) {
	for e.defectIdx < len(e.defects) && e.defects[e.defectIdx].Cycle <= e.now {
		ev := e.defects[e.defectIdx]
		e.defectIdx++
		if e.net.LinkMasked(ev.A, ev.B) {
			continue // already dead (static defect or duplicate event)
		}
		e.net.MaskLink(ev.A, ev.B)
		if !e.net.LinkMasked(ev.A, ev.B) {
			continue // outside the mesh
		}
		e.teardownCrossing(ev.A, ev.B, heights)
	}
}

// teardownCrossing aborts every in-flight braid phase whose claimed path
// traverses the newly dead link: the claim is released, the op's
// generation is bumped (invalidating its pending completion), and the
// phase is re-queued as a fresh ready event. An aborted opening reverts
// to pending-open and returns its endpoint tiles (and factory port, with
// no refill penalty — no state was consumed); an aborted closing reverts
// to pending-close with its tiles still held. The recorded schedule
// drops the aborted entry — failed schedules are not recorded (§6.1) —
// and the re-route records a fresh one when it commits.
func (e *engine) teardownCrossing(a, b mesh.Node, heights []int) {
	for i := range e.ops {
		o := &e.ops[i]
		if (o.phase != 1 && o.phase != 3) || !pathUsesLink(o.path, a, b) {
			continue
		}
		e.release(o.path, i)
		e.putPath(o.path)
		o.path = nil
		o.gen++
		e.reroutes++
		if o.phase == 1 {
			o.phase = 0
			e.tileBusy[e.tileIndex(e.arch.QubitTile[o.qubits[0]])] = false
			if o.kind == opBraid {
				e.tileBusy[e.tileIndex(e.arch.QubitTile[o.qubits[1]])] = false
			} else {
				e.factoryBusy[o.factory] = false
				o.factory = -1
			}
			e.removeEntry(i, EntryOpen)
			e.insertEvent(event{
				opIndex:    i,
				height:     heights[i],
				length:     e.opLength(i),
				readySince: e.now,
			})
		} else {
			o.phase = 2
			e.removeEntry(i, EntryClose)
			e.insertEvent(event{
				opIndex:    i,
				phase:      1,
				closing:    true,
				height:     heights[i],
				length:     e.opLength(i),
				readySince: e.now,
			})
		}
	}
}

// pathUsesLink reports whether the path traverses the (a,b) channel in
// either direction.
func pathUsesLink(p mesh.Path, a, b mesh.Node) bool {
	for i := 0; i+1 < len(p); i++ {
		if (p[i] == a && p[i+1] == b) || (p[i] == b && p[i+1] == a) {
			return true
		}
	}
	return false
}

// completeOp marks an op done and returns newly dependency-free
// successors appended to the worklist.
func (e *engine) completeOp(i int, worklist []int) []int {
	e.doneCount++
	for _, s := range e.dag.Succs[i] {
		e.ops[s].remDeps--
		if e.ops[s].remDeps == 0 {
			worklist = append(worklist, int(s))
		}
	}
	return worklist
}

// flushUtil integrates busy-link time up to t.
func (e *engine) flushUtil(t int64) {
	e.busyIntegral += int64(e.net.BusyLinks()) * (t - e.lastT)
	e.lastT = t
}
