package braid

import (
	"errors"
	"math/rand"
	"testing"

	"surfcomm/internal/apps"
	"surfcomm/internal/device"
	"surfcomm/internal/mesh"
	"surfcomm/internal/scerr"
)

// pathRespects asserts every consecutive pair of p is a coupler the
// graph keeps at the realized dims — the edge-set membership oracle.
func pathRespects(t *testing.T, g *device.CouplingGraph, rows, cols int, p mesh.Path, what string) {
	t.Helper()
	for i := 0; i+1 < len(p); i++ {
		a := device.Coord{Row: p[i].Row, Col: p[i].Col}
		b := device.Coord{Row: p[i+1].Row, Col: p[i+1].Col}
		if !g.HasEdge(rows, cols, a, b) {
			t.Fatalf("%s: path segment %v-%v traverses a coupler absent from %s", what, a, b, g.Name())
		}
	}
}

// TestHeavyHexSchedulesRespectEdgeSet compiles suite workloads on
// heavy-hex devices and checks every committed braid path against the
// pattern's own edge predicate: no route — dimension-ordered or BFS
// fallback — may traverse a coupler the lattice does not have. The
// schedules must also replay cleanly on the masked floorplan.
func TestHeavyHexSchedulesRespectEdgeSet(t *testing.T) {
	g := device.HeavyHexGraph()
	for _, w := range apps.Fig6Suite() {
		r, err := Simulate(w.Circuit, Policy6, Config{Distance: 5, RecordSchedule: true, Device: device.HeavyHex(1)})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Arch.Topo == nil {
			t.Fatalf("%s: heavy-hex compile lost its topology", w.Name)
		}
		rows, cols := r.Arch.Topo.Rows(), r.Arch.Topo.Cols()
		for _, e := range r.Schedule {
			pathRespects(t, g, rows, cols, e.Path, w.Name)
		}
		if err := Replay(w.Circuit, r.Arch, r.Schedule); err != nil {
			t.Fatalf("%s: replay: %v", w.Name, err)
		}
	}
}

// TestHeavyHexAdaptiveRoutesRespectEdgeSet fuzzes the BFS fallback
// directly: on a heavy-hex-masked mesh, every route AdaptiveRouteInto
// finds must stay on existing couplers, for random endpoint pairs
// across several realized dims.
func TestHeavyHexAdaptiveRoutesRespectEdgeSet(t *testing.T) {
	g := device.HeavyHexGraph()
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{5, 5}, {6, 9}, {9, 6}, {11, 13}} {
		rows, cols := dims[0], dims[1]
		topo := device.HeavyHex(1).Instance(rows, cols)
		m := mesh.New(rows, cols)
		if err := m.ApplyTopology(topo); err != nil {
			t.Fatalf("%dx%d: %v", rows, cols, err)
		}
		var buf mesh.Path
		routed := 0
		for trial := 0; trial < 200; trial++ {
			a := mesh.Node{Row: rng.Intn(rows), Col: rng.Intn(cols)}
			b := mesh.Node{Row: rng.Intn(rows), Col: rng.Intn(cols)}
			p, ok := m.AdaptiveRouteInto(buf, a, b)
			buf = p
			if !ok {
				continue
			}
			routed++
			pathRespects(t, g, rows, cols, p, "adaptive")
		}
		// The heavy-hex lattice is connected at any dims, so on an idle
		// mesh every pair must route.
		if routed != 200 {
			t.Fatalf("%dx%d: only %d/200 pairs routed on an idle heavy-hex mesh", rows, cols, routed)
		}
	}
}

// TestLiveDefectReroutesInFlight is the live-defect scenario: compile
// once to find a braid in flight, kill a coupler under it mid-schedule,
// and recompile with that defect event. The engine must tear the braid
// down and re-route (Reroutes > 0) without ErrUnroutable — the fabric
// is still connected — and no surviving schedule entry extending past
// the death cycle may hold the dead link. The rerouted schedule must
// replay cleanly.
func TestLiveDefectReroutesInFlight(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	base, err := Simulate(c, Policy6, Config{Distance: 5, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the longest-held braid-phase path and a link in its middle.
	var target ScheduleEntry
	found := false
	for _, e := range base.Schedule {
		if e.Kind == EntryLocal || len(e.Path) < 3 || e.End-e.Start < 3 {
			continue
		}
		if !found || e.End-e.Start > target.End-target.Start {
			target, found = e, true
		}
	}
	if !found {
		t.Fatal("baseline schedule has no braid held long enough to kill under")
	}
	mid := len(target.Path) / 2
	ev := device.DefectEvent{
		Cycle: target.Start + (target.End-target.Start)/2,
		A:     device.Coord{Row: target.Path[mid-1].Row, Col: target.Path[mid-1].Col},
		B:     device.Coord{Row: target.Path[mid].Row, Col: target.Path[mid].Col},
	}
	sched := &device.DefectSchedule{Name: "kill-one", Events: []device.DefectEvent{ev}}

	r, err := Simulate(c, Policy6, Config{Distance: 5, RecordSchedule: true, Defects: sched})
	if err != nil {
		if errors.Is(err, scerr.ErrUnroutable) {
			t.Fatalf("connected fabric reported unroutable after one coupler death: %v", err)
		}
		t.Fatal(err)
	}
	if r.Reroutes < 1 {
		t.Fatalf("Reroutes = %d, want >= 1 (coupler died at cycle %d under an in-flight braid)", r.Reroutes, ev.Cycle)
	}
	usesDeadLink := func(p mesh.Path) bool {
		a := mesh.Node{Row: ev.A.Row, Col: ev.A.Col}
		b := mesh.Node{Row: ev.B.Row, Col: ev.B.Col}
		for i := 0; i+1 < len(p); i++ {
			if (p[i] == a && p[i+1] == b) || (p[i] == b && p[i+1] == a) {
				return true
			}
		}
		return false
	}
	for _, e := range r.Schedule {
		if e.End > ev.Cycle && usesDeadLink(e.Path) {
			t.Fatalf("op %d %s [%d,%d) still holds the link killed at cycle %d",
				e.Op, e.Kind, e.Start, e.End, ev.Cycle)
		}
	}
	if err := Replay(c, r.Arch, r.Schedule); err != nil {
		t.Fatalf("rerouted schedule fails replay: %v", err)
	}
}

// TestDefectScheduleDeterministic pins that identical defect compiles
// are bit-identical, and that the whole-fabric death case still fails
// fast with ErrUnroutable.
func TestDefectScheduleDeterministic(t *testing.T) {
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	pre, err := Simulate(c, Policy6, Config{Distance: 5, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	jrows, jcols := pre.Arch.TileRows+1, pre.Arch.TileCols+1
	sched := device.RandomDefectSchedule(3, jrows, jcols, 4, pre.ScheduleCycles/2)
	if sched.Empty() {
		t.Fatal("random defect schedule drew no events")
	}
	a, err := Simulate(c, Policy6, Config{Distance: 5, RecordSchedule: true, Defects: sched})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, Policy6, Config{Distance: 5, RecordSchedule: true, Defects: sched})
	if err != nil {
		t.Fatal(err)
	}
	if scheduleDigest(a.Schedule) != scheduleDigest(b.Schedule) {
		t.Fatal("identical defect compiles diverged")
	}

	// Kill every link at cycle 1: the fabric disconnects mid-run and the
	// engine must report ErrUnroutable instead of hanging.
	all := &device.DefectSchedule{Name: "all-dead"}
	for r := 0; r < jrows; r++ {
		for cc := 0; cc < jcols; cc++ {
			cur := device.Coord{Row: r, Col: cc}
			if cc+1 < jcols {
				all.Events = append(all.Events, device.DefectEvent{Cycle: 1, A: cur, B: device.Coord{Row: r, Col: cc + 1}})
			}
			if r+1 < jrows {
				all.Events = append(all.Events, device.DefectEvent{Cycle: 1, A: cur, B: device.Coord{Row: r + 1, Col: cc}})
			}
		}
	}
	if _, err := Simulate(c, Policy6, Config{Distance: 5, Defects: all}); !errors.Is(err, scerr.ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable after whole-fabric death", err)
	}
}
