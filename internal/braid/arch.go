// Package braid simulates computation and communication on the tiled
// double-defect architecture (paper §4.5, §6): every logical qubit owns
// one lattice tile, two-qubit operations are braids — circuit-switched
// path claims on the channel mesh between tiles — and T gates braid a
// magic state in from a factory port. The engine discovers a static
// schedule by dynamic simulation (paper §6.1) under the seven priority
// policies of §6.3 and reports the schedule-length-to-critical-path
// ratio and mesh utilization of Figure 6.
package braid

import (
	"fmt"

	"surfcomm/internal/layout"
	"surfcomm/internal/mesh"
	"surfcomm/internal/surface"
)

// factoryColumnPitch intersperses one factory column after every this
// many data columns — the paper's 1:4 ancilla-to-data balance (§4.3),
// with dedicated factories supplying the tiles around them (Fig. 3b).
const factoryColumnPitch = 4

// Arch is the floorplan of a tiled double-defect machine: data tiles
// hold the program's logical qubits at their optimized (or row-major)
// positions, and magic-state factory ports occupy dedicated columns
// interspersed through the fabric. Every tile attaches to the channel
// mesh at its top-left corner junction.
type Arch struct {
	TileRows, TileCols int
	DataTiles          int
	QubitTile          []layout.Coord // per logical qubit (physical grid coords)
	FactoryTiles       []layout.Coord // factory ports, one tile each
}

// NewArch builds the floorplan for a placement of logical qubits. Data
// columns keep their relative order; a factory column is inserted after
// every factoryColumnPitch data columns (and at the right edge when the
// last group is partial), so every tile is at most two columns from a
// magic-state source.
func NewArch(p *layout.Placement) (*Arch, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("braid: %w", err)
	}
	n := len(p.Pos)
	if n == 0 {
		return nil, fmt.Errorf("braid: no qubits to place")
	}
	fcols := (p.Cols + factoryColumnPitch - 1) / factoryColumnPitch
	if fcols < 1 {
		fcols = 1
	}
	a := &Arch{
		TileRows:  p.Rows,
		TileCols:  p.Cols + fcols,
		DataTiles: n,
		QubitTile: make([]layout.Coord, n),
	}
	// Physical column of data column c: shifted right once per factory
	// column already inserted to its left.
	for q, c := range p.Pos {
		a.QubitTile[q] = layout.Coord{Row: c.Row, Col: c.Col + c.Col/factoryColumnPitch}
	}
	// Factory columns sit after each group of factoryColumnPitch data
	// columns: physical columns pitch, 2*pitch+1, ... one port per row.
	for f := 0; f < fcols; f++ {
		col := (f+1)*factoryColumnPitch + f
		if col >= a.TileCols {
			col = a.TileCols - 1
		}
		for r := 0; r < p.Rows; r++ {
			a.FactoryTiles = append(a.FactoryTiles, layout.Coord{Row: r, Col: col})
		}
	}
	return a, nil
}

// Junction returns the mesh attachment point of a tile coordinate.
func (a *Arch) Junction(c layout.Coord) mesh.Node {
	return mesh.Node{Row: c.Row, Col: c.Col}
}

// QubitJunction returns the mesh attachment point of a logical qubit.
func (a *Arch) QubitJunction(q int) mesh.Node {
	return a.Junction(a.QubitTile[q])
}

// FactoryJunction returns the mesh attachment point of factory port f.
func (a *Arch) FactoryJunction(f int) mesh.Node {
	return a.Junction(a.FactoryTiles[f])
}

// NewMesh returns an empty channel mesh spanning all tile corners.
func (a *Arch) NewMesh() *mesh.Mesh {
	return mesh.New(a.TileRows+1, a.TileCols+1)
}

// TotalTiles returns the tile count of the floorplan (data + factory).
func (a *Arch) TotalTiles() int {
	return a.DataTiles + len(a.FactoryTiles)
}

// PhysicalQubits returns the physical-qubit footprint of the floorplan
// at distance d: every tile (data and factory) plus the braid-channel
// corridors between tiles.
func (a *Arch) PhysicalQubits(d int) int {
	tile := surface.DoubleDefectTileQubits(d)
	tiles := a.TotalTiles() * tile
	channels := (a.TileRows + 1) * a.TileCols * surface.ChannelWidthQubits(d) * (2*d - 1)
	channels += (a.TileCols + 1) * a.TileRows * surface.ChannelWidthQubits(d) * (2*d - 1)
	return tiles + channels
}
