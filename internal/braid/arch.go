// Package braid simulates computation and communication on the tiled
// double-defect architecture (paper §4.5, §6): every logical qubit owns
// one lattice tile, two-qubit operations are braids — circuit-switched
// path claims on the channel mesh between tiles — and T gates braid a
// magic state in from a factory port. The engine discovers a static
// schedule by dynamic simulation (paper §6.1) under the seven priority
// policies of §6.3 and reports the schedule-length-to-critical-path
// ratio and mesh utilization of Figure 6.
package braid

import (
	"fmt"

	"surfcomm/internal/device"
	"surfcomm/internal/layout"
	"surfcomm/internal/mesh"
	"surfcomm/internal/scerr"
	"surfcomm/internal/surface"
)

// factoryColumnPitch intersperses one factory column after every this
// many data columns — the paper's 1:4 ancilla-to-data balance (§4.3),
// with dedicated factories supplying the tiles around them (Fig. 3b).
const factoryColumnPitch = 4

// Arch is the floorplan of a tiled double-defect machine: data tiles
// hold the program's logical qubits at their optimized (or row-major)
// positions, and magic-state factory ports occupy dedicated columns
// interspersed through the fabric. Every tile attaches to the channel
// mesh at its top-left corner junction.
type Arch struct {
	TileRows, TileCols int
	DataTiles          int
	QubitTile          []layout.Coord // per logical qubit (physical grid coords)
	FactoryTiles       []layout.Coord // factory ports, one tile each
	// Topo is the realized device topology at junction-grid dims
	// (TileRows+1 × TileCols+1); nil on a perfect device. NewMesh masks
	// the channel mesh with it.
	Topo *device.Topology
}

// archCols returns the physical tile-column count for a data grid of
// cols columns (factory columns interspersed at the pitch).
func archCols(cols int) int {
	fcols := (cols + factoryColumnPitch - 1) / factoryColumnPitch
	if fcols < 1 {
		fcols = 1
	}
	return cols + fcols
}

// physicalCol maps a data-grid column to its physical column (shifted
// right once per factory column inserted to its left).
func physicalCol(c int) int { return c + c/factoryColumnPitch }

// NewArch builds the floorplan for a placement of logical qubits. Data
// columns keep their relative order; a factory column is inserted after
// every factoryColumnPitch data columns (and at the right edge when the
// last group is partial), so every tile is at most two columns from a
// magic-state source.
func NewArch(p *layout.Placement) (*Arch, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("braid: %w", err)
	}
	n := len(p.Pos)
	if n == 0 {
		return nil, fmt.Errorf("braid: no qubits to place")
	}
	fcols := archCols(p.Cols) - p.Cols
	a := &Arch{
		TileRows:  p.Rows,
		TileCols:  p.Cols + fcols,
		DataTiles: n,
		QubitTile: make([]layout.Coord, n),
	}
	// Physical column of data column c: shifted right once per factory
	// column already inserted to its left.
	for q, c := range p.Pos {
		a.QubitTile[q] = layout.Coord{Row: c.Row, Col: physicalCol(c.Col)}
	}
	// Factory columns sit after each group of factoryColumnPitch data
	// columns: physical columns pitch, 2*pitch+1, ... one port per row.
	for f := 0; f < fcols; f++ {
		col := (f+1)*factoryColumnPitch + f
		if col >= a.TileCols {
			col = a.TileCols - 1
		}
		for r := 0; r < p.Rows; r++ {
			a.FactoryTiles = append(a.FactoryTiles, layout.Coord{Row: r, Col: col})
		}
	}
	return a, nil
}

// NewArchOn builds the floorplan on a realized device topology (at the
// junction dims the placement implies). Factory ports whose attachment
// junction is dead are dropped from the floorplan; a placement that
// lands a qubit on a dead junction fails with an error matching
// scerr.ErrUnroutable. A nil or non-degraded topology selects NewArch
// exactly.
func NewArchOn(p *layout.Placement, topo *device.Topology) (*Arch, error) {
	a, err := NewArch(p)
	if err != nil {
		return nil, err
	}
	if topo == nil || !topo.Degraded() {
		return a, nil
	}
	if topo.Rows() != a.TileRows+1 || topo.Cols() != a.TileCols+1 {
		return nil, fmt.Errorf("braid: topology dims %dx%d do not match junction grid %dx%d",
			topo.Rows(), topo.Cols(), a.TileRows+1, a.TileCols+1)
	}
	a.Topo = topo
	for q, c := range a.QubitTile {
		if topo.TileDead(a.Junction(c)) {
			return nil, scerr.Unroutable("braid: qubit %d placed on dead tile %v", q, c)
		}
	}
	alive := a.FactoryTiles[:0]
	for _, f := range a.FactoryTiles {
		if !topo.TileDead(a.Junction(f)) {
			alive = append(alive, f)
		}
	}
	a.FactoryTiles = alive
	return a, nil
}

// Junction returns the mesh attachment point of a tile coordinate.
func (a *Arch) Junction(c layout.Coord) mesh.Node {
	return mesh.Node{Row: c.Row, Col: c.Col}
}

// QubitJunction returns the mesh attachment point of a logical qubit.
func (a *Arch) QubitJunction(q int) mesh.Node {
	return a.Junction(a.QubitTile[q])
}

// FactoryJunction returns the mesh attachment point of factory port f.
func (a *Arch) FactoryJunction(f int) mesh.Node {
	return a.Junction(a.FactoryTiles[f])
}

// NewMesh returns an empty channel mesh spanning all tile corners,
// masked with the floorplan's device topology when one is attached.
func (a *Arch) NewMesh() *mesh.Mesh {
	m := mesh.New(a.TileRows+1, a.TileCols+1)
	if a.Topo != nil {
		if err := m.ApplyTopology(a.Topo); err != nil {
			panic(fmt.Sprintf("braid: arch/topology invariant broken: %v", err))
		}
	}
	return m
}

// TotalTiles returns the tile count of the floorplan (data + factory).
func (a *Arch) TotalTiles() int {
	return a.DataTiles + len(a.FactoryTiles)
}

// PhysicalQubits returns the physical-qubit footprint of the floorplan
// at distance d: every tile (data and factory) plus the braid-channel
// corridors between tiles.
func (a *Arch) PhysicalQubits(d int) int {
	tile := surface.DoubleDefectTileQubits(d)
	tiles := a.TotalTiles() * tile
	channels := (a.TileRows + 1) * a.TileCols * surface.ChannelWidthQubits(d) * (2*d - 1)
	channels += (a.TileCols + 1) * a.TileRows * surface.ChannelWidthQubits(d) * (2*d - 1)
	return tiles + channels
}
