package braid

import (
	"testing"

	"surfcomm/internal/layout"
	"surfcomm/internal/mesh"
	"surfcomm/internal/surface"
)

func TestNewArchBasics(t *testing.T) {
	p := layout.RowMajor(16) // 4x4 grid
	a, err := NewArch(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.DataTiles != 16 {
		t.Errorf("data tiles = %d, want 16", a.DataTiles)
	}
	// 4 data columns -> 1 factory column with one port per row.
	if len(a.FactoryTiles) != 4 {
		t.Errorf("factory ports = %d, want 4", len(a.FactoryTiles))
	}
	if a.TileCols != 5 {
		t.Errorf("tile cols = %d, want 5 (4 data + 1 factory)", a.TileCols)
	}
	if a.TotalTiles() != 20 {
		t.Errorf("total tiles = %d, want 20", a.TotalTiles())
	}
	// Ports sit in the dedicated factory column, inside the floorplan.
	for _, f := range a.FactoryTiles {
		if f.Col != 4 {
			t.Errorf("port at %v, want factory column 4", f)
		}
		if f.Row < 0 || f.Row >= a.TileRows {
			t.Errorf("port at %v outside floorplan", f)
		}
	}
}

func TestNewArchProvisioningNearQuarter(t *testing.T) {
	// Larger fabric: ports should land near the 1:4 ancilla:data rule.
	p := layout.RowMajor(100) // 10x10
	a, err := NewArch(p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(a.FactoryTiles)) / float64(a.DataTiles)
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("port:data ratio = %.2f, want near 1:4", ratio)
	}
}

func TestNewArchNoTileCollisions(t *testing.T) {
	for _, n := range []int{1, 5, 9, 13, 25, 49, 60, 100, 592} {
		a, err := NewArch(layout.RowMajor(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := map[layout.Coord]string{}
		for q, c := range a.QubitTile {
			if c.Row < 0 || c.Row >= a.TileRows || c.Col < 0 || c.Col >= a.TileCols {
				t.Fatalf("n=%d: qubit %d at %v outside %dx%d", n, q, c, a.TileRows, a.TileCols)
			}
			if prev, dup := seen[c]; dup {
				t.Fatalf("n=%d: tile %v used by %s and qubit %d", n, c, prev, q)
			}
			seen[c] = "data"
		}
		for f, c := range a.FactoryTiles {
			if c.Row < 0 || c.Row >= a.TileRows || c.Col < 0 || c.Col >= a.TileCols {
				t.Fatalf("n=%d: port %d at %v outside floorplan", n, f, c)
			}
			if prev, dup := seen[c]; dup {
				t.Fatalf("n=%d: tile %v used by %s and port %d", n, c, prev, f)
			}
			seen[c] = "factory"
		}
		if len(a.FactoryTiles) == 0 {
			t.Fatalf("n=%d: no factory ports", n)
		}
	}
}

func TestNewArchRejectsBadPlacement(t *testing.T) {
	bad := &layout.Placement{Rows: 1, Cols: 1, Pos: []layout.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 0}}}
	if _, err := NewArch(bad); err == nil {
		t.Error("colliding placement should be rejected")
	}
	empty := &layout.Placement{Rows: 0, Cols: 0}
	if _, err := NewArch(empty); err == nil {
		t.Error("empty placement should be rejected")
	}
}

func TestJunctionMapping(t *testing.T) {
	p := layout.RowMajor(4) // 2x2 data grid
	a, err := NewArch(p)
	if err != nil {
		t.Fatal(err)
	}
	m := a.NewMesh()
	if m.Rows() != a.TileRows+1 || m.Cols() != a.TileCols+1 {
		t.Errorf("mesh %dx%d, want %dx%d", m.Rows(), m.Cols(), a.TileRows+1, a.TileCols+1)
	}
	for q := 0; q < a.DataTiles; q++ {
		if !m.InBounds(a.QubitJunction(q)) {
			t.Errorf("qubit %d junction out of mesh bounds", q)
		}
	}
	for f := range a.FactoryTiles {
		if !m.InBounds(a.FactoryJunction(f)) {
			t.Errorf("factory %d junction out of mesh bounds", f)
		}
	}
	// Distinct data qubits attach at distinct junctions.
	seen := map[mesh.Node]bool{}
	for q := 0; q < a.DataTiles; q++ {
		j := a.QubitJunction(q)
		if seen[j] {
			t.Errorf("junction %v shared by multiple qubits", j)
		}
		seen[j] = true
	}
}

func TestEveryTileNearAFactory(t *testing.T) {
	a, err := NewArch(layout.RowMajor(64)) // 8x8 data
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < a.DataTiles; q++ {
		best := 1 << 30
		for f := range a.FactoryTiles {
			d := manhattanCoord(a.QubitTile[q], a.FactoryTiles[f])
			if d < best {
				best = d
			}
		}
		if best > factoryColumnPitch+a.TileRows {
			t.Errorf("qubit %d is %d tiles from nearest factory", q, best)
		}
	}
}

func manhattanCoord(a, b layout.Coord) int {
	dr := a.Row - b.Row
	if dr < 0 {
		dr = -dr
	}
	dc := a.Col - b.Col
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

func TestPhysicalQubitsScaleWithDistance(t *testing.T) {
	a, err := NewArch(layout.RowMajor(16))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for d := 3; d <= 15; d += 2 {
		q := a.PhysicalQubits(d)
		if q <= prev {
			t.Errorf("physical qubits not increasing at d=%d: %d <= %d", d, q, prev)
		}
		prev = q
	}
	d := 5
	if a.PhysicalQubits(d) < a.TotalTiles()*surface.DoubleDefectTileQubits(d) {
		t.Error("footprint below bare tile area")
	}
}
