package cluster

import (
	"sort"
	"sync"
	"time"
)

// sampler is a fixed-size ring of recent request latencies. The router
// feeds it every successful forward and reads percentiles from it for
// two purposes: the hedge trigger (fire a second attempt once a request
// outlives the observed pXX) and the /healthz p50/p99 report.
type sampler struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int // live entries (== len(buf) once full)
}

func newSampler(size int) *sampler {
	if size <= 0 {
		size = 512
	}
	return &sampler{buf: make([]time.Duration, size)}
}

func (s *sampler) Observe(d time.Duration) {
	s.mu.Lock()
	s.buf[s.next] = d
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Percentile returns the p-quantile (0 < p <= 1) of the live window and
// the number of samples it was computed from (0 means "no data yet").
func (s *sampler) Percentile(p float64) (time.Duration, int) {
	s.mu.Lock()
	live := make([]time.Duration, s.n)
	copy(live, s.buf[:s.n])
	s.mu.Unlock()
	if len(live) == 0 {
		return 0, 0
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	idx := int(p*float64(len(live))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(live) {
		idx = len(live) - 1
	}
	return live[idx], len(live)
}
