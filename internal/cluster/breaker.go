package cluster

import (
	"sync"
	"time"
)

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int

const (
	// Closed: the replica is healthy; requests flow normally.
	Closed BreakerState = iota
	// Open: the replica has failed repeatedly; requests are refused
	// locally until the cooldown elapses.
	Open
	// HalfOpen: cooldown elapsed; one trial request (or probe) is in
	// flight to decide between Closed and Open.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-replica circuit breaker fed by two signals: live
// request outcomes (connection failures and 5xx from proxied traffic)
// and the active prober's /readyz verdicts. Both call the same
// Success/Failure entry points, so a replica that stops serving is
// opened by whichever signal notices first, and a recovered replica is
// re-closed by the prober without waiting for a user request to gamble
// on it.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while Closed
	openedAt  time.Time // when the breaker last tripped
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
}

// DefaultFailThreshold and DefaultCooldown tune how fast a replica is
// ejected and how long before it is re-tried. Three strikes is fast
// enough that a crashed replica stops absorbing retries within one
// probe interval; two seconds of cooldown keeps a flapping replica from
// oscillating in and out of rotation faster than its store can warm.
const (
	DefaultFailThreshold = 3
	DefaultCooldown      = 2 * time.Second
)

// NewBreaker builds a Closed breaker. Zero threshold/cooldown select
// the defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultFailThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent to this replica now.
// While Open it returns false until the cooldown elapses, then flips to
// HalfOpen and admits exactly the caller's request as the trial.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			return true
		}
		return false
	}
	return false
}

// Success records a healthy outcome (2xx/4xx reply or passing probe).
// In HalfOpen it closes the breaker; in Closed it clears the strike
// count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
}

// Failure records an unhealthy outcome (connection error, 5xx, failed
// probe). HalfOpen trips straight back to Open — the trial failed;
// Closed trips once the consecutive-failure threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
			b.failures = 0
		}
	case Open:
		// Late failures from in-flight requests; already open.
	}
}

// State returns the current state, applying the Open→HalfOpen cooldown
// transition so observers never see a stale Open past its cooldown.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// RetryAfter returns how long until an Open breaker would admit a
// trial, or zero if it already would.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	if d := b.cooldown - b.now().Sub(b.openedAt); d > 0 {
		return d
	}
	return 0
}
