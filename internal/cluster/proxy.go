package cluster

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"surfcomm/internal/service"
)

// shardResult is one batch shard's outcome: either a decoded slot
// array (status 200), a relayed rate limit (status 429), or a shard
// that exhausted its failover attempts (status 0) with the error text
// to surface per-slot.
type shardResult struct {
	indices    []int
	slots      []service.CompileResponse
	status     int
	retryAfter string
	errText    string
}

// handleBatch scatter-gathers POST /batch: slots are grouped by their
// routing key's owner so each sub-batch lands on the replica whose
// cache already holds (or will next be asked for) those digests, the
// groups run concurrently, and the slots are reassembled in request
// order. Rate limiting stays all-or-nothing like a single replica: any
// group's 429 fails the whole batch, because the client's token bucket
// is shared across replicas via the forwarded client key.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		http.Error(w, "cluster: reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxProxyBody {
		http.Error(w, "cluster: request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	var reqs []service.Request
	if err := json.Unmarshal(body, &reqs); err != nil {
		// Not a request array the router can split: forward verbatim to
		// one replica and let it produce the authoritative 400.
		ranked := rt.rankedAllowed("")
		if len(ranked) == 0 {
			rt.refuse(w)
			return
		}
		rt.forward(w, r, ranked, body)
		return
	}
	if len(reqs) == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("[]\n")) //nolint:errcheck
		return
	}

	// Group slot indices by owning replica. Unkeyable slots (bad QASM)
	// share one deterministic bucket; the owning replica reports their
	// per-slot errors exactly as a single node would.
	groups := make(map[string][]int)
	keys := make([]string, len(reqs))
	for i, req := range reqs {
		key, kerr := service.RoutingKey(req)
		if kerr != nil {
			key = "unkeyed"
		}
		keys[i] = key
		groups[rt.ring.Owner(key)] = append(groups[rt.ring.Owner(key)], i)
	}

	results := make([]shardResult, 0, len(groups))
	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, owner := range owners {
		indices := groups[owner]
		sub := make([]service.Request, len(indices))
		for j, idx := range indices {
			sub[j] = reqs[idx]
		}
		subBody, merr := json.Marshal(sub)
		if merr != nil {
			http.Error(w, "cluster: re-encoding batch: "+merr.Error(), http.StatusInternalServerError)
			return
		}
		// The group's failover order is its first slot's ranked list —
		// every slot in the group shares the same owner, so the lists
		// agree on the head, which is what matters.
		ranked := rt.rankedAllowed(keys[indices[0]])
		wg.Add(1)
		go func(indices []int, ranked []*replica, subBody []byte) {
			defer wg.Done()
			res := rt.doGroup(r, ranked, subBody, len(indices))
			res.indices = indices
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(indices, ranked, subBody)
	}
	wg.Wait()

	// All-or-nothing outcomes first.
	allFailed := true
	var sawRetryAfter string
	for _, res := range results {
		if res.status == http.StatusTooManyRequests {
			if res.retryAfter != "" {
				w.Header().Set("Retry-After", res.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck
				"error": "service: rate limit exceeded for this client",
			})
			return
		}
		if res.status == http.StatusOK {
			allFailed = false
		} else if res.retryAfter != "" {
			sawRetryAfter = res.retryAfter
		}
	}
	if allFailed {
		if sawRetryAfter == "" {
			rt.refuse(w)
			return
		}
		rt.refused.Add(1)
		w.Header().Set("Retry-After", sawRetryAfter)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck
			"error": "cluster: every batch shard failed",
		})
		return
	}

	out := make([]service.CompileResponse, len(reqs))
	for _, res := range results {
		for j, idx := range res.indices {
			if res.status == http.StatusOK {
				out[idx] = res.slots[j]
			} else {
				out[idx] = service.CompileResponse{Error: res.errText}
			}
		}
	}
	rt.forwarded.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}

// doGroup sends one batch shard along its failover sequence and
// decodes the reply. It never writes to the client.
func (rt *Router) doGroup(r *http.Request, ranked []*replica, subBody []byte, slots int) (res shardResult) {
	res.errText = "cluster: no replica available for this shard"
	for i, rep := range ranked {
		resp, err := rt.do(r.Context(), rep, r, subBody)
		if failover(resp, err) {
			rep.fail()
			if resp != nil {
				if ra := resp.Header.Get("Retry-After"); ra != "" {
					res.retryAfter = ra
				}
				discard(resp)
			}
			if i+1 < len(ranked) {
				rt.failovers.Add(1)
			}
			if err != nil {
				res.errText = "cluster: shard failed: " + err.Error()
			} else {
				res.errText = "cluster: shard failed: replicas unavailable"
			}
			continue
		}
		rep.br.Success()
		rep.served.Add(1)
		payload, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		resp.Body.Close()
		if rerr != nil {
			rep.failed.Add(1)
			res.errText = "cluster: reading shard reply: " + rerr.Error()
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var slotResps []service.CompileResponse
			if jerr := json.Unmarshal(payload, &slotResps); jerr != nil || len(slotResps) != slots {
				res.errText = "cluster: malformed shard reply"
				continue
			}
			res.status = http.StatusOK
			res.slots = slotResps
			return res
		case http.StatusTooManyRequests:
			res.status = http.StatusTooManyRequests
			res.retryAfter = resp.Header.Get("Retry-After")
			return res
		default:
			// A non-retryable whole-shard error (400 on a malformed
			// sub-request we built — should not happen): surface it
			// per-slot rather than guessing.
			res.errText = "cluster: shard rejected with status " + strconv.Itoa(resp.StatusCode) + ": " + string(payload)
			return res
		}
	}
	return res
}

// handleDecodeStream relays POST /decode, the full-duplex NDJSON
// syndrome stream. The request body cannot be buffered or replayed, so
// the stream gets exactly one replica — chosen round-robin over the
// allowed set — and no failover once bytes are moving.
func (rt *Router) handleDecodeStream(w http.ResponseWriter, r *http.Request) {
	names := rt.ring.Names()
	start := int(rt.rr.Add(1) % uint64(len(names)))
	var rep *replica
	for off := range names {
		cand := rt.replicas[names[(start+off)%len(names)]]
		if cand.br.Allow() {
			rep = cand
			break
		}
	}
	if rep == nil {
		rt.refuse(w)
		return
	}
	u := rep.base.JoinPath(r.URL.Path)
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		http.Error(w, "cluster: building upstream request: "+err.Error(), http.StatusInternalServerError)
		return
	}
	copyHeaders(req.Header, r.Header)
	if host, _, splitErr := net.SplitHostPort(r.RemoteAddr); splitErr == nil {
		req.Header.Set(service.ForwardedForHeader, host)
	} else if r.RemoteAddr != "" {
		req.Header.Set(service.ForwardedForHeader, r.RemoteAddr)
	}
	// Full duplex: the client keeps sending syndrome rounds while the
	// replica's corrections flow back through us.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() //nolint:errcheck // unsupported writers just degrade to half-duplex
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.fail()
		rt.refused.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "cluster: decode replica unavailable", http.StatusServiceUnavailable)
		return
	}
	rep.br.Success()
	rep.served.Add(1)
	rt.forwarded.Add(1)
	rt.relay(w, resp, rep)
}

// ReplicaHealth is one replica's row in the router /healthz reply.
type ReplicaHealth struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Breaker string `json:"breaker"`
	Served  uint64 `json:"served"`
	Failed  uint64 `json:"failed"`
	// Calibration is the replica's last-probed calibration digest
	// ("uncalibrated" when it compiles on the uniform device; empty
	// before the first successful probe). Divergent digests across rows
	// mean the fleet disagrees on what it is compiling for.
	Calibration string `json:"calibration,omitempty"`
}

// RouterHealth is the router's /healthz reply: the cluster as the
// router sees it.
type RouterHealth struct {
	Status       string          `json:"status"` // "ok" or "degraded"
	Replicas     []ReplicaHealth `json:"replicas"`
	Forwarded    uint64          `json:"forwarded"`
	Failovers    uint64          `json:"failovers"`
	Hedges       uint64          `json:"hedges"`
	Refused      uint64          `json:"refused"`
	LatencyP50Ms float64         `json:"latency_p50_ms"`
	LatencyP99Ms float64         `json:"latency_p99_ms"`
	Samples      int             `json:"latency_samples"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := RouterHealth{
		Forwarded: rt.forwarded.Load(),
		Failovers: rt.failovers.Load(),
		Hedges:    rt.hedges.Load(),
		Refused:   rt.refused.Load(),
	}
	routable := 0
	for _, name := range rt.ring.Names() {
		rep := rt.replicas[name]
		state := rep.br.State()
		if state != Open {
			routable++
		}
		digest, _ := rep.calDigest.Load().(string)
		h.Replicas = append(h.Replicas, ReplicaHealth{
			Name:        rep.name,
			URL:         rep.base.String(),
			Breaker:     state.String(),
			Served:      rep.served.Load(),
			Failed:      rep.failed.Load(),
			Calibration: digest,
		})
	}
	h.Status = "ok"
	if routable == 0 {
		h.Status = "degraded"
	} else if routable < len(rt.replicas) {
		h.Status = "degraded"
	}
	if p50, n := rt.lat.Percentile(0.50); n > 0 {
		p99, _ := rt.lat.Percentile(0.99)
		h.LatencyP50Ms = float64(p50) / float64(time.Millisecond)
		h.LatencyP99Ms = float64(p99) / float64(time.Millisecond)
		h.Samples = n
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h) //nolint:errcheck
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	for _, rep := range rt.replicas {
		if rep.br.State() != Open {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n")) //nolint:errcheck
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("no routable replicas\n")) //nolint:errcheck
}
