package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"surfcomm"
	"surfcomm/internal/cluster"
	"surfcomm/internal/service"
)

// qasmVariant returns a small, distinct circuit per m — distinct
// circuits give distinct routing keys, which is how the tests steer
// requests at specific replicas.
func qasmVariant(t *testing.T, m int) string {
	t.Helper()
	circ, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: m, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := surfcomm.WriteQASM(&buf, circ); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func compileBody(t *testing.T, qasm string) []byte {
	t.Helper()
	b, err := json.Marshal(service.Request{QASM: qasm})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fakeReplica is a scriptable upstream: the handler can be swapped
// atomically and per-path hits are counted.
type fakeReplica struct {
	name    string
	srv     *httptest.Server
	hits    atomic.Uint64
	handler atomic.Value // func(http.ResponseWriter, *http.Request)
}

func (f *fakeReplica) setHandler(h http.HandlerFunc) { f.handler.Store(h) }

// ok200 answers every request with a tiny JSON body.
func ok200(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"cached":false}`)
}

func newFakeFleet(t *testing.T, names ...string) ([]*fakeReplica, []cluster.ReplicaConfig) {
	t.Helper()
	fleet := make([]*fakeReplica, len(names))
	cfgs := make([]cluster.ReplicaConfig, len(names))
	for i, name := range names {
		f := &fakeReplica{name: name}
		f.setHandler(ok200)
		f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.hits.Add(1)
			f.handler.Load().(http.HandlerFunc)(w, r)
		}))
		t.Cleanup(f.srv.Close)
		fleet[i] = f
		cfgs[i] = cluster.ReplicaConfig{Name: name, URL: f.srv.URL}
	}
	return fleet, cfgs
}

func newRouter(t *testing.T, cfg cluster.Config) (*cluster.Router, *httptest.Server) {
	t.Helper()
	rt, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return rt, srv
}

// ownerOf mirrors the router's key derivation so tests can predict
// placement.
func ownerOf(t *testing.T, names []string, qasm string) string {
	t.Helper()
	key, err := service.RoutingKey(service.Request{QASM: qasm})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.NewRing(names).Owner(key)
}

func postCompile(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// routerHealth fetches and decodes the router's own /healthz.
func routerHealth(t *testing.T, url string) cluster.RouterHealth {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h cluster.RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRouterAffinity pins the tentpole routing property: the same
// request body always lands on the ring-predicted owner, so each
// shard's cache stays hot.
func TestRouterAffinity(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	_, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{Replicas: cfgs})

	seenReplica := map[string]bool{}
	for m := 4; m <= 15; m++ {
		qasm := qasmVariant(t, m)
		body := compileBody(t, qasm)
		want := ownerOf(t, names, qasm)
		for rep := 0; rep < 3; rep++ {
			resp := postCompile(t, srv.URL, body)
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("m=%d: status %d", m, resp.StatusCode)
			}
			if got := resp.Header.Get(cluster.ReplicaHeader); got != want {
				t.Fatalf("m=%d repeat %d served by %q, ring owner is %q", m, rep, got, want)
			}
		}
		seenReplica[want] = true
	}
	if len(seenReplica) < 2 {
		t.Fatalf("12 distinct circuits all owned by %v — ring is not spreading", seenReplica)
	}
}

// TestRouterFailoverAndRecovery: a 503-ing owner is failed over, its
// breaker opens after the threshold (stopping further contact), and
// once it recovers the cooldown trial routes the key home again.
func TestRouterFailoverAndRecovery(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{
		Replicas:      cfgs,
		FailThreshold: 2,
		Cooldown:      150 * time.Millisecond,
	})

	qasm := qasmVariant(t, 9)
	body := compileBody(t, qasm)
	owner := ownerOf(t, names, qasm)
	var ownerRep *fakeReplica
	for _, f := range fleet {
		if f.name == owner {
			ownerRep = f
		}
	}
	ownerRep.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	})

	// Two requests: each fails on the owner and is served by the next
	// replica on the ring. The second failure trips the breaker.
	failoverTarget := ""
	for i := 0; i < 2; i++ {
		resp := postCompile(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want failover 200", i, resp.StatusCode)
		}
		got := resp.Header.Get(cluster.ReplicaHeader)
		if got == owner {
			t.Fatalf("request %d served by the 503-ing owner", i)
		}
		if failoverTarget == "" {
			failoverTarget = got
		} else if got != failoverTarget {
			t.Fatalf("failover flapped between %q and %q", failoverTarget, got)
		}
	}

	// Breaker open: the owner is skipped without being contacted.
	before := ownerRep.hits.Load()
	resp := postCompile(t, srv.URL, body)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-trip status %d", resp.StatusCode)
	}
	if ownerRep.hits.Load() != before {
		t.Fatal("open breaker did not stop traffic to the failed owner")
	}
	h := routerHealth(t, srv.URL)
	for _, rh := range h.Replicas {
		if rh.Name == owner && rh.Breaker == "closed" {
			t.Fatalf("owner breaker still closed in /healthz: %+v", rh)
		}
	}
	if h.Failovers == 0 {
		t.Fatal("healthz reports zero failovers")
	}

	// Owner recovers; after the cooldown the half-open trial lands on
	// it and re-closes the breaker.
	ownerRep.setHandler(ok200)
	time.Sleep(200 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := postCompile(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.Header.Get(cluster.ReplicaHeader) == owner {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered owner never re-acquired its key")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRouter429PassThrough: a rate-limited reply is the replica doing
// its job — it must relay verbatim with its Retry-After, not fail over
// to give the client a fresh bucket, and must not trip the breaker.
func TestRouter429PassThrough(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{Replicas: cfgs, FailThreshold: 2})

	qasm := qasmVariant(t, 11)
	body := compileBody(t, qasm)
	owner := ownerOf(t, names, qasm)
	var others []*fakeReplica
	for _, f := range fleet {
		if f.name == owner {
			f.setHandler(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", "7")
				http.Error(w, "rate limited", http.StatusTooManyRequests)
			})
		} else {
			others = append(others, f)
		}
	}
	for i := 0; i < 3; i++ {
		resp := postCompile(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429 passed through", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Fatalf("Retry-After %q, want 7", ra)
		}
		if got := resp.Header.Get(cluster.ReplicaHeader); got != owner {
			t.Fatalf("429 served by %q, want owner %q", got, owner)
		}
	}
	for _, f := range others {
		if f.hits.Load() != 0 {
			t.Fatalf("429 failed over to %s", f.name)
		}
	}
	// Three 429s with threshold 2 did not open the breaker.
	for _, rh := range routerHealth(t, srv.URL).Replicas {
		if rh.Name == owner && rh.Breaker != "closed" {
			t.Fatalf("429s tripped the owner breaker: %+v", rh)
		}
	}
}

// TestRouterAllOpenDegradesHonestly: when every replica is broken the
// router answers 503 with a Retry-After instead of hanging, and once
// all breakers are open it stops contacting upstreams entirely.
func TestRouterAllOpenDegradesHonestly(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{
		Replicas:      cfgs,
		FailThreshold: 1,
		Cooldown:      time.Minute, // long: no half-open trials during the test
	})
	for _, f := range fleet {
		f.setHandler(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		})
	}
	body := compileBody(t, qasmVariant(t, 8))

	resp := postCompile(t, srv.URL, body)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	// All breakers tripped (threshold 1): the next request is refused
	// locally, with zero upstream contact.
	var before uint64
	for _, f := range fleet {
		before += f.hits.Load()
	}
	resp = postCompile(t, srv.URL, body)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("refused status %d, want 503", resp.StatusCode)
	}
	var after uint64
	for _, f := range fleet {
		after += f.hits.Load()
	}
	if after != before {
		t.Fatal("refused request still contacted upstreams")
	}

	// Router readiness mirrors the breaker view.
	rr, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body) //nolint:errcheck
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with all breakers open, want 503", rr.StatusCode)
	}
	if h := routerHealth(t, srv.URL); h.Status != "degraded" || h.Refused == 0 {
		t.Fatalf("healthz = %+v, want degraded with refusals", h)
	}
}

// TestRouterStreamPassthroughUnbuffered proves NDJSON lines cross the
// router as they are flushed: the upstream blocks after its first line
// until the client has observably received it.
func TestRouterStreamPassthroughUnbuffered(t *testing.T) {
	names := []string{"r0", "r1"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{Replicas: cfgs})

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate() // never leave the upstream handler blocked

	stream := func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept"), service.NDJSONContentType) {
			ok200(w, r)
			return
		}
		w.Header().Set("Content-Type", service.NDJSONContentType)
		fmt.Fprintln(w, `{"stage":"resolved"}`)
		w.(http.Flusher).Flush()
		<-gate
		fmt.Fprintln(w, `{"cached":true}`)
	}
	for _, f := range fleet {
		f.setHandler(stream)
	}

	body := compileBody(t, qasmVariant(t, 10))
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", service.NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != service.NDJSONContentType {
		t.Fatalf("Content-Type %q not relayed", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	// The first line arrived while the upstream is still blocked on the
	// gate — the router did not buffer the stream to completion.
	if got := sc.Text(); got != `{"stage":"resolved"}` {
		t.Fatalf("first line %q", got)
	}
	openGate()
	if !sc.Scan() {
		t.Fatalf("no final line: %v", sc.Err())
	}
	if got := sc.Text(); got != `{"cached":true}` {
		t.Fatalf("final line %q", got)
	}
}

// TestRouterBatchScatterGather: a mixed batch is split by owner,
// shards run on their own replicas, a dead owner's shard fails over,
// and the slots come back in request order.
func TestRouterBatchScatterGather(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{Replicas: cfgs, FailThreshold: 3})

	// Each fake answers /batch by echoing its own name into every
	// slot's digest, so the reassembled reply reveals the placement.
	batchEcho := func(name string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var reqs []service.Request
			if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			out := make([]service.CompileResponse, len(reqs))
			for i := range out {
				out[i] = service.CompileResponse{Digest: name, Cached: true}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(out) //nolint:errcheck
		}
	}
	for _, f := range fleet {
		f.setHandler(batchEcho(f.name))
	}

	var reqs []service.Request
	var wantOwner []string
	ownersSeen := map[string]bool{}
	for m := 4; m <= 12; m++ {
		qasm := qasmVariant(t, m)
		reqs = append(reqs, service.Request{QASM: qasm})
		o := ownerOf(t, names, qasm)
		wantOwner = append(wantOwner, o)
		ownersSeen[o] = true
	}
	if len(ownersSeen) < 2 {
		t.Fatalf("test circuits all map to %v; need a multi-owner batch", ownersSeen)
	}
	body, _ := json.Marshal(reqs)

	resp, err := http.Post(srv.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var slots []service.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&slots); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(slots) != len(reqs) {
		t.Fatalf("%d slots for %d requests", len(slots), len(reqs))
	}
	for i, slot := range slots {
		if slot.Digest != wantOwner[i] {
			t.Errorf("slot %d served by %q, owner is %q", i, slot.Digest, wantOwner[i])
		}
	}

	// Kill one owner: its shard fails over to another replica; every
	// slot still comes back without error.
	dead := wantOwner[0]
	for _, f := range fleet {
		if f.name == dead {
			f.setHandler(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "down", http.StatusServiceUnavailable)
			})
		}
	}
	resp, err = http.Post(srv.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	slots = nil
	if err := json.NewDecoder(resp.Body).Decode(&slots); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover batch status %d", resp.StatusCode)
	}
	for i, slot := range slots {
		if slot.Error != "" {
			t.Errorf("slot %d errored after failover: %s", i, slot.Error)
		}
		if wantOwner[i] == dead && slot.Digest == dead {
			t.Errorf("slot %d still served by the dead owner", i)
		}
	}
}

// TestRouterBatch429AllOrNothing: one shard's rate-limit rejection
// fails the whole batch with 429, matching single-replica semantics.
func TestRouterBatch429AllOrNothing(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{Replicas: cfgs})

	var reqs []service.Request
	ownersSeen := map[string]bool{}
	for m := 4; m <= 12; m++ {
		qasm := qasmVariant(t, m)
		reqs = append(reqs, service.Request{QASM: qasm})
		ownersSeen[ownerOf(t, names, qasm)] = true
	}
	if len(ownersSeen) < 2 {
		t.Skip("circuits map to a single owner; cannot exercise multi-shard 429")
	}
	limited := ""
	for o := range ownersSeen {
		limited = o
		break
	}
	for _, f := range fleet {
		if f.name == limited {
			f.setHandler(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", "3")
				http.Error(w, "limited", http.StatusTooManyRequests)
			})
		} else {
			f.setHandler(func(w http.ResponseWriter, r *http.Request) {
				var sub []service.Request
				json.NewDecoder(r.Body).Decode(&sub) //nolint:errcheck
				out := make([]service.CompileResponse, len(sub))
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(out) //nolint:errcheck
			})
		}
	}
	body, _ := json.Marshal(reqs)
	resp, err := http.Post(srv.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status %d, want all-or-nothing 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want 3", ra)
	}
}

// TestRouterHedging: once the latency window is warm, a request whose
// owner stalls is hedged to the next replica and answered fast.
func TestRouterHedging(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	fleet, cfgs := newFakeFleet(t, names...)
	_, srv := newRouter(t, cluster.Config{
		Replicas:        cfgs,
		HedgePercentile: 0.5,
		HedgeMinSamples: 4,
	})

	// Find one circuit per owner so we can warm the sampler on fast
	// replicas and then stall a different owner.
	byOwner := map[string][]byte{}
	for m := 4; m <= 20 && len(byOwner) < len(names); m++ {
		qasm := qasmVariant(t, m)
		o := ownerOf(t, names, qasm)
		if _, ok := byOwner[o]; !ok {
			byOwner[o] = compileBody(t, qasm)
		}
	}
	if len(byOwner) < 2 {
		t.Skip("not enough distinct owners among test circuits")
	}
	var slowOwner string
	for o := range byOwner {
		slowOwner = o
		break
	}
	const stall = 400 * time.Millisecond
	for _, f := range fleet {
		if f.name == slowOwner {
			f.setHandler(func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(stall)
				ok200(w, r)
			})
		}
	}

	// Warm the latency sampler with fast requests on other owners.
	for o, body := range byOwner {
		if o == slowOwner {
			continue
		}
		for i := 0; i < 6; i++ {
			resp := postCompile(t, srv.URL, body)
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}

	start := time.Now()
	resp := postCompile(t, srv.URL, byOwner[slowOwner])
	elapsed := time.Since(start)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.ReplicaHeader); got == slowOwner {
		t.Fatalf("hedge did not win: served by stalled owner %q after %v", got, elapsed)
	}
	if elapsed >= stall {
		t.Fatalf("hedged request took %v, no faster than the stall %v", elapsed, stall)
	}
	if h := routerHealth(t, srv.URL); h.Hedges == 0 {
		t.Fatal("healthz reports zero hedges")
	}
}
