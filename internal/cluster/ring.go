// Package cluster is the fleet-serving tier over surfcommd: a
// consistent-hash router that shards compile requests across replicas
// by plan digest, with active health probing, per-replica circuit
// breakers, bounded failover, and optional request hedging. The paper's
// toolflow is embarrassingly shardable — every compile is keyed by a
// content digest — but per-request compile cost is wildly heterogeneous
// (circuit size × distance × device defects), so the fleet must
// tolerate slow and dead replicas, not merely spread load: that
// robustness, not the hashing, is this package's reason to exist.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring is a rendezvous (highest-random-weight) hash over a fixed
// replica set. Rendezvous hashing gives the two properties the plan
// keyspace needs with no virtual-node tuning: every key has a full
// preference order over replicas (the natural failover sequence), and
// removing a replica remaps only the keys it owned — the survivors'
// slices, and therefore their warm caches and disk stores, are
// untouched.
type Ring struct {
	names []string
}

// NewRing builds a ring over the replica names (order-insensitive;
// duplicates collapse).
func NewRing(names []string) *Ring {
	seen := make(map[string]struct{}, len(names))
	uniq := make([]string, 0, len(names))
	for _, n := range names {
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return &Ring{names: uniq}
}

// Len returns the replica count.
func (r *Ring) Len() int { return len(r.names) }

// Names returns the replicas in stable (sorted) order.
func (r *Ring) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// score is the rendezvous weight of (replica, key): FNV-64a over
// key+"\0"+name, finished with a splitmix64 avalanche. The key goes
// first and the finalizer is not optional: FNV differences introduced
// in the leading bytes propagate as a *constant* offset for equal-length
// suffixes, so hashing name-first makes the pairwise ordering of two
// replicas nearly constant across all same-length keys — one replica
// can end up owning almost nothing. The avalanche decorrelates the
// orderings per key.
func score(name, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return splitmix64(h.Sum64())
}

// splitmix64 is the finalizer from the SplitMix64 generator: a cheap
// full-avalanche bijection on 64-bit words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the replica that owns key — the head of Ranked(key).
// Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	best, bestScore := "", uint64(0)
	for _, n := range r.names {
		if s := score(n, key); best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Ranked returns every replica ordered by descending rendezvous score
// for key: the owner first, then the failover sequence. The order is a
// pure function of (replicas, key) — every router instance computes the
// same preference list, and removing the owner promotes exactly the
// second-ranked replica without disturbing any other key's order.
func (r *Ring) Ranked(key string) []string {
	type ranked struct {
		name  string
		score uint64
	}
	rs := make([]ranked, len(r.names))
	for i, n := range r.names {
		rs[i] = ranked{n, score(n, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].name < rs[j].name
	})
	out := make([]string, len(rs))
	for i, x := range rs {
		out[i] = x.name
	}
	return out
}
