package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestRingOwnerStability pins the consistent-hashing property that
// justifies sharding at all: removing one replica remaps only the keys
// it owned — every other key keeps its owner, so the survivors' caches
// stay hot.
func TestRingOwnerStability(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	full := NewRing(names)
	const keys = 2000
	owners := make([]string, keys)
	for i := range owners {
		owners[i] = full.Owner(fmt.Sprintf("digest-%04d", i))
	}

	for drop := range names {
		var survivors []string
		survivors = append(survivors, names[:drop]...)
		survivors = append(survivors, names[drop+1:]...)
		small := NewRing(survivors)
		moved, owned := 0, 0
		for i := range owners {
			key := fmt.Sprintf("digest-%04d", i)
			if owners[i] == names[drop] {
				owned++
				continue // this key had to move
			}
			if small.Owner(key) != owners[i] {
				moved++
			}
		}
		if moved != 0 {
			t.Errorf("dropping %q moved %d keys it did not own", names[drop], moved)
		}
		if owned == 0 {
			t.Errorf("replica %q owned no keys out of %d — ring is unbalanced", names[drop], keys)
		}
	}
}

// TestRingRankedIsPermutationWithOwnerFirst checks Ranked's contract:
// a full permutation headed by Owner, stable across calls.
func TestRingRankedIsPermutationWithOwnerFirst(t *testing.T) {
	r := NewRing([]string{"x", "y", "z"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		ranked := r.Ranked(key)
		if len(ranked) != 3 {
			t.Fatalf("Ranked(%q) = %v, want 3 entries", key, ranked)
		}
		if ranked[0] != r.Owner(key) {
			t.Fatalf("Ranked(%q)[0] = %q != Owner %q", key, ranked[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range ranked {
			if seen[n] {
				t.Fatalf("Ranked(%q) repeats %q", key, n)
			}
			seen[n] = true
		}
	}
}

// TestRingBalance: rendezvous hashing should spread a synthetic digest
// population roughly evenly — no replica with fewer than half or more
// than double its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"r0", "r1", "r2"})
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("%x", i*2654435761))]++
	}
	fair := keys / 3
	for name, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("replica %s owns %d of %d keys (fair share %d)", name, n, keys, fair)
		}
	}
}

// TestBreakerLifecycle drives Closed→Open→HalfOpen→Closed and
// HalfOpen→Open with a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 2*time.Second)
	b.now = func() time.Time { return now }

	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker must be Closed and allowing")
	}
	// Two failures: still closed (threshold 3).
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want Closed", b.State())
	}
	// A success clears the strike count.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("Open breaker inside cooldown must refuse")
	}
	if ra := b.RetryAfter(); ra != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", ra)
	}

	// Cooldown elapses: the next caller is the HalfOpen trial.
	now = now.Add(2 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want HalfOpen", b.State())
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker must admit the trial request")
	}
	// Trial fails: straight back to Open, new cooldown window.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed trial must re-open the breaker")
	}

	// Second trial succeeds: Closed again.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second trial refused")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful trial = %v, want Closed", b.State())
	}
	// And a single failure no longer trips it (counter was reset).
	b.Failure()
	if b.State() != Closed {
		t.Fatal("one failure after recovery tripped the breaker")
	}
}

// TestBreakerDefaults: zero config selects the documented defaults.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != DefaultFailThreshold || b.cooldown != DefaultCooldown {
		t.Fatalf("defaults = (%d, %v), want (%d, %v)",
			b.threshold, b.cooldown, DefaultFailThreshold, DefaultCooldown)
	}
}

// TestSamplerPercentiles sanity-checks the latency window.
func TestSamplerPercentiles(t *testing.T) {
	s := newSampler(100)
	if _, n := s.Percentile(0.5); n != 0 {
		t.Fatal("empty sampler reported samples")
	}
	for i := 1; i <= 100; i++ {
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	p50, n := s.Percentile(0.50)
	if n != 100 {
		t.Fatalf("samples = %d, want 100", n)
	}
	if p50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", p50)
	}
	p99, _ := s.Percentile(0.99)
	if p99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", p99)
	}
	// Ring wraps: after 50 more samples of 1s, the window holds the
	// newest 100.
	for i := 0; i < 50; i++ {
		s.Observe(time.Second)
	}
	p99, _ = s.Percentile(0.99)
	if p99 != time.Second {
		t.Fatalf("p99 after wrap = %v, want 1s", p99)
	}
}
