package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"surfcomm/internal/service"
)

// ReplicaHeader is the response header naming which replica served a
// routed request — the load generator uses it to measure keyspace
// balance, and operators use it to attribute tail latency.
const ReplicaHeader = "X-Surfcomm-Replica"

// maxProxyBody caps the buffered request body, mirroring the replicas'
// own decode cap so the router never buffers more than a replica would
// accept.
const maxProxyBody = 16 << 20

// ReplicaConfig names one surfcommd replica.
type ReplicaConfig struct {
	Name string // stable identity on the ring (survives URL changes)
	URL  string // base URL, e.g. http://127.0.0.1:8723
}

// Config tunes the router.
type Config struct {
	Replicas []ReplicaConfig

	// MaxAttempts bounds failover: how many distinct replicas one
	// request may be sent to. Zero selects min(3, len(Replicas)).
	MaxAttempts int

	// FailThreshold / Cooldown tune the per-replica breakers (zero
	// selects the package defaults).
	FailThreshold int
	Cooldown      time.Duration

	// ProbeInterval / ProbeTimeout tune the active health prober
	// started by Start. Zero selects 1s for both.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// HedgePercentile, when in (0,1), arms request hedging: once a
	// request outlives that percentile of recent latencies, a second
	// copy is raced against the next replica on the ring and the first
	// usable answer wins. Zero disables hedging.
	HedgePercentile float64
	// HedgeMinSamples is how many latency samples must exist before
	// hedging arms (zero selects 32) — hedging off a cold sampler
	// would fire on noise.
	HedgeMinSamples int

	// Transport overrides the upstream round-tripper (tests).
	Transport http.RoundTripper

	// Logf receives operational events (failovers, breaker trips);
	// nil discards them.
	Logf func(format string, args ...any)
}

// replica is one upstream plus its health state.
type replica struct {
	name   string
	base   *url.URL
	br     *Breaker
	served atomic.Uint64 // responses relayed from this replica
	failed atomic.Uint64 // connection errors + 5xx from this replica
	// calDigest is the replica's last-probed calibration digest
	// ("uncalibrated" for replicas compiling on the uniform device) —
	// replicas disagreeing here split the plan keyspace, so the prober
	// logs every change and /healthz reports the fleet view.
	calDigest atomic.Value // string
}

// Router is the consistent-hash front door: it owns the ring, the
// breakers, the prober, and the failover/hedging proxy logic. It is an
// http.Handler serving the same endpoint surface as a single surfcommd,
// plus its own /healthz (cluster view) and /readyz (≥1 replica
// routable).
type Router struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	client   *http.Client
	mux      *http.ServeMux
	lat      *sampler
	logf     func(string, ...any)

	forwarded atomic.Uint64 // requests relayed end to end
	failovers atomic.Uint64 // attempts beyond the first
	hedges    atomic.Uint64 // hedge attempts fired
	refused   atomic.Uint64 // 503s issued because no replica was routable
	rr        atomic.Uint64 // round-robin cursor for unkeyed streams

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a router over the replica set. It does not start the
// prober; call Start for that (tests drive breakers directly).
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rt := &Router{
		cfg:       cfg,
		replicas:  make(map[string]*replica, len(cfg.Replicas)),
		lat:       newSampler(0),
		logf:      logf,
		probeStop: make(chan struct{}),
	}
	names := make([]string, 0, len(cfg.Replicas))
	for _, rc := range cfg.Replicas {
		name := rc.Name
		if name == "" {
			name = rc.URL
		}
		u, err := url.Parse(rc.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: replica %q: bad URL %q", name, rc.URL)
		}
		if _, dup := rt.replicas[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", name)
		}
		rt.replicas[name] = &replica{
			name: name,
			base: u,
			br:   NewBreaker(cfg.FailThreshold, cfg.Cooldown),
		}
		names = append(names, name)
	}
	rt.ring = NewRing(names)
	transport := cfg.Transport
	if transport == nil {
		// Per-replica connection pools sized for a fleet front door.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 64
		transport = t
	}
	rt.client = &http.Client{Transport: transport}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", rt.handleKeyed)
	mux.HandleFunc("POST /estimate", rt.handleKeyed)
	mux.HandleFunc("POST /batch", rt.handleBatch)
	mux.HandleFunc("POST /decode", rt.handleDecodeStream)
	mux.HandleFunc("GET /models", rt.handleUnkeyed)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	rt.mux = mux
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Start launches the active health prober. Safe to call once.
func (rt *Router) Start() {
	rt.startOnce.Do(func() {
		interval := rt.cfg.ProbeInterval
		if interval <= 0 {
			interval = time.Second
		}
		rt.probeWG.Add(1)
		go rt.probeLoop(interval)
	})
}

// Close stops the prober and idle upstream connections.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.probeStop) })
	rt.probeWG.Wait()
	rt.client.CloseIdleConnections()
}

func (rt *Router) probeLoop(interval time.Duration) {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	timeout := rt.cfg.ProbeTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		// An Open breaker inside its cooldown is left alone: probing it
		// early would either flap it HalfOpen ahead of schedule or pile
		// connection attempts on a replica that is likely restarting.
		if rep.br.State() == Open && rep.br.RetryAfter() > 0 {
			continue
		}
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.JoinPath("/readyz").String(), nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rep.br.Failure()
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if rep.br.State() != Closed {
					rt.logf("cluster: probe closed breaker for %s", rep.name)
				}
				rep.br.Success()
				rt.probeCalibration(ctx, rep)
			} else {
				rep.br.Failure()
			}
		}(rep)
	}
	wg.Wait()
}

// probeCalibration relays a ready replica's /healthz calibration view
// into the probe log: the digest identifies which snapshot the replica
// compiles under, so a fleet serving divergent calibrations (one
// replica restarted onto a fresher snapshot) is visible the moment the
// prober sees it. Only changes are logged; probe failures here are
// silent (readiness already passed — a slow /healthz is not an outage).
func (rt *Router) probeCalibration(ctx context.Context, rep *replica) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.JoinPath("/healthz").String(), nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		return
	}
	var h struct {
		Calibration *service.CalibrationHealth `json:"calibration"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) != nil {
		return
	}
	digest := "uncalibrated"
	if h.Calibration != nil && h.Calibration.Digest != "" {
		digest = h.Calibration.Digest
	}
	if prev, _ := rep.calDigest.Swap(digest).(string); prev != digest {
		if h.Calibration != nil {
			rt.logf("cluster: probe: %s calibration %q digest %.12s… age %.0fs",
				rep.name, h.Calibration.Name, digest, h.Calibration.AgeSeconds)
		} else {
			rt.logf("cluster: probe: %s uncalibrated", rep.name)
		}
	}
}

// rankedAllowed returns the failover sequence for key, filtered to
// replicas whose breakers admit traffic right now, capped at the
// attempt budget. An empty key falls back to ring order (requests the
// router cannot key still deserve failover).
func (rt *Router) rankedAllowed(key string) []*replica {
	var names []string
	if key != "" {
		names = rt.ring.Ranked(key)
	} else {
		names = rt.ring.Names()
	}
	maxAttempts := rt.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	out := make([]*replica, 0, maxAttempts)
	for _, n := range names {
		rep := rt.replicas[n]
		if !rep.br.Allow() {
			continue
		}
		out = append(out, rep)
		if len(out) == maxAttempts {
			break
		}
	}
	return out
}

// refuse answers the honest all-owners-open 503: every routable replica
// is broken, so tell the client when the earliest breaker will re-admit
// a trial rather than hanging or lying with a 200.
func (rt *Router) refuse(w http.ResponseWriter) {
	rt.refused.Add(1)
	const maxDur = time.Duration(1<<63 - 1)
	retry := maxDur
	for _, rep := range rt.replicas {
		if ra := rep.br.RetryAfter(); ra < retry {
			retry = ra
		}
	}
	secs := 1
	if retry > 0 && retry < maxDur {
		secs = int(retry/time.Second) + 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck
		"error": "cluster: no replica available; all circuit breakers open",
	})
}

// handleKeyed serves /compile and /estimate: buffer the body, derive
// the routing key from the request content, and forward along the
// key's failover sequence.
func (rt *Router) handleKeyed(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		http.Error(w, "cluster: reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxProxyBody {
		http.Error(w, "cluster: request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	key := ""
	var req service.Request
	if json.Unmarshal(body, &req) == nil {
		// RoutingKey failures (empty or malformed QASM) leave the key
		// empty: the request is forwarded unkeyed and the replica
		// answers with its usual 400.
		key, _ = service.RoutingKey(req) //nolint:errcheck
	}
	ranked := rt.rankedAllowed(key)
	if len(ranked) == 0 {
		rt.refuse(w)
		return
	}
	rt.forward(w, r, ranked, body)
}

// handleUnkeyed serves body-less GETs (/models): any replica can
// answer, so walk ring order with failover.
func (rt *Router) handleUnkeyed(w http.ResponseWriter, r *http.Request) {
	ranked := rt.rankedAllowed("")
	if len(ranked) == 0 {
		rt.refuse(w)
		return
	}
	rt.forward(w, r, ranked, nil)
}

// failover reports whether one upstream result is a replica-level
// failure. Connection errors and 5xx fail over; 429 is the replica
// correctly enforcing a client's rate limit — failing over would let
// clients shop for a fresh bucket, so it relays as-is; all other
// statuses (2xx and client errors) relay and count as healthy.
func failover(resp *http.Response, err error) bool {
	return err != nil || resp.StatusCode >= 500
}

// do sends one copy of the request to one replica. A nil body means a
// body-less method (GET).
func (rt *Router) do(ctx context.Context, rep *replica, r *http.Request, body []byte) (*http.Response, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	u := rep.base.JoinPath(r.URL.Path)
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), rdr)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	// The router is the trust boundary: overwrite, never append, so a
	// client-supplied X-Forwarded-For can't spoof another's rate
	// bucket on replicas running -trust-forwarded.
	if host, _, splitErr := net.SplitHostPort(r.RemoteAddr); splitErr == nil {
		req.Header.Set(service.ForwardedForHeader, host)
	} else if r.RemoteAddr != "" {
		req.Header.Set(service.ForwardedForHeader, r.RemoteAddr)
	}
	return rt.client.Do(req)
}

// discard drains and closes a response we will not relay.
func discard(resp *http.Response) {
	if resp == nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
	resp.Body.Close()
}

// fail records a replica-level failure on both the breaker and the
// per-replica counter.
func (rep *replica) fail() {
	rep.br.Failure()
	rep.failed.Add(1)
}

// forward proxies one buffered (or body-less) request along its ranked
// failover sequence, optionally hedging the first attempt, and relays
// the first usable response. NDJSON responses are flushed chunk-by-
// chunk so streaming compiles pass through unbuffered.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, ranked []*replica, body []byte) {
	stream := strings.Contains(r.Header.Get("Accept"), service.NDJSONContentType)
	var sawRetryAfter string
	i := 0
	for i < len(ranked) {
		rep := ranked[i]
		start := time.Now()

		// Hedge only the first attempt of non-streaming requests: a
		// hedged stream would race two live NDJSON feeds for one
		// client connection.
		if i == 0 && !stream && len(ranked) > 1 {
			if delay, ok := rt.hedgeDelay(); ok {
				resp, winner, consumed, err := rt.hedgedDo(r, ranked[0], ranked[1], body, delay)
				if err == nil {
					// hedgedDo guarantees a relayable response on nil
					// error; failures were already charged inside.
					winner.br.Success()
					winner.served.Add(1)
					rt.forwarded.Add(1)
					rt.lat.Observe(time.Since(start))
					rt.relay(w, resp, winner)
					return
				}
				i += consumed
				if i < len(ranked) {
					rt.failovers.Add(1)
					rt.logf("cluster: failing over %s %s after hedged attempts (%v)", r.Method, r.URL.Path, err)
				}
				continue
			}
		}

		resp, err := rt.do(r.Context(), rep, r, body)
		if failover(resp, err) {
			rep.fail()
			if resp != nil {
				if ra := resp.Header.Get("Retry-After"); ra != "" {
					sawRetryAfter = ra
				}
				discard(resp)
			}
			i++
			if i < len(ranked) {
				rt.failovers.Add(1)
				rt.logf("cluster: failing over %s %s from %s (err=%v)", r.Method, r.URL.Path, rep.name, err)
			}
			continue
		}
		rep.br.Success()
		rep.served.Add(1)
		rt.forwarded.Add(1)
		rt.lat.Observe(time.Since(start))
		rt.relay(w, resp, rep)
		return
	}
	// Every allowed replica failed. If one of them told us when to come
	// back (a draining replica's 503 Retry-After), pass that through;
	// otherwise fall back to the breaker view.
	if sawRetryAfter != "" {
		rt.refused.Add(1)
		w.Header().Set("Retry-After", sawRetryAfter)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck
			"error": "cluster: all failover attempts exhausted",
		})
		return
	}
	rt.refuse(w)
}

// hedgeDelay reports the armed hedge trigger, if any.
func (rt *Router) hedgeDelay() (time.Duration, bool) {
	p := rt.cfg.HedgePercentile
	if p <= 0 || p >= 1 {
		return 0, false
	}
	minSamples := rt.cfg.HedgeMinSamples
	if minSamples <= 0 {
		minSamples = 32
	}
	d, n := rt.lat.Percentile(p)
	if n < minSamples || d <= 0 {
		return 0, false
	}
	return d, true
}

// hedgedDo races the primary replica against one hedge partner: the
// hedge fires only if the primary outlives delay, and the first usable
// response wins.
//
// Contract: on nil error the response is relayable and the caller owns
// its Success accounting; on non-nil error every consumed candidate's
// breaker has already been charged and `consumed` (1 or 2) tells the
// caller how far to advance its failover cursor. The losing in-flight
// attempt is cancelled and drained in the background.
func (rt *Router) hedgedDo(r *http.Request, primary, partner *replica, body []byte, delay time.Duration) (*http.Response, *replica, int, error) {
	type result struct {
		resp *http.Response
		err  error
		rep  *replica
	}
	base := r.Context()
	ctx1, cancel1 := context.WithCancel(base)
	cancels := []context.CancelFunc{cancel1}
	cancelAll := func() {
		for _, c := range cancels {
			c()
		}
	}
	ch := make(chan result, 2)
	launch := func(ctx context.Context, rep *replica) {
		resp, err := rt.do(ctx, rep, r, body)
		ch <- result{resp, err, rep}
	}
	go launch(ctx1, primary)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	fired := false
	pending := 1
	for {
		select {
		case <-timer.C:
			if !fired {
				fired = true
				pending++
				rt.hedges.Add(1)
				ctx2, cancel2 := context.WithCancel(base)
				cancels = append(cancels, cancel2)
				go launch(ctx2, partner)
			}
		case res := <-ch:
			pending--
			if !failover(res.resp, res.err) {
				// Winner. Reap the loser in the background.
				if n := pending; n > 0 {
					go func() {
						for j := 0; j < n; j++ {
							discard((<-ch).resp)
						}
						cancelAll()
					}()
					if res.rep == primary && len(cancels) > 1 {
						cancels[1]()
					} else if res.rep != primary {
						cancel1()
					}
				} else {
					cancelAll()
				}
				consumed := 1
				if fired {
					consumed = 2
				}
				return res.resp, res.rep, consumed, nil
			}
			// A failed candidate: charge it now, keep waiting if the
			// other attempt is still in flight.
			res.rep.fail()
			discard(res.resp)
			if pending > 0 {
				continue
			}
			cancelAll()
			if fired {
				return nil, nil, 2, fmt.Errorf("cluster: hedged attempts to %s and %s both failed", primary.name, partner.name)
			}
			// Primary failed before the hedge armed: don't burn the
			// partner here — the ordinary failover loop tries it next
			// with full accounting.
			return nil, nil, 1, fmt.Errorf("cluster: primary %s failed before hedge fired", primary.name)
		}
	}
}

// copyHeaders copies end-to-end headers, dropping hop-by-hop ones.
func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
			"Te", "Trailer", "Transfer-Encoding", "Upgrade":
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// relay copies one upstream response to the client, flushing per chunk
// when the payload is a stream.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, rep *replica) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set(ReplicaHeader, rep.name)
	w.WriteHeader(resp.StatusCode)
	flushEach := strings.Contains(resp.Header.Get("Content-Type"), service.NDJSONContentType)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flushEach {
				rc.Flush() //nolint:errcheck // dead client surfaces on the next write
			}
		}
		if err != nil {
			return
		}
	}
}
