package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"surfcomm"
	"surfcomm/internal/cluster"
	"surfcomm/internal/service"
)

// TestClusterEndToEndFailover is the PR's acceptance test: three real
// surfcommd service replicas behind the router, a mixed workload in
// flight, and one replica killed mid-load. Every request must be
// answered with 200, 429, or 503 — nothing hangs, nothing leaks a
// transport error to the client — and after the kill the router's
// breaker for the dead replica is open while the survivors absorb its
// keys.
func TestClusterEndToEndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster test")
	}
	names := []string{"e0", "e1", "e2"}
	servers := make([]*httptest.Server, len(names))
	cfgs := make([]cluster.ReplicaConfig, len(names))
	for i, name := range names {
		tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(tc, service.Config{TrustForwardedFor: true})
		servers[i] = httptest.NewServer(service.NewHandler(svc))
		cfgs[i] = cluster.ReplicaConfig{Name: name, URL: servers[i].URL}
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	rt, err := cluster.New(cluster.Config{
		Replicas:      cfgs,
		FailThreshold: 2,
		Cooldown:      400 * time.Millisecond,
		ProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// Mixed workload: four distinct circuits across two backends, so
	// the keyspace spans replicas and repeats hit warm caches.
	var bodies [][]byte
	for _, m := range []int{6, 8} {
		for _, backend := range []string{"braid", "planar"} {
			circ, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: m, Steps: 2})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := surfcomm.WriteQASM(&buf, circ); err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(service.Request{QASM: buf.String(), Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, b)
		}
	}

	const (
		workers     = 8
		perWorker   = 16
		killAtTotal = workers * perWorker / 3
	)
	client := &http.Client{Timeout: 15 * time.Second}
	var (
		sent      atomic.Int64
		killOnce  sync.Once
		statusMu  sync.Mutex
		statuses  = map[int]int{}
		transport = map[string]int{}
	)
	victim := servers[1]

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if sent.Add(1) == killAtTotal {
					// SIGKILL-equivalent: drop live connections and the
					// listener while requests are in flight.
					killOnce.Do(func() {
						victim.CloseClientConnections()
						victim.Close()
					})
				}
				body := bodies[(w*perWorker+i)%len(bodies)]
				resp, err := client.Post(front.URL+"/compile", "application/json", bytes.NewReader(body))
				statusMu.Lock()
				if err != nil {
					transport[fmt.Sprintf("%T", err)]++
				} else {
					statuses[resp.StatusCode]++
				}
				statusMu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()

	if len(transport) != 0 {
		t.Fatalf("transport-level failures leaked to the client: %v", transport)
	}
	total := 0
	for code, n := range statuses {
		total += n
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("unexpected status %d × %d — the cluster must answer only 200/429/503", code, n)
		}
	}
	if total != workers*perWorker {
		t.Fatalf("answered %d of %d requests", total, workers*perWorker)
	}
	if statuses[http.StatusOK] < total/2 {
		t.Fatalf("only %d/%d requests succeeded; failover is not absorbing the kill: %v",
			statuses[http.StatusOK], total, statuses)
	}

	// The router noticed: dead replica open, survivors carried load.
	resp, err := client.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h cluster.RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, rh := range h.Replicas {
		switch rh.Name {
		case "e1":
			if rh.Breaker == "closed" {
				t.Errorf("killed replica's breaker still closed: %+v", rh)
			}
		default:
			if rh.Served == 0 {
				t.Errorf("surviving replica %s served nothing: %+v", rh.Name, rh)
			}
		}
	}
	if h.Failovers == 0 {
		t.Error("healthz reports zero failovers after a mid-load kill")
	}

	// And the whole fleet still serves: a fresh request succeeds via
	// the survivors.
	resp, err = client.Post(front.URL+"/compile", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill compile status %d", resp.StatusCode)
	}
}
