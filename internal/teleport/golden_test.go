package teleport

import (
	"testing"

	"surfcomm/internal/apps"
	"surfcomm/internal/simd"
)

// TestGoldenDistributions pins the distribution results of the suite
// applications (SHA-1 excluded for runtime; its cells are drift-guarded
// through BENCH_planar.json) bit-identically to the pre-refactor
// map-based simulator: the ring calendar, pooled halves, and dense link
// tables must reproduce every stall, peak, and average exactly.
func TestGoldenDistributions(t *testing.T) {
	golden := map[string][4]Result{
		"GSE": {
			{WindowCycles: 0, BaseCycles: 9720, StallCycles: 7, ScheduleCycles: 9727, TotalPairs: 678, PeakLiveEPR: 20, AvgLiveEPR: 2.2304924437133753, LatencyOverhead: 0.000720164609053498},
			{WindowCycles: 9, BaseCycles: 9720, StallCycles: 0, ScheduleCycles: 9720, TotalPairs: 678, PeakLiveEPR: 20, AvgLiveEPR: 2.511111111111111, LatencyOverhead: 0},
			{WindowCycles: 19, BaseCycles: 9720, StallCycles: 0, ScheduleCycles: 9720, TotalPairs: 678, PeakLiveEPR: 40, AvgLiveEPR: 3.88559670781893, LatencyOverhead: 0},
			{WindowCycles: PrefetchAll, BaseCycles: 9720, StallCycles: 0, ScheduleCycles: 9720, TotalPairs: 678, PeakLiveEPR: 1356, AvgLiveEPR: 569.4314814814815, LatencyOverhead: 0},
		},
		"SQ": {
			{WindowCycles: 0, BaseCycles: 3708, StallCycles: 8, ScheduleCycles: 3716, TotalPairs: 730, PeakLiveEPR: 28, AvgLiveEPR: 6.666307857911733, LatencyOverhead: 0.002157497303128371},
			{WindowCycles: 9, BaseCycles: 3708, StallCycles: 0, ScheduleCycles: 3708, TotalPairs: 730, PeakLiveEPR: 28, AvgLiveEPR: 7.087378640776699, LatencyOverhead: 0},
			{WindowCycles: 19, BaseCycles: 3708, StallCycles: 0, ScheduleCycles: 3708, TotalPairs: 730, PeakLiveEPR: 48, AvgLiveEPR: 11.006472491909385, LatencyOverhead: 0},
			{WindowCycles: PrefetchAll, BaseCycles: 3708, StallCycles: 0, ScheduleCycles: 3708, TotalPairs: 730, PeakLiveEPR: 1460, AvgLiveEPR: 687.6844660194175, LatencyOverhead: 0},
		},
		"IM": {
			{WindowCycles: 0, BaseCycles: 1341, StallCycles: 229, ScheduleCycles: 1570, TotalPairs: 2430, PeakLiveEPR: 1316, AvgLiveEPR: 595.028025477707, LatencyOverhead: 0.17076808351976136},
			{WindowCycles: 9, BaseCycles: 1341, StallCycles: 220, ScheduleCycles: 1561, TotalPairs: 2430, PeakLiveEPR: 1316, AvgLiveEPR: 598.4586803331198, LatencyOverhead: 0.16405667412378822},
			{WindowCycles: 19, BaseCycles: 1341, StallCycles: 210, ScheduleCycles: 1551, TotalPairs: 2430, PeakLiveEPR: 1316, AvgLiveEPR: 607.2778852353321, LatencyOverhead: 0.15659955257270694},
			{WindowCycles: PrefetchAll, BaseCycles: 1341, StallCycles: 4, ScheduleCycles: 1345, TotalPairs: 2430, PeakLiveEPR: 4860, AvgLiveEPR: 2484, LatencyOverhead: 0.002982848620432513},
		},
	}
	d := NewDistributor() // shared scratch must not leak state across runs
	for _, w := range apps.Fig6Suite() {
		want, ok := golden[w.Name]
		if !ok {
			continue
		}
		sched, err := simd.Run(w.Circuit, simd.ConfigFor(w.Circuit.NumQubits, 1))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Distance: 9}
		jit := JITWindow(sched, cfg)
		for i, win := range []int64{0, jit / 2, jit, PrefetchAll} {
			got, err := d.Distribute(sched, win, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i] {
				t.Errorf("%s window %d drifted:\n got %+v\nwant %+v", w.Name, win, got, want[i])
			}
		}
	}
}
