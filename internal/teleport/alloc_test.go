package teleport

import (
	"testing"

	"surfcomm/internal/simd"
)

// TestDistributeZeroAlloc asserts a Distributor's launch-and-propagate
// loop is allocation-free in steady state: with the pooled halves, the
// ring calendar, and the dense link tables grown once, repeated
// distributions of a schedule allocate nothing.
func TestDistributeZeroAlloc(t *testing.T) {
	var moves []simd.Move
	for ts := 0; ts < 64; ts++ {
		for k := 0; k < 4; k++ {
			moves = append(moves, simd.Move{Timestep: ts, Qubit: k, From: k % 4, To: (k + 1) % 4})
		}
	}
	s := &simd.Schedule{
		Config:    simd.Config{Regions: 4, Width: 8},
		Timesteps: 64,
		Moves:     moves,
	}
	cfg := Config{Distance: 9, LinkBandwidth: 2}
	d := NewDistributor()
	windows := []int64{0, 16, 64, PrefetchAll}
	for _, w := range windows { // grow every buffer to its working size
		if _, err := d.Distribute(s, w, cfg); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range windows {
		w := w
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := d.Distribute(s, w, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("window %d: Distribute allocates %.1f times per run, want 0", w, allocs)
		}
	}
}
