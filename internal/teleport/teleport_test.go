package teleport

import (
	"testing"

	"surfcomm/internal/apps"
	"surfcomm/internal/layout"
	"surfcomm/internal/simd"
)

// fixedSchedule builds a synthetic Multi-SIMD schedule with the given
// moves, bypassing the scheduler.
func fixedSchedule(regions, timesteps int, moves []simd.Move) *simd.Schedule {
	return &simd.Schedule{
		Config:    simd.Config{Regions: regions, Width: 8},
		Timesteps: timesteps,
		Moves:     moves,
	}
}

func distribute(t *testing.T, s *simd.Schedule, w int64, cfg Config) Result {
	t.Helper()
	r, err := Distribute(s, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNoMovesNoStalls(t *testing.T) {
	s := fixedSchedule(4, 10, nil)
	r := distribute(t, s, 100, Config{Distance: 9})
	if r.StallCycles != 0 || r.ScheduleCycles != 90 {
		t.Errorf("empty move list: %+v", r)
	}
	if r.PeakLiveEPR != 0 {
		t.Errorf("peak live = %d, want 0", r.PeakLiveEPR)
	}
}

func TestGenerousWindowNoStall(t *testing.T) {
	s := fixedSchedule(4, 20, []simd.Move{{Timestep: 10, Qubit: 0, From: 0, To: 3}})
	r := distribute(t, s, PrefetchAll, Config{Distance: 8})
	if r.StallCycles != 0 {
		t.Errorf("prefetch-all should never stall, got %d", r.StallCycles)
	}
	if r.TotalPairs != 1 {
		t.Errorf("pairs = %d, want 1", r.TotalPairs)
	}
}

func TestTightWindowStalls(t *testing.T) {
	// Use at timestep 0 (cycle 0) with window 0: halves need travel
	// time, so the first timestep must stall.
	s := fixedSchedule(4, 5, []simd.Move{{Timestep: 0, Qubit: 0, From: 0, To: 3}})
	r := distribute(t, s, 0, Config{Distance: 8})
	if r.StallCycles <= 0 {
		t.Error("zero window with immediate use must stall")
	}
}

func TestStallMonotoneInWindow(t *testing.T) {
	var moves []simd.Move
	for ts := 0; ts < 30; ts++ {
		for k := 0; k < 4; k++ {
			moves = append(moves, simd.Move{Timestep: ts, Qubit: k, From: k % 4, To: (k + 1) % 4})
		}
	}
	s := fixedSchedule(4, 30, moves)
	cfg := Config{Distance: 8}
	prevStall := int64(1 << 60)
	prevPeak := 0
	for _, w := range []int64{0, 4, 8, 16, 32, 64, 256, PrefetchAll} {
		r := distribute(t, s, w, cfg)
		if r.StallCycles > prevStall {
			t.Errorf("stall increased with window %d: %d > %d", w, r.StallCycles, prevStall)
		}
		if r.PeakLiveEPR < prevPeak {
			t.Errorf("peak live decreased with window %d: %d < %d", w, r.PeakLiveEPR, prevPeak)
		}
		prevStall, prevPeak = r.StallCycles, r.PeakLiveEPR
	}
}

func TestPrefetchAllFloodsLivePairs(t *testing.T) {
	// A long schedule with steady traffic: prefetch-all keeps nearly
	// every half alive at once; JIT keeps a small working set. This is
	// the §8.1 qubit-saving effect.
	var moves []simd.Move
	for ts := 0; ts < 200; ts++ {
		moves = append(moves, simd.Move{Timestep: ts, Qubit: 0, From: 0, To: 3})
	}
	s := fixedSchedule(4, 200, moves)
	cfg := Config{Distance: 8}
	flood := distribute(t, s, PrefetchAll, cfg)
	jit := distribute(t, s, JITWindow(s, cfg), cfg)
	if flood.PeakLiveEPR <= 4*jit.PeakLiveEPR {
		t.Errorf("prefetch-all peak %d should dwarf JIT peak %d",
			flood.PeakLiveEPR, jit.PeakLiveEPR)
	}
	if jit.LatencyOverhead > 0.10 {
		t.Errorf("JIT latency overhead %.1f%% too high", 100*jit.LatencyOverhead)
	}
}

func TestLinkCongestionSpreadsArrivals(t *testing.T) {
	// Many pairs to the same destination in the same timestep: limited
	// bandwidth must stall a zero-slack launch plan more than a
	// high-bandwidth network.
	var moves []simd.Move
	for k := 0; k < 32; k++ {
		moves = append(moves, simd.Move{Timestep: 1, Qubit: k, From: 0, To: 3})
	}
	s := fixedSchedule(4, 3, moves)
	narrow := distribute(t, s, 16, Config{Distance: 8, LinkBandwidth: 1})
	wide := distribute(t, s, 16, Config{Distance: 8, LinkBandwidth: 16})
	if narrow.StallCycles <= wide.StallCycles {
		t.Errorf("bandwidth 1 stall %d should exceed bandwidth 16 stall %d",
			narrow.StallCycles, wide.StallCycles)
	}
}

// TestTooEarlyDistributionCausesTraffic pins the paper's §4.2 warning:
// "do not distribute EPRs too early since they may cause traffic".
// Two bursts of teleports, far apart in time: prefetch-all launches
// both at cycle 0, so the late burst's halves congest the factory
// outlinks and delay the early burst; a just-in-time window keeps the
// bursts separated and stalls less.
func TestTooEarlyDistributionCausesTraffic(t *testing.T) {
	// The late burst sits first in the move list, so under prefetch-all
	// its halves grab the cycle-0 link slots ahead of the urgent wave —
	// launch order, not need order, decides who moves first.
	var moves []simd.Move
	for k := 0; k < 24; k++ {
		moves = append(moves, simd.Move{Timestep: 30, Qubit: 100 + k, From: 0, To: 3})
	}
	for k := 0; k < 24; k++ {
		moves = append(moves, simd.Move{Timestep: 1, Qubit: k, From: 0, To: 3})
	}
	s := fixedSchedule(4, 32, moves)
	cfg := Config{Distance: 8, LinkBandwidth: 1}
	flood := distribute(t, s, PrefetchAll, cfg)
	jit := distribute(t, s, 64, cfg)
	if flood.StallCycles <= jit.StallCycles {
		t.Errorf("flooding should self-congest: flood stall %d vs JIT stall %d",
			flood.StallCycles, jit.StallCycles)
	}
	if flood.PeakLiveEPR <= jit.PeakLiveEPR {
		t.Errorf("flooding should also cost more live pairs: %d vs %d",
			flood.PeakLiveEPR, jit.PeakLiveEPR)
	}
}

func TestMagicSourceMovesWork(t *testing.T) {
	s := fixedSchedule(4, 4, []simd.Move{
		{Timestep: 1, Qubit: -1, From: simd.MagicSource, To: 2},
	})
	r := distribute(t, s, PrefetchAll, Config{Distance: 8})
	if r.TotalPairs != 1 || r.StallCycles != 0 {
		t.Errorf("magic move: %+v", r)
	}
}

func TestDeterminism(t *testing.T) {
	c := apps.SQ(apps.SQConfig{N: 6, Iters: 1})
	sched, err := simd.Run(c, simd.Config{Regions: 4, Width: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Distance: 9}
	a := distribute(t, sched, 64, cfg)
	b := distribute(t, sched, 64, cfg)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRejectsNegativeWindow(t *testing.T) {
	s := fixedSchedule(4, 1, nil)
	if _, err := Distribute(s, -1, Config{}); err == nil {
		t.Error("negative window should fail")
	}
}

func TestEndToEndAppDistribution(t *testing.T) {
	c := apps.Ising(apps.IsingConfig{N: 16, Steps: 1}, true)
	sched, err := simd.Run(c, simd.Config{Regions: 4, Width: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Distance: 9}
	r := distribute(t, sched, JITWindow(sched, cfg), cfg)
	if r.TotalPairs != len(sched.Moves) {
		t.Errorf("pairs %d != moves %d", r.TotalPairs, len(sched.Moves))
	}
	if r.ScheduleCycles < r.BaseCycles {
		t.Error("schedule below base")
	}
	if r.AvgLiveEPR < 0 || float64(r.PeakLiveEPR) < r.AvgLiveEPR {
		t.Errorf("live accounting inconsistent: peak %d avg %.1f", r.PeakLiveEPR, r.AvgLiveEPR)
	}
}

func TestSweepWindows(t *testing.T) {
	s := fixedSchedule(4, 10, []simd.Move{{Timestep: 5, Qubit: 0, From: 0, To: 1}})
	rs, err := SweepWindows(s, []int64{0, 10, 100}, Config{Distance: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d, want 3", len(rs))
	}
	for i, r := range rs {
		if r.WindowCycles != []int64{0, 10, 100}[i] {
			t.Errorf("window %d = %d", i, r.WindowCycles)
		}
	}
}

func TestStepToward(t *testing.T) {
	from := layout.Coord{Row: 0, Col: 0}
	to := layout.Coord{Row: 2, Col: 2}
	pos := from
	steps := 0
	for pos != to {
		pos = stepToward(pos, to)
		steps++
		if steps > 10 {
			t.Fatal("stepToward does not converge")
		}
	}
	if steps != 4 {
		t.Errorf("steps = %d, want 4 (Manhattan)", steps)
	}
}
