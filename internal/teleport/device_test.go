package teleport

import (
	"errors"
	"math/rand"
	"testing"

	"surfcomm/internal/apps"
	"surfcomm/internal/device"
	"surfcomm/internal/scerr"
	"surfcomm/internal/simd"
)

func gseSchedule(t testing.TB) *simd.Schedule {
	t.Helper()
	c := apps.GSE(apps.GSEConfig{M: 10, Steps: 2})
	s, err := simd.Run(c, simd.ConfigFor(c.NumQubits, 1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPerfectDeviceDistributionIdentical pins the perfect fast path:
// results with a Perfect (or zero-defect) device equal the deviceless
// simulator field for field, across windows and on a reused
// Distributor.
func TestPerfectDeviceDistributionIdentical(t *testing.T) {
	s := gseSchedule(t)
	windows := []int64{0, 32, 256, PrefetchAll}
	d := NewDistributor()
	for _, w := range windows {
		base, err := Distribute(s, w, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for name, dev := range map[string]*device.Device{
			"perfect":    device.Perfect(),
			"zero-yield": device.RandomYield(0, 9),
		} {
			got, err := d.Distribute(s, w, Config{Device: dev})
			if err != nil {
				t.Fatalf("%s window %d: %v", name, w, err)
			}
			if got != base {
				t.Fatalf("%s window %d: %+v != %+v", name, w, got, base)
			}
		}
	}
}

// TestDisabledLinkDetours disables a channel on the region grid: the
// distribution must still complete (halves reroute), and the detour can
// only delay arrivals — never accelerate the schedule.
func TestDisabledLinkDetours(t *testing.T) {
	s := gseSchedule(t)
	base, err := Distribute(s, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.Custom("one-dead-link", 0, func(topo *device.Topology, _ *rand.Rand) {
		// Cut the column-0 link on the factory row: halves leaving the
		// EPR factory toward column 0 must detour through another row.
		topo.DisableLink(
			device.Coord{Row: topo.Rows() - 1, Col: 0},
			device.Coord{Row: topo.Rows() - 1, Col: 1},
		)
	})
	got, err := Distribute(s, 0, Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPairs != base.TotalPairs {
		t.Fatalf("pairs %d != %d", got.TotalPairs, base.TotalPairs)
	}
	if got.ScheduleCycles < base.ScheduleCycles {
		t.Fatalf("detour accelerated the schedule: %d < %d", got.ScheduleCycles, base.ScheduleCycles)
	}
}

// TestWeightedLinksSlowHops doubles every link weight: at window 0
// (fully exposed distribution latency) the schedule must be strictly
// longer than on the ideal grid.
func TestWeightedLinksSlowHops(t *testing.T) {
	s := gseSchedule(t)
	base, err := Distribute(s, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.Custom("slow-fabric", 0, func(topo *device.Topology, _ *rand.Rand) {
		for r := 0; r < topo.Rows(); r++ {
			for c := 0; c < topo.Cols(); c++ {
				cur := device.Coord{Row: r, Col: c}
				topo.SetLinkWeight(cur, device.Coord{Row: r, Col: c + 1}, 2)
				topo.SetLinkWeight(cur, device.Coord{Row: r + 1, Col: c}, 2)
			}
		}
	})
	got, err := Distribute(s, 0, Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if got.StallCycles <= base.StallCycles {
		t.Fatalf("2x link weights did not slow distribution: stall %d <= %d",
			got.StallCycles, base.StallCycles)
	}
}

// TestDeadRegionUnroutable kills a region a move targets: the
// distribution must fail fast with ErrUnroutable.
func TestDeadRegionUnroutable(t *testing.T) {
	s := gseSchedule(t)
	dev := device.Custom("dead-region", 0, func(topo *device.Topology, _ *rand.Rand) {
		topo.DisableTile(device.Coord{Row: 0, Col: 0})
	})
	_, err := Distribute(s, 0, Config{Device: dev})
	if !errors.Is(err, scerr.ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
}

// TestDisconnectedFabricUnroutable cuts every link: no EPR half can
// leave the factory, and the run must fail with ErrUnroutable instead
// of hanging.
func TestDisconnectedFabricUnroutable(t *testing.T) {
	s := gseSchedule(t)
	dev := device.Custom("no-links", 0, func(topo *device.Topology, _ *rand.Rand) {
		for r := 0; r < topo.Rows(); r++ {
			for c := 0; c < topo.Cols(); c++ {
				cur := device.Coord{Row: r, Col: c}
				topo.DisableLink(cur, device.Coord{Row: r, Col: c + 1})
				topo.DisableLink(cur, device.Coord{Row: r + 1, Col: c})
			}
		}
	})
	_, err := Distribute(s, 0, Config{Device: dev})
	if !errors.Is(err, scerr.ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
}
