package teleport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfcomm/internal/simd"
)

// Property: with unlimited window, no schedule ever stalls, and the
// schedule length equals the base length; with window 0 and an
// immediate first use, arrivals can never precede physical transit.
func TestDistributionBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		regions := []int{4, 16}[rng.Intn(2)]
		timesteps := 2 + rng.Intn(20)
		var moves []simd.Move
		for i := 0; i < rng.Intn(30); i++ {
			from := rng.Intn(regions)
			to := rng.Intn(regions)
			if from == to {
				to = (to + 1) % regions
			}
			if rng.Intn(4) == 0 {
				from = simd.MagicSource
			}
			moves = append(moves, simd.Move{
				Timestep: rng.Intn(timesteps),
				Qubit:    i,
				From:     from,
				To:       to,
			})
		}
		s := &simd.Schedule{
			Config:    simd.Config{Regions: regions, Width: 8},
			Timesteps: timesteps,
			Moves:     moves,
		}
		cfg := Config{Distance: 3 + 2*rng.Intn(4)}
		flood, err := Distribute(s, PrefetchAll, cfg)
		if err != nil {
			return false
		}
		tight, err := Distribute(s, 0, cfg)
		if err != nil {
			return false
		}
		// Guaranteed invariants only. Note what is deliberately NOT
		// asserted: schedule length is not monotone in window size —
		// launching everything at cycle 0 can congest the links and
		// stall MORE than staggered launches, which is exactly the
		// paper's "do not distribute EPRs too early since they may
		// cause traffic" (§4.2).
		if flood.ScheduleCycles < flood.BaseCycles || tight.ScheduleCycles < tight.BaseCycles {
			return false
		}
		// Prefetch-all holds every half live from cycle 0: the peak is
		// the theoretical maximum, and no window can exceed it.
		if len(moves) > 0 && flood.PeakLiveEPR != 2*len(moves) {
			return false
		}
		return tight.PeakLiveEPR <= flood.PeakLiveEPR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: total pairs always equals the move count and live
// accounting is internally consistent (avg <= peak).
func TestLiveAccountingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		timesteps := 3 + rng.Intn(10)
		var moves []simd.Move
		for i := 0; i < 1+rng.Intn(15); i++ {
			moves = append(moves, simd.Move{
				Timestep: rng.Intn(timesteps),
				Qubit:    i,
				From:     rng.Intn(4),
				To:       (rng.Intn(3) + 1 + rng.Intn(1)) % 4,
			})
		}
		for i := range moves {
			if moves[i].From == moves[i].To {
				moves[i].To = (moves[i].To + 1) % 4
			}
		}
		s := &simd.Schedule{
			Config:    simd.Config{Regions: 4, Width: 8},
			Timesteps: timesteps,
			Moves:     moves,
		}
		r, err := Distribute(s, int64(rng.Intn(200)), Config{Distance: 5})
		if err != nil {
			return false
		}
		if r.TotalPairs != len(moves) {
			return false
		}
		return r.AvgLiveEPR >= 0 && r.AvgLiveEPR <= float64(r.PeakLiveEPR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
