// Package teleport simulates EPR-pair distribution for the planar
// Multi-SIMD architecture (paper §4.1, §8.1). Teleportation decouples
// communication into two steps: EPR halves travel ahead of time through
// swap channels (prefetchable, latency- and congestion-prone), and the
// data teleport itself is a constant-latency local interaction at the
// point of use. The optimizer's job is "just-in-time" distribution: a
// look-ahead window decides how early each pair is launched — too late
// starves teleports (stalls), too early floods the network with live
// EPR qubits (space).
//
// The simulator replays a Multi-SIMD schedule's move list: every
// teleport (and every magic-state delivery) consumes one EPR pair whose
// halves travel from the EPR factory region to the two endpoint
// regions, hop by hop, under per-link bandwidth limits.
package teleport

import (
	"context"
	"sort"

	"surfcomm/internal/layout"
	"surfcomm/internal/scerr"
	"surfcomm/internal/simd"
)

// Config sets the physical parameters of the distribution network.
type Config struct {
	// Distance is the code distance d: one SIMD timestep is d error
	// correction cycles, and an EPR half crosses one region boundary in
	// max(1, d/4) cycles (a swap chain advances one lattice site per
	// two-qubit gate time; a tile is 2d−1 sites wide, pipelined 8-deep
	// per EC cycle). Zero selects 9.
	Distance int
	// LinkBandwidth is EPR halves per link per cycle. A region-boundary
	// channel is a multi-lane swap corridor (the teleport buffers of
	// Fig. 3a); zero selects 4 lanes.
	LinkBandwidth int
}

func (c Config) withDefaults() Config {
	if c.Distance == 0 {
		c.Distance = 9
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 4
	}
	return c
}

// StepCycles returns the EC cycles per SIMD timestep.
func (c Config) StepCycles() int64 { return int64(c.Distance) }

// HopCycles returns the EC cycles per region hop of an EPR half.
func (c Config) HopCycles() int64 {
	h := c.Distance / 4
	if h < 1 {
		h = 1
	}
	return int64(h)
}

// PrefetchAll is a window value large enough to launch every pair at
// cycle zero — the "distribute as early as possible" baseline the ~24×
// qubit-saving claim of §8.1 is measured against.
const PrefetchAll = int64(1) << 40

// Result reports one distribution run at a fixed window.
type Result struct {
	WindowCycles   int64
	BaseCycles     int64 // timesteps × StepCycles, no stalls
	StallCycles    int64 // added latency from late EPR arrivals
	ScheduleCycles int64 // BaseCycles + StallCycles
	TotalPairs     int
	PeakLiveEPR    int     // max concurrently live EPR halves (qubit cost)
	AvgLiveEPR     float64 // time-averaged live EPR halves
	// LatencyOverhead is StallCycles / BaseCycles.
	LatencyOverhead float64
}

// geometry places the k SIMD regions on a grid with the two ancilla
// factories on an extra row (Fig. 3a): magic-state factory bottom-left,
// EPR factory bottom-right.
type geometry struct {
	coords []layout.Coord // region id -> coordinate
	magic  layout.Coord
	epr    layout.Coord
	rows   int
	cols   int
}

func newGeometry(regions int) geometry {
	rows, cols := layout.GridFor(regions)
	if cols < 2 {
		cols = 2
	}
	g := geometry{rows: rows + 1, cols: cols}
	for r := 0; r < regions; r++ {
		g.coords = append(g.coords, layout.Coord{Row: r / cols, Col: r % cols})
	}
	g.magic = layout.Coord{Row: rows, Col: 0}
	g.epr = layout.Coord{Row: rows, Col: cols - 1}
	return g
}

// coordOf maps a move endpoint to a coordinate (MagicSource is the
// magic-state factory region).
func (g geometry) coordOf(region int) layout.Coord {
	if region == simd.MagicSource {
		return g.magic
	}
	return g.coords[region]
}

// half is one EPR half in flight: it follows the XY staircase from the
// EPR factory to its destination region.
type half struct {
	move     int
	dest     layout.Coord
	pos      layout.Coord
	arrived  bool
	arriveAt int64
}

// link identifies a directed channel between adjacent region coords.
type link struct {
	from, to layout.Coord
}

// Distribute replays the schedule's move list with the given look-ahead
// window (in EC cycles): each pair launches at
// max(0, useTime − window) and its halves contend for link bandwidth.
func Distribute(s *simd.Schedule, window int64, cfg Config) (Result, error) {
	return DistributeContext(context.Background(), s, window, cfg)
}

// DistributeContext is Distribute with cooperative cancellation,
// polled every few thousand propagation cycles; an aborted run returns
// an error matching scerr.ErrCanceled.
func DistributeContext(ctx context.Context, s *simd.Schedule, window int64, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if window < 0 {
		return Result{}, scerr.BadConfig("teleport: negative window %d", window)
	}
	if s.Config.Regions < 1 {
		return Result{}, scerr.BadConfig("teleport: schedule has no regions")
	}
	geo := newGeometry(s.Config.Regions)
	res := Result{
		WindowCycles: window,
		BaseCycles:   int64(s.Timesteps) * cfg.StepCycles(),
		TotalPairs:   len(s.Moves),
	}
	if len(s.Moves) == 0 {
		res.ScheduleCycles = res.BaseCycles
		return res, nil
	}

	// Launch schedule: each move's two halves enter the network at
	// max(0, useTime − window), from the EPR factory.
	type launch struct {
		time int64
		h    *half
	}
	useTime := make([]int64, len(s.Moves))
	launches := make([]launch, 0, 2*len(s.Moves))
	halves := make([]*half, 0, 2*len(s.Moves))
	for m, mv := range s.Moves {
		useTime[m] = int64(mv.Timestep) * cfg.StepCycles()
		at := useTime[m] - window
		if at < 0 {
			at = 0
		}
		for _, dest := range []layout.Coord{geo.coordOf(mv.From), geo.coordOf(mv.To)} {
			h := &half{move: m, dest: dest, pos: geo.epr}
			halves = append(halves, h)
			launches = append(launches, launch{time: at, h: h})
		}
	}
	sort.SliceStable(launches, func(i, j int) bool { return launches[i].time < launches[j].time })

	// Cycle-driven propagation with per-link bandwidth. Pending holds
	// halves bucketed by their next movement attempt cycle.
	pending := map[int64][]*half{}
	for _, l := range launches {
		pending[l.time] = append(pending[l.time], l.h)
	}
	type linkUse struct {
		cycle int64
		used  int
	}
	usage := map[link]*linkUse{}
	active := 0
	for _, b := range pending {
		active += len(b)
	}
	arrivalByMove := make([]int64, len(s.Moves))

	done := ctx.Done()
	for cycle := int64(0); active > 0; cycle++ {
		if done != nil && cycle&4095 == 0 {
			select {
			case <-done:
				return Result{}, scerr.Canceled(ctx)
			default:
			}
		}
		bucket := pending[cycle]
		if len(bucket) == 0 {
			continue
		}
		delete(pending, cycle)
		for _, h := range bucket {
			if h.pos == h.dest {
				h.arrived = true
				h.arriveAt = cycle
				if cycle > arrivalByMove[h.move] {
					arrivalByMove[h.move] = cycle
				}
				active--
				continue
			}
			next := stepToward(h.pos, h.dest)
			l := link{from: h.pos, to: next}
			u := usage[l]
			if u == nil {
				u = &linkUse{}
				usage[l] = u
			}
			if u.cycle != cycle {
				u.cycle = cycle
				u.used = 0
			}
			if u.used >= cfg.LinkBandwidth {
				// Blocked: retry next cycle.
				pending[cycle+1] = append(pending[cycle+1], h)
				continue
			}
			u.used++
			h.pos = next
			pending[cycle+cfg.HopCycles()] = append(pending[cycle+cfg.HopCycles()], h)
		}
	}

	// Timestep commit recurrence: a timestep starts when the previous
	// one has finished AND all of its EPR pairs have arrived.
	maxArrival := map[int]int64{}
	for m, mv := range s.Moves {
		if arrivalByMove[m] > maxArrival[mv.Timestep] {
			maxArrival[mv.Timestep] = arrivalByMove[m]
		}
	}
	actualStart := make([]int64, s.Timesteps)
	prevEnd := int64(0)
	for t := 0; t < s.Timesteps; t++ {
		start := prevEnd
		if a, ok := maxArrival[t]; ok && a > start {
			start = a
		}
		actualStart[t] = start
		prevEnd = start + cfg.StepCycles()
	}
	res.ScheduleCycles = prevEnd
	res.StallCycles = res.ScheduleCycles - res.BaseCycles
	if res.BaseCycles > 0 {
		res.LatencyOverhead = float64(res.StallCycles) / float64(res.BaseCycles)
	}

	// Live-EPR accounting: each half is live from launch until its
	// move's timestep commits (the pair is consumed by the teleport).
	type delta struct {
		at int64
		d  int
	}
	var deltas []delta
	for i, l := range launches {
		consume := actualStart[s.Moves[l.h.move].Timestep] + cfg.StepCycles()
		deltas = append(deltas, delta{at: l.time, d: 1}, delta{at: consume, d: -1})
		_ = i
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].at != deltas[j].at {
			return deltas[i].at < deltas[j].at
		}
		return deltas[i].d < deltas[j].d // consume before launch at ties
	})
	live, peak := 0, 0
	var integral int64
	last := int64(0)
	for _, d := range deltas {
		integral += int64(live) * (d.at - last)
		last = d.at
		live += d.d
		if live > peak {
			peak = live
		}
	}
	res.PeakLiveEPR = peak
	if res.ScheduleCycles > 0 {
		res.AvgLiveEPR = float64(integral) / float64(res.ScheduleCycles)
	}
	return res, nil
}

// stepToward advances one hop along the XY staircase (columns first).
func stepToward(pos, dest layout.Coord) layout.Coord {
	switch {
	case pos.Col < dest.Col:
		pos.Col++
	case pos.Col > dest.Col:
		pos.Col--
	case pos.Row < dest.Row:
		pos.Row++
	default:
		pos.Row--
	}
	return pos
}

// SweepWindows runs Distribute across a set of windows — the §8.1
// window-size sensitivity study.
func SweepWindows(s *simd.Schedule, windows []int64, cfg Config) ([]Result, error) {
	return SweepWindowsContext(context.Background(), s, windows, cfg)
}

// SweepWindowsContext is SweepWindows with cooperative cancellation.
func SweepWindowsContext(ctx context.Context, s *simd.Schedule, windows []int64, cfg Config) ([]Result, error) {
	out := make([]Result, 0, len(windows))
	for _, w := range windows {
		r, err := DistributeContext(ctx, s, w, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// JITWindow returns a just-in-time window heuristic for a schedule: the
// network diameter's traversal time plus one timestep of slack — deep
// enough to hide distribution latency, shallow enough to cap live
// pairs.
func JITWindow(s *simd.Schedule, cfg Config) int64 {
	cfg = cfg.withDefaults()
	geo := newGeometry(s.Config.Regions)
	diameter := int64(geo.rows + geo.cols)
	return diameter*cfg.HopCycles() + cfg.StepCycles()
}
