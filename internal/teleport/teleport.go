// Package teleport simulates EPR-pair distribution for the planar
// Multi-SIMD architecture (paper §4.1, §8.1). Teleportation decouples
// communication into two steps: EPR halves travel ahead of time through
// swap channels (prefetchable, latency- and congestion-prone), and the
// data teleport itself is a constant-latency local interaction at the
// point of use. The optimizer's job is "just-in-time" distribution: a
// look-ahead window decides how early each pair is launched — too late
// starves teleports (stalls), too early floods the network with live
// EPR qubits (space).
//
// The simulator replays a Multi-SIMD schedule's move list: every
// teleport (and every magic-state delivery) consumes one EPR pair whose
// halves travel from the EPR factory region to the two endpoint
// regions, hop by hop, under per-link bandwidth limits.
package teleport

import (
	"context"
	"math"
	"slices"

	"surfcomm/internal/device"
	"surfcomm/internal/layout"
	"surfcomm/internal/scerr"
	"surfcomm/internal/simd"
)

// Config sets the physical parameters of the distribution network.
type Config struct {
	// Distance is the code distance d: one SIMD timestep is d error
	// correction cycles, and an EPR half crosses one region boundary in
	// max(1, d/4) cycles (a swap chain advances one lattice site per
	// two-qubit gate time; a tile is 2d−1 sites wide, pipelined 8-deep
	// per EC cycle). Zero selects 9.
	Distance int
	// LinkBandwidth is EPR halves per link per cycle. A region-boundary
	// channel is a multi-lane swap corridor (the teleport buffers of
	// Fig. 3a); zero selects 4 lanes.
	LinkBandwidth int
	// Device is the physical topology of the region grid: EPR halves
	// never cross disabled links or dead regions (they detour along
	// precomputed next-hop routes) and weighted links stretch their hop
	// time. Nil (or device.Perfect()) is the ideal grid, bit-identical
	// to the pre-device simulator. A schedule whose endpoints are cut
	// off from the EPR factory fails with an error matching
	// scerr.ErrUnroutable.
	Device *device.Device
}

func (c Config) withDefaults() Config {
	if c.Distance == 0 {
		c.Distance = 9
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 4
	}
	return c
}

// StepCycles returns the EC cycles per SIMD timestep.
func (c Config) StepCycles() int64 { return int64(c.Distance) }

// HopCycles returns the EC cycles per region hop of an EPR half.
func (c Config) HopCycles() int64 {
	h := c.Distance / 4
	if h < 1 {
		h = 1
	}
	return int64(h)
}

// PrefetchAll is a window value large enough to launch every pair at
// cycle zero — the "distribute as early as possible" baseline the ~24×
// qubit-saving claim of §8.1 is measured against.
const PrefetchAll = int64(1) << 40

// Result reports one distribution run at a fixed window.
type Result struct {
	WindowCycles   int64
	BaseCycles     int64 // timesteps × StepCycles, no stalls
	StallCycles    int64 // added latency from late EPR arrivals
	ScheduleCycles int64 // BaseCycles + StallCycles
	TotalPairs     int
	PeakLiveEPR    int     // max concurrently live EPR halves (qubit cost)
	AvgLiveEPR     float64 // time-averaged live EPR halves
	// LatencyOverhead is StallCycles / BaseCycles.
	LatencyOverhead float64
}

// geometry places the k SIMD regions on a grid with the two ancilla
// factories on an extra row (Fig. 3a): magic-state factory bottom-left,
// EPR factory bottom-right.
type geometry struct {
	coords []layout.Coord // region id -> coordinate
	magic  layout.Coord
	epr    layout.Coord
	rows   int
	cols   int
}

func newGeometry(regions int) geometry {
	rows, cols := layout.GridFor(regions)
	if cols < 2 {
		cols = 2
	}
	g := geometry{rows: rows + 1, cols: cols}
	for r := 0; r < regions; r++ {
		g.coords = append(g.coords, layout.Coord{Row: r / cols, Col: r % cols})
	}
	g.magic = layout.Coord{Row: rows, Col: 0}
	g.epr = layout.Coord{Row: rows, Col: cols - 1}
	return g
}

// coordOf maps a move endpoint to a coordinate (MagicSource is the
// magic-state factory region).
func (g geometry) coordOf(region int) layout.Coord {
	if region == simd.MagicSource {
		return g.magic
	}
	return g.coords[region]
}

// nodeIndex flattens a coordinate onto the geometry grid.
func (g geometry) nodeIndex(c layout.Coord) int { return c.Row*g.cols + c.Col }

// half is one EPR half in flight: it follows the XY staircase from the
// EPR factory to its destination region. Halves are pooled in a flat
// slice and addressed by index — no per-move heap objects.
type half struct {
	move int32
	dest layout.Coord
	pos  layout.Coord
}

// linkUse is the per-cycle bandwidth accounting of one directed channel
// between adjacent region coordinates.
type linkUse struct {
	cycle int64
	used  int32
}

// delta is one live-EPR counting event (launch +1, consume −1).
type delta struct {
	at int64
	d  int32
}

// Distributor owns the reusable simulation state of Distribute: pooled
// halves, the time-bucketed propagation calendar, dense per-link usage
// tables, and the arrival/live-accounting scratch. Reusing one
// Distributor across runs (as SweepWindows does) makes steady-state
// distribution allocation-free. A Distributor is safe for one goroutine
// at a time.
type Distributor struct {
	geo        geometry // cached for geoRegions
	geoRegions int
	halves     []half
	launchTime []int64 // per half: network entry cycle
	order      []int32 // halves in launch-calendar order
	ring       [][]int32
	links      []linkUse
	arrival    []int64 // per move: latest half arrival
	maxArrival []int64 // per timestep: latest pair arrival
	starts     []int64 // per timestep: actual start cycle
	deltas     []delta

	// Device realization, cached per (device, geometry, hop). All nil /
	// zero on a perfect device, which keeps the ideal-grid XY staircase
	// bit-identical. On a degraded device, halves follow precomputed
	// per-destination next-hop tables around dead regions and disabled
	// links, and hopW prices each directed link's weighted hop time.
	dev     *device.Device
	devRows int
	devCols int
	devHop  int64
	topo    *device.Topology
	comps   []int32
	nextHop []int8  // [dest*nodes + node] -> direction 0..3 (-1 unreachable)
	hopW    []int64 // [node*4 + dir] -> hop cycles across that link
	maxHop  int64   // slowest weighted hop (sizes the ring calendar)
}

// geometryFor returns the cached geometry, rebuilding it only when the
// schedule's region count changes.
func (d *Distributor) geometryFor(regions int) geometry {
	if d.geoRegions != regions {
		d.geo = newGeometry(regions)
		d.geoRegions = regions
	}
	return d.geo
}

// NewDistributor returns an empty Distributor; scratch grows on first
// use and is retained across runs.
func NewDistributor() *Distributor { return &Distributor{} }

// dirDelta advances a coordinate along a directed-link slot (the
// stepTowardDir convention: 0 Col+, 1 Col−, 2 Row+, 3 Row−).
func dirDelta(c layout.Coord, dir int8) layout.Coord {
	switch dir {
	case 0:
		c.Col++
	case 1:
		c.Col--
	case 2:
		c.Row++
	default:
		c.Row--
	}
	return c
}

// ensureDevice realizes the config's device on the geometry grid,
// rebuilding the cached routing tables only when the device, grid, or
// hop time changed. Perfect devices clear the tables: every hot-path
// branch then takes the ideal-grid side.
func (d *Distributor) ensureDevice(geo geometry, cfg Config) {
	hop := cfg.HopCycles()
	if d.dev == cfg.Device && d.devRows == geo.rows && d.devCols == geo.cols && d.devHop == hop {
		return
	}
	d.dev, d.devRows, d.devCols, d.devHop = cfg.Device, geo.rows, geo.cols, hop
	d.topo, d.comps, d.nextHop, d.hopW = nil, nil, nil, nil
	d.maxHop = hop
	if cfg.Device.IsPerfect() {
		return
	}
	topo := cfg.Device.Instance(geo.rows, geo.cols)
	if !topo.Degraded() {
		return
	}
	d.topo = topo
	d.comps = topo.Components()
	nodes := geo.rows * geo.cols
	d.hopW = make([]int64, nodes*4)
	for r := 0; r < geo.rows; r++ {
		for c := 0; c < geo.cols; c++ {
			cur := layout.Coord{Row: r, Col: c}
			for dir := int8(0); dir < 4; dir++ {
				nb := dirDelta(cur, dir)
				h := hop
				if topo.InBounds(nb) {
					w := topo.LinkWeight(cur, nb)
					if topo.Calibrated() {
						// Calibrated fabrics price each channel's fidelity
						// too: error-prone couplers slow the swap corridor
						// (extra purification rounds per crossing).
						w *= 1 + topo.LinkErrorRate(cur, nb)
					}
					if w > 1 {
						h = int64(math.Ceil(float64(hop) * w))
					}
				}
				d.hopW[(r*geo.cols+c)*4+int(dir)] = h
				if h > d.maxHop {
					d.maxHop = h
				}
			}
		}
	}
	// Next-hop tables: one BFS per destination over alive regions and
	// enabled links, each node keeping the first feasible direction in
	// slot order — deterministic routes, no per-half search at runtime.
	d.nextHop = make([]int8, nodes*nodes)
	dist := make([]int32, nodes)
	queue := make([]int32, 0, nodes)
	for dst := 0; dst < nodes; dst++ {
		row := d.nextHop[dst*nodes : (dst+1)*nodes]
		for i := range row {
			row[i] = -1
		}
		dc := layout.Coord{Row: dst / geo.cols, Col: dst % geo.cols}
		if topo.TileDead(dc) {
			continue
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			ci := int(queue[head])
			cur := layout.Coord{Row: ci / geo.cols, Col: ci % geo.cols}
			for dir := int8(0); dir < 4; dir++ {
				nb := dirDelta(cur, dir)
				if !topo.InBounds(nb) || topo.TileDead(nb) || topo.LinkDisabled(cur, nb) {
					continue
				}
				ni := nb.Row*geo.cols + nb.Col
				if dist[ni] >= 0 {
					continue
				}
				dist[ni] = dist[ci] + 1
				queue = append(queue, int32(ni))
			}
		}
		for n := 0; n < nodes; n++ {
			if n == dst || dist[n] <= 0 {
				continue
			}
			cur := layout.Coord{Row: n / geo.cols, Col: n % geo.cols}
			for dir := int8(0); dir < 4; dir++ {
				nb := dirDelta(cur, dir)
				if !topo.InBounds(nb) || topo.TileDead(nb) || topo.LinkDisabled(cur, nb) {
					continue
				}
				if dist[nb.Row*geo.cols+nb.Col] == dist[n]-1 {
					row[n] = dir
					break
				}
			}
		}
	}
}

// checkRoutable fails with an error matching scerr.ErrUnroutable when
// any move endpoint (or the EPR factory itself) is dead or cut off on
// the degraded region grid.
func (d *Distributor) checkRoutable(geo geometry, s *simd.Schedule) error {
	eprIdx := geo.nodeIndex(geo.epr)
	if d.topo.TileDead(geo.epr) {
		return scerr.Unroutable("teleport: EPR factory region %v is dead on the device", geo.epr)
	}
	eprComp := d.comps[eprIdx]
	for m, mv := range s.Moves {
		for _, c := range [2]layout.Coord{geo.coordOf(mv.From), geo.coordOf(mv.To)} {
			if d.topo.TileDead(c) {
				return scerr.Unroutable("teleport: move %d endpoint region %v is dead on the device", m, c)
			}
			if d.comps[geo.nodeIndex(c)] != eprComp {
				return scerr.Unroutable("teleport: move %d endpoint region %v is disconnected from the EPR factory", m, c)
			}
		}
	}
	return nil
}

// Distribute replays the schedule's move list with the given look-ahead
// window (in EC cycles): each pair launches at
// max(0, useTime − window) and its halves contend for link bandwidth.
func Distribute(s *simd.Schedule, window int64, cfg Config) (Result, error) {
	return DistributeContext(context.Background(), s, window, cfg)
}

// DistributeContext is Distribute with cooperative cancellation,
// polled every few thousand propagation cycles; an aborted run returns
// an error matching scerr.ErrCanceled.
func DistributeContext(ctx context.Context, s *simd.Schedule, window int64, cfg Config) (Result, error) {
	return NewDistributor().DistributeContext(ctx, s, window, cfg)
}

// Distribute runs one distribution on the reusable state.
func (d *Distributor) Distribute(s *simd.Schedule, window int64, cfg Config) (Result, error) {
	return d.DistributeContext(context.Background(), s, window, cfg)
}

// DistributeContext runs one cancelable distribution on the reusable
// state.
func (d *Distributor) DistributeContext(ctx context.Context, s *simd.Schedule, window int64, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if window < 0 {
		return Result{}, scerr.BadConfig("teleport: negative window %d", window)
	}
	if s.Config.Regions < 1 {
		return Result{}, scerr.BadConfig("teleport: schedule has no regions")
	}
	geo := d.geometryFor(s.Config.Regions)
	d.ensureDevice(geo, cfg)
	if d.topo != nil {
		if err := d.checkRoutable(geo, s); err != nil {
			return Result{}, err
		}
	}
	res := Result{
		WindowCycles: window,
		BaseCycles:   int64(s.Timesteps) * cfg.StepCycles(),
		TotalPairs:   len(s.Moves),
	}
	if len(s.Moves) == 0 {
		res.ScheduleCycles = res.BaseCycles
		return res, nil
	}

	// Launch calendar: each move's two halves enter the network at
	// max(0, useTime − window), from the EPR factory. Schedules list
	// moves in timestep order, so launch times are already sorted and
	// the calendar is the creation order; hand-built schedules may be
	// out of order and get a stable (time, creation index) sort.
	d.halves = d.halves[:0]
	d.launchTime = d.launchTime[:0]
	sorted := true
	for m, mv := range s.Moves {
		if mv.Timestep < 0 || mv.Timestep >= s.Timesteps {
			return Result{}, scerr.BadConfig("teleport: move %d at timestep %d outside schedule of %d",
				m, mv.Timestep, s.Timesteps)
		}
		at := int64(mv.Timestep)*cfg.StepCycles() - window
		if at < 0 {
			at = 0
		}
		for _, dst := range [2]layout.Coord{geo.coordOf(mv.From), geo.coordOf(mv.To)} {
			if len(d.launchTime) > 0 && at < d.launchTime[len(d.launchTime)-1] {
				sorted = false
			}
			d.halves = append(d.halves, half{move: int32(m), dest: dst, pos: geo.epr})
			d.launchTime = append(d.launchTime, at)
		}
	}
	d.order = d.order[:0]
	for i := range d.halves {
		d.order = append(d.order, int32(i))
	}
	if !sorted {
		slices.SortFunc(d.order, func(a, b int32) int {
			if d.launchTime[a] != d.launchTime[b] {
				if d.launchTime[a] < d.launchTime[b] {
					return -1
				}
				return 1
			}
			return int(a) - int(b)
		})
	}

	// Cycle-driven propagation with per-link bandwidth. The pending map
	// of old is a ring calendar: movement delays are only +1 (blocked
	// retry) and at most the slowest weighted hop, so maxHop+1 buckets
	// cover every in-flight half (maxHop == hop on a perfect device).
	hop := cfg.HopCycles()
	ringSize := int(d.maxHop) + 1
	if cap(d.ring) < ringSize {
		d.ring = make([][]int32, ringSize)
	}
	d.ring = d.ring[:ringSize]
	for i := range d.ring {
		d.ring[i] = d.ring[i][:0]
	}
	numLinks := geo.rows * geo.cols * 4
	if cap(d.links) < numLinks {
		d.links = make([]linkUse, numLinks)
	}
	d.links = d.links[:numLinks]
	for i := range d.links {
		d.links[i] = linkUse{cycle: -1}
	}
	if cap(d.arrival) < len(s.Moves) {
		d.arrival = make([]int64, len(s.Moves))
	}
	d.arrival = d.arrival[:len(s.Moves)]
	clear(d.arrival)

	active := len(d.halves)
	inFlight := 0
	cursor := 0
	bw := int32(cfg.LinkBandwidth)
	done := ctx.Done()
	for cycle := int64(0); active > 0; cycle++ {
		if done != nil && cycle&4095 == 0 {
			select {
			case <-done:
				return Result{}, scerr.Canceled(ctx)
			default:
			}
		}
		// Idle gap: nothing in flight, next launch in the future — skip
		// straight to it (pure fast-forward, no state advances between).
		if inFlight == 0 {
			if next := d.launchTime[d.order[cursor]]; next > cycle {
				cycle = next
			}
		}
		// Admit launches due inside the calendar window. A launch lands
		// in its bucket before any hop or retry can target that bucket,
		// preserving the launch-first bucket order of the old map.
		for cursor < len(d.order) && d.launchTime[d.order[cursor]] <= cycle+hop {
			hi := d.order[cursor]
			t := d.launchTime[hi]
			d.ring[t%int64(ringSize)] = append(d.ring[t%int64(ringSize)], hi)
			inFlight++
			cursor++
		}
		slot := cycle % int64(ringSize)
		bucket := d.ring[slot]
		if len(bucket) == 0 {
			continue
		}
		for _, hi := range bucket {
			h := &d.halves[hi]
			if h.pos == h.dest {
				if cycle > d.arrival[h.move] {
					d.arrival[h.move] = cycle
				}
				active--
				inFlight--
				continue
			}
			var next layout.Coord
			var dir int
			if d.nextHop == nil {
				next, dir = stepTowardDir(h.pos, h.dest)
			} else {
				// Defect-aware: follow the precomputed next hop toward
				// the destination (routability was prechecked).
				nodes := geo.rows * geo.cols
				dir = int(d.nextHop[geo.nodeIndex(h.dest)*nodes+geo.nodeIndex(h.pos)])
				next = dirDelta(h.pos, int8(dir))
			}
			u := &d.links[geo.nodeIndex(h.pos)*4+dir]
			if u.cycle != cycle {
				u.cycle = cycle
				u.used = 0
			}
			if u.used >= bw {
				// Blocked: retry next cycle.
				rs := (cycle + 1) % int64(ringSize)
				d.ring[rs] = append(d.ring[rs], hi)
				continue
			}
			u.used++
			hopT := hop
			if d.hopW != nil {
				hopT = d.hopW[geo.nodeIndex(h.pos)*4+dir]
			}
			h.pos = next
			rs := (cycle + hopT) % int64(ringSize)
			d.ring[rs] = append(d.ring[rs], hi)
		}
		d.ring[slot] = bucket[:0]
	}

	// Timestep commit recurrence: a timestep starts when the previous
	// one has finished AND all of its EPR pairs have arrived.
	if cap(d.maxArrival) < s.Timesteps {
		d.maxArrival = make([]int64, s.Timesteps)
	}
	d.maxArrival = d.maxArrival[:s.Timesteps]
	clear(d.maxArrival)
	for m, mv := range s.Moves {
		if d.arrival[m] > d.maxArrival[mv.Timestep] {
			d.maxArrival[mv.Timestep] = d.arrival[m]
		}
	}
	d.starts = d.starts[:0]
	prevEnd := int64(0)
	for t := 0; t < s.Timesteps; t++ {
		start := prevEnd
		if a := d.maxArrival[t]; a > start {
			start = a
		}
		d.starts = append(d.starts, start)
		prevEnd = start + cfg.StepCycles()
	}
	res.ScheduleCycles = prevEnd
	res.StallCycles = res.ScheduleCycles - res.BaseCycles
	if res.BaseCycles > 0 {
		res.LatencyOverhead = float64(res.StallCycles) / float64(res.BaseCycles)
	}

	// Live-EPR accounting: each half is live from launch until its
	// move's timestep commits (the pair is consumed by the teleport).
	d.deltas = d.deltas[:0]
	for i := range d.halves {
		consume := d.starts[s.Moves[d.halves[i].move].Timestep] + cfg.StepCycles()
		d.deltas = append(d.deltas, delta{at: d.launchTime[i], d: 1}, delta{at: consume, d: -1})
	}
	slices.SortFunc(d.deltas, func(a, b delta) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return int(a.d) - int(b.d) // consume before launch at ties
	})
	live, peak := 0, 0
	var integral int64
	last := int64(0)
	for _, dl := range d.deltas {
		integral += int64(live) * (dl.at - last)
		last = dl.at
		live += int(dl.d)
		if live > peak {
			peak = live
		}
	}
	res.PeakLiveEPR = peak
	if res.ScheduleCycles > 0 {
		res.AvgLiveEPR = float64(integral) / float64(res.ScheduleCycles)
	}
	return res, nil
}

// stepTowardDir advances one hop along the XY staircase (columns
// first), also returning the directed-link slot (0..3) the hop uses.
func stepTowardDir(pos, dest layout.Coord) (layout.Coord, int) {
	switch {
	case pos.Col < dest.Col:
		pos.Col++
		return pos, 0
	case pos.Col > dest.Col:
		pos.Col--
		return pos, 1
	case pos.Row < dest.Row:
		pos.Row++
		return pos, 2
	default:
		pos.Row--
		return pos, 3
	}
}

// stepToward advances one hop along the XY staircase (columns first).
func stepToward(pos, dest layout.Coord) layout.Coord {
	next, _ := stepTowardDir(pos, dest)
	return next
}

// SweepWindows runs Distribute across a set of windows — the §8.1
// window-size sensitivity study.
func SweepWindows(s *simd.Schedule, windows []int64, cfg Config) ([]Result, error) {
	return SweepWindowsContext(context.Background(), s, windows, cfg)
}

// SweepWindowsContext is SweepWindows with cooperative cancellation.
// One Distributor is shared across the windows, so only the first run
// pays the scratch allocation.
func SweepWindowsContext(ctx context.Context, s *simd.Schedule, windows []int64, cfg Config) ([]Result, error) {
	d := NewDistributor()
	out := make([]Result, 0, len(windows))
	for _, w := range windows {
		r, err := d.DistributeContext(ctx, s, w, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// JITWindow returns a just-in-time window heuristic for a schedule: the
// network diameter's traversal time plus one timestep of slack — deep
// enough to hide distribution latency, shallow enough to cap live
// pairs.
func JITWindow(s *simd.Schedule, cfg Config) int64 {
	cfg = cfg.withDefaults()
	geo := newGeometry(s.Config.Regions)
	diameter := int64(geo.rows + geo.cols)
	return diameter*cfg.HopCycles() + cfg.StepCycles()
}
