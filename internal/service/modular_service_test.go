package service_test

import (
	"context"
	"testing"

	"surfcomm"
	"surfcomm/internal/service"
)

// pipelineQASM renders the n-stage pipeline program (optionally with
// one mutated stage) in the hierarchical dialect.
func pipelineQASM(t *testing.T, n, variant int) string {
	t.Helper()
	p, err := surfcomm.PipelineProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	if variant > 0 {
		if p, err = surfcomm.MutateModule(p, "stageb", variant); err != nil {
			t.Fatal(err)
		}
	}
	return surfcomm.ProgramQASMString(p)
}

// TestHierarchicalCompileThroughService: a hierarchical request
// compiles through the modular path, carries provenance, and repeats
// as a program-level cache hit.
func TestHierarchicalCompileThroughService(t *testing.T) {
	svc := newService(t, service.Config{})
	req := service.Request{QASM: pipelineQASM(t, 4, 0)}

	first, err := svc.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold hierarchical compile reported cached")
	}
	if first.Plan.Modular == nil {
		t.Fatal("hierarchical compile lost Modular provenance")
	}
	if got := len(first.Plan.Modular.Compiled); got != 5 {
		t.Fatalf("compiled %d modules, want 5 (entry + 4 stages)", got)
	}

	second, err := svc.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Digest != first.Digest {
		t.Fatalf("repeat request: cached=%t digest match=%t", second.Cached, second.Digest == first.Digest)
	}

	stats := svc.Stats()
	if stats.ModuleMisses != 5 || stats.ModuleHits != 0 {
		t.Fatalf("module hits/misses = %d/%d, want 0/5", stats.ModuleHits, stats.ModuleMisses)
	}
}

// TestModuleCacheSurvivesProgramEdit: editing one stage misses at the
// program layer but reuses every unchanged module from the module
// layer — the serving-side incremental contract.
func TestModuleCacheSurvivesProgramEdit(t *testing.T) {
	svc := newService(t, service.Config{})
	if _, err := svc.Compile(context.Background(), service.Request{QASM: pipelineQASM(t, 4, 0)}); err != nil {
		t.Fatal(err)
	}
	base := svc.Stats()

	edited, err := svc.Compile(context.Background(), service.Request{QASM: pipelineQASM(t, 4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if edited.Cached {
		t.Fatal("edited program served from program cache")
	}
	if got := edited.Plan.Modular.Compiled; len(got) != 1 || got[0] != "stageb" {
		t.Fatalf("edited program recompiled %v, want [stageb]", got)
	}
	stats := svc.Stats()
	if hits := stats.ModuleHits - base.ModuleHits; hits != 4 {
		t.Fatalf("module hits after edit = %d, want 4", hits)
	}
	if misses := stats.ModuleMisses - base.ModuleMisses; misses != 1 {
		t.Fatalf("module misses after edit = %d, want 1", misses)
	}
}

// TestModulePlansPersistAcrossRestart: module plans read through from
// the disk store, so a restarted daemon recompiles nothing even for a
// program digest it has never served.
func TestModulePlansPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := newService(t, service.Config{Store: openStore(t, dir, nil)})
	if _, err := svc1.Compile(context.Background(), service.Request{QASM: pipelineQASM(t, 4, 0)}); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2 := newService(t, service.Config{Store: openStore(t, dir, nil)})
	// An *edited* program: program digest never compiled anywhere, but
	// 4 of 5 modules are on disk.
	res, err := svc2.Compile(context.Background(), service.Request{QASM: pipelineQASM(t, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Plan.Modular.Compiled; len(got) != 1 || got[0] != "stageb" {
		t.Fatalf("restarted service recompiled %v, want [stageb]", got)
	}
	stats := svc2.Stats()
	if stats.ModuleDiskHits != 4 {
		t.Fatalf("ModuleDiskHits = %d, want 4", stats.ModuleDiskHits)
	}
}

// TestHierarchicalRoutingKeyCanonical: whitespace/comment variants of
// one hierarchical program share a routing key; distinct programs
// split.
func TestHierarchicalRoutingKeyCanonical(t *testing.T) {
	text := pipelineQASM(t, 3, 0)
	k1, err := service.RoutingKey(service.Request{QASM: text})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := service.RoutingKey(service.Request{QASM: "# comment\n\n" + text})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("cosmetic variant split the routing key")
	}
	k3, err := service.RoutingKey(service.Request{QASM: pipelineQASM(t, 3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("distinct programs share a routing key")
	}
}

// TestHierarchicalEstimate: /estimate flattens hierarchical programs.
func TestHierarchicalEstimate(t *testing.T) {
	svc := newService(t, service.Config{})
	est, err := svc.Estimate(service.Request{QASM: pipelineQASM(t, 3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if est.LogicalOps <= 0 {
		t.Fatalf("estimate over hierarchical program: %+v", est)
	}
}

// TestHierarchicalBadProgramRejected: recursion is a 4xx-class config
// error, not a compile failure.
func TestHierarchicalBadProgramRejected(t *testing.T) {
	svc := newService(t, service.Config{})
	qasm := "entry a\nmodule a 1\ncall b q0\nmodule b 1\ncall a q0\n"
	if _, err := svc.Compile(context.Background(), service.Request{QASM: qasm}); err == nil {
		t.Fatal("recursive program compiled")
	}
	if _, err := service.RoutingKey(service.Request{QASM: qasm}); err == nil {
		t.Fatal("recursive program routed")
	}
}
