package service

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"

	"surfcomm"
	"surfcomm/internal/store"
)

// storedPlan is the portable on-disk projection of a Plan: the schedule
// and footprint metrics the serving API returns. Backend-specific
// artifacts (recorded braid schedules, SIMD move lists, EPR traces) are
// deliberately not persisted — they are replay/debug payloads, not
// serving state — so requests compiled with record_schedule bypass the
// disk layer entirely rather than resurface artifact-less.
//
// Field order is load-bearing: encoding/json emits struct fields in
// declaration order, which (with Go's shortest-float formatting) makes
// the encoding deterministic — a recompiled plan persists
// byte-identically, the property the crash-recovery tests pin.
type storedPlan struct {
	Backend        string  `json:"backend"`
	Circuit        string  `json:"circuit"`
	Distance       int     `json:"distance"`
	Seed           int64   `json:"seed"`
	Device         string  `json:"device"`
	Cycles         int64   `json:"cycles"`
	Seconds        float64 `json:"seconds"`
	PhysicalQubits float64 `json:"physical_qubits"`
	CommOps        int64   `json:"comm_ops"`
}

func encodePlan(p surfcomm.Plan) ([]byte, error) {
	return json.Marshal(storedPlan{
		Backend:        p.Backend,
		Circuit:        p.Circuit,
		Distance:       p.Distance,
		Seed:           p.Seed,
		Device:         p.Device,
		Cycles:         p.Cycles,
		Seconds:        p.Seconds,
		PhysicalQubits: p.PhysicalQubits,
		CommOps:        p.CommOps,
	})
}

func decodePlan(data []byte) (surfcomm.Plan, error) {
	var sp storedPlan
	if err := json.Unmarshal(data, &sp); err != nil {
		return surfcomm.Plan{}, fmt.Errorf("service: stored plan: %w", err)
	}
	if sp.Backend == "" || sp.Cycles <= 0 {
		return surfcomm.Plan{}, fmt.Errorf("service: stored plan: missing backend/cycles")
	}
	return surfcomm.Plan{
		Backend:        sp.Backend,
		Circuit:        sp.Circuit,
		Distance:       sp.Distance,
		Seed:           sp.Seed,
		Device:         sp.Device,
		Cycles:         sp.Cycles,
		Seconds:        sp.Seconds,
		PhysicalQubits: sp.PhysicalQubits,
		CommOps:        sp.CommOps,
	}, nil
}

// diskLayer wires a store.Store under the in-memory LRU: read-through
// on misses (a disk hit is served as cached and promoted into the LRU)
// and write-behind on fresh compiles (the requester never waits on
// disk; a failed write logs and costs only a future recompile). The
// store's checksum discipline guarantees load never returns a corrupt
// plan — torn entries are quarantined and read as misses.
type diskLayer struct {
	st *store.Store

	mu       sync.Mutex
	wg       sync.WaitGroup
	closed   bool
	diskHits uint64
}

func newDiskLayer(st *store.Store) *diskLayer {
	if st == nil {
		return nil
	}
	return &diskLayer{st: st}
}

// load reads through to disk; nil-safe.
func (d *diskLayer) load(digest string) (surfcomm.Plan, bool) {
	if d == nil {
		return surfcomm.Plan{}, false
	}
	payload, ok := d.st.Get(digest)
	if !ok {
		return surfcomm.Plan{}, false
	}
	plan, err := decodePlan(payload)
	if err != nil {
		// Checksum-valid but semantically unusable (e.g. written by an
		// incompatible future version): treat as a miss and recompile.
		log.Printf("service: store entry %.12s… undecodable (%v); recompiling", digest, err)
		return surfcomm.Plan{}, false
	}
	d.mu.Lock()
	d.diskHits++
	d.mu.Unlock()
	return plan, true
}

// save persists a plan asynchronously (write-behind); nil-safe. Saves
// after close are dropped — shutdown flushes what was queued, it does
// not accept new work.
func (d *diskLayer) save(digest string, p surfcomm.Plan) {
	if d == nil {
		return
	}
	payload, err := encodePlan(p)
	if err != nil {
		log.Printf("service: encode plan %.12s…: %v", digest, err)
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.wg.Add(1)
	d.mu.Unlock()
	go func() {
		defer d.wg.Done()
		if err := d.st.Put(digest, payload); err != nil {
			log.Printf("service: persist plan %.12s…: %v", digest, err)
		}
	}()
}

// close flushes queued writes and stops accepting new ones; nil-safe.
func (d *diskLayer) close() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.wg.Wait()
}

// hits snapshots the disk-hit counter; nil-safe.
func (d *diskLayer) hits() uint64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.diskHits
}

// storeStats snapshots the underlying store's counters; nil when no
// store is configured.
func (d *diskLayer) storeStats() *store.Stats {
	if d == nil {
		return nil
	}
	st := d.st.Stats()
	return &st
}
