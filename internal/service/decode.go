package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"surfcomm"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/scerr"
)

// The /decode endpoint is the repo's first hard-real-time serving
// scenario: a client streams measured syndrome rounds as NDJSON frames
// over one full-duplex HTTP request, and the server answers a
// correction per decode window, reporting per window whether the
// decode kept up with the client's declared measurement cadence.
//
// Protocol (one JSON value per line, both directions):
//
//	client → {"distance":5,"window":3,"cadence_us":1000,"strategy":"unionfind"}
//	server ← {"ok":true,"checks":25,"qubits":50,"window":3,"strategy":"unionfind"}
//	client → {"syndrome":"<hex>"}            (one frame per measured round)
//	server ← {"window":1,"rounds":3,"defects":2,"correction":"<hex>",
//	          "decode_us":41.2,"kept_up":true}   (after every window-th frame)
//	client → {"end":true}
//	server ← {"done":true,"windows":4,"rounds":10,"vents":0,"workops":812,
//	          "kept_up":true}                (partial final window flushed first)
//
// Syndrome and correction bitmaps pack LSB-first: bit i lives at
// hex-decoded byte i/8, bit position i%8. A syndrome frame carries
// ceil(checks/8) bytes; corrections carry ceil(2d²/8).
//
// Errors before the ack line are plain HTTP statuses (bad header 400,
// shed or chaos 503, rate limit 429). After the ack the status line is
// long gone, so mid-stream failures — malformed frames, wrong-length
// bitmaps, odd defect volumes — arrive as one in-stream
// {"error":"..."} line and the stream ends. The session occupies one
// admission worker slot for its whole life: a fleet of streaming
// sessions and a burst of batch compiles share the same bounded pool,
// so decode sessions shed with 503 exactly like compiles when the
// queue is full.

// MaxDecodeWindow caps the per-session decode window: the change
// volume a window accumulates is window × d² bits, and the space-time
// graph built for it is reused every window, so the cap bounds both
// memory and the worst-case per-window decode latency a session can
// ask for.
const MaxDecodeWindow = 256

// MaxDecodeDistance caps the per-session code distance (the largest
// lattice the daemon will decode live).
const MaxDecodeDistance = 49

// DecodeStart is the session header the client sends first.
type DecodeStart struct {
	// Distance is the code distance (odd, >= 3).
	Distance int `json:"distance"`
	// Window is how many rounds accumulate per decode (>= 1).
	Window int `json:"window"`
	// CadenceUS is the declared per-round measurement cadence in
	// microseconds: a window's decode keeps up when it finishes within
	// rounds × cadence. 0 disables the real-time contract (kept_up is
	// then always true).
	CadenceUS int64 `json:"cadence_us,omitempty"`
	// Strategy names the decoding strategy ("mwpm", "unionfind");
	// empty selects mwpm.
	Strategy string `json:"strategy,omitempty"`
}

// DecodeAck is the server's session acceptance line.
type DecodeAck struct {
	OK       bool   `json:"ok"`
	Checks   int    `json:"checks"`
	Qubits   int    `json:"qubits"`
	Window   int    `json:"window"`
	Strategy string `json:"strategy"`
}

// DecodeFrame is one client stream line: a measured syndrome round, or
// the end marker (flush the partial window and summarize).
type DecodeFrame struct {
	Syndrome string `json:"syndrome,omitempty"`
	End      bool   `json:"end,omitempty"`
}

// DecodeWindowResult reports one decoded window.
type DecodeWindowResult struct {
	// Window is the 1-based window index; Rounds is how many rounds it
	// covered (less than the declared window only for a flushed tail).
	Window  int `json:"window"`
	Rounds  int `json:"rounds"`
	Defects int `json:"defects"`
	// Correction is the hex-packed data-qubit correction for the
	// window's change volume.
	Correction string `json:"correction"`
	// DecodeMicros is the measured decode latency; KeptUp is whether it
	// met rounds × cadence.
	DecodeMicros float64 `json:"decode_us"`
	KeptUp       bool    `json:"kept_up"`
	// Vented marks windows whose change volume needed the odd-parity
	// vent (a measurement error straddled the window seam).
	Vented bool `json:"vented,omitempty"`
}

// DecodeSummary is the final stream line.
type DecodeSummary struct {
	Done    bool   `json:"done"`
	Windows int    `json:"windows"`
	Rounds  int    `json:"rounds"`
	Vents   int    `json:"vents"`
	WorkOps uint64 `json:"workops"`
	// KeptUp is the session verdict: every window met the cadence.
	KeptUp bool `json:"kept_up"`
}

// DecodeStats is the /healthz snapshot of the streaming-decode
// subsystem.
type DecodeStats struct {
	// Active is the number of sessions currently holding worker slots.
	Active int `json:"active"`
	// Sessions counts sessions admitted since start; Shed counts
	// sessions refused at admission (queue full or injected chaos).
	Sessions uint64 `json:"sessions"`
	Shed     uint64 `json:"shed"`
	// Rounds and Windows count streamed rounds and decoded windows;
	// LateWindows counts windows that missed their cadence budget.
	Rounds      uint64 `json:"rounds"`
	Windows     uint64 `json:"windows"`
	LateWindows uint64 `json:"late_windows"`
	// Errors counts sessions that died mid-stream (malformed frames,
	// client disconnects, undecodable volumes).
	Errors uint64 `json:"errors"`
}

// decodeCounters is the service-wide mutable form of DecodeStats.
type decodeCounters struct {
	mu          sync.Mutex
	active      int
	sessions    uint64
	shed        uint64
	rounds      uint64
	windows     uint64
	lateWindows uint64
	errors      uint64
}

func (c *decodeCounters) snapshot() DecodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return DecodeStats{
		Active:      c.active,
		Sessions:    c.sessions,
		Shed:        c.shed,
		Rounds:      c.rounds,
		Windows:     c.windows,
		LateWindows: c.lateWindows,
		Errors:      c.errors,
	}
}

// DecodeStats snapshots the streaming-decode counters.
func (s *Service) DecodeStats() DecodeStats { return s.dec.snapshot() }

// DecodeSession is one admitted streaming session: it owns a windowed
// decoder and one admission worker slot until Close.
type DecodeSession struct {
	s        *Service
	wd       *surfcomm.StreamDecoder
	checks   int
	qubits   int
	window   int
	strategy string
	cadence  time.Duration // per round; 0 = no real-time contract

	windows   int
	pushed    int // rounds since the last decode
	ventsSeen int
	keptUpAll bool
	closed    bool
}

// StartDecode validates the header, rolls the chaos dice, and admits
// the session into the worker pool (blocking in the admission queue
// like any compile; shed with ErrOverloaded when the queue is full).
// The caller must Close the returned session.
func (s *Service) StartDecode(ctx context.Context, start DecodeStart) (*DecodeSession, error) {
	if start.Window > MaxDecodeWindow {
		return nil, scerr.BadConfig("service: decode window %d exceeds the %d cap", start.Window, MaxDecodeWindow)
	}
	if start.Distance > MaxDecodeDistance {
		return nil, scerr.BadConfig("service: decode distance %d exceeds the %d cap", start.Distance, MaxDecodeDistance)
	}
	if start.CadenceUS < 0 {
		return nil, scerr.BadConfig("service: negative cadence_us %d", start.CadenceUS)
	}
	// NewStreamDecoder validates distance, window, and strategy name.
	wd, err := surfcomm.NewStreamDecoder(start.Distance, start.Window, start.Strategy)
	if err != nil {
		return nil, err
	}
	if s.inj.Fire(faultinject.DecodeError) {
		s.dec.mu.Lock()
		s.dec.shed++
		s.dec.mu.Unlock()
		return nil, fmt.Errorf("%w: decode session", faultinject.ErrInjected)
	}
	if err := s.adm.acquire(ctx); err != nil {
		s.dec.mu.Lock()
		s.dec.shed++
		s.dec.mu.Unlock()
		return nil, err
	}
	strategy := start.Strategy
	if strategy == "" {
		strategy = surfcomm.DecoderStrategyMWPM
	}
	s.dec.mu.Lock()
	s.dec.active++
	s.dec.sessions++
	s.dec.mu.Unlock()
	return &DecodeSession{
		s:         s,
		wd:        wd,
		checks:    start.Distance * start.Distance,
		qubits:    2 * start.Distance * start.Distance,
		window:    start.Window,
		strategy:  strategy,
		cadence:   time.Duration(start.CadenceUS) * time.Microsecond,
		keptUpAll: true,
	}, nil
}

// Ack returns the session acceptance line.
func (d *DecodeSession) Ack() DecodeAck {
	return DecodeAck{OK: true, Checks: d.checks, Qubits: d.qubits, Window: d.window, Strategy: d.strategy}
}

// PushRound feeds one syndrome frame. When it completes a window the
// returned result is non-nil.
func (d *DecodeSession) PushRound(frame DecodeFrame) (*DecodeWindowResult, error) {
	syndrome, err := UnpackBits(frame.Syndrome, d.checks)
	if err != nil {
		return nil, err
	}
	d.s.dec.mu.Lock()
	d.s.dec.rounds++
	d.s.dec.mu.Unlock()
	d.pushed++
	start := time.Now()
	decoded, err := d.wd.PushRound(syndrome)
	if err != nil {
		return nil, err
	}
	if !decoded {
		return nil, nil
	}
	return d.windowResult(time.Since(start)), nil
}

// Flush decodes a partial final window; nil when the buffer was empty.
func (d *DecodeSession) Flush() (*DecodeWindowResult, error) {
	start := time.Now()
	decoded, err := d.wd.Flush()
	if err != nil {
		return nil, err
	}
	if !decoded {
		return nil, nil
	}
	return d.windowResult(time.Since(start)), nil
}

// windowResult packages the freshly decoded window and applies the
// cadence contract: the decode kept up iff it finished within the
// real time the window's rounds took to measure.
func (d *DecodeSession) windowResult(elapsed time.Duration) *DecodeWindowResult {
	d.windows++
	rounds := d.pushed
	d.pushed = 0
	vented := d.wd.Vents() > d.ventsSeen
	d.ventsSeen = d.wd.Vents()
	keptUp := d.cadence == 0 || elapsed <= time.Duration(rounds)*d.cadence
	if !keptUp {
		d.keptUpAll = false
	}
	d.s.dec.mu.Lock()
	d.s.dec.windows++
	if !keptUp {
		d.s.dec.lateWindows++
	}
	d.s.dec.mu.Unlock()
	return &DecodeWindowResult{
		Window:       d.windows,
		Rounds:       rounds,
		Defects:      d.wd.Defects(),
		Correction:   PackBits(d.wd.Correction()),
		DecodeMicros: float64(elapsed.Nanoseconds()) / 1e3,
		KeptUp:       keptUp,
		Vented:       vented,
	}
}

// Summary returns the end-of-stream line.
func (d *DecodeSession) Summary() DecodeSummary {
	return DecodeSummary{
		Done:    true,
		Windows: d.wd.Windows(),
		Rounds:  d.wd.Rounds(),
		Vents:   d.wd.Vents(),
		WorkOps: d.wd.WorkOps(),
		KeptUp:  d.keptUpAll,
	}
}

// Fail records a mid-stream session failure in the counters.
func (d *DecodeSession) Fail() {
	d.s.dec.mu.Lock()
	d.s.dec.errors++
	d.s.dec.mu.Unlock()
}

// Close releases the session's worker slot (idempotent). Decode
// latencies never feed the compile-pricing EWMA.
func (d *DecodeSession) Close() {
	if d.closed {
		return
	}
	d.closed = true
	d.s.adm.release(0)
	d.s.dec.mu.Lock()
	d.s.dec.active--
	d.s.dec.mu.Unlock()
}

// PackBits hex-encodes a bit vector LSB-first (the /decode frame
// packing).
func PackBits(bits []bool) string {
	buf := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	return hex.EncodeToString(buf)
}

// UnpackBits decodes an LSB-first hex bitmap of exactly n bits,
// rejecting wrong lengths and set padding bits — a truncated or
// oversized frame must fail loudly, not decode a garbled syndrome.
func UnpackBits(s string, n int) ([]bool, error) {
	want := (n + 7) / 8
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, scerr.BadConfig("service: syndrome frame: %v", err)
	}
	if len(raw) != want {
		return nil, scerr.BadConfig("service: syndrome frame carries %d bytes, want %d (%d bits)", len(raw), want, n)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	for i := n; i < 8*len(raw); i++ {
		if raw[i/8]&(1<<(i%8)) != 0 {
			return nil, scerr.BadConfig("service: syndrome frame sets padding bit %d past the %d-bit syndrome", i, n)
		}
	}
	return bits, nil
}

// handleDecode serves POST /decode. Pre-ack failures are plain HTTP
// statuses; post-ack failures are in-stream {"error":...} lines.
func handleDecode(s *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Full duplex from the first byte: window results stream back
		// while the client is still writing frames. This must be on
		// before ANY response write — without it the HTTP/1 server
		// drains the request body before sending headers, which against
		// a still-streaming client deadlocks even a pre-ack 4xx/5xx.
		// (HTTP/2 is naturally full-duplex; there the error is
		// ignorable.)
		rc := http.NewResponseController(w)
		rc.EnableFullDuplex() //nolint:errcheck // see comment
		if err := s.AllowClient(s.ClientKeyFor(r), 1); err != nil {
			writeErr(w, err)
			return
		}
		body := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDecodeStreamBytes))
		var start DecodeStart
		if err := body.Decode(&start); err != nil {
			writeErr(w, scerr.BadConfig("service: decode header: %v", badFrame(err)))
			return
		}
		session, err := s.StartDecode(r.Context(), start)
		if err != nil {
			writeErr(w, err)
			return
		}
		defer session.Close()

		w.Header().Set("Content-Type", "application/x-ndjson")
		out := json.NewEncoder(w)
		send := func(v any) bool {
			if err := out.Encode(v); err != nil {
				return false
			}
			rc.Flush() //nolint:errcheck // best-effort; the next write surfaces a dead client
			return true
		}
		if !send(session.Ack()) {
			session.Fail()
			return
		}
		for {
			var frame DecodeFrame
			if err := body.Decode(&frame); err != nil {
				// Malformed frame or mid-session disconnect: the ack is
				// long sent, so report in-stream and hang up.
				session.Fail()
				send(map[string]string{"error": badFrame(err).Error()})
				return
			}
			if frame.End {
				res, err := session.Flush()
				if err != nil {
					session.Fail()
					send(map[string]string{"error": err.Error()})
					return
				}
				if res != nil && !send(res) {
					session.Fail()
					return
				}
				send(session.Summary())
				return
			}
			res, err := session.PushRound(frame)
			if err != nil {
				session.Fail()
				send(map[string]string{"error": err.Error()})
				return
			}
			if res != nil && !send(res) {
				session.Fail()
				return
			}
		}
	}
}

// maxDecodeStreamBytes caps one session's total request bytes — at the
// largest allowed lattice that is room for hundreds of thousands of
// rounds, while a runaway client cannot stream forever.
const maxDecodeStreamBytes = 256 << 20

// badFrame normalizes stream-read failures: EOF without an end marker
// is a disconnect, anything else passes through.
func badFrame(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.New("stream ended without {\"end\":true}")
	}
	return err
}
