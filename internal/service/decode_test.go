package service_test

import (
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"surfcomm"
	"surfcomm/client"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/service"
)

// waitFor polls cond until it holds or the deadline passes — counters
// touched in a handler's deferred cleanup land shortly after the
// client sees the response end.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPackBitsRoundTrip(t *testing.T) {
	bits := []bool{true, false, false, true, true, false, true, false, true, true}
	got, err := service.UnpackBits(service.PackBits(bits), len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d: got %v want %v", i, got[i], bits[i])
		}
	}
	if _, err := service.UnpackBits("ff", 10); err == nil {
		t.Error("short bitmap should be rejected")
	}
	if _, err := service.UnpackBits("ffff", 10); err == nil {
		t.Error("set padding bits should be rejected")
	}
	if _, err := service.UnpackBits("zz", 8); err == nil {
		t.Error("non-hex should be rejected")
	}
}

// TestDecodeStreamEndToEnd drives a full session through the Go
// client against a live handler: accumulate random data errors,
// stream the measured syndromes, and verify the cumulative streamed
// corrections clear the final syndrome — then check the /healthz
// decode counters account for the session.
func TestDecodeStreamEndToEnd(t *testing.T) {
	for _, strategy := range []string{"mwpm", "unionfind"} {
		t.Run(strategy, func(t *testing.T) {
			svc := newService(t, service.Config{})
			srv := httptest.NewServer(service.NewHandler(svc))
			defer srv.Close()
			c := client.New(srv.URL)

			const d, window, totalRounds = 5, 3, 9
			l, err := surfcomm.NewDecoderLattice(d)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := c.DecodeStream(t.Context(), service.DecodeStart{
				Distance: d, Window: window, Strategy: strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()
			if ack := ds.Ack(); ack.Checks != d*d || ack.Qubits != 2*d*d || ack.Strategy != strategy {
				t.Fatalf("ack = %+v", ack)
			}

			rng := rand.New(rand.NewSource(23))
			errs := l.NewErrorPattern()
			for round := 0; round < totalRounds; round++ {
				for q := range errs {
					if rng.Float64() < 0.02 {
						errs[q] = !errs[q]
					}
				}
				if err := ds.Send(l.Syndrome(errs)); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			if err := ds.CloseSend(); err != nil {
				t.Fatal(err)
			}
			cumulative := l.NewErrorPattern()
			windows := 0
			for {
				res, err := ds.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				windows++
				if res.Window != windows || res.Rounds != window {
					t.Fatalf("window result %d = %+v", windows, res)
				}
				if !res.KeptUp {
					t.Errorf("window %d late with no cadence contract", res.Window)
				}
				corr, err := ds.Correction(res)
				if err != nil {
					t.Fatal(err)
				}
				for q, hot := range corr {
					if hot {
						cumulative[q] = !cumulative[q]
					}
				}
			}
			sum, ok := ds.Summary()
			if !ok || !sum.Done || sum.Windows != totalRounds/window || sum.Rounds != totalRounds || !sum.KeptUp {
				t.Fatalf("summary = %+v ok=%v", sum, ok)
			}
			combined := l.NewErrorPattern()
			for q := range combined {
				combined[q] = errs[q] != cumulative[q]
			}
			for i, hot := range l.Syndrome(combined) {
				if hot {
					t.Fatalf("streamed corrections leave defect at plaquette %d", i)
				}
			}

			waitFor(t, "session cleanup", func() bool { return svc.DecodeStats().Active == 0 })
			stats := svc.DecodeStats()
			if stats.Sessions != 1 || stats.Rounds != totalRounds ||
				stats.Windows != uint64(totalRounds/window) || stats.Errors != 0 || stats.Shed != 0 {
				t.Errorf("decode stats = %+v", stats)
			}
		})
	}
}

// rawDecodeStream opens /decode with hand-rolled framing so tests can
// send what the Go client never would.
func rawDecodeStream(t *testing.T, url string, header string) (*io.PipeWriter, *json.Decoder, func()) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/decode",
		io.MultiReader(strings.NewReader(header+"\n"), pr))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("status = %d", resp.StatusCode)
	}
	return pw, json.NewDecoder(resp.Body), func() { pw.Close(); resp.Body.Close() }
}

// TestDecodeMalformedFrameMidStream: after valid frames, garbage must
// come back as an in-stream error line (the status is long gone), the
// stream must end, and the session must count as errored with its
// worker slot released.
func TestDecodeMalformedFrameMidStream(t *testing.T) {
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	pw, dec, cleanup := rawDecodeStream(t, srv.URL, `{"distance":3,"window":2}`)
	defer cleanup()
	var ack service.DecodeAck
	if err := dec.Decode(&ack); err != nil || !ack.OK {
		t.Fatalf("ack: %+v err=%v", ack, err)
	}
	frame := `{"syndrome":"` + service.PackBits(make([]bool, 9)) + `"}` + "\n"
	// "@@" is an immediate JSON syntax error: the decoder must not sit
	// waiting for more bytes of a value that can never parse.
	if _, err := pw.Write([]byte(frame + "@@\n")); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if msg, _ := raw["error"].(string); msg == "" {
		t.Fatalf("want in-stream error line, got %v", raw)
	}
	if err := dec.Decode(&raw); !errors.Is(err, io.EOF) {
		t.Fatalf("stream should end after the error line, got %v / %v", raw, err)
	}
	waitFor(t, "errored session cleanup", func() bool {
		s := svc.DecodeStats()
		return s.Errors == 1 && s.Active == 0
	})
}

// TestDecodeWrongLengthFrame: a syndrome sized for the wrong distance
// is an in-stream error, not a garbled decode.
func TestDecodeWrongLengthFrame(t *testing.T) {
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	pw, dec, cleanup := rawDecodeStream(t, srv.URL, `{"distance":3,"window":1}`)
	defer cleanup()
	var ack service.DecodeAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	// 25-check frame against a distance-3 (9-check) session.
	frame := `{"syndrome":"` + service.PackBits(make([]bool, 25)) + `"}` + "\n"
	if _, err := pw.Write([]byte(frame)); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if msg, _ := raw["error"].(string); !strings.Contains(msg, "bytes") {
		t.Fatalf("want length error, got %v", raw)
	}
}

// TestDecodeClientDisconnectMidSession: an abandoned session (client
// gone without {"end":true}) must count as errored and release its
// worker slot — leaked slots would strangle the compile pool.
func TestDecodeClientDisconnectMidSession(t *testing.T) {
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	c := client.New(srv.URL)

	ds, err := c.DecodeStream(t.Context(), service.DecodeStart{Distance: 3, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(make([]bool, 9)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session admitted", func() bool { return svc.DecodeStats().Active == 1 })
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "disconnected session cleanup", func() bool {
		s := svc.DecodeStats()
		return s.Errors == 1 && s.Active == 0
	})
}

// TestDecodeCadenceExceeded: a session declaring a 1µs round cadence
// at a large distance cannot keep up (the first window's decode alone
// builds the space-time graph); the contract must say so honestly.
func TestDecodeCadenceExceeded(t *testing.T) {
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	c := client.New(srv.URL)

	const d = 13
	l, err := surfcomm.NewDecoderLattice(d)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.DecodeStream(t.Context(), service.DecodeStart{
		Distance: d, Window: 1, CadenceUS: 1, Strategy: "unionfind",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	errs := l.NewErrorPattern()
	errs[0], errs[7] = true, true
	if err := ds.Send(l.Syndrome(errs)); err != nil {
		t.Fatal(err)
	}
	res, err := ds.Next()
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptUp {
		t.Errorf("1µs cadence at d=%d reported kept_up=true (decode_us=%g)", d, res.DecodeMicros)
	}
	if err := ds.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Next(); !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if sum, ok := ds.Summary(); !ok || sum.KeptUp {
		t.Errorf("summary kept_up should be false: %+v", sum)
	}
	waitFor(t, "late-window counter", func() bool { return svc.DecodeStats().LateWindows >= 1 })
}

// TestDecodeChaosShed: with the decode-error fault armed at
// probability 1, sessions shed with 503 before taking a worker slot,
// and the shed counter says so.
func TestDecodeChaosShed(t *testing.T) {
	inj := faultinject.New(42)
	if err := inj.Set(faultinject.DecodeError, 1); err != nil {
		t.Fatal(err)
	}
	svc := newService(t, service.Config{Injector: inj})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	c := client.New(srv.URL)

	_, err := c.DecodeStream(t.Context(), service.DecodeStart{Distance: 3, Window: 1})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 StatusError, got %v", err)
	}
	stats := svc.DecodeStats()
	if stats.Shed != 1 || stats.Sessions != 0 || stats.Active != 0 {
		t.Errorf("decode stats = %+v", stats)
	}
}

// TestDecodeSessionOccupiesWorkerSlot: a streaming session holds one
// admission slot, so with one worker and no queue a concurrent compile
// (and a second session) shed with 503 until the stream ends.
func TestDecodeSessionOccupiesWorkerSlot(t *testing.T) {
	svc := newService(t, service.Config{Workers: 1, QueueDepth: -1})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	c := client.New(srv.URL, client.WithRetry(1, time.Millisecond, time.Millisecond))

	ds, err := c.DecodeStream(t.Context(), service.DecodeStart{Distance: 3, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "slot held", func() bool { return svc.AdmissionStats().Running == 1 })

	if _, err := c.DecodeStream(t.Context(), service.DecodeStart{Distance: 3, Window: 1}); err == nil {
		t.Fatal("second session should shed with the only slot held")
	} else {
		var se *client.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			t.Fatalf("want 503, got %v", err)
		}
	}
	if _, err := c.Compile(t.Context(), service.Request{QASM: testQASM(t)}); err == nil {
		t.Fatal("compile should shed while the decode session holds the slot")
	}
	waitFor(t, "shed counted", func() bool { return svc.DecodeStats().Shed >= 1 })

	if err := ds.CloseSend(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ds.Next(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()
	waitFor(t, "slot released", func() bool { return svc.AdmissionStats().Running == 0 })
	if _, err := c.Compile(t.Context(), service.Request{QASM: testQASM(t)}); err != nil {
		t.Fatalf("compile after session end: %v", err)
	}
}

// TestDecodeBadHeaders covers pre-ack rejection: these answer plain
// HTTP statuses because nothing has streamed yet.
func TestDecodeBadHeaders(t *testing.T) {
	srv := newTestServer(t)
	for name, header := range map[string]string{
		"even distance":    `{"distance":4,"window":2}`,
		"zero window":      `{"distance":3,"window":0}`,
		"window over cap":  `{"distance":3,"window":100000}`,
		"distance cap":     `{"distance":51,"window":2}`,
		"unknown strategy": `{"distance":3,"window":2,"strategy":"banana"}`,
		"negative cadence": `{"distance":3,"window":2,"cadence_us":-5}`,
		"not json":         `pineapple`,
	} {
		resp, err := http.Post(srv.URL+"/decode", "application/x-ndjson", strings.NewReader(header+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}
