package service

import (
	"crypto/sha256"
	"encoding/hex"

	"surfcomm"
)

// Module plans live in the same LRU (and disk store) as program plans,
// under separate key namespaces:
//
//   - LRU: "module/<content-digest>" — can never collide with program
//     keys, which are bare 64-hex digests;
//   - disk: hex(sha256("module|<content-digest>")) — the store only
//     accepts bare 64-hex filenames, so the namespace is folded into a
//     re-hash instead of a prefix.
//
// Sharing one LRU means module and program plans compete under one
// weight budget (a module plan weighs like any summary plan), and one
// eviction policy keeps whichever layer is hot.

// moduleLRUKey namespaces a module content digest in the LRU.
func moduleLRUKey(digest string) string { return "module/" + digest }

// moduleDiskKey folds the module namespace into a store-safe digest.
func moduleDiskKey(digest string) string {
	h := sha256.Sum256([]byte("module|" + digest))
	return hex.EncodeToString(h[:])
}

// svcModuleCache adapts the service's cache stack (LRU + disk layer +
// per-layer counters) to the toolchain's ModuleCache. One adapter is
// built per compile, carrying that request's persistence eligibility.
type svcModuleCache struct {
	s *Service
	// persist gates the disk layer exactly like program plans: plans
	// carrying recorded schedules never touch disk (the store drops
	// artifacts, and a disk hit must not serve an artifact-less plan).
	persist bool
}

func (a *svcModuleCache) GetModule(digest string) (surfcomm.Plan, bool) {
	if p, ok := a.s.cache.peek(moduleLRUKey(digest)); ok {
		a.s.modHits.Add(1)
		return p, true
	}
	if a.persist {
		if p, ok := a.s.cache.disk.load(moduleDiskKey(digest)); ok {
			// Promote the disk hit so the next probe is a memory hit.
			a.s.cache.put(moduleLRUKey(digest), p)
			a.s.modDiskHits.Add(1)
			return p, true
		}
	}
	a.s.modMisses.Add(1)
	return surfcomm.Plan{}, false
}

func (a *svcModuleCache) PutModule(digest string, p surfcomm.Plan) {
	a.s.cache.put(moduleLRUKey(digest), p)
	// The store's decoder rejects degenerate plans (Cycles <= 0), so
	// only persist plans it will accept back.
	if a.persist && p.Cycles > 0 && p.Backend != "" {
		a.s.cache.disk.save(moduleDiskKey(digest), p)
	}
}
