package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"surfcomm"
)

// TestPanickingComputeDoesNotWedgeKey pins the singleflight's panic
// safety: a panicking compute must re-panic in the leader (net/http
// recovers handler panics), release any waiters with an error, and
// leave the key retryable — never a flight that is present forever
// with a done channel nobody closes.
func TestPanickingComputeDoesNotWedgeKey(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("leader should re-panic")
			}
		}()
		c.do(ctx, "key", true, func() (surfcomm.Plan, error) { panic("compile exploded") })
	}()

	st := c.stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after panic, key is wedged", st.Inflight)
	}
	if st.Entries != 0 {
		t.Fatalf("entries = %d, panicked compile must not be cached", st.Entries)
	}

	// The key must be retryable: the next do runs compute again.
	plan, cached, err := c.do(ctx, "key", true, func() (surfcomm.Plan, error) {
		return surfcomm.Plan{Backend: "braid", Cycles: 42}, nil
	})
	if err != nil || cached || plan.Cycles != 42 {
		t.Fatalf("retry after panic: plan=%+v cached=%v err=%v", plan, cached, err)
	}
}

// TestWeightedBudgetBoundsScheduleBearingPlans pins the memory bound:
// plans retaining large recorded schedules consume budget
// proportionally to their size, and a plan heavier than the whole
// budget is served but never retained.
func TestWeightedBudgetBoundsScheduleBearingPlans(t *testing.T) {
	heavy := func(entries int) surfcomm.Plan {
		return surfcomm.Plan{
			Backend: "braid",
			Cycles:  1,
			Braid:   &surfcomm.BraidResult{Schedule: make([]surfcomm.BraidScheduleEntry, entries)},
		}
	}
	ctx := context.Background()

	// Budget 4: a 512-entry schedule weighs 1+2=3, so two of them
	// cannot coexist.
	c := newPlanCache(4)
	for _, key := range []string{"a", "b"} {
		if _, _, err := c.do(ctx, key, true, func() (surfcomm.Plan, error) { return heavy(512), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Weight > 4 {
		t.Errorf("weight %d exceeds budget 4", st.Weight)
	}
	if st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("entries=%d evictions=%d, want the first heavy plan evicted", st.Entries, st.Evictions)
	}

	// A plan heavier than the entire budget is never retained.
	c = newPlanCache(2)
	if _, _, err := c.do(ctx, "huge", true, func() (surfcomm.Plan, error) { return heavy(4096), nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.stats(); st.Entries != 0 || st.Weight != 0 {
		t.Errorf("oversized plan retained: %+v", st)
	}
	// …and the repeat is a miss that still compiles correctly.
	plan, cached, err := c.do(ctx, "huge", true, func() (surfcomm.Plan, error) { return heavy(4096), nil })
	if err != nil || cached || plan.Braid == nil {
		t.Errorf("oversized repeat: cached=%v err=%v", cached, err)
	}
}

// TestWaiterSeesPanicAsError pins the waiter side: a request latched
// onto a flight whose compute panics gets an error, not a hang or a
// zero plan served as success.
func TestWaiterSeesPanicAsError(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() { recover() }() // leader re-panics by design
		c.do(ctx, "key", true, func() (surfcomm.Plan, error) {
			close(entered)
			<-release
			panic("compile exploded")
		})
	}()

	<-entered
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.do(ctx, "key", true, func() (surfcomm.Plan, error) {
			t.Error("waiter must latch onto the flight, not recompute")
			return surfcomm.Plan{}, nil
		})
		waiterErr <- err
	}()

	// Give the waiter a chance to latch, then let the leader blow up.
	for {
		c.mu.Lock()
		latched := c.deduped > 0
		c.mu.Unlock()
		if latched {
			break
		}
	}
	close(release)
	<-leaderDone

	err := <-waiterErr
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("waiter error = %v, want compile-panicked failure", err)
	}
	if errors.Is(err, surfcomm.ErrBadConfig) {
		t.Error("a panic is not a client error")
	}
}
