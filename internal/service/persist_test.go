package service_test

import (
	"context"
	"testing"

	"surfcomm/internal/faultinject"
	"surfcomm/internal/service"
	"surfcomm/internal/store"
)

func openStore(t *testing.T, dir string, inj *faultinject.Injector) *store.Store {
	t.Helper()
	st, err := store.Open(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartServesFromDisk is the tentpole acceptance property: a
// daemon restarted over the same store directory answers a
// previously-compiled digest as a cache hit read through from disk,
// without recompiling.
func TestRestartServesFromDisk(t *testing.T) {
	qasm := testQASM(t)
	dir := t.TempDir()
	req := service.Request{QASM: qasm}

	svc1 := newService(t, service.Config{Store: openStore(t, dir, nil)})
	first, err := svc1.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first compile reported cached")
	}
	svc1.Close() // flush the write-behind queue — the daemon's shutdown path

	// "Restart": a fresh service over a fresh store handle on the same
	// directory, empty in-memory LRU.
	svc2 := newService(t, service.Config{Store: openStore(t, dir, nil)})
	second, err := svc2.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("restarted service recompiled instead of serving from disk")
	}
	if second.Digest != first.Digest {
		t.Fatalf("digest changed across restart: %s vs %s", second.Digest, first.Digest)
	}
	if planDigest(second.Plan) != planDigest(first.Plan) {
		t.Fatal("disk-served plan differs from the originally compiled plan")
	}
	stats := svc2.Stats()
	if stats.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", stats.DiskHits)
	}
	if stats.Misses != 0 {
		t.Fatalf("Misses = %d after a disk hit, want 0", stats.Misses)
	}
	// The disk hit was promoted into the LRU: a third request is a pure
	// memory hit.
	third, err := svc2.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || svc2.Stats().DiskHits != 1 {
		t.Fatalf("promoted entry not served from memory (cached=%v disk_hits=%d)",
			third.Cached, svc2.Stats().DiskHits)
	}
}

// TestTornWriteRecoveryEndToEnd is the crash-recovery satellite at the
// service layer: a plan persisted through a torn write (the injected
// mid-write crash) is quarantined at reopen — never served — and a
// recompile repopulates the same digest with bytes identical to an
// uninjected control run.
func TestTornWriteRecoveryEndToEnd(t *testing.T) {
	qasm := testQASM(t)
	req := service.Request{QASM: qasm}

	// Control: a clean run of the same request, for byte comparison.
	controlDir := t.TempDir()
	controlStore := openStore(t, controlDir, nil)
	ctl := newService(t, service.Config{Store: controlStore})
	ctlRes, err := ctl.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Close()
	controlBytes, ok := controlStore.Get(ctlRes.Digest)
	if !ok {
		t.Fatal("control store has no entry after flush")
	}

	// Victim: every store write is torn mid-payload.
	inj := faultinject.New(1)
	if err := inj.Set(faultinject.TornWrite, 1); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	svc1 := newService(t, service.Config{Store: openStore(t, dir, inj)})
	res1, err := svc1.Compile(context.Background(), req)
	if err != nil {
		t.Fatalf("compile must succeed even when persistence tears: %v", err)
	}
	svc1.Close()

	// Reopen scans, quarantines the torn entry, and serves nothing
	// corrupt: the request recompiles fresh.
	st2 := openStore(t, dir, nil)
	if got := st2.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d at reopen, want 1 torn entry", got)
	}
	if st2.Len() != 0 {
		t.Fatalf("store has %d live entries after quarantine, want 0", st2.Len())
	}
	svc2 := newService(t, service.Config{Store: st2})
	res2, err := svc2.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached {
		t.Fatal("quarantined digest served as cached")
	}
	if res2.Digest != res1.Digest {
		t.Fatalf("digest changed after recovery: %s vs %s", res2.Digest, res1.Digest)
	}
	svc2.Close()

	// The repopulated entry is byte-identical to the control run — the
	// determinism the disk layer leans on.
	repop, ok := st2.Get(res2.Digest)
	if !ok {
		t.Fatal("store has no entry after recovery flush")
	}
	if string(repop) != string(controlBytes) {
		t.Fatalf("recovered entry differs from control:\n%s\nvs\n%s", repop, controlBytes)
	}
}

// TestRecordScheduleBypassesDisk pins the artifact rule: plans carrying
// recorded schedules are never persisted (the store keeps only the
// summary projection), so a disk hit can never serve an artifact-less
// plan to a request that asked for artifacts.
func TestRecordScheduleBypassesDisk(t *testing.T) {
	qasm := testQASM(t)
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	svc := newService(t, service.Config{Store: st})

	res, err := svc.Compile(context.Background(), service.Request{QASM: qasm, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Braid == nil {
		t.Fatal("record_schedule compile returned no artifacts")
	}
	svc.Close()
	if st.Len() != 0 {
		t.Fatalf("store persisted %d entries for a record_schedule compile, want 0", st.Len())
	}

	// And the reverse guard: a restarted service asked for artifacts
	// must recompile even if the summary-only twin is on disk.
	svc2 := newService(t, service.Config{Store: openStore(t, dir, nil)})
	if _, err := svc2.Compile(context.Background(), service.Request{QASM: qasm}); err != nil {
		t.Fatal(err)
	}
	svc2.Close()
	svc3 := newService(t, service.Config{Store: openStore(t, dir, nil)})
	res3, err := svc3.Compile(context.Background(), service.Request{QASM: qasm, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Fatal("record_schedule request served from disk")
	}
	if res3.Plan.Braid == nil {
		t.Fatal("record_schedule recompile lost its artifacts")
	}
}

// TestInjectedStoreWriteFailureIsInvisible pins write-behind isolation:
// a store whose writes always fail still serves every request
// correctly — persistence errors cost only future warm starts.
func TestInjectedStoreWriteFailureIsInvisible(t *testing.T) {
	qasm := testQASM(t)
	inj := faultinject.New(1)
	if err := inj.Set(faultinject.StoreWriteError, 1); err != nil {
		t.Fatal(err)
	}
	st := openStore(t, t.TempDir(), inj)
	svc := newService(t, service.Config{Store: st})

	res, err := svc.Compile(context.Background(), service.Request{QASM: qasm})
	if err != nil {
		t.Fatalf("compile failed on a store write fault: %v", err)
	}
	again, err := svc.Compile(context.Background(), service.Request{QASM: qasm})
	if err != nil || !again.Cached {
		t.Fatalf("memory cache broken under store faults (err=%v cached=%v)", err, again.Cached)
	}
	if planDigest(res.Plan) != planDigest(again.Plan) {
		t.Fatal("served plans diverged")
	}
	svc.Close()
	if st.Len() != 0 {
		t.Fatalf("store has %d entries despite every write failing", st.Len())
	}
	if st.Stats().PutErrors == 0 {
		t.Fatal("no put errors counted despite injection")
	}
}

// TestDrainReadiness pins the probe split at the service layer: Ready
// flips to "draining" after Drain while the rest of the API keeps
// answering (the HTTP pair is covered in http_test.go).
func TestDrainReadiness(t *testing.T) {
	svc := newService(t, service.Config{})
	if ready, reason := svc.Ready(); !ready {
		t.Fatalf("fresh service not ready: %s", reason)
	}
	svc.Drain()
	ready, reason := svc.Ready()
	if ready {
		t.Fatal("draining service still ready")
	}
	if reason != "draining" {
		t.Fatalf("reason = %q, want draining", reason)
	}
}
