package service

import (
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ForwardedForHeader carries the original client address across the
// routing tier. surfrouter overwrites it (never appends to an inbound
// value) with the connecting client's host, so a replica configured
// with TrustForwardedFor sees exactly one trustworthy hop.
const ForwardedForHeader = "X-Forwarded-For"

// maxBuckets bounds the per-client map so an attacker rotating API
// keys cannot grow daemon memory; past it, the sweep drops the stalest
// full buckets (a full bucket loses nothing by being forgotten).
const maxBuckets = 4096

// rateLimiter is a per-client token-bucket map: each client refills at
// rate tokens/second up to burst. Fairness is the point — one client
// hammering the service drains only its own bucket, never another
// client's admission.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	limited uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns nil when rate <= 0 (limiting disabled); a nil
// limiter allows everything.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends cost tokens from key's bucket, reporting whether the
// request may proceed and, when not, how long until enough tokens
// refill. Nil-safe: a nil limiter always allows.
func (l *rateLimiter) allow(key string, cost float64, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	if cost < 1 {
		cost = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	l.limited++
	wait := time.Duration((cost - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// sweepLocked evicts buckets that have been idle long enough to be
// full again — forgetting them loses no state a fresh bucket wouldn't
// have. Callers hold l.mu.
func (l *rateLimiter) sweepLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}

// rateLimitedCount snapshots the refusal counter. Nil-safe.
func (l *rateLimiter) rateLimitedCount() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limited
}

// ClientKey identifies the client a request's rate-limit bucket is
// keyed by: the X-API-Key header when present (one tenant, many
// machines), otherwise the remote host (one bucket per source address).
func ClientKey(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return "key:" + key
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// ClientKeyFor is the service-aware ClientKey: an API key always wins
// (the tenant identity survives any number of proxy hops), then — only
// when the service trusts its fronting proxy — the last X-Forwarded-For
// hop, then the remote address. Untrusted services ignore the header
// entirely: anyone can send X-Forwarded-For, and honoring it unasked
// would let one client mint unlimited rate-limit buckets.
func (s *Service) ClientKeyFor(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return "key:" + key
	}
	if s.trustForwarded {
		if xff := r.Header.Get(ForwardedForHeader); xff != "" {
			// The rightmost element is the hop appended by the nearest
			// (trusted) proxy; anything left of it is client-supplied.
			parts := strings.Split(xff, ",")
			if host := strings.TrimSpace(parts[len(parts)-1]); host != "" {
				return "fwd:" + host
			}
		}
	}
	return ClientKey(r)
}
