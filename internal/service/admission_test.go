package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"surfcomm"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/service"
)

// seededReq returns a request whose digest differs per seed, so
// concurrent requests cannot dedupe through the singleflight and every
// one of them must pass admission.
func seededReq(qasm string, seed int64) service.Request {
	return service.Request{QASM: qasm, Seed: &seed}
}

// TestQueueBoundSheds is the admission-control acceptance test: with
// one worker slot and a queue of one, a burst of distinct compiles must
// split into admitted work and immediate ErrOverloaded sheds — nobody
// waits unboundedly, nobody errors any other way — and the shed
// counter must account for every rejection.
func TestQueueBoundSheds(t *testing.T) {
	qasm := testQASM(t)
	inj := faultinject.New(1)
	inj.SetLatency(300 * time.Millisecond) // hold the slot so the burst piles up
	svc := newService(t, service.Config{Workers: 1, QueueDepth: 1, Injector: inj})

	const burst = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = svc.Compile(context.Background(), seededReq(qasm, int64(i)))
		}(i)
	}
	close(start)
	wg.Wait()

	var ok, shed int
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, surfcomm.ErrOverloaded):
			shed++
			var oe *service.OverloadError
			if !errors.As(err, &oe) {
				t.Fatalf("request %d: shed error %v is not an OverloadError", i, err)
			}
			if oe.Status != http.StatusServiceUnavailable {
				t.Fatalf("request %d: shed status %d, want 503", i, oe.Status)
			}
			if oe.RetryAfter < time.Second {
				t.Fatalf("request %d: RetryAfter %v, want >= 1s floor", i, oe.RetryAfter)
			}
		default:
			t.Fatalf("request %d: unexpected error %v", i, err)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst split ok=%d shed=%d, want both nonzero", ok, shed)
	}
	stats := svc.AdmissionStats()
	if stats.Shed != uint64(shed) {
		t.Fatalf("Shed counter = %d, want %d", stats.Shed, shed)
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Fatalf("queue not drained after burst: %+v", stats)
	}
	if stats.QueueLimit != 1 || stats.Workers != 1 {
		t.Fatalf("bounds = %+v, want workers=1 queue_limit=1", stats)
	}
}

// TestExpiredInQueueAnswersWithoutCompiling pins the satellite contract
// for queued deadlines: a request whose context expires while waiting
// for a slot returns ErrCanceled (503 at the HTTP layer) and never
// compiles.
func TestExpiredInQueueAnswersWithoutCompiling(t *testing.T) {
	qasm := testQASM(t)
	inj := faultinject.New(1)
	inj.SetLatency(400 * time.Millisecond)
	svc := newService(t, service.Config{Workers: 1, QueueDepth: 4, Injector: inj})

	// Occupy the only worker slot.
	holderDone := make(chan error, 1)
	go func() {
		_, err := svc.Compile(context.Background(), seededReq(qasm, 1))
		holderDone <- err
	}()
	// Wait until the holder is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for svc.AdmissionStats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder compile never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := svc.Compile(ctx, seededReq(qasm, 2))
	if !errors.Is(err, surfcomm.ErrCanceled) {
		t.Fatalf("queued-past-deadline error = %v, want ErrCanceled", err)
	}
	if err := <-holderDone; err != nil {
		t.Fatalf("holder compile: %v", err)
	}
	stats := svc.AdmissionStats()
	if stats.ExpiredInQueue != 1 {
		t.Fatalf("ExpiredInQueue = %d, want 1", stats.ExpiredInQueue)
	}
}

// TestDeadlineShedOnArrival pins deadline-aware admission: once the
// EWMA knows compiles take ~latency, a request with a far shorter
// deadline is shed on arrival as a typed 503 OverloadError instead of
// queueing to fail.
func TestDeadlineShedOnArrival(t *testing.T) {
	qasm := testQASM(t)
	inj := faultinject.New(1)
	inj.SetLatency(100 * time.Millisecond)
	svc := newService(t, service.Config{Workers: 1, Injector: inj})

	// Prime the EWMA: one successful compile observes >= 100ms.
	if _, err := svc.Compile(context.Background(), seededReq(qasm, 1)); err != nil {
		t.Fatalf("priming compile: %v", err)
	}
	if avg := svc.AdmissionStats().AvgCompileMillis; avg < 100 {
		t.Fatalf("EWMA %vms after a 100ms-latency compile, want >= 100", avg)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := svc.Compile(ctx, seededReq(qasm, 2))
	var oe *service.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("short-deadline error = %v, want OverloadError", err)
	}
	if oe.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", oe.Status)
	}
	if !errors.Is(err, surfcomm.ErrOverloaded) {
		t.Fatalf("error %v does not match ErrOverloaded", err)
	}
	if svc.AdmissionStats().Shed != 1 {
		t.Fatalf("Shed = %d, want 1", svc.AdmissionStats().Shed)
	}
}

// TestRateLimiterFairness is the satellite -race test: client A
// hammering past its token bucket collects 429s with Retry-After while
// client B's independent bucket keeps answering 200 — one tenant
// cannot starve another.
func TestRateLimiterFairness(t *testing.T) {
	qasm := testQASM(t)
	svc := newService(t, service.Config{RatePerSec: 0.5, Burst: 2})
	// Precompile so HTTP requests are cache hits: the limiter sits in
	// front of the cache, so hits still spend tokens, but the test never
	// waits on real compiles.
	if _, err := svc.Compile(context.Background(), service.Request{QASM: qasm}); err != nil {
		t.Fatalf("precompile: %v", err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	post := func(apiKey string) (int, http.Header) {
		payload, _ := json.Marshal(service.Request{QASM: qasm})
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/compile", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", apiKey)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	// Client A burns its burst of 2 concurrently, then keeps hammering.
	const hammer = 8
	codes := make([]int, hammer)
	headers := make([]http.Header, hammer)
	var wg sync.WaitGroup
	for i := 0; i < hammer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], headers[i] = post("client-a")
		}(i)
	}
	wg.Wait()

	var okA, limitedA int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			okA++
		case http.StatusTooManyRequests:
			limitedA++
			if headers[i].Get("Retry-After") == "" {
				t.Fatalf("429 reply %d missing Retry-After", i)
			}
		default:
			t.Fatalf("client A request %d: status %d", i, code)
		}
	}
	if okA != 2 || limitedA != hammer-2 {
		t.Fatalf("client A: ok=%d limited=%d, want burst of 2 then %d limited", okA, limitedA, hammer-2)
	}

	// Client B, untouched bucket: still served.
	if code, _ := post("client-b"); code != http.StatusOK {
		t.Fatalf("client B status %d while A is limited, want 200", code)
	}
	if rl := svc.AdmissionStats().RateLimited; rl != uint64(limitedA) {
		t.Fatalf("RateLimited counter = %d, want %d", rl, limitedA)
	}
}

// TestHTTPShedCarriesRetryAfter drives the queue bound through the
// HTTP layer: shed responses must be 503 with a Retry-After header
// while admitted requests succeed.
func TestHTTPShedCarriesRetryAfter(t *testing.T) {
	qasm := testQASM(t)
	inj := faultinject.New(1)
	inj.SetLatency(300 * time.Millisecond)
	svc := newService(t, service.Config{Workers: 1, QueueDepth: 1, Injector: inj})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	const burst = 6
	type reply struct {
		code       int
		retryAfter string
	}
	replies := make([]reply, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _ := json.Marshal(seededReq(qasm, int64(i)))
			resp, err := http.Post(srv.URL+"/compile", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			replies[i] = reply{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, r := range replies {
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter == "" {
				t.Fatalf("shed reply %d missing Retry-After", i)
			}
		default:
			t.Fatalf("reply %d: status %d", i, r.code)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst split ok=%d shed=%d, want both nonzero", ok, shed)
	}
}

// TestInjectedCompileErrorIs503 pins the chaos contract: an injected
// compile fault is a retryable 503 (a deliberate shed in the smoke
// test's accounting), never a 500, and never poisons the cache.
func TestInjectedCompileErrorIs503(t *testing.T) {
	qasm := testQASM(t)
	inj := faultinject.New(1)
	if err := inj.Set(faultinject.CompileError, 1); err != nil {
		t.Fatal(err)
	}
	svc := newService(t, service.Config{Injector: inj})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	payload, _ := json.Marshal(service.Request{QASM: qasm})
	resp, err := http.Post(srv.URL+"/compile", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected-fault status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected-fault reply missing Retry-After")
	}

	// Disarm: the error must not have been cached.
	if err := inj.Set(faultinject.CompileError, 0); err != nil {
		t.Fatal(err)
	}
	payload, _ = json.Marshal(service.Request{QASM: qasm})
	resp, err = http.Post(srv.URL+"/compile", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var cr service.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cr.Cached {
		t.Fatalf("post-disarm compile: status %d cached=%v, want fresh 200", resp.StatusCode, cr.Cached)
	}
	counts := svc.FaultCounts()
	if counts[string(faultinject.CompileError)] != 1 {
		t.Fatalf("fault counts = %v, want one compile-error", counts)
	}
}
