package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"surfcomm/internal/service"
)

// postXFF sends a /compile with an X-Forwarded-For header and returns
// the status. Every request in these tests arrives from the same
// httptest connection pool — i.e. the same remote address, exactly like
// a fleet fronted by one router.
func postXFF(t *testing.T, url, qasm, xff string) int {
	t.Helper()
	payload, _ := json.Marshal(service.Request{QASM: qasm})
	req, err := http.NewRequest(http.MethodPost, url+"/compile", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if xff != "" {
		req.Header.Set(service.ForwardedForHeader, xff)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestForwardedForTrusted pins the routed-fleet mode: with
// TrustForwardedFor set, distinct forwarded clients behind one proxy
// address get distinct token buckets — one hot client exhausts only its
// own budget while its neighbors keep being served.
func TestForwardedForTrusted(t *testing.T) {
	qasm := testQASM(t)
	svc := newService(t, service.Config{RatePerSec: 0.5, Burst: 2, TrustForwardedFor: true})
	if _, err := svc.Compile(context.Background(), service.Request{QASM: qasm}); err != nil {
		t.Fatalf("precompile: %v", err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	// Client 10.0.0.1 burns its burst of 2, then is limited.
	var ok, limited int
	for i := 0; i < 5; i++ {
		switch code := postXFF(t, srv.URL, qasm, "10.0.0.1"); code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if ok != 2 || limited != 3 {
		t.Fatalf("client 10.0.0.1: ok=%d limited=%d, want 2/3", ok, limited)
	}
	// A different forwarded client over the same proxy connection still
	// has a full bucket.
	if code := postXFF(t, srv.URL, qasm, "10.0.0.2"); code != http.StatusOK {
		t.Fatalf("client 10.0.0.2 status %d while 10.0.0.1 is limited, want 200", code)
	}
	// Client-prefixed spoof chains collapse to the trusted rightmost hop:
	// "evil, 10.0.0.2" is still 10.0.0.2's bucket (now down to 1 token).
	if code := postXFF(t, srv.URL, qasm, "evil-spoof, 10.0.0.2"); code != http.StatusOK {
		t.Fatalf("chained XFF status %d, want 200 from 10.0.0.2's bucket", code)
	}
	if code := postXFF(t, srv.URL, qasm, "10.0.0.2"); code != http.StatusTooManyRequests {
		t.Fatalf("client 10.0.0.2 fourth request status %d, want 429 (bucket shared across chain forms)", code)
	}
}

// TestForwardedForUntrusted pins the default: without
// TrustForwardedFor, the header is ignored — rotating X-Forwarded-For
// values must not mint fresh buckets, or any client could sidestep the
// limiter with one header per request.
func TestForwardedForUntrusted(t *testing.T) {
	qasm := testQASM(t)
	svc := newService(t, service.Config{RatePerSec: 0.5, Burst: 2})
	if _, err := svc.Compile(context.Background(), service.Request{QASM: qasm}); err != nil {
		t.Fatalf("precompile: %v", err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	var ok, limited int
	addrs := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4", "10.0.0.5"}
	for i, a := range addrs {
		switch code := postXFF(t, srv.URL, qasm, a); code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if ok != 2 || limited != 3 {
		t.Fatalf("rotating XFF: ok=%d limited=%d, want the shared remote-addr bucket (2/3)", ok, limited)
	}
}
