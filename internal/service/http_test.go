package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"surfcomm"
	"surfcomm/internal/service"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(service.NewHandler(newService(t, service.Config{})))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var health service.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("status = %q, want ok", health.Status)
	}
	if health.Cache.MaxEntries != service.DefaultMaxEntries {
		t.Errorf("cache bound = %d, want %d", health.Cache.MaxEntries, service.DefaultMaxEntries)
	}
}

// TestCompileEndpointCaches drives the serving loop over HTTP: a fresh
// compile, then the identical request answered from the cache with the
// same plan.
func TestCompileEndpointCaches(t *testing.T) {
	srv := newTestServer(t)
	req := service.Request{QASM: testQASM(t), Backend: "braid"}

	status, body := postJSON(t, srv.URL+"/compile", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var first service.CompileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Plan == nil || first.Plan.Cycles <= 0 {
		t.Fatalf("first compile: cached=%v plan=%+v", first.Cached, first.Plan)
	}

	status, body = postJSON(t, srv.URL+"/compile", req)
	if status != http.StatusOK {
		t.Fatalf("repeat status = %d: %s", status, body)
	}
	var second service.CompileResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat request should report cached=true")
	}
	if *second.Plan != *first.Plan {
		t.Errorf("cached plan differs: %+v vs %+v", second.Plan, first.Plan)
	}
	if second.Digest != first.Digest {
		t.Errorf("digests differ: %s vs %s", second.Digest, first.Digest)
	}
}

// TestCompileEndpointBadRequests pins the HTTP 400 contract for every
// malformed-request class, including JSON typos (unknown fields).
func TestCompileEndpointBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := map[string]any{
		"empty qasm":      service.Request{Backend: "braid"},
		"garbage qasm":    service.Request{QASM: "qubits banana"},
		"unknown backend": service.Request{QASM: testQASM(t), Backend: "nope"},
		"negative n":      service.Request{QASM: "# bad\nqubits -1\n"},
		"unknown field":   map[string]any{"qasm": testQASM(t), "distnace": 7},
	}
	t.Run("oversized batch", func(t *testing.T) {
		reqs := make([]service.Request, service.MaxBatchRequests+1)
		for i := range reqs {
			reqs[i] = service.Request{QASM: "# x\nqubits 1\nh q0\n"}
		}
		status, body := postJSON(t, srv.URL+"/batch", reqs)
		if status != http.StatusBadRequest {
			t.Errorf("status = %d, want 400 (%.120s)", status, body)
		}
	})
	t.Run("oversized body is 413", func(t *testing.T) {
		body := `{"qasm": "` + strings.Repeat("x", service.MaxBodyBytes) + `"}`
		resp, err := http.Post(srv.URL+"/compile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413 for oversized body", resp.StatusCode)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		body := `{"qasm": "x"}{"backend": "bogus"}`
		resp, err := http.Post(srv.URL+"/compile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400 for concatenated bodies", resp.StatusCode)
		}
	})
	for name, req := range cases {
		t.Run(name, func(t *testing.T) {
			status, body := postJSON(t, srv.URL+"/compile", req)
			if status != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (%s)", status, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Errorf("expected JSON error body, got %s", body)
			}
		})
	}
}

// TestBatchEndpointMixedResults pins per-slot error isolation over
// HTTP: a failing request occupies its slot without failing the batch.
func TestBatchEndpointMixedResults(t *testing.T) {
	srv := newTestServer(t)
	qasm := testQASM(t)
	status, body := postJSON(t, srv.URL+"/batch", []service.Request{
		{QASM: qasm, Backend: "braid"},
		{QASM: qasm, Backend: "nope"},
		{QASM: qasm, Backend: "planar"},
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var out []service.CompileResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d slots, want 3", len(out))
	}
	if out[0].Plan == nil || out[0].Plan.Backend != "braid" {
		t.Errorf("slot 0 = %+v, want braid plan", out[0])
	}
	if out[1].Error == "" || !strings.Contains(out[1].Error, "bad config") {
		t.Errorf("slot 1 error = %q, want bad-config failure", out[1].Error)
	}
	if out[2].Plan == nil || out[2].Plan.Backend != "planar" {
		t.Errorf("slot 2 = %+v, want planar plan", out[2])
	}
}

func TestEstimateEndpoint(t *testing.T) {
	srv := newTestServer(t)
	status, body := postJSON(t, srv.URL+"/estimate", service.Request{QASM: testQASM(t)})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var est service.EstimateResponse
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	want, err := surfcomm.EstimateCircuit(surfcomm.GSE(surfcomm.GSEConfig{M: 8, Steps: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if est.LogicalOps != want.LogicalOps || est.LogicalQubits != want.LogicalQubits {
		t.Errorf("estimate = %+v, want ops=%d qubits=%d", est, want.LogicalOps, want.LogicalQubits)
	}
}

func TestModelsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("reference characterization is slow")
	}
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var models []service.ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("no models returned")
	}
	names := make(map[string]bool, len(models))
	for _, m := range models {
		names[m.Name] = true
		if m.Parallelism <= 0 {
			t.Errorf("%s: parallelism %g, want > 0", m.Name, m.Parallelism)
		}
	}
	if !names["GSE"] {
		t.Errorf("reference suite missing GSE: %v", names)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile status = %d, want 405", resp.StatusCode)
	}
}

// TestReadyzFlipsOnDrain pins the probe split over HTTP: /readyz
// answers 200 while serving and 503 with Retry-After once the service
// drains, while /healthz keeps reporting liveness (with the drain
// flag) throughout.
func TestReadyzFlipsOnDrain(t *testing.T) {
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while serving = %d, want 200", resp.StatusCode)
	}

	svc.Drain()
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 missing Retry-After")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness != readiness)", resp.StatusCode)
	}
	var health service.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining {
		t.Fatal("/healthz does not report draining")
	}
	if health.Admission.Workers < 1 || health.Admission.QueueLimit != service.DefaultQueueDepth {
		t.Fatalf("admission snapshot = %+v, want workers >= 1, default queue limit", health.Admission)
	}
}

// TestMalformedDeadlineHeaderIs400 pins the header contract: a
// deadline the server cannot parse is the client's error, answered
// before any compile work.
func TestMalformedDeadlineHeaderIs400(t *testing.T) {
	srv := newTestServer(t)
	payload, err := json.Marshal(service.Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"soon", "-5s", "2006-13-45T99:99:99Z"} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/compile", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.DeadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDeadlineHeaderHonored pins the happy path: a generous duration
// deadline passes through and the request still compiles.
func TestDeadlineHeaderHonored(t *testing.T) {
	srv := newTestServer(t)
	payload, err := json.Marshal(service.Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/compile", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.DeadlineHeader, "30s")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var cr service.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Plan == nil {
		t.Fatal("no plan in response")
	}
}
