package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"surfcomm"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/scerr"
	"surfcomm/internal/store"
)

// errBodyTooLarge classifies a request body over MaxBodyBytes; it maps
// to 413 so clients keying retry/split behavior on the status can tell
// "too big" from "malformed".
var errBodyTooLarge = errors.New("service: request body exceeds the size cap")

// PlanSummary is the JSON view of a compiled plan: the schedule and
// footprint metrics without the backend-specific artifacts (schedules
// and move lists stay server-side in the cache).
type PlanSummary struct {
	Backend        string  `json:"backend"`
	Circuit        string  `json:"circuit"`
	Distance       int     `json:"distance"`
	Seed           int64   `json:"seed"`
	Device         string  `json:"device"`
	Cycles         int64   `json:"cycles"`
	Seconds        float64 `json:"seconds"`
	PhysicalQubits float64 `json:"physical_qubits"`
	CommOps        int64   `json:"comm_ops"`
}

// Summarize projects a plan to its JSON view.
func Summarize(p surfcomm.Plan) PlanSummary {
	return PlanSummary{
		Backend:        p.Backend,
		Circuit:        p.Circuit,
		Distance:       p.Distance,
		Seed:           p.Seed,
		Device:         p.Device,
		Cycles:         p.Cycles,
		Seconds:        p.Seconds,
		PhysicalQubits: p.PhysicalQubits,
		CommOps:        p.CommOps,
	}
}

// CompileResponse is the /compile reply (and one /batch slot).
type CompileResponse struct {
	Plan *PlanSummary `json:"plan,omitempty"`
	// Cached reports whether the plan came from the cache or a deduped
	// in-flight compile — bit-identical to a fresh compile either way.
	Cached bool   `json:"cached"`
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
}

// EstimateResponse is the /estimate reply (the Table 2 columns).
type EstimateResponse struct {
	Name          string  `json:"name"`
	LogicalQubits int     `json:"logical_qubits"`
	LogicalOps    int     `json:"logical_ops"`
	TCount        int     `json:"t_count"`
	TwoQubitOps   int     `json:"two_qubit_ops"`
	CriticalPath  int     `json:"critical_path"`
	Parallelism   float64 `json:"parallelism"`
}

// ModelResponse is one characterized application in the /models reply.
type ModelResponse struct {
	Name             string  `json:"name"`
	Parallelism      float64 `json:"parallelism"`
	SchedParallelism float64 `json:"sched_parallelism"`
	MoveFraction     float64 `json:"move_fraction"`
	CongestionDD     float64 `json:"congestion_dd"`
}

// CalibrationHealth is the /healthz view of the service's startup
// calibration snapshot: the content digest (compared across a replica
// fleet to detect divergent calibrations) and the snapshot's age.
type CalibrationHealth struct {
	Name       string  `json:"name"`
	Digest     string  `json:"digest"`
	AgeSeconds float64 `json:"age_seconds"`
}

// HealthResponse is the /healthz reply: liveness plus the cache,
// admission, store, and chaos counters operators watch. /healthz is
// pure liveness — it answers 200 even while draining or overloaded;
// /readyz is the routing signal.
type HealthResponse struct {
	Status        string             `json:"status"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Workers       int                `json:"workers"`
	Draining      bool               `json:"draining"`
	Cache         CacheStats         `json:"cache"`
	Admission     AdmissionStats     `json:"admission"`
	Decode        DecodeStats        `json:"decode"`
	Store         *store.Stats       `json:"store,omitempty"`
	Faults        map[string]uint64  `json:"faults,omitempty"`
	Calibration   *CalibrationHealth `json:"calibration,omitempty"`
}

// httpStatus maps pipeline sentinel errors to HTTP statuses: bad
// configs are the client's fault (400), unroutable devices are a valid
// request the fabric cannot satisfy (422), cancellations and shed or
// chaos-failed requests are retryable server conditions (503 — typed
// OverloadErrors refine rate limits to 429), anything else is a server
// error.
func httpStatus(err error) int {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		return oe.Status
	case errors.Is(err, errBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, scerr.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, scerr.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, scerr.ErrUnroutable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, scerr.ErrCanceled),
		errors.Is(err, scerr.ErrOverloaded),
		errors.Is(err, faultinject.ErrInjected):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

func writeErr(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	// Every retryable refusal carries an honest Retry-After: typed
	// overload errors know their queue-drain / token-refill estimate;
	// other 503s (shutdown, injected faults) suggest an immediate-ish
	// retry against another replica.
	var oe *OverloadError
	if errors.As(err, &oe) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
	} else if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// retryAfterSeconds rounds a hint up to whole seconds (the header's
// granularity), minimum 1 — "Retry-After: 0" is an invitation to storm.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// MaxBodyBytes caps a request body: big enough for any benchmark-suite
// QASM batch, small enough that one client cannot exhaust daemon
// memory.
const MaxBodyBytes = 16 << 20

// MaxBatchRequests caps one /batch call; bigger workloads should be
// split so the pool interleaves fairly between clients.
const MaxBatchRequests = 1024

// decodeJSON decodes a size-capped request body, rejecting trailing
// garbage and unknown fields so client typos surface as 400s instead
// of silently compiling the default target.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w (%d bytes max)", errBodyTooLarge, mbe.Limit)
		}
		return scerr.BadConfig("service: body: %v", err)
	}
	if dec.More() {
		return scerr.BadConfig("service: body: trailing data after JSON value")
	}
	return nil
}

// DeadlineHeader is the request header carrying the client's compile
// deadline: a Go duration ("1.5s") or an absolute RFC 3339 instant.
// The handler rederives it as a context deadline, so it is honored
// end-to-end — shed on arrival when the queue cannot meet it, answered
// 503 without compiling when it expires in the queue, and canceled
// mid-compile through the ErrCanceled plumbing when it passes.
const DeadlineHeader = "X-Request-Deadline"

// withRequestDeadline installs the DeadlineHeader as a context
// deadline; malformed values are a 400, not a silent infinite budget.
func withRequestDeadline(w http.ResponseWriter, r *http.Request) (*http.Request, context.CancelFunc, bool) {
	hv := r.Header.Get(DeadlineHeader)
	if hv == "" {
		return r, func() {}, true
	}
	if d, err := time.ParseDuration(hv); err == nil && d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		return r.WithContext(ctx), cancel, true
	}
	if t, err := time.Parse(time.RFC3339Nano, hv); err == nil {
		ctx, cancel := context.WithDeadline(r.Context(), t)
		return r.WithContext(ctx), cancel, true
	}
	writeErr(w, scerr.BadConfig("service: bad %s %q (want a positive Go duration or an RFC 3339 time)",
		DeadlineHeader, hv))
	return nil, nil, false
}

// NewHandler mounts the serving endpoints:
//
//	POST /compile   one Request        -> CompileResponse
//	                (Accept: application/x-ndjson streams stage events
//	                 then the final CompileResponse — see stream.go)
//	POST /batch     []Request          -> []CompileResponse
//	POST /decode    NDJSON stream      -> NDJSON stream (see decode.go)
//	POST /estimate  Request (qasm)     -> EstimateResponse
//	GET  /models    -                  -> []ModelResponse
//	GET  /healthz   -                  -> HealthResponse (liveness; always 200)
//	GET  /readyz    -                  -> 200 ready / 503 draining or overloaded
//
// The compile endpoints sit behind the service's per-client rate
// limiter (keyed by ClientKey; a batch costs its slot count) and honor
// the X-Request-Deadline header. The request context governs each
// caller's wait (and, with caching disabled, its private compile);
// cache-shared compiles run under the service's base context, so a
// dropped client never cancels work other requests are latched onto
// while a server shutdown still aborts everything through the
// pipeline's ErrCanceled plumbing.
func NewHandler(s *Service) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) {
		if err := s.AllowClient(s.ClientKeyFor(r), 1); err != nil {
			writeErr(w, err)
			return
		}
		r, cancel, ok := withRequestDeadline(w, r)
		if !ok {
			return
		}
		defer cancel()
		var req Request
		if err := decodeJSON(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		if wantsNDJSON(r) {
			streamCompile(s, w, r, req)
			return
		}
		res, err := s.Compile(r.Context(), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		plan := Summarize(res.Plan)
		writeJSON(w, http.StatusOK, CompileResponse{Plan: &plan, Cached: res.Cached, Digest: res.Digest})
	})

	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		r, cancel, ok := withRequestDeadline(w, r)
		if !ok {
			return
		}
		defer cancel()
		var reqs []Request
		if err := decodeJSON(w, r, &reqs); err != nil {
			writeErr(w, err)
			return
		}
		if len(reqs) > MaxBatchRequests {
			writeErr(w, scerr.BadConfig("service: batch of %d exceeds the %d-request cap; split it",
				len(reqs), MaxBatchRequests))
			return
		}
		// A batch spends one token per slot: batching amortizes HTTP
		// overhead, not a client's fair share of the compile pool.
		if err := s.AllowClient(s.ClientKeyFor(r), len(reqs)); err != nil {
			writeErr(w, err)
			return
		}
		results := s.CompileBatch(r.Context(), reqs)
		out := make([]CompileResponse, len(results))
		for i, res := range results {
			out[i] = CompileResponse{Cached: res.Cached, Digest: res.Digest}
			if res.Err != nil {
				out[i].Error = res.Err.Error()
				continue
			}
			plan := Summarize(res.Plan)
			out[i].Plan = &plan
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		if err := s.AllowClient(s.ClientKeyFor(r), 1); err != nil {
			writeErr(w, err)
			return
		}
		var req Request
		if err := decodeJSON(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		est, err := s.Estimate(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResponse{
			Name:          est.Name,
			LogicalQubits: est.LogicalQubits,
			LogicalOps:    est.LogicalOps,
			TCount:        est.TCount,
			TwoQubitOps:   est.TwoQubitOps,
			CriticalPath:  est.CriticalPath,
			Parallelism:   est.Parallelism,
		})
	})

	mux.HandleFunc("POST /decode", handleDecode(s))

	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		models, err := s.Models(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		out := make([]ModelResponse, len(models))
		for i, m := range models {
			out[i] = ModelResponse{
				Name:             m.Name,
				Parallelism:      m.Parallelism,
				SchedParallelism: m.SchedParallelism,
				MoveFraction:     m.MoveFraction,
				CongestionDD:     m.CongestionDD,
			}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, reason := s.Ready()
		writeJSON(w, http.StatusOK, HealthResponse{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			Workers:       s.workers,
			Draining:      reason == "draining",
			Cache:         s.Stats(),
			Admission:     s.AdmissionStats(),
			Decode:        s.DecodeStats(),
			Store:         s.StoreStats(),
			Faults:        s.FaultCounts(),
			Calibration:   s.CalibrationHealth(time.Now()),
		})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := s.Ready()
		if !ready {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": reason})
	})

	return mux
}
