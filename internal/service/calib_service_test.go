package service_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"surfcomm"
	"surfcomm/internal/service"
)

// TestRequestCalibrationSplitsDigests pins the cache-correctness story:
// a per-request calibration snapshot must move the compile digest (its
// measurements change the plan), two requests under the same snapshot
// share one cache line, and a different snapshot splits again.
func TestRequestCalibrationSplitsDigests(t *testing.T) {
	svc := newService(t, service.Config{})
	qasm := testQASM(t)
	var calA, calB bytes.Buffer
	if err := surfcomm.SyntheticCalibration(1, 8, 8).Encode(&calA); err != nil {
		t.Fatal(err)
	}
	if err := surfcomm.SyntheticCalibration(2, 8, 8).Encode(&calB); err != nil {
		t.Fatal(err)
	}

	plain, err := svc.Compile(context.Background(), service.Request{QASM: qasm, Backend: "braid"})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := svc.Compile(context.Background(), service.Request{QASM: qasm, Backend: "braid", Calibration: calA.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Digest == plain.Digest {
		t.Fatal("calibrated request shares the uncalibrated digest")
	}
	a2, err := svc.Compile(context.Background(), service.Request{QASM: qasm, Backend: "braid", Calibration: calA.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Digest != a1.Digest || !a2.Cached {
		t.Fatalf("same-snapshot repeat missed the cache (digest %s vs %s, cached=%v)",
			a2.Digest, a1.Digest, a2.Cached)
	}
	b, err := svc.Compile(context.Background(), service.Request{QASM: qasm, Backend: "braid", Calibration: calB.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if b.Digest == a1.Digest {
		t.Fatal("different snapshots share a digest")
	}

	if _, err := svc.Compile(context.Background(),
		service.Request{QASM: qasm, Calibration: []byte(`{"version": 99}`)}); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Fatalf("malformed calibration: err = %v, want ErrBadConfig", err)
	}
}

// TestHeavyHexDeviceSpec pins the serving-layer preset: "heavy-hex"
// compiles (it is connected at any dims) and keys its own cache line;
// a defect fraction on it is rejected (the pattern is deterministic).
func TestHeavyHexDeviceSpec(t *testing.T) {
	svc := newService(t, service.Config{})
	qasm := testQASM(t)
	plain, err := svc.Compile(context.Background(), service.Request{QASM: qasm, Backend: "braid"})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := svc.Compile(context.Background(), service.Request{
		QASM: qasm, Backend: "braid", Device: &service.DeviceSpec{Preset: "heavy-hex", Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hex.Digest == plain.Digest {
		t.Fatal("heavy-hex request shares the square-mesh digest")
	}
	if hex.Plan.Cycles < plain.Plan.Cycles {
		t.Fatalf("heavy-hex schedule (%d cycles) beat the full square mesh (%d)",
			hex.Plan.Cycles, plain.Plan.Cycles)
	}
	if _, err := svc.Compile(context.Background(), service.Request{
		QASM: qasm, Device: &service.DeviceSpec{Preset: "heavy-hex", Frac: 0.05},
	}); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Fatalf("heavy-hex with frac: err = %v, want ErrBadConfig", err)
	}
}

// TestCalibrationHealth pins the /healthz block: nil without a
// startup snapshot, and {name, digest, age} with one.
func TestCalibrationHealth(t *testing.T) {
	if h := newService(t, service.Config{}).CalibrationHealth(time.Now()); h != nil {
		t.Fatalf("uncalibrated service reports %+v", h)
	}
	cal := surfcomm.SyntheticCalibration(1, 8, 8)
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1),
		surfcomm.WithCalibration(cal))
	if err != nil {
		t.Fatal(err)
	}
	h := service.New(tc, service.Config{}).CalibrationHealth(cal.Taken.Add(90 * time.Second))
	if h == nil {
		t.Fatal("calibrated service reports no calibration health")
	}
	if h.Name != cal.Name || h.Digest != cal.Digest() {
		t.Fatalf("health = %+v, want name %q digest %q", h, cal.Name, cal.Digest())
	}
	if h.AgeSeconds != 90 {
		t.Fatalf("age = %gs, want 90", h.AgeSeconds)
	}
}
