package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
)

// Streaming compile progress: a client that sets
// `Accept: application/x-ndjson` on POST /compile gets an NDJSON
// stream instead of one JSON reply — stage events as the request moves
// through the service, then the final CompileResponse as the last
// line. Long compiles (big circuits, high distances, defective-device
// reroutes) stop looking like a hung connection: the client sees the
// request resolve, queue, and compile in real time, and routers pass
// the stream through unbuffered.
//
// Frame grammar (one JSON value per line):
//
//	{"stage":"resolved","digest":"...","backend":"braid"}
//	{"stage":"queued"}                       (cache miss entering admission)
//	{"stage":"compiling","backend":"braid"}  (slot acquired, work started)
//	{"stage":"toolchain/compile","backend":"braid","cell":"gse_8"}
//	{"stage":"cached"}                       (hit/dedup/disk — no compile ran)
//	{"plan":{...},"cached":false,"digest":"..."}   (final line, success)
//	{"error":"...","status":503}                   (final line, failure)
//
// Stage lines always carry "stage"; the final line never does. Errors
// before the first stage line (malformed body, rate limit, bad
// deadline) are plain HTTP statuses — the stream only commits to 200
// once the request has resolved.

// Stage names emitted on the /compile NDJSON stream.
const (
	StageResolved  = "resolved"
	StageQueued    = "queued"
	StageCompiling = "compiling"
	StageCached    = "cached"
)

// StageEvent is one progress line on a streaming compile.
type StageEvent struct {
	Stage   string `json:"stage"`
	Backend string `json:"backend,omitempty"`
	Cell    string `json:"cell,omitempty"`
	Digest  string `json:"digest,omitempty"`
}

// StreamErrorResponse is the final NDJSON line of a failed streaming
// compile: by the time the failure is known the 200 status line is long
// gone, so the HTTP status that a plain request would have received
// rides in the body.
type StreamErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// NDJSONContentType is the streaming compile negotiation token.
const NDJSONContentType = "application/x-ndjson"

// wantsNDJSON reports whether the request negotiated a streaming
// reply.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), NDJSONContentType)
}

// CompileStream serves one request like Compile while forwarding stage
// events to emit (which must be non-nil and is called on this
// goroutine, strictly in order).
func (s *Service) CompileStream(ctx context.Context, req Request, emit func(StageEvent)) (Result, error) {
	return s.compile(ctx, req, emit)
}

// streamCompile is the NDJSON branch of POST /compile. The caller has
// already applied the rate limiter, deadline header, and body decode —
// their failures are still plain HTTP statuses.
func streamCompile(s *Service, w http.ResponseWriter, r *http.Request, req Request) {
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", NDJSONContentType)
	enc := json.NewEncoder(w)
	wrote := false
	send := func(v any) {
		if enc.Encode(v) == nil {
			wrote = true
			rc.Flush() //nolint:errcheck // best-effort; a dead client surfaces on the next write
		}
	}
	res, err := s.CompileStream(r.Context(), req, func(ev StageEvent) { send(ev) })
	if err != nil {
		if !wrote {
			// Nothing on the wire yet (resolve failed): the client gets
			// the same plain status a non-streaming request would.
			writeErr(w, err)
			return
		}
		send(StreamErrorResponse{Error: err.Error(), Status: httpStatus(err)})
		return
	}
	plan := Summarize(res.Plan)
	send(CompileResponse{Plan: &plan, Cached: res.Cached, Digest: res.Digest})
}
