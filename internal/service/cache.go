package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"surfcomm"
	"surfcomm/internal/scerr"
)

// planCache is the digest-keyed plan cache behind the serving layer: a
// size-bounded LRU over compiled Plans with integrated singleflight, so
// concurrent identical requests compile once and everyone else waits on
// the in-flight result. Errors are never cached — a failed compile is
// recomputed on the next request (config errors are cheap to rediscover
// and transient cancellations must not poison the key).
//
// Correctness leans on compile determinism: a Plan is a pure function
// of (circuit, target, backend) because all pipeline randomness derives
// from explicit seeds, so serving a cached Plan is bit-identical to
// recompiling (pinned by the digest-parity tests).
type planCache struct {
	// disk is the optional crash-safe persistence layer under the LRU:
	// read-through on a miss (before compiling), write-behind on a
	// fresh compile. Nil when the service has no store.
	disk *diskLayer

	mu          sync.Mutex
	max         int // weight budget (see planWeight)
	totalWeight int
	entries     map[string]*list.Element
	lru         *list.List // front = most recently used; values are *cacheEntry
	flights     map[string]*flight

	hits, misses, deduped, evictions uint64
}

type cacheEntry struct {
	key    string
	plan   surfcomm.Plan
	weight int
}

// scheduleEntriesPerWeight converts retained schedule artifacts to
// weight units (roughly tens-of-KB granularity).
const scheduleEntriesPerWeight = 256

// planWeight prices a plan for the cache budget. A summary-only plan
// weighs 1, so the budget reads as an entry bound for typical serving;
// plans carrying recorded schedules (record_schedule requests, planar
// move lists) weigh proportionally more, so a handful of huge
// schedules cannot grow resident memory past the same budget that
// bounds thousands of small plans.
func planWeight(p surfcomm.Plan) int {
	w := 1
	if p.Braid != nil {
		w += len(p.Braid.Schedule) / scheduleEntriesPerWeight
	}
	if p.SIMD != nil {
		w += len(p.SIMD.Moves) / scheduleEntriesPerWeight
	}
	return w
}

// flight is one in-progress compile other requests can latch onto.
type flight struct {
	done chan struct{}
	plan surfcomm.Plan
	err  error
}

// newPlanCache returns a cache bounded to max entries; max < 1 disables
// caching (every request compiles, nothing is retained or deduped).
func newPlanCache(max int) *planCache {
	return &planCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// do returns the plan for key, computing it at most once across
// concurrent callers: a present key is a hit, an in-flight key blocks
// on the existing compile (a dedup, reported as cached), and an absent
// key consults the disk layer (when persist allows) before running
// compute. The wait is cancelable through ctx; abandoning a wait never
// aborts the underlying compile, which still lands in the cache for
// future requests (compute must not be bound to any single waiter's
// context — the Service runs it under its base context).
func (c *planCache) do(ctx context.Context, key string, persist bool, compute func() (surfcomm.Plan, error)) (plan surfcomm.Plan, cached bool, err error) {
	if c.max < 1 {
		p, err := compute()
		return p, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		plan := el.Value.(*cacheEntry).plan
		c.mu.Unlock()
		return plan, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.deduped++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.plan, f.err == nil, f.err
		case <-ctx.Done():
			return surfcomm.Plan{}, false, scerr.Canceled(ctx)
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// The flight must be resolved even if compute panics (the compile
	// pipeline is panic-free by construction, but a wedged key — flight
	// never deleted, done never closed, waiters stuck until their own
	// contexts cancel — is too severe a failure mode to leave to that
	// guarantee). On panic the waiters get an error, the key becomes
	// retryable, and the panic continues to the caller.
	defer func() {
		r := recover()
		c.mu.Lock()
		delete(c.flights, key)
		if r != nil {
			f.err = fmt.Errorf("service: compile panicked: %v", r)
		} else if f.err == nil {
			c.insertLocked(key, f.plan)
		}
		c.mu.Unlock()
		close(f.done)
		if r != nil {
			panic(r)
		}
	}()
	// Read-through: a plan another run (or replica) already compiled is
	// served from disk as a hit and promoted into the LRU by the
	// resolution above. The store verifies checksums on read, so a torn
	// or corrupt entry surfaces here as a plain miss.
	if persist {
		if p, ok := c.disk.load(key); ok {
			f.plan = p
			return f.plan, true, nil
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	f.plan, f.err = compute()
	if f.err == nil && persist {
		c.disk.save(key, f.plan)
	}
	return f.plan, false, f.err
}

// peek returns the cached plan under key without touching the
// hit/miss counters (the module layer keeps its own), still promoting
// the entry. Module plans share the LRU budget with program plans —
// a namespaced key ("module/<digest>") keeps the keyspaces apart.
func (c *planCache) peek(key string) (surfcomm.Plan, bool) {
	if c.max < 1 {
		return surfcomm.Plan{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return surfcomm.Plan{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put inserts a plan under key (no-op with caching disabled), evicting
// past the weight budget like any fresh compile.
func (c *planCache) put(key string, plan surfcomm.Plan) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return // already present (racing module compiles agree byte-for-byte)
	}
	c.insertLocked(key, plan)
}

// insertLocked adds a freshly compiled plan and evicts from the LRU
// tail past the weight budget. A plan heavier than the entire budget
// is not retained at all (it is served to its requesters and then
// recompiled on demand — correct, just never a hit). Callers hold
// c.mu.
func (c *planCache) insertLocked(key string, plan surfcomm.Plan) {
	w := planWeight(plan)
	if w > c.max {
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, plan: plan, weight: w})
	c.totalWeight += w
	for c.totalWeight > c.max {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.totalWeight -= e.weight
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the plan cache's counters.
type CacheStats struct {
	// Entries is the current cached-plan count. MaxEntries is the LRU
	// weight budget: a summary-only plan weighs 1, plans retaining
	// recorded schedules weigh more (see Weight), and the total never
	// exceeds the budget.
	Entries    int `json:"entries"`
	MaxEntries int `json:"max_entries"`
	// Weight is the current total plan weight (== Entries when no
	// cached plan carries recorded schedules).
	Weight int `json:"weight"`
	// Hits are requests answered from a cached plan; Misses compiled
	// fresh; Deduped latched onto a concurrent identical compile;
	// DiskHits were read through from the persistent plan store (also
	// served as cached).
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Deduped  uint64 `json:"deduped"`
	DiskHits uint64 `json:"disk_hits"`
	// Evictions counts plans dropped past the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Inflight is the number of compiles running right now.
	Inflight int `json:"inflight"`
	// Module-layer counters (hierarchical compiles only): ModuleHits
	// are module plans served from the LRU, ModuleDiskHits were read
	// through from the persistent store, ModuleMisses compiled fresh.
	// Filled by Service.Stats — the planCache itself does not track
	// them.
	ModuleHits     uint64 `json:"module_hits,omitempty"`
	ModuleDiskHits uint64 `json:"module_disk_hits,omitempty"`
	ModuleMisses   uint64 `json:"module_misses,omitempty"`
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	diskHits := c.disk.hits()
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.lru.Len(),
		MaxEntries: c.max,
		Weight:     c.totalWeight,
		Hits:       c.hits,
		Misses:     c.misses,
		Deduped:    c.deduped,
		DiskHits:   diskHits,
		Evictions:  c.evictions,
		Inflight:   len(c.flights),
	}
}
