package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"surfcomm/internal/faultinject"
	"surfcomm/internal/service"
)

// streamLines POSTs a /compile with the NDJSON accept header and
// returns the decoded stream: the stage names in order, the final
// response line (raw), and the HTTP status.
func streamLines(t *testing.T, url string, body []byte) (stages []string, final map[string]json.RawMessage, status int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", service.NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, resp.StatusCode
	}
	if ct := resp.Header.Get("Content-Type"); ct != service.NDJSONContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, service.NDJSONContentType)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if rawStage, ok := obj["stage"]; ok {
			var stage string
			json.Unmarshal(rawStage, &stage) //nolint:errcheck
			stages = append(stages, stage)
			continue
		}
		if final != nil {
			t.Fatalf("two final lines in one stream (second: %s)", line)
		}
		final = obj
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return stages, final, resp.StatusCode
}

// TestCompileStreamStagesThenPlan pins the NDJSON contract: a cold
// compile streams resolved → queued → compiling → toolchain/compile and
// ends with the exact CompileResponse the plain path would return; the
// identical repeat streams resolved → cached.
func TestCompileStreamStagesThenPlan(t *testing.T) {
	qasm := testQASM(t)
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	body, _ := json.Marshal(service.Request{QASM: qasm})

	stages, final, status := streamLines(t, srv.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	want := []string{service.StageResolved, service.StageQueued, service.StageCompiling, "toolchain/compile"}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("cold stream stages = %v, want %v", stages, want)
	}
	if final == nil {
		t.Fatal("stream ended without a final line")
	}
	var cached bool
	json.Unmarshal(final["cached"], &cached) //nolint:errcheck
	if cached {
		t.Fatal("cold compile reported cached")
	}
	var digest string
	json.Unmarshal(final["digest"], &digest) //nolint:errcheck

	// The streamed plan must byte-match the plain endpoint's reply.
	resp, err := http.Post(srv.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var plain struct {
		Plan   json.RawMessage `json:"plan"`
		Cached bool            `json:"cached"`
		Digest string          `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !plain.Cached || plain.Digest != digest {
		t.Fatalf("plain repeat: cached=%v digest=%s, want cached hit of %s", plain.Cached, plain.Digest, digest)
	}
	var planCompact, streamCompact bytes.Buffer
	json.Compact(&planCompact, plain.Plan)      //nolint:errcheck
	json.Compact(&streamCompact, final["plan"]) //nolint:errcheck
	if planCompact.String() != streamCompact.String() {
		t.Fatalf("streamed plan %s != plain plan %s", streamCompact.String(), planCompact.String())
	}

	// Identical repeat over the stream: no queue, no compile — just
	// resolved then cached, and a cached final line.
	stages, final, status = streamLines(t, srv.URL, body)
	if status != http.StatusOK {
		t.Fatalf("repeat status = %d", status)
	}
	wantHit := []string{service.StageResolved, service.StageCached}
	if strings.Join(stages, ",") != strings.Join(wantHit, ",") {
		t.Fatalf("hit stream stages = %v, want %v", stages, wantHit)
	}
	json.Unmarshal(final["cached"], &cached) //nolint:errcheck
	if !cached {
		t.Fatal("repeat stream not served cached")
	}
}

// TestCompileStreamBadRequestIsPlainHTTP pins the pre-commit contract:
// failures before the first stage line (malformed QASM here) answer
// with the ordinary HTTP status, not a 200 stream.
func TestCompileStreamBadRequestIsPlainHTTP(t *testing.T) {
	svc := newService(t, service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	body, _ := json.Marshal(service.Request{QASM: "qubits banana"})
	_, _, status := streamLines(t, srv.URL, body)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
}

// TestCompileStreamMidStreamError pins the post-commit contract: once
// stages are on the wire, a failing compile ends the stream with an
// in-band error line carrying the status a plain request would have
// received (503 for injected chaos), never a dangling half-stream.
func TestCompileStreamMidStreamError(t *testing.T) {
	qasm := testQASM(t)
	inj, err := faultinject.Parse("compile-error=1.0,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	svc := newService(t, service.Config{Injector: inj})
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	body, _ := json.Marshal(service.Request{QASM: qasm})

	stages, final, status := streamLines(t, srv.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream already committed)", status)
	}
	// The injected fault fires as the slot is claimed, before any real
	// compile work — so the stream commits through "queued" and then
	// reports the failure in-band.
	want := []string{service.StageResolved, service.StageQueued}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	if final == nil {
		t.Fatal("no final error line")
	}
	var errMsg string
	var errStatus int
	json.Unmarshal(final["error"], &errMsg)     //nolint:errcheck
	json.Unmarshal(final["status"], &errStatus) //nolint:errcheck
	if errMsg == "" || errStatus != http.StatusServiceUnavailable {
		t.Fatalf("final line error=%q status=%d, want injected-fault 503", errMsg, errStatus)
	}
}
