// Package service is the compile-serving layer over the surfcomm
// toolchain: a digest-keyed, LRU-bounded plan cache with singleflight
// deduplication, a batched compile API running on the sweep worker
// pool, and the HTTP handler cmd/surfcommd mounts. The serving access
// pattern is the paper's toolflow inverted — many requests over few
// distinct (circuit, target) pairs (the §7 workload suite compiled at
// varying targets) — which is exactly where caching identical compiles
// pays off. Cached plans are bit-identical to fresh compiles because
// every pipeline stage derives its randomness from explicit seeds; the
// digest-parity tests pin that property.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"surfcomm"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/scerr"
	"surfcomm/internal/store"
	"surfcomm/internal/sweep"
)

// DefaultMaxEntries is the LRU bound a zero Config selects.
const DefaultMaxEntries = 256

// Config sizes a Service.
type Config struct {
	// MaxEntries bounds the plan cache; 0 selects DefaultMaxEntries,
	// negative disables caching entirely.
	MaxEntries int
	// Workers bounds the batch compile pool; 0 selects the toolchain's
	// WithWorkers setting (which itself defaults to GOMAXPROCS).
	Workers int
	// BaseContext is the context cache-shared compiles run under (nil
	// selects context.Background()). Cached compiles serve every
	// request with the same digest, so they must outlive any one
	// client: a request abandoning its wait never aborts the compile
	// others are latched onto. Daemons pass their process context here
	// so graceful shutdown still cancels in-flight compiles through
	// the ErrCanceled plumbing.
	BaseContext context.Context
	// QueueDepth bounds the compile queue behind the worker slots:
	// arrivals past it (or whose deadline the queue provably cannot
	// meet) are shed immediately with ErrOverloaded instead of waiting
	// to fail. 0 selects DefaultQueueDepth; negative allows no queueing
	// at all (shed whenever every slot is busy).
	QueueDepth int
	// RatePerSec enables per-client token-bucket rate limiting at that
	// refill rate (0 disables); Burst is the bucket size (0 selects
	// 2×RatePerSec, minimum 1). Clients are keyed by ClientKey.
	RatePerSec float64
	Burst      int
	// TrustForwardedFor keys per-client rate limiting on the last
	// X-Forwarded-For hop instead of the connection's remote address.
	// Only enable it when every connection reaches this daemon through a
	// trusted proxy that overwrites the header (surfrouter does): behind
	// a router every connection shares the router's address, so without
	// this one router consumes the whole fleet's token budget — and with
	// it an untrusted client could spoof arbitrary identities.
	TrustForwardedFor bool
	// Store is the crash-safe disk plan store layered under the LRU:
	// read-through on misses, write-behind on fresh compiles, so a
	// restarted daemon (or a replica sharing the directory) serves warm
	// hits. Nil disables persistence. Persistence requires caching
	// (MaxEntries >= 0).
	Store *store.Store
	// Injector arms the chaos layer (compile latency/error injection);
	// nil injects nothing. The store's write faults are armed on the
	// store itself at Open.
	Injector *faultinject.Injector
}

// Service serves compile requests from a shared toolchain through the
// plan cache. It is safe for concurrent use.
type Service struct {
	tc      *surfcomm.Toolchain
	cache   *planCache
	workers int
	base    context.Context
	// adm bounds compiles service-wide (worker slots + a bounded,
	// deadline-priced queue): every batch runs its own worker pool, so
	// without a shared bound N concurrent batches would run N×workers
	// compiles at once. Cache hits bypass it.
	adm            *admission
	limiter        *rateLimiter
	trustForwarded bool
	inj            *faultinject.Injector
	dec            decodeCounters
	draining       atomic.Bool
	// Module-cache layer counters (hierarchical compiles): LRU hits,
	// disk read-throughs, and fresh module compiles.
	modHits, modDiskHits, modMisses atomic.Uint64

	modelsMu     sync.Mutex
	models       []surfcomm.AppModel
	modelsFlight *modelsFlight
}

// modelsFlight is one in-progress reference characterization that
// concurrent /models requests latch onto.
type modelsFlight struct {
	done   chan struct{}
	models []surfcomm.AppModel
	err    error
}

// New returns a Service over the toolchain; a nil toolchain selects
// the default (paper-baseline) toolchain.
func New(tc *surfcomm.Toolchain, cfg Config) *Service {
	if tc == nil {
		tc, _ = surfcomm.NewToolchain() // zero options cannot fail
	}
	max := cfg.MaxEntries
	switch {
	case max == 0:
		max = DefaultMaxEntries
	case max < 0:
		max = 0
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = tc.Workers()
	}
	if workers == 0 {
		// Resolve the GOMAXPROCS sentinel so /healthz reports the real
		// pool size instead of 0.
		workers = runtime.GOMAXPROCS(0)
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	queue := cfg.QueueDepth
	switch {
	case queue == 0:
		queue = DefaultQueueDepth
	case queue < 0:
		queue = 0
	}
	cache := newPlanCache(max)
	if max > 0 {
		cache.disk = newDiskLayer(cfg.Store)
	}
	return &Service{
		tc:             tc,
		cache:          cache,
		workers:        workers,
		base:           base,
		adm:            newAdmission(workers, queue),
		limiter:        newRateLimiter(cfg.RatePerSec, cfg.Burst),
		trustForwarded: cfg.TrustForwardedFor,
		inj:            cfg.Injector,
	}
}

// DeviceSpec selects a device-topology preset for a request — the
// JSON-friendly form of the surfcomm.Device constructors.
type DeviceSpec struct {
	// Preset is "perfect", "random-yield", "clustered", or "heavy-hex";
	// empty means perfect.
	Preset string `json:"preset"`
	// Frac is the defect fraction (random-yield, clustered).
	Frac float64 `json:"frac,omitempty"`
	// Seed is the realization seed (random-yield, clustered, heavy-hex).
	Seed int64 `json:"seed,omitempty"`
}

// device materializes the spec; unknown presets, out-of-range defect
// fractions, and parameters on the perfect preset all fail with errors
// matching scerr.ErrBadConfig — a forgotten "preset" field must not
// silently measure a perfect grid.
func (ds *DeviceSpec) device() (*surfcomm.Device, error) {
	if ds == nil {
		return nil, nil
	}
	switch ds.Preset {
	case "", "perfect":
		if ds.Frac != 0 || ds.Seed != 0 {
			return nil, scerr.BadConfig("service: device preset %q takes no frac/seed (did you mean random-yield or clustered?)",
				ds.Preset)
		}
		return surfcomm.PerfectDevice(), nil
	case "random-yield", "clustered":
		if ds.Frac < 0 || ds.Frac >= 1 {
			return nil, scerr.BadConfig("service: device frac %g outside [0,1)", ds.Frac)
		}
		if ds.Frac == 0 {
			// Zero defects realizes the perfect grid at any seed;
			// normalize so the alias shares the perfect cache line.
			return surfcomm.PerfectDevice(), nil
		}
		if ds.Preset == "random-yield" {
			return surfcomm.RandomYieldDevice(ds.Frac, ds.Seed), nil
		}
		return surfcomm.ClusteredDefectsDevice(ds.Frac, ds.Seed), nil
	case "heavy-hex":
		if ds.Frac != 0 {
			return nil, scerr.BadConfig("service: device preset %q takes no frac (heavy-hex drops couplers by pattern, not yield)",
				ds.Preset)
		}
		return surfcomm.HeavyHexDevice(ds.Seed), nil
	}
	return nil, scerr.BadConfig("service: unknown device preset %q (valid: perfect, random-yield, clustered, heavy-hex)", ds.Preset)
}

// Request is one compile request: the circuit as QASM text plus the
// target knobs that differ from the service toolchain's defaults.
// Omitted fields keep the toolchain's settings, so a request carrying
// only QASM compiles at the server's configured target.
type Request struct {
	// QASM is the circuit, in either the flat QASM dialect or the
	// module-extended hierarchical dialect (entry/module/call
	// directives). Hierarchical programs compile through the
	// incremental module pipeline: each module is cached independently
	// under its content digest, so recompiling an edited program reuses
	// every unchanged module.
	QASM string `json:"qasm"`
	// Backend names the compiling backend ("braid", "planar",
	// "surgery"); empty selects "braid".
	Backend string `json:"backend,omitempty"`
	// Distance overrides the code distance when positive.
	Distance int `json:"distance,omitempty"`
	// Policy overrides the braid policy (0–6) when non-nil.
	Policy *int `json:"policy,omitempty"`
	// Seed overrides the layout/partition seed when non-nil.
	Seed *int64 `json:"seed,omitempty"`
	// Window overrides the planar EPR look-ahead window when non-zero
	// (-1 selects the just-in-time heuristic explicitly).
	Window int64 `json:"window,omitempty"`
	// PhysicalError overrides the technology's physical error rate
	// when positive (the baseline superconducting technology at that
	// rate).
	PhysicalError float64 `json:"physical_error,omitempty"`
	// Device selects the device topology the machine is realized on.
	Device *DeviceSpec `json:"device,omitempty"`
	// Calibration is an inline calibration snapshot (the versioned JSON
	// schema device.ParseCalibration accepts) realized onto the request's
	// device. It overrides the service's startup calibration for this
	// request; malformed snapshots answer 400. The snapshot's content
	// digest joins the compile digest (through the device's record
	// string), so requests under different calibrations never share a
	// cache line.
	Calibration json.RawMessage `json:"calibration,omitempty"`
	// RecordSchedule captures the static schedule in the cached plan so
	// it can be replay-validated (braid-family backends).
	RecordSchedule bool `json:"record_schedule,omitempty"`
}

// compileKey is one resolved request: everything the compile needs,
// plus the digest identifying it in the cache. Exactly one of circuit
// (flat dialect) and program (hierarchical dialect) is non-nil.
type compileKey struct {
	backend surfcomm.Backend
	circuit *surfcomm.Circuit
	program *surfcomm.Program
	target  surfcomm.Target
	digest  string
}

// resolve parses and validates a request into a compileKey. The digest
// covers the resolved target (not the raw request), the backend name,
// and the canonical re-serialization of the parsed circuit, so two
// textually different requests meaning the same compile share a cache
// line.
func (s *Service) resolve(req Request) (compileKey, error) {
	name := req.Backend
	if name == "" {
		name = "braid"
	}
	backend, err := surfcomm.BackendByName(name)
	if err != nil {
		return compileKey{}, err
	}
	if strings.TrimSpace(req.QASM) == "" {
		return compileKey{}, scerr.BadConfig("service: empty qasm")
	}
	var (
		circ *surfcomm.Circuit
		prog *surfcomm.Program
	)
	if surfcomm.LooksHierarchicalQASM(req.QASM) {
		prog, err = surfcomm.ReadProgramQASM(strings.NewReader(req.QASM))
	} else {
		circ, err = surfcomm.ReadQASM(strings.NewReader(req.QASM))
	}
	if err != nil {
		return compileKey{}, scerr.BadConfig("service: qasm: %v", err)
	}

	if req.Distance < 0 {
		return compileKey{}, scerr.BadConfig("service: negative distance %d", req.Distance)
	}
	if req.PhysicalError < 0 {
		return compileKey{}, scerr.BadConfig("service: negative physical error rate %g", req.PhysicalError)
	}
	target := s.tc.Target()
	if req.Distance > 0 {
		target.Distance = req.Distance
	}
	if req.Policy != nil {
		target.Policy = surfcomm.BraidPolicy(*req.Policy)
	}
	if req.Seed != nil {
		target.Seed = *req.Seed
	}
	if req.Window != 0 {
		target.Window = req.Window
	}
	if req.PhysicalError > 0 {
		target.Technology = surfcomm.Superconducting(req.PhysicalError)
	}
	target.RecordSchedule = req.RecordSchedule
	if req.Device != nil {
		dev, err := req.Device.device()
		if err != nil {
			return compileKey{}, err
		}
		target.Device = dev
		// A request-selected device starts uncalibrated; the service's
		// startup calibration (already folded into the default target's
		// device) does not silently follow it.
	}
	if len(req.Calibration) > 0 {
		cal, err := surfcomm.ParseCalibration(req.Calibration)
		if err != nil {
			return compileKey{}, err
		}
		target.Device = target.Device.WithCalibration(cal)
	}

	// Canonical circuit bytes: re-emit the parsed circuit (or program)
	// so spacing and comments in the submitted text do not split the
	// cache key. The two dialects canonicalize into disjoint byte
	// spaces (flat text opens with a comment/qubits line, hierarchical
	// with an entry directive), so they can never collide on a digest.
	var canon bytes.Buffer
	if prog != nil {
		err = surfcomm.WriteProgramQASM(&canon, prog)
	} else {
		err = surfcomm.WriteQASM(&canon, circ)
	}
	if err != nil {
		return compileKey{}, scerr.BadConfig("service: qasm: %v", err)
	}
	return compileKey{
		backend: backend,
		circuit: circ,
		program: prog,
		target:  target,
		digest:  digest(name, canon.Bytes(), target),
	}, nil
}

// digest fingerprints a resolved compile: backend name, every
// plan-affecting target field (technology and device included), and
// the canonical circuit text. SHA-256 keeps accidental collisions out
// of the picture at any cache size.
func digest(backend string, canonicalQASM []byte, t surfcomm.Target) string {
	h := sha256.New()
	fmt.Fprintf(h, "backend=%s\n", backend)
	fmt.Fprintf(h, "d=%d policy=%d seed=%d window=%d bw=%d local=%t record=%t\n",
		t.Distance, int(t.Policy), t.Seed, t.Window, t.LinkBandwidth, t.LocalTOps, t.RecordSchedule)
	fmt.Fprintf(h, "tech=%g/%g/%g/%g/%g/%g\n",
		t.Technology.PhysicalErrorRate, t.Technology.Threshold, t.Technology.Prefactor,
		t.Technology.Gate1Q, t.Technology.Gate2Q, t.Technology.Meas)
	fmt.Fprintf(h, "simd=%d/%d/%d/%t\n", t.SIMD.Regions, t.SIMD.Width, t.SIMD.Seed, t.SIMD.NaiveBanks)
	fmt.Fprintf(h, "device=%s\n", t.Device.String())
	h.Write(canonicalQASM)
	return hex.EncodeToString(h.Sum(nil))
}

// RoutingKey fingerprints a request for consistent-hash routing across
// a replica fleet: requests that would resolve to the same compile on
// any replica share a key, so each shard's LRU and disk store stay hot
// for their slice of the keyspace. It canonicalizes the circuit exactly
// like resolve (whitespace and comments don't split shards) but hashes
// the raw request knobs rather than a resolved target — the router
// doesn't know each replica's defaults, and it doesn't need to: the key
// only has to be consistent, not equal to the replica's cache digest.
// Malformed requests fail with errors matching scerr.ErrBadConfig so a
// router can answer 400 without spending a replica's time.
func RoutingKey(req Request) (string, error) {
	if strings.TrimSpace(req.QASM) == "" {
		return "", scerr.BadConfig("service: empty qasm")
	}
	var canon bytes.Buffer
	if surfcomm.LooksHierarchicalQASM(req.QASM) {
		prog, err := surfcomm.ReadProgramQASM(strings.NewReader(req.QASM))
		if err != nil {
			return "", scerr.BadConfig("service: qasm: %v", err)
		}
		if err := surfcomm.WriteProgramQASM(&canon, prog); err != nil {
			return "", scerr.BadConfig("service: qasm: %v", err)
		}
	} else {
		circ, err := surfcomm.ReadQASM(strings.NewReader(req.QASM))
		if err != nil {
			return "", scerr.BadConfig("service: qasm: %v", err)
		}
		if err := surfcomm.WriteQASM(&canon, circ); err != nil {
			return "", scerr.BadConfig("service: qasm: %v", err)
		}
	}
	backend := req.Backend
	if backend == "" {
		backend = "braid"
	}
	h := sha256.New()
	fmt.Fprintf(h, "route/1 backend=%s d=%d window=%d pe=%g record=%t\n",
		backend, req.Distance, req.Window, req.PhysicalError, req.RecordSchedule)
	if req.Policy != nil {
		fmt.Fprintf(h, "policy=%d\n", *req.Policy)
	}
	if req.Seed != nil {
		fmt.Fprintf(h, "seed=%d\n", *req.Seed)
	}
	if req.Device != nil {
		fmt.Fprintf(h, "device=%s/%g/%d\n", req.Device.Preset, req.Device.Frac, req.Device.Seed)
	}
	if len(req.Calibration) > 0 {
		// Raw snapshot bytes, not the parsed digest: the router must not
		// spend parse time, and the key only has to be consistent.
		fmt.Fprintf(h, "cal=%x\n", sha256.Sum256(req.Calibration))
	}
	h.Write(canon.Bytes())
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Result is one served compile: the plan, whether it came from the
// cache (or a deduped in-flight compile), and the digest that keyed
// it. Batch slots carry per-request failures in Err.
//
// The Plan's artifact pointers (Braid, SIMD, EPR and their slices) are
// shared with the cache entry and with every other request served from
// the same digest — treat them as read-only; mutating them would
// corrupt what later hits are served.
type Result struct {
	Plan   surfcomm.Plan
	Cached bool
	Digest string
	Err    error
}

// Compile serves one request through the cache: a digest hit returns
// the cached plan, a concurrent identical compile is awaited, a miss
// reads through to the disk store, and only then does a compile run —
// behind admission control (bounded queue, deadline-aware shedding
// with ErrOverloaded, request contexts that expire in the queue
// answered without compiling).
//
// Cache-shared compiles run under the service's base context, not the
// request's: the leader's client disconnecting must not cancel the
// compile every deduped waiter is latched onto (and whose result the
// cache keeps). A request deadline (the HTTP layer's
// X-Request-Deadline, or any context deadline) is honored end-to-end:
// it is re-derived onto the base context, so the compile itself aborts
// with ErrCanceled when the deadline passes. The request context still
// governs the caller's wait, and a pre-canceled request is rejected
// before any work starts; with caching disabled a compile serves only
// its own request and stays on the request context.
func (s *Service) Compile(ctx context.Context, req Request) (Result, error) {
	return s.compile(ctx, req, nil)
}

// compile is Compile with an optional stage-event emitter (nil for the
// plain path). Events fire on the caller's goroutine, in order: the
// emitter only ever observes this request's own progress — a deduped
// request reports "deduped", not the leader's compile stages.
func (s *Service) compile(ctx context.Context, req Request, emit func(StageEvent)) (Result, error) {
	if ctx.Err() != nil {
		err := scerr.Canceled(ctx)
		return Result{Err: err}, err
	}
	key, err := s.resolve(req)
	if err != nil {
		return Result{Err: err}, err
	}
	if emit != nil {
		emit(StageEvent{Stage: StageResolved, Digest: key.digest, Backend: key.backend.Name()})
	}
	// Recorded-schedule plans carry artifacts the disk store does not
	// persist; keep them out of the disk layer so a disk hit never
	// serves an artifact-less plan for a request that asked for them.
	persist := !key.target.RecordSchedule
	compileCtx := s.base
	cancel := func() {}
	if s.cache.max < 1 {
		compileCtx = ctx
	} else if dl, ok := ctx.Deadline(); ok {
		// Propagate the request deadline into the shared compile while
		// keeping shutdown authority with the base context. A waiter
		// with a longer deadline latched onto this flight loses the
		// race, but the error is never cached, so its retry recompiles.
		compileCtx, cancel = context.WithDeadline(s.base, dl)
	}
	defer cancel()
	plan, cached, err := s.cache.do(ctx, key.digest, persist, func() (surfcomm.Plan, error) {
		if emit != nil {
			emit(StageEvent{Stage: StageQueued})
		}
		if err := s.adm.acquire(ctx); err != nil {
			return surfcomm.Plan{}, err
		}
		start := time.Now()
		observed := time.Duration(0)
		defer func() { s.adm.release(observed) }()
		if d := s.inj.CompileDelay(); d > 0 {
			select {
			case <-time.After(d):
			case <-compileCtx.Done():
				return surfcomm.Plan{}, scerr.Canceled(compileCtx)
			}
		}
		if s.inj.Fire(faultinject.CompileError) {
			return surfcomm.Plan{}, fmt.Errorf("%w: compile of %.12s…", faultinject.ErrInjected, key.digest)
		}
		tc := s.tc
		if emit != nil {
			emit(StageEvent{Stage: StageCompiling, Backend: key.backend.Name()})
			// The per-request progress clone forwards the toolchain's own
			// compile events into this request's stream; the shared
			// toolchain (and whatever observer it was built with) is
			// untouched.
			tc = s.tc.CloneWithProgress(func(ev surfcomm.Event) {
				emit(StageEvent{Stage: "toolchain/" + ev.Stage, Backend: ev.Backend, Cell: ev.Cell})
			})
		}
		var p surfcomm.Plan
		var err error
		if key.program != nil {
			// Hierarchical compile: modules are cached independently in
			// the service's LRU/disk stack under their content digests,
			// so an edited program's recompile reuses every unchanged
			// module even though its program digest missed.
			mtc := tc.CloneWithModuleCache(&svcModuleCache{s: s, persist: persist})
			p, err = mtc.CompileIncremental(compileCtx, key.backend, key.program, func(t *surfcomm.Target) { *t = key.target })
		} else {
			p, err = tc.Compile(compileCtx, key.backend, key.circuit, func(t *surfcomm.Target) { *t = key.target })
		}
		if err == nil {
			// Only successful compiles feed the queue-pricing EWMA:
			// injected/aborted compiles would teach admission the wrong
			// service time.
			observed = time.Since(start)
		}
		return p, err
	})
	if emit != nil && cached {
		// LRU hit, deduped flight, or disk read-through — all served
		// without compiling for this request.
		emit(StageEvent{Stage: StageCached})
	}
	if err != nil {
		return Result{Digest: key.digest, Err: err}, err
	}
	return Result{Plan: plan, Cached: cached, Digest: key.digest}, nil
}

// CompileBatch serves every request across the worker pool, returning
// results in request order at any worker count. Per-request failures
// land in their slot and never abort the batch; identical requests
// inside one batch compile once (the singleflight path) and all report
// the same digest. A canceled context marks unprocessed slots with
// errors matching surfcomm.ErrCanceled.
func (s *Service) CompileBatch(ctx context.Context, reqs []Request) []Result {
	return sweep.MapFill(ctx, sweep.Options{Workers: s.workers}, reqs,
		func(i int, req Request) Result {
			res, _ := s.Compile(ctx, req)
			return res
		},
		func(err error) Result { return Result{Err: err} })
}

// Estimate runs the frontend characterization (Table 2 columns) over
// the request's circuit; only the QASM field is consulted.
func (s *Service) Estimate(req Request) (surfcomm.Estimate, error) {
	if strings.TrimSpace(req.QASM) == "" {
		return surfcomm.Estimate{}, scerr.BadConfig("service: empty qasm")
	}
	var (
		circ *surfcomm.Circuit
		err  error
	)
	if surfcomm.LooksHierarchicalQASM(req.QASM) {
		// Characterization is a flat-circuit analysis: flatten the
		// program fully inlined (the maximal-parallelism view).
		prog, perr := surfcomm.ReadProgramQASM(strings.NewReader(req.QASM))
		if perr != nil {
			return surfcomm.Estimate{}, scerr.BadConfig("service: qasm: %v", perr)
		}
		circ, err = prog.Flatten(surfcomm.InlineAll)
	} else {
		circ, err = surfcomm.ReadQASM(strings.NewReader(req.QASM))
	}
	if err != nil {
		return surfcomm.Estimate{}, scerr.BadConfig("service: qasm: %v", err)
	}
	return surfcomm.EstimateCircuit(circ)
}

// Models characterizes the reference application suite once and serves
// the cached models afterwards. Concurrent cold-start requests share
// one characterization (the compile cache's singleflight discipline):
// the leader runs under the service base context so an abandoned
// request cannot abort it, waiters block cancelably on their own
// contexts, and a failed characterization is not cached, so the next
// request retries.
func (s *Service) Models(ctx context.Context) ([]surfcomm.AppModel, error) {
	s.modelsMu.Lock()
	if s.models != nil {
		models := s.models
		s.modelsMu.Unlock()
		return models, nil
	}
	if f := s.modelsFlight; f != nil {
		s.modelsMu.Unlock()
		select {
		case <-f.done:
			return f.models, f.err
		case <-ctx.Done():
			return nil, scerr.Canceled(ctx)
		}
	}
	f := &modelsFlight{done: make(chan struct{})}
	s.modelsFlight = f
	s.modelsMu.Unlock()

	// Resolve the flight even if characterization panics (same wedged-
	// key discipline as planCache.do): waiters get an error, the
	// endpoint stays retryable, the panic continues to the caller.
	defer func() {
		r := recover()
		s.modelsMu.Lock()
		s.modelsFlight = nil
		if r != nil {
			f.err = fmt.Errorf("service: characterization panicked: %v", r)
		} else if f.err == nil {
			s.models = f.models
		}
		s.modelsMu.Unlock()
		close(f.done)
		if r != nil {
			panic(r)
		}
	}()
	f.models, f.err = s.tc.Models(s.base)
	return f.models, f.err
}

// Stats snapshots the cache counters, folding in the module-cache
// layer's hit/miss/disk counters (hierarchical compiles only).
func (s *Service) Stats() CacheStats {
	cs := s.cache.stats()
	cs.ModuleHits = s.modHits.Load()
	cs.ModuleDiskHits = s.modDiskHits.Load()
	cs.ModuleMisses = s.modMisses.Load()
	return cs
}

// AdmissionStats snapshots the admission queue and rate-limit counters.
func (s *Service) AdmissionStats() AdmissionStats {
	return s.adm.stats(s.limiter.rateLimitedCount())
}

// StoreStats snapshots the persistent plan store's counters; nil when
// no store is configured.
func (s *Service) StoreStats() *store.Stats { return s.cache.disk.storeStats() }

// FaultCounts snapshots how often each injected fault fired; nil when
// chaos is off.
func (s *Service) FaultCounts() map[string]uint64 { return s.inj.Counts() }

// AllowClient spends one token from the client's rate-limit bucket
// (cost scales for batches), returning an *OverloadError (429,
// Retry-After set) when the bucket is empty. A service without rate
// limiting allows everything.
func (s *Service) AllowClient(key string, cost int) error {
	ok, wait := s.limiter.allow(key, float64(cost), time.Now())
	if ok {
		return nil
	}
	return overload(429, wait, "service: client %q over its rate limit", key)
}

// Drain flips the service to not-ready: /readyz answers 503 so load
// balancers stop routing here, while in-flight (and even new) requests
// are still served until the listener actually closes. Draining is the
// first step of graceful shutdown.
func (s *Service) Drain() { s.draining.Store(true) }

// Ready reports whether the service should receive new traffic, with
// the reason when not: "draining" during shutdown, "overloaded" while
// the compile queue is saturated (a new compile would be shed).
func (s *Service) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if s.adm.saturated() {
		return false, "overloaded"
	}
	return true, "ready"
}

// Close flushes the write-behind queue to the disk store and stops
// accepting new persistence work. It does not close the store itself
// (the daemon that opened it owns it) and the service keeps serving
// from memory afterwards.
func (s *Service) Close() { s.cache.disk.close() }

// Toolchain returns the toolchain the service compiles with.
func (s *Service) Toolchain() *surfcomm.Toolchain { return s.tc }

// CalibrationHealth reports the toolchain's startup calibration as its
// /healthz view (digest + age at now); nil when the service compiles
// uncalibrated.
func (s *Service) CalibrationHealth(now time.Time) *CalibrationHealth {
	cal := s.tc.Calibration()
	if cal == nil {
		return nil
	}
	return &CalibrationHealth{
		Name:       cal.Name,
		Digest:     cal.Digest(),
		AgeSeconds: cal.Age(now).Seconds(),
	}
}
